module rdmamon

go 1.23
