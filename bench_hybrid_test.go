// Benchmark and regression gate for the hybrid push/pull scheme
// (DESIGN.md §11). `make bench-check` replays the 512-back-end hybrid
// comparison and fails on a >15% regression against the committed
// BENCH_hybrid.json; `make bench-baseline` regenerates that file after
// an intentional cost-model change.
package rdmamon_test

import (
	"encoding/json"
	"os"
	"runtime"
	"testing"

	"rdmamon/internal/cluster"
	"rdmamon/internal/core"
	"rdmamon/internal/experiments"
	"rdmamon/internal/sim"
)

const benchHybridFile = "BENCH_hybrid.json"

type hybridBaseline struct {
	Backends     int     `json:"backends"`
	ProbeWRs     uint64  `json:"probe_wrs"`
	PushWRs      uint64  `json:"push_wrs"`
	WRRatio      float64 `json:"probe_wr_reduction_x"`
	EffStaleMaxT float64 `json:"eff_stale_max_t"`

	// Steady-state allocation cost per probe-slot check (backends ×
	// window/T — the decayed scheme posts few WRs, so per-WR figures
	// would swing wildly with the decay schedule). Includes the event
	// simulator's own scheduling; gated at tolerance like the WR
	// figures.
	SweepAllocsPerOp float64 `json:"sweep_allocs_per_op"`
	SweepBytesPerOp  float64 `json:"sweep_b_per_op"`
}

// benchHybridAllocs measures the warmed 512-back-end hybrid fleet's
// steady-state allocation rate over a one-second window, normalized
// per probe-slot check.
func benchHybridAllocs() (allocsPerOp, bytesPerOp float64) {
	poll := 10 * sim.Millisecond
	c := cluster.New(cluster.Config{
		Backends: 512, Scheme: core.RDMASync, Poll: poll,
		Seed: 1, NoServers: true, MonitorShards: 4, MonitorBatch: 32,
		Hybrid: &core.HybridConfig{},
	})
	c.Eng.RunUntil(2 * sim.Second)
	var m0, m1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&m0)
	window := sim.Second
	c.Eng.RunUntil(2*sim.Second + window)
	runtime.ReadMemStats(&m1)
	ops := float64(512) * float64(window) / float64(poll)
	return float64(m1.Mallocs-m0.Mallocs) / ops,
		float64(m1.TotalAlloc-m0.TotalAlloc) / ops
}

// benchHybridPoint runs the gate configuration: the full 512-back-end
// hybrid-vs-all-pull comparison. The simulation is deterministic, so
// the figures are exactly reproducible; the tolerance only absorbs
// intentional small cost-model adjustments.
func benchHybridPoint(t testing.TB) hybridBaseline {
	d := experiments.Hybrid(experiments.Options{})
	if d.Failed {
		t.Fatalf("hybrid run violated its own contract:\n%v", d.Notes)
	}
	hyb := d.Points[1]
	return hybridBaseline{
		Backends: hyb.Backends,
		ProbeWRs: hyb.ProbeWRs, PushWRs: hyb.PushWRs,
		WRRatio: d.WRRatio, EffStaleMaxT: hyb.EffStaleMaxT,
	}
}

// BenchmarkHybrid512 reports the hybrid scheme's headline figures at
// the gate configuration: probe work requests over the measurement
// window, the reduction over all-pull, and the worst effective
// staleness in probe periods.
func BenchmarkHybrid512(b *testing.B) {
	var p hybridBaseline
	for i := 0; i < b.N; i++ {
		p = benchHybridPoint(b)
	}
	p.SweepAllocsPerOp, p.SweepBytesPerOp = benchHybridAllocs()
	b.ReportMetric(float64(p.ProbeWRs), "sim-probe-wrs")
	b.ReportMetric(p.WRRatio, "probe-wr-reduction-x")
	b.ReportMetric(p.EffStaleMaxT, "sim-eff-stale-max-T")
	b.ReportMetric(p.SweepAllocsPerOp, "sweep-allocs/op")
	b.ReportMetric(p.SweepBytesPerOp, "sweep-B/op")
}

// TestBenchHybridRegression is the bench-check gate for the hybrid
// scheme: probe-WR count and staleness must not drift past tolerance.
// With BENCH_WRITE=1 it rewrites the baseline instead (the
// bench-baseline target).
func TestBenchHybridRegression(t *testing.T) {
	if testing.Short() {
		t.Skip("slow benchmark gate; skipped with -short")
	}
	got := benchHybridPoint(t)
	if !raceEnabled {
		got.SweepAllocsPerOp, got.SweepBytesPerOp = benchHybridAllocs()
	}
	if os.Getenv("BENCH_WRITE") == "1" {
		if raceEnabled {
			t.Fatal("bench-baseline must run without -race: the allocs/op fields would record race-runtime noise")
		}
		buf, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(benchHybridFile, append(buf, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("baseline rewritten: %+v", got)
		return
	}
	raw, err := os.ReadFile(benchHybridFile)
	if err != nil {
		t.Fatalf("no committed baseline (run `make bench-baseline` and commit it): %v", err)
	}
	var want hybridBaseline
	if err := json.Unmarshal(raw, &want); err != nil {
		t.Fatalf("corrupt %s: %v", benchHybridFile, err)
	}
	if got.Backends != want.Backends {
		t.Fatalf("gate configuration drifted: measured %+v, baseline %+v", got, want)
	}
	const tol = 1.15
	if float64(got.ProbeWRs) > float64(want.ProbeWRs)*tol {
		t.Errorf("probe WRs regressed: %d vs baseline %d (>%.0f%% worse)",
			got.ProbeWRs, want.ProbeWRs, (tol-1)*100)
	}
	if got.WRRatio*tol < want.WRRatio {
		t.Errorf("probe-WR reduction regressed: %.1fx vs baseline %.1fx", got.WRRatio, want.WRRatio)
	}
	if got.EffStaleMaxT > want.EffStaleMaxT*tol {
		t.Errorf("effective staleness regressed: %.1fT vs baseline %.1fT", got.EffStaleMaxT, want.EffStaleMaxT)
	}
	if !raceEnabled {
		if got.SweepAllocsPerOp > want.SweepAllocsPerOp*tol {
			t.Errorf("sweep allocs/op regressed: %.1f vs baseline %.1f", got.SweepAllocsPerOp, want.SweepAllocsPerOp)
		}
		if got.SweepBytesPerOp > want.SweepBytesPerOp*tol {
			t.Errorf("sweep B/op regressed: %.1f vs baseline %.1f", got.SweepBytesPerOp, want.SweepBytesPerOp)
		}
	}
}
