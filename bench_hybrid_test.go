// Benchmark and regression gate for the hybrid push/pull scheme
// (DESIGN.md §11). `make bench-check` replays the 512-back-end hybrid
// comparison and fails on a >15% regression against the committed
// BENCH_hybrid.json; `make bench-baseline` regenerates that file after
// an intentional cost-model change.
package rdmamon_test

import (
	"encoding/json"
	"os"
	"testing"

	"rdmamon/internal/experiments"
)

const benchHybridFile = "BENCH_hybrid.json"

type hybridBaseline struct {
	Backends     int     `json:"backends"`
	ProbeWRs     uint64  `json:"probe_wrs"`
	PushWRs      uint64  `json:"push_wrs"`
	WRRatio      float64 `json:"probe_wr_reduction_x"`
	EffStaleMaxT float64 `json:"eff_stale_max_t"`
}

// benchHybridPoint runs the gate configuration: the full 512-back-end
// hybrid-vs-all-pull comparison. The simulation is deterministic, so
// the figures are exactly reproducible; the tolerance only absorbs
// intentional small cost-model adjustments.
func benchHybridPoint(t testing.TB) hybridBaseline {
	d := experiments.Hybrid(experiments.Options{})
	if d.Failed {
		t.Fatalf("hybrid run violated its own contract:\n%v", d.Notes)
	}
	hyb := d.Points[1]
	return hybridBaseline{
		Backends: hyb.Backends,
		ProbeWRs: hyb.ProbeWRs, PushWRs: hyb.PushWRs,
		WRRatio: d.WRRatio, EffStaleMaxT: hyb.EffStaleMaxT,
	}
}

// BenchmarkHybrid512 reports the hybrid scheme's headline figures at
// the gate configuration: probe work requests over the measurement
// window, the reduction over all-pull, and the worst effective
// staleness in probe periods.
func BenchmarkHybrid512(b *testing.B) {
	var p hybridBaseline
	for i := 0; i < b.N; i++ {
		p = benchHybridPoint(b)
	}
	b.ReportMetric(float64(p.ProbeWRs), "sim-probe-wrs")
	b.ReportMetric(p.WRRatio, "probe-wr-reduction-x")
	b.ReportMetric(p.EffStaleMaxT, "sim-eff-stale-max-T")
}

// TestBenchHybridRegression is the bench-check gate for the hybrid
// scheme: probe-WR count and staleness must not drift past tolerance.
// With BENCH_WRITE=1 it rewrites the baseline instead (the
// bench-baseline target).
func TestBenchHybridRegression(t *testing.T) {
	if testing.Short() {
		t.Skip("slow benchmark gate; skipped with -short")
	}
	got := benchHybridPoint(t)
	if os.Getenv("BENCH_WRITE") == "1" {
		buf, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(benchHybridFile, append(buf, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("baseline rewritten: %+v", got)
		return
	}
	raw, err := os.ReadFile(benchHybridFile)
	if err != nil {
		t.Fatalf("no committed baseline (run `make bench-baseline` and commit it): %v", err)
	}
	var want hybridBaseline
	if err := json.Unmarshal(raw, &want); err != nil {
		t.Fatalf("corrupt %s: %v", benchHybridFile, err)
	}
	if got.Backends != want.Backends {
		t.Fatalf("gate configuration drifted: measured %+v, baseline %+v", got, want)
	}
	const tol = 1.15
	if float64(got.ProbeWRs) > float64(want.ProbeWRs)*tol {
		t.Errorf("probe WRs regressed: %d vs baseline %d (>%.0f%% worse)",
			got.ProbeWRs, want.ProbeWRs, (tol-1)*100)
	}
	if got.WRRatio*tol < want.WRRatio {
		t.Errorf("probe-WR reduction regressed: %.1fx vs baseline %.1fx", got.WRRatio, want.WRRatio)
	}
	if got.EffStaleMaxT > want.EffStaleMaxT*tol {
		t.Errorf("effective staleness regressed: %.1fT vs baseline %.1fT", got.EffStaleMaxT, want.EffStaleMaxT)
	}
}
