//go:build race

package rdmamon_test

// raceEnabled reports that the race detector is instrumenting this
// build: its shadow-memory bookkeeping allocates on paths that are
// allocation-free in a normal build, so the allocs/op gates are
// skipped (the sim-derived figures are unaffected and still gated).
const raceEnabled = true
