//go:build !race

package rdmamon_test

// raceEnabled: see bench_race_test.go.
const raceEnabled = false
