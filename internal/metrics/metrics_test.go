package metrics

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func almost(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestSampleBasics(t *testing.T) {
	var s Sample
	if s.Mean() != 0 || s.Min() != 0 || s.Max() != 0 || s.Stddev() != 0 {
		t.Fatal("empty sample should report zeros")
	}
	for _, v := range []float64{4, 1, 3, 2, 5} {
		s.Add(v)
	}
	if s.Count() != 5 || s.Mean() != 3 || s.Min() != 1 || s.Max() != 5 {
		t.Fatalf("basic stats wrong: %+v", s.Summarize())
	}
	if !almost(s.Stddev(), math.Sqrt(2), 1e-12) {
		t.Fatalf("stddev = %v, want sqrt(2)", s.Stddev())
	}
}

func TestPercentile(t *testing.T) {
	var s Sample
	for i := 1; i <= 100; i++ {
		s.Add(float64(i))
	}
	cases := []struct{ p, want float64 }{
		{0, 1}, {50, 50}, {95, 95}, {99, 99}, {100, 100},
	}
	for _, c := range cases {
		if got := s.Percentile(c.p); got != c.want {
			t.Errorf("P%.0f = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestPercentileAfterAddResorts(t *testing.T) {
	var s Sample
	s.Add(10)
	_ = s.Percentile(50)
	s.Add(1) // must invalidate sort
	if got := s.Percentile(0); got != 1 {
		t.Fatalf("min percentile = %v after late add, want 1", got)
	}
}

func TestSummaryString(t *testing.T) {
	var s Sample
	s.Add(1)
	if s.Summarize().String() == "" {
		t.Fatal("empty summary string")
	}
}

func TestHist(t *testing.T) {
	var h Hist
	for i := uint64(1); i <= 1000; i++ {
		h.Observe(i)
	}
	if h.Count() != 1000 || h.Max() != 1000 {
		t.Fatalf("count/max = %d/%d", h.Count(), h.Max())
	}
	if !almost(h.Mean(), 500.5, 1e-9) {
		t.Fatalf("mean = %v", h.Mean())
	}
	q := h.Quantile(0.5)
	// Median 500 lives in bucket [256,512): upper bound 512.
	if q != 512 {
		t.Fatalf("median bucket bound = %d, want 512", q)
	}
	if h.Quantile(1.0) < 1000 {
		t.Fatalf("q100 = %d, want >= max", h.Quantile(1.0))
	}
	var empty Hist
	if empty.Quantile(0.5) != 0 || empty.Mean() != 0 {
		t.Fatal("empty hist should report zeros")
	}
}

func TestHistZeroValue(t *testing.T) {
	var h Hist
	h.Observe(0)
	h.Observe(1)
	if h.Count() != 2 {
		t.Fatal("zero observation lost")
	}
}

func TestSeries(t *testing.T) {
	var s Series
	for i := 0; i < 10; i++ {
		s.Add(float64(i), float64(i*2))
	}
	if s.Len() != 10 {
		t.Fatalf("Len = %d", s.Len())
	}
	if s.MeanV() != 9 {
		t.Fatalf("MeanV = %v, want 9", s.MeanV())
	}
	if s.MaxV() != 18 {
		t.Fatalf("MaxV = %v, want 18", s.MaxV())
	}
}

func TestSeriesDownsample(t *testing.T) {
	var s Series
	for i := 0; i < 100; i++ {
		s.Add(float64(i), 5)
	}
	d := s.Downsample(10)
	if d.Len() != 10 {
		t.Fatalf("downsampled to %d points, want 10", d.Len())
	}
	for _, p := range d.Points {
		if p.V != 5 {
			t.Fatalf("averaging constant series changed value: %v", p.V)
		}
	}
	// Already small series passes through.
	small := Series{Points: []Point{{1, 1}, {2, 2}}}
	if d2 := small.Downsample(10); d2.Len() != 2 {
		t.Fatal("small series should pass through")
	}
	var empty Series
	if d3 := empty.Downsample(5); d3.Len() != 0 {
		t.Fatal("empty downsample should be empty")
	}
	if empty.MeanV() != 0 || empty.MaxV() != 0 {
		t.Fatal("empty series stats should be zero")
	}
}

func TestWelfordMatchesSample(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var w Welford
	var s Sample
	for i := 0; i < 1000; i++ {
		v := rng.NormFloat64()*3 + 10
		w.Add(v)
		s.Add(v)
	}
	if !almost(w.Mean(), s.Mean(), 1e-9) {
		t.Fatalf("welford mean %v vs sample %v", w.Mean(), s.Mean())
	}
	if !almost(w.Stddev(), s.Stddev(), 1e-9) {
		t.Fatalf("welford stddev %v vs sample %v", w.Stddev(), s.Stddev())
	}
	if w.Count() != 1000 {
		t.Fatal("welford count wrong")
	}
	var empty Welford
	if empty.Variance() != 0 {
		t.Fatal("empty welford variance should be 0")
	}
}

func TestEWMA(t *testing.T) {
	e := EWMA{Alpha: 0.5}
	if e.Add(10) != 10 {
		t.Fatal("first value should initialize")
	}
	if got := e.Add(20); got != 15 {
		t.Fatalf("ewma = %v, want 15", got)
	}
	if e.Value() != 15 {
		t.Fatal("Value() mismatch")
	}
}

func TestDeviation(t *testing.T) {
	var d Deviation
	d.Observe(10, 12)
	d.Observe(5, 5)
	d.Observe(0, 7)
	if d.Count() != 3 {
		t.Fatalf("count = %d", d.Count())
	}
	if !almost(d.MeanAbs(), 3, 1e-12) {
		t.Fatalf("mean abs = %v, want 3", d.MeanAbs())
	}
	if d.MaxAbs() != 7 {
		t.Fatalf("max abs = %v, want 7", d.MaxAbs())
	}
	if d.P95Abs() != 7 {
		t.Fatalf("p95 abs = %v, want 7", d.P95Abs())
	}
}

// Property: Percentile(100) is the true max and Percentile(0) the true
// min for any data.
func TestQuickPercentileBounds(t *testing.T) {
	f := func(vals []float64) bool {
		if len(vals) == 0 {
			return true
		}
		var s Sample
		cp := append([]float64(nil), vals...)
		for _, v := range cp {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
			s.Add(v)
		}
		sort.Float64s(cp)
		return s.Percentile(0) == cp[0] && s.Percentile(100) == cp[len(cp)-1]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: histogram quantile upper bound is >= the exact quantile.
func TestQuickHistQuantileUpperBound(t *testing.T) {
	f := func(raw []uint16, qRaw uint8) bool {
		if len(raw) == 0 {
			return true
		}
		q := float64(qRaw%101) / 100
		var h Hist
		vals := make([]uint64, len(raw))
		for i, v := range raw {
			vals[i] = uint64(v)
			h.Observe(uint64(v))
		}
		sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
		rank := int(math.Ceil(q * float64(len(vals))))
		if rank < 1 {
			rank = 1
		}
		exact := vals[rank-1]
		return h.Quantile(q) >= exact
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSampleAddAllAndValues(t *testing.T) {
	var a, b Sample
	a.Add(1)
	a.Add(2)
	b.Add(3)
	a.AddAll(&b)
	a.AddAll(nil)
	if a.Count() != 3 || a.Max() != 3 {
		t.Fatalf("after AddAll: %+v", a.Summarize())
	}
	if len(a.Values()) != 3 {
		t.Fatal("Values length mismatch")
	}
	// AddAll must invalidate the sort cache.
	_ = a.Percentile(50)
	var c Sample
	c.Add(0.5)
	a.AddAll(&c)
	if a.Percentile(0) != 0.5 {
		t.Fatal("sort cache not invalidated by AddAll")
	}
}
