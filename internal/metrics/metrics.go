// Package metrics provides the statistics used throughout the
// benchmark harness: response-time samples with percentiles,
// log-bucketed histograms, time series, online mean/variance, EWMA
// smoothing and deviation tracking (for the paper's accuracy
// experiments).
package metrics

import (
	"fmt"
	"math"
	"sort"
)

// Sample accumulates float64 observations and answers summary
// queries. It keeps every value; simulation-scale data fits easily.
type Sample struct {
	vals   []float64
	sorted bool
}

// Add appends one observation.
func (s *Sample) Add(v float64) {
	s.vals = append(s.vals, v)
	s.sorted = false
}

// Count returns the number of observations.
func (s *Sample) Count() int { return len(s.vals) }

// Values returns the underlying observations (not a copy; do not
// mutate).
func (s *Sample) Values() []float64 { return s.vals }

// AddAll folds another sample's observations into s.
func (s *Sample) AddAll(o *Sample) {
	if o == nil {
		return
	}
	s.vals = append(s.vals, o.vals...)
	s.sorted = false
}

// Mean returns the arithmetic mean (0 if empty).
func (s *Sample) Mean() float64 {
	if len(s.vals) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range s.vals {
		sum += v
	}
	return sum / float64(len(s.vals))
}

// Min returns the smallest observation (0 if empty).
func (s *Sample) Min() float64 {
	if len(s.vals) == 0 {
		return 0
	}
	m := s.vals[0]
	for _, v := range s.vals {
		if v < m {
			m = v
		}
	}
	return m
}

// Max returns the largest observation (0 if empty).
func (s *Sample) Max() float64 {
	if len(s.vals) == 0 {
		return 0
	}
	m := s.vals[0]
	for _, v := range s.vals {
		if v > m {
			m = v
		}
	}
	return m
}

// Stddev returns the population standard deviation.
func (s *Sample) Stddev() float64 {
	n := len(s.vals)
	if n == 0 {
		return 0
	}
	mean := s.Mean()
	ss := 0.0
	for _, v := range s.vals {
		d := v - mean
		ss += d * d
	}
	return math.Sqrt(ss / float64(n))
}

// Percentile returns the p-th percentile (p in [0,100]) using
// nearest-rank on the sorted data.
func (s *Sample) Percentile(p float64) float64 {
	n := len(s.vals)
	if n == 0 {
		return 0
	}
	if !s.sorted {
		sort.Float64s(s.vals)
		s.sorted = true
	}
	if p <= 0 {
		return s.vals[0]
	}
	if p >= 100 {
		return s.vals[n-1]
	}
	rank := int(math.Ceil(p / 100 * float64(n)))
	if rank < 1 {
		rank = 1
	}
	return s.vals[rank-1]
}

// Summary is a compact statistical digest of a Sample.
type Summary struct {
	Count          int
	Mean, Min, Max float64
	P50, P95, P99  float64
	Stddev         float64
}

// Summarize computes the digest.
func (s *Sample) Summarize() Summary {
	return Summary{
		Count:  s.Count(),
		Mean:   s.Mean(),
		Min:    s.Min(),
		Max:    s.Max(),
		P50:    s.Percentile(50),
		P95:    s.Percentile(95),
		P99:    s.Percentile(99),
		Stddev: s.Stddev(),
	}
}

func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.3g p50=%.3g p95=%.3g p99=%.3g max=%.3g",
		s.Count, s.Mean, s.P50, s.P95, s.P99, s.Max)
}

// Hist is a log2-bucketed histogram of non-negative integer values
// (e.g. latencies in microseconds). Bucket i holds values in
// [2^i, 2^(i+1)).
type Hist struct {
	buckets [64]uint64
	count   uint64
	sum     uint64
	max     uint64
}

// Observe records one value.
func (h *Hist) Observe(v uint64) {
	i := 0
	for x := v; x > 1; x >>= 1 {
		i++
	}
	h.buckets[i]++
	h.count++
	h.sum += v
	if v > h.max {
		h.max = v
	}
}

// Count returns the number of observations.
func (h *Hist) Count() uint64 { return h.count }

// Max returns the largest observation.
func (h *Hist) Max() uint64 { return h.max }

// Mean returns the mean observation.
func (h *Hist) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.count)
}

// Quantile returns an upper bound for the q-quantile (q in [0,1]) from
// the bucket boundaries.
func (h *Hist) Quantile(q float64) uint64 {
	if h.count == 0 {
		return 0
	}
	target := uint64(math.Ceil(q * float64(h.count)))
	if target == 0 {
		target = 1
	}
	var cum uint64
	for i, c := range h.buckets {
		cum += c
		if cum >= target {
			return 1 << uint(i+1)
		}
	}
	return h.max
}

// Point is one (time, value) observation of a time series.
type Point struct {
	T float64 // seconds
	V float64
}

// Series is an append-only time series.
type Series struct {
	Name   string
	Points []Point
}

// Add appends a point.
func (s *Series) Add(t, v float64) { s.Points = append(s.Points, Point{T: t, V: v}) }

// Len returns the number of points.
func (s *Series) Len() int { return len(s.Points) }

// MeanV returns the mean of the values.
func (s *Series) MeanV() float64 {
	if len(s.Points) == 0 {
		return 0
	}
	sum := 0.0
	for _, p := range s.Points {
		sum += p.V
	}
	return sum / float64(len(s.Points))
}

// MaxV returns the maximum value.
func (s *Series) MaxV() float64 {
	if len(s.Points) == 0 {
		return 0
	}
	m := s.Points[0].V
	for _, p := range s.Points {
		if p.V > m {
			m = p.V
		}
	}
	return m
}

// Downsample reduces the series to at most n points by averaging
// equal-size chunks (for compact text plots).
func (s *Series) Downsample(n int) Series {
	out := Series{Name: s.Name}
	if n <= 0 || len(s.Points) == 0 {
		return out
	}
	if len(s.Points) <= n {
		out.Points = append(out.Points, s.Points...)
		return out
	}
	chunk := float64(len(s.Points)) / float64(n)
	for i := 0; i < n; i++ {
		lo := int(float64(i) * chunk)
		hi := int(float64(i+1) * chunk)
		if hi > len(s.Points) {
			hi = len(s.Points)
		}
		if lo >= hi {
			continue
		}
		var st, sv float64
		for _, p := range s.Points[lo:hi] {
			st += p.T
			sv += p.V
		}
		c := float64(hi - lo)
		out.Points = append(out.Points, Point{T: st / c, V: sv / c})
	}
	return out
}

// Welford is an online mean/variance accumulator.
type Welford struct {
	n    int
	mean float64
	m2   float64
}

// Add folds in one observation.
func (w *Welford) Add(v float64) {
	w.n++
	d := v - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (v - w.mean)
}

// Count returns the number of observations.
func (w *Welford) Count() int { return w.n }

// Mean returns the running mean.
func (w *Welford) Mean() float64 { return w.mean }

// Variance returns the running population variance.
func (w *Welford) Variance() float64 {
	if w.n == 0 {
		return 0
	}
	return w.m2 / float64(w.n)
}

// Stddev returns the running population standard deviation.
func (w *Welford) Stddev() float64 { return math.Sqrt(w.Variance()) }

// EWMA is an exponentially weighted moving average.
type EWMA struct {
	Alpha float64 // weight of the newest observation, (0,1]
	v     float64
	init  bool
}

// Add folds in one observation and returns the new average.
func (e *EWMA) Add(v float64) float64 {
	if !e.init {
		e.v = v
		e.init = true
		return v
	}
	e.v = e.Alpha*v + (1-e.Alpha)*e.v
	return e.v
}

// Value returns the current average.
func (e *EWMA) Value() float64 { return e.v }

// Deviation accumulates |reported - truth| pairs — the paper's
// accuracy metric (Figure 5).
type Deviation struct {
	abs Sample
}

// Observe records one (reported, truth) pair.
func (d *Deviation) Observe(reported, truth float64) {
	d.abs.Add(math.Abs(reported - truth))
}

// Count returns the number of pairs observed.
func (d *Deviation) Count() int { return d.abs.Count() }

// MeanAbs returns the mean absolute deviation.
func (d *Deviation) MeanAbs() float64 { return d.abs.Mean() }

// MaxAbs returns the maximum absolute deviation.
func (d *Deviation) MaxAbs() float64 { return d.abs.Max() }

// P95Abs returns the 95th percentile absolute deviation.
func (d *Deviation) P95Abs() float64 { return d.abs.Percentile(95) }
