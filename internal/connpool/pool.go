// Package connpool is the connection-lifecycle manager shared by both
// transports: the simulated verbs fabric (QPs on simnet) and the live
// TCP verbs emulation (tcpverbs.Conn). It owns the part of connection
// scaling the paper never had to face — at O(10k) monitored back-ends
// a dedicated connection per target stops being affordable, so
// connections become a managed, budgeted, recycled resource
// (RDMAvisor's argument for datacenter-scale RDMA).
//
// The pool provides:
//
//   - on-demand acquisition: a probe asks for a connection to its
//     target; the pool hands back an existing one, tells the caller to
//     dial (within budgets), or sheds the request;
//   - explicit resource budgets: max live connections, an fd budget
//     covering live conns plus in-flight dials, bounded dial
//     concurrency and a token-bucket dial rate — exhausting any of
//     them degrades gracefully instead of dial-storming;
//   - quiet-first eviction: when a hot target needs a slot, the least
//     recently used idle connection of a quiet target is recycled
//     first, so budget pressure lands on back-ends whose staleness
//     SLO is already relaxed;
//   - idle GC with an epoch fence: every recycle (eviction, idle GC,
//     error, reset) bumps the target's epoch; a lease posted against
//     an older epoch fails the fence at completion and must be
//     replayed, never silently served stale (Storm's epoch protection
//     for recycled one-sided resources);
//   - per-target dial circuit breakers with jittered exponential
//     backoff, layered under the probe-level core.Failover breaker:
//     the pool protects the dial path, Failover protects the probe
//     path.
//
// The pool is deliberately transport-free: connections are opaque
// values the caller dials and closes, time is an injected nanosecond
// clock, and the backoff jitter RNG is seedable — so the simulated
// monitor drives it deterministically from the engine clock while the
// live monitor drives it from time.Now.
package connpool

import (
	crand "crypto/rand"
	"encoding/binary"
	"errors"
	"math/rand"
	"sync"
	"time"
)

// ErrClosed is returned by operations on a closed pool.
var ErrClosed = errors.New("connpool: pool closed")

// Config tunes a pool. The zero value means "no budgets": unlimited
// conns and dial rate, no idle GC — useful for tests, not production.
type Config struct {
	// MaxConns caps live connections plus in-flight dials (0 =
	// unlimited).
	MaxConns int
	// FDBudget caps file descriptors: every live connection and every
	// in-flight dial holds one (0 = MaxConns).
	FDBudget int
	// MaxDialing bounds concurrent dial attempts (0 = 16). A dial
	// storm against a flapping fleet is absorbed here instead of
	// stampeding the dialer.
	MaxDialing int
	// DialsPerSec is the sustained dial-rate budget, enforced by a
	// token bucket (0 = unlimited).
	DialsPerSec float64
	// DialBurst is the bucket depth (0 = max(1, DialsPerSec/4)).
	DialBurst int
	// IdleAfterNS garbage-collects a connection idle this long, in
	// nanoseconds (0 = no idle GC; eviction still recycles).
	IdleAfterNS int64
	// BackoffNS / BackoffMaxNS bound the per-target redial backoff
	// (defaults 25ms / 2s), doubled per consecutive failure with
	// ±25% jitter.
	BackoffNS    int64
	BackoffMaxNS int64
	// BreakAfter consecutive dial/op failures open the target's
	// breaker (default 3); ReopenAfterNS later one half-open dial is
	// allowed through (default 1s).
	BreakAfter    int
	ReopenAfterNS int64
}

func (c Config) withDefaults() Config {
	if c.FDBudget <= 0 {
		c.FDBudget = c.MaxConns
	}
	if c.MaxDialing <= 0 {
		c.MaxDialing = 16
	}
	if c.DialBurst <= 0 {
		c.DialBurst = int(c.DialsPerSec / 4)
		if c.DialBurst < 1 {
			c.DialBurst = 1
		}
	}
	if c.BackoffNS <= 0 {
		c.BackoffNS = 25 * int64(time.Millisecond)
	}
	if c.BackoffMaxNS <= 0 {
		c.BackoffMaxNS = 2 * int64(time.Second)
	}
	if c.BreakAfter <= 0 {
		c.BreakAfter = 3
	}
	if c.ReopenAfterNS <= 0 {
		c.ReopenAfterNS = int64(time.Second)
	}
	return c
}

// Verdict is the pool's answer to an Acquire.
type Verdict int

const (
	// Conn: the lease carries a live connection; use it, then Release.
	Conn Verdict = iota
	// Dial: the pool reserved a dial slot, token and fd; the caller
	// must dial and report DialDone or DialFailed.
	Dial
	// Shed: no connection and no budget to make one — defer the work
	// (quiet targets) or fall over to a budget-free path (hot ones).
	Shed
)

// ShedReason says which budget or guard shed an Acquire.
type ShedReason int

const (
	ShedNone    ShedReason = iota
	ShedBreaker            // target's dial breaker is open
	ShedBackoff            // target is in dial backoff
	ShedDialing            // a dial to this target is already in flight
	ShedConns              // MaxConns reached, nothing evictable
	ShedFDs                // fd budget exhausted, nothing evictable
	ShedRate               // dial token bucket empty
	ShedDialCap            // MaxDialing concurrent dials reached
)

func (r ShedReason) String() string {
	switch r {
	case ShedNone:
		return "none"
	case ShedBreaker:
		return "breaker"
	case ShedBackoff:
		return "backoff"
	case ShedDialing:
		return "dialing"
	case ShedConns:
		return "conns"
	case ShedFDs:
		return "fds"
	case ShedRate:
		return "dial-rate"
	case ShedDialCap:
		return "dial-cap"
	}
	return "?"
}

// Lease is one caller's epoch-fenced hold on a pooled connection.
type Lease[K comparable, C any] struct {
	Key   K
	Epoch uint64
	Conn  C
}

// Stats is a snapshot of the pool's counters.
type Stats struct {
	Live    int // connections currently installed
	Dialing int // dials currently in flight
	MaxLive int // high-water mark of Live+Dialing

	Dials      uint64 // dials started
	DialErrors uint64 // dials reported failed
	Evictions  uint64 // idle conns recycled to make room
	IdleGCs    uint64 // idle conns recycled by the idle timer
	Recycles   uint64 // conns recycled after an operation error

	FenceRejected uint64 // completions rejected by the epoch fence
	StaleReleases uint64 // releases of already-recycled leases

	BreakerOpens  uint64 // dial breakers tripped open
	BreakerCloses uint64 // dial breakers closed again

	// Sheds, indexed by ShedReason, counts deferred acquisitions.
	Sheds [ShedDialCap + 1]uint64
}

// ShedTotal sums sheds across reasons.
func (s Stats) ShedTotal() uint64 {
	var n uint64
	for _, v := range s.Sheds {
		n += v
	}
	return n
}

// entry is one target's state. Idle entries (conn installed, no
// leases out) sit on one of two LRU lists: quiet or hot, by the hot
// flag of their last acquisition.
type entry[K comparable, C any] struct {
	key   K
	conn  C
	has   bool
	epoch uint64

	inflight int
	hot      bool
	lastUsed int64

	prev, next *entry[K, C]
	list       int // 0 = none, 1 = quiet idle, 2 = hot idle

	dialing    bool
	fails      int   // consecutive dial/op failures
	backoff    int64 // current backoff, ns
	nextDialAt int64
	openUntil  int64 // breaker open until (0 = closed)
	halfOpen   bool  // one probe dial is out under a half-open breaker
}

// lruList is an intrusive doubly-linked LRU of idle entries.
type lruList[K comparable, C any] struct {
	head, tail *entry[K, C]
	n          int
}

func (l *lruList[K, C]) push(e *entry[K, C]) { // to tail (most recent)
	e.prev, e.next = l.tail, nil
	if l.tail != nil {
		l.tail.next = e
	} else {
		l.head = e
	}
	l.tail = e
	l.n++
}

func (l *lruList[K, C]) remove(e *entry[K, C]) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		l.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		l.tail = e.prev
	}
	e.prev, e.next = nil, nil
	l.n--
}

// Pool manages connections keyed by target. Safe for concurrent use;
// in the simulator every call happens on the engine goroutine, so the
// lock is uncontended and decisions stay deterministic.
type Pool[K comparable, C any] struct {
	mu  sync.Mutex
	cfg Config
	now func() int64

	entries map[K]*entry[K, C]
	quiet   lruList[K, C] // idle conns of quiet targets (evicted first)
	hotIdle lruList[K, C] // idle conns of hot targets

	live    int
	dialing int

	tokens     float64
	lastRefill int64

	rng    *rand.Rand
	closed bool

	// OnClose, if set, is called (outside the pool lock is NOT
	// guaranteed; keep it cheap) with every connection the pool
	// recycles or closes, so the transport can release it.
	OnClose func(K, C)
	// OnDial, if set, observes every dial start with its timestamp —
	// the scale experiment audits the dial rate through it.
	OnDial func(K, int64)

	stats Stats
}

// New creates a pool with clock now (nanoseconds). The backoff jitter
// RNG is seeded from the system entropy pool; SeedJitter pins it.
func New[K comparable, C any](cfg Config, now func() int64) *Pool[K, C] {
	p := &Pool[K, C]{
		cfg:     cfg.withDefaults(),
		now:     now,
		entries: make(map[K]*entry[K, C]),
		rng:     rand.New(rand.NewSource(entropySeed())),
	}
	p.tokens = float64(p.cfg.DialBurst)
	p.lastRefill = now()
	return p
}

func entropySeed() int64 {
	var b [8]byte
	if _, err := crand.Read(b[:]); err != nil {
		return time.Now().UnixNano()
	}
	return int64(binary.BigEndian.Uint64(b[:]))
}

// SeedJitter makes the backoff jitter deterministic (the simulated
// cluster and tests pin it; live deployments keep the entropy seed).
func (p *Pool[K, C]) SeedJitter(seed int64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.rng = rand.New(rand.NewSource(seed))
}

func (p *Pool[K, C]) entry(key K) *entry[K, C] {
	e := p.entries[key]
	if e == nil {
		e = &entry[K, C]{key: key}
		p.entries[key] = e
	}
	return e
}

func (p *Pool[K, C]) refill(now int64) {
	if p.cfg.DialsPerSec <= 0 {
		return
	}
	dt := now - p.lastRefill
	if dt <= 0 {
		return
	}
	p.tokens += float64(dt) * p.cfg.DialsPerSec / 1e9
	if max := float64(p.cfg.DialBurst); p.tokens > max {
		p.tokens = max
	}
	p.lastRefill = now
}

func (p *Pool[K, C]) shed(r ShedReason) (Lease[K, C], Verdict, ShedReason) {
	p.stats.Sheds[r]++
	return Lease[K, C]{}, Shed, r
}

// Acquire asks for a connection to key. hot marks the caller as
// SLO-critical: hot acquisitions may evict any idle connection to
// make room, quiet ones only other quiet targets' — budget pressure
// sheds the quiet fleet first.
func (p *Pool[K, C]) Acquire(key K, hot bool) (Lease[K, C], Verdict, ShedReason) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return p.shed(ShedConns)
	}
	now := p.now()
	e := p.entry(key)
	e.hot = hot
	if e.has {
		if e.list != 0 {
			p.listOf(e).remove(e)
			e.list = 0
		}
		e.inflight++
		e.lastUsed = now
		return Lease[K, C]{Key: key, Epoch: e.epoch, Conn: e.conn}, Conn, ShedNone
	}
	// No connection: can we dial?
	if e.dialing {
		return p.shed(ShedDialing)
	}
	if e.openUntil != 0 {
		if now < e.openUntil || e.halfOpen {
			return p.shed(ShedBreaker)
		}
		// Half-open: let exactly one probe dial through.
		e.halfOpen = true
	}
	if now < e.nextDialAt {
		return p.shed(ShedBackoff)
	}
	if p.dialing >= p.cfg.MaxDialing {
		return p.shed(ShedDialCap)
	}
	if p.cfg.MaxConns > 0 && p.live+p.dialing >= p.cfg.MaxConns {
		if !p.evictLocked(hot) {
			return p.shed(ShedConns)
		}
	}
	if p.cfg.FDBudget > 0 && p.live+p.dialing >= p.cfg.FDBudget {
		if !p.evictLocked(hot) {
			return p.shed(ShedFDs)
		}
	}
	p.refill(now)
	if p.cfg.DialsPerSec > 0 {
		if p.tokens < 1 {
			return p.shed(ShedRate)
		}
		p.tokens--
	}
	e.dialing = true
	p.dialing++
	if p.live+p.dialing > p.stats.MaxLive {
		p.stats.MaxLive = p.live + p.dialing
	}
	p.stats.Dials++
	if p.OnDial != nil {
		p.OnDial(key, now)
	}
	return Lease[K, C]{}, Dial, ShedNone
}

func (p *Pool[K, C]) listOf(e *entry[K, C]) *lruList[K, C] {
	if e.list == 2 {
		return &p.hotIdle
	}
	return &p.quiet
}

// evictLocked recycles the least recently used idle connection to
// free a slot: quiet targets first; hot callers may also claim a hot
// target's idle conn. Reports whether a slot was freed.
func (p *Pool[K, C]) evictLocked(hot bool) bool {
	victim := p.quiet.head
	if victim == nil && hot {
		victim = p.hotIdle.head
	}
	if victim == nil {
		return false
	}
	p.stats.Evictions++
	p.recycleLocked(victim)
	return true
}

// recycleLocked closes an entry's connection and bumps its epoch, so
// outstanding leases against it fail the fence.
func (p *Pool[K, C]) recycleLocked(e *entry[K, C]) {
	if !e.has {
		return
	}
	if e.list != 0 {
		p.listOf(e).remove(e)
		e.list = 0
	}
	conn := e.conn
	var zero C
	e.conn = zero
	e.has = false
	e.epoch++
	e.inflight = 0
	p.live--
	if p.OnClose != nil {
		p.OnClose(e.key, conn)
	}
}

// DialDone reports a successful dial and returns the caller's lease
// on the fresh connection.
func (p *Pool[K, C]) DialDone(key K, conn C) (Lease[K, C], error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	e := p.entry(key)
	if e.dialing {
		e.dialing = false
		p.dialing--
	}
	if p.closed {
		if p.OnClose != nil {
			p.OnClose(key, conn)
		}
		return Lease[K, C]{}, ErrClosed
	}
	if e.has {
		// A connection appeared while we dialed (shouldn't happen with
		// the ShedDialing guard, but be safe): drop ours.
		if p.OnClose != nil {
			p.OnClose(key, conn)
		}
	} else {
		e.conn = conn
		e.has = true
		e.epoch++
		p.live++
	}
	e.inflight++
	e.lastUsed = p.now()
	e.fails = 0
	e.backoff = 0
	e.nextDialAt = 0
	if e.openUntil != 0 {
		e.openUntil = 0
		e.halfOpen = false
		p.stats.BreakerCloses++
	}
	return Lease[K, C]{Key: key, Epoch: e.epoch, Conn: e.conn}, nil
}

// DialFailed reports a failed dial: the backoff grows, and enough
// consecutive failures open the target's breaker.
func (p *Pool[K, C]) DialFailed(key K) {
	p.mu.Lock()
	defer p.mu.Unlock()
	e := p.entry(key)
	if e.dialing {
		e.dialing = false
		p.dialing--
	}
	p.stats.DialErrors++
	p.failLocked(e)
}

// DialAborted reports a dial that failed before reaching the target —
// a local resource failure (process fd limit, CM queue full) rather
// than the target misbehaving. The dial slot frees and the error is
// counted, but the target's breaker and backoff are NOT charged: when
// the local resource recovers, the target is dialable immediately.
// Callers should shed/defer the probe instead of failing it.
func (p *Pool[K, C]) DialAborted(key K) {
	p.mu.Lock()
	defer p.mu.Unlock()
	e := p.entry(key)
	if e.dialing {
		e.dialing = false
		p.dialing--
	}
	p.stats.DialErrors++
	p.stats.Sheds[ShedFDs]++
}

// failLocked advances an entry's failure bookkeeping (dial failures
// and operation errors both count toward the breaker).
func (p *Pool[K, C]) failLocked(e *entry[K, C]) {
	e.fails++
	if e.backoff <= 0 {
		e.backoff = p.cfg.BackoffNS
	} else {
		e.backoff *= 2
		if e.backoff > p.cfg.BackoffMaxNS {
			e.backoff = p.cfg.BackoffMaxNS
		}
	}
	jitter := 1 + 0.25*(2*p.rng.Float64()-1)
	e.nextDialAt = p.now() + int64(float64(e.backoff)*jitter)
	if e.halfOpen {
		// The half-open probe failed: re-open for another full window.
		e.halfOpen = false
		e.openUntil = p.now() + p.cfg.ReopenAfterNS
		p.stats.BreakerOpens++
		return
	}
	if e.openUntil == 0 && e.fails >= p.cfg.BreakAfter {
		e.openUntil = p.now() + p.cfg.ReopenAfterNS
		p.stats.BreakerOpens++
	}
}

// Ready reports whether Acquire(key) would hand back a connection
// immediately — no dial, no shed. Callers planning a doorbell batch
// use it to extend the batch only over targets that can join without
// dialing. (Single-threaded callers — the simulator — get an exact
// answer; concurrent ones a hint.)
func (p *Pool[K, C]) Ready(key K) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return false
	}
	e := p.entries[key]
	return e != nil && e.has
}

// Invalidate recycles a lease's connection WITHOUT charging the
// target's breaker or backoff: the transport reported the connection
// itself died (listener reset, QP error) rather than the target
// misbehaving, so the caller may redial immediately. A stale lease is
// a counted no-op, like Release.
func (p *Pool[K, C]) Invalidate(l Lease[K, C]) {
	p.mu.Lock()
	defer p.mu.Unlock()
	e := p.entries[l.Key]
	if e == nil || !e.has || e.epoch != l.Epoch {
		p.stats.StaleReleases++
		return
	}
	if e.inflight > 0 {
		e.inflight--
	}
	p.stats.Recycles++
	p.recycleLocked(e)
}

// Fence checks a completion's lease against the target's current
// epoch: true means the data may be served; false means the
// connection was recycled while the operation was in flight — the
// result must be discarded and the operation replayed.
func (p *Pool[K, C]) Fence(l Lease[K, C]) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	e := p.entries[l.Key]
	if e != nil && e.has && e.epoch == l.Epoch {
		return true
	}
	p.stats.FenceRejected++
	return false
}

// Release returns a lease. A non-nil opErr recycles the connection
// (next acquire redials) and feeds the target's breaker; a clean
// release parks the connection on the idle LRU.
func (p *Pool[K, C]) Release(l Lease[K, C], opErr error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	e := p.entries[l.Key]
	if e == nil || !e.has || e.epoch != l.Epoch {
		p.stats.StaleReleases++
		return
	}
	if e.inflight > 0 {
		e.inflight--
	}
	e.lastUsed = p.now()
	if opErr != nil {
		p.stats.Recycles++
		p.recycleLocked(e)
		p.failLocked(e)
		return
	}
	e.fails = 0
	if e.halfOpen || e.openUntil != 0 {
		e.halfOpen = false
		e.openUntil = 0
		p.stats.BreakerCloses++
	}
	if e.inflight == 0 && e.list == 0 {
		if e.hot {
			e.list = 2
		} else {
			e.list = 1
		}
		p.listOf(e).push(e)
	}
}

// GC recycles idle connections older than IdleAfterNS. Call it
// periodically (each monitor sweep; a ticker on the live side).
func (p *Pool[K, C]) GC() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.cfg.IdleAfterNS <= 0 || p.closed {
		return
	}
	cutoff := p.now() - p.cfg.IdleAfterNS
	for _, l := range []*lruList[K, C]{&p.quiet, &p.hotIdle} {
		for l.head != nil && l.head.lastUsed <= cutoff {
			p.stats.IdleGCs++
			p.recycleLocked(l.head)
		}
	}
}

// BreakersOpen counts targets whose dial breaker is currently open.
func (p *Pool[K, C]) BreakersOpen() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	n := 0
	now := p.now()
	for _, e := range p.entries {
		if e.openUntil != 0 && now < e.openUntil {
			n++
		}
	}
	return n
}

// Stats snapshots the pool's counters.
func (p *Pool[K, C]) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	s := p.stats
	s.Live = p.live
	s.Dialing = p.dialing
	return s
}

// Close recycles every connection and rejects further acquisitions.
// Idempotent. Outstanding leases become stale (their Release is a
// counted no-op), so Close never blocks on in-flight work.
func (p *Pool[K, C]) Close() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return
	}
	p.closed = true
	for _, e := range p.entries {
		p.recycleLocked(e)
	}
}
