package connpool

import (
	"errors"
	"testing"
	"time"
)

// fakeClock is a manually advanced nanosecond clock.
type fakeClock struct{ now int64 }

func (c *fakeClock) fn() func() int64        { return func() int64 { return c.now } }
func (c *fakeClock) advance(d time.Duration) { c.now += int64(d) }

var errOp = errors.New("op failed")

// dialAndHold drives the Acquire→Dial→DialDone handshake for tests.
func dialAndHold(t *testing.T, p *Pool[int, string], key int, hot bool) Lease[int, string] {
	t.Helper()
	_, v, r := p.Acquire(key, hot)
	if v != Dial {
		t.Fatalf("Acquire(%d): verdict %v (shed %v), want Dial", key, v, r)
	}
	l, err := p.DialDone(key, "conn")
	if err != nil {
		t.Fatalf("DialDone(%d): %v", key, err)
	}
	return l
}

func TestAcquireDialReuse(t *testing.T) {
	clk := &fakeClock{}
	p := New[int, string](Config{MaxConns: 4}, clk.fn())
	p.SeedJitter(1)

	l := dialAndHold(t, p, 7, true)
	if !p.Fence(l) {
		t.Fatal("fresh lease failed fence")
	}
	p.Release(l, nil)

	// Second acquire reuses the idle conn, same epoch, no dial.
	l2, v, _ := p.Acquire(7, true)
	if v != Conn || l2.Epoch != l.Epoch {
		t.Fatalf("reacquire: verdict %v epoch %d, want Conn epoch %d", v, l2.Epoch, l.Epoch)
	}
	p.Release(l2, nil)
	s := p.Stats()
	if s.Dials != 1 || s.Live != 1 {
		t.Fatalf("stats: dials %d live %d, want 1/1", s.Dials, s.Live)
	}
}

func TestEpochFenceOnRecycle(t *testing.T) {
	clk := &fakeClock{}
	var closed []int
	p := New[int, string](Config{MaxConns: 4}, clk.fn())
	p.SeedJitter(1)
	p.OnClose = func(k int, _ string) { closed = append(closed, k) }

	l := dialAndHold(t, p, 1, true)
	// The op fails: Release recycles the conn and bumps the epoch.
	p.Release(l, errOp)
	if len(closed) != 1 || closed[0] != 1 {
		t.Fatalf("recycle did not close conn: %v", closed)
	}
	if p.Fence(l) {
		t.Fatal("stale lease passed fence after recycle")
	}
	s := p.Stats()
	if s.Recycles != 1 || s.FenceRejected != 1 || s.Live != 0 {
		t.Fatalf("stats after recycle: %+v", s)
	}
	// Releasing the stale lease again is a counted no-op.
	p.Release(l, nil)
	if got := p.Stats().StaleReleases; got != 1 {
		t.Fatalf("stale releases = %d, want 1", got)
	}
}

func TestQuietFirstEviction(t *testing.T) {
	clk := &fakeClock{}
	var closed []int
	p := New[int, string](Config{MaxConns: 2}, clk.fn())
	p.SeedJitter(1)
	p.OnClose = func(k int, _ string) { closed = append(closed, k) }

	lq := dialAndHold(t, p, 1, false) // quiet
	p.Release(lq, nil)
	clk.advance(time.Millisecond)
	lh := dialAndHold(t, p, 2, true) // hot
	p.Release(lh, nil)

	// Pool is full (2/2). A hot acquire of a third target must evict
	// the quiet idle conn (target 1), not the hot one.
	_, v, _ := p.Acquire(3, true)
	if v != Dial {
		t.Fatalf("hot acquire at capacity: verdict %v, want Dial (after eviction)", v)
	}
	if len(closed) != 1 || closed[0] != 1 {
		t.Fatalf("evicted %v, want quiet target 1", closed)
	}
	if _, err := p.DialDone(3, "c3"); err != nil {
		t.Fatal(err)
	}
	// The evicted target's old lease fences stale.
	if p.Fence(lq) {
		t.Fatal("lease on evicted conn passed fence")
	}

	// A quiet acquire of a fourth target has only hot idle conns to
	// evict — it must shed instead.
	_, v, r := p.Acquire(4, false)
	if v != Shed || r != ShedConns {
		t.Fatalf("quiet acquire: verdict %v reason %v, want Shed/conns", v, r)
	}
	if got := p.Stats().Evictions; got != 1 {
		t.Fatalf("evictions = %d, want 1", got)
	}
}

func TestInflightConnsAreNeverEvicted(t *testing.T) {
	clk := &fakeClock{}
	p := New[int, string](Config{MaxConns: 1}, clk.fn())
	p.SeedJitter(1)

	l := dialAndHold(t, p, 1, false) // quiet but in flight
	_, v, r := p.Acquire(2, true)
	if v != Shed || r != ShedConns {
		t.Fatalf("verdict %v reason %v, want Shed/conns (in-flight conn pinned)", v, r)
	}
	if !p.Fence(l) {
		t.Fatal("in-flight lease must stay valid")
	}
	p.Release(l, nil)
}

func TestDialRateTokenBucket(t *testing.T) {
	clk := &fakeClock{}
	p := New[int, string](Config{MaxConns: 100, DialsPerSec: 10, DialBurst: 2}, clk.fn())
	p.SeedJitter(1)

	// Burst of 2 allowed, third sheds on rate.
	for k := 0; k < 2; k++ {
		if _, v, r := p.Acquire(k, true); v != Dial {
			t.Fatalf("dial %d: verdict %v (%v)", k, v, r)
		}
	}
	if _, v, r := p.Acquire(2, true); v != Shed || r != ShedRate {
		t.Fatalf("verdict %v reason %v, want Shed/dial-rate", v, r)
	}
	// 100ms refills one token at 10/s.
	clk.advance(100 * time.Millisecond)
	if _, v, r := p.Acquire(2, true); v != Dial {
		t.Fatalf("after refill: verdict %v (%v), want Dial", v, r)
	}
	if got := p.Stats().Sheds[ShedRate]; got != 1 {
		t.Fatalf("rate sheds = %d, want 1", got)
	}
}

func TestFDBudgetCountsDialsInFlight(t *testing.T) {
	clk := &fakeClock{}
	p := New[int, string](Config{MaxConns: 10, FDBudget: 1}, clk.fn())
	p.SeedJitter(1)

	if _, v, _ := p.Acquire(1, true); v != Dial {
		t.Fatal("first dial should start")
	}
	// Dial still in flight holds the only fd.
	if _, v, r := p.Acquire(2, true); v != Shed || r != ShedFDs {
		t.Fatalf("verdict %v reason %v, want Shed/fds", v, r)
	}
	if _, err := p.DialDone(1, "c"); err != nil {
		t.Fatal(err)
	}
}

func TestDialBackoffAndBreaker(t *testing.T) {
	clk := &fakeClock{}
	p := New[int, string](Config{
		MaxConns: 4, BreakAfter: 3,
		BackoffNS:     int64(10 * time.Millisecond),
		BackoffMaxNS:  int64(80 * time.Millisecond),
		ReopenAfterNS: int64(time.Second),
	}, clk.fn())
	p.SeedJitter(42)

	fail := func() {
		t.Helper()
		if _, v, r := p.Acquire(9, true); v != Dial {
			t.Fatalf("verdict %v (%v), want Dial", v, r)
		}
		p.DialFailed(9)
	}

	fail()
	// Immediately after a failure the target is in backoff.
	if _, v, r := p.Acquire(9, true); v != Shed || r != ShedBackoff {
		t.Fatalf("verdict %v reason %v, want Shed/backoff", v, r)
	}
	clk.advance(20 * time.Millisecond) // > 10ms +25% jitter
	fail()
	clk.advance(40 * time.Millisecond)
	fail() // third consecutive failure opens the breaker
	s := p.Stats()
	if s.BreakerOpens != 1 {
		t.Fatalf("breaker opens = %d, want 1", s.BreakerOpens)
	}
	if p.BreakersOpen() != 1 {
		t.Fatalf("BreakersOpen = %d, want 1", p.BreakersOpen())
	}
	clk.advance(500 * time.Millisecond)
	if _, v, r := p.Acquire(9, true); v != Shed || r != ShedBreaker {
		t.Fatalf("half-way through open window: verdict %v reason %v", v, r)
	}

	// After the reopen window one half-open dial goes through; its
	// success closes the breaker.
	clk.advance(600 * time.Millisecond)
	if _, v, r := p.Acquire(9, true); v != Dial {
		t.Fatalf("half-open probe: verdict %v (%v), want Dial", v, r)
	}
	l, err := p.DialDone(9, "c")
	if err != nil {
		t.Fatal(err)
	}
	p.Release(l, nil)
	s = p.Stats()
	if s.BreakerCloses != 1 || p.BreakersOpen() != 0 {
		t.Fatalf("breaker not closed: %+v open=%d", s, p.BreakersOpen())
	}
}

func TestHalfOpenFailureReopens(t *testing.T) {
	clk := &fakeClock{}
	p := New[int, string](Config{
		MaxConns: 4, BreakAfter: 1,
		BackoffNS: int64(time.Millisecond), ReopenAfterNS: int64(100 * time.Millisecond),
	}, clk.fn())
	p.SeedJitter(7)

	if _, v, _ := p.Acquire(3, true); v != Dial {
		t.Fatal("want Dial")
	}
	p.DialFailed(3) // opens (BreakAfter=1)
	clk.advance(150 * time.Millisecond)
	if _, v, _ := p.Acquire(3, true); v != Dial {
		t.Fatal("half-open dial should be allowed")
	}
	// While the half-open dial is out, further acquires shed on breaker.
	if _, v, r := p.Acquire(3, true); v != Shed || r != ShedDialing {
		t.Fatalf("verdict %v reason %v, want Shed/dialing", v, r)
	}
	p.DialFailed(3)
	if got := p.Stats().BreakerOpens; got != 2 {
		t.Fatalf("breaker opens = %d, want 2 (reopened)", got)
	}
	if _, v, r := p.Acquire(3, true); v != Shed || r != ShedBreaker {
		t.Fatalf("verdict %v reason %v, want Shed/breaker after reopen", v, r)
	}
}

func TestIdleGC(t *testing.T) {
	clk := &fakeClock{}
	var closed int
	p := New[int, string](Config{MaxConns: 8, IdleAfterNS: int64(100 * time.Millisecond)}, clk.fn())
	p.SeedJitter(1)
	p.OnClose = func(int, string) { closed++ }

	l1 := dialAndHold(t, p, 1, false)
	p.Release(l1, nil)
	clk.advance(60 * time.Millisecond)
	l2 := dialAndHold(t, p, 2, true)
	p.Release(l2, nil)

	clk.advance(50 * time.Millisecond) // target 1 idle 110ms, target 2 idle 50ms
	p.GC()
	s := p.Stats()
	if s.IdleGCs != 1 || closed != 1 || s.Live != 1 {
		t.Fatalf("after GC: idleGCs=%d closed=%d live=%d, want 1/1/1", s.IdleGCs, closed, s.Live)
	}
	if p.Fence(l1) {
		t.Fatal("lease on GC'd conn passed fence")
	}
	clk.advance(100 * time.Millisecond)
	p.GC()
	if got := p.Stats().Live; got != 0 {
		t.Fatalf("live after full GC = %d, want 0", got)
	}
}

func TestCloseIdempotentAndDrains(t *testing.T) {
	clk := &fakeClock{}
	var closed int
	p := New[int, string](Config{MaxConns: 8}, clk.fn())
	p.SeedJitter(1)
	p.OnClose = func(int, string) { closed++ }

	l := dialAndHold(t, p, 1, true)
	p.Close()
	p.Close() // idempotent
	if closed != 1 {
		t.Fatalf("closed %d conns, want 1", closed)
	}
	if p.Stats().Live != 0 {
		t.Fatal("live conns survived Close")
	}
	// In-flight lease resolves as a stale release, never blocks.
	p.Release(l, nil)
	if got := p.Stats().StaleReleases; got != 1 {
		t.Fatalf("stale releases = %d, want 1", got)
	}
	// Acquire after close sheds; DialDone after close closes the conn.
	if _, v, _ := p.Acquire(2, true); v != Shed {
		t.Fatal("acquire after Close must shed")
	}
	if _, err := p.DialDone(3, "late"); err != ErrClosed {
		t.Fatalf("DialDone after Close: %v, want ErrClosed", err)
	}
	if closed != 2 {
		t.Fatalf("late-dial conn not closed (closed=%d)", closed)
	}
}

func TestDialConcurrencyCap(t *testing.T) {
	clk := &fakeClock{}
	p := New[int, string](Config{MaxConns: 100, MaxDialing: 2}, clk.fn())
	p.SeedJitter(1)
	for k := 0; k < 2; k++ {
		if _, v, _ := p.Acquire(k, true); v != Dial {
			t.Fatalf("dial %d blocked", k)
		}
	}
	if _, v, r := p.Acquire(5, true); v != Shed || r != ShedDialCap {
		t.Fatalf("verdict %v reason %v, want Shed/dial-cap", v, r)
	}
}

func TestJitterDeterminismUnderSeed(t *testing.T) {
	run := func() []int64 {
		clk := &fakeClock{}
		p := New[int, string](Config{MaxConns: 4, BackoffNS: int64(time.Millisecond)}, clk.fn())
		p.SeedJitter(99)
		var deadlines []int64
		for i := 0; i < 5; i++ {
			if _, v, _ := p.Acquire(1, true); v != Dial {
				t.Fatal("want Dial")
			}
			p.DialFailed(1)
			p.mu.Lock()
			deadlines = append(deadlines, p.entries[1].nextDialAt)
			p.mu.Unlock()
			clk.advance(time.Second)
		}
		return deadlines
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("seeded jitter diverged at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

// TestDialAbortedChargesNoBreaker covers the local-resource failure
// path: an aborted dial (process fd limit, CM queue full) frees the
// slot and counts an error plus an fd shed, but must NOT charge the
// target's breaker or backoff — the target is dialable again the
// moment the local resource recovers.
func TestDialAbortedChargesNoBreaker(t *testing.T) {
	clk := &fakeClock{}
	p := New[int, string](Config{MaxConns: 4, BreakAfter: 1}, clk.fn())
	p.SeedJitter(1)

	for i := 0; i < 3; i++ {
		if _, v, r := p.Acquire(7, true); v != Dial {
			t.Fatalf("round %d: verdict %v (shed %v), want Dial", i, v, r)
		}
		p.DialAborted(7)
	}
	s := p.Stats()
	if s.DialErrors != 3 || s.Sheds[ShedFDs] != 3 {
		t.Fatalf("stats after aborts: errors %d fd-sheds %d, want 3/3", s.DialErrors, s.Sheds[ShedFDs])
	}
	if s.BreakerOpens != 0 {
		t.Fatalf("aborted dials opened a breaker (BreakAfter=1 would trip on any charge)")
	}
	if s.Dialing != 0 {
		t.Fatalf("aborted dial left %d slots in flight", s.Dialing)
	}

	// Still immediately dialable: no backoff window was started.
	l := dialAndHold(t, p, 7, true)
	p.Release(l, nil)

	// Contrast: one genuine DialFailed with BreakAfter=1 trips the breaker.
	p2 := New[int, string](Config{MaxConns: 4, BreakAfter: 1}, clk.fn())
	p2.SeedJitter(1)
	if _, v, _ := p2.Acquire(7, true); v != Dial {
		t.Fatal("contrast acquire: want Dial")
	}
	p2.DialFailed(7)
	if p2.Stats().BreakerOpens != 1 {
		t.Fatal("genuine dial failure with BreakAfter=1 did not open the breaker")
	}
}
