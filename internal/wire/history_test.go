package wire

import (
	"encoding/binary"
	"hash/crc32"
	"testing"
)

func ringSample(seq uint32) LoadRecord {
	r := LoadRecord{
		NumCPU: 2, NodeID: 5, Seq: seq, KTimeNS: int64(seq) * 1e7,
		NrRunning: uint16(seq % 7), NrTasks: 50, Conns: uint16(seq % 13),
		MemUsedKB: 1 << 17, MemTotalKB: 1 << 20,
	}
	r.UtilPerMille[0] = uint16(100 * seq % 1000)
	return r
}

func TestHistoryRingRoundTrip(t *testing.T) {
	const k = 4
	h := NewHistoryRing(k, 5)
	if h.Size() != RingSize(k) {
		t.Fatalf("ring size %d, want %d", h.Size(), RingSize(k))
	}
	var v RingView

	// Empty ring decodes to zero samples.
	if err := DecodeRingInto(&v, h.Bytes()); err != nil {
		t.Fatalf("empty ring: %v", err)
	}
	if v.Count != 0 || v.K != k || v.NodeID != 5 {
		t.Fatalf("empty view = %+v", v)
	}

	// Push past a wrap and check newest-first ordering each time.
	for i := uint32(1); i <= 11; i++ {
		rec := ringSample(i)
		h.Push(&rec)
		if err := DecodeRingInto(&v, h.Bytes()); err != nil {
			t.Fatalf("push %d: %v", i, err)
		}
		want := int(i)
		if want > k {
			want = k
		}
		if v.Count != want {
			t.Fatalf("push %d: count %d, want %d", i, v.Count, want)
		}
		for j := 0; j < v.Count; j++ {
			if got, wantRec := v.Records[j], ringSample(i-uint32(j)); got != wantRec {
				t.Fatalf("push %d slot %d: got seq %d, want seq %d", i, j, got.Seq, wantRec.Seq)
			}
		}
		if v.Newest().Seq != i {
			t.Fatalf("push %d: newest seq %d", i, v.Newest().Seq)
		}
	}
	if h.Pushes() != 11 || v.Pushes != 11 {
		t.Fatalf("push counters: writer %d, view %d", h.Pushes(), v.Pushes)
	}
}

func TestHistoryRingEpoch(t *testing.T) {
	h := NewHistoryRing(2, 9)
	rec := ringSample(1)
	h.Push(&rec)
	h.BumpEpoch()
	var v RingView
	if err := DecodeRingInto(&v, h.Bytes()); err != nil {
		t.Fatalf("post-epoch decode: %v", err)
	}
	if v.Epoch != 1 {
		t.Fatalf("epoch %d, want 1", v.Epoch)
	}
	if v.Count != 1 || v.Newest().Seq != 1 {
		t.Fatalf("epoch bump disturbed samples: %+v", v)
	}
}

// TestHistoryRingTorn crafts the states a reader can snapshot while
// the writer is mid-update and checks each is reported as ErrTorn, not
// silently decoded and not confused with corruption.
func TestHistoryRingTorn(t *testing.T) {
	h := NewHistoryRing(3, 1)
	for i := uint32(1); i <= 5; i++ {
		rec := ringSample(i)
		h.Push(&rec)
	}
	le := binary.LittleEndian
	tr := HistHeaderSize + 3*RecordSize

	// Odd seq in the header: write in progress.
	torn := append([]byte(nil), h.Bytes()...)
	seq := le.Uint64(torn[16:])
	le.PutUint64(torn[16:], seq+1)
	le.PutUint64(torn[tr:], seq+1)
	le.PutUint32(torn[tr+8:], crc32.ChecksumIEEE(torn[:HistHeaderSize]))
	if err := DecodeRingInto(new(RingView), torn); err != ErrTorn {
		t.Fatalf("odd seq: err = %v, want ErrTorn", err)
	}

	// Header/trailer seq mismatch: snapshot straddled an update.
	torn = append(torn[:0], h.Bytes()...)
	le.PutUint64(torn[tr:], seq-2)
	if err := DecodeRingInto(new(RingView), torn); err != ErrTorn {
		t.Fatalf("echo mismatch: err = %v, want ErrTorn", err)
	}

	// A half-written slot with quiescent seq words is corruption, and
	// the slot's own CRC catches it.
	torn = append(torn[:0], h.Bytes()...)
	torn[HistHeaderSize+RecordSize/2] ^= 0x55
	err := DecodeRingInto(new(RingView), torn)
	if err != ErrChecksum && err != ErrMagic {
		t.Fatalf("corrupt slot: err = %v, want checksum/magic", err)
	}
}

func TestHistoryRingDecodeZeroAlloc(t *testing.T) {
	h := NewHistoryRing(8, 3)
	for i := uint32(1); i <= 20; i++ {
		rec := ringSample(i)
		h.Push(&rec)
	}
	var v RingView
	buf := h.Bytes()
	allocs := testing.AllocsPerRun(200, func() {
		if err := DecodeRingInto(&v, buf); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("DecodeRingInto allocates %.1f objects/op, want 0", allocs)
	}
	rec := ringSample(99)
	allocs = testing.AllocsPerRun(200, func() { h.Push(&rec) })
	if allocs != 0 {
		t.Fatalf("Push allocates %.1f objects/op, want 0", allocs)
	}
	var lr LoadRecord
	one := v.Records[0].Encode()
	allocs = testing.AllocsPerRun(200, func() {
		if err := DecodeInto(&lr, one); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("DecodeInto allocates %.1f objects/op, want 0", allocs)
	}
}
