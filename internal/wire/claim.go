package wire

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

// Dispatch claims generalize the lease (lease.go) from one word to a
// small table of per-shard words: every back-end shard has its own
// CAS-able claim word in the witness, and a front-end must hold the
// shard's claim to dispatch to the back-ends it covers. The layout is
// deliberately identical to the lease word — owner in the top 16 bits,
// epoch in the next 16, heartbeat stamp in the low 32 — so the same
// one-sided CAS protocol (renew by stamp+1, take over by epoch+1,
// post-time validity stamping) and the same epoch-fencing rules apply
// word for word. Anything that inspects epochs positionally (e.g. the
// live transport's fenced CAS) can treat lease and claim words alike.
//
// Like the lease, a claim also has a descriptive *record* — written
// one-sided by each epoch's winner, CRC-protected, observability only.
// A torn read of the record is detectable and harmless; the word alone
// decides ownership.

// ClaimMagic identifies a claim record ("RMCL").
const ClaimMagic uint32 = 0x524d434c

// ClaimVersion is the current claim record layout version.
const ClaimVersion uint8 = 1

// ClaimRecordSize is the exact encoded size in bytes.
const ClaimRecordSize = 48

// ClaimWordSize is the size of one claim word region: a single
// CAS-able 64-bit value.
const ClaimWordSize = 8

// ClaimVacantOwner is the owner field meaning "unclaimed". Owner IDs
// are 1-based, so a freshly registered all-zero region reads as vacant
// at epoch 0; a released word keeps its epoch (owner zeroed only), so
// the next winner still takes a strictly larger epoch.
const ClaimVacantOwner uint16 = 0

// PackClaimWord builds the 64-bit claim word: owner in the top 16
// bits, epoch in the next 16, heartbeat stamp in the low 32. A holder
// renews by CAS-ing stamp+1 over its own word; a bidder takes over by
// CAS-ing (itself, epoch+1, 0) over the word it last observed; a
// releasing holder CAS-es owner to 0 keeping epoch and stamp.
func PackClaimWord(owner, epoch uint16, stamp uint32) uint64 {
	return uint64(owner)<<48 | uint64(epoch)<<32 | uint64(stamp)
}

// UnpackClaimWord splits a claim word into its fields.
func UnpackClaimWord(w uint64) (owner, epoch uint16, stamp uint32) {
	return uint16(w >> 48), uint16(w >> 32), uint32(w)
}

// ClaimVacant reports whether the word names no owner (the epoch may
// still be nonzero: releases preserve it for monotonicity).
func ClaimVacant(w uint64) bool { return uint16(w>>48) == ClaimVacantOwner }

// WordEpoch extracts the epoch field shared by lease and claim words
// (bits 32..47). Fencing logic that only needs to compare epochs uses
// this instead of a full unpack.
func WordEpoch(w uint64) uint16 { return uint16(w >> 32) }

// ClaimRecord describes one shard's current claim grant. Owner is
// 1-based (0 means vacant, matching ClaimVacantOwner).
type ClaimRecord struct {
	Shard   uint16
	Owner   uint16
	Epoch   uint16
	Stamp   uint32
	GrantNS int64 // clock at epoch acquisition, ns
	TTLNS   int64 // holder-side validity window per renewal, ns
}

func (r ClaimRecord) String() string {
	return fmt.Sprintf("claim shard=%d owner=%d epoch=%d stamp=%d ttl=%dns",
		r.Shard, r.Owner, r.Epoch, r.Stamp, r.TTLNS)
}

// AppendTo encodes the record into dst (which must have
// ClaimRecordSize capacity from offset 0); dst is returned for
// chaining. Encoding never fails.
func (r ClaimRecord) AppendTo(dst []byte) []byte {
	if cap(dst) < ClaimRecordSize {
		dst = make([]byte, ClaimRecordSize)
	}
	b := dst[:ClaimRecordSize]
	le := binary.LittleEndian
	le.PutUint32(b[0:], ClaimMagic)
	b[4] = ClaimVersion
	b[5] = 0
	le.PutUint16(b[6:], r.Owner)
	le.PutUint16(b[8:], r.Epoch)
	le.PutUint16(b[10:], r.Shard)
	le.PutUint32(b[12:], r.Stamp)
	le.PutUint64(b[16:], uint64(r.GrantNS))
	le.PutUint64(b[24:], uint64(r.TTLNS))
	for i := 32; i < 44; i++ {
		b[i] = 0
	}
	le.PutUint32(b[44:], crc32.ChecksumIEEE(b[:44]))
	return b
}

// Encode returns a freshly allocated encoding of the record.
func (r ClaimRecord) Encode() []byte { return r.AppendTo(nil) }

// DecodeClaim parses and validates a claim record from b. Errors are
// the shared wire decode errors (ErrShort, ErrMagic, ...).
func DecodeClaim(b []byte) (ClaimRecord, error) {
	var r ClaimRecord
	if len(b) < ClaimRecordSize {
		return r, ErrShort
	}
	le := binary.LittleEndian
	if le.Uint32(b[0:]) != ClaimMagic {
		return r, ErrMagic
	}
	if b[4] != ClaimVersion {
		return r, ErrVersion
	}
	if le.Uint32(b[44:]) != crc32.ChecksumIEEE(b[:44]) {
		return r, ErrChecksum
	}
	if b[5] != 0 {
		return r, ErrReserved
	}
	for i := 32; i < 44; i++ {
		if b[i] != 0 {
			return r, ErrReserved
		}
	}
	r.Owner = le.Uint16(b[6:])
	r.Epoch = le.Uint16(b[8:])
	r.Shard = le.Uint16(b[10:])
	r.Stamp = le.Uint32(b[12:])
	r.GrantNS = int64(le.Uint64(b[16:]))
	r.TTLNS = int64(le.Uint64(b[24:]))
	return r, nil
}
