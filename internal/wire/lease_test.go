package wire

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"testing"
)

func TestLeaseWordPackUnpack(t *testing.T) {
	cases := []struct {
		holder, epoch uint16
		hb            uint32
	}{
		{0, 0, 0},
		{1, 0, 0},
		{3, 17, 42},
		{0xFFFF, 0xFFFF, 0xFFFFFFFF},
		{2, 0x8000, 1},
	}
	for _, c := range cases {
		w := PackLeaseWord(c.holder, c.epoch, c.hb)
		h, e, hb := UnpackLeaseWord(w)
		if h != c.holder || e != c.epoch || hb != c.hb {
			t.Fatalf("pack/unpack(%d,%d,%d) = (%d,%d,%d)", c.holder, c.epoch, c.hb, h, e, hb)
		}
	}
	if PackLeaseWord(0, 0, 0) != LeaseVacant {
		t.Fatal("zero word must be vacant")
	}
	if PackLeaseWord(1, 0, 0) == LeaseVacant {
		t.Fatal("held word must not read vacant")
	}
}

func TestLeaseRecordRoundTrip(t *testing.T) {
	r := LeaseRecord{Holder: 2, Epoch: 7, Heartbeat: 1234, GrantNS: 5_000_000_000, TTLNS: 300_000_000}
	enc := r.Encode()
	if len(enc) != LeaseRecordSize {
		t.Fatalf("encoded %d bytes, want %d", len(enc), LeaseRecordSize)
	}
	back, err := DecodeLease(enc)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if back != r {
		t.Fatalf("round trip mismatch: %+v != %+v", back, r)
	}
}

func TestLeaseRecordDecodeErrors(t *testing.T) {
	r := LeaseRecord{Holder: 1, Epoch: 1, Heartbeat: 9}
	enc := r.Encode()

	if _, err := DecodeLease(enc[:LeaseRecordSize-1]); err != ErrShort {
		t.Fatalf("short: %v", err)
	}
	bad := append([]byte(nil), enc...)
	bad[0] ^= 0xFF
	if _, err := DecodeLease(bad); err != ErrMagic {
		t.Fatalf("magic: %v", err)
	}
	bad = append([]byte(nil), enc...)
	bad[4] = LeaseVersion + 1
	if _, err := DecodeLease(bad); err != ErrVersion {
		t.Fatalf("version: %v", err)
	}
	// Torn write: flip a payload byte, CRC no longer matches.
	bad = append([]byte(nil), enc...)
	bad[12] ^= 0x55
	if _, err := DecodeLease(bad); err != ErrChecksum {
		t.Fatalf("checksum: %v", err)
	}
	// Nonzero reserved with a recomputed CRC must still be rejected.
	bad = append([]byte(nil), enc...)
	bad[33] = 1
	binary.LittleEndian.PutUint32(bad[44:], crc32.ChecksumIEEE(bad[:44]))
	if _, err := DecodeLease(bad); err != ErrReserved {
		t.Fatalf("reserved: %v", err)
	}
}

func TestLeaseRecordAppendToReuse(t *testing.T) {
	r := LeaseRecord{Holder: 3, Epoch: 2, Heartbeat: 5}
	buf := make([]byte, LeaseRecordSize)
	got := r.AppendTo(buf)
	if &got[0] != &buf[0] {
		t.Fatal("AppendTo must reuse a large-enough buffer")
	}
	if !bytes.Equal(got, r.Encode()) {
		t.Fatal("AppendTo and Encode disagree")
	}
}
