package wire

import "testing"

func TestClaimWordRoundTrip(t *testing.T) {
	cases := []struct {
		owner, epoch uint16
		stamp        uint32
	}{
		{0, 0, 0},
		{1, 1, 0},
		{4, 65535, 4294967295},
		{65535, 32768, 7},
	}
	for _, c := range cases {
		w := PackClaimWord(c.owner, c.epoch, c.stamp)
		o, e, s := UnpackClaimWord(w)
		if o != c.owner || e != c.epoch || s != c.stamp {
			t.Fatalf("round trip (%d,%d,%d) -> %x -> (%d,%d,%d)",
				c.owner, c.epoch, c.stamp, w, o, e, s)
		}
		if got := WordEpoch(w); got != c.epoch {
			t.Fatalf("WordEpoch(%x) = %d, want %d", w, got, c.epoch)
		}
		if ClaimVacant(w) != (c.owner == 0) {
			t.Fatalf("ClaimVacant(%x) wrong for owner %d", w, c.owner)
		}
	}
	// Lease and claim words share the layout: fencing code may treat
	// them interchangeably.
	if PackClaimWord(3, 9, 42) != PackLeaseWord(3, 9, 42) {
		t.Fatal("claim and lease word layouts diverged")
	}
}

func TestClaimRecordRoundTrip(t *testing.T) {
	r := ClaimRecord{Shard: 5, Owner: 2, Epoch: 17, Stamp: 301, GrantNS: 4e9, TTLNS: 3e8}
	enc := r.Encode()
	if len(enc) != ClaimRecordSize {
		t.Fatalf("encoded size %d, want %d", len(enc), ClaimRecordSize)
	}
	got, err := DecodeClaim(enc)
	if err != nil {
		t.Fatal(err)
	}
	if got != r {
		t.Fatalf("round trip mismatch: %+v != %+v", got, r)
	}
}

func TestClaimRecordRejectsCorruption(t *testing.T) {
	r := ClaimRecord{Shard: 1, Owner: 1, Epoch: 1, Stamp: 1}
	enc := r.Encode()
	for i := range enc {
		bad := append([]byte(nil), enc...)
		bad[i] ^= 0x40
		if _, err := DecodeClaim(bad); err == nil {
			t.Fatalf("corrupting byte %d went undetected", i)
		}
	}
	if _, err := DecodeClaim(enc[:ClaimRecordSize-1]); err != ErrShort {
		t.Fatalf("short buffer: got %v, want ErrShort", err)
	}
}
