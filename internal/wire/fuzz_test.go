package wire

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"testing"
)

// FuzzLoadRecord feeds arbitrary bytes to Decode and, whenever a
// record decodes, checks the encode/decode round trip is lossless and
// the derived accessors stay total. Decode must never panic or accept
// a record whose checksum does not match.
func FuzzLoadRecord(f *testing.F) {
	// Seed with a valid record, a truncation, a magic flip, and junk.
	valid := LoadRecord{
		NumCPU: 2, NodeID: 3, Seq: 9, KTimeNS: 1e9,
		NrRunning: 4, NrTasks: 100,
		MemUsedKB: 1 << 18, MemTotalKB: 1 << 20,
		NetRxBytes: 1 << 30, NetTxBytes: 1 << 29,
		CtxSwitch: 12345, Conns: 77,
	}
	valid.UtilPerMille[0] = 900
	valid.IrqPendingHard[1] = 3
	enc := valid.Encode()
	f.Add(enc)
	f.Add(enc[:RecordSize-1])
	bad := append([]byte(nil), enc...)
	bad[0] ^= 0xFF
	f.Add(bad)
	torn := append([]byte(nil), enc...)
	torn[RecordSize/2] ^= 0x55
	f.Add(torn)
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xA5}, RecordSize))

	f.Fuzz(func(t *testing.T, data []byte) {
		rec, err := Decode(data)
		if err != nil {
			// Errors must be one of the documented decode failures.
			switch err {
			case ErrShort, ErrMagic, ErrVersion, ErrChecksum, ErrReserved:
			default:
				t.Fatalf("undocumented decode error: %v", err)
			}
			return
		}
		// Accessors must be total on anything Decode accepted.
		_ = rec.UtilMean()
		_ = rec.PendingIRQTotal()
		_ = rec.MemFraction()
		_ = rec.String()

		// Round trip: re-encoding an accepted record reproduces the
		// first RecordSize bytes exactly (trailing input is ignored).
		re := rec.Encode()
		if !bytes.Equal(re, data[:RecordSize]) {
			t.Fatalf("round trip mismatch:\n in=%x\nout=%x", data[:RecordSize], re)
		}
		re2, err := Decode(re)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if re2 != rec {
			t.Fatalf("re-decode mismatch: %+v != %+v", re2, rec)
		}
	})
}

// FuzzLoadRecordFields drives Encode from arbitrary field values: any
// record must encode to exactly RecordSize bytes and survive the round
// trip bit-for-bit.
func FuzzLoadRecordFields(f *testing.F) {
	f.Add(uint8(2), uint16(3), uint32(9), int64(1e9), uint16(4), uint16(100),
		uint64(12345), uint16(77))
	f.Fuzz(func(t *testing.T, ncpu uint8, node uint16, seq uint32, ktime int64,
		run, tasks uint16, ctx uint64, conns uint16) {
		r := LoadRecord{
			NumCPU: ncpu, NodeID: node, Seq: seq, KTimeNS: ktime,
			NrRunning: run, NrTasks: tasks, CtxSwitch: ctx, Conns: conns,
		}
		for i := 0; i < MaxCPU; i++ {
			r.UtilPerMille[i] = uint16(seq) + uint16(i)
		}
		enc := r.Encode()
		if len(enc) != RecordSize {
			t.Fatalf("encoded %d bytes, want %d", len(enc), RecordSize)
		}
		if got := binary.LittleEndian.Uint32(enc[0:]); got != Magic {
			t.Fatalf("magic = %#x", got)
		}
		back, err := Decode(enc)
		if err != nil {
			t.Fatalf("decode of own encoding failed: %v", err)
		}
		if back != r {
			t.Fatalf("round trip mismatch: %+v != %+v", back, r)
		}
	})
}

// FuzzPushRecord mirrors FuzzLoadRecord for the pushed delta record:
// DecodePush must never panic, never accept a bad checksum (outer or
// embedded), and accepted records must round-trip bit-for-bit.
func FuzzPushRecord(f *testing.F) {
	inner := LoadRecord{
		NumCPU: 4, NodeID: 7, Seq: 42, KTimeNS: 3e9,
		NrRunning: 2, NrTasks: 80, MemUsedKB: 1 << 17, MemTotalKB: 1 << 20,
		Conns: 12,
	}
	inner.UtilPerMille[0] = 550
	valid := PushRecord{PushSeq: 9, PushedNS: 31e8, Load: inner}
	enc := valid.Encode()
	f.Add(enc)
	f.Add(enc[:PushRecordSize-1])
	bad := append([]byte(nil), enc...)
	bad[0] ^= 0xFF
	f.Add(bad)
	torn := append([]byte(nil), enc...)
	torn[PushRecordSize/2] ^= 0x55
	f.Add(torn)
	innerTorn := append([]byte(nil), enc...)
	innerTorn[20+RecordSize/2] ^= 0x55
	f.Add(innerTorn)
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xA5}, PushRecordSize))

	f.Fuzz(func(t *testing.T, data []byte) {
		rec, err := DecodePush(data)
		if err != nil {
			switch err {
			case ErrShort, ErrMagic, ErrVersion, ErrChecksum, ErrReserved:
			default:
				t.Fatalf("undocumented decode error: %v", err)
			}
			return
		}
		_ = rec.String()
		re := rec.Encode()
		if !bytes.Equal(re, data[:PushRecordSize]) {
			t.Fatalf("round trip mismatch:\n in=%x\nout=%x", data[:PushRecordSize], re)
		}
		re2, err := DecodePush(re)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if re2 != rec {
			t.Fatalf("re-decode mismatch: %+v != %+v", re2, rec)
		}
	})
}

// FuzzHistoryRing feeds arbitrary bytes to DecodeRingInto and, for any
// accepted ring, runs the seqlock differential: a mid-write snapshot
// (odd seq, or header/trailer mismatch) must decode as ErrTorn — the
// retry signal — while the completed write must decode cleanly with
// the new sample at the head. Decode must never panic and never
// accept a ring whose header CRC or slot CRCs do not match.
func FuzzHistoryRing(f *testing.F) {
	h := NewHistoryRing(4, 7)
	for i := uint32(1); i <= 6; i++ {
		rec := ringSample(i)
		h.Push(&rec)
	}
	enc := append([]byte(nil), h.Bytes()...)
	f.Add(enc)
	f.Add(enc[:len(enc)-1])
	f.Add(enc[:HistHeaderSize])
	bad := append([]byte(nil), enc...)
	bad[0] ^= 0xFF
	f.Add(bad)
	tornSlot := append([]byte(nil), enc...)
	tornSlot[HistHeaderSize+RecordSize/2] ^= 0x55
	f.Add(tornSlot)
	midWrite := append([]byte(nil), enc...)
	binary.LittleEndian.PutUint64(midWrite[16:], 13) // odd seq
	f.Add(midWrite)
	f.Add(NewHistoryRing(1, 0).Bytes())
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xA5}, RingSize(2)))

	f.Fuzz(func(t *testing.T, data []byte) {
		var v RingView
		if err := DecodeRingInto(&v, data); err != nil {
			switch err {
			case ErrShort, ErrMagic, ErrVersion, ErrChecksum, ErrReserved,
				ErrTorn, ErrRingK, ErrRingHead:
			default:
				t.Fatalf("undocumented ring decode error: %v", err)
			}
			if v.Count != 0 {
				t.Fatalf("failed decode left %d records in the view", v.Count)
			}
			return
		}
		if v.Count > v.K || v.K < 1 || v.K > MaxRingSlots {
			t.Fatalf("inconsistent view: count=%d k=%d", v.Count, v.K)
		}
		var v2 RingView
		if err := DecodeRingInto(&v2, data); err != nil || v2 != v {
			t.Fatalf("re-decode diverged: %v", err)
		}

		// Differential, phase 1 — tear the accepted ring the way a
		// racing writer would (seq bumped odd before touching a slot):
		// the reader must see ErrTorn, its retry signal.
		le := binary.LittleEndian
		k := v.K
		tr := HistHeaderSize + k*RecordSize
		buf := append([]byte(nil), data[:RingSize(k)]...)
		seq := le.Uint64(buf[16:])
		le.PutUint64(buf[16:], seq+1)
		le.PutUint32(buf[tr+8:], crc32.ChecksumIEEE(buf[:HistHeaderSize]))
		if err := DecodeRingInto(&v2, buf); err != ErrTorn {
			t.Fatalf("mid-write ring decoded as %v, want ErrTorn", err)
		}

		// Phase 2 — complete the write: new sample in the next slot,
		// head advanced, seq even again, echo + CRC restored. The
		// retried read must now succeed and surface the new sample.
		rec := ringSample(uint32(len(data)))
		rec.NodeID = v.NodeID
		slot := int(v.Pushes % uint64(k))
		off := HistHeaderSize + slot*RecordSize
		rec.AppendTo(buf[off : off : off+RecordSize])
		le.PutUint32(buf[12:], uint32(slot))
		le.PutUint64(buf[16:], seq+2)
		le.PutUint64(buf[24:], v.Pushes+1)
		le.PutUint64(buf[tr:], seq+2)
		le.PutUint32(buf[tr+8:], crc32.ChecksumIEEE(buf[:HistHeaderSize]))
		if err := DecodeRingInto(&v2, buf); err != nil {
			t.Fatalf("completed write failed to decode: %v", err)
		}
		if v2.Newest() != rec {
			t.Fatalf("retry after write lost the new sample")
		}
		wantCount := v.Count + 1
		if wantCount > k {
			wantCount = k
		}
		if v2.Count != wantCount {
			t.Fatalf("count after write = %d, want %d", v2.Count, wantCount)
		}
	})
}

// FuzzLeaseRecord mirrors FuzzLoadRecord for the lease codec: Decode
// must never panic, never accept a bad checksum, and accepted records
// must round-trip bit-for-bit.
// FuzzClaimRecord: like FuzzLeaseRecord, for the per-shard dispatch
// claim record. Decode must never panic, never accept a corrupt
// record, and a decoded record must round-trip losslessly — as must
// the packed claim word the record describes.
func FuzzClaimRecord(f *testing.F) {
	valid := ClaimRecord{Shard: 3, Owner: 2, Epoch: 7, Stamp: 99, GrantNS: 5e9, TTLNS: 3e8}
	enc := valid.Encode()
	f.Add(enc)
	f.Add(enc[:ClaimRecordSize-1])
	bad := append([]byte(nil), enc...)
	bad[0] ^= 0xFF
	f.Add(bad)
	torn := append([]byte(nil), enc...)
	torn[ClaimRecordSize/2] ^= 0x55
	f.Add(torn)
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xA5}, ClaimRecordSize))

	f.Fuzz(func(t *testing.T, data []byte) {
		rec, err := DecodeClaim(data)
		if err != nil {
			switch err {
			case ErrShort, ErrMagic, ErrVersion, ErrChecksum, ErrReserved:
			default:
				t.Fatalf("undocumented decode error: %v", err)
			}
			return
		}
		_ = rec.String()
		re := rec.Encode()
		if !bytes.Equal(re, data[:ClaimRecordSize]) {
			t.Fatalf("round trip mismatch:\n in=%x\nout=%x", data[:ClaimRecordSize], re)
		}
		re2, err := DecodeClaim(re)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if re2 != rec {
			t.Fatalf("re-decode mismatch: %+v != %+v", re2, rec)
		}
		// The word form must survive its own round trip with the same
		// fields the record carries, and expose the same epoch the
		// fencing helpers would read.
		w := PackClaimWord(rec.Owner, rec.Epoch, rec.Stamp)
		o, e, s := UnpackClaimWord(w)
		if o != rec.Owner || e != rec.Epoch || s != rec.Stamp {
			t.Fatalf("claim word round trip mismatch")
		}
		if WordEpoch(w) != rec.Epoch {
			t.Fatalf("WordEpoch disagrees with UnpackClaimWord")
		}
		if ClaimVacant(w) != (rec.Owner == ClaimVacantOwner) {
			t.Fatalf("ClaimVacant disagrees with owner field")
		}
	})
}

func FuzzLeaseRecord(f *testing.F) {
	valid := LeaseRecord{Holder: 2, Epoch: 7, Heartbeat: 99, GrantNS: 5e9, TTLNS: 3e8}
	enc := valid.Encode()
	f.Add(enc)
	f.Add(enc[:LeaseRecordSize-1])
	bad := append([]byte(nil), enc...)
	bad[0] ^= 0xFF
	f.Add(bad)
	torn := append([]byte(nil), enc...)
	torn[LeaseRecordSize/2] ^= 0x55
	f.Add(torn)
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xA5}, LeaseRecordSize))

	f.Fuzz(func(t *testing.T, data []byte) {
		rec, err := DecodeLease(data)
		if err != nil {
			switch err {
			case ErrShort, ErrMagic, ErrVersion, ErrChecksum, ErrReserved:
			default:
				t.Fatalf("undocumented decode error: %v", err)
			}
			return
		}
		_ = rec.String()
		re := rec.Encode()
		if !bytes.Equal(re, data[:LeaseRecordSize]) {
			t.Fatalf("round trip mismatch:\n in=%x\nout=%x", data[:LeaseRecordSize], re)
		}
		re2, err := DecodeLease(re)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if re2 != rec {
			t.Fatalf("re-decode mismatch: %+v != %+v", re2, rec)
		}
		// The word form must survive its own round trip with the same
		// fields the record carries.
		w := PackLeaseWord(rec.Holder, rec.Epoch, rec.Heartbeat)
		h, e, hb := UnpackLeaseWord(w)
		if h != rec.Holder || e != rec.Epoch || hb != rec.Heartbeat {
			t.Fatalf("lease word round trip mismatch")
		}
	})
}
