package wire

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func sampleRecord() LoadRecord {
	r := LoadRecord{
		NumCPU:     2,
		NodeID:     3,
		Seq:        42,
		KTimeNS:    123456789,
		NrRunning:  7,
		NrTasks:    31,
		CumIRQ:     9999,
		MemUsedKB:  200000,
		MemTotalKB: 1048576,
		NetRxBytes: 1 << 30,
		NetTxBytes: 1 << 29,
		CtxSwitch:  555,
		Conns:      12,
	}
	r.UtilPerMille[0] = 850
	r.UtilPerMille[1] = 300
	r.IrqPendingHard[1] = 4
	r.IrqPendingSoft[1] = 3
	return r
}

func TestRoundTrip(t *testing.T) {
	r := sampleRecord()
	b := r.Encode()
	if len(b) != RecordSize {
		t.Fatalf("encoded size = %d, want %d", len(b), RecordSize)
	}
	got, err := Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, r) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, r)
	}
}

func TestDecodeShort(t *testing.T) {
	if _, err := Decode(make([]byte, RecordSize-1)); err != ErrShort {
		t.Fatalf("err = %v, want ErrShort", err)
	}
}

func TestDecodeBadMagic(t *testing.T) {
	b := sampleRecord().Encode()
	b[0] ^= 0xFF
	if _, err := Decode(b); err != ErrMagic {
		t.Fatalf("err = %v, want ErrMagic", err)
	}
}

func TestDecodeBadVersion(t *testing.T) {
	b := sampleRecord().Encode()
	b[4] = 99
	if _, err := Decode(b); err != ErrVersion {
		t.Fatalf("err = %v, want ErrVersion", err)
	}
}

func TestDecodeTornRecord(t *testing.T) {
	b := sampleRecord().Encode()
	// Flip a payload byte: a reader racing a writer sees garbage that
	// the CRC must catch.
	b[30] ^= 0x5A
	if _, err := Decode(b); err != ErrChecksum {
		t.Fatalf("err = %v, want ErrChecksum", err)
	}
}

func TestAppendToReusesBuffer(t *testing.T) {
	buf := make([]byte, RecordSize)
	r := sampleRecord()
	out := r.AppendTo(buf)
	if &out[0] != &buf[0] {
		t.Fatal("AppendTo should reuse a large-enough buffer")
	}
	if _, err := Decode(out); err != nil {
		t.Fatal(err)
	}
}

func TestUtilMean(t *testing.T) {
	r := sampleRecord()
	if m := r.UtilMean(); m != (850+300)/2 {
		t.Fatalf("UtilMean = %d, want 575", m)
	}
	var zero LoadRecord
	if zero.UtilMean() != 0 {
		t.Fatal("zero-CPU record should have zero mean util")
	}
}

func TestPendingIRQTotal(t *testing.T) {
	r := sampleRecord()
	if n := r.PendingIRQTotal(); n != 7 {
		t.Fatalf("PendingIRQTotal = %d, want 7", n)
	}
}

func TestMemFraction(t *testing.T) {
	r := sampleRecord()
	want := float64(200000) / float64(1048576)
	if f := r.MemFraction(); f != want {
		t.Fatalf("MemFraction = %v, want %v", f, want)
	}
	var zero LoadRecord
	if zero.MemFraction() != 0 {
		t.Fatal("zero-total record should report 0 mem fraction")
	}
}

func TestStringHasNodeAndSeq(t *testing.T) {
	r := sampleRecord()
	s := r.String()
	if s == "" {
		t.Fatal("empty String()")
	}
}

func randomRecord(rng *rand.Rand) LoadRecord {
	r := LoadRecord{
		NumCPU:     uint8(rng.Intn(MaxCPU + 1)),
		NodeID:     uint16(rng.Uint32()),
		Seq:        rng.Uint32(),
		KTimeNS:    rng.Int63(),
		NrRunning:  uint16(rng.Uint32()),
		NrTasks:    uint16(rng.Uint32()),
		CumIRQ:     rng.Uint64(),
		MemUsedKB:  rng.Uint32(),
		MemTotalKB: rng.Uint32(),
		NetRxBytes: rng.Uint64(),
		NetTxBytes: rng.Uint64(),
		CtxSwitch:  rng.Uint64(),
		Conns:      uint16(rng.Uint32()),
	}
	for i := 0; i < MaxCPU; i++ {
		r.UtilPerMille[i] = uint16(rng.Intn(1001))
		r.IrqPendingHard[i] = uint16(rng.Intn(100))
		r.IrqPendingSoft[i] = uint16(rng.Intn(100))
	}
	return r
}

// Property: encode/decode is the identity for arbitrary records.
func TestQuickRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	f := func(seed int64) bool {
		rng.Seed(seed)
		r := randomRecord(rng)
		got, err := Decode(r.Encode())
		return err == nil && reflect.DeepEqual(got, r)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: any single-byte corruption of the payload is detected.
func TestQuickCorruptionDetected(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	f := func(seed int64, pos uint16, delta uint8) bool {
		if delta == 0 {
			return true
		}
		rng.Seed(seed)
		rr := randomRecord(rng)
		b := rr.Encode()
		b[int(pos)%RecordSize] ^= delta
		_, err := Decode(b)
		return err != nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkEncode(b *testing.B) {
	r := sampleRecord()
	buf := make([]byte, RecordSize)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.AppendTo(buf)
	}
}

func BenchmarkDecode(b *testing.B) {
	buf := sampleRecord().Encode()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Decode(buf); err != nil {
			b.Fatal(err)
		}
	}
}
