package wire

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

// The lease layer stores two things in registered memory regions:
//
//   - the lease *word*: a single 64-bit value holding (holder, epoch,
//     heartbeat). It is the authoritative state, mutated only by
//     one-sided compare-and-swap so acquisition and renewal are atomic
//     without involving the hosting node's CPU.
//   - the lease *record*: a CRC-protected descriptive record written
//     (one-sided) by the winner of each epoch. It exists for observers
//     — exporters, debuggers — and is never used to decide primaryship,
//     so a torn read of it is detectable and harmless.

// LeaseMagic identifies a lease record ("RMLS").
const LeaseMagic uint32 = 0x524d4c53

// LeaseVersion is the current lease record layout version.
const LeaseVersion uint8 = 1

// LeaseRecordSize is the exact encoded size in bytes.
const LeaseRecordSize = 48

// LeaseWordSize is the size of the lease word region: one CAS-able
// 64-bit value.
const LeaseWordSize = 8

// LeaseVacant is the lease word meaning "no holder". Holder IDs are
// 1-based precisely so the all-zero (freshly registered) region reads
// as vacant.
const LeaseVacant uint64 = 0

// PackLeaseWord builds the 64-bit lease word: holder in the top 16
// bits, epoch in the next 16, heartbeat in the low 32. A holder renews
// by CAS-ing heartbeat+1 over its own word; a standby takes over by
// CAS-ing (itself, epoch+1, 0) over the word it last observed.
func PackLeaseWord(holder, epoch uint16, heartbeat uint32) uint64 {
	return uint64(holder)<<48 | uint64(epoch)<<32 | uint64(heartbeat)
}

// UnpackLeaseWord splits a lease word into its fields.
func UnpackLeaseWord(w uint64) (holder, epoch uint16, heartbeat uint32) {
	return uint16(w >> 48), uint16(w >> 32), uint32(w)
}

// LeaseRecord describes the current lease grant. Holder is 1-based (0
// means vacant, matching LeaseVacant).
type LeaseRecord struct {
	Holder    uint16
	Epoch     uint16
	Heartbeat uint32
	GrantNS   int64 // clock at epoch acquisition, ns
	TTLNS     int64 // holder-side validity window per renewal, ns
}

func (r LeaseRecord) String() string {
	return fmt.Sprintf("lease holder=%d epoch=%d hb=%d ttl=%dns",
		r.Holder, r.Epoch, r.Heartbeat, r.TTLNS)
}

// AppendTo encodes the record into dst (which must have
// LeaseRecordSize capacity from offset 0); dst is returned for
// chaining. Encoding never fails.
func (r LeaseRecord) AppendTo(dst []byte) []byte {
	if cap(dst) < LeaseRecordSize {
		dst = make([]byte, LeaseRecordSize)
	}
	b := dst[:LeaseRecordSize]
	le := binary.LittleEndian
	le.PutUint32(b[0:], LeaseMagic)
	b[4] = LeaseVersion
	b[5] = 0
	le.PutUint16(b[6:], r.Holder)
	le.PutUint16(b[8:], r.Epoch)
	le.PutUint16(b[10:], 0)
	le.PutUint32(b[12:], r.Heartbeat)
	le.PutUint64(b[16:], uint64(r.GrantNS))
	le.PutUint64(b[24:], uint64(r.TTLNS))
	for i := 32; i < 44; i++ {
		b[i] = 0
	}
	le.PutUint32(b[44:], crc32.ChecksumIEEE(b[:44]))
	return b
}

// Encode returns a freshly allocated encoding of the record.
func (r LeaseRecord) Encode() []byte { return r.AppendTo(nil) }

// DecodeLease parses and validates a lease record from b. Errors are
// the shared wire decode errors (ErrShort, ErrMagic, ...).
func DecodeLease(b []byte) (LeaseRecord, error) {
	var r LeaseRecord
	if len(b) < LeaseRecordSize {
		return r, ErrShort
	}
	le := binary.LittleEndian
	if le.Uint32(b[0:]) != LeaseMagic {
		return r, ErrMagic
	}
	if b[4] != LeaseVersion {
		return r, ErrVersion
	}
	if le.Uint32(b[44:]) != crc32.ChecksumIEEE(b[:44]) {
		return r, ErrChecksum
	}
	if b[5] != 0 || le.Uint16(b[10:]) != 0 {
		return r, ErrReserved
	}
	for i := 32; i < 44; i++ {
		if b[i] != 0 {
			return r, ErrReserved
		}
	}
	r.Holder = le.Uint16(b[6:])
	r.Epoch = le.Uint16(b[8:])
	r.Heartbeat = le.Uint32(b[12:])
	r.GrantNS = int64(le.Uint64(b[16:]))
	r.TTLNS = int64(le.Uint64(b[24:]))
	return r, nil
}
