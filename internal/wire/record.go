// Package wire defines the load-information record that monitoring
// agents expose and front-end probes consume, together with its fixed
// binary encoding.
//
// The record is what actually sits in a registered memory region: an
// RDMA read returns these bytes, so the encoding must be (a) fixed
// size, so a single read captures a whole record, (b) cheap to encode,
// because RDMA-Sync encodes at DMA time, and (c) self-validating,
// because a reader can race a writer and must detect a torn record —
// hence the trailing CRC.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// MaxCPU is the per-record CPU slot count (matches simos.MaxCPU).
const MaxCPU = 8

// Magic identifies a load record ("RMON").
const Magic uint32 = 0x524d4f4e

// Version is the current record layout version.
const Version uint8 = 1

// RecordSize is the exact encoded size in bytes.
const RecordSize = 120

// Decode errors.
var (
	ErrShort    = errors.New("wire: buffer shorter than a record")
	ErrMagic    = errors.New("wire: bad magic")
	ErrVersion  = errors.New("wire: unsupported record version")
	ErrChecksum = errors.New("wire: checksum mismatch (torn or corrupt record)")
	ErrReserved = errors.New("wire: nonzero reserved field")
)

// LoadRecord is one node's load report. All fields a WebSphere-style
// weighted load index needs are present; the IrqPending fields carry
// the extra kernel detail only the (e-)RDMA-Sync schemes can obtain
// accurately (paper §4, §5.1.4).
type LoadRecord struct {
	NumCPU    uint8
	NodeID    uint16
	Seq       uint32
	KTimeNS   int64 // kernel clock at capture, ns
	NrRunning uint16
	NrTasks   uint16

	UtilPerMille   [MaxCPU]uint16
	IrqPendingHard [MaxCPU]uint16
	IrqPendingSoft [MaxCPU]uint16
	CumIRQ         uint64

	MemUsedKB  uint32
	MemTotalKB uint32
	NetRxBytes uint64
	NetTxBytes uint64
	CtxSwitch  uint64
	Conns      uint16
}

// UtilMean returns mean CPU utilisation in parts per thousand.
func (r LoadRecord) UtilMean() int {
	if r.NumCPU == 0 {
		return 0
	}
	s := 0
	for i := 0; i < int(r.NumCPU) && i < MaxCPU; i++ {
		s += int(r.UtilPerMille[i])
	}
	return s / int(r.NumCPU)
}

// PendingIRQTotal returns the summed pending hard+soft interrupts.
func (r LoadRecord) PendingIRQTotal() int {
	n := 0
	for i := 0; i < int(r.NumCPU) && i < MaxCPU; i++ {
		n += int(r.IrqPendingHard[i]) + int(r.IrqPendingSoft[i])
	}
	return n
}

// MemFraction returns used/total memory in [0,1].
func (r LoadRecord) MemFraction() float64 {
	if r.MemTotalKB == 0 {
		return 0
	}
	return float64(r.MemUsedKB) / float64(r.MemTotalKB)
}

func (r LoadRecord) String() string {
	return fmt.Sprintf("node%d seq=%d run=%d util=%d‰ conns=%d irq=%d",
		r.NodeID, r.Seq, r.NrRunning, r.UtilMean(), r.Conns, r.PendingIRQTotal())
}

// AppendTo encodes the record into dst (which must have RecordSize
// capacity from offset 0); dst is returned for chaining. Encoding
// never fails.
func (r LoadRecord) AppendTo(dst []byte) []byte {
	if cap(dst) < RecordSize {
		dst = make([]byte, RecordSize)
	}
	b := dst[:RecordSize]
	le := binary.LittleEndian
	le.PutUint32(b[0:], Magic)
	b[4] = Version
	b[5] = r.NumCPU
	le.PutUint16(b[6:], r.NodeID)
	le.PutUint32(b[8:], r.Seq)
	le.PutUint16(b[12:], r.NrRunning)
	le.PutUint16(b[14:], r.NrTasks)
	le.PutUint64(b[16:], uint64(r.KTimeNS))
	off := 24
	for i := 0; i < MaxCPU; i++ {
		le.PutUint16(b[off+2*i:], r.UtilPerMille[i])
	}
	off += 16
	for i := 0; i < MaxCPU; i++ {
		le.PutUint16(b[off+2*i:], r.IrqPendingHard[i])
	}
	off += 16
	for i := 0; i < MaxCPU; i++ {
		le.PutUint16(b[off+2*i:], r.IrqPendingSoft[i])
	}
	off += 16 // = 72
	le.PutUint64(b[72:], r.CumIRQ)
	le.PutUint32(b[80:], r.MemUsedKB)
	le.PutUint32(b[84:], r.MemTotalKB)
	le.PutUint64(b[88:], r.NetRxBytes)
	le.PutUint64(b[96:], r.NetTxBytes)
	le.PutUint64(b[104:], r.CtxSwitch)
	le.PutUint16(b[112:], r.Conns)
	le.PutUint16(b[114:], 0)
	le.PutUint32(b[116:], crc32.ChecksumIEEE(b[:116]))
	return b
}

// Encode returns a freshly allocated encoding of the record.
func (r LoadRecord) Encode() []byte { return r.AppendTo(nil) }

// Decode parses and validates a record from b.
func Decode(b []byte) (LoadRecord, error) {
	var r LoadRecord
	err := DecodeInto(&r, b)
	return r, err
}

// DecodeInto parses and validates a record from b into *r without
// allocating: the probe hot path decodes thousands of records per
// sweep into caller-owned scratch. On error *r is left zeroed.
func DecodeInto(r *LoadRecord, b []byte) error {
	*r = LoadRecord{}
	if len(b) < RecordSize {
		return ErrShort
	}
	le := binary.LittleEndian
	if le.Uint32(b[0:]) != Magic {
		return ErrMagic
	}
	if b[4] != Version {
		return ErrVersion
	}
	if le.Uint32(b[116:]) != crc32.ChecksumIEEE(b[:116]) {
		return ErrChecksum
	}
	if le.Uint16(b[114:]) != 0 {
		// Reserved padding must be zero: keeps decode(encode(r))
		// exactly invertible and the reserved space usable later.
		return ErrReserved
	}
	r.NumCPU = b[5]
	r.NodeID = le.Uint16(b[6:])
	r.Seq = le.Uint32(b[8:])
	r.NrRunning = le.Uint16(b[12:])
	r.NrTasks = le.Uint16(b[14:])
	r.KTimeNS = int64(le.Uint64(b[16:]))
	for i := 0; i < MaxCPU; i++ {
		r.UtilPerMille[i] = le.Uint16(b[24+2*i:])
		r.IrqPendingHard[i] = le.Uint16(b[40+2*i:])
		r.IrqPendingSoft[i] = le.Uint16(b[56+2*i:])
	}
	r.CumIRQ = le.Uint64(b[72:])
	r.MemUsedKB = le.Uint32(b[80:])
	r.MemTotalKB = le.Uint32(b[84:])
	r.NetRxBytes = le.Uint64(b[88:])
	r.NetTxBytes = le.Uint64(b[96:])
	r.CtxSwitch = le.Uint64(b[104:])
	r.Conns = le.Uint16(b[112:])
	return nil
}
