package wire

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
)

// The history ring is the e-RDMA-Sync++ memory region: instead of one
// LoadRecord, the agent exports a seqlock-protected ring of the K most
// recent timestamped samples, so a single one-sided read fetches an
// entire recent time-series — the RFP observation that one larger
// remote fetch amortizes far better than K small ones.
//
// Layout (little-endian, RingSize(K) bytes total):
//
//	header (32B): magic u32 | version u8 | K u8 | nodeID u16 |
//	              epoch u32 | head u32 | seq u64 | pushes u64
//	slots:        K × RecordSize packed LoadRecords (each self-CRC'd)
//	trailer (12B): seqEcho u64 | headerCRC u32
//
// Writer discipline (seqlock): seq is bumped odd before any slot or
// header mutation and even after, and the trailing seqEcho is the last
// word written. A reader that snapshots the whole region in one DMA
// sees either a quiescent ring (seq even, echo == seq) or a torn one
// (odd, or echo mismatch) and simply re-reads — no reader/writer
// coordination, which is the property that keeps the agent thread-free.
// pushes counts published samples, so a reader knows how many slots
// are live before the ring first wraps; head is pinned to
// (pushes-1) mod K, making every quiescent encoding canonical.

// HistMagic identifies a history ring ("RHIS").
const HistMagic uint32 = 0x52484953

// HistVersion is the current ring layout version.
const HistVersion uint8 = 1

// Ring layout sizes.
const (
	HistHeaderSize  = 32
	HistTrailerSize = 12
)

// MaxRingSlots bounds K so a decoded view fits a fixed caller-owned
// buffer (RingView) — the reader never allocates per decode.
const MaxRingSlots = 32

// RingSize returns the registered region size for a K-slot ring.
func RingSize(k int) int { return HistHeaderSize + k*RecordSize + HistTrailerSize }

// Ring decode errors (beyond the LoadRecord errors a torn or corrupt
// slot surfaces).
var (
	ErrTorn     = errors.New("wire: torn history ring (writer mid-update, re-read)")
	ErrRingK    = errors.New("wire: ring slot count out of range")
	ErrRingHead = errors.New("wire: ring head beyond slot count")
)

// HistoryRing is the writer side: a fixed buffer the agent publishes
// samples into under the seqlock discipline. Not safe for concurrent
// use; callers on a preemptive runtime (livemon) serialize externally
// and rely on the seq words only for wire-format torn detection.
type HistoryRing struct {
	buf    []byte
	k      int
	nodeID uint16
	epoch  uint32
	seq    uint64 // seqlock word: even when quiescent
	pushes uint64
	head   uint32
}

// NewHistoryRing builds a quiescent K-slot ring for nodeID. K is
// clamped to [1, MaxRingSlots].
func NewHistoryRing(k int, nodeID uint16) *HistoryRing {
	if k < 1 {
		k = 1
	}
	if k > MaxRingSlots {
		k = MaxRingSlots
	}
	h := &HistoryRing{buf: make([]byte, RingSize(k)), k: k, nodeID: nodeID}
	h.writeHeader()
	return h
}

// Bytes returns the live ring buffer — the registration source. The
// contents change on every Push.
func (h *HistoryRing) Bytes() []byte { return h.buf }

// K returns the slot count.
func (h *HistoryRing) K() int { return h.k }

// Size returns the encoded region size.
func (h *HistoryRing) Size() int { return len(h.buf) }

// Pushes returns how many samples have been published.
func (h *HistoryRing) Pushes() uint64 { return h.pushes }

// BumpEpoch advances the ring epoch (agent restart / MR re-pin):
// readers drop cross-epoch trend state instead of computing slopes
// across a discontinuity.
func (h *HistoryRing) BumpEpoch() {
	h.seq++ // odd: write in progress
	h.writeHeader()
	h.epoch++
	h.seq++
	h.writeHeader()
}

// Push publishes one sample into the next slot under the seqlock
// discipline. Zero-allocation: rec is encoded in place.
func (h *HistoryRing) Push(rec *LoadRecord) {
	h.seq++ // odd: tear any read that races the slot write
	h.writeHeader()
	slot := uint32(h.pushes % uint64(h.k))
	off := HistHeaderSize + int(slot)*RecordSize
	rec.AppendTo(h.buf[off : off : off+RecordSize])
	h.pushes++
	h.head = slot
	h.seq++ // even: quiescent again
	h.writeHeader()
}

// writeHeader rewrites the header, trailer echo and header CRC to
// match the struct state.
func (h *HistoryRing) writeHeader() {
	le := binary.LittleEndian
	b := h.buf
	le.PutUint32(b[0:], HistMagic)
	b[4] = HistVersion
	b[5] = uint8(h.k)
	le.PutUint16(b[6:], h.nodeID)
	le.PutUint32(b[8:], h.epoch)
	le.PutUint32(b[12:], h.head)
	le.PutUint64(b[16:], h.seq)
	le.PutUint64(b[24:], h.pushes)
	tr := HistHeaderSize + h.k*RecordSize
	le.PutUint64(b[tr:], h.seq)
	le.PutUint32(b[tr+8:], crc32.ChecksumIEEE(b[:HistHeaderSize]))
}

// RingView is a decoded ring snapshot in caller-owned storage:
// Records[0] is the newest sample, Records[Count-1] the oldest live
// one. Reusing one view across decodes keeps the hot path
// allocation-free.
type RingView struct {
	NodeID uint16
	Epoch  uint32
	K      int
	Count  int
	Pushes uint64
	// Records holds the live samples newest-first in [0, Count).
	Records [MaxRingSlots]LoadRecord
}

// Newest returns the most recent sample (zero record if empty).
func (v *RingView) Newest() LoadRecord {
	if v.Count == 0 {
		return LoadRecord{}
	}
	return v.Records[0]
}

// DecodeRingInto parses and validates a ring snapshot from b into *v
// without allocating. ErrTorn means the writer was mid-update when the
// snapshot was taken — the caller should simply re-read; any other
// error means the bytes are not a ring (or a slot is corrupt). On
// error *v is left with Count == 0.
func DecodeRingInto(v *RingView, b []byte) error {
	*v = RingView{}
	if len(b) < RingSize(1) {
		return ErrShort
	}
	le := binary.LittleEndian
	if le.Uint32(b[0:]) != HistMagic {
		return ErrMagic
	}
	if b[4] != HistVersion {
		return ErrVersion
	}
	k := int(b[5])
	if k < 1 || k > MaxRingSlots {
		return ErrRingK
	}
	if len(b) < RingSize(k) {
		return ErrShort
	}
	tr := HistHeaderSize + k*RecordSize
	if le.Uint32(b[tr+8:]) != crc32.ChecksumIEEE(b[:HistHeaderSize]) {
		return ErrChecksum
	}
	seq := le.Uint64(b[16:])
	if seq%2 == 1 || le.Uint64(b[tr:]) != seq {
		// Writer mid-update: the single-DMA snapshot caught an odd seq
		// or a header/trailer mismatch. Not corruption — retry.
		return ErrTorn
	}
	head := le.Uint32(b[12:])
	pushes := le.Uint64(b[24:])
	count := int(pushes)
	if pushes > uint64(k) {
		count = k
	}
	// head is pinned to the last-written slot, so any quiescent
	// encoding is canonical: a mismatch is corruption, not a race.
	wantHead := uint32(0)
	if pushes > 0 {
		wantHead = uint32((pushes - 1) % uint64(k))
	}
	if head != wantHead {
		return ErrRingHead
	}
	v.NodeID = le.Uint16(b[6:])
	v.Epoch = le.Uint32(b[8:])
	v.K = k
	v.Pushes = pushes
	// Walk backwards from head: newest-first into Records.
	for i := 0; i < count; i++ {
		slot := (int(head) - i + k) % k
		off := HistHeaderSize + slot*RecordSize
		if err := DecodeInto(&v.Records[i], b[off:off+RecordSize]); err != nil {
			*v = RingView{}
			return err
		}
	}
	v.Count = count
	return nil
}
