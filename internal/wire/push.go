package wire

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

// The hybrid monitoring scheme inverts the paper's pull direction for
// back-ends whose load actually moved: the agent RDMA-Writes a delta
// record into an aggregation slot hosted by the front-end. The slot is
// written one-sidedly, so the front-end can read it while a write is in
// flight — the record must be torn-detectable exactly like the pulled
// LoadRecord, hence its own trailing CRC. It wraps a full LoadRecord
// (which keeps its inner CRC: a slot is also readable remotely) and
// adds the push-path metadata: a per-pusher sequence number and the
// sender's clock at the instant the write was posted.

// PushMagic identifies a pushed delta record ("RMPU").
const PushMagic uint32 = 0x524d5055

// PushVersion is the current push record layout version.
const PushVersion uint8 = 1

// PushRecordSize is the exact encoded size in bytes: a 20-byte push
// header, the embedded LoadRecord, and the trailing CRC.
const PushRecordSize = 20 + RecordSize + 4

// PushRecord is one agent-initiated load report: the load record the
// agent sampled, stamped with when and in what order it was pushed.
type PushRecord struct {
	PushSeq  uint32 // per-pusher monotone counter (own transport ordering)
	PushedNS int64  // sender clock when the write was posted, ns
	Load     LoadRecord
}

func (r PushRecord) String() string {
	return fmt.Sprintf("push seq=%d at=%dns %s", r.PushSeq, r.PushedNS, r.Load)
}

// AppendTo encodes the record into dst (which must have PushRecordSize
// capacity from offset 0); dst is returned for chaining. Encoding
// never fails.
func (r PushRecord) AppendTo(dst []byte) []byte {
	if cap(dst) < PushRecordSize {
		dst = make([]byte, PushRecordSize)
	}
	b := dst[:PushRecordSize]
	le := binary.LittleEndian
	le.PutUint32(b[0:], PushMagic)
	b[4] = PushVersion
	b[5] = 0
	le.PutUint16(b[6:], 0)
	le.PutUint32(b[8:], r.PushSeq)
	le.PutUint64(b[12:], uint64(r.PushedNS))
	r.Load.AppendTo(b[20 : 20+RecordSize])
	le.PutUint32(b[20+RecordSize:], crc32.ChecksumIEEE(b[:20+RecordSize]))
	return b
}

// Encode returns a freshly allocated encoding of the record.
func (r PushRecord) Encode() []byte { return r.AppendTo(nil) }

// DecodePush parses and validates a pushed delta record from b. Errors
// are the shared wire decode errors; a failure of the embedded load
// record's own validation surfaces unchanged.
func DecodePush(b []byte) (PushRecord, error) {
	var r PushRecord
	if len(b) < PushRecordSize {
		return r, ErrShort
	}
	le := binary.LittleEndian
	if le.Uint32(b[0:]) != PushMagic {
		return r, ErrMagic
	}
	if b[4] != PushVersion {
		return r, ErrVersion
	}
	if le.Uint32(b[20+RecordSize:]) != crc32.ChecksumIEEE(b[:20+RecordSize]) {
		return r, ErrChecksum
	}
	if b[5] != 0 || le.Uint16(b[6:]) != 0 {
		return r, ErrReserved
	}
	load, err := Decode(b[20 : 20+RecordSize])
	if err != nil {
		return r, err
	}
	r.PushSeq = le.Uint32(b[8:])
	r.PushedNS = int64(le.Uint64(b[12:]))
	r.Load = load
	return r, nil
}
