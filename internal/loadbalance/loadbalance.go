// Package loadbalance provides the dispatcher policies used in the
// paper's application-level evaluation: the IBM WebSphere-style
// weighted least-load policy driven by monitored load records, plus
// round-robin and random baselines.
package loadbalance

import (
	"math"
	"math/rand"

	"rdmamon/internal/core"
	"rdmamon/internal/sim"
	"rdmamon/internal/wire"
)

// LoadSource returns the newest load record for a back-end, if any.
// It is typically (*core.Monitor).Latest with the timestamp dropped.
type LoadSource func(backend int) (wire.LoadRecord, bool)

// AgedSource additionally reports how old the record is. Policies use
// the age to discount confidence in stale information: a weight
// computed from a second-old record is worse than no weight at all
// (confidently wrong beats uniformly ignorant only when it is right).
type AgedSource func(backend int) (rec wire.LoadRecord, age sim.Time, ok bool)

// Policy picks a back-end for each request.
type Policy interface {
	Name() string
	Pick() int
}

// RoundRobin cycles through the back-ends.
type RoundRobin struct {
	Backends []int
	next     int
}

// Name implements Policy.
func (r *RoundRobin) Name() string { return "round-robin" }

// Pick implements Policy.
func (r *RoundRobin) Pick() int {
	b := r.Backends[r.next%len(r.Backends)]
	r.next++
	return b
}

// Random picks uniformly.
type Random struct {
	Backends []int
	Rng      *rand.Rand
}

// Name implements Policy.
func (r *Random) Name() string { return "random" }

// Pick implements Policy.
func (r *Random) Pick() int {
	return r.Backends[r.Rng.Intn(len(r.Backends))]
}

// WeightedLeastLoad is the WebSphere-style policy (§5.2.1): compute
// the weighted load index of each back-end from its newest monitored
// record and send the request to the least-loaded one. Ties are broken
// randomly; back-ends with no record yet score zero (optimistic, like
// a freshly started system).
type WeightedLeastLoad struct {
	Backends []int
	Weights  core.Weights
	Source   LoadSource
	Rng      *rand.Rand

	// LocalFrac, if set, supplies the dispatcher's own estimate of
	// each back-end's recent fraction of forwarded requests (1/N is
	// the fair share). Real dispatchers (WebSphere, LVS) always blend
	// such a connection-count signal with monitored load; it is what
	// keeps the policy sane when monitored records are very stale.
	LocalFrac   func(backend int) float64
	LocalWeight float64

	// Exclude, if set, removes a back-end from consideration (the
	// monitor's quarantine verdict). If every back-end is excluded the
	// policy falls back to considering all of them — sending a request
	// to a possibly-dead server beats sending it nowhere.
	Exclude func(backend int) bool

	// ExcludedPicks counts picks where at least one back-end was
	// skipped by Exclude — dispatch decisions shaped by quarantine.
	ExcludedPicks uint64

	// Claimed, if set, restricts the candidate set to back-ends whose
	// dispatch shard this front-end validly holds (active-active claim
	// arbitration). Unlike Exclude there is NO fallback onto unclaimed
	// back-ends — routing there would double-dispatch against the
	// shard's real holder — so when nothing is claimed Pick returns -1
	// and the dispatcher redirects the client to another front-end.
	Claimed func(backend int) bool
	// ClaimSkips counts picks where the claim filter removed at least
	// one back-end from consideration.
	ClaimSkips uint64

	// Slope, if set together with a positive TrendHorizon, turns on
	// trend-aware dispatch: each back-end's index is projected one
	// horizon ahead (index + slope×horizon) before comparison, so a
	// back-end ramping up stops attracting the requests that would
	// arrive exactly as it saturates, and a draining one starts
	// absorbing them early. Slope reports index units per second —
	// (*core.TrendTracker).Slope fed from history-ring reads — and
	// false when no trend is known (the back-end then projects flat).
	// nil preserves the level-only policy bit-for-bit.
	Slope func(backend int) (perSec float64, ok bool)
	// TrendHorizon is how far ahead the projection looks; a natural
	// choice is one monitoring sweep. Zero disables the trend term.
	TrendHorizon sim.Time
	// TrendClamp bounds the trend term to ±TrendClamp index units
	// (default DefaultTrendClamp): the slope may bias the choice but
	// never fabricate unbounded load, so a noisy or adversarial trend
	// cannot starve a genuinely least-loaded back-end — anything lower
	// on level by more than 2×TrendClamp than the rest wins regardless
	// of every slope.
	TrendClamp float64
	// TrendPicks counts picks where the trend projection reordered the
	// deterministic level-only ranking — how often the signal actually
	// steered traffic.
	TrendPicks uint64

	// Degraded, if set, reports a back-end currently monitored over its
	// fallback transport (the monitor's Degraded verdict). Unlike
	// Exclude it keeps the back-end in the dispatch set — that is the
	// point of failover — but its index is handicapped by
	// DegradedPenalty, steering marginal traffic toward back-ends whose
	// fast monitoring path still works.
	Degraded func(backend int) bool
	// DegradedPenalty is the load-index handicap applied when Degraded
	// reports true (default 0.05 when Degraded is set).
	DegradedPenalty float64
	// DegradedPicks counts picks that landed on a degraded back-end.
	DegradedPicks uint64

	// Picks counts per-backend selections, for imbalance diagnostics.
	Picks map[int]uint64
}

// DefaultDegradedPenalty is the load-index handicap applied to a
// back-end monitored over its fallback transport when no explicit
// penalty is configured. Admission control shares it, so a degraded
// back-end is handicapped identically whether a request is being
// routed or admitted.
const DefaultDegradedPenalty = 0.05

// DefaultTrendClamp bounds the trend projection's contribution to a
// back-end's compared index when no explicit clamp is configured.
const DefaultTrendClamp = 0.2

// trendTerm computes the clamped slope×horizon projection for b (0
// when trend dispatch is off or b's trend is unknown).
func (w *WeightedLeastLoad) trendTerm(b int) float64 {
	if w.Slope == nil || w.TrendHorizon <= 0 {
		return 0
	}
	s, ok := w.Slope(b)
	if !ok {
		return 0
	}
	d := s * (float64(w.TrendHorizon) / float64(sim.Second))
	c := w.TrendClamp
	if c <= 0 {
		c = DefaultTrendClamp
	}
	if d > c {
		d = c
	}
	if d < -c {
		d = -c
	}
	return d
}

// degradedPenalty resolves the default handicap.
func degradedPenalty(p float64) float64 {
	if p > 0 {
		return p
	}
	return DefaultDegradedPenalty
}

// Name implements Policy.
func (w *WeightedLeastLoad) Name() string { return "weighted-least-load" }

// Pick implements Policy.
func (w *WeightedLeastLoad) Pick() int {
	best := -1
	bestProj := 0.0 // projected index the ranking runs on
	bestIdx := 0.0  // level index: the slope-tie tie-break
	ties := 0
	skipped := false
	// Deterministic first-wins argmins of both rankings, to count how
	// often the trend term actually reordered the choice.
	lvlBest, projBest := -1, -1
	lvlMin, projMin := 0.0, 0.0
	claimSkipped := false
	for _, b := range w.Backends {
		if w.Claimed != nil && !w.Claimed(b) {
			claimSkipped = true
			continue
		}
		if w.Exclude != nil && w.Exclude(b) {
			skipped = true
			continue
		}
		idx := 0.0
		if rec, ok := w.Source(b); ok {
			idx = w.Weights.Index(rec)
		}
		if w.LocalFrac != nil && w.LocalWeight > 0 {
			share := w.LocalFrac(b) * float64(len(w.Backends)) / 2 // fair share -> 0.5
			if share > 1 {
				share = 1
			}
			idx += w.LocalWeight * share
		}
		if w.Degraded != nil && w.Degraded(b) {
			idx += degradedPenalty(w.DegradedPenalty)
		}
		proj := idx + w.trendTerm(b)
		if lvlBest < 0 || idx < lvlMin {
			lvlBest, lvlMin = b, idx
		}
		if projBest < 0 || proj < projMin {
			projBest, projMin = b, proj
		}
		switch {
		case best < 0 || proj < bestProj || (proj == bestProj && idx < bestIdx):
			// Rank on the projection; equal projections degrade to the
			// plain level comparison, so with the trend off (or every
			// slope equal) the policy is the level-only one.
			best = b
			bestProj = proj
			bestIdx = idx
			ties = 1
		case proj == bestProj && idx == bestIdx:
			// Reservoir-sample among exact ties so equal-looking
			// back-ends share load instead of herding onto one.
			ties++
			if w.Rng != nil && w.Rng.Intn(ties) == 0 {
				best = b
			}
		}
	}
	if skipped {
		w.ExcludedPicks++
	}
	if claimSkipped {
		w.ClaimSkips++
	}
	if lvlBest != projBest {
		w.TrendPicks++
	}
	if best < 0 {
		// Everything quarantined: fall back to uniform — but only over
		// back-ends this front-end actually holds; an unclaimed shard
		// belongs to another dispatcher and leaking onto it would
		// double-dispatch.
		pool := w.Backends
		if w.Claimed != nil {
			pool = pool[:0:0]
			for _, b := range w.Backends {
				if w.Claimed(b) {
					pool = append(pool, b)
				}
			}
			if len(pool) == 0 {
				return -1
			}
		}
		if w.Rng != nil {
			best = pool[w.Rng.Intn(len(pool))]
		} else {
			best = pool[0]
		}
	}
	if w.Degraded != nil && w.Degraded(best) {
		w.DegradedPicks++
	}
	if w.Picks != nil {
		w.Picks[best]++
	}
	return best
}

// WeightedProportional is the IBM WebSphere / Network Dispatcher
// style policy the paper cites: each back-end gets a weight derived
// from its monitored load index and requests are distributed in
// proportion to the weights. Unlike strict least-load it never herds a
// whole polling window of traffic onto one server — but a server whose
// reported load is stale keeps receiving its full share long after it
// has become hot, which is exactly how inaccurate monitoring turns
// into queueing (paper §5.2).
type WeightedProportional struct {
	Backends []int
	Weights  core.Weights
	Source   LoadSource
	Rng      *rand.Rand

	// Gamma sharpens the load->weight mapping: weight = (1-index)^Gamma.
	// Zero takes the default of 2.
	Gamma float64

	// Aged, if set, is consulted instead of Source and enables the
	// staleness discount: a record older than StaleAfter contributes
	// exponentially less, decaying the weight toward uniform. Zero
	// StaleAfter disables the discount.
	Aged       AgedSource
	StaleAfter sim.Time

	// LocalFrac / LocalWeight: as in WeightedLeastLoad.
	LocalFrac   func(backend int) float64
	LocalWeight float64

	// Exclude / ExcludedPicks: as in WeightedLeastLoad. An excluded
	// back-end's weight is zero, so its traffic share is zero while
	// quarantined; uniform fallback if everything is excluded.
	Exclude       func(backend int) bool
	ExcludedPicks uint64

	// Claimed / ClaimSkips: as in WeightedLeastLoad — an unclaimed
	// back-end's weight is zero with no fallback onto it; Pick returns
	// -1 when this front-end holds nothing.
	Claimed    func(backend int) bool
	ClaimSkips uint64

	// Degraded / DegradedPenalty / DegradedPicks: as in
	// WeightedLeastLoad — degraded back-ends keep a (handicapped)
	// traffic share rather than being zeroed like quarantined ones.
	Degraded        func(backend int) bool
	DegradedPenalty float64
	DegradedPicks   uint64

	// Picks counts per-backend selections.
	Picks map[int]uint64

	weights []float64 // scratch
}

// Name implements Policy.
func (w *WeightedProportional) Name() string { return "weighted-proportional" }

// Pick implements Policy.
func (w *WeightedProportional) Pick() int {
	gamma := w.Gamma
	if gamma <= 0 {
		gamma = 2
	}
	if cap(w.weights) < len(w.Backends) {
		w.weights = make([]float64, len(w.Backends))
	}
	w.weights = w.weights[:len(w.Backends)]
	total := 0.0
	skipped := false
	claimSkipped := false
	for i, b := range w.Backends {
		if w.Claimed != nil && !w.Claimed(b) {
			w.weights[i] = 0
			claimSkipped = true
			continue
		}
		if w.Exclude != nil && w.Exclude(b) {
			w.weights[i] = 0
			skipped = true
			continue
		}
		idx := 0.0
		conf := 1.0
		switch {
		case w.Aged != nil:
			if rec, age, ok := w.Aged(b); ok {
				idx = w.Weights.Index(rec)
				if w.StaleAfter > 0 {
					conf = math.Exp(-float64(age) / float64(w.StaleAfter))
				}
			} else {
				conf = 0
			}
		case w.Source != nil:
			if rec, ok := w.Source(b); ok {
				idx = w.Weights.Index(rec)
			}
		}
		if w.LocalFrac != nil && w.LocalWeight > 0 {
			share := w.LocalFrac(b) * float64(len(w.Backends)) / 2
			if share > 1 {
				share = 1
			}
			idx += w.LocalWeight * share
		}
		// Stale information decays toward the prior (the fleet-average
		// load of 0.5).
		idx = conf*idx + (1-conf)*0.5
		if w.Degraded != nil && w.Degraded(b) {
			idx += degradedPenalty(w.DegradedPenalty)
		}
		free := 1 - idx
		if free < 0.02 {
			free = 0.02 // even a saturated-looking server keeps a trickle
		}
		wt := free
		for g := 1.0; g < gamma; g++ {
			wt *= free
		}
		w.weights[i] = wt
		total += wt
	}
	if skipped {
		w.ExcludedPicks++
	}
	if claimSkipped {
		w.ClaimSkips++
	}
	// The quarantine fallback pool: all back-ends, or only the claimed
	// ones — never leak onto a shard another front-end holds.
	pool := w.Backends
	if w.Claimed != nil {
		pool = pool[:0:0]
		for _, b := range w.Backends {
			if w.Claimed(b) {
				pool = append(pool, b)
			}
		}
		if len(pool) == 0 {
			return -1
		}
	}
	pick := pool[0]
	if total > 0 {
		for i, b := range w.Backends {
			if w.weights[i] > 0 {
				pick = b // rounding-safe default: first eligible
				break
			}
		}
	}
	switch {
	case total > 0 && w.Rng != nil:
		x := w.Rng.Float64() * total
		for i, b := range w.Backends {
			if w.weights[i] == 0 {
				continue // excluded: zero share while quarantined
			}
			x -= w.weights[i]
			if x <= 0 {
				pick = b
				break
			}
		}
	case total == 0 && w.Rng != nil:
		// Everything quarantined: uniform over the pool beats
		// dispatching every request to its first entry.
		pick = pool[w.Rng.Intn(len(pool))]
	}
	if w.Degraded != nil && w.Degraded(pick) {
		w.DegradedPicks++
	}
	if w.Picks != nil {
		w.Picks[pick]++
	}
	return pick
}

// Imbalance returns max/mean of the per-backend pick counts (1.0 is
// perfectly balanced). Requires Picks to be non-nil.
func (w *WeightedLeastLoad) Imbalance() float64 {
	if len(w.Picks) == 0 {
		return 1
	}
	var sum, max uint64
	for _, b := range w.Backends {
		c := w.Picks[b]
		sum += c
		if c > max {
			max = c
		}
	}
	if sum == 0 {
		return 1
	}
	mean := float64(sum) / float64(len(w.Backends))
	return float64(max) / mean
}
