package loadbalance

import (
	"math/rand"
	"testing"
	"testing/quick"

	"rdmamon/internal/core"
	"rdmamon/internal/sim"
	"rdmamon/internal/wire"
)

// Randomized invariants of trend-aware dispatch: whatever the slopes
// claim, (1) eligibility is untouched, (2) with the trend term off or
// uniform the policy degrades to the level-only one, and (3) the clamp
// bounds how much a slope can override the level — a back-end far
// enough ahead on level wins regardless of every slope.

// utilWeights scores purely on CPU so tests control the index exactly:
// index = UtilPerMille[0]/1000 with one CPU.
func utilWeights() core.Weights { return core.Weights{CPU: 1} }

func utilRec(perMille int) wire.LoadRecord {
	r := wire.LoadRecord{NumCPU: 1}
	r.UtilPerMille[0] = uint16(perMille)
	return r
}

func TestInvariantTrendNeverPicksIneligible(t *testing.T) {
	f := func(seed int64, nRaw, deadMask uint8, slopeRaw []int8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + int(nRaw%7)
		backends := make([]int, n)
		recs := make(map[int]wire.LoadRecord, n)
		slope := make(map[int]float64, n)
		dead := make(map[int]bool, n)
		anyAlive := false
		for i := range backends {
			b := i + 1
			backends[i] = b
			recs[b] = randRecord(rng)
			if len(slopeRaw) > 0 {
				// Slopes way beyond the clamp, both signs.
				slope[b] = float64(slopeRaw[i%len(slopeRaw)])
			}
			dead[b] = deadMask&(1<<uint(i)) != 0
			anyAlive = anyAlive || !dead[b]
		}
		w := &WeightedLeastLoad{
			Backends: backends, Weights: core.DefaultWeights(),
			Source:       func(b int) (wire.LoadRecord, bool) { return recs[b], true },
			Rng:          rng,
			Exclude:      func(b int) bool { return dead[b] },
			Slope:        func(b int) (float64, bool) { return slope[b], true },
			TrendHorizon: 50 * sim.Millisecond,
		}
		for i := 0; i < 50; i++ {
			b := w.Pick()
			if b < 1 || b > n {
				return false
			}
			if anyAlive && dead[b] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestInvariantTrendOffEqualsLevelOnly: a nil Slope, a zero horizon,
// and a uniform slope across the fleet must all reproduce the
// level-only policy's pick sequence exactly (equal projections degrade
// to the level comparison, including its tie-breaking).
func TestInvariantTrendOffEqualsLevelOnly(t *testing.T) {
	f := func(seed int64, nRaw uint8, flat int8) bool {
		n := 2 + int(nRaw%7)
		backends := make([]int, n)
		recs := make(map[int]wire.LoadRecord, n)
		rng := rand.New(rand.NewSource(seed))
		for i := range backends {
			backends[i] = i + 1
			recs[i+1] = randRecord(rng)
		}
		src := func(b int) (wire.LoadRecord, bool) { return recs[b], true }
		mk := func(slope func(int) (float64, bool), horizon sim.Time) *WeightedLeastLoad {
			return &WeightedLeastLoad{
				Backends: backends, Weights: core.DefaultWeights(), Source: src,
				Rng:   rand.New(rand.NewSource(seed + 1)),
				Slope: slope, TrendHorizon: horizon,
			}
		}
		level := mk(nil, 50*sim.Millisecond)
		zeroH := mk(func(int) (float64, bool) { return 99, true }, 0)
		uniform := mk(func(int) (float64, bool) { return float64(flat), true },
			50*sim.Millisecond)
		for i := 0; i < 50; i++ {
			want := level.Pick()
			if zeroH.Pick() != want || uniform.Pick() != want {
				return false
			}
		}
		return uniform.TrendPicks == 0 && zeroH.TrendPicks == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// TestInvariantTrendBoundedStarvation: the clamp caps the projection,
// so a back-end whose level undercuts every other's by more than
// 2×TrendClamp is picked no matter what any slope reports.
func TestInvariantTrendBoundedStarvation(t *testing.T) {
	const clamp = 0.1
	f := func(seed int64, slopeRaw []int8) bool {
		rng := rand.New(rand.NewSource(seed))
		// Back-end 1 at 10% CPU; the rest above 10% + 2×clamp + margin.
		backends := []int{1, 2, 3, 4, 5}
		recs := map[int]wire.LoadRecord{1: utilRec(100)}
		for b := 2; b <= 5; b++ {
			recs[b] = utilRec(350 + rng.Intn(600))
		}
		slope := func(b int) (float64, bool) {
			if len(slopeRaw) == 0 {
				return 0, false
			}
			return float64(slopeRaw[b%len(slopeRaw)]) * 100, true
		}
		w := &WeightedLeastLoad{
			Backends: backends, Weights: utilWeights(),
			Source:       func(b int) (wire.LoadRecord, bool) { return recs[b], true },
			Rng:          rng,
			Slope:        slope,
			TrendHorizon: sim.Second,
			TrendClamp:   clamp,
		}
		for i := 0; i < 30; i++ {
			if w.Pick() != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestTrendSteersOffRampingBackend: equal levels, one back-end ramping
// up and one draining — the policy must route to the draining one, and
// account the reordering in TrendPicks.
func TestTrendSteersOffRampingBackend(t *testing.T) {
	slopes := map[int]float64{1: +2.0, 2: -2.0}
	w := &WeightedLeastLoad{
		Backends: []int{1, 2},
		Weights:  utilWeights(),
		Source:   func(int) (wire.LoadRecord, bool) { return utilRec(500), true },
		Slope:    func(b int) (float64, bool) { return slopes[b], true },
		// One sweep of lookahead; slope×horizon saturates the clamp.
		TrendHorizon: 50 * sim.Millisecond,
	}
	for i := 0; i < 20; i++ {
		if got := w.Pick(); got != 2 {
			t.Fatalf("pick = %d, want the draining back-end 2", got)
		}
	}
	if w.TrendPicks != 20 {
		t.Fatalf("TrendPicks = %d, want 20", w.TrendPicks)
	}
}
