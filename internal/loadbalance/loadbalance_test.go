package loadbalance

import (
	"math/rand"
	"testing"
	"testing/quick"

	"rdmamon/internal/core"
	"rdmamon/internal/sim"
	"rdmamon/internal/wire"
)

func TestRoundRobinCycles(t *testing.T) {
	rr := &RoundRobin{Backends: []int{1, 2, 3}}
	got := []int{rr.Pick(), rr.Pick(), rr.Pick(), rr.Pick()}
	want := []int{1, 2, 3, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("picks = %v, want %v", got, want)
		}
	}
	if rr.Name() == "" {
		t.Error("empty name")
	}
}

func TestRandomStaysInSet(t *testing.T) {
	r := &Random{Backends: []int{4, 7}, Rng: rand.New(rand.NewSource(1))}
	seen := map[int]int{}
	for i := 0; i < 1000; i++ {
		b := r.Pick()
		if b != 4 && b != 7 {
			t.Fatalf("pick %d outside set", b)
		}
		seen[b]++
	}
	if seen[4] == 0 || seen[7] == 0 {
		t.Fatal("random never picked one backend")
	}
	if r.Name() == "" {
		t.Error("empty name")
	}
}

func recWithUtil(node int, util int) wire.LoadRecord {
	r := wire.LoadRecord{NumCPU: 2, NodeID: uint16(node)}
	r.UtilPerMille[0] = uint16(util)
	r.UtilPerMille[1] = uint16(util)
	return r
}

// recSaturated is loaded on every index component, not just CPU.
func recSaturated(node int) wire.LoadRecord {
	r := recWithUtil(node, 1000)
	r.NrRunning = 32
	r.Conns = 64
	r.MemUsedKB = 900 << 10
	r.MemTotalKB = 1 << 20
	return r
}

func TestWeightedLeastLoadPicksLeastLoaded(t *testing.T) {
	loads := map[int]wire.LoadRecord{
		1: recWithUtil(1, 900),
		2: recWithUtil(2, 100),
		3: recWithUtil(3, 500),
	}
	w := &WeightedLeastLoad{
		Backends: []int{1, 2, 3},
		Weights:  core.DefaultWeights(),
		Source:   func(b int) (wire.LoadRecord, bool) { r, ok := loads[b]; return r, ok },
		Rng:      rand.New(rand.NewSource(1)),
		Picks:    make(map[int]uint64),
	}
	for i := 0; i < 10; i++ {
		if b := w.Pick(); b != 2 {
			t.Fatalf("pick = %d, want 2 (least loaded)", b)
		}
	}
	if w.Picks[2] != 10 {
		t.Fatalf("picks accounting = %v", w.Picks)
	}
	if w.Name() == "" {
		t.Error("empty name")
	}
}

func TestWeightedLeastLoadMissingRecordOptimistic(t *testing.T) {
	// A backend with no record yet scores zero: preferred over a
	// loaded one.
	w := &WeightedLeastLoad{
		Backends: []int{1, 2},
		Weights:  core.DefaultWeights(),
		Source: func(b int) (wire.LoadRecord, bool) {
			if b == 1 {
				return recWithUtil(1, 800), true
			}
			return wire.LoadRecord{}, false
		},
		Rng: rand.New(rand.NewSource(1)),
	}
	if b := w.Pick(); b != 2 {
		t.Fatalf("pick = %d, want the unknown backend 2", b)
	}
}

func TestWeightedLeastLoadTieBreakSpreads(t *testing.T) {
	// All backends identical: random tie-break must spread picks, not
	// herd onto the first.
	w := &WeightedLeastLoad{
		Backends: []int{1, 2, 3, 4},
		Weights:  core.DefaultWeights(),
		Source:   func(b int) (wire.LoadRecord, bool) { return recWithUtil(b, 500), true },
		Rng:      rand.New(rand.NewSource(2)),
		Picks:    make(map[int]uint64),
	}
	for i := 0; i < 4000; i++ {
		w.Pick()
	}
	for _, b := range w.Backends {
		if w.Picks[b] < 700 {
			t.Fatalf("tie-break starved backend %d: %v", b, w.Picks)
		}
	}
	if im := w.Imbalance(); im > 1.2 {
		t.Fatalf("imbalance = %v, want ~1.0", im)
	}
}

func TestImbalanceEdgeCases(t *testing.T) {
	w := &WeightedLeastLoad{Backends: []int{1, 2}}
	if w.Imbalance() != 1 {
		t.Fatal("nil Picks should report 1.0")
	}
	w.Picks = map[int]uint64{}
	if w.Imbalance() != 1 {
		t.Fatal("empty Picks should report 1.0")
	}
}

// Property: whatever the load records, the weighted policy returns a
// member of its backend set.
func TestQuickWeightedPickInSet(t *testing.T) {
	f := func(utils []uint16, seed int64) bool {
		if len(utils) == 0 {
			return true
		}
		backends := make([]int, len(utils))
		recs := make(map[int]wire.LoadRecord)
		for i, u := range utils {
			backends[i] = i + 1
			recs[i+1] = recWithUtil(i+1, int(u%1001))
		}
		w := &WeightedLeastLoad{
			Backends: backends,
			Weights:  core.DefaultWeights(),
			Source:   func(b int) (wire.LoadRecord, bool) { r, ok := recs[b]; return r, ok },
			Rng:      rand.New(rand.NewSource(seed)),
		}
		b := w.Pick()
		return b >= 1 && b <= len(utils)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestProportionalSpreadsByWeight(t *testing.T) {
	// Backend 1 looks idle, backend 2 saturated: with gamma=2 the idle
	// one should receive the overwhelming share but not 100%.
	loads := map[int]wire.LoadRecord{
		1: recWithUtil(1, 50),
		2: recSaturated(2),
	}
	w := &WeightedProportional{
		Backends: []int{1, 2},
		Weights:  core.DefaultWeights(),
		Source:   func(b int) (wire.LoadRecord, bool) { r, ok := loads[b]; return r, ok },
		Rng:      rand.New(rand.NewSource(3)),
		Picks:    make(map[int]uint64),
	}
	for i := 0; i < 10000; i++ {
		w.Pick()
	}
	if w.Picks[1] < 8000 {
		t.Fatalf("idle backend got %d of 10000, want the lion's share", w.Picks[1])
	}
	if w.Picks[2] == 0 {
		t.Fatal("saturated backend must keep a trickle (weight floor)")
	}
	if w.Name() == "" {
		t.Error("empty name")
	}
}

func TestProportionalGammaSharpens(t *testing.T) {
	loads := map[int]wire.LoadRecord{
		1: recWithUtil(1, 300),
		2: recWithUtil(2, 700),
	}
	share := func(gamma float64) float64 {
		w := &WeightedProportional{
			Backends: []int{1, 2},
			Weights:  core.DefaultWeights(),
			Source:   func(b int) (wire.LoadRecord, bool) { r, ok := loads[b]; return r, ok },
			Rng:      rand.New(rand.NewSource(4)),
			Gamma:    gamma,
			Picks:    make(map[int]uint64),
		}
		for i := 0; i < 20000; i++ {
			w.Pick()
		}
		return float64(w.Picks[1]) / 20000
	}
	if share(4) <= share(1) {
		t.Fatalf("higher gamma should favor the lighter backend more: g1=%.3f g4=%.3f",
			share(1), share(4))
	}
}

func TestProportionalStalenessDecaysToUniform(t *testing.T) {
	// One backend reports (stale) saturation; with a very old record
	// and the discount enabled, traffic should approach uniform.
	mkAged := func(age sim.Time) AgedSource {
		return func(b int) (wire.LoadRecord, sim.Time, bool) {
			if b == 2 {
				return recSaturated(2), age, true
			}
			return recWithUtil(1, 0), age, true
		}
	}
	share2 := func(age sim.Time) float64 {
		w := &WeightedProportional{
			Backends:   []int{1, 2},
			Weights:    core.DefaultWeights(),
			Aged:       mkAged(age),
			StaleAfter: 100 * sim.Millisecond,
			Rng:        rand.New(rand.NewSource(5)),
			Picks:      make(map[int]uint64),
		}
		for i := 0; i < 20000; i++ {
			w.Pick()
		}
		return float64(w.Picks[2]) / 20000
	}
	fresh := share2(0)
	stale := share2(2 * sim.Second)
	if fresh > 0.2 {
		t.Fatalf("fresh saturation should divert traffic: share=%.3f", fresh)
	}
	if stale < 0.4 || stale > 0.6 {
		t.Fatalf("very stale records should decay to ~uniform: share=%.3f", stale)
	}
}

func TestProportionalNoRecordsUniform(t *testing.T) {
	w := &WeightedProportional{
		Backends: []int{1, 2, 3},
		Weights:  core.DefaultWeights(),
		Source:   func(int) (wire.LoadRecord, bool) { return wire.LoadRecord{}, false },
		Rng:      rand.New(rand.NewSource(6)),
		Picks:    make(map[int]uint64),
	}
	for i := 0; i < 9000; i++ {
		w.Pick()
	}
	for _, b := range w.Backends {
		if w.Picks[b] < 2500 {
			t.Fatalf("no-record spread uneven: %v", w.Picks)
		}
	}
}
