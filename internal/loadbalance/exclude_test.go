package loadbalance

import (
	"math/rand"
	"testing"

	"rdmamon/internal/wire"
)

// TestLeastLoadExcludesQuarantined: an excluded back-end never gets
// picked while at least one eligible back-end exists.
func TestLeastLoadExcludesQuarantined(t *testing.T) {
	src := func(b int) (wire.LoadRecord, bool) { return wire.LoadRecord{}, false }
	dead := map[int]bool{2: true}
	w := &WeightedLeastLoad{
		Backends: []int{1, 2, 3},
		Source:   src,
		Rng:      rand.New(rand.NewSource(1)),
		Exclude:  func(b int) bool { return dead[b] },
		Picks:    map[int]uint64{},
	}
	for i := 0; i < 500; i++ {
		if w.Pick() == 2 {
			t.Fatal("picked an excluded back-end")
		}
	}
	if w.Picks[1] == 0 || w.Picks[3] == 0 {
		t.Fatalf("eligible back-ends unshared: %v", w.Picks)
	}
	if w.ExcludedPicks != 500 {
		t.Fatalf("ExcludedPicks = %d, want 500", w.ExcludedPicks)
	}
}

// TestLeastLoadAllExcludedFallsBack: with every back-end quarantined
// the policy degrades to uniform rather than returning -1.
func TestLeastLoadAllExcludedFallsBack(t *testing.T) {
	w := &WeightedLeastLoad{
		Backends: []int{1, 2},
		Source:   func(b int) (wire.LoadRecord, bool) { return wire.LoadRecord{}, false },
		Rng:      rand.New(rand.NewSource(1)),
		Exclude:  func(b int) bool { return true },
	}
	seen := map[int]int{}
	for i := 0; i < 200; i++ {
		b := w.Pick()
		if b != 1 && b != 2 {
			t.Fatalf("pick %d outside set", b)
		}
		seen[b]++
	}
	if seen[1] == 0 || seen[2] == 0 {
		t.Fatalf("fallback not uniform: %v", seen)
	}
}

// TestProportionalExcludedGetsZeroShare: a quarantined back-end's
// traffic share drops to exactly zero.
func TestProportionalExcludedGetsZeroShare(t *testing.T) {
	dead := map[int]bool{5: true}
	w := &WeightedProportional{
		Backends: []int{4, 5, 6},
		Source:   func(b int) (wire.LoadRecord, bool) { return wire.LoadRecord{}, true },
		Rng:      rand.New(rand.NewSource(7)),
		Exclude:  func(b int) bool { return dead[b] },
		Picks:    map[int]uint64{},
	}
	for i := 0; i < 1000; i++ {
		if w.Pick() == 5 {
			t.Fatal("proportional dispatched to an excluded back-end")
		}
	}
	if w.Picks[4] == 0 || w.Picks[6] == 0 {
		t.Fatalf("eligible back-ends unshared: %v", w.Picks)
	}
	if w.ExcludedPicks != 1000 {
		t.Fatalf("ExcludedPicks = %d, want 1000", w.ExcludedPicks)
	}

	// Re-admit: once Exclude clears, the back-end gets traffic again.
	delete(dead, 5)
	got5 := false
	for i := 0; i < 1000 && !got5; i++ {
		got5 = w.Pick() == 5
	}
	if !got5 {
		t.Fatal("re-admitted back-end never picked")
	}
}

// TestProportionalAllExcludedFallsBack mirrors the least-load case.
func TestProportionalAllExcludedFallsBack(t *testing.T) {
	w := &WeightedProportional{
		Backends: []int{1, 2},
		Source:   func(b int) (wire.LoadRecord, bool) { return wire.LoadRecord{}, true },
		Rng:      rand.New(rand.NewSource(3)),
		Exclude:  func(b int) bool { return true },
	}
	seen := map[int]int{}
	for i := 0; i < 200; i++ {
		seen[w.Pick()]++
	}
	if seen[1] == 0 || seen[2] == 0 {
		t.Fatalf("fallback not uniform: %v", seen)
	}
}
