package loadbalance

import (
	"math/rand"
	"testing"
	"testing/quick"

	"rdmamon/internal/core"
	"rdmamon/internal/wire"
)

// Randomized invariants of the dispatch policies: whatever the load
// records and quarantine verdicts look like, (1) an ineligible
// back-end is never selected while any eligible one exists, and (2)
// the degraded handicap only ever moves traffic away from a degraded
// back-end — it is monotone in the penalty and never excludes outright.

// randRecord builds an arbitrary-but-valid load record from fuzz bytes.
func randRecord(rng *rand.Rand) wire.LoadRecord {
	rec := wire.LoadRecord{
		NumCPU:    uint8(1 + rng.Intn(4)),
		NrRunning: uint16(rng.Intn(32)),
		NrTasks:   uint16(rng.Intn(200)),
		Conns:     uint16(rng.Intn(64)),
		MemUsedKB: uint32(rng.Intn(1 << 20)),
	}
	rec.MemTotalKB = rec.MemUsedKB + uint32(rng.Intn(1<<20)) + 1
	for i := 0; i < int(rec.NumCPU); i++ {
		rec.UtilPerMille[i] = uint16(rng.Intn(1001))
	}
	return rec
}

// TestInvariantNeverPickIneligible drives both policies over random
// fleets, loads and quarantine sets: a pick must land on an eligible
// back-end whenever one exists, and inside the fleet regardless.
func TestInvariantNeverPickIneligible(t *testing.T) {
	f := func(seed int64, nRaw, deadMask uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + int(nRaw%7) // 2..8 back-ends
		backends := make([]int, n)
		recs := make(map[int]wire.LoadRecord, n)
		dead := make(map[int]bool, n)
		anyAlive := false
		for i := range backends {
			b := i + 1
			backends[i] = b
			recs[b] = randRecord(rng)
			dead[b] = deadMask&(1<<uint(i)) != 0
			anyAlive = anyAlive || !dead[b]
		}
		src := func(b int) (wire.LoadRecord, bool) { return recs[b], true }
		excl := func(b int) bool { return dead[b] }
		pols := []Policy{
			&WeightedLeastLoad{Backends: backends, Weights: core.DefaultWeights(),
				Source: src, Rng: rng, Exclude: excl},
			&WeightedProportional{Backends: backends, Weights: core.DefaultWeights(),
				Source: src, Rng: rng, Exclude: excl},
		}
		for _, pol := range pols {
			for i := 0; i < 50; i++ {
				b := pol.Pick()
				if b < 1 || b > n {
					return false // outside the fleet
				}
				if anyAlive && dead[b] {
					return false // quarantined back-end got traffic
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestInvariantDegradedStrictlyAvoided: with Rng=nil (deterministic
// tie-breaks) and otherwise identical back-ends, least-load must never
// choose the degraded one — any positive penalty breaks the tie
// against it.
func TestInvariantDegradedStrictlyAvoided(t *testing.T) {
	rec := wire.LoadRecord{NumCPU: 1, Conns: 4}
	for _, penalty := range []float64{0, 0.01, 0.05, 0.5} {
		w := &WeightedLeastLoad{
			Backends:        []int{1, 2, 3},
			Weights:         core.DefaultWeights(),
			Source:          func(int) (wire.LoadRecord, bool) { return rec, true },
			Degraded:        func(b int) bool { return b == 2 },
			DegradedPenalty: penalty, // zero resolves to the default
		}
		for i := 0; i < 100; i++ {
			if w.Pick() == 2 {
				t.Fatalf("penalty %v: degraded back-end won a tie", penalty)
			}
		}
		if w.DegradedPicks != 0 {
			t.Fatalf("penalty %v: DegradedPicks = %d", penalty, w.DegradedPicks)
		}
	}
}

// degradedShare measures the fraction of proportional picks landing on
// the (single) degraded back-end under a given penalty.
func degradedShare(penalty float64, picks int) float64 {
	rec := wire.LoadRecord{NumCPU: 1, Conns: 8}
	w := &WeightedProportional{
		Backends:        []int{1, 2, 3, 4},
		Weights:         core.DefaultWeights(),
		Source:          func(int) (wire.LoadRecord, bool) { return rec, true },
		Rng:             rand.New(rand.NewSource(99)),
		Degraded:        func(b int) bool { return b == 3 },
		DegradedPenalty: penalty,
	}
	hit := 0
	for i := 0; i < picks; i++ {
		if w.Pick() == 3 {
			hit++
		}
	}
	return float64(hit) / float64(picks)
}

// TestInvariantDegradedPenaltyMonotone: raising the penalty never
// raises the degraded back-end's traffic share, and even a large
// penalty never zeroes it — degraded means handicapped, not
// quarantined.
func TestInvariantDegradedPenaltyMonotone(t *testing.T) {
	const picks = 20000
	penalties := []float64{0.01, 0.05, 0.2, 0.6}
	prev := 1.0
	for _, p := range penalties {
		share := degradedShare(p, picks)
		if share == 0 {
			t.Fatalf("penalty %v starved the degraded back-end outright", p)
		}
		if share > prev+0.01 { // 1% slack for sampling noise
			t.Fatalf("penalty %v share %.3f rose above %.3f", p, share, prev)
		}
		prev = share
	}
	if fair := 1.0 / 4; prev > fair {
		t.Fatalf("max penalty share %.3f not below fair share %.3f", prev, fair)
	}
}

// TestInvariantAllExcludedStaysInFleet: even with every back-end
// quarantined both policies keep dispatching inside the fleet (uniform
// fallback) rather than panicking or fixating.
func TestInvariantAllExcludedStaysInFleet(t *testing.T) {
	backends := []int{7, 8, 9}
	excl := func(int) bool { return true }
	src := func(int) (wire.LoadRecord, bool) { return wire.LoadRecord{}, false }
	for _, pol := range []Policy{
		&WeightedLeastLoad{Backends: backends, Source: src,
			Rng: rand.New(rand.NewSource(3)), Exclude: excl},
		&WeightedProportional{Backends: backends, Source: src,
			Rng: rand.New(rand.NewSource(3)), Exclude: excl},
	} {
		seen := map[int]int{}
		for i := 0; i < 300; i++ {
			b := pol.Pick()
			if b != 7 && b != 8 && b != 9 {
				t.Fatalf("%s: pick %d outside fleet", pol.Name(), b)
			}
			seen[b]++
		}
		if len(seen) != 3 {
			t.Fatalf("%s: fallback fixated: %v", pol.Name(), seen)
		}
	}
}
