package faults

import (
	"math/rand"

	"rdmamon/internal/sim"
)

// ChaosConfig bounds a randomized fault plan. The zero value of every
// count takes a default; Backends and Horizon are required.
type ChaosConfig struct {
	// Backends is the number of back-end nodes (IDs 1..Backends; node 0
	// is the front-end).
	Backends int
	// Horizon is the run length the plan must fit inside. Every fault
	// window settles by ~75% of it, leaving a quiet tail in which the
	// invariant checker can observe recovery (fail-back, probation)
	// without another fault landing on top.
	Horizon sim.Time

	// Crashes is how many distinct back-ends crash and restart
	// (default 2, capped at Backends).
	Crashes int
	// LinkFaults is how many lossy/laggy link windows to open
	// (default 2).
	LinkFaults int
	// Partitions is how many front-end/back-end partition windows to
	// open (default 1).
	Partitions int
	// MRInvalidations is how many memory-region revocations to schedule,
	// on back-ends distinct from the crashed ones (default 2).
	MRInvalidations int

	// FrontEnds lists front-end replica node IDs eligible for
	// front-end faults. Empty disables them entirely — and, because
	// front-end draws happen strictly after every back-end draw, a
	// config without FrontEnds consumes exactly the RNG stream it did
	// before HA existed, keeping historical plans bit-identical.
	FrontEnds []int
	// Witness is the lease witness node ID (the target of front-end
	// partition windows).
	Witness int
	// FECrashes, FEFreezes and FEPartitions count front-end fault
	// windows (each defaults to 1 when FrontEnds is non-empty).
	// Victims are distinct across all three kinds, so with three
	// replicas at most two are ever disturbed at once and a standby
	// remains to take the lease.
	FECrashes    int
	FEFreezes    int
	FEPartitions int

	// ClaimStalls counts claim-stall windows for active-active
	// clusters: alternating front-end freezes long enough to orphan
	// held claims (the survivors must reclaim, the thawed holder must
	// fence) and front-end/witness partitions landing mid-CAS-round
	// (renewals time out, validity lapses, claims drift to replicas
	// that can still reach the witness). Deliberately NOT defaulted on:
	// claim-stall draws happen strictly after every draw that existed
	// before them, so any config leaving this zero consumes exactly the
	// RNG stream it always did and historical (seed, cfg) plans replay
	// bit-identically.
	ClaimStalls int
}

func (c ChaosConfig) withDefaults() ChaosConfig {
	if c.Crashes == 0 {
		c.Crashes = 2
	}
	if c.LinkFaults == 0 {
		c.LinkFaults = 2
	}
	if c.Partitions == 0 {
		c.Partitions = 1
	}
	if c.MRInvalidations == 0 {
		c.MRInvalidations = 2
	}
	if c.Crashes > c.Backends {
		c.Crashes = c.Backends
	}
	if len(c.FrontEnds) > 0 {
		if c.FECrashes == 0 {
			c.FECrashes = 1
		}
		if c.FEFreezes == 0 {
			c.FEFreezes = 1
		}
		if c.FEPartitions == 0 {
			c.FEPartitions = 1
		}
	}
	return c
}

// RandomPlan generates a seeded random fault plan within cfg's bounds.
// The same (seed, cfg) pair always yields the same plan — the chaos
// harness's bit-identical-replay property starts here.
//
// Two deliberate restrictions keep the plan's effects attributable:
//
//   - Link faults perturb only the forward direction (front-end ->
//     back-end) and never duplicate. Requests and one-sided reads get
//     dropped and delayed; probe replies travel clean, so a record
//     that does arrive arrives in order and the sequence-regression
//     invariant observes the transport, not reply reordering.
//   - MR invalidations land on back-ends that do not also crash, so a
//     "probing survived an invalidation" observation is not an
//     artifact of the restart having re-registered everything anyway.
func RandomPlan(seed int64, cfg ChaosConfig) Plan {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(seed))
	h := float64(cfg.Horizon)
	t := func(lo, hi float64) sim.Time { // uniform draw in [lo*H, hi*H)
		return sim.Time(h * (lo + (hi-lo)*rng.Float64()))
	}
	plan := Plan{Seed: seed}

	// Crashes: distinct victims, restarting well before the horizon.
	victims := rng.Perm(cfg.Backends)
	crashed := make(map[int]bool)
	for i := 0; i < cfg.Crashes; i++ {
		node := victims[i] + 1
		crashed[node] = true
		at := t(0.10, 0.45)
		plan.Crashes = append(plan.Crashes, Crash{
			Node: node, At: at, RestartAt: at + t(0.05, 0.20),
		})
	}

	// Link faults: forward-direction loss/latency windows against
	// random back-ends, closed by 0.75H.
	for i := 0; i < cfg.LinkFaults; i++ {
		start := t(0.10, 0.40)
		end := start + t(0.10, 0.30)
		if lim := sim.Time(0.75 * h); end > lim {
			end = lim
		}
		plan.Links = append(plan.Links, LinkFault{
			From: 0, To: rng.Intn(cfg.Backends) + 1,
			Start: start, End: end,
			Drop:      0.20 + 0.30*rng.Float64(),
			DelayProb: 0.10 + 0.20*rng.Float64(),
			DelayMin:  1 * sim.Millisecond,
			DelayMax:  1*sim.Millisecond + sim.Time(rng.Int63n(int64(4*sim.Millisecond))),
		})
	}

	// Partitions: the front-end loses a small back-end subset, closed
	// by 0.70H.
	for i := 0; i < cfg.Partitions; i++ {
		size := 1 + rng.Intn(max(1, cfg.Backends/4))
		perm := rng.Perm(cfg.Backends)
		b := make([]int, 0, size)
		for _, v := range perm[:size] {
			b = append(b, v+1)
		}
		start := t(0.10, 0.40)
		end := start + t(0.08, 0.25)
		if lim := sim.Time(0.70 * h); end > lim {
			end = lim
		}
		plan.Partitions = append(plan.Partitions, Partition{
			Start: start, End: end, A: []int{0}, B: b,
		})
	}

	// MR invalidations: on back-ends that stay up throughout.
	alive := make([]int, 0, cfg.Backends)
	for n := 1; n <= cfg.Backends; n++ {
		if !crashed[n] {
			alive = append(alive, n)
		}
	}
	for i := 0; i < cfg.MRInvalidations && len(alive) > 0; i++ {
		plan.MRInvalidations = append(plan.MRInvalidations, MRInvalidation{
			Node: alive[rng.Intn(len(alive))],
			At:   t(0.10, 0.50),
		})
	}

	// Front-end faults (HA clusters): distinct victims, one fault kind
	// per phase of the run — crash early, freeze mid-run, partition
	// late — so each lease handoff is observable in isolation and the
	// quiet tail still sees the last takeover settle.
	if len(cfg.FrontEnds) > 0 {
		order := rng.Perm(len(cfg.FrontEnds))
		next := 0
		take := func() (int, bool) {
			if next >= len(order) {
				return 0, false
			}
			id := cfg.FrontEnds[order[next]]
			next++
			return id, true
		}
		for i := 0; i < cfg.FECrashes; i++ {
			fe, ok := take()
			if !ok {
				break
			}
			at := t(0.10, 0.28)
			plan.Crashes = append(plan.Crashes, Crash{
				Node: fe, At: at, RestartAt: at + t(0.10, 0.18),
			})
		}
		for i := 0; i < cfg.FEFreezes; i++ {
			fe, ok := take()
			if !ok {
				break
			}
			at := t(0.36, 0.48)
			plan.Freezes = append(plan.Freezes, Freeze{
				Node: fe, At: at, Until: at + t(0.08, 0.14),
			})
		}
		// Partition the victim from the witness only: it keeps serving
		// clients and probing back-ends, but cannot renew — the pure
		// epoch-fencing scenario (a split brain if the fence leaks).
		for i := 0; i < cfg.FEPartitions; i++ {
			fe, ok := take()
			if !ok {
				break
			}
			start := t(0.56, 0.66)
			end := start + t(0.08, 0.14)
			if lim := sim.Time(0.80 * h); end > lim {
				end = lim
			}
			plan.Partitions = append(plan.Partitions, Partition{
				Start: start, End: end, A: []int{fe}, B: []int{cfg.Witness},
			})
		}
	}

	// Claim stalls (active-active clusters): drawn append-only, after
	// every pre-existing draw. Even indices freeze a front-end mid-hold
	// (long enough for its claims to orphan and be reclaimed); odd
	// indices partition one from the witness (its CAS rounds time out
	// and its validity lapses while it keeps serving clients). Victims
	// repeat freely — two stalls on one replica are a legitimate
	// scenario, unlike the distinct-victim lease faults above.
	if cfg.ClaimStalls > 0 && len(cfg.FrontEnds) > 0 {
		for i := 0; i < cfg.ClaimStalls; i++ {
			fe := cfg.FrontEnds[rng.Intn(len(cfg.FrontEnds))]
			if i%2 == 0 {
				at := t(0.30, 0.42)
				plan.Freezes = append(plan.Freezes, Freeze{
					Node: fe, At: at, Until: at + t(0.10, 0.16),
				})
				continue
			}
			start := t(0.55, 0.68)
			end := start + t(0.08, 0.14)
			if lim := sim.Time(0.85 * h); end > lim {
				end = lim
			}
			plan.Partitions = append(plan.Partitions, Partition{
				Start: start, End: end, A: []int{fe}, B: []int{cfg.Witness},
			})
		}
	}
	return plan
}
