// Package faults is a deterministic fault-injection subsystem for the
// simulated cluster: a seeded Plan describes per-link message loss,
// delay and duplication, network partitions, node crash/restart and
// freeze (slowdown) windows, and memory-region invalidations; an
// Injector executes the plan against a simnet.Fabric and simos nodes.
//
// Everything is driven by the simulation engine and a rand stream
// seeded from the plan, so a run under a fault plan is exactly as
// reproducible as a run without one — the property the determinism
// golden tests lock down.
package faults

import (
	"math/rand"

	"rdmamon/internal/sim"
	"rdmamon/internal/simnet"
	"rdmamon/internal/simos"
)

// Any is the wildcard node ID in a LinkFault endpoint.
const Any = int(-1 << 30)

// LinkFault perturbs messages and RDMA operations on a directed link
// (From -> To, with Any as a wildcard on either side) during a window.
type LinkFault struct {
	From, To int
	Start    sim.Time // window start (inclusive)
	End      sim.Time // window end; <= 0 means forever

	Drop      float64  // per-attempt loss probability
	Dup       float64  // per-message duplication probability (channel only)
	DelayProb float64  // probability of adding extra latency
	DelayMin  sim.Time // extra latency bounds (uniform)
	DelayMax  sim.Time
}

func (l LinkFault) matches(from, to int, now sim.Time) bool {
	if l.From != Any && l.From != from {
		return false
	}
	if l.To != Any && l.To != to {
		return false
	}
	if now < l.Start {
		return false
	}
	return l.End <= 0 || now < l.End
}

// Partition makes groups A and B mutually unreachable during a window
// (messages vanish, RDMA completes with a transport timeout).
type Partition struct {
	Start, End sim.Time
	A, B       []int
}

func (p Partition) severs(from, to int, now sim.Time) bool {
	if now < p.Start || (p.End > 0 && now >= p.End) {
		return false
	}
	return (contains(p.A, from) && contains(p.B, to)) ||
		(contains(p.B, from) && contains(p.A, to))
}

func contains(s []int, v int) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

// Crash fails a node at At; RestartAt <= At means it never comes back.
type Crash struct {
	Node          int
	At, RestartAt sim.Time
}

// Freeze stalls a node's user-level progress during [At, Until).
type Freeze struct {
	Node      int
	At, Until sim.Time
}

// MRInvalidation revokes the registered memory regions of a node's
// monitoring agent at At (the "remote key went stale" failure mode:
// page unpinned, agent re-registered, key rotated).
type MRInvalidation struct {
	Node int
	At   sim.Time
}

// DialStorm degrades connection establishment toward Target (Any =
// every target) during a window: dial attempts are refused with
// probability Refuse (listener backlog overrun) and/or delayed —
// the failure mode a thundering herd of monitors inflicts on a
// restarting fleet. Only the pooled dial path consults it; one-sided
// data traffic is unaffected.
type DialStorm struct {
	Target     int
	Start, End sim.Time
	Refuse     float64
	DelayProb  float64
	DelayMin   sim.Time
	DelayMax   sim.Time
}

func (d DialStorm) matches(target int, now sim.Time) bool {
	if d.Target != Any && d.Target != target {
		return false
	}
	if now < d.Start {
		return false
	}
	return d.End <= 0 || now < d.End
}

// FDClamp caps Node's file descriptors to Limit during [Start, End)
// — the fd-exhaustion regime: new dials fail with ErrFDLimit while
// established connections keep working. End <= 0 means forever.
type FDClamp struct {
	Node       int
	Start, End sim.Time
	Limit      int
}

// ListenerReset bounces Node's accept path at At: every established
// QP targeting it goes to the error state (simnet.Fabric.ResetListener),
// forcing initiators through the epoch fence and a redial.
type ListenerReset struct {
	Node int
	At   sim.Time
}

// Plan is a complete, seeded fault schedule.
type Plan struct {
	Seed            int64
	Links           []LinkFault
	Partitions      []Partition
	Crashes         []Crash
	Freezes         []Freeze
	MRInvalidations []MRInvalidation
	// Connection-lifecycle phases (consulted only by the pooled dial
	// path, so plans without them replay bit-identically).
	DialStorms     []DialStorm
	FDClamps       []FDClamp
	ListenerResets []ListenerReset
}

// TwoNodeCrashPlan is a canonical plan used by tests and the faults
// experiment: nodes a and b crash at crashAt and restart at restartAt.
func TwoNodeCrashPlan(seed int64, a, b int, crashAt, restartAt sim.Time) Plan {
	return Plan{
		Seed: seed,
		Crashes: []Crash{
			{Node: a, At: crashAt, RestartAt: restartAt},
			{Node: b, At: crashAt, RestartAt: restartAt},
		},
	}
}

// Injector executes a Plan: it implements simnet.FaultModel for the
// fabric and schedules the node-level events on the engine.
type Injector struct {
	eng  *sim.Engine
	rng  *rand.Rand
	plan Plan

	// Optional application-level hooks, called after the node-level
	// state change (so a crashed node is already Down when OnCrash
	// runs). The cluster layer uses them to kill and respawn servers
	// and monitoring agents.
	OnCrash        func(node int)
	OnRestart      func(node int)
	OnFreeze       func(node int)
	OnThaw         func(node int)
	OnMRInvalidate func(node int)

	// Counters (observability for experiments and tests).
	DroppedMsgs    uint64
	DupedMsgs      uint64
	DelayedMsgs    uint64
	FailedRDMA     uint64
	CrashEvents    uint64
	RefusedDials   uint64
	ListenerResets uint64
}

// NewInjector builds an injector for plan on eng. Call Install to arm
// it.
func NewInjector(eng *sim.Engine, plan Plan) *Injector {
	seed := plan.Seed
	if seed == 0 {
		seed = 0x5fa17 // arbitrary fixed default: still deterministic
	}
	return &Injector{eng: eng, rng: rand.New(rand.NewSource(seed)), plan: plan}
}

// Install wires the injector into the fabric and schedules every
// node-level event of the plan against nodes (keyed by node ID; nodes
// absent from the map are skipped — their link faults still apply).
func (in *Injector) Install(fab *simnet.Fabric, nodes map[int]*simos.Node) {
	fab.SetFaults(in)
	now := in.eng.Now()
	at := func(t sim.Time, fn func()) {
		d := t - now
		if d < 0 {
			d = 0
		}
		in.eng.After(d, fn)
	}
	for _, c := range in.plan.Crashes {
		c := c
		n := nodes[c.Node]
		if n == nil {
			continue
		}
		at(c.At, func() {
			in.CrashEvents++
			n.Crash()
			if in.OnCrash != nil {
				in.OnCrash(c.Node)
			}
		})
		if c.RestartAt > c.At {
			at(c.RestartAt, func() {
				n.Restart()
				if in.OnRestart != nil {
					in.OnRestart(c.Node)
				}
			})
		}
	}
	for _, fz := range in.plan.Freezes {
		fz := fz
		n := nodes[fz.Node]
		if n == nil {
			continue
		}
		at(fz.At, func() {
			n.Freeze()
			if in.OnFreeze != nil {
				in.OnFreeze(fz.Node)
			}
		})
		if fz.Until > fz.At {
			at(fz.Until, func() {
				n.Thaw()
				if in.OnThaw != nil {
					in.OnThaw(fz.Node)
				}
			})
		}
	}
	for _, mi := range in.plan.MRInvalidations {
		mi := mi
		at(mi.At, func() {
			if in.OnMRInvalidate != nil {
				in.OnMRInvalidate(mi.Node)
			}
		})
	}
	for _, cl := range in.plan.FDClamps {
		cl := cl
		nic := fab.NIC(cl.Node)
		if nic == nil {
			continue
		}
		var prev int
		at(cl.Start, func() {
			prev = nic.FDLimit()
			nic.SetFDLimit(cl.Limit)
		})
		if cl.End > cl.Start {
			at(cl.End, func() { nic.SetFDLimit(prev) })
		}
	}
	for _, lr := range in.plan.ListenerResets {
		lr := lr
		at(lr.At, func() {
			in.ListenerResets++
			fab.ResetListener(lr.Node)
		})
	}
}

// partitioned reports whether a partition currently severs from->to.
func (in *Injector) partitioned(from, to int) bool {
	now := in.eng.Now()
	for _, p := range in.plan.Partitions {
		if p.severs(from, to, now) {
			return true
		}
	}
	return false
}

// Channel implements simnet.FaultModel for channel-semantics traffic.
func (in *Injector) Channel(from, dst, size int) simnet.ChannelVerdict {
	if in.partitioned(from, dst) {
		in.DroppedMsgs++
		return simnet.ChannelVerdict{Drop: true}
	}
	var v simnet.ChannelVerdict
	now := in.eng.Now()
	for _, l := range in.plan.Links {
		if !l.matches(from, dst, now) {
			continue
		}
		if l.Drop > 0 && in.rng.Float64() < l.Drop {
			in.DroppedMsgs++
			return simnet.ChannelVerdict{Drop: true}
		}
		if l.Dup > 0 && !v.Dup && in.rng.Float64() < l.Dup {
			in.DupedMsgs++
			v.Dup = true
		}
		if l.DelayProb > 0 && in.rng.Float64() < l.DelayProb {
			in.DelayedMsgs++
			v.Delay += l.delay(in.rng)
		}
	}
	return v
}

// RDMA implements simnet.FaultModel for one-sided operations. The
// reliable-connection transport retries loss in hardware, so a lossy
// link turns into failure only when the drop survives the whole retry
// budget — modeled as drop^3 — while partitions always fail.
func (in *Injector) RDMA(from, target int) simnet.RDMAVerdict {
	if in.partitioned(from, target) {
		in.FailedRDMA++
		return simnet.RDMAVerdict{Fail: true}
	}
	var v simnet.RDMAVerdict
	now := in.eng.Now()
	for _, l := range in.plan.Links {
		if !l.matches(from, target, now) {
			continue
		}
		if l.Drop > 0 {
			p := l.Drop * l.Drop * l.Drop
			if in.rng.Float64() < p {
				in.FailedRDMA++
				return simnet.RDMAVerdict{Fail: true}
			}
			// Surviving loss still costs hardware retries' latency.
			if in.rng.Float64() < l.Drop {
				v.Delay += 2 * sim.Millisecond
			}
		}
		if l.DelayProb > 0 && in.rng.Float64() < l.DelayProb {
			v.Delay += l.delay(in.rng)
		}
	}
	return v
}

// Dial implements simnet.DialFaulter. A partition refuses dials (the
// CM request never gets through); dial storms refuse or delay them
// probabilistically. Plans without DialStorms draw no randomness
// here, so historical runs replay bit-identically.
func (in *Injector) Dial(from, target int) simnet.DialVerdict {
	if in.partitioned(from, target) {
		in.RefusedDials++
		return simnet.DialVerdict{Refuse: true}
	}
	var v simnet.DialVerdict
	now := in.eng.Now()
	for _, s := range in.plan.DialStorms {
		if !s.matches(target, now) {
			continue
		}
		if s.Refuse > 0 && in.rng.Float64() < s.Refuse {
			in.RefusedDials++
			return simnet.DialVerdict{Refuse: true}
		}
		if s.DelayProb > 0 && in.rng.Float64() < s.DelayProb {
			if s.DelayMax > s.DelayMin {
				v.Delay += s.DelayMin + sim.Time(in.rng.Int63n(int64(s.DelayMax-s.DelayMin)))
			} else {
				v.Delay += s.DelayMin
			}
		}
	}
	return v
}

func (l LinkFault) delay(rng *rand.Rand) sim.Time {
	if l.DelayMax <= l.DelayMin {
		return l.DelayMin
	}
	return l.DelayMin + sim.Time(rng.Int63n(int64(l.DelayMax-l.DelayMin)))
}
