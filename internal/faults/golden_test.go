package faults

import (
	"fmt"
	"hash/fnv"
	"testing"

	"rdmamon/internal/sim"
)

func digestPlan(p Plan) uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%+v", p)
	return h.Sum64()
}

// TestRandomPlanGoldenDigests pins RandomPlan's RNG stream discipline:
// every draw added since these digests were captured is gated behind a
// config field that defaults to off and happens strictly after all
// pre-existing draws, so the (seed, cfg) pairs used by PR 2-7's chaos
// and HA experiments still produce bit-identical plans. The digests
// were captured from the unmodified generator immediately before the
// claim-stall draws were added; if this test fails, a new draw leaked
// into the historical stream (reordered, or not gated off by default)
// and every published replay fingerprint is silently invalidated.
func TestRandomPlanGoldenDigests(t *testing.T) {
	configs := []struct {
		name   string
		cfg    ChaosConfig
		golden uint64
	}{
		{"chaos-20s", ChaosConfig{Backends: 8, Horizon: 20 * sim.Second}, 0xe3ad132f03b63b2e},
		{"chaos-8s", ChaosConfig{Backends: 8, Horizon: 8 * sim.Second}, 0x712ede903dc49962},
		{"chaos-10s", ChaosConfig{Backends: 8, Horizon: 10 * sim.Second}, 0x2d48bf55a9b44022},
		{"ha-20s", ChaosConfig{Backends: 8, Horizon: 20 * sim.Second, FrontEnds: []int{0, 9, 10}, Witness: 11}, 0x2fcd939ecfae7551},
		{"ha-10s", ChaosConfig{Backends: 8, Horizon: 10 * sim.Second, FrontEnds: []int{0, 9, 10}, Witness: 11}, 0x3c9bb9c4dd519284},
	}
	for _, c := range configs {
		h := fnv.New64a()
		for seed := int64(0); seed < 50; seed++ {
			fmt.Fprintf(h, "%d:%d;", seed, digestPlan(RandomPlan(seed, c.cfg)))
		}
		if got := h.Sum64(); got != c.golden {
			t.Errorf("%s: plan digest 0x%016x, want golden 0x%016x — historical plans changed", c.name, got, c.golden)
		}
	}
}

// TestRandomPlanClaimStalls checks the new draws themselves: with
// ClaimStalls set the plan gains alternating front-end freezes and
// front-end/witness partitions on top of (never instead of) the lease
// fault windows, all inside the horizon's settle window.
func TestRandomPlanClaimStalls(t *testing.T) {
	base := ChaosConfig{Backends: 8, Horizon: 20 * sim.Second, FrontEnds: []int{0, 9, 10}, Witness: 11}
	withStalls := base
	withStalls.ClaimStalls = 4
	for seed := int64(0); seed < 20; seed++ {
		p0 := RandomPlan(seed, base)
		p1 := RandomPlan(seed, withStalls)
		if got, want := len(p1.Freezes), len(p0.Freezes)+2; got != want {
			t.Fatalf("seed %d: freezes = %d, want %d", seed, got, want)
		}
		if got, want := len(p1.Partitions), len(p0.Partitions)+2; got != want {
			t.Fatalf("seed %d: partitions = %d, want %d", seed, got, want)
		}
		// The pre-existing windows are untouched: append-only means the
		// shared prefix of the two plans is identical.
		for i, f := range p0.Freezes {
			if p1.Freezes[i] != f {
				t.Fatalf("seed %d: pre-existing freeze %d changed", seed, i)
			}
		}
		for i, pt := range p0.Partitions {
			if p1.Partitions[i].Start != pt.Start || p1.Partitions[i].End != pt.End {
				t.Fatalf("seed %d: pre-existing partition %d changed", seed, i)
			}
		}
		fes := map[int]bool{0: true, 9: true, 10: true}
		for _, f := range p1.Freezes[len(p0.Freezes):] {
			if !fes[f.Node] {
				t.Fatalf("seed %d: claim-stall freeze on non-front-end %d", seed, f.Node)
			}
			if f.Until > sim.Time(0.85*float64(base.Horizon)) {
				t.Fatalf("seed %d: claim-stall freeze runs past the settle window", seed)
			}
		}
		for _, pt := range p1.Partitions[len(p0.Partitions):] {
			if len(pt.A) != 1 || !fes[pt.A[0]] || len(pt.B) != 1 || pt.B[0] != 11 {
				t.Fatalf("seed %d: claim-stall partition %v not fe<->witness", seed, pt)
			}
			if pt.End > sim.Time(0.85*float64(base.Horizon)) {
				t.Fatalf("seed %d: claim-stall partition past the settle window", seed)
			}
		}
	}
}
