package faults

import (
	"reflect"
	"testing"

	"rdmamon/internal/sim"
)

// TestRandomPlanDeterministic: same (seed, cfg) must yield a deeply
// identical plan — the chaos harness's bit-identical replay property
// starts at plan generation — and different seeds must actually explore
// different plans.
func TestRandomPlanDeterministic(t *testing.T) {
	cfg := ChaosConfig{Backends: 8, Horizon: 20 * sim.Second}
	a := RandomPlan(42, cfg)
	b := RandomPlan(42, cfg)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed diverged:\n%+v\nvs\n%+v", a, b)
	}
	if reflect.DeepEqual(a, RandomPlan(43, cfg)) {
		t.Fatal("seeds 42 and 43 produced identical plans")
	}
}

// TestRandomPlanBounds fuzzes the generator across many seeds and
// checks every structural promise RandomPlan documents: counts, window
// placement inside the settle deadline, distinct crash victims, MR
// invalidations disjoint from crashed nodes, forward-only duplicate-free
// link faults.
func TestRandomPlanBounds(t *testing.T) {
	cfg := ChaosConfig{Backends: 8, Horizon: 20 * sim.Second}
	h := cfg.Horizon
	for seed := int64(0); seed < 200; seed++ {
		p := RandomPlan(seed, cfg)
		if len(p.Crashes) != 2 || len(p.Links) != 2 || len(p.Partitions) != 1 || len(p.MRInvalidations) != 2 {
			t.Fatalf("seed %d: plan counts %d/%d/%d/%d, want defaults 2/2/1/2",
				seed, len(p.Crashes), len(p.Links), len(p.Partitions), len(p.MRInvalidations))
		}

		crashed := make(map[int]bool)
		for _, cr := range p.Crashes {
			if cr.Node < 1 || cr.Node > cfg.Backends {
				t.Fatalf("seed %d: crash node %d out of range", seed, cr.Node)
			}
			if crashed[cr.Node] {
				t.Fatalf("seed %d: node %d crashes twice", seed, cr.Node)
			}
			crashed[cr.Node] = true
			if cr.RestartAt <= cr.At {
				t.Fatalf("seed %d: restart %v not after crash %v", seed, cr.RestartAt, cr.At)
			}
			if cr.RestartAt > sim.Time(0.65*float64(h)) {
				t.Fatalf("seed %d: restart %v past the settle deadline", seed, cr.RestartAt)
			}
		}

		for _, lf := range p.Links {
			if lf.From != 0 {
				t.Fatalf("seed %d: link fault from node %d, want front-end only", seed, lf.From)
			}
			if lf.To < 1 || lf.To > cfg.Backends {
				t.Fatalf("seed %d: link fault to node %d out of range", seed, lf.To)
			}
			if lf.Dup != 0 {
				t.Fatalf("seed %d: link fault duplicates (%v) — reordering would fake seq regressions", seed, lf.Dup)
			}
			if lf.End <= lf.Start || lf.End > sim.Time(0.75*float64(h)) {
				t.Fatalf("seed %d: link window [%v, %v] malformed or past 0.75H", seed, lf.Start, lf.End)
			}
			if lf.Drop < 0.20 || lf.Drop > 0.50 {
				t.Fatalf("seed %d: drop rate %v outside [0.20, 0.50]", seed, lf.Drop)
			}
			if lf.DelayMax < lf.DelayMin {
				t.Fatalf("seed %d: delay range [%v, %v] inverted", seed, lf.DelayMin, lf.DelayMax)
			}
		}

		for _, pa := range p.Partitions {
			if len(pa.A) != 1 || pa.A[0] != 0 {
				t.Fatalf("seed %d: partition side A = %v, want front-end only", seed, pa.A)
			}
			if len(pa.B) == 0 || len(pa.B) > max(1, cfg.Backends/4) {
				t.Fatalf("seed %d: partition side B size %d", seed, len(pa.B))
			}
			if pa.End <= pa.Start || pa.End > sim.Time(0.70*float64(h)) {
				t.Fatalf("seed %d: partition window [%v, %v] malformed or past 0.70H", seed, pa.Start, pa.End)
			}
		}

		for _, mi := range p.MRInvalidations {
			if mi.Node < 1 || mi.Node > cfg.Backends {
				t.Fatalf("seed %d: MR invalidation on node %d out of range", seed, mi.Node)
			}
			if crashed[mi.Node] {
				t.Fatalf("seed %d: MR invalidation on crashing node %d", seed, mi.Node)
			}
			if mi.At > sim.Time(0.50*float64(h)) {
				t.Fatalf("seed %d: MR invalidation at %v past 0.50H", seed, mi.At)
			}
		}
	}
}

// TestRandomPlanCrashesCapped: asking for more crashes than back-ends
// must clamp, not panic or repeat victims.
func TestRandomPlanCrashesCapped(t *testing.T) {
	p := RandomPlan(7, ChaosConfig{Backends: 3, Horizon: 10 * sim.Second, Crashes: 10})
	if len(p.Crashes) != 3 {
		t.Fatalf("crashes = %d, want capped at 3 back-ends", len(p.Crashes))
	}
	seen := make(map[int]bool)
	for _, cr := range p.Crashes {
		if seen[cr.Node] {
			t.Fatalf("node %d crashes twice", cr.Node)
		}
		seen[cr.Node] = true
	}
}
