package faults

import (
	"reflect"
	"testing"

	"rdmamon/internal/sim"
)

// TestRandomPlanDeterministic: same (seed, cfg) must yield a deeply
// identical plan — the chaos harness's bit-identical replay property
// starts at plan generation — and different seeds must actually explore
// different plans.
func TestRandomPlanDeterministic(t *testing.T) {
	cfg := ChaosConfig{Backends: 8, Horizon: 20 * sim.Second}
	a := RandomPlan(42, cfg)
	b := RandomPlan(42, cfg)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed diverged:\n%+v\nvs\n%+v", a, b)
	}
	if reflect.DeepEqual(a, RandomPlan(43, cfg)) {
		t.Fatal("seeds 42 and 43 produced identical plans")
	}
}

// TestRandomPlanBounds fuzzes the generator across many seeds and
// checks every structural promise RandomPlan documents: counts, window
// placement inside the settle deadline, distinct crash victims, MR
// invalidations disjoint from crashed nodes, forward-only duplicate-free
// link faults.
func TestRandomPlanBounds(t *testing.T) {
	cfg := ChaosConfig{Backends: 8, Horizon: 20 * sim.Second}
	h := cfg.Horizon
	for seed := int64(0); seed < 200; seed++ {
		p := RandomPlan(seed, cfg)
		if len(p.Crashes) != 2 || len(p.Links) != 2 || len(p.Partitions) != 1 || len(p.MRInvalidations) != 2 {
			t.Fatalf("seed %d: plan counts %d/%d/%d/%d, want defaults 2/2/1/2",
				seed, len(p.Crashes), len(p.Links), len(p.Partitions), len(p.MRInvalidations))
		}

		crashed := make(map[int]bool)
		for _, cr := range p.Crashes {
			if cr.Node < 1 || cr.Node > cfg.Backends {
				t.Fatalf("seed %d: crash node %d out of range", seed, cr.Node)
			}
			if crashed[cr.Node] {
				t.Fatalf("seed %d: node %d crashes twice", seed, cr.Node)
			}
			crashed[cr.Node] = true
			if cr.RestartAt <= cr.At {
				t.Fatalf("seed %d: restart %v not after crash %v", seed, cr.RestartAt, cr.At)
			}
			if cr.RestartAt > sim.Time(0.65*float64(h)) {
				t.Fatalf("seed %d: restart %v past the settle deadline", seed, cr.RestartAt)
			}
		}

		for _, lf := range p.Links {
			if lf.From != 0 {
				t.Fatalf("seed %d: link fault from node %d, want front-end only", seed, lf.From)
			}
			if lf.To < 1 || lf.To > cfg.Backends {
				t.Fatalf("seed %d: link fault to node %d out of range", seed, lf.To)
			}
			if lf.Dup != 0 {
				t.Fatalf("seed %d: link fault duplicates (%v) — reordering would fake seq regressions", seed, lf.Dup)
			}
			if lf.End <= lf.Start || lf.End > sim.Time(0.75*float64(h)) {
				t.Fatalf("seed %d: link window [%v, %v] malformed or past 0.75H", seed, lf.Start, lf.End)
			}
			if lf.Drop < 0.20 || lf.Drop > 0.50 {
				t.Fatalf("seed %d: drop rate %v outside [0.20, 0.50]", seed, lf.Drop)
			}
			if lf.DelayMax < lf.DelayMin {
				t.Fatalf("seed %d: delay range [%v, %v] inverted", seed, lf.DelayMin, lf.DelayMax)
			}
		}

		for _, pa := range p.Partitions {
			if len(pa.A) != 1 || pa.A[0] != 0 {
				t.Fatalf("seed %d: partition side A = %v, want front-end only", seed, pa.A)
			}
			if len(pa.B) == 0 || len(pa.B) > max(1, cfg.Backends/4) {
				t.Fatalf("seed %d: partition side B size %d", seed, len(pa.B))
			}
			if pa.End <= pa.Start || pa.End > sim.Time(0.70*float64(h)) {
				t.Fatalf("seed %d: partition window [%v, %v] malformed or past 0.70H", seed, pa.Start, pa.End)
			}
		}

		for _, mi := range p.MRInvalidations {
			if mi.Node < 1 || mi.Node > cfg.Backends {
				t.Fatalf("seed %d: MR invalidation on node %d out of range", seed, mi.Node)
			}
			if crashed[mi.Node] {
				t.Fatalf("seed %d: MR invalidation on crashing node %d", seed, mi.Node)
			}
			if mi.At > sim.Time(0.50*float64(h)) {
				t.Fatalf("seed %d: MR invalidation at %v past 0.50H", seed, mi.At)
			}
		}
	}
}

// TestRandomPlanFrontEndFaults checks the HA extension: enabling
// front-end faults leaves the back-end portion of the plan bit-identical
// (the FE draws happen strictly after every pre-existing draw), and the
// appended faults hit distinct replicas in staggered windows so a
// standby always survives to take the lease.
func TestRandomPlanFrontEndFaults(t *testing.T) {
	base := ChaosConfig{Backends: 8, Horizon: 20 * sim.Second}
	ha := base
	ha.FrontEnds = []int{0, 9, 10}
	ha.Witness = 11
	h := ha.Horizon

	for seed := int64(0); seed < 200; seed++ {
		old := RandomPlan(seed, base)
		p := RandomPlan(seed, ha)

		// Back-end faults must be untouched — historical plans replay
		// bit-identically under the extended config schema.
		if !reflect.DeepEqual(old.Crashes, p.Crashes[:len(old.Crashes)]) ||
			!reflect.DeepEqual(old.Links, p.Links) ||
			!reflect.DeepEqual(old.Partitions, p.Partitions[:len(old.Partitions)]) ||
			!reflect.DeepEqual(old.MRInvalidations, p.MRInvalidations) {
			t.Fatalf("seed %d: enabling front-end faults perturbed the back-end plan", seed)
		}
		if len(old.Freezes) != 0 {
			t.Fatalf("seed %d: non-HA plan has freezes", seed)
		}

		feCrashes := p.Crashes[len(old.Crashes):]
		fePartitions := p.Partitions[len(old.Partitions):]
		if len(feCrashes) != 1 || len(p.Freezes) != 1 || len(fePartitions) != 1 {
			t.Fatalf("seed %d: FE fault counts %d/%d/%d, want defaults 1/1/1",
				seed, len(feCrashes), len(p.Freezes), len(fePartitions))
		}

		isFE := func(n int) bool { return n == 0 || n == 9 || n == 10 }
		victims := make(map[int]bool)
		for _, cr := range feCrashes {
			if !isFE(cr.Node) {
				t.Fatalf("seed %d: FE crash on non-replica node %d", seed, cr.Node)
			}
			victims[cr.Node] = true
			if cr.At < sim.Time(0.10*float64(h)) || cr.RestartAt > sim.Time(0.46*float64(h)) {
				t.Fatalf("seed %d: FE crash window [%v, %v] outside its phase", seed, cr.At, cr.RestartAt)
			}
		}
		for _, fz := range p.Freezes {
			if !isFE(fz.Node) || victims[fz.Node] {
				t.Fatalf("seed %d: FE freeze victim %d invalid or repeated", seed, fz.Node)
			}
			victims[fz.Node] = true
			if fz.At < sim.Time(0.36*float64(h)) || fz.Until > sim.Time(0.62*float64(h)) {
				t.Fatalf("seed %d: FE freeze window [%v, %v] outside its phase", seed, fz.At, fz.Until)
			}
		}
		for _, pa := range fePartitions {
			if len(pa.A) != 1 || !isFE(pa.A[0]) || victims[pa.A[0]] {
				t.Fatalf("seed %d: FE partition side A %v invalid or repeated victim", seed, pa.A)
			}
			if len(pa.B) != 1 || pa.B[0] != 11 {
				t.Fatalf("seed %d: FE partition side B %v, want witness only", seed, pa.B)
			}
			if pa.Start < sim.Time(0.56*float64(h)) || pa.End > sim.Time(0.80*float64(h)) {
				t.Fatalf("seed %d: FE partition window [%v, %v] outside its phase", seed, pa.Start, pa.End)
			}
		}
	}
}

// TestRandomPlanCrashesCapped: asking for more crashes than back-ends
// must clamp, not panic or repeat victims.
func TestRandomPlanCrashesCapped(t *testing.T) {
	p := RandomPlan(7, ChaosConfig{Backends: 3, Horizon: 10 * sim.Second, Crashes: 10})
	if len(p.Crashes) != 3 {
		t.Fatalf("crashes = %d, want capped at 3 back-ends", len(p.Crashes))
	}
	seen := make(map[int]bool)
	for _, cr := range p.Crashes {
		if seen[cr.Node] {
			t.Fatalf("node %d crashes twice", cr.Node)
		}
		seen[cr.Node] = true
	}
}
