package faults

import (
	"testing"

	"rdmamon/internal/sim"
	"rdmamon/internal/simnet"
	"rdmamon/internal/simos"
)

func testNode(eng *sim.Engine, id int) *simos.Node {
	return simos.NewNode(eng, id, simos.NodeDefaults())
}

// TestCrashRestartSchedule checks that Crash/Restart fire at the
// planned times and invoke the hooks in order.
func TestCrashRestartSchedule(t *testing.T) {
	eng := sim.NewEngine(1)
	n := testNode(eng, 1)
	plan := Plan{
		Seed:    7,
		Crashes: []Crash{{Node: 1, At: 100 * sim.Millisecond, RestartAt: 300 * sim.Millisecond}},
	}
	fab := simnet.NewFabric(eng, simnet.Defaults())
	fab.Attach(n)
	in := NewInjector(eng, plan)
	var events []string
	in.OnCrash = func(node int) {
		if !n.Down() {
			t.Error("OnCrash ran before node went down")
		}
		events = append(events, "crash")
	}
	in.OnRestart = func(node int) {
		if n.Down() {
			t.Error("OnRestart ran before node came back")
		}
		events = append(events, "restart")
	}
	in.Install(fab, map[int]*simos.Node{1: n})

	eng.RunFor(200 * sim.Millisecond)
	if !n.Down() {
		t.Fatal("node should be down at t=200ms")
	}
	eng.RunFor(200 * sim.Millisecond)
	if n.Down() {
		t.Fatal("node should be restarted at t=400ms")
	}
	if len(events) != 2 || events[0] != "crash" || events[1] != "restart" {
		t.Fatalf("events = %v", events)
	}
	if in.CrashEvents != 1 {
		t.Fatalf("CrashEvents = %d", in.CrashEvents)
	}
}

// TestFreezeWindow checks Freeze/Thaw scheduling.
func TestFreezeWindow(t *testing.T) {
	eng := sim.NewEngine(1)
	n := testNode(eng, 2)
	fab := simnet.NewFabric(eng, simnet.Defaults())
	fab.Attach(n)
	in := NewInjector(eng, Plan{
		Freezes: []Freeze{{Node: 2, At: 50 * sim.Millisecond, Until: 150 * sim.Millisecond}},
	})
	in.Install(fab, map[int]*simos.Node{2: n})

	eng.RunFor(100 * sim.Millisecond)
	if !n.Frozen() {
		t.Fatal("node should be frozen at t=100ms")
	}
	eng.RunFor(100 * sim.Millisecond)
	if n.Frozen() {
		t.Fatal("node should be thawed at t=200ms")
	}
}

// TestPartitionSeversBothDirections verifies the partition check.
func TestPartitionSeversBothDirections(t *testing.T) {
	eng := sim.NewEngine(1)
	in := NewInjector(eng, Plan{
		Partitions: []Partition{{Start: 0, End: 0, A: []int{1, 2}, B: []int{3}}},
	})
	if v := in.Channel(1, 3, 64); !v.Drop {
		t.Error("1->3 should be severed")
	}
	if v := in.Channel(3, 2, 64); !v.Drop {
		t.Error("3->2 should be severed")
	}
	if v := in.Channel(1, 2, 64); v.Drop {
		t.Error("1->2 is inside group A, must pass")
	}
	if v := in.RDMA(1, 3); !v.Fail {
		t.Error("RDMA 1->3 should fail under partition")
	}
	if v := in.RDMA(2, 1); v.Fail {
		t.Error("RDMA 2->1 inside group A must pass")
	}
}

// TestLinkDropDeterminism: same seed -> same verdict sequence; drop
// rate roughly honors the configured probability.
func TestLinkDropDeterminism(t *testing.T) {
	mk := func() []bool {
		eng := sim.NewEngine(1)
		in := NewInjector(eng, Plan{
			Seed:  42,
			Links: []LinkFault{{From: Any, To: Any, Drop: 0.3}},
		})
		out := make([]bool, 1000)
		for i := range out {
			out[i] = in.Channel(1, 2, 64).Drop
		}
		return out
	}
	a, b := mk(), mk()
	drops := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("verdict %d diverged across identical seeds", i)
		}
		if a[i] {
			drops++
		}
	}
	if drops < 200 || drops > 400 {
		t.Fatalf("drop rate %d/1000, want ~300", drops)
	}
}

// TestLinkWindow: faults only apply inside [Start, End).
func TestLinkWindow(t *testing.T) {
	eng := sim.NewEngine(1)
	in := NewInjector(eng, Plan{
		Links: []LinkFault{{
			From: Any, To: Any, Drop: 1.0,
			Start: 10 * sim.Millisecond, End: 20 * sim.Millisecond,
		}},
	})
	if in.Channel(1, 2, 64).Drop {
		t.Error("fault active before window start")
	}
	eng.RunFor(15 * sim.Millisecond)
	if !in.Channel(1, 2, 64).Drop {
		t.Error("fault inactive inside window")
	}
	eng.RunFor(10 * sim.Millisecond)
	if in.Channel(1, 2, 64).Drop {
		t.Error("fault active after window end")
	}
}
