package workload

import (
	"math/rand"

	"rdmamon/internal/httpsim"
	"rdmamon/internal/metrics"
	"rdmamon/internal/sim"
	"rdmamon/internal/simnet"
	"rdmamon/internal/simos"
)

// Generator produces the next request for a client. Implemented by
// the RUBiS mix and the Zipf trace.
type Generator func(rng *rand.Rand, id uint64, client int, now sim.Time) httpsim.Request

// MixGenerator adapts a query Mix with heavy-tailed per-request
// demands (see CostSigma).
func MixGenerator(m *Mix) Generator {
	return func(rng *rand.Rand, id uint64, client int, now sim.Time) httpsim.Request {
		return m.Pick(rng).RequestVar(rng, id, client, now)
	}
}

// ZipfGenerator adapts a ZipfTrace.
func ZipfGenerator(z *ZipfTrace) Generator {
	return func(rng *rand.Rand, id uint64, client int, now sim.Time) httpsim.Request {
		return z.Request(rng, id, client, now)
	}
}

// ClientPoolConfig configures a closed-loop client population (the
// paper drives RUBiS with 8 client nodes x 8 emulator threads).
type ClientPoolConfig struct {
	Clients   int
	ThinkMean sim.Time // exponential think time between a reply and the next request
	FrontEnd  int      // dispatcher node ID
	Port      string   // dispatch port (default httpsim.DispatchPort)
	ExtBase   int      // first external ID (successive clients count down)
	Gen       Generator
	Seed      int64

	// FrontEnds, if non-empty, lists every front-end replica the
	// clients know about (think: DNS round-robin over the VIPs). Each
	// request goes to the next replica not currently shunned; a
	// NotPrimary reply or a request timeout shuns that one replica for
	// a cooldown rather than advancing a pool-wide cursor — N clients
	// hitting one dead replica at once must not rotate the cursor N
	// steps (which, modulo the replica count, can land every retry
	// right back on the dead one). FrontEnd is ignored when set.
	FrontEnds []int
	// Timeout overrides RequestTimeout. Pools pointed at a replicated
	// front-end use a shorter patience so a dead primary is abandoned
	// on the client side quickly.
	Timeout sim.Time
}

// ClientPool is a closed-loop population of emulated clients living
// outside the simulated cluster. Each client has one outstanding
// request; response time is measured end to end at the client.
type ClientPool struct {
	Cfg ClientPoolConfig

	fab *simnet.Fabric
	rng *rand.Rand

	// All accumulates every response time in milliseconds; PerClass
	// and PerBackend break it down.
	All        metrics.Sample
	PerClass   map[string]*metrics.Sample
	PerBackend map[int]*metrics.Sample

	// Timeouts counts requests abandoned after RequestTimeout (the
	// user gave up; the client moves on). Abandoned requests do not
	// enter the response-time samples.
	Timeouts uint64

	// Rejected counts requests turned away by admission control; they
	// do not enter the response-time samples either.
	Rejected uint64

	// NotPrimary counts replies refused by a fenced (non-primary)
	// dispatcher; Retargets counts replicas shunned after a NotPrimary
	// or a timeout (each shun steers the affected client — and soon the
	// whole pool — to other front-ends).
	NotPrimary uint64
	Retargets  uint64

	Completed uint64
	nextID    uint64
	front     int        // round-robin cursor into Cfg.FrontEnds
	feDown    []sim.Time // per-replica: shunned until this instant
	stopped   bool
	paused    bool
	startedAt sim.Time
	inflight  map[int]*inflightReq // by client ext ID
}

type inflightReq struct {
	id      uint64
	req     httpsim.Request
	fe      int // index into Cfg.FrontEnds this attempt targeted (-1: fixed FrontEnd)
	timeout *sim.Event
}

// RequestTimeout is how long a client waits before abandoning a
// request and issuing its next one.
const RequestTimeout = 10 * sim.Second

// notPrimaryBackoff is how long a client waits before retrying a
// request refused by a fenced dispatcher: during a takeover window no
// replica holds the lease, and hammering the fleet at wire rate would
// only add noise to the handoff.
const notPrimaryBackoff = 25 * sim.Millisecond

// frontEndCooldown is how long a replica that refused or ignored a
// request is shunned before clients try it again.
const frontEndCooldown = 500 * sim.Millisecond

// StartClients launches the pool on fab. Clients begin issuing
// immediately, desynchronized by one think time.
func StartClients(fab *simnet.Fabric, cfg ClientPoolConfig) *ClientPool {
	if cfg.Clients <= 0 {
		cfg.Clients = 1
	}
	if cfg.ThinkMean <= 0 {
		cfg.ThinkMean = 200 * sim.Millisecond
	}
	if cfg.ExtBase > simnet.ExternalBase {
		cfg.ExtBase = simnet.ExternalBase
	}
	if cfg.Port == "" {
		cfg.Port = httpsim.DispatchPort
	}
	p := &ClientPool{
		Cfg:        cfg,
		fab:        fab,
		rng:        rand.New(rand.NewSource(cfg.Seed)),
		PerClass:   make(map[string]*metrics.Sample),
		PerBackend: make(map[int]*metrics.Sample),
		startedAt:  fab.Eng.Now(),
		inflight:   make(map[int]*inflightReq),
		feDown:     make([]sim.Time, len(cfg.FrontEnds)),
	}
	for c := 0; c < cfg.Clients; c++ {
		ext := cfg.ExtBase - c
		fab.RegisterExternal(ext, func(m simos.Message) { p.onReply(ext, m) })
		// First request after one think time: staggers arrivals.
		p.scheduleNext(ext)
	}
	return p
}

func (p *ClientPool) think() sim.Time {
	d := p.rng.ExpFloat64() * float64(p.Cfg.ThinkMean)
	if d < float64(sim.Millisecond) {
		d = float64(sim.Millisecond)
	}
	return sim.Time(d)
}

func (p *ClientPool) scheduleNext(ext int) {
	p.fab.Eng.After(p.think(), func() {
		if p.stopped {
			return
		}
		if p.paused {
			// Client waits out the pause, checking back periodically.
			p.fab.Eng.After(200*sim.Millisecond, func() { p.scheduleNext(ext) })
			return
		}
		p.nextID++
		id := p.nextID
		req := p.Cfg.Gen(p.rng, id, ext, p.fab.Eng.Now())
		fl := &inflightReq{id: id, req: req, fe: p.pickFront()}
		fl.timeout = p.fab.Eng.After(p.patience(), func() {
			if p.stopped || p.inflight[ext] != fl {
				return
			}
			delete(p.inflight, ext)
			p.Timeouts++
			// A silent front-end may be dead: shun it and move on.
			p.shun(fl.fe)
			p.scheduleNext(ext)
		})
		p.inflight[ext] = fl
		p.fab.Inject(ext, p.target(fl.fe), p.Cfg.Port, req.Size, req)
	})
}

func (p *ClientPool) patience() sim.Time {
	if p.Cfg.Timeout > 0 {
		return p.Cfg.Timeout
	}
	return RequestTimeout
}

// pickFront advances the round-robin cursor to the next replica not
// currently shunned and returns its index (-1 when the pool targets a
// single fixed FrontEnd). With every replica shunned it degrades to
// plain round-robin — somebody may have recovered.
func (p *ClientPool) pickFront() int {
	n := len(p.Cfg.FrontEnds)
	if n == 0 {
		return -1
	}
	now := p.fab.Eng.Now()
	for i := 0; i < n; i++ {
		idx := p.front % n
		p.front++
		if p.feDown[idx] <= now {
			return idx
		}
	}
	idx := p.front % n
	p.front++
	return idx
}

// target maps a pickFront index to a node ID.
func (p *ClientPool) target(fe int) int {
	if fe < 0 {
		return p.Cfg.FrontEnd
	}
	return p.Cfg.FrontEnds[fe]
}

// shun takes one replica out of the rotation for frontEndCooldown.
func (p *ClientPool) shun(fe int) {
	if fe < 0 || len(p.Cfg.FrontEnds) < 2 {
		return
	}
	p.feDown[fe] = p.fab.Eng.Now() + frontEndCooldown
	p.Retargets++
}

func (p *ClientPool) onReply(ext int, m simos.Message) {
	if p.stopped {
		return
	}
	rep, ok := m.Payload.(httpsim.Reply)
	if !ok {
		return
	}
	fl := p.inflight[ext]
	if fl == nil || fl.id != rep.ID {
		return // reply to an abandoned request
	}
	if rep.NotPrimary {
		// The dispatcher's fence refused us (no lease, or no claim on
		// the shard it picked). Shun that replica and retry the same
		// request against the next active one after a short backoff;
		// the original patience timer keeps the retries bounded.
		p.NotPrimary++
		p.shun(fl.fe)
		p.fab.Eng.After(notPrimaryBackoff, func() {
			if p.stopped || p.inflight[ext] != fl {
				return
			}
			fl.fe = p.pickFront()
			p.fab.Inject(ext, p.target(fl.fe), p.Cfg.Port, fl.req.Size, fl.req)
		})
		return
	}
	delete(p.inflight, ext)
	p.fab.Eng.Cancel(fl.timeout)
	if rep.Rejected {
		p.Rejected++
		p.scheduleNext(ext)
		return
	}
	rt := float64(p.fab.Eng.Now()-rep.Issued) / float64(sim.Millisecond)
	p.All.Add(rt)
	cs := p.PerClass[rep.Class]
	if cs == nil {
		cs = &metrics.Sample{}
		p.PerClass[rep.Class] = cs
	}
	cs.Add(rt)
	bs := p.PerBackend[rep.Backend]
	if bs == nil {
		bs = &metrics.Sample{}
		p.PerBackend[rep.Backend] = bs
	}
	bs.Add(rt)
	p.Completed++
	// Closed loop: reply releases this client for its next request.
	p.scheduleNext(ext)
}

// Stop freezes the pool: in-flight replies are ignored and no new
// requests are issued.
func (p *ClientPool) Stop() { p.stopped = true }

// Pause suspends request issue; clients stay alive and resume when
// Resume is called (used for phased workloads).
func (p *ClientPool) Pause() { p.paused = true }

// Resume lifts a Pause.
func (p *ClientPool) Resume() { p.paused = false }

// ResetStats clears accumulated samples and counters (e.g. after a
// warm-up period) without disturbing the closed loop.
func (p *ClientPool) ResetStats() {
	p.All = metrics.Sample{}
	p.PerClass = make(map[string]*metrics.Sample)
	p.PerBackend = make(map[int]*metrics.Sample)
	p.Completed = 0
	p.startedAt = p.fab.Eng.Now()
}

// Throughput returns completed requests per second since start.
func (p *ClientPool) Throughput() float64 {
	el := p.fab.Eng.Now() - p.startedAt
	if el <= 0 {
		return 0
	}
	return float64(p.Completed) / el.Seconds()
}
