package workload

import (
	"math/rand"

	"rdmamon/internal/httpsim"
	"rdmamon/internal/metrics"
	"rdmamon/internal/sim"
	"rdmamon/internal/simnet"
	"rdmamon/internal/simos"
)

// FlashCrowdConfig shapes an open-loop burst generator: every
// (exponentially distributed) interval, a crowd of MinSize..MaxSize
// requests arrives within SpanMS milliseconds. Auction sites see
// exactly this pattern around popular items closing; it is the regime
// where a dispatcher working from stale load information piles an
// entire burst onto whichever server *used to* look idle.
type FlashCrowdConfig struct {
	FrontEnd  int
	ExtID     int // external endpoint for replies
	Every     sim.Time
	MinSize   int
	MaxSize   int
	Span      sim.Time
	Gen       Generator
	Seed      int64
	ClassOnly string // if set, tag all requests with this class
}

// FlashCrowd injects synchronized request bursts and records their
// response times.
type FlashCrowd struct {
	Cfg FlashCrowdConfig

	All      metrics.Sample
	PerClass map[string]*metrics.Sample

	Completed uint64
	Issued    uint64
	RejectedN uint64

	fab     *simnet.Fabric
	rng     *rand.Rand
	stopped bool
}

// StartFlashCrowd launches the generator on fab.
func StartFlashCrowd(fab *simnet.Fabric, cfg FlashCrowdConfig) *FlashCrowd {
	if cfg.Every <= 0 {
		cfg.Every = 2 * sim.Second
	}
	if cfg.MinSize <= 0 {
		cfg.MinSize = 20
	}
	if cfg.MaxSize < cfg.MinSize {
		cfg.MaxSize = cfg.MinSize
	}
	if cfg.Span <= 0 {
		cfg.Span = 20 * sim.Millisecond
	}
	fc := &FlashCrowd{
		Cfg:      cfg,
		fab:      fab,
		rng:      rand.New(rand.NewSource(cfg.Seed)),
		PerClass: make(map[string]*metrics.Sample),
	}
	fab.RegisterExternal(cfg.ExtID, fc.onReply)
	fc.scheduleBurst()
	return fc
}

func (fc *FlashCrowd) scheduleBurst() {
	wait := sim.Time(fc.rng.ExpFloat64() * float64(fc.Cfg.Every))
	if wait < 100*sim.Millisecond {
		wait = 100 * sim.Millisecond
	}
	fc.fab.Eng.After(wait, func() {
		if fc.stopped {
			return
		}
		n := fc.Cfg.MinSize + fc.rng.Intn(fc.Cfg.MaxSize-fc.Cfg.MinSize+1)
		for i := 0; i < n; i++ {
			off := sim.Time(fc.rng.Int63n(int64(fc.Cfg.Span) + 1))
			fc.fab.Eng.After(off, fc.injectOne)
		}
		fc.scheduleBurst()
	})
}

func (fc *FlashCrowd) injectOne() {
	if fc.stopped {
		return
	}
	fc.Issued++
	req := fc.Cfg.Gen(fc.rng, fc.Issued, fc.Cfg.ExtID, fc.fab.Eng.Now())
	if fc.Cfg.ClassOnly != "" {
		req.Class = fc.Cfg.ClassOnly
	}
	fc.fab.Inject(fc.Cfg.ExtID, fc.Cfg.FrontEnd, httpsim.DispatchPort, req.Size, req)
}

func (fc *FlashCrowd) onReply(m simos.Message) {
	if fc.stopped {
		return
	}
	rep, ok := m.Payload.(httpsim.Reply)
	if !ok {
		return
	}
	if rep.Rejected {
		fc.RejectedN++
		return
	}
	rt := float64(fc.fab.Eng.Now()-rep.Issued) / float64(sim.Millisecond)
	fc.All.Add(rt)
	cs := fc.PerClass[rep.Class]
	if cs == nil {
		cs = &metrics.Sample{}
		fc.PerClass[rep.Class] = cs
	}
	cs.Add(rt)
	fc.Completed++
}

// Stop ends burst generation.
func (fc *FlashCrowd) Stop() { fc.stopped = true }

// ResetStats clears accumulated samples (e.g. after warm-up).
func (fc *FlashCrowd) ResetStats() {
	fc.All = metrics.Sample{}
	fc.PerClass = make(map[string]*metrics.Sample)
	fc.Completed = 0
	fc.Issued = 0
}
