package workload

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"rdmamon/internal/httpsim"
	"rdmamon/internal/sim"
	"rdmamon/internal/simnet"
	"rdmamon/internal/simos"
)

func TestRUBiSMixShape(t *testing.T) {
	classes := RUBiSMix()
	if len(classes) != 8 {
		t.Fatalf("RUBiS mix has %d classes, want 8 (Table 1)", len(classes))
	}
	names := map[string]bool{}
	var heaviest QueryClass
	for _, c := range classes {
		if c.CPU <= 0 || c.Weight <= 0 || c.Resp <= 0 {
			t.Fatalf("class %q has nonpositive fields", c.Name)
		}
		names[c.Name] = true
		if c.CPU > heaviest.CPU {
			heaviest = c
		}
	}
	for _, want := range []string{"Home", "Browse", "BrowseRegions", "BrowseCatgryReg",
		"SearchItemsReg", "PutBidAuth", "Sell", "AboutMe"} {
		if !names[want] {
			t.Fatalf("missing Table 1 query %q", want)
		}
	}
	// BrowseCatgryReg is the paper's slowest query (17ms avg).
	if heaviest.Name != "BrowseCatgryReg" {
		t.Fatalf("heaviest query = %q, want BrowseCatgryReg", heaviest.Name)
	}
	if len(QueryNames(classes)) != 8 {
		t.Fatal("QueryNames length mismatch")
	}
}

func TestMixSamplingMatchesWeights(t *testing.T) {
	classes := RUBiSMix()
	m := NewMix(classes)
	rng := rand.New(rand.NewSource(1))
	counts := map[string]int{}
	const n = 100000
	for i := 0; i < n; i++ {
		counts[m.Pick(rng).Name]++
	}
	total := 0
	for _, c := range classes {
		total += c.Weight
	}
	for _, c := range classes {
		want := float64(c.Weight) / float64(total)
		got := float64(counts[c.Name]) / n
		if math.Abs(got-want) > 0.01 {
			t.Errorf("%s frequency = %.3f, want %.3f", c.Name, got, want)
		}
	}
}

func TestMixZeroWeightPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero weight should panic")
		}
	}()
	NewMix([]QueryClass{{Name: "x", Weight: 0}})
}

func TestQueryRequestMaterialization(t *testing.T) {
	c := RUBiSMix()[0]
	req := c.Request(42, -3, 100*sim.Millisecond)
	if req.ID != 42 || req.Client != -3 || req.Class != c.Name {
		t.Fatalf("request = %+v", req)
	}
	if req.CPU != c.CPU || req.IOWait != c.IOWait {
		t.Fatal("service demands not propagated")
	}
	if req.Issued != 100*sim.Millisecond {
		t.Fatal("issue time not propagated")
	}
}

func TestZipfPopularitySkew(t *testing.T) {
	z := NewZipfTrace(1000, 0.9, 7)
	rng := rand.New(rand.NewSource(2))
	counts := make([]int, 1000)
	const n = 200000
	for i := 0; i < n; i++ {
		counts[z.SampleDoc(rng)]++
	}
	if counts[0] <= counts[99] {
		t.Fatal("rank 0 should be far more popular than rank 99")
	}
	// At alpha=0.9 the top-10 documents take a large share.
	top10 := 0
	for i := 0; i < 10; i++ {
		top10 += counts[i]
	}
	if float64(top10)/n < 0.2 {
		t.Fatalf("top-10 share = %.3f, want > 0.2 at alpha=0.9", float64(top10)/n)
	}
}

func TestZipfAlphaControlsLocality(t *testing.T) {
	sample := func(alpha float64) float64 {
		z := NewZipfTrace(1000, alpha, 7)
		rng := rand.New(rand.NewSource(3))
		top := 0
		const n = 50000
		for i := 0; i < n; i++ {
			if z.SampleDoc(rng) < 10 {
				top++
			}
		}
		return float64(top) / n
	}
	lo, hi := sample(0.25), sample(0.9)
	if hi <= lo {
		t.Fatalf("higher alpha should concentrate: a=0.25 top=%.3f a=0.9 top=%.3f", lo, hi)
	}
}

func TestZipfRequestCosts(t *testing.T) {
	z := NewZipfTrace(1000, 0.5, 7)
	rng := rand.New(rand.NewSource(4))
	sawIO, sawNoIO := false, false
	for i := 0; i < 2000; i++ {
		req := z.Request(rng, uint64(i), -1, 0)
		if req.CPU < z.CPUBase {
			t.Fatal("request CPU below base cost")
		}
		if req.Resp <= 0 {
			t.Fatal("nonpositive response size")
		}
		if req.IOWait > 0 {
			sawIO = true
		} else {
			sawNoIO = true
		}
	}
	if !sawIO || !sawNoIO {
		t.Fatal("workload should mix cached and uncached documents")
	}
}

func TestZipfDeterministicSizes(t *testing.T) {
	a := NewZipfTrace(100, 0.5, 9)
	b := NewZipfTrace(100, 0.5, 9)
	for i := 0; i < 100; i++ {
		if a.Size(i) != b.Size(i) {
			t.Fatal("sizes must be deterministic given seed")
		}
	}
}

// Property: SampleDoc is always in range for any alpha in (0,2].
func TestQuickZipfInRange(t *testing.T) {
	z := map[int]*ZipfTrace{}
	f := func(alphaRaw uint8, seed int64) bool {
		alpha := 0.1 + float64(alphaRaw%20)/10
		key := int(alpha * 10)
		tr := z[key]
		if tr == nil {
			tr = NewZipfTrace(500, alpha, 5)
			z[key] = tr
		}
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 50; i++ {
			d := tr.SampleDoc(rng)
			if d < 0 || d >= 500 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// --- client pool integration -------------------------------------------

func TestClientPoolClosedLoop(t *testing.T) {
	eng := sim.NewEngine(1)
	fab := simnet.NewFabric(eng, simnet.Defaults())
	front := simos.NewNode(eng, 0, simos.NodeDefaults())
	fnic := fab.Attach(front)
	// Trivial front-end echo "server": replies straight from node 0.
	p := front.Port(httpsim.DispatchPort)
	front.Spawn("echo-server", func(tk *simos.Task) {
		var serve func(m simos.Message)
		serve = func(m simos.Message) {
			req := m.Payload.(httpsim.Request)
			tk.Compute(req.CPU, func() {
				rep := httpsim.Reply{ID: req.ID, Class: req.Class, Issued: req.Issued, Backend: 0}
				fnic.Send(tk, req.Client, "", req.Resp, rep, func() {
					tk.Recv(p, serve)
				})
			})
		}
		tk.Recv(p, serve)
	})
	mix := NewMix(RUBiSMix())
	pool := StartClients(fab, ClientPoolConfig{
		Clients:   4,
		ThinkMean: 20 * sim.Millisecond,
		FrontEnd:  0,
		ExtBase:   -1,
		Gen:       MixGenerator(mix),
		Seed:      11,
	})
	eng.RunUntil(2 * sim.Second)
	if pool.Completed < 50 {
		t.Fatalf("completed = %d, want a steady closed loop", pool.Completed)
	}
	if pool.All.Count() != int(pool.Completed) {
		t.Fatal("sample count mismatch")
	}
	if len(pool.PerClass) < 4 {
		t.Fatalf("only %d classes seen", len(pool.PerClass))
	}
	if pool.Throughput() <= 0 {
		t.Fatal("throughput should be positive")
	}
	// Response times must include service: mean above 1ms, far below think.
	if pool.All.Mean() < 1 || pool.All.Mean() > 20 {
		t.Fatalf("mean response = %.2fms, implausible", pool.All.Mean())
	}
	done := pool.Completed
	pool.Stop()
	eng.RunUntil(4 * sim.Second)
	if pool.Completed > done {
		t.Fatal("pool kept issuing after Stop")
	}
}

func TestBackgroundLoadRaisesUtilization(t *testing.T) {
	eng := sim.NewEngine(2)
	fab := simnet.NewFabric(eng, simnet.Defaults())
	a := simos.NewNode(eng, 1, simos.NodeDefaults())
	b := simos.NewNode(eng, 2, simos.NodeDefaults())
	an, bn := fab.Attach(a), fab.Attach(b)
	StartEchoServers(a, an, 2)
	StartEchoServers(b, bn, 2)
	cfg := BackgroundDefaults()
	cfg.Threads = 8
	cfg.Peer = 2
	StartBackground(a, an, cfg)
	eng.RunUntil(2 * sim.Second)
	s := a.K.Snapshot()
	if s.UtilMean() < 800 {
		t.Fatalf("util = %d with 8 bg threads, want >800", s.UtilMean())
	}
	// Communication must actually flow.
	if a.K.NetTxBytes == 0 || b.K.NetRxBytes == 0 {
		t.Fatal("background threads should generate traffic")
	}
}

func TestFPAppMeasuresInterference(t *testing.T) {
	eng := sim.NewEngine(3)
	node := simos.NewNode(eng, 1, simos.NodeDefaults())
	app := StartFPApp(node, 2, 10*sim.Millisecond)
	eng.RunUntil(sim.Second)
	if app.Delays.Count() < 150 {
		t.Fatalf("batches = %d, want ~200", app.Delays.Count())
	}
	// Alone on the node, normalized delay ~ 0.
	if app.Delays.Mean() > 0.02 {
		t.Fatalf("unloaded delay = %.4f, want ~0", app.Delays.Mean())
	}
	app.Stop()
	eng.RunUntil(2 * sim.Second)

	// Now with a competing boosted thread waking every 2ms.
	eng2 := sim.NewEngine(3)
	node2 := simos.NewNode(eng2, 1, simos.NodeDefaults())
	app2 := StartFPApp(node2, 2, 10*sim.Millisecond)
	node2.Spawn("pest", func(tk *simos.Task) {
		var loop func()
		loop = func() {
			tk.Compute(500*sim.Microsecond, func() {
				tk.Sleep(2*sim.Millisecond, loop)
			})
		}
		loop()
	})
	eng2.RunUntil(sim.Second)
	if app2.Delays.Mean() < 0.05 {
		t.Fatalf("interfered delay = %.4f, want noticeable slowdown", app2.Delays.Mean())
	}
}

// TestClientPoolShunsDeadReplica pins the retarget discipline: a
// replica that times out or naks is shunned individually for a
// cooldown, while requests keep round-robining across the remaining
// replicas. The old pool-wide cursor rotated once per concurrent
// failure — with N clients stuck on one dead replica that advanced the
// cursor N steps, which modulo the replica count can land every retry
// right back on the dead one.
func TestClientPoolShunsDeadReplica(t *testing.T) {
	eng := sim.NewEngine(3)
	fab := simnet.NewFabric(eng, simnet.Defaults())
	p := &ClientPool{
		Cfg:    ClientPoolConfig{FrontEnds: []int{10, 11, 12}},
		fab:    fab,
		feDown: make([]sim.Time, 3),
	}
	// Healthy pool: successive requests spread over every replica.
	seen := map[int]bool{}
	for i := 0; i < 3; i++ {
		seen[p.target(p.pickFront())] = true
	}
	if len(seen) != 3 {
		t.Fatalf("healthy rotation covered %d replicas, want 3", len(seen))
	}
	// Three clients fail against replica 11 at once (the pathological
	// case for a shared cursor: 3 rotations mod 3 is a no-op).
	for i := 0; i < 3; i++ {
		p.shun(1)
	}
	if p.Retargets != 3 {
		t.Fatalf("retargets = %d, want 3", p.Retargets)
	}
	for i := 0; i < 6; i++ {
		if got := p.target(p.pickFront()); got == 11 {
			t.Fatal("picked the shunned replica during its cooldown")
		}
	}
	// After the cooldown the replica rejoins the rotation.
	eng.RunFor(frontEndCooldown + 1)
	seen = map[int]bool{}
	for i := 0; i < 3; i++ {
		seen[p.target(p.pickFront())] = true
	}
	if !seen[11] {
		t.Fatal("replica never rejoined after cooldown")
	}
	// All replicas shunned: degrade to round-robin rather than stalling.
	for i := range p.feDown {
		p.feDown[i] = eng.Now() + frontEndCooldown
	}
	if fe := p.pickFront(); fe < 0 || fe > 2 {
		t.Fatalf("all-shunned pick = %d", fe)
	}
}
