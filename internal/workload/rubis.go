// Package workload provides the paper's workload generators: the
// RUBiS auction-site query mix (Table 1), Zipf static-document traces
// (§5.2.1), closed-loop client pools, and the background compute+
// communicate load and floating-point application used by the
// micro-benchmarks (§5.1).
package workload

import (
	"math"
	"math/rand"

	"rdmamon/internal/httpsim"
	"rdmamon/internal/sim"
)

// CostSigma is the lognormal spread of per-request service demands.
// Dynamic-content queries are strongly heavy-tailed (database cache
// misses, lock waits — see the RUBiS bottleneck characterisation the
// paper cites), and this invisible-to-request-counts variance is
// precisely what load-aware dispatching exploits.
const CostSigma = 0.45

// QueryClass describes one RUBiS query type: its service demand on a
// back-end and its share of the request mix.
type QueryClass struct {
	Name   string
	CPU    sim.Time // CPU demand (PHP + MySQL processing)
	IOWait sim.Time // database/disk wait without CPU
	Size   int      // request bytes
	Resp   int      // response bytes
	Weight int      // relative frequency in the mix
}

// RUBiSMix returns the eight query classes the paper's Table 1
// reports, with service demands calibrated so that unloaded average
// response times land in the paper's 2-17 ms range.
func RUBiSMix() []QueryClass {
	return []QueryClass{
		{Name: "Home", CPU: 1500 * sim.Microsecond, IOWait: 500 * sim.Microsecond, Size: 300, Resp: 4 << 10, Weight: 12},
		{Name: "Browse", CPU: 1600 * sim.Microsecond, IOWait: 700 * sim.Microsecond, Size: 300, Resp: 8 << 10, Weight: 22},
		{Name: "BrowseRegions", CPU: 3500 * sim.Microsecond, IOWait: 1500 * sim.Microsecond, Size: 320, Resp: 12 << 10, Weight: 12},
		{Name: "BrowseCatgryReg", CPU: 9 * sim.Millisecond, IOWait: 6 * sim.Millisecond, Size: 340, Resp: 24 << 10, Weight: 8},
		{Name: "SearchItemsReg", CPU: 2200 * sim.Microsecond, IOWait: 1200 * sim.Microsecond, Size: 360, Resp: 10 << 10, Weight: 18},
		{Name: "PutBidAuth", CPU: 1400 * sim.Microsecond, IOWait: 800 * sim.Microsecond, Size: 400, Resp: 2 << 10, Weight: 10},
		{Name: "Sell", CPU: 1800 * sim.Microsecond, IOWait: 1500 * sim.Microsecond, Size: 420, Resp: 3 << 10, Weight: 8},
		{Name: "AboutMe", CPU: 1500 * sim.Microsecond, IOWait: 800 * sim.Microsecond, Size: 320, Resp: 6 << 10, Weight: 10},
	}
}

// QueryNames returns the class names in Table 1 order.
func QueryNames(classes []QueryClass) []string {
	out := make([]string, len(classes))
	for i, c := range classes {
		out[i] = c.Name
	}
	return out
}

// Mix samples query classes according to their weights.
type Mix struct {
	classes []QueryClass
	total   int
}

// NewMix builds a sampler over classes.
func NewMix(classes []QueryClass) *Mix {
	m := &Mix{classes: classes}
	for _, c := range classes {
		if c.Weight <= 0 {
			panic("workload: class weight must be positive")
		}
		m.total += c.Weight
	}
	return m
}

// Pick returns one class sampled by weight.
func (m *Mix) Pick(rng *rand.Rand) QueryClass {
	n := rng.Intn(m.total)
	for _, c := range m.classes {
		n -= c.Weight
		if n < 0 {
			return c
		}
	}
	return m.classes[len(m.classes)-1]
}

// costFactor draws the request's lognormal demand multiplier, clamped
// to [0.3, 5] (a 5x tail request is a database cache storm, not an
// outage).
func costFactor(rng *rand.Rand) float64 {
	f := math.Exp(rng.NormFloat64() * CostSigma)
	if f < 0.3 {
		f = 0.3
	}
	if f > 5 {
		f = 5
	}
	return f
}

// Request materializes a request of the given class with deterministic
// (mean) demands. Used where reproducible fixed costs are wanted.
func (c QueryClass) Request(id uint64, client int, now sim.Time) httpsim.Request {
	return httpsim.Request{
		ID: id, Class: c.Name,
		CPU: c.CPU, IOWait: c.IOWait,
		Size: c.Size, Resp: c.Resp,
		Client: client, Issued: now,
	}
}

// RequestVar materializes a request with heavy-tailed demands: both
// the CPU demand and the I/O wait scale with the same lognormal
// factor (a cache-missing query burns more CPU and waits longer).
func (c QueryClass) RequestVar(rng *rand.Rand, id uint64, client int, now sim.Time) httpsim.Request {
	req := c.Request(id, client, now)
	f := costFactor(rng)
	req.CPU = sim.Time(float64(req.CPU) * f)
	req.IOWait = sim.Time(float64(req.IOWait) * f)
	return req
}
