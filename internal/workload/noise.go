package workload

import (
	"math/rand"

	"rdmamon/internal/sim"
	"rdmamon/internal/simos"
)

// TenantNoiseConfig shapes the wandering co-tenant load: the paper's
// shared-enterprise-server premise is that *other applications* run on
// the same nodes, so a node's true capacity fluctuates in ways the web
// dispatcher cannot infer from its own request counts — only resource
// monitoring reveals it.
type TenantNoiseConfig struct {
	MeanGap   sim.Time // mean time between bursts (exponential)
	MinHold   sim.Time // burst duration range
	MaxHold   sim.Time
	Threads   int // CPU hogs per burst
	Seed      int64
	Boostless bool // hogs run in the normal band (default true semantics: always normal)
}

// NoiseDefaults returns a moderately disruptive co-tenant.
func NoiseDefaults() TenantNoiseConfig {
	return TenantNoiseConfig{
		MeanGap: 500 * sim.Millisecond,
		MinHold: 400 * sim.Millisecond,
		MaxHold: 1600 * sim.Millisecond,
		Threads: 2,
	}
}

// TenantNoise injects CPU bursts on random nodes.
type TenantNoise struct {
	Cfg   TenantNoiseConfig
	nodes []*simos.Node
	rng   *rand.Rand

	Bursts  uint64
	stopped bool
}

// StartTenantNoise launches the noise process over nodes. Each burst
// picks one node and runs Threads CPU hogs for the hold duration.
func StartTenantNoise(nodes []*simos.Node, cfg TenantNoiseConfig) *TenantNoise {
	d := NoiseDefaults()
	if cfg.MeanGap <= 0 {
		cfg.MeanGap = d.MeanGap
	}
	if cfg.MinHold <= 0 {
		cfg.MinHold = d.MinHold
	}
	if cfg.MaxHold < cfg.MinHold {
		cfg.MaxHold = cfg.MinHold
	}
	if cfg.Threads <= 0 {
		cfg.Threads = d.Threads
	}
	tn := &TenantNoise{Cfg: cfg, nodes: nodes, rng: rand.New(rand.NewSource(cfg.Seed))}
	tn.schedule()
	return tn
}

func (tn *TenantNoise) schedule() {
	if len(tn.nodes) == 0 {
		return
	}
	eng := tn.nodes[0].Eng
	gap := sim.Time(tn.rng.ExpFloat64() * float64(tn.Cfg.MeanGap))
	if gap < 50*sim.Millisecond {
		gap = 50 * sim.Millisecond
	}
	eng.After(gap, func() {
		if tn.stopped {
			return
		}
		tn.Bursts++
		node := tn.nodes[tn.rng.Intn(len(tn.nodes))]
		hold := tn.Cfg.MinHold +
			sim.Time(tn.rng.Int63n(int64(tn.Cfg.MaxHold-tn.Cfg.MinHold)+1))
		for i := 0; i < tn.Cfg.Threads; i++ {
			node.Spawn("tenant", func(tk *simos.Task) {
				tk.NoBoost = true
				tk.Compute(hold, func() {})
			})
		}
		tn.schedule()
	})
}

// Stop ends future bursts (in-flight bursts run to completion).
func (tn *TenantNoise) Stop() { tn.stopped = true }
