package workload

import (
	"fmt"

	"rdmamon/internal/metrics"
	"rdmamon/internal/sim"
	"rdmamon/internal/simnet"
	"rdmamon/internal/simos"
)

// EchoPort is the service port of the background echo responder.
const EchoPort = "echo"

// StartEchoServers runs pool echo responder tasks on node: each
// receives a message and sends a small reply back to the requester's
// reply port. They are the "communication" half of the paper's
// background compute+communicate load (§5.1.1).
func StartEchoServers(node *simos.Node, nic *simnet.NIC, pool int) []*simos.Task {
	port := node.Port(EchoPort)
	var tasks []*simos.Task
	for i := 0; i < pool; i++ {
		t := node.Spawn(fmt.Sprintf("echo-%d", i), func(tk *simos.Task) {
			var serve func(m simos.Message)
			serve = func(m simos.Message) {
				rp, ok := m.Payload.(string)
				if !ok {
					tk.Recv(port, serve)
					return
				}
				tk.Compute(20*sim.Microsecond, func() {
					nic.Send(tk, m.From, rp, 256, "echo-reply", func() {
						tk.Recv(port, serve)
					})
				})
			}
			tk.Recv(port, serve)
		})
		tasks = append(tasks, t)
	}
	return tasks
}

// BackgroundConfig shapes the compute+communicate threads.
type BackgroundConfig struct {
	Threads   int
	Peer      int      // node to exchange messages with
	MeanBurst sim.Time // mean CPU burst per cycle (exponential-ish)
	MsgSize   int
}

// BackgroundDefaults matches the loaded-server emulation of §5.1.1.
func BackgroundDefaults() BackgroundConfig {
	return BackgroundConfig{Threads: 8, MeanBurst: 800 * sim.Microsecond, MsgSize: 1 << 10}
}

// StartBackground launches cfg.Threads compute+communicate threads on
// node: each repeatedly burns a CPU burst, then exchanges a message
// with the peer node and blocks for the reply. Blocking earns the
// thread a wakeup boost — so a probe's woken monitoring process queues
// behind ~O(threads) of them, which is the linear growth of Figure 3.
func StartBackground(node *simos.Node, nic *simnet.NIC, cfg BackgroundConfig) []*simos.Task {
	if cfg.MeanBurst <= 0 {
		cfg.MeanBurst = BackgroundDefaults().MeanBurst
	}
	if cfg.MsgSize <= 0 {
		cfg.MsgSize = 1 << 10
	}
	eng := node.Eng
	var tasks []*simos.Task
	for i := 0; i < cfg.Threads; i++ {
		replyPort := fmt.Sprintf("bg-reply-%d", i)
		rp := node.Port(replyPort)
		t := node.Spawn(fmt.Sprintf("bg-%d", i), func(tk *simos.Task) {
			var loop func()
			loop = func() {
				burst := sim.Time(eng.Rand().ExpFloat64() * float64(cfg.MeanBurst))
				if burst < 50*sim.Microsecond {
					burst = 50 * sim.Microsecond
				}
				if burst > 4*cfg.MeanBurst {
					burst = 4 * cfg.MeanBurst
				}
				tk.Compute(burst, func() {
					nic.Send(tk, cfg.Peer, EchoPort, cfg.MsgSize, replyPort, func() {
						tk.Recv(rp, func(simos.Message) { loop() })
					})
				})
			}
			loop()
		})
		tasks = append(tasks, t)
	}
	return tasks
}

// FPApp is the paper's §5.1.2 probe application: threads repeatedly
// execute a fixed batch of floating-point work and report the batch's
// wall time normalized to its CPU demand. With no interference a batch
// finishes in exactly its CPU time (delay 0); every preemption by a
// monitoring process stretches it.
type FPApp struct {
	// Delays holds (wall-cpu)/cpu per batch, across all threads.
	Delays metrics.Sample

	tasks   []*simos.Task
	stopped bool
}

// StartFPApp runs threads batch-loop tasks on node.
func StartFPApp(node *simos.Node, threads int, batch sim.Time) *FPApp {
	app := &FPApp{}
	eng := node.Eng
	for i := 0; i < threads; i++ {
		t := node.Spawn(fmt.Sprintf("fpapp-%d", i), func(tk *simos.Task) {
			var loop func()
			loop = func() {
				if app.stopped {
					tk.Exit()
					return
				}
				start := eng.Now()
				tk.Compute(batch, func() {
					wall := eng.Now() - start
					app.Delays.Add(float64(wall-batch) / float64(batch))
					loop()
				})
			}
			loop()
		})
		app.tasks = append(app.tasks, t)
	}
	return app
}

// Stop ends the app's batch loops.
func (a *FPApp) Stop() { a.stopped = true }
