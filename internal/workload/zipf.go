package workload

import (
	"math"
	"math/rand"

	"rdmamon/internal/httpsim"
	"rdmamon/internal/sim"
)

// ZipfTrace generates requests against a static document population
// whose popularity follows Zipf's law: P(doc i) ∝ 1/i^α. Higher α
// means higher temporal locality (the paper sweeps α from 0.25 to
// 0.9 in Figure 7).
//
// Document sizes are Pareto-distributed (heavy-tailed, like real web
// content), and unpopular documents miss the in-memory cache, adding
// an I/O wait — so a low-α trace mixes many requests with very
// different resource demands, which is exactly the regime where
// accurate fine-grained monitoring pays off.
type ZipfTrace struct {
	N     int
	Alpha float64

	cum       []float64 // cumulative popularity
	sizes     []int
	cacheRank int // docs with rank < cacheRank are memory-resident

	// Service-cost model.
	CPUBase   sim.Time // per-request fixed CPU
	CPURate   int64    // bytes/sec of CPU-bound processing (copy, TCP)
	DiskRate  int64    // bytes/sec for cache misses
	DiskSetup sim.Time // seek+queue per miss
}

// NewZipfTrace builds a trace over n documents with exponent alpha.
// Sizes are deterministic given seed.
func NewZipfTrace(n int, alpha float64, seed int64) *ZipfTrace {
	if n <= 0 {
		panic("workload: zipf needs n > 0")
	}
	z := &ZipfTrace{
		N: n, Alpha: alpha,
		cum:       make([]float64, n),
		sizes:     make([]int, n),
		cacheRank: n / 10,
		CPUBase:   200 * sim.Microsecond,
		CPURate:   30 << 20, // touch-every-byte work (PHP passthrough era)
		DiskRate:  60 << 20,
		DiskSetup: 1 * sim.Millisecond,
	}
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += 1 / math.Pow(float64(i+1), alpha)
		z.cum[i] = sum
	}
	for i := range z.cum {
		z.cum[i] /= sum
	}
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < n; i++ {
		// Pareto(xm=2KB, a=1.2) noise times a rank-dependent scale:
		// popular documents skew small (that is why they are popular
		// and cacheable); the cold tail holds the big objects. Capped
		// at 1 MB.
		u := rng.Float64()
		size := 2048 * math.Pow(1-u, -1/1.2)
		size *= 0.5 + 4*float64(i)/float64(n)
		if size > 1<<20 {
			size = 1 << 20
		}
		z.sizes[i] = int(size)
	}
	return z
}

// SampleDoc returns a document rank (0-based; 0 is the most popular).
func (z *ZipfTrace) SampleDoc(rng *rand.Rand) int {
	u := rng.Float64()
	lo, hi := 0, z.N-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cum[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Size returns the document's size in bytes.
func (z *ZipfTrace) Size(doc int) int { return z.sizes[doc] }

// Cached reports whether the document is memory-resident.
func (z *ZipfTrace) Cached(doc int) bool { return doc < z.cacheRank }

// Request materializes a request for a freshly sampled document.
func (z *ZipfTrace) Request(rng *rand.Rand, id uint64, client int, now sim.Time) httpsim.Request {
	return z.RequestFor(z.SampleDoc(rng), id, client, now)
}

// RequestFor materializes a request for a specific document.
func (z *ZipfTrace) RequestFor(doc int, id uint64, client int, now sim.Time) httpsim.Request {
	size := z.sizes[doc]
	cpu := z.CPUBase + sim.Time(int64(size)*int64(sim.Second)/z.CPURate)
	var io sim.Time
	if !z.Cached(doc) {
		io = z.DiskSetup + sim.Time(int64(size)*int64(sim.Second)/z.DiskRate)
	}
	return httpsim.Request{
		ID: id, Class: "zipf",
		CPU: cpu, IOWait: io,
		Size: 250, Resp: size,
		Client: client, Issued: now,
	}
}
