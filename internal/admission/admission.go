// Package admission implements the paper's motivating use case (§1):
// admission control driven by monitored resource usage. "Several
// systems rely on the cluster resource usage information for admission
// control of requests — an inaccurate resource usage information could
// potentially lead to lost revenue."
//
// The controller sits in front of the dispatcher: a request is
// admitted only if some back-end's monitored load index is below the
// threshold. Both failure modes of inaccurate monitoring are visible:
//
//   - stale-low records over-admit: requests pile onto saturated
//     servers and miss their latency objective;
//   - stale-high records over-reject: capacity that has already
//     drained goes unused (lost revenue).
package admission

import (
	"rdmamon/internal/core"
	"rdmamon/internal/loadbalance"
)

// Config tunes the controller.
type Config struct {
	// Threshold is the load index above which a back-end is considered
	// full. A request is rejected when every back-end is full.
	Threshold float64
	Weights   core.Weights

	// Eligible, if set, reports whether a back-end may serve at all
	// (the monitor's health verdict). Quarantined and crashed back-ends
	// are skipped outright: the dispatcher will never route to them, so
	// counting their (stale, often idle-looking) records as spare
	// capacity admits requests the cluster cannot actually serve.
	Eligible func(backend int) bool

	// Degraded, if set, reports a back-end currently monitored over its
	// fallback transport. Its index is handicapped by DegradedPenalty —
	// the same handicap the dispatch policy applies — so admission and
	// routing agree on how much headroom a shakily-monitored back-end
	// really has.
	Degraded func(backend int) bool
	// DegradedPenalty defaults to loadbalance.DefaultDegradedPenalty.
	DegradedPenalty float64
}

// Defaults returns a controller configuration that starts rejecting
// when the whole cluster looks > ~85% loaded.
func Defaults() Config {
	return Config{Threshold: 0.85, Weights: core.DefaultWeights()}
}

// Controller decides request admission from monitored load records.
type Controller struct {
	Cfg    Config
	Source loadbalance.LoadSource

	Admitted uint64
	Rejected uint64
}

// New creates a controller reading records from source.
func New(cfg Config, source loadbalance.LoadSource) *Controller {
	if cfg.Threshold <= 0 {
		cfg.Threshold = Defaults().Threshold
	}
	if cfg.Weights == (core.Weights{}) {
		cfg.Weights = Defaults().Weights
	}
	return &Controller{Cfg: cfg, Source: source}
}

// Admit decides one request given the candidate back-ends. A back-end
// with no record yet counts as available (optimistic start); an
// ineligible one never does.
func (c *Controller) Admit(backends []int) bool {
	ok := false
	for _, b := range backends {
		if c.Cfg.Eligible != nil && !c.Cfg.Eligible(b) {
			continue
		}
		rec, have := c.Source(b)
		if !have {
			ok = true
			break
		}
		idx := c.Cfg.Weights.Index(rec)
		if c.Cfg.Degraded != nil && c.Cfg.Degraded(b) {
			if c.Cfg.DegradedPenalty > 0 {
				idx += c.Cfg.DegradedPenalty
			} else {
				idx += loadbalance.DefaultDegradedPenalty
			}
		}
		if idx < c.Cfg.Threshold {
			ok = true
			break
		}
	}
	if ok {
		c.Admitted++
	} else {
		c.Rejected++
	}
	return ok
}

// RejectRate returns the fraction of requests rejected so far.
func (c *Controller) RejectRate() float64 {
	total := c.Admitted + c.Rejected
	if total == 0 {
		return 0
	}
	return float64(c.Rejected) / float64(total)
}
