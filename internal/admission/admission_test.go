package admission_test

import (
	"testing"

	"rdmamon/internal/admission"

	"rdmamon/internal/cluster"
	"rdmamon/internal/core"
	"rdmamon/internal/sim"
	"rdmamon/internal/wire"
)

func recWithLoad(node int, util int, conns int) wire.LoadRecord {
	r := wire.LoadRecord{
		NumCPU: 2, NodeID: uint16(node), Conns: uint16(conns),
		NrRunning:  uint16(conns / 4),
		MemUsedKB:  uint32(conns) * 1024,
		MemTotalKB: 1 << 20,
	}
	r.UtilPerMille[0] = uint16(util)
	r.UtilPerMille[1] = uint16(util)
	return r
}

func TestAdmitWhenCapacityExists(t *testing.T) {
	loads := map[int]wire.LoadRecord{
		1: recWithLoad(1, 1000, 64),
		2: recWithLoad(2, 100, 2),
	}
	c := admission.New(admission.Defaults(), func(b int) (wire.LoadRecord, bool) { r, ok := loads[b]; return r, ok })
	if !c.Admit([]int{1, 2}) {
		t.Fatal("should admit: node 2 has capacity")
	}
	if c.Admitted != 1 || c.Rejected != 0 {
		t.Fatalf("counters: %d/%d", c.Admitted, c.Rejected)
	}
}

func TestRejectWhenAllFull(t *testing.T) {
	full := recWithLoad(1, 1000, 64)
	c := admission.New(admission.Defaults(), func(int) (wire.LoadRecord, bool) { return full, true })
	if c.Admit([]int{1, 2, 3}) {
		t.Fatal("should reject: every backend saturated")
	}
	if c.RejectRate() != 1 {
		t.Fatalf("reject rate = %v", c.RejectRate())
	}
}

func TestMissingRecordIsOptimistic(t *testing.T) {
	c := admission.New(admission.Defaults(), func(int) (wire.LoadRecord, bool) { return wire.LoadRecord{}, false })
	if !c.Admit([]int{1}) {
		t.Fatal("no record yet should admit")
	}
}

func TestRejectRateEmpty(t *testing.T) {
	c := admission.New(admission.Config{}, nil)
	if c.RejectRate() != 0 {
		t.Fatal("empty controller should report 0 reject rate")
	}
	if c.Cfg.Threshold <= 0 {
		t.Fatal("zero threshold should take default")
	}
}

func TestClusterAdmissionEndToEnd(t *testing.T) {
	// Saturate a tiny cluster; the controller must start rejecting,
	// and rejected requests must flow back to the clients as such.
	c := cluster.New(cluster.Config{Backends: 2, Scheme: core.RDMASync, Seed: 5})
	ctl := c.EnableAdmission(admission.Config{Threshold: 0.5})
	pool := c.StartRUBiS(128, 10*sim.Millisecond, 6)
	c.Run(8 * sim.Second)
	if ctl.Admitted == 0 {
		t.Fatal("nothing admitted")
	}
	if ctl.Rejected == 0 {
		t.Fatal("an overloaded 2-node cluster should reject some load")
	}
	if pool.Rejected == 0 {
		t.Fatal("clients should observe rejections")
	}
	if pool.Completed == 0 {
		t.Fatal("admitted requests should still complete")
	}
	// Accounting closes: every client cycle ended one way.
	if ctl.Rejected != pool.Rejected+uint64(0) && pool.Rejected > ctl.Rejected {
		t.Fatalf("rejects: controller %d vs clients %d", ctl.Rejected, pool.Rejected)
	}
}

func TestAdmissionKeepsLatencyBounded(t *testing.T) {
	// With admission on, served requests should see bounded latency
	// even under extreme offered load.
	run := func(enable bool) (mean float64, served uint64) {
		c := cluster.New(cluster.Config{Backends: 2, Scheme: core.RDMASync, Seed: 7})
		if enable {
			c.EnableAdmission(admission.Config{Threshold: 0.6})
		}
		pool := c.StartRUBiS(192, 5*sim.Millisecond, 8)
		c.Run(6 * sim.Second)
		return pool.All.Mean(), pool.Completed
	}
	meanOff, _ := run(false)
	meanOn, servedOn := run(true)
	if servedOn == 0 {
		t.Fatal("no requests served with admission on")
	}
	if meanOn >= meanOff {
		t.Fatalf("admission control should cut served-request latency: %v vs %v",
			meanOn, meanOff)
	}
}

// TestIneligibleBackendsAreNoCapacity: a quarantined back-end's stale,
// idle-looking record must not admit requests the dispatcher will never
// be able to route to it.
func TestIneligibleBackendsAreNoCapacity(t *testing.T) {
	loads := map[int]wire.LoadRecord{
		1: recWithLoad(1, 1000, 64), // saturated but alive
		2: recWithLoad(2, 50, 1),    // looks idle — but it is dead
	}
	cfg := admission.Defaults()
	cfg.Eligible = func(b int) bool { return b != 2 }
	c := admission.New(cfg, func(b int) (wire.LoadRecord, bool) { r, ok := loads[b]; return r, ok })
	if c.Admit([]int{1, 2}) {
		t.Fatal("admitted against a dead back-end's stale record")
	}
	// The same cluster with node 2 alive admits.
	cfg.Eligible = nil
	c2 := admission.New(cfg, func(b int) (wire.LoadRecord, bool) { r, ok := loads[b]; return r, ok })
	if !c2.Admit([]int{1, 2}) {
		t.Fatal("should admit when the idle back-end is actually alive")
	}
}

// TestDegradedPenaltyMatchesDispatch: a back-end just under the
// threshold over a degraded transport must be handicapped past it —
// with the same default penalty the dispatch policy uses.
func TestDegradedPenaltyMatchesDispatch(t *testing.T) {
	// DefaultWeights CPU weight is 0.35: util 820/1000 -> index ~0.287.
	marginal := recWithLoad(1, 820, 0)
	cfg := admission.Config{Threshold: 0.30, Weights: core.DefaultWeights()}
	cfg.Degraded = func(int) bool { return true }
	c := admission.New(cfg, func(int) (wire.LoadRecord, bool) { return marginal, true })
	if c.Admit([]int{1}) {
		t.Fatal("degraded penalty (default 0.05) should tip 0.287 past threshold 0.30")
	}
	// Healthy transport: same record admits.
	cfg.Degraded = nil
	c2 := admission.New(cfg, func(int) (wire.LoadRecord, bool) { return marginal, true })
	if !c2.Admit([]int{1}) {
		t.Fatal("healthy back-end under threshold should admit")
	}
}
