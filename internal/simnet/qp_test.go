package simnet

import (
	"errors"
	"testing"

	"rdmamon/internal/sim"
	"rdmamon/internal/simos"
)

// dialOnce drives one Dial from node 0 to target and returns its
// outcome after the engine settles.
func dialOnce(r *rig, target int) (qp *QP, err error, done bool) {
	r.nodes[0].Spawn("dial", func(tk *simos.Task) {
		r.nics[0].Dial(tk, target, func(q *QP, e error) {
			qp, err, done = q, e, true
		})
	})
	r.eng.RunUntil(r.eng.Now() + sim.Second)
	return
}

// TestDialEstablishesQPAndFD: a successful dial opens exactly one QP,
// holds one initiator fd, and costs at least the connection-manager
// round trip.
func TestDialEstablishesQPAndFD(t *testing.T) {
	r := newRig(t, 2, Defaults())
	start := r.eng.Now()
	qp, err, done := dialOnce(r, 1)
	if !done || err != nil {
		t.Fatalf("dial: done=%v err=%v", done, err)
	}
	if !qp.Valid() || qp.Target() != 1 {
		t.Fatalf("qp invalid or mistargeted: %+v", qp)
	}
	if r.nics[0].QPsOpen() != 1 || r.nics[0].FDsInUse() != 1 {
		t.Fatalf("qps=%d fds=%d, want 1/1", r.nics[0].QPsOpen(), r.nics[0].FDsInUse())
	}
	if r.nics[0].Dials != 1 || r.nics[0].DialErrors != 0 {
		t.Fatalf("counters dials=%d errs=%d, want 1/0", r.nics[0].Dials, r.nics[0].DialErrors)
	}
	if took := r.eng.Now() - start; took == 0 {
		t.Fatal("dial completed in zero time; CM exchange not modeled")
	}

	// CloseQP releases both, and is idempotent.
	r.nics[0].CloseQP(qp)
	r.nics[0].CloseQP(qp)
	if r.nics[0].QPsOpen() != 0 || r.nics[0].FDsInUse() != 0 {
		t.Fatalf("after close: qps=%d fds=%d, want 0/0", r.nics[0].QPsOpen(), r.nics[0].FDsInUse())
	}
	if qp.Valid() {
		t.Fatal("closed QP still valid")
	}
}

// TestDialFDLimit: with the fd budget exhausted, a dial fails locally
// with ErrFDLimit without consuming a descriptor or touching the wire.
func TestDialFDLimit(t *testing.T) {
	r := newRig(t, 2, Defaults())
	r.nics[0].SetFDLimit(1)
	qp, err, _ := dialOnce(r, 1)
	if err != nil {
		t.Fatalf("first dial under limit 1: %v", err)
	}
	if _, err2, done := dialOnce(r, 1); !done || !errors.Is(err2, ErrFDLimit) {
		t.Fatalf("second dial: done=%v err=%v, want ErrFDLimit", done, err2)
	}
	if r.nics[0].FDsInUse() != 1 {
		t.Fatalf("failed dial leaked an fd: %d in use", r.nics[0].FDsInUse())
	}
	// Releasing the fd makes the next dial succeed again.
	r.nics[0].CloseQP(qp)
	if _, err3, _ := dialOnce(r, 1); err3 != nil {
		t.Fatalf("dial after release: %v", err3)
	}
}

// TestDialDownTargetTimesOut: dialing a down node costs the RDMA
// timeout, returns ErrTimeout, and returns the fd.
func TestDialDownTargetTimesOut(t *testing.T) {
	r := newRig(t, 2, Defaults())
	r.nodes[1].Crash()
	start := r.eng.Now()
	_, err, done := dialOnce(r, 1)
	if !done || !errors.Is(err, ErrTimeout) {
		t.Fatalf("dial to down node: done=%v err=%v, want ErrTimeout", done, err)
	}
	if took := r.eng.Now() - start; took < r.fab.Cfg.RDMATimeout {
		t.Fatalf("failed after %v, before the %v CM timeout", took, r.fab.Cfg.RDMATimeout)
	}
	if r.nics[0].FDsInUse() != 0 {
		t.Fatalf("timed-out dial leaked an fd")
	}
	if r.nics[0].DialErrors != 1 {
		t.Fatalf("DialErrors = %d, want 1", r.nics[0].DialErrors)
	}
}

// TestResetListenerInvalidatesQPs: a listener reset flips every
// established QP targeting the node to the error state — from any
// initiator — while their fds stay held until CloseQP (that is the
// leak the pool's fence-and-recycle path exists to stop).
func TestResetListenerInvalidatesQPs(t *testing.T) {
	r := newRig(t, 3, Defaults())
	qp01, err, _ := dialOnce(r, 1)
	if err != nil {
		t.Fatal(err)
	}
	qp02, err, _ := dialOnce(r, 2)
	if err != nil {
		t.Fatal(err)
	}
	var qp21 *QP
	r.nodes[2].Spawn("dial", func(tk *simos.Task) {
		r.nics[2].Dial(tk, 1, func(q *QP, e error) { qp21 = q })
	})
	r.eng.RunUntil(r.eng.Now() + sim.Second)
	if qp21 == nil {
		t.Fatal("third dial never completed")
	}

	r.fab.ResetListener(1)
	if qp01.Valid() || qp21.Valid() {
		t.Fatal("QPs to the reset node stayed valid")
	}
	if !qp02.Valid() {
		t.Fatal("reset of node 1 invalidated a QP to node 2")
	}
	if r.nics[0].QPResets != 1 || r.nics[2].QPResets != 1 {
		t.Fatalf("QPResets = %d/%d, want 1/1", r.nics[0].QPResets, r.nics[2].QPResets)
	}
	// fds held until the owners notice and close.
	if r.nics[0].FDsInUse() != 2 {
		t.Fatalf("initiator fds = %d, want 2 (held through the reset)", r.nics[0].FDsInUse())
	}
	r.nics[0].CloseQP(qp01)
	if r.nics[0].FDsInUse() != 1 {
		t.Fatalf("CloseQP after reset did not release the fd")
	}
}
