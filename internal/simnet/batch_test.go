package simnet

import (
	"testing"

	"rdmamon/internal/sim"
	"rdmamon/internal/simos"
)

// batchRig builds a front node plus n targets, each exposing a 1-byte
// region whose content is the target's node ID.
func batchRig(t *testing.T, n int) (*rig, []uint32) {
	t.Helper()
	r := newRig(t, n+1, Defaults())
	keys := make([]uint32, n+1)
	for i := 1; i <= n; i++ {
		id := byte(i)
		keys[i] = r.nics[i].RegisterMR(StaticSource([]byte{id}), 1).Key()
	}
	return r, keys
}

func TestReadBatchIsPositionalAndCorrect(t *testing.T) {
	const n = 8
	r, keys := batchRig(t, n)
	reqs := make([]ReadReq, n)
	for i := 0; i < n; i++ {
		reqs[i] = ReadReq{Target: i + 1, Key: keys[i+1], Length: 1}
	}
	var got []ReadResult
	r.nodes[0].Spawn("reader", func(tk *simos.Task) {
		r.nics[0].RDMAReadBatch(tk, reqs, func(res []ReadResult) { got = res })
	})
	r.eng.RunUntil(sim.Second)
	if len(got) != n {
		t.Fatalf("got %d results, want %d", len(got), n)
	}
	for i, res := range got {
		if res.Err != nil {
			t.Fatalf("slot %d: unexpected error %v", i, res.Err)
		}
		if len(res.Data) != 1 || res.Data[0] != byte(i+1) {
			t.Fatalf("slot %d: data %v attributed to the wrong target", i, res.Data)
		}
	}
	if r.nics[0].DoorbellBatches != 1 {
		t.Fatalf("DoorbellBatches = %d, want 1", r.nics[0].DoorbellBatches)
	}
	if r.nics[0].RDMAReads != n {
		t.Fatalf("RDMAReads = %d, want %d", r.nics[0].RDMAReads, n)
	}
}

func TestReadBatchIsolatesPerRequestErrors(t *testing.T) {
	r, keys := batchRig(t, 3)
	r.nodes[2].Crash()
	reqs := []ReadReq{
		{Target: 1, Key: keys[1], Length: 1},
		{Target: 2, Key: keys[2], Length: 1},      // dead node: ErrTimeout
		{Target: 3, Key: keys[3] + 99, Length: 1}, // bad key
	}
	var got []ReadResult
	r.nodes[0].Spawn("reader", func(tk *simos.Task) {
		r.nics[0].RDMAReadBatch(tk, reqs, func(res []ReadResult) { got = res })
	})
	r.eng.RunUntil(sim.Second)
	if got == nil {
		t.Fatal("batch never completed")
	}
	if got[0].Err != nil || got[0].Data[0] != 1 {
		t.Fatalf("healthy slot polluted: %+v", got[0])
	}
	if got[1].Err != ErrTimeout {
		t.Fatalf("dead-target slot: err=%v, want ErrTimeout", got[1].Err)
	}
	if got[2].Err != ErrBadKey {
		t.Fatalf("bad-key slot: err=%v, want ErrBadKey", got[2].Err)
	}
}

// TestReadBatchBeatsSequentialReads: a batch of k reads completes in
// far less virtual time than k sequential reads — the whole point of
// ringing the doorbell once.
func TestReadBatchBeatsSequentialReads(t *testing.T) {
	const k = 16
	seq := func() sim.Time {
		r, keys := batchRig(t, k)
		var done sim.Time
		r.nodes[0].Spawn("reader", func(tk *simos.Task) {
			var step func(i int)
			step = func(i int) {
				if i == k {
					done = r.eng.Now()
					return
				}
				r.nics[0].RDMARead(tk, i+1, keys[i+1], 1, func([]byte, error) { step(i + 1) })
			}
			step(0)
		})
		r.eng.RunUntil(sim.Second)
		return done
	}()
	batch := func() sim.Time {
		r, keys := batchRig(t, k)
		reqs := make([]ReadReq, k)
		for i := 0; i < k; i++ {
			reqs[i] = ReadReq{Target: i + 1, Key: keys[i+1], Length: 1}
		}
		var done sim.Time
		r.nodes[0].Spawn("reader", func(tk *simos.Task) {
			r.nics[0].RDMAReadBatch(tk, reqs, func([]ReadResult) { done = r.eng.Now() })
		})
		r.eng.RunUntil(sim.Second)
		return done
	}()
	if batch == 0 || seq == 0 {
		t.Fatalf("runs did not complete: batch=%v seq=%v", batch, seq)
	}
	if batch*4 > seq {
		t.Fatalf("batch %v not >=4x faster than sequential %v", batch, seq)
	}
}

func TestReadBatchEmptyCompletes(t *testing.T) {
	r, _ := batchRig(t, 1)
	called := false
	r.nodes[0].Spawn("reader", func(tk *simos.Task) {
		r.nics[0].RDMAReadBatch(tk, nil, func(res []ReadResult) {
			called = true
			if res != nil {
				t.Errorf("empty batch returned %v", res)
			}
		})
	})
	r.eng.RunUntil(sim.Second)
	if !called {
		t.Fatal("empty batch never completed")
	}
}

// TestReadBatchDMAInstantIsLive: batched reads against a live source
// still capture the region at each read's own DMA instant (the
// RDMA-Sync property survives batching).
func TestReadBatchDMAInstantIsLive(t *testing.T) {
	r := newRig(t, 2, Defaults())
	calls := 0
	key := r.nics[1].RegisterMR(func() []byte {
		calls++
		return []byte{byte(calls)}
	}, 1).Key()
	reqs := []ReadReq{
		{Target: 1, Key: key, Length: 1},
		{Target: 1, Key: key, Length: 1},
	}
	var got []ReadResult
	r.nodes[0].Spawn("reader", func(tk *simos.Task) {
		r.nics[0].RDMAReadBatch(tk, reqs, func(res []ReadResult) { got = res })
	})
	r.eng.RunUntil(sim.Second)
	if calls != 2 {
		t.Fatalf("source sampled %d times, want one DMA per WR", calls)
	}
	if got[0].Err != nil || got[1].Err != nil {
		t.Fatalf("errors: %v %v", got[0].Err, got[1].Err)
	}
}
