package simnet

import (
	"bytes"
	"encoding/binary"
	"testing"

	"rdmamon/internal/sim"
	"rdmamon/internal/simos"
)

func lightNodeCfg() simos.Config {
	cfg := simos.NodeDefaults()
	cfg.CtxSwitchCost = -1
	cfg.WakeCost = -1
	cfg.RecvCost = -1
	cfg.TimerIRQCost = -1
	return cfg
}

type rig struct {
	eng   *sim.Engine
	fab   *Fabric
	nodes []*simos.Node
	nics  []*NIC
}

func newRig(t *testing.T, n int, fcfg Config) *rig {
	t.Helper()
	r := &rig{eng: sim.NewEngine(1)}
	r.fab = NewFabric(r.eng, fcfg)
	for i := 0; i < n; i++ {
		nd := simos.NewNode(r.eng, i, lightNodeCfg())
		r.nodes = append(r.nodes, nd)
		r.nics = append(r.nics, r.fab.Attach(nd))
	}
	return r
}

func TestSendDeliversAcrossNodes(t *testing.T) {
	r := newRig(t, 2, Defaults())
	p := r.nodes[1].Port("svc")
	var got simos.Message
	var when sim.Time
	r.nodes[1].Spawn("rx", func(tk *simos.Task) {
		tk.Recv(p, func(m simos.Message) {
			got = m
			when = r.eng.Now()
		})
	})
	r.nodes[0].Spawn("tx", func(tk *simos.Task) {
		r.nics[0].Send(tk, 1, "svc", 64, "ping", nil)
	})
	r.eng.RunUntil(sim.Second)
	if got.Payload != "ping" || got.From != 0 {
		t.Fatalf("got %+v", got)
	}
	// Cost chain: TX kernel (15us) + wire (5us + 64B ser) + RX IRQ
	// (3+12us) before delivery.
	if when < 30*sim.Microsecond {
		t.Fatalf("delivered at %v, too fast for the sockets path", when)
	}
	if when > 200*sim.Microsecond {
		t.Fatalf("delivered at %v, too slow on an idle node", when)
	}
	if r.nodes[1].K.NetRxBytes != 64 || r.nodes[0].K.NetTxBytes != 64 {
		t.Fatalf("net accounting rx=%d tx=%d, want 64/64",
			r.nodes[1].K.NetRxBytes, r.nodes[0].K.NetTxBytes)
	}
}

func TestSendRaisesReceiverIRQ(t *testing.T) {
	r := newRig(t, 2, Defaults())
	r.nodes[1].Port("svc")
	r.nodes[0].Spawn("tx", func(tk *simos.Task) {
		r.nics[0].Send(tk, 1, "svc", 64, 1, nil)
	})
	r.eng.RunUntil(sim.Second)
	irqCPU := r.nodes[1].Cfg.NetIRQCPU
	if r.nodes[1].K.CumIRQHard[irqCPU] == 0 {
		t.Fatal("sockets receive should interrupt the target")
	}
}

func TestRDMAReadNoTargetCPUInvolvement(t *testing.T) {
	r := newRig(t, 2, Defaults())
	payload := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	mr := r.nics[1].RegisterMR(StaticSource(payload), len(payload))
	var got []byte
	var when sim.Time
	r.nodes[0].Spawn("probe", func(tk *simos.Task) {
		r.nics[0].RDMARead(tk, 1, mr.Key(), len(payload), func(data []byte, err error) {
			if err != nil {
				t.Errorf("RDMARead error: %v", err)
			}
			got = data
			when = r.eng.Now()
		})
	})
	r.eng.RunUntil(sim.Second)
	if !bytes.Equal(got, payload) {
		t.Fatalf("data = %v, want %v", got, payload)
	}
	// RTT: post(1us) + wire(~5us) + NIC(2us) + wire back — tens of us.
	if when > 50*sim.Microsecond {
		t.Fatalf("RDMA read took %v, want < 50us", when)
	}
	// The defining property: zero interrupts, zero context switches
	// attributable to the read on the target.
	for c := 0; c < 2; c++ {
		if r.nodes[1].K.CumIRQHard[c] != 0 {
			t.Fatalf("target CPU%d saw %d IRQs from an RDMA read, want 0",
				c, r.nodes[1].K.CumIRQHard[c])
		}
	}
	if r.nics[1].node.K.CtxSwitches != 0 {
		t.Fatalf("target did %d context switches, want 0", r.nics[1].node.K.CtxSwitches)
	}
}

func TestRDMAReadSeesValueAtDMAInstant(t *testing.T) {
	r := newRig(t, 2, Defaults())
	// Region whose source reads a live counter: like RDMA-Sync reading
	// kernel memory, the value must be the one at DMA time, not at
	// post time or completion time.
	counter := uint64(0)
	r.eng.NewTicker(sim.Microsecond, func() { counter++ })
	mr := r.nics[1].RegisterMR(func() []byte {
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], counter)
		return b[:]
	}, 8)
	var sawAt uint64
	var doneAt sim.Time
	r.nodes[0].Spawn("probe", func(tk *simos.Task) {
		r.nics[0].RDMARead(tk, 1, mr.Key(), 8, func(data []byte, err error) {
			sawAt = binary.LittleEndian.Uint64(data)
			doneAt = r.eng.Now()
		})
	})
	r.eng.RunUntil(100 * sim.Microsecond)
	if sawAt == 0 {
		t.Fatal("read value from before the clock started")
	}
	// The value must be strictly older than completion (one-way delay
	// remains) but newer than post time + request propagation.
	completionTicks := uint64(doneAt / sim.Microsecond)
	if sawAt >= completionTicks {
		t.Fatalf("value %d not older than completion %d", sawAt, completionTicks)
	}
	if completionTicks-sawAt > 20 {
		t.Fatalf("value %d too stale vs completion %d", sawAt, completionTicks)
	}
}

func TestRDMAReadBadKey(t *testing.T) {
	r := newRig(t, 2, Defaults())
	var gotErr error
	r.nodes[0].Spawn("probe", func(tk *simos.Task) {
		r.nics[0].RDMARead(tk, 1, 999, 8, func(_ []byte, err error) { gotErr = err })
	})
	r.eng.RunUntil(sim.Second)
	if gotErr != ErrBadKey {
		t.Fatalf("err = %v, want ErrBadKey", gotErr)
	}
	if r.nics[0].RDMAErrors != 1 {
		t.Fatalf("RDMAErrors = %d, want 1", r.nics[0].RDMAErrors)
	}
}

func TestRDMAReadNoRoute(t *testing.T) {
	r := newRig(t, 1, Defaults())
	var gotErr error
	r.nodes[0].Spawn("probe", func(tk *simos.Task) {
		r.nics[0].RDMARead(tk, 42, 1, 8, func(_ []byte, err error) { gotErr = err })
	})
	r.eng.RunUntil(sim.Second)
	if gotErr != ErrNoRoute {
		t.Fatalf("err = %v, want ErrNoRoute", gotErr)
	}
}

func TestRDMAReadBeyondBounds(t *testing.T) {
	r := newRig(t, 2, Defaults())
	mr := r.nics[1].RegisterMR(StaticSource(make([]byte, 16)), 16)
	var gotErr error
	r.nodes[0].Spawn("probe", func(tk *simos.Task) {
		r.nics[0].RDMARead(tk, 1, mr.Key(), 64, func(_ []byte, err error) { gotErr = err })
	})
	r.eng.RunUntil(sim.Second)
	if gotErr != ErrLength {
		t.Fatalf("err = %v, want ErrLength", gotErr)
	}
}

func TestRDMAWriteToReadOnlyRegionDenied(t *testing.T) {
	r := newRig(t, 2, Defaults())
	mr := r.nics[1].RegisterMR(StaticSource(make([]byte, 16)), 16)
	var gotErr error
	r.nodes[0].Spawn("w", func(tk *simos.Task) {
		r.nics[0].RDMAWrite(tk, 1, mr.Key(), []byte{1, 2, 3}, func(err error) { gotErr = err })
	})
	r.eng.RunUntil(sim.Second)
	if gotErr != ErrPermission {
		t.Fatalf("err = %v, want ErrPermission (read-only kernel region)", gotErr)
	}
}

func TestRDMAWriteToWritableRegion(t *testing.T) {
	r := newRig(t, 2, Defaults())
	var sunk []byte
	mr := r.nics[1].RegisterWritableMR(StaticSource(make([]byte, 16)), 16, func(b []byte) { sunk = b })
	var gotErr error
	r.nodes[0].Spawn("w", func(tk *simos.Task) {
		r.nics[0].RDMAWrite(tk, 1, mr.Key(), []byte{9, 8, 7}, func(err error) { gotErr = err })
	})
	r.eng.RunUntil(sim.Second)
	if gotErr != nil {
		t.Fatalf("err = %v, want nil", gotErr)
	}
	if !bytes.Equal(sunk, []byte{9, 8, 7}) {
		t.Fatalf("sink got %v", sunk)
	}
}

func TestDeregisterInvalidatesKey(t *testing.T) {
	r := newRig(t, 2, Defaults())
	mr := r.nics[1].RegisterMR(StaticSource(make([]byte, 8)), 8)
	r.nics[1].Deregister(mr)
	var gotErr error
	r.nodes[0].Spawn("probe", func(tk *simos.Task) {
		r.nics[0].RDMARead(tk, 1, mr.Key(), 8, func(_ []byte, err error) { gotErr = err })
	})
	r.eng.RunUntil(sim.Second)
	if gotErr != ErrBadKey {
		t.Fatalf("err = %v, want ErrBadKey after deregister", gotErr)
	}
}

func TestRDMALatencyImmuneToTargetLoad(t *testing.T) {
	measure := func(bgThreads int) sim.Time {
		r := newRig(t, 2, Defaults())
		mr := r.nics[1].RegisterMR(StaticSource(make([]byte, 128)), 128)
		for i := 0; i < bgThreads; i++ {
			r.nodes[1].Spawn("hog", func(tk *simos.Task) {
				tk.NoBoost = true
				tk.Compute(10*sim.Second, func() {})
			})
		}
		var rtt sim.Time
		r.nodes[0].Spawn("probe", func(tk *simos.Task) {
			start := r.eng.Now()
			r.nics[0].RDMARead(tk, 1, mr.Key(), 128, func(_ []byte, err error) {
				rtt = r.eng.Now() - start
			})
		})
		r.eng.RunUntil(sim.Second)
		return rtt
	}
	idle, loaded := measure(0), measure(16)
	if loaded > idle+sim.Microsecond {
		t.Fatalf("RDMA rtt grew under load: idle=%v loaded=%v", idle, loaded)
	}
}

func TestExternalInjectAndSink(t *testing.T) {
	r := newRig(t, 1, Defaults())
	p := r.nodes[0].Port("http")
	var reply simos.Message
	r.fab.RegisterExternal(-1, func(m simos.Message) { reply = m })
	r.nodes[0].Spawn("srv", func(tk *simos.Task) {
		tk.Recv(p, func(m simos.Message) {
			tk.Compute(100*sim.Microsecond, func() {
				r.nics[0].Send(tk, m.From, "", 200, "resp", nil)
			})
		})
	})
	r.fab.Inject(-1, 0, "http", 300, "req")
	r.eng.RunUntil(sim.Second)
	if reply.Payload != "resp" {
		t.Fatalf("client sink got %+v", reply)
	}
	if r.nodes[0].K.NetRxBytes != 300 {
		t.Fatalf("server accounted rx=%d, want 300", r.nodes[0].K.NetRxBytes)
	}
}

func TestMulticastReachesGroup(t *testing.T) {
	r := newRig(t, 4, Defaults())
	got := map[int]bool{}
	for i := 1; i < 4; i++ {
		i := i
		r.fab.JoinGroup("mon", i, "gmon")
		p := r.nodes[i].Port("gmon")
		r.nodes[i].Spawn("rx", func(tk *simos.Task) {
			tk.Recv(p, func(m simos.Message) { got[i] = true })
		})
	}
	r.fab.JoinGroup("mon", 0, "gmon") // sender is a member too; must not self-deliver
	r.nodes[0].Port("gmon")
	r.nodes[0].Spawn("tx", func(tk *simos.Task) {
		r.nics[0].Multicast(tk, "mon", 100, "hello", nil)
	})
	r.eng.RunUntil(sim.Second)
	if len(got) != 3 {
		t.Fatalf("multicast reached %d members, want 3", len(got))
	}
}

func TestAblationRDMATargetIRQ(t *testing.T) {
	r := newRig(t, 2, Defaults())
	r.fab.AblationRDMATargetIRQ = true
	mr := r.nics[1].RegisterMR(StaticSource(make([]byte, 8)), 8)
	r.nodes[0].Spawn("probe", func(tk *simos.Task) {
		r.nics[0].RDMARead(tk, 1, mr.Key(), 8, func([]byte, error) {})
	})
	r.eng.RunUntil(sim.Second)
	irqCPU := r.nodes[1].Cfg.NetIRQCPU
	if r.nodes[1].K.CumIRQHard[irqCPU] == 0 {
		t.Fatal("ablation should charge an IRQ on the target")
	}
}

func TestAttachDuplicatePanics(t *testing.T) {
	r := newRig(t, 1, Defaults())
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate attach should panic")
		}
	}()
	r.fab.Attach(r.nodes[0])
}

func TestXmitScalesWithSize(t *testing.T) {
	f := NewFabric(sim.NewEngine(1), Defaults())
	small, big := f.xmit(64), f.xmit(1<<20)
	if big <= small {
		t.Fatal("larger payloads must take longer")
	}
	// 1 MB at 8 Gb/s = ~1 ms serialization.
	if big < 900*sim.Microsecond || big > 1200*sim.Microsecond {
		t.Fatalf("1MB xmit = %v, want ~1ms", big)
	}
}

func TestSockDropAndRTO(t *testing.T) {
	cfg := Defaults()
	cfg.SockDropMax = 1.0 // always drop when over threshold
	cfg.SockDropPer = 1.0
	cfg.SockDropThresh = 1
	cfg.RTO = 50 * sim.Millisecond
	r := newRig(t, 2, cfg)
	// Distress the receiver: conns above threshold.
	r.nodes[1].K.AddConns(10)
	p := r.nodes[1].Port("svc")
	var gotAt sim.Time
	r.nodes[1].Spawn("rx", func(tk *simos.Task) {
		tk.Recv(p, func(m simos.Message) { gotAt = r.eng.Now() })
	})
	// Relieve the distress before the first retransmission lands.
	r.eng.Schedule(20*sim.Millisecond, func() { r.nodes[1].K.AddConns(-10) })
	r.nodes[0].Spawn("tx", func(tk *simos.Task) {
		r.nics[0].Send(tk, 1, "svc", 64, "ping", nil)
	})
	r.eng.RunUntil(sim.Second)
	if gotAt == 0 {
		t.Fatal("message never delivered after retransmission")
	}
	if gotAt < 50*sim.Millisecond {
		t.Fatalf("delivered at %v, should have waited out an RTO", gotAt)
	}
	if r.nics[1].SockDrops == 0 {
		t.Fatal("drop not accounted")
	}
}

func TestEstablishedPortImmuneToDrops(t *testing.T) {
	cfg := Defaults()
	cfg.SockDropMax = 1.0
	cfg.SockDropPer = 1.0
	cfg.SockDropThresh = 1
	r := newRig(t, 2, cfg)
	r.fab.MarkEstablished("svc")
	r.nodes[1].K.AddConns(10) // permanently distressed
	p := r.nodes[1].Port("svc")
	var gotAt sim.Time
	r.nodes[1].Spawn("rx", func(tk *simos.Task) {
		tk.Recv(p, func(m simos.Message) { gotAt = r.eng.Now() })
	})
	r.nodes[0].Spawn("tx", func(tk *simos.Task) {
		r.nics[0].Send(tk, 1, "svc", 64, "ping", nil)
	})
	r.eng.RunUntil(sim.Second)
	if gotAt == 0 || gotAt > 10*sim.Millisecond {
		t.Fatalf("established-port delivery at %v, want immediate", gotAt)
	}
	if r.nics[1].SockDrops != 0 {
		t.Fatal("established port should never drop")
	}
}

func TestDropGivesUpAfterMaxRetries(t *testing.T) {
	cfg := Defaults()
	cfg.SockDropMax = 1.0
	cfg.SockDropPer = 1.0
	cfg.SockDropThresh = 1
	cfg.RTO = 10 * sim.Millisecond
	cfg.MaxRetries = 2
	r := newRig(t, 2, cfg)
	r.nodes[1].K.AddConns(10) // permanently distressed
	p := r.nodes[1].Port("svc")
	delivered := false
	r.nodes[1].Spawn("rx", func(tk *simos.Task) {
		tk.Recv(p, func(simos.Message) { delivered = true })
	})
	r.nodes[0].Spawn("tx", func(tk *simos.Task) {
		r.nics[0].Send(tk, 1, "svc", 64, "ping", nil)
	})
	r.eng.RunUntil(sim.Second)
	// After MaxRetries the message is forced through (TCP would keep
	// trying; the cap models eventual success, not loss).
	if !delivered {
		t.Fatal("message should eventually deliver at the retry cap")
	}
	if r.nics[1].SockDrops != 2 {
		t.Fatalf("drops = %d, want exactly MaxRetries", r.nics[1].SockDrops)
	}
}

func TestLargeSendRaisesAckInterrupts(t *testing.T) {
	r := newRig(t, 2, Defaults())
	r.nodes[1].Port("sink")
	size := 256 << 10 // 256 KB -> 64 ACK interrupts at 4KB spacing
	r.nodes[0].Spawn("tx", func(tk *simos.Task) {
		r.nics[0].Send(tk, 1, "sink", size, nil, nil)
	})
	r.eng.RunUntil(sim.Second)
	irqCPU := r.nodes[0].Cfg.NetIRQCPU
	acks := r.nodes[0].K.CumIRQHard[irqCPU]
	want := uint64(size / r.fab.Cfg.AckEvery)
	if acks != want {
		t.Fatalf("sender ACK interrupts = %d, want %d", acks, want)
	}
}

func TestSendTxCPUScalesWithSize(t *testing.T) {
	measure := func(size int) sim.Time {
		r := newRig(t, 2, Defaults())
		r.nodes[1].Port("sink")
		var done sim.Time
		r.nodes[0].Spawn("tx", func(tk *simos.Task) {
			r.nics[0].Send(tk, 1, "sink", size, nil, func() { done = r.eng.Now() })
		})
		r.eng.RunUntil(sim.Second)
		return done
	}
	small, big := measure(1<<10), measure(1<<20)
	if big <= small {
		t.Fatal("larger sends must cost more sender CPU")
	}
	// 1 MB at 500 MB/s -> ~2ms of kernel time.
	if big < 1500*sim.Microsecond || big > 4*sim.Millisecond {
		t.Fatalf("1MB TX completion at %v, want ~2ms", big)
	}
}

func TestRDMACompareSwapAppliesAndFences(t *testing.T) {
	r := newRig(t, 3, Defaults())
	word := make([]byte, 8)
	mr := r.nics[2].RegisterWritableMR(StaticSource(word), len(word), func(b []byte) { copy(word, b) })

	// Node 0 swaps 0 -> 7; node 1 then tries the same 0 -> 9 swap and
	// must lose, observing 7.
	var prev0, prev1 uint64
	r.nodes[0].Spawn("cas0", func(tk *simos.Task) {
		r.nics[0].RDMACompareSwap(tk, 2, mr.Key(), 0, 7, func(prev uint64, err error) {
			if err != nil {
				t.Errorf("cas0: %v", err)
			}
			prev0 = prev
		})
	})
	r.eng.RunUntil(sim.Second)
	r.nodes[1].Spawn("cas1", func(tk *simos.Task) {
		r.nics[1].RDMACompareSwap(tk, 2, mr.Key(), 0, 9, func(prev uint64, err error) {
			if err != nil {
				t.Errorf("cas1: %v", err)
			}
			prev1 = prev
		})
	})
	r.eng.RunUntil(2 * sim.Second)
	if prev0 != 0 {
		t.Fatalf("first CAS saw prev=%d, want 0", prev0)
	}
	if prev1 != 7 {
		t.Fatalf("second CAS saw prev=%d, want 7 (must lose)", prev1)
	}
	if got := binary.LittleEndian.Uint64(word); got != 7 {
		t.Fatalf("word = %d, want 7 (losing swap must not apply)", got)
	}
}

func TestRDMACompareSwapNoTargetCPUInvolvement(t *testing.T) {
	r := newRig(t, 2, Defaults())
	word := make([]byte, 8)
	mr := r.nics[1].RegisterWritableMR(StaticSource(word), len(word), func(b []byte) { copy(word, b) })
	r.nodes[0].Spawn("cas", func(tk *simos.Task) {
		r.nics[0].RDMACompareSwap(tk, 1, mr.Key(), 0, 42, nil2(t))
	})
	r.eng.RunUntil(sim.Second)
	for c := 0; c < 2; c++ {
		if r.nodes[1].K.CumIRQHard[c] != 0 {
			t.Fatalf("target CPU%d saw %d IRQs from an atomic, want 0",
				c, r.nodes[1].K.CumIRQHard[c])
		}
	}
	if r.nodes[1].K.CtxSwitches != 0 {
		t.Fatalf("target did %d context switches, want 0", r.nodes[1].K.CtxSwitches)
	}
	if r.nics[0].RDMAAtomics != 1 {
		t.Fatalf("RDMAAtomics = %d, want 1", r.nics[0].RDMAAtomics)
	}
}

// nil2 adapts a test-failing error check to the CAS completion.
func nil2(t *testing.T) func(uint64, error) {
	return func(_ uint64, err error) {
		if err != nil {
			t.Errorf("cas: %v", err)
		}
	}
}

func TestRDMACompareSwapErrors(t *testing.T) {
	r := newRig(t, 2, Defaults())
	ro := r.nics[1].RegisterMR(StaticSource(make([]byte, 8)), 8)
	small := make([]byte, 4)
	smallMR := r.nics[1].RegisterWritableMR(StaticSource(small), 4, func(b []byte) { copy(small, b) })
	var errRO, errKey, errLen error
	r.nodes[0].Spawn("cas", func(tk *simos.Task) {
		r.nics[0].RDMACompareSwap(tk, 1, ro.Key(), 0, 1, func(_ uint64, err error) {
			errRO = err
			r.nics[0].RDMACompareSwap(tk, 1, 9999, 0, 1, func(_ uint64, err error) {
				errKey = err
				r.nics[0].RDMACompareSwap(tk, 1, smallMR.Key(), 0, 1, func(_ uint64, err error) {
					errLen = err
				})
			})
		})
	})
	r.eng.RunUntil(sim.Second)
	if errRO != ErrPermission {
		t.Fatalf("read-only region: %v, want ErrPermission", errRO)
	}
	if errKey != ErrBadKey {
		t.Fatalf("bad key: %v, want ErrBadKey", errKey)
	}
	if errLen != ErrLength {
		t.Fatalf("short region: %v, want ErrLength", errLen)
	}
}

func TestRDMACompareSwapFrozenTargetStillServes(t *testing.T) {
	// The property the lease design rests on: a frozen host's NIC still
	// executes atomics, so a standby can seize the lease word even when
	// the old primary's host is wedged.
	r := newRig(t, 2, Defaults())
	word := make([]byte, 8)
	mr := r.nics[1].RegisterWritableMR(StaticSource(word), len(word), func(b []byte) { copy(word, b) })
	r.nodes[1].Freeze()
	var prev uint64
	var gotErr error
	r.nodes[0].Spawn("cas", func(tk *simos.Task) {
		r.nics[0].RDMACompareSwap(tk, 1, mr.Key(), 0, 5, func(p uint64, err error) {
			prev, gotErr = p, err
		})
	})
	r.eng.RunUntil(sim.Second)
	if gotErr != nil {
		t.Fatalf("CAS against frozen target: %v", gotErr)
	}
	if prev != 0 || binary.LittleEndian.Uint64(word) != 5 {
		t.Fatalf("prev=%d word=%d, want 0/5", prev, binary.LittleEndian.Uint64(word))
	}
}

func TestRDMACompareSwapBatch(t *testing.T) {
	r := newRig(t, 3, Defaults())
	words := make([][]byte, 3)
	keys := make([]uint32, 3)
	for i := range words {
		w := make([]byte, 8)
		words[i] = w
		keys[i] = r.nics[2].RegisterWritableMR(StaticSource(w), len(w), func(b []byte) { copy(w, b) }).Key()
	}
	binary.LittleEndian.PutUint64(words[1], 99) // second CAS must lose

	var results []CASResult
	r.nodes[0].Spawn("casbatch", func(tk *simos.Task) {
		r.nics[0].RDMACompareSwapBatch(tk, []CASReq{
			{Target: 2, Key: keys[0], Compare: 0, Swap: 7},
			{Target: 2, Key: keys[1], Compare: 0, Swap: 8},
			{Target: 2, Key: keys[2], Compare: 0, Swap: 9},
			{Target: 2, Key: 0xdead, Compare: 0, Swap: 1},
		}, func(res []CASResult) { results = append([]CASResult(nil), res...) })
	})
	r.eng.RunUntil(sim.Second)

	if len(results) != 4 {
		t.Fatalf("got %d results, want 4", len(results))
	}
	if results[0].Err != nil || results[0].Prev != 0 {
		t.Fatalf("wr0: prev=%d err=%v, want win from 0", results[0].Prev, results[0].Err)
	}
	if results[1].Err != nil || results[1].Prev != 99 {
		t.Fatalf("wr1: prev=%d err=%v, want loss observing 99", results[1].Prev, results[1].Err)
	}
	if results[2].Err != nil || results[2].Prev != 0 {
		t.Fatalf("wr2: prev=%d err=%v, want win from 0", results[2].Prev, results[2].Err)
	}
	if results[3].Err != ErrBadKey {
		t.Fatalf("wr3: err=%v, want ErrBadKey (isolated per-WR failure)", results[3].Err)
	}
	if got := binary.LittleEndian.Uint64(words[0]); got != 7 {
		t.Fatalf("word0 = %d, want 7", got)
	}
	if got := binary.LittleEndian.Uint64(words[1]); got != 99 {
		t.Fatalf("word1 = %d, want 99 (losing swap must not apply)", got)
	}
	if got := binary.LittleEndian.Uint64(words[2]); got != 9 {
		t.Fatalf("word2 = %d, want 9", got)
	}
	if r.nics[0].DoorbellBatches != 1 {
		t.Fatalf("DoorbellBatches = %d, want 1 (one doorbell for the whole batch)", r.nics[0].DoorbellBatches)
	}
	if r.nics[0].RDMAAtomics != 4 {
		t.Fatalf("RDMAAtomics = %d, want 4", r.nics[0].RDMAAtomics)
	}
}

func TestRDMACompareSwapBatchRaceSerializes(t *testing.T) {
	// Two initiators batch-CAS the same word at the same instant:
	// exactly one must win — the responder NIC is the serialization
	// point for batched atomics exactly as for single ones.
	r := newRig(t, 3, Defaults())
	word := make([]byte, 8)
	key := r.nics[2].RegisterWritableMR(StaticSource(word), len(word), func(b []byte) { copy(word, b) }).Key()

	var res [2][]CASResult
	for i := 0; i < 2; i++ {
		i := i
		r.nodes[i].Spawn("rival", func(tk *simos.Task) {
			r.nics[i].RDMACompareSwapBatch(tk, []CASReq{
				{Target: 2, Key: key, Compare: 0, Swap: uint64(10 + i)},
			}, func(rs []CASResult) { res[i] = append([]CASResult(nil), rs...) })
		})
	}
	r.eng.RunUntil(sim.Second)

	wins := 0
	for i := 0; i < 2; i++ {
		if len(res[i]) != 1 || res[i][0].Err != nil {
			t.Fatalf("rival %d: results %+v", i, res[i])
		}
		if res[i][0].Prev == 0 {
			wins++
		}
	}
	if wins != 1 {
		t.Fatalf("%d rivals won the same CAS, want exactly 1", wins)
	}
	got := binary.LittleEndian.Uint64(word)
	if got != 10 && got != 11 {
		t.Fatalf("word = %d, want the single winner's swap", got)
	}
}
