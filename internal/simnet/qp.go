// QP/fd resource model: connection establishment as a first-class,
// budgeted resource.
//
// The base fabric routes one-sided operations by (target, key) alone,
// which models the data path but hides the control-plane cost that
// dominates at scale: every monitored back-end needs a connected
// queue pair, each QP holds a file descriptor (the CM event channel /
// socket on the emulated path), and dial attempts burn initiator CPU
// and fabric round trips. RDMAvisor's observation is that at O(10k)
// peers these resources — not the reads — become the bottleneck.
//
// This file gives the initiator NIC that missing accounting: Dial
// establishes a QP (consuming an fd for its lifetime), CloseQP
// releases it, SetFDLimit models per-process fd exhaustion, and
// Fabric.ResetListener models a back-end's listener restarting (all
// QPs targeting it transition to the error state, as a real CM
// teardown would force). The connpool layer above turns QP death into
// an epoch bump so no stale read is ever served.
package simnet

import (
	"errors"

	"rdmamon/internal/sim"
	"rdmamon/internal/simos"
)

// Dial-path errors.
var (
	// ErrFDLimit: the initiating process is out of file descriptors —
	// the dial fails locally, before anything crosses the wire.
	ErrFDLimit = errors.New("simnet: file descriptor budget exhausted")
	// ErrRefused: the target refused the connection request (listener
	// backlog overrun during a dial storm, or listener down).
	ErrRefused = errors.New("simnet: connection refused")
)

// DialVerdict is a fault model's decision about one dial attempt.
type DialVerdict struct {
	Refuse bool     // reject the connection request at the target
	Delay  sim.Time // extra connection-manager latency
}

// DialFaulter is an optional extension of FaultModel: a fault model
// that also implements it perturbs connection establishment. Checked
// by type assertion so existing fault models keep working unchanged.
type DialFaulter interface {
	Dial(from, target int) DialVerdict
}

// QP is a connected queue pair from an initiator NIC to a target
// node. It exists so connection lifecycle (dial, reset, close, fd
// accounting) is observable; the one-sided data path still routes by
// (target, key).
type QP struct {
	nic    *NIC
	target int
	id     uint64
	valid  bool // false after a listener reset: the QP is in error state
	open   bool // still holds an initiator fd (until CloseQP)
}

// Target returns the node this QP connects to.
func (q *QP) Target() int { return q.target }

// Valid reports whether the QP is still usable. A QP invalidated by a
// listener reset keeps its fd until CloseQP — exactly the leak an
// unclosed real QP would be.
func (q *QP) Valid() bool { return q != nil && q.valid }

// SetFDLimit caps the number of fds (live QPs plus in-flight dials)
// this NIC's node may hold; 0 removes the cap. Lowering the limit
// below current usage does not kill existing QPs — it only makes new
// dials fail, like hitting RLIMIT_NOFILE.
func (n *NIC) SetFDLimit(limit int) { n.fdLimit = limit }

// FDLimit returns the current cap (0 = unlimited).
func (n *NIC) FDLimit() int { return n.fdLimit }

// FDsInUse returns fds currently held: live QPs plus in-flight dials.
func (n *NIC) FDsInUse() int { return n.fdsUsed }

// QPsOpen returns the number of established, unclosed QPs.
func (n *NIC) QPsOpen() int { return len(n.qps) }

// Dial establishes a QP to target from task t. The fd is consumed for
// the whole attempt; a failed dial returns it. then runs in t's
// context with the QP or an error (ErrFDLimit, ErrRefused, ErrNoRoute,
// ErrTimeout).
func (n *NIC) Dial(t *simos.Task, target int, then func(*QP, error)) {
	f := n.fab
	t.Compute(f.Cfg.DialCost, func() {
		t.Await(func(v any) {
			c := v.(dialCompletion)
			then(c.qp, c.err)
		})
		if n.fdLimit > 0 && n.fdsUsed >= n.fdLimit {
			n.DialErrors++
			// EMFILE is synchronous in real life; charge one engine
			// event so completion ordering stays causal.
			f.Eng.After(0, func() { t.Resume(dialCompletion{err: ErrFDLimit}) })
			return
		}
		n.fdsUsed++
		fail := func(after sim.Time, err error) {
			n.DialErrors++
			f.Eng.After(after, func() {
				n.fdsUsed--
				t.Resume(dialCompletion{err: err})
			})
		}
		extra := f.heteroLat(n.node.ID, target)
		if df, ok := f.Faults.(DialFaulter); ok && f.Faults != nil {
			v := df.Dial(n.node.ID, target)
			if v.Refuse {
				// Refused at the target: one round trip wasted.
				fail(2*f.xmit(64)+v.Delay, ErrRefused)
				return
			}
			extra += v.Delay
		}
		tn := f.nics[target]
		if tn == nil {
			fail(f.xmit(64), ErrNoRoute)
			return
		}
		if tn.node.Down() {
			// Dead target: the CM request times out like any transport op.
			fail(f.Cfg.RDMATimeout, ErrTimeout)
			return
		}
		// Connection-manager exchange: request out, target NIC service,
		// reply back.
		f.Eng.After(2*f.xmit(64)+f.Cfg.NICService+extra, func() {
			if tn.node.Down() {
				n.DialErrors++
				n.fdsUsed--
				t.Resume(dialCompletion{err: ErrTimeout})
				return
			}
			n.qpSeq++
			qp := &QP{nic: n, target: target, id: n.qpSeq, valid: true, open: true}
			if n.qps == nil {
				n.qps = make(map[uint64]*QP)
			}
			n.qps[qp.id] = qp
			n.Dials++
			t.Resume(dialCompletion{qp: qp})
		})
	})
}

type dialCompletion struct {
	qp  *QP
	err error
}

// CloseQP tears down a QP and releases its fd. Idempotent.
func (n *NIC) CloseQP(q *QP) {
	if q == nil || !q.open {
		return
	}
	q.open = false
	q.valid = false
	delete(n.qps, q.id)
	n.fdsUsed--
}

// ResetListener models node's accept path restarting (process
// restart, listener socket bounce): every established QP targeting it
// — from any initiator — transitions to the error state. Initiator
// fds stay held until their owners CloseQP, which is how the real
// leak works too. No random draws, so installed fault plans replay
// bit-identically.
func (f *Fabric) ResetListener(node int) {
	for _, nic := range f.nics {
		for _, qp := range nic.qps {
			if qp.target == node && qp.valid {
				qp.valid = false
				nic.QPResets++
			}
		}
	}
}
