package simnet

import (
	"testing"

	"rdmamon/internal/sim"
	"rdmamon/internal/simos"
)

// The deliver/readback path must not allocate per op at steady state
// (DESIGN.md §13): reads DMA into the initiator's posted buffer,
// writes and atomics stage through the fabric's pooled buffers. These
// tests pin each reuse mechanism so it cannot silently regress.

func TestRDMAReadIntoUsesPostedBuffer(t *testing.T) {
	r := newRig(t, 2, Defaults())
	region := make([]byte, 64)
	for i := range region {
		region[i] = byte(i)
	}
	mr := r.nics[1].RegisterMR(StaticSource(region), len(region))
	buf := make([]byte, 64)
	var got []byte
	r.nodes[0].Spawn("rd", func(tk *simos.Task) {
		r.nics[0].RDMAReadInto(tk, 1, mr.Key(), 64, buf, func(data []byte, err error) {
			if err != nil {
				t.Errorf("read: %v", err)
			}
			got = data
		})
	})
	r.eng.RunUntil(sim.Second)
	if got == nil {
		t.Fatal("read never completed")
	}
	if &got[0] != &buf[0] {
		t.Fatal("completion data does not alias the posted buffer")
	}
	for i := range got {
		if got[i] != byte(i) {
			t.Fatalf("byte %d = %d", i, got[i])
		}
	}
}

func TestRDMAReadBatchIntoUsesScratch(t *testing.T) {
	r := newRig(t, 3, Defaults())
	var mrs []*MR
	for i := 1; i <= 2; i++ {
		region := make([]byte, 32)
		region[0] = byte(i)
		mrs = append(mrs, r.nics[i].RegisterMR(StaticSource(region), 32))
	}
	bufs := [][]byte{make([]byte, 32), make([]byte, 32)}
	scratch := make([]ReadResult, 0, 8)
	reqs := []ReadReq{
		{Target: 1, Key: mrs[0].Key(), Length: 32, Buf: bufs[0]},
		{Target: 2, Key: mrs[1].Key(), Length: 32, Buf: bufs[1]},
	}
	var got []ReadResult
	r.nodes[0].Spawn("batch", func(tk *simos.Task) {
		r.nics[0].RDMAReadBatchInto(tk, reqs, scratch, func(results []ReadResult) {
			got = results
		})
	})
	r.eng.RunUntil(sim.Second)
	if got == nil {
		t.Fatal("batch never completed")
	}
	if &got[0] != &scratch[:1][0] {
		t.Fatal("batch results do not alias the caller's scratch")
	}
	for i, res := range got {
		if res.Err != nil {
			t.Fatalf("slot %d: %v", i, res.Err)
		}
		if &res.Data[0] != &bufs[i][0] {
			t.Fatalf("slot %d data does not alias its posted buffer", i)
		}
		if res.Data[0] != byte(i+1) {
			t.Fatalf("slot %d read %d", i, res.Data[0])
		}
	}
}

// TestPayloadPoolZeroAlloc pins the free list itself: a warm
// get/put cycle allocates nothing.
func TestPayloadPoolZeroAlloc(t *testing.T) {
	f := NewFabric(sim.NewEngine(1), Defaults())
	f.putBuf(make([]byte, 256)) // warm the pool
	allocs := testing.AllocsPerRun(200, func() {
		b := f.getBuf(144)
		f.putBuf(b)
	})
	if allocs != 0 {
		t.Fatalf("warm getBuf/putBuf allocates %.1f objects/op, want 0", allocs)
	}
}

// TestWriteStagingBufferRecycled runs sequential one-sided writes and
// checks every write after the first stages through the same pooled
// backing array instead of allocating a fresh payload copy.
func TestWriteStagingBufferRecycled(t *testing.T) {
	r := newRig(t, 2, Defaults())
	slot := make([]byte, 64)
	var staged []*byte
	mr := r.nics[1].RegisterWritableMR(StaticSource(slot), len(slot), func(b []byte) {
		staged = append(staged, &b[0])
		copy(slot, b)
	})
	data := []byte{1, 2, 3, 4}
	const writes = 5
	r.nodes[0].Spawn("wr", func(tk *simos.Task) {
		var loop func(i int)
		loop = func(i int) {
			if i >= writes {
				return
			}
			r.nics[0].RDMAWrite(tk, 1, mr.Key(), data, func(err error) {
				if err != nil {
					t.Errorf("write %d: %v", i, err)
				}
				loop(i + 1)
			})
		}
		loop(0)
	})
	r.eng.RunUntil(sim.Second)
	if len(staged) != writes {
		t.Fatalf("saw %d writes, want %d", len(staged), writes)
	}
	for i := 1; i < len(staged); i++ {
		if staged[i] != staged[0] {
			t.Fatalf("write %d staged through a fresh buffer — free list not reused", i)
		}
	}
	if slot[0] != 1 || slot[3] != 4 {
		t.Fatalf("slot contents %v", slot[:4])
	}
}
