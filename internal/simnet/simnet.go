// Package simnet models an RDMA-capable cluster interconnect (an
// InfiniBand-style fabric) connecting simos nodes.
//
// Two communication semantics are provided, mirroring §2 of the paper:
//
//   - Channel semantics (Send / ports): every message costs kernel CPU
//     on the sender, crosses the wire, raises an interrupt on the
//     receiver and requires the receiving process to be scheduled
//     before it is consumed. This is the sockets (IPoIB) path.
//
//   - Memory semantics (RDMARead / RDMAWrite against registered memory
//     regions): the initiating NIC talks directly to the target NIC,
//     which DMAs the registered region *without any target-CPU
//     involvement* — no interrupt, no process wakeup, no scheduling.
//     This is the property the paper's monitoring schemes exploit.
//
// Memory regions carry protection keys and a read-only flag; a remote
// write to a read-only region fails with ErrPermission, implementing
// the paper's §6 answer to the security concern of exposing kernel
// memory.
package simnet

import (
	"encoding/binary"
	"errors"
	"fmt"

	"rdmamon/internal/sim"
	"rdmamon/internal/simos"
)

// Errors surfaced as RDMA completion statuses.
var (
	ErrNoRoute    = errors.New("simnet: no such node")
	ErrBadKey     = errors.New("simnet: invalid remote key")
	ErrPermission = errors.New("simnet: remote access permission denied")
	ErrLength     = errors.New("simnet: access beyond region bounds")
	// ErrTimeout is the initiator-side completion when the target is
	// dead, partitioned away, or the fabric dropped the operation: the
	// HCA exhausts its transport retries and fails the work request.
	ErrTimeout = errors.New("simnet: transport retry limit exceeded")
)

// ChannelVerdict is a fault model's decision about one channel-
// semantics delivery attempt.
type ChannelVerdict struct {
	Drop  bool     // lose the packet (sender's TCP retransmits after RTO)
	Dup   bool     // deliver a duplicate as well
	Delay sim.Time // extra one-way latency
}

// RDMAVerdict is a fault model's decision about one one-sided
// operation.
type RDMAVerdict struct {
	Fail  bool     // complete with ErrTimeout after the transport timeout
	Delay sim.Time // extra fabric latency
}

// FaultModel lets a fault-injection layer (internal/faults) perturb the
// fabric. Both hooks are consulted once per attempt, on the engine
// goroutine, so a deterministic model yields a deterministic run.
type FaultModel interface {
	Channel(from, dst, size int) ChannelVerdict
	RDMA(from, target int) RDMAVerdict
}

// ExternalID is the node-ID space used for endpoints outside the
// simulated cluster (e.g. client machines driving the workload). IDs
// at or below ExternalBase are external.
const ExternalBase = -1

// Config holds the fabric timing constants, calibrated to a 4x
// InfiniBand network with an IPoIB sockets stack (paper testbed).
type Config struct {
	WireLatency  sim.Time // one-way propagation + switch
	BandwidthBps int64    // payload serialization rate

	SockTxCost sim.Time // sender kernel CPU per sockets message
	TxCPUBps   int64    // additional sender kernel CPU: bytes/sec of copy+checksum work
	AckEvery   int      // one ACK interrupt returns to the sender per this many bytes

	NICService   sim.Time // target NIC processing per RDMA op
	RDMAPostCost sim.Time // initiator CPU to post a work request
	// RDMAPostWRCost is the marginal initiator CPU for each work
	// request after the first in a doorbell-batched post: building
	// another WQE on an already-mapped queue costs far less than the
	// doorbell ring itself, which is what makes multi-WR posting pay
	// (the Storm/RDMAvisor observation).
	RDMAPostWRCost sim.Time

	// TCP-over-IPoIB loss behaviour: a message arriving at a
	// CPU-distressed node may be dropped at the socket layer (buffers
	// overrun because the consumer is starved) and is retransmitted
	// after RTO, Linux's 200 ms minimum. One-sided RDMA traffic never
	// takes this path — the HCA completes it reliably in hardware —
	// which is a large part of why socket-based monitoring of a hot
	// server observes multi-hundred-ms stalls (paper Table 1 maxima).
	SockDropMax    float64  // cap on per-message drop probability (0 disables)
	SockDropPer    float64  // drop probability added per backlogged connection over the threshold
	SockDropThresh int      // connection backlog where dropping begins
	RTO            sim.Time // retransmission timeout
	MaxRetries     int

	// RDMATimeout is how long the initiating NIC takes to complete a
	// work request with ErrTimeout when the target is unreachable
	// (transport retry counter exhausted in firmware).
	RDMATimeout sim.Time

	// DialCost is the initiator CPU charged to set up one connection
	// (allocate the QP, drive the CM exchange).
	DialCost sim.Time
}

// Defaults returns fabric constants calibrated to the paper's testbed.
func Defaults() Config {
	return Config{
		WireLatency:    5 * sim.Microsecond,
		BandwidthBps:   8e9,
		SockTxCost:     15 * sim.Microsecond,
		TxCPUBps:       500 << 20,
		AckEvery:       4 << 10,
		NICService:     2 * sim.Microsecond,
		RDMAPostCost:   1 * sim.Microsecond,
		RDMAPostWRCost: 250 * sim.Nanosecond,
		SockDropMax:    0.35,
		SockDropPer:    0.04,
		SockDropThresh: 12,
		RTO:            200 * sim.Millisecond,
		MaxRetries:     8,
		RDMATimeout:    20 * sim.Millisecond,
		DialCost:       3 * sim.Microsecond,
	}
}

func (c *Config) sanitize() {
	d := Defaults()
	if c.WireLatency <= 0 {
		c.WireLatency = d.WireLatency
	}
	if c.BandwidthBps <= 0 {
		c.BandwidthBps = d.BandwidthBps
	}
	if c.NICService <= 0 {
		c.NICService = d.NICService
	}
	if c.TxCPUBps <= 0 {
		c.TxCPUBps = d.TxCPUBps
	}
	if c.AckEvery <= 0 {
		c.AckEvery = d.AckEvery
	}
	// Zero means default for the loss model; explicitly negative
	// SockDropMax disables it.
	if c.SockDropMax == 0 {
		c.SockDropMax = d.SockDropMax
		if c.SockDropPer == 0 {
			c.SockDropPer = d.SockDropPer
		}
		if c.SockDropThresh == 0 {
			c.SockDropThresh = d.SockDropThresh
		}
	}
	if c.RTO <= 0 {
		c.RTO = d.RTO
	}
	if c.MaxRetries <= 0 {
		c.MaxRetries = d.MaxRetries
	}
	if c.RDMATimeout <= 0 {
		c.RDMATimeout = d.RDMATimeout
	}
	if c.RDMAPostWRCost <= 0 {
		c.RDMAPostWRCost = d.RDMAPostWRCost
	}
	if c.DialCost <= 0 {
		c.DialCost = d.DialCost
	}
}

// Fabric is the cluster interconnect.
type Fabric struct {
	Eng *sim.Engine
	Cfg Config

	nics        map[int]*NIC
	externals   map[int]func(simos.Message)
	groups      map[string][]groupMember
	established map[string]bool

	// nodeLat is per-node extra one-way fabric latency (fleet
	// heterogeneity: a node behind a slower NIC or an extra switch
	// hop). Empty — the default — costs nothing on any path, so
	// homogeneous fabrics stay bit-identical to the seed model.
	nodeLat map[int]sim.Time

	// Faults, when non-nil, perturbs deliveries and RDMA operations
	// (see internal/faults). Install via SetFaults before traffic runs.
	Faults FaultModel

	// bufs is the fabric-level payload free list: write and atomic
	// operations borrow a staging buffer at post time and return it
	// once the responder consumed it, so steady-state one-sided
	// traffic allocates nothing per op. Safe without locking because
	// every engine callback runs on the single engine goroutine.
	bufs [][]byte

	// AblationRDMATargetIRQ, when set, charges a network interrupt on
	// the target node for every RDMA operation — deliberately breaking
	// the one-sided property to quantify its contribution (DESIGN.md
	// ablation 2).
	AblationRDMATargetIRQ bool
}

type groupMember struct {
	node int
	port string
}

// NewFabric creates a fabric on eng.
func NewFabric(eng *sim.Engine, cfg Config) *Fabric {
	cfg.sanitize()
	return &Fabric{
		Eng:         eng,
		Cfg:         cfg,
		nics:        make(map[int]*NIC),
		externals:   make(map[int]func(simos.Message)),
		groups:      make(map[string][]groupMember),
		established: make(map[string]bool),
	}
}

// MarkEstablished exempts a port from socket-layer drops: traffic to
// it flows over long-lived established connections (persistent HTTP
// sessions), which ride out receiver distress inside the TCP window
// rather than being dropped at the listen backlog. Per-poll monitoring
// exchanges are NOT established in this sense — each poll behaves like
// fresh connection traffic and takes the drop+RTO path when the
// receiver is distressed.
func (f *Fabric) MarkEstablished(port string) { f.established[port] = true }

// SetNodeLatency assigns node an extra one-way fabric latency on top
// of the global WireLatency: every channel message, one-sided
// operation and dial touching the node (as either endpoint) pays it.
// This is the NIC-latency axis of fleet heterogeneity — a slow or
// distant NIC delays traffic in both directions without perturbing
// any other node's timing. d <= 0 removes the entry.
func (f *Fabric) SetNodeLatency(node int, d sim.Time) {
	if d <= 0 {
		delete(f.nodeLat, node)
		return
	}
	if f.nodeLat == nil {
		f.nodeLat = make(map[int]sim.Time)
	}
	f.nodeLat[node] = d
}

// NodeLatency returns the extra one-way latency assigned to node.
func (f *Fabric) NodeLatency(node int) sim.Time { return f.nodeLat[node] }

// heteroLat is the extra latency a from->to traversal pays for the
// endpoints' per-node latencies. The empty-map fast path keeps
// homogeneous fabrics allocation- and branch-cheap.
func (f *Fabric) heteroLat(from, to int) sim.Time {
	if len(f.nodeLat) == 0 {
		return 0
	}
	return f.nodeLat[from] + f.nodeLat[to]
}

// xmit returns the wire time for a payload of size bytes.
func (f *Fabric) xmit(size int) sim.Time {
	return f.Cfg.WireLatency + sim.Time(int64(size)*8*int64(sim.Second)/f.Cfg.BandwidthBps)
}

// maxPooledBufs bounds the payload free list; beyond it buffers are
// dropped for the GC (a fleet's steady state needs only a handful —
// one per op concurrently in flight between post and sink).
const maxPooledBufs = 128

// getBuf borrows an n-byte staging buffer from the free list.
func (f *Fabric) getBuf(n int) []byte {
	for i := len(f.bufs) - 1; i >= 0; i-- {
		if cap(f.bufs[i]) >= n {
			b := f.bufs[i][:n]
			last := len(f.bufs) - 1
			f.bufs[i] = f.bufs[last]
			f.bufs = f.bufs[:last]
			return b
		}
	}
	return make([]byte, n)
}

// putBuf returns a staging buffer once its contents are dead.
func (f *Fabric) putBuf(b []byte) {
	if cap(b) > 0 && len(f.bufs) < maxPooledBufs {
		f.bufs = append(f.bufs, b[:0])
	}
}

// Attach gives node a NIC on this fabric.
func (f *Fabric) Attach(node *simos.Node) *NIC {
	if _, dup := f.nics[node.ID]; dup {
		panic(fmt.Sprintf("simnet: node %d already attached", node.ID))
	}
	nic := &NIC{fab: f, node: node, mrs: make(map[uint32]*MR)}
	f.nics[node.ID] = nic
	return nic
}

// NIC returns the adapter of the given node, or nil.
func (f *Fabric) NIC(node int) *NIC { return f.nics[node] }

// RegisterExternal installs a sink for messages addressed to an
// external endpoint (a client machine outside the modeled cluster).
// Messages to it incur wire latency but no simulated host costs.
func (f *Fabric) RegisterExternal(id int, sink func(simos.Message)) {
	if id > ExternalBase {
		panic("simnet: external IDs must be <= ExternalBase")
	}
	f.externals[id] = sink
}

// Inject delivers a message from external endpoint from to a cluster
// node's port, modeling request arrival from a client machine: it
// crosses the wire and raises a receive interrupt like any sockets
// traffic.
func (f *Fabric) Inject(from, dst int, port string, size int, payload any) {
	f.deliver(from, dst, port, size, payload)
}

// deliver moves a message to dst (cluster node or external sink).
func (f *Fabric) deliver(from, dst int, port string, size int, payload any) {
	m := simos.Message{From: from, Size: size, Payload: payload, SentAt: f.Eng.Now()}
	f.attempt(m, dst, port, 0)
}

// SetFaults installs (or clears, with nil) a fault model.
func (f *Fabric) SetFaults(fm FaultModel) { f.Faults = fm }

func (f *Fabric) attempt(m simos.Message, dst int, port string, try int) {
	extra := f.heteroLat(m.From, dst)
	if f.Faults != nil {
		v := f.Faults.Channel(m.From, dst, m.Size)
		if v.Drop {
			// Lost on the wire: the sender's TCP retransmits after RTO
			// (each retransmission faces the fault model again — a
			// flapping link can eat the whole retry budget).
			f.retry(m, dst, port, try)
			return
		}
		if v.Dup && try == 0 {
			f.Eng.After(f.Cfg.WireLatency, func() { f.transmit(m, dst, port, try, 0) })
		}
		extra += v.Delay
	}
	f.transmit(m, dst, port, try, extra)
}

func (f *Fabric) retry(m simos.Message, dst int, port string, try int) {
	if try < f.Cfg.MaxRetries {
		f.Eng.After(f.Cfg.RTO, func() { f.attempt(m, dst, port, try+1) })
	}
}

func (f *Fabric) transmit(m simos.Message, dst int, port string, try int, extra sim.Time) {
	f.Eng.After(f.xmit(m.Size)+extra, func() {
		if sink, ok := f.externals[dst]; ok {
			sink(m)
			return
		}
		nic := f.nics[dst]
		if nic == nil {
			return // dropped: no such host
		}
		node := nic.node
		if node.Down() {
			// Dead host: the packet vanishes; the sender's TCP keeps
			// retransmitting into the void until its retry budget ends.
			f.retry(m, dst, port, try)
			return
		}
		node.RaiseNetIRQ(func() {
			node.K.AddNetRx(m.Size)
			if !f.established[port] && try < f.Cfg.MaxRetries && f.dropAtSocket(node) {
				// Socket buffer overrun: the packet cost RX processing
				// but never reaches the application; the sender's TCP
				// retransmits after RTO.
				nic.SockDrops++
				f.Eng.After(f.Cfg.RTO, func() { f.attempt(m, dst, port, try+1) })
				return
			}
			if p := node.LookupPort(port); p != nil {
				p.Deliver(m)
			}
		})
	})
}

// dropAtSocket decides whether a channel-semantics message is lost at
// a distressed receiver: the drop probability rises with the node's
// connection backlog (queued + in-service work) beyond the threshold —
// the socket-buffer overrun regime of an overloaded server.
func (f *Fabric) dropAtSocket(node *simos.Node) bool {
	if f.Cfg.SockDropMax <= 0 {
		return false
	}
	over := node.K.Conns() - f.Cfg.SockDropThresh
	if over <= 0 {
		return false
	}
	p := f.Cfg.SockDropPer * float64(over)
	if p > f.Cfg.SockDropMax {
		p = f.Cfg.SockDropMax
	}
	return f.Eng.Rand().Float64() < p
}

// JoinGroup subscribes a node's port to a hardware multicast group
// (§6 of the paper: IBA multicast uses channel semantics).
func (f *Fabric) JoinGroup(group string, node int, port string) {
	f.groups[group] = append(f.groups[group], groupMember{node: node, port: port})
}

// NIC is one node's adapter: the attachment point for both channel and
// memory semantics.
type NIC struct {
	fab     *Fabric
	node    *simos.Node
	mrs     map[uint32]*MR
	nextKey uint32

	// Connection/fd resource model (see qp.go).
	qps     map[uint64]*QP
	qpSeq   uint64
	fdLimit int
	fdsUsed int

	// Counters (NIC firmware statistics).
	RDMAReads       uint64
	RDMAWrites      uint64
	RDMAAtomics     uint64
	RDMAErrors      uint64
	SendsPosted     uint64
	SockDrops       uint64
	DoorbellBatches uint64
	Dials           uint64
	DialErrors      uint64
	QPResets        uint64
}

// Node returns the node this NIC belongs to.
func (n *NIC) Node() *simos.Node { return n.node }

// Fabric returns the fabric the NIC is attached to.
func (n *NIC) Fabric() *Fabric { return n.fab }

// Send transmits a message using channel semantics from within task t:
// the kernel send path costs CPU in t's context, then the message
// crosses the fabric and interrupts the destination. then (optional)
// runs in t's context once the local send completes (not an ack).
func (n *NIC) Send(t *simos.Task, dst int, port string, size int, payload any, then func()) {
	f := n.fab
	cost := f.Cfg.SockTxCost + sim.Time(int64(size)*int64(sim.Second)/f.Cfg.TxCPUBps)
	t.Compute(cost, func() {
		n.SendsPosted++
		n.node.K.AddNetTx(size)
		f.deliver(n.node.ID, dst, port, size, payload)
		// TCP ACK clocking: one return interrupt per AckEvery bytes,
		// spread over the transmission. Large responses therefore
		// load the *sender's* interrupt path — kernel state that only
		// the kernel-direct schemes can observe promptly.
		acks := size / f.Cfg.AckEvery
		span := f.xmit(size)
		node := n.node
		for i := 1; i <= acks; i++ {
			f.Eng.After(span*sim.Time(i)/sim.Time(acks)+2*f.Cfg.WireLatency, func() {
				node.RaiseNetIRQ(nil)
			})
		}
		if then != nil {
			then()
		}
	})
}

// Multicast sends a message to every member of a group using channel
// semantics (separate deliveries, one TX cost — switch replication).
func (n *NIC) Multicast(t *simos.Task, group string, size int, payload any, then func()) {
	f := n.fab
	t.Compute(f.Cfg.SockTxCost, func() {
		n.SendsPosted++
		n.node.K.AddNetTx(size)
		for _, m := range f.groups[group] {
			if m.node == n.node.ID {
				continue
			}
			f.deliver(n.node.ID, m.node, m.port, size, payload)
		}
		if then != nil {
			then()
		}
	})
}

// Source supplies the bytes of a memory region at DMA time. For a
// user-space buffer this is a closure over the buffer; for RDMA-Sync
// it is a closure that serializes the live kernel statistics, so the
// value read is exact at the instant of the DMA.
type Source func() []byte

// StaticSource adapts a plain buffer.
func StaticSource(buf []byte) Source { return func() []byte { return buf } }

// MR is a registered (pinned) memory region addressable by remote
// RDMA operations.
type MR struct {
	nic      *NIC
	key      uint32
	size     int
	source   Source
	writable bool
	sink     func([]byte) // consumes remote writes when writable
}

// Key returns the remote protection key of the region.
func (m *MR) Key() uint32 { return m.key }

// Size returns the registered length in bytes.
func (m *MR) Size() int { return m.size }

// RegisterMR pins a read-only region of the given size served by src.
func (n *NIC) RegisterMR(src Source, size int) *MR {
	n.nextKey++
	mr := &MR{nic: n, key: n.nextKey, size: size, source: src}
	n.mrs[mr.key] = mr
	return mr
}

// RegisterWritableMR pins a region that also accepts remote writes,
// delivered to sink. Reads are served by src as usual. The sink
// borrows its slice for the duration of the call only — the fabric
// recycles the staging buffer afterwards — so a sink that keeps the
// bytes must copy them (every production sink copies into its own
// region buffer anyway, since that buffer is what reads serve).
func (n *NIC) RegisterWritableMR(src Source, size int, sink func([]byte)) *MR {
	mr := n.RegisterMR(src, size)
	mr.writable = true
	mr.sink = sink
	return mr
}

// Deregister unpins a region; later remote accesses fail with
// ErrBadKey.
func (n *NIC) Deregister(mr *MR) { delete(n.mrs, mr.key) }

// postRead performs the fabric half of one one-sided read work
// request: fault consultation, request-descriptor flight, target NIC
// service, the DMA instant, and the completion flight back. done runs
// at the engine instant the completion would land in the initiator's
// CQ; it is never called synchronously from postRead itself.
//
// dst, when it has capacity for the read, is the initiator-supplied
// DMA destination — the data lands in it and no per-op buffer is
// allocated, exactly as a real HCA scatters the completion into the
// posted WR's local buffer. A nil (or too small) dst falls back to
// allocating, preserving the legacy contract for callers that retain
// the slice.
func (n *NIC) postRead(target int, key uint32, length int, dst []byte, done func(data []byte, err error)) {
	f := n.fab
	n.RDMAReads++
	extra := f.heteroLat(n.node.ID, target)
	if f.Faults != nil {
		v := f.Faults.RDMA(n.node.ID, target)
		if v.Fail {
			f.countErr(n)
			f.Eng.After(f.Cfg.RDMATimeout, func() { done(nil, ErrTimeout) })
			return
		}
		extra += v.Delay
	}
	f.Eng.After(f.xmit(16)+extra, func() { // request descriptor to target NIC
		tn := f.nics[target]
		if tn == nil {
			done(nil, ErrNoRoute)
			return
		}
		if tn.node.Down() {
			f.countErr(n)
			f.Eng.After(f.Cfg.RDMATimeout, func() { done(nil, ErrTimeout) })
			return
		}
		f.Eng.After(f.Cfg.NICService, func() {
			mr := tn.mrs[key]
			if mr == nil {
				tn.fab.countErr(n)
				f.Eng.After(f.xmit(0), func() { done(nil, ErrBadKey) })
				return
			}
			if length > mr.size {
				tn.fab.countErr(n)
				f.Eng.After(f.xmit(0), func() { done(nil, ErrLength) })
				return
			}
			// The DMA instant: capture the region bytes now, into the
			// initiator's buffer when one was posted.
			src := mr.source()
			if length < len(src) {
				src = src[:length]
			}
			var data []byte
			if cap(dst) >= len(src) {
				data = dst[:len(src)]
			} else {
				data = make([]byte, len(src))
			}
			copy(data, src)
			if f.AblationRDMATargetIRQ {
				tn.node.RaiseNetIRQ(nil)
			}
			f.Eng.After(f.xmit(len(data)), func() { done(data, nil) })
		})
	})
}

// RDMARead posts a one-sided read of [0, length) of the remote region
// (target node, key) from task t. The task blocks until the completion
// arrives; then runs with the data read at the remote DMA instant.
// The target host CPU is never involved.
func (n *NIC) RDMARead(t *simos.Task, target int, key uint32, length int, then func(data []byte, err error)) {
	n.RDMAReadInto(t, target, key, length, nil, then)
}

// RDMAReadInto is RDMARead with an initiator-supplied destination
// buffer: when cap(buf) >= length the completion data aliases buf and
// the read allocates nothing. The caller owns buf and must not repost
// it until then has run.
func (n *NIC) RDMAReadInto(t *simos.Task, target int, key uint32, length int, buf []byte, then func(data []byte, err error)) {
	f := n.fab
	t.Compute(f.Cfg.RDMAPostCost, func() {
		t.Await(func(v any) {
			c := v.(rdmaCompletion)
			then(c.data, c.err)
		})
		n.postRead(target, key, length, buf, func(data []byte, err error) {
			t.Resume(rdmaCompletion{data: data, err: err})
		})
	})
}

// ReadReq describes one work request of a doorbell-batched read.
type ReadReq struct {
	Target int
	Key    uint32
	Length int
	// Buf, when it has capacity for Length, is the initiator-supplied
	// DMA destination for this WR: the completion's Data aliases it
	// and the read allocates nothing (the reusable per-shard scratch
	// path). The caller must not repost or mutate it until the batch
	// completion has been consumed.
	Buf []byte
}

// ReadResult is the completion of one work request in a batch.
type ReadResult struct {
	Data []byte
	Err  error
}

// RDMAReadBatch posts len(reqs) one-sided reads with a single doorbell
// ring: the initiator pays RDMAPostCost once for the doorbell plus
// RDMAPostWRCost per additional work request, the reads traverse the
// fabric concurrently, and the posting task wakes exactly once with
// every completion — the coalesced-CQ-poll pattern of doorbell-batched
// verbs, rather than one post+wakeup per read. Results are positional:
// results[i] answers reqs[i]; per-request failures (bad key, dead
// target) land in that slot's Err without disturbing its neighbours.
func (n *NIC) RDMAReadBatch(t *simos.Task, reqs []ReadReq, then func(results []ReadResult)) {
	n.RDMAReadBatchInto(t, reqs, nil, then)
}

// RDMAReadBatchInto is RDMAReadBatch completing into a caller-owned
// results scratch: when cap(scratch) >= len(reqs) the completion slice
// aliases it and the batch allocates no result storage (pair it with
// per-WR ReadReq.Buf destinations for a fully allocation-free sweep).
// The caller must not repost the scratch until then has consumed it.
func (n *NIC) RDMAReadBatchInto(t *simos.Task, reqs []ReadReq, scratch []ReadResult, then func(results []ReadResult)) {
	f := n.fab
	if len(reqs) == 0 {
		t.Compute(0, func() { then(nil) })
		return
	}
	cost := f.Cfg.RDMAPostCost + sim.Time(len(reqs)-1)*f.Cfg.RDMAPostWRCost
	t.Compute(cost, func() {
		t.Await(func(v any) { then(v.([]ReadResult)) })
		n.DoorbellBatches++
		var results []ReadResult
		if cap(scratch) >= len(reqs) {
			results = scratch[:len(reqs)]
			for i := range results {
				results[i] = ReadResult{}
			}
		} else {
			results = make([]ReadResult, len(reqs))
		}
		remaining := len(reqs)
		for i, rq := range reqs {
			i, rq := i, rq
			n.postRead(rq.Target, rq.Key, rq.Length, rq.Buf, func(data []byte, err error) {
				results[i] = ReadResult{Data: data, Err: err}
				if remaining--; remaining == 0 {
					t.Resume(results)
				}
			})
		}
	})
}

// RDMAWrite posts a one-sided write of data into the remote region.
// Writes to regions registered read-only fail with ErrPermission (the
// paper's protection for exposed kernel structures).
func (n *NIC) RDMAWrite(t *simos.Task, target int, key uint32, data []byte, then func(err error)) {
	f := n.fab
	// Stage the payload in a pooled fabric buffer: captured at post
	// time (the WR's local buffer is owned by the HCA from here) and
	// recycled once the responder has consumed it.
	payload := f.getBuf(len(data))
	copy(payload, data)
	t.Compute(f.Cfg.RDMAPostCost, func() {
		t.Await(func(v any) {
			then(v.(rdmaCompletion).err)
		})
		n.RDMAWrites++
		extra := f.heteroLat(n.node.ID, target)
		if f.Faults != nil {
			v := f.Faults.RDMA(n.node.ID, target)
			if v.Fail {
				f.countErr(n)
				f.putBuf(payload)
				n.completeAfter(t, f.Cfg.RDMATimeout, rdmaCompletion{err: ErrTimeout})
				return
			}
			extra += v.Delay
		}
		f.Eng.After(f.xmit(16+len(payload))+extra, func() {
			tn := f.nics[target]
			if tn == nil {
				f.putBuf(payload)
				n.complete(t, rdmaCompletion{err: ErrNoRoute})
				return
			}
			if tn.node.Down() {
				f.countErr(n)
				f.putBuf(payload)
				n.completeAfter(t, f.Cfg.RDMATimeout, rdmaCompletion{err: ErrTimeout})
				return
			}
			f.Eng.After(f.Cfg.NICService, func() {
				mr := tn.mrs[key]
				var err error
				switch {
				case mr == nil:
					err = ErrBadKey
				case !mr.writable:
					err = ErrPermission
				case len(payload) > mr.size:
					err = ErrLength
				default:
					if f.AblationRDMATargetIRQ {
						tn.node.RaiseNetIRQ(nil)
					}
					mr.sink(payload)
				}
				f.putBuf(payload)
				if err != nil {
					tn.fab.countErr(n)
				}
				n.completeAfter(t, f.xmit(0), rdmaCompletion{err: err})
			})
		})
	})
}

// RDMACompareSwap posts a one-sided 64-bit atomic compare-and-swap on
// the first 8 bytes of the remote writable region (IB masked-atomic
// style, little-endian). The responder NIC performs the
// read-compare-write; the target host CPU is never involved, which is
// what lets lease acquisition and renewal survive a frozen or wedged
// host. then receives the value the region held just before the
// operation: prev == compare means the swap was applied.
func (n *NIC) RDMACompareSwap(t *simos.Task, target int, key uint32, compare, swap uint64, then func(prev uint64, err error)) {
	f := n.fab
	t.Compute(f.Cfg.RDMAPostCost, func() {
		t.Await(func(v any) {
			c := v.(rdmaCompletion)
			then(c.prev, c.err)
		})
		n.postCompSwap(target, key, compare, swap, func(prev uint64, err error) {
			t.Resume(rdmaCompletion{prev: prev, err: err})
		})
	})
}

// postCompSwap performs one posted compare-and-swap work request: the
// fabric traversal, the responder-side atomic, and the completion
// callback. Shared by the single-CAS verb and the doorbell-batched
// form; the caller has already paid the post cost.
func (n *NIC) postCompSwap(target int, key uint32, compare, swap uint64, done func(prev uint64, err error)) {
	f := n.fab
	n.RDMAAtomics++
	extra := f.heteroLat(n.node.ID, target)
	if f.Faults != nil {
		v := f.Faults.RDMA(n.node.ID, target)
		if v.Fail {
			f.countErr(n)
			f.Eng.After(f.Cfg.RDMATimeout, func() { done(0, ErrTimeout) })
			return
		}
		extra += v.Delay
	}
	f.Eng.After(f.xmit(32)+extra, func() { // descriptor + compare + swap operands
		tn := f.nics[target]
		if tn == nil {
			done(0, ErrNoRoute)
			return
		}
		if tn.node.Down() {
			f.countErr(n)
			f.Eng.After(f.Cfg.RDMATimeout, func() { done(0, ErrTimeout) })
			return
		}
		f.Eng.After(f.Cfg.NICService, func() {
			mr := tn.mrs[key]
			switch {
			case mr == nil:
				tn.fab.countErr(n)
				f.Eng.After(f.xmit(0), func() { done(0, ErrBadKey) })
				return
			case !mr.writable:
				tn.fab.countErr(n)
				f.Eng.After(f.xmit(0), func() { done(0, ErrPermission) })
				return
			case mr.size < 8:
				tn.fab.countErr(n)
				f.Eng.After(f.xmit(0), func() { done(0, ErrLength) })
				return
			}
			// The atomic instant: read, compare and (maybe) write
			// back within one NIC service slot. The engine is the
			// serialization point, exactly as responder-side atomic
			// units serialize concurrent atomics in hardware. The
			// scratch copy is pooled: it exists only so the sink
			// observes a fully-formed post-swap image.
			src := mr.source()
			cur := f.getBuf(len(src))
			copy(cur, src)
			prev := binary.LittleEndian.Uint64(cur[:8])
			if prev == compare {
				binary.LittleEndian.PutUint64(cur[:8], swap)
				mr.sink(cur)
			}
			f.putBuf(cur)
			if f.AblationRDMATargetIRQ {
				tn.node.RaiseNetIRQ(nil)
			}
			f.Eng.After(f.xmit(8), func() { done(prev, nil) })
		})
	})
}

// CASReq describes one work request of a doorbell-batched
// compare-and-swap.
type CASReq struct {
	Target  int
	Key     uint32
	Compare uint64
	Swap    uint64
}

// CASResult is the completion of one work request in a CAS batch:
// Prev == the request's Compare means that swap was applied.
type CASResult struct {
	Prev uint64
	Err  error
}

// RDMACompareSwapBatch posts len(reqs) one-sided compare-and-swaps
// with a single doorbell ring, exactly as RDMAReadBatch batches reads:
// the initiator pays RDMAPostCost once plus RDMAPostWRCost per
// additional work request, the atomics traverse the fabric
// concurrently (each serialized at its responder NIC), and the posting
// task wakes exactly once with every completion. Results are
// positional; per-request failures land in that slot's Err. A claim
// manager renewing S shard claims rings one doorbell per cycle instead
// of S.
func (n *NIC) RDMACompareSwapBatch(t *simos.Task, reqs []CASReq, then func(results []CASResult)) {
	f := n.fab
	if len(reqs) == 0 {
		t.Compute(0, func() { then(nil) })
		return
	}
	cost := f.Cfg.RDMAPostCost + sim.Time(len(reqs)-1)*f.Cfg.RDMAPostWRCost
	t.Compute(cost, func() {
		t.Await(func(v any) { then(v.([]CASResult)) })
		n.DoorbellBatches++
		results := make([]CASResult, len(reqs))
		remaining := len(reqs)
		for i, rq := range reqs {
			i, rq := i, rq
			n.postCompSwap(rq.Target, rq.Key, rq.Compare, rq.Swap, func(prev uint64, err error) {
				results[i] = CASResult{Prev: prev, Err: err}
				if remaining--; remaining == 0 {
					t.Resume(results)
				}
			})
		}
	})
}

type rdmaCompletion struct {
	data []byte
	prev uint64
	err  error
}

func (f *Fabric) countErr(n *NIC) { n.RDMAErrors++ }

func (n *NIC) complete(t *simos.Task, c rdmaCompletion) { t.Resume(c) }

func (n *NIC) completeAfter(t *simos.Task, d sim.Time, c rdmaCompletion) {
	n.fab.Eng.After(d, func() { t.Resume(c) })
}
