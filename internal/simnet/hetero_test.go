package simnet

import (
	"testing"

	"rdmamon/internal/sim"
	"rdmamon/internal/simos"
)

// sendOnce measures the delivery time of one 64-byte socket send from
// node 0 to node 1 on a fresh rig.
func sendOnce(t *testing.T, slowNode int, extra sim.Time) sim.Time {
	t.Helper()
	r := newRig(t, 2, Defaults())
	if extra > 0 {
		r.fab.SetNodeLatency(slowNode, extra)
	}
	p := r.nodes[1].Port("svc")
	var when sim.Time
	r.nodes[1].Spawn("rx", func(tk *simos.Task) {
		tk.Recv(p, func(m simos.Message) { when = r.eng.Now() })
	})
	r.nodes[0].Spawn("tx", func(tk *simos.Task) {
		r.nics[0].Send(tk, 1, "svc", 64, "ping", nil)
	})
	r.eng.RunUntil(sim.Second)
	if when == 0 {
		t.Fatal("message not delivered")
	}
	return when
}

// TestNodeLatencyHeterogeneity: a per-node latency adds exactly that
// much one-way delay whether it is pinned on the sender or the
// receiver, and setting none reproduces the homogeneous timing
// bit-identically (the empty-map fast path).
func TestNodeLatencyHeterogeneity(t *testing.T) {
	base := sendOnce(t, 0, 0)
	again := sendOnce(t, 0, 0)
	if base != again {
		t.Fatalf("homogeneous fabric is non-deterministic: %v vs %v", base, again)
	}
	const extra = 300 * sim.Microsecond
	slowRx := sendOnce(t, 1, extra)
	slowTx := sendOnce(t, 0, extra)
	if slowRx != base+extra {
		t.Fatalf("receiver latency: delivered at %v, want %v + %v", slowRx, base, extra)
	}
	if slowTx != base+extra {
		t.Fatalf("sender latency: delivered at %v, want %v + %v", slowTx, base, extra)
	}
}

// TestNodeLatencyRDMARead: the heterogeneity also taxes one-sided
// reads — the whole point of modelling slow NICs is that monitoring
// probes against those nodes pay for it.
func TestNodeLatencyRDMARead(t *testing.T) {
	readOnce := func(extra sim.Time) sim.Time {
		r := newRig(t, 2, Defaults())
		if extra > 0 {
			r.fab.SetNodeLatency(1, extra)
		}
		mr := r.nics[1].RegisterMR(StaticSource(make([]byte, 64)), 64)
		var done sim.Time
		r.nodes[0].Spawn("reader", func(tk *simos.Task) {
			r.nics[0].RDMARead(tk, 1, mr.Key(), 64, func(data []byte, err error) {
				if err != nil {
					t.Errorf("read failed: %v", err)
				}
				done = r.eng.Now()
			})
		})
		r.eng.RunUntil(sim.Second)
		if done == 0 {
			t.Fatal("read never completed")
		}
		return done
	}
	base := readOnce(0)
	const extra = 250 * sim.Microsecond
	slow := readOnce(extra)
	// The model taxes each posted one-sided op once with the endpoint
	// latency (it is folded into the op's completion time).
	if slow != base+extra {
		t.Fatalf("RDMA read against a slow node: %v, want %v + %v", slow, base, extra)
	}
}
