package livemon

import (
	"net"
	"testing"
	"time"

	"rdmamon/internal/core"
	"rdmamon/internal/tcpverbs"
)

// silentListener accepts connections and never writes a byte — the
// "accepted but stalled" failure mode that used to hang a deadline-less
// reader forever.
func silentListener(t *testing.T) net.Listener {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			defer c.Close()
			// Read and discard so the client's write succeeds; never reply.
			go func() {
				buf := make([]byte, 4096)
				for {
					if _, err := c.Read(buf); err != nil {
						return
					}
				}
			}()
		}
	}()
	return ln
}

// TestProbeTimeoutOnStalledAgent: an agent that accepts the connection
// but never answers must cost a bounded wait, not a hung probe.
func TestProbeTimeoutOnStalledAgent(t *testing.T) {
	ln := silentListener(t)

	done := make(chan error, 1)
	go func() {
		_, err := DialTimeout(ln.Addr().String(), 100*time.Millisecond)
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("dial against a silent agent succeeded")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("dial against a silent agent hung past every deadline")
	}
}

// TestCallTimeoutOnStalledAgent exercises the same property one layer
// down: an established tcpverbs connection whose peer goes silent.
func TestCallTimeoutOnStalledAgent(t *testing.T) {
	ln := silentListener(t)
	c, err := tcpverbs.DialTimeout(ln.Addr().String(), 100*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.Retry = tcpverbs.RetryPolicy{Attempts: 2, Backoff: 10 * time.Millisecond}
	done := make(chan error, 1)
	go func() {
		_, err := c.Call(portProbe, nil)
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("call against a silent peer succeeded")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("call against a silent peer hung past every deadline")
	}
}

// TestProbeReconnectsAfterAgentRestart: kill the agent, restart it on
// the same address, and the same Probe must recover — redialing the
// transport and re-handshaking for the fresh region key.
func TestProbeReconnectsAfterAgentRestart(t *testing.T) {
	prov := synthetic(5)
	a, err := StartAgent(Config{Scheme: core.RDMASync, NodeID: 7, Provider: prov})
	if err != nil {
		t.Fatal(err)
	}
	addr := a.Addr()

	pr, err := DialTimeout(addr, 200*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	defer pr.Close()
	if _, err := pr.Fetch(); err != nil {
		t.Fatalf("pre-restart fetch: %v", err)
	}

	a.Close()
	if _, err := pr.Fetch(); err == nil {
		t.Fatal("fetch succeeded against a closed agent")
	}

	// Restart on the same address (the dead listener released the port).
	var b *Agent
	for i := 0; i < 50; i++ {
		b, err = StartAgent(Config{Scheme: core.RDMASync, NodeID: 7, Provider: prov, Addr: addr})
		if err == nil {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if err != nil {
		t.Fatalf("restart on %s: %v", addr, err)
	}
	defer b.Close()

	var lastErr error
	ok := false
	for i := 0; i < 50 && !ok; i++ {
		r, err := pr.Fetch()
		if err == nil && r.NodeID == 7 {
			ok = true
			break
		}
		lastErr = err
		time.Sleep(20 * time.Millisecond)
	}
	if !ok {
		t.Fatalf("probe never recovered after restart: %v", lastErr)
	}
}

// TestMonitorQuarantineAndReadmit: the live monitor condemns a killed
// agent after consecutive failures and re-admits it through probation
// once it is back. Run with -race: health state is shared between the
// poll goroutine and the assertions here.
func TestMonitorQuarantineAndReadmit(t *testing.T) {
	prov := synthetic(5)
	a, err := StartAgent(Config{Scheme: core.SocketSync, NodeID: 7, Provider: prov})
	if err != nil {
		t.Fatal(err)
	}
	addr := a.Addr()

	m, dialErrs := NewMonitor([]string{addr}, 20*time.Millisecond)
	if len(dialErrs) != 0 {
		t.Fatalf("dial errors: %v", dialErrs)
	}
	defer m.Close()

	waitHealth := func(want core.Health, within time.Duration) bool {
		deadline := time.Now().Add(within)
		for time.Now().Before(deadline) {
			if m.Health(addr) == want {
				return true
			}
			time.Sleep(5 * time.Millisecond)
		}
		return false
	}

	if !waitHealth(core.Healthy, 2*time.Second) {
		t.Fatalf("target never became healthy: %v", m.Err(addr))
	}

	a.Close()
	if !waitHealth(core.Quarantined, 10*time.Second) {
		t.Fatalf("killed agent never quarantined (health=%v err=%v)", m.Health(addr), m.Err(addr))
	}
	if m.LeastLoaded() != "" {
		// The sole target is quarantined, but LeastLoaded's all-
		// condemned fallback may still return it — both are accepted;
		// what matters is the health verdict above.
		t.Logf("LeastLoaded fell back to %q with the fleet down", m.LeastLoaded())
	}

	var b *Agent
	for i := 0; i < 50; i++ {
		b, err = StartAgent(Config{Scheme: core.SocketSync, NodeID: 7, Provider: prov, Addr: addr})
		if err == nil {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if err != nil {
		t.Fatalf("restart on %s: %v", addr, err)
	}
	defer b.Close()

	if !waitHealth(core.Healthy, 10*time.Second) {
		t.Fatalf("restarted agent never re-admitted (health=%v err=%v)", m.Health(addr), m.Err(addr))
	}
	if m.LeastLoaded() != addr {
		t.Fatalf("LeastLoaded = %q after recovery, want %q", m.LeastLoaded(), addr)
	}
}
