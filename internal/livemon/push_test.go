package livemon

import (
	"sync"
	"testing"
	"time"

	"rdmamon/internal/core"
	"rdmamon/internal/procfs"
	"rdmamon/internal/wire"
)

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, cond func() bool, what string) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestPushHostReceivesDeltas: a pusher whose load jumps past the
// threshold lands delta records in the host's aggregation slot via the
// one-sided write verb; the host application serves nothing per push.
func TestPushHostReceivesDeltas(t *testing.T) {
	h, err := StartPushHost("127.0.0.1:0", []uint16{7})
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()

	prov := synthetic(1)
	p, err := StartPusher(PusherConfig{
		Target: h.Addr(), NodeID: 7, Provider: prov,
		Check: 5 * time.Millisecond, Heartbeat: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	// The first sample always pushes (nothing is primed yet).
	waitFor(t, 2*time.Second, func() bool {
		_, _, ok := h.Latest(7)
		return ok
	}, "first push")
	first, _, _ := h.Latest(7)
	if first.Load.NodeID != 7 {
		t.Fatalf("pushed record = %+v", first.Load)
	}

	// Quiet load: no further pushes, only skips.
	time.Sleep(50 * time.Millisecond)
	pushes0, skips0, _, _ := p.Stats()
	if skips0 == 0 {
		t.Fatalf("quiet pusher never skipped (pushes=%d)", pushes0)
	}

	// A load jump past the threshold must push within a few checks.
	prov.Set(procfs.Snapshot{
		NumCPU: 2, NrRunning: 9, NrTasks: 40,
		UtilPerMille: []int{1000, 1000},
		MemUsedKB:    1 << 18, MemTotalKB: 1 << 20,
	})
	waitFor(t, 2*time.Second, func() bool {
		rec, _, _ := h.Latest(7)
		return rec.PushSeq > first.PushSeq
	}, "delta push after load jump")
	rec, _, _ := h.Latest(7)
	if rec.Load.UtilMean() != 1000 {
		t.Fatalf("delta record util = %d, want 1000", rec.Load.UtilMean())
	}
	if _, torn := h.Stats(); torn != 0 {
		t.Fatalf("torn = %d", torn)
	}
}

// TestPushHostInvalidationRekeys: tearing down the aggregation slot
// fails in-flight pushes; the pusher re-handshakes the fresh key after
// the re-pin and pushes resume.
func TestPushHostInvalidationRekeys(t *testing.T) {
	h, err := StartPushHost("127.0.0.1:0", []uint16{3})
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()

	prov := synthetic(1)
	p, err := StartPusher(PusherConfig{
		Target: h.Addr(), NodeID: 3, Provider: prov,
		// Tight heartbeat so every check pushes: key failures surface fast.
		Check: 5 * time.Millisecond, Heartbeat: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	waitFor(t, 2*time.Second, func() bool {
		rx, _ := h.Stats()
		return rx > 0
	}, "pushes before invalidation")

	h.InvalidateSlot(3, 30*time.Millisecond)
	waitFor(t, 2*time.Second, func() bool {
		_, _, _, rekeys := p.Stats()
		rx, _ := h.Stats()
		_, _, ok := h.Latest(3)
		return rekeys > 0 && rx > 0 && ok
	}, "re-key and resumed pushes after re-pin")
}

// TestPushHostRejectsWrongNode: a record carrying a different node id
// than the slot's owner is counted torn, never cached.
func TestPushHostRejectsWrongNode(t *testing.T) {
	h, err := StartPushHost("127.0.0.1:0", []uint16{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()

	// Push node 2's record into node 1's slot by hand.
	prov := synthetic(1)
	s, _ := prov.Snapshot()
	pr := wire.PushRecord{PushSeq: 1, PushedNS: time.Now().UnixNano(), Load: s.Record(2, 1)}
	p, err := StartPusher(PusherConfig{
		Target: h.Addr(), NodeID: 1, Provider: prov,
		Check: time.Hour, // loop stays idle; we drive the write below
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if err := p.conn.RDMAWrite(h.SlotKey(1), pr.Encode()); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 2*time.Second, func() bool {
		_, torn := h.Stats()
		return torn == 1
	}, "cross-slot record counted torn")
	if _, _, ok := h.Latest(1); ok {
		t.Fatal("cross-slot record was cached")
	}
}

// TestPushHostAcceptsRestartedPusher: a pusher that dies and comes back
// restarts its sequence at 1; the host must adopt the fresh stream
// immediately (new timestamps) instead of waiting for the sequence to
// pass the dead process's watermark.
func TestPushHostAcceptsRestartedPusher(t *testing.T) {
	h, err := StartPushHost("127.0.0.1:0", []uint16{6})
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()

	cfg := PusherConfig{
		Target: h.Addr(), NodeID: 6, Provider: synthetic(1),
		Check: 5 * time.Millisecond, Heartbeat: time.Millisecond,
	}
	p1, err := StartPusher(cfg)
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, 2*time.Second, func() bool {
		rec, _, ok := h.Latest(6)
		return ok && rec.PushSeq >= 4
	}, "a few pushes from the first incarnation")
	p1.Close()
	old, _, _ := h.Latest(6)

	p2, err := StartPusher(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Close()
	waitFor(t, 2*time.Second, func() bool {
		rec, _, _ := h.Latest(6)
		return rec.PushSeq < old.PushSeq && rec.PushedNS > old.PushedNS
	}, "restarted pusher (seq reset to 1) taking over the slot")
}

// TestAgentStartsPusher: Config.Push wires the delta pusher into the
// live agent, inheriting its node id and provider.
func TestAgentStartsPusher(t *testing.T) {
	h, err := StartPushHost("127.0.0.1:0", []uint16{9})
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()

	a, err := StartAgent(Config{
		Scheme: core.RDMASync, NodeID: 9, Provider: synthetic(2),
		Push: &PusherConfig{Target: h.Addr(), Check: 5 * time.Millisecond, Heartbeat: time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	if a.Pusher() == nil {
		t.Fatal("agent did not start a pusher")
	}
	waitFor(t, 2*time.Second, func() bool {
		rec, _, ok := h.Latest(9)
		return ok && rec.Load.NodeID == 9
	}, "agent-integrated push")
}

// TestMonitorAdaptivePeriod: a quiet target's poll period decays toward
// the ceiling; a load jump snaps it back to the base interval within a
// cycle or two.
func TestMonitorAdaptivePeriod(t *testing.T) {
	prov := synthetic(1)
	a, err := StartAgent(Config{Scheme: core.RDMASync, NodeID: 4, Provider: prov})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()

	interval := 5 * time.Millisecond
	maxP := 40 * time.Millisecond
	m, dialErrs := NewMonitorCfg([]string{a.Addr()}, MonitorConfig{
		Interval: interval,
		Adaptive: &AdaptiveConfig{Max: maxP},
	})
	for tgt, derr := range dialErrs {
		t.Fatalf("dial %s: %v", tgt, derr)
	}
	defer m.Close()
	target := a.Addr()

	waitFor(t, 5*time.Second, func() bool {
		return m.ProbePeriod(target) == maxP && m.Decayed() > 0
	}, "quiet target decaying to the ceiling")

	prov.Set(procfs.Snapshot{
		NumCPU: 2, NrRunning: 9, NrTasks: 40,
		UtilPerMille: []int{1000, 1000},
		MemUsedKB:    1 << 18, MemTotalKB: 1 << 20,
	})
	waitFor(t, 5*time.Second, func() bool {
		return m.ProbePeriod(target) == interval
	}, "load jump snapping the period back")
	if _, _, ok := m.Latest(target); !ok {
		t.Fatal("no record cached")
	}
}

// TestMonitorAdaptiveLeaseLoss: losing primaryship forces the fast
// period even on a quiet fleet.
func TestMonitorAdaptiveLeaseLoss(t *testing.T) {
	a, err := StartAgent(Config{Scheme: core.RDMASync, NodeID: 5, Provider: synthetic(1)})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()

	var held atomicBool
	held.Store(true)
	interval := 5 * time.Millisecond
	maxP := 40 * time.Millisecond
	m, _ := NewMonitorCfg([]string{a.Addr()}, MonitorConfig{
		Interval: interval,
		Adaptive: &AdaptiveConfig{Max: maxP, LeaseValid: held.Load},
	})
	defer m.Close()
	target := a.Addr()

	waitFor(t, 5*time.Second, func() bool {
		return m.ProbePeriod(target) == maxP
	}, "decay while the lease is held")

	held.Store(false)
	waitFor(t, 5*time.Second, func() bool {
		return m.ProbePeriod(target) == interval
	}, "lease loss snapping the period back")
}

// atomicBool is a tiny mutex-backed bool usable from the monitor's
// poll goroutine and the test.
type atomicBool struct {
	mu sync.Mutex
	v  bool
}

func (b *atomicBool) Store(v bool) { b.mu.Lock(); b.v = v; b.mu.Unlock() }
func (b *atomicBool) Load() bool   { b.mu.Lock(); defer b.mu.Unlock(); return b.v }
