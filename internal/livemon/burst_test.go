package livemon

import (
	"testing"
	"time"

	"rdmamon/internal/core"
)

func TestFetchBurstDistinctSamples(t *testing.T) {
	// Under RDMA-Sync every read of the burst samples at its own
	// service instant, so sequence numbers must be k distinct,
	// increasing values — k real samples, not one sample copied k times.
	_, pr := startPair(t, core.RDMASync, synthetic(5))
	const k = 6
	recs, err := pr.FetchBurst(k)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != k {
		t.Fatalf("got %d records, want %d", len(recs), k)
	}
	seen := make(map[uint32]bool)
	for _, r := range recs {
		if r.NodeID != 7 {
			t.Fatalf("record from node %d", r.NodeID)
		}
		if seen[r.Seq] {
			t.Fatalf("duplicate seq %d: burst reads shared a sample", r.Seq)
		}
		seen[r.Seq] = true
	}
}

func TestFetchBurstSocketSchemeRefused(t *testing.T) {
	_, pr := startPair(t, core.SocketSync, synthetic(2))
	if _, err := pr.FetchBurst(4); err == nil {
		t.Fatal("burst fetch over a socket scheme should fail")
	}
}

func TestFetchBurstRecoversAfterInvalidate(t *testing.T) {
	a, pr := startPair(t, core.RDMASync, synthetic(3))
	if _, err := pr.FetchBurst(2); err != nil {
		t.Fatal(err)
	}
	// Invalidate with instant re-pin: the old rkey dies, the burst's
	// re-handshake must pick up the fresh one.
	a.InvalidateMR(time.Millisecond)
	deadline := time.Now().Add(2 * time.Second)
	for {
		if _, err := pr.FetchBurst(2); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("burst fetch never recovered after MR invalidation")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if pr.Rehandshakes == 0 {
		t.Fatal("recovery should have re-handshaked")
	}
}

func TestShardedMonitorPollsFleet(t *testing.T) {
	var agents []*Agent
	var targets []string
	for i := 0; i < 6; i++ {
		a, err := StartAgent(Config{
			Scheme:   core.RDMASync,
			NodeID:   uint16(i + 1),
			Provider: synthetic(i + 1),
		})
		if err != nil {
			t.Fatal(err)
		}
		agents = append(agents, a)
		targets = append(targets, a.Addr())
	}
	defer func() {
		for _, a := range agents {
			a.Close()
		}
	}()
	m, dialErrs := NewMonitorCfg(targets, MonitorConfig{Interval: 10 * time.Millisecond, Shards: 2})
	defer m.Close()
	if len(dialErrs) != 0 {
		t.Fatalf("dial errors: %v", dialErrs)
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		all := true
		for i, tgt := range targets {
			rec, at, ok := m.Latest(tgt)
			if !ok {
				all = false
				break
			}
			if int(rec.NodeID) != i+1 || at.IsZero() {
				t.Fatalf("target %s record %+v", tgt, rec)
			}
		}
		if all {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("sharded monitor never collected all records")
		}
		time.Sleep(5 * time.Millisecond)
	}
}
