package livemon

import (
	"sync"
	"testing"
	"time"

	"rdmamon/internal/core"
	"rdmamon/internal/procfs"
)

func synthetic(run int) *procfs.Synthetic {
	p := &procfs.Synthetic{}
	p.Set(procfs.Snapshot{
		NumCPU: 2, NrRunning: run, NrTasks: 40,
		UtilPerMille: []int{500, 300},
		MemUsedKB:    1 << 18, MemTotalKB: 1 << 20,
	})
	return p
}

func startPair(t *testing.T, scheme core.Scheme, p procfs.Provider) (*Agent, *Probe) {
	t.Helper()
	a, err := StartAgent(Config{Scheme: scheme, NodeID: 7, Provider: p, Interval: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { a.Close() })
	pr, err := Dial(a.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { pr.Close() })
	return a, pr
}

func TestFetchAllSchemes(t *testing.T) {
	for _, s := range core.Schemes() {
		s := s
		t.Run(s.String(), func(t *testing.T) {
			a, pr := startPair(t, s, synthetic(5))
			if pr.Scheme() != s {
				t.Fatalf("probe discovered scheme %v, want %v", pr.Scheme(), s)
			}
			rec, err := pr.Fetch()
			if err != nil {
				t.Fatal(err)
			}
			if rec.NodeID != 7 || rec.NrRunning != 5 || rec.NrTasks != 40 {
				t.Fatalf("record = %+v", rec)
			}
			if rec.UtilMean() != 400 {
				t.Fatalf("util mean = %d, want 400", rec.UtilMean())
			}
			_ = a
		})
	}
}

func TestSyncSchemesSeeFreshValues(t *testing.T) {
	for _, s := range []core.Scheme{core.SocketSync, core.RDMASync, core.ERDMASync} {
		s := s
		t.Run(s.String(), func(t *testing.T) {
			p := synthetic(1)
			_, pr := startPair(t, s, p)
			if rec, _ := pr.Fetch(); rec.NrRunning != 1 {
				t.Fatalf("first fetch = %d", rec.NrRunning)
			}
			p.Set(procfs.Snapshot{NumCPU: 2, NrRunning: 9})
			// Sync schemes sample at fetch time: the new value is
			// visible immediately, no refresh wait.
			if rec, _ := pr.Fetch(); rec.NrRunning != 9 {
				t.Fatalf("sync fetch = %d, want fresh 9", rec.NrRunning)
			}
		})
	}
}

func TestAsyncSchemesServeRefreshedBuffer(t *testing.T) {
	for _, s := range []core.Scheme{core.SocketAsync, core.RDMAAsync} {
		s := s
		t.Run(s.String(), func(t *testing.T) {
			p := synthetic(1)
			_, pr := startPair(t, s, p)
			p.Set(procfs.Snapshot{NumCPU: 2, NrRunning: 9})
			// Old value may be served until the refresher runs.
			deadline := time.Now().Add(2 * time.Second)
			for {
				rec, err := pr.Fetch()
				if err != nil {
					t.Fatal(err)
				}
				if rec.NrRunning == 9 {
					return
				}
				if time.Now().After(deadline) {
					t.Fatalf("refresher never picked up new value (last %d)", rec.NrRunning)
				}
				time.Sleep(5 * time.Millisecond)
			}
		})
	}
}

func TestSequenceNumbersAdvance(t *testing.T) {
	_, pr := startPair(t, core.RDMASync, synthetic(1))
	a, _ := pr.Fetch()
	b, _ := pr.Fetch()
	if b.Seq <= a.Seq {
		t.Fatalf("seq did not advance: %d then %d", a.Seq, b.Seq)
	}
}

func TestConcurrentProbes(t *testing.T) {
	a, err := StartAgent(Config{Scheme: core.RDMASync, NodeID: 1, Provider: synthetic(3)})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			pr, err := Dial(a.Addr())
			if err != nil {
				errs <- err
				return
			}
			defer pr.Close()
			for j := 0; j < 25; j++ {
				if _, err := pr.Fetch(); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestAgentCloseStopsRefresher(t *testing.T) {
	a, err := StartAgent(Config{Scheme: core.SocketAsync, Provider: synthetic(1), Interval: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	// Double close is safe.
	_ = a.Close()
}

func TestDialBadAddr(t *testing.T) {
	if _, err := Dial("127.0.0.1:1"); err == nil {
		t.Fatal("dial to closed port should fail")
	}
}

func TestLiveEndToEndRealProc(t *testing.T) {
	// Integration: real /proc on Linux, default provider.
	if _, err := procfs.NewLinux("").Snapshot(); err != nil {
		t.Skip("no usable /proc")
	}
	a, err := StartAgent(Config{Scheme: core.ERDMASync, NodeID: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	pr, err := Dial(a.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer pr.Close()
	rec, err := pr.Fetch()
	if err != nil {
		t.Fatal(err)
	}
	if rec.NrTasks == 0 || rec.MemTotalKB == 0 {
		t.Fatalf("implausible live record: %+v", rec)
	}
}
