package livemon

import (
	"sync"
	"time"

	"rdmamon/internal/core"
	"rdmamon/internal/sim"
	"rdmamon/internal/wire"
)

// Monitor polls a fleet of live agents on a fixed interval and caches
// the newest record per agent — the live counterpart of the simulated
// front-end monitoring process. It is safe for concurrent use.
type Monitor struct {
	interval time.Duration

	mu        sync.RWMutex
	probes    map[string]*Probe
	last      map[string]wire.LoadRecord
	lastAt    map[string]time.Time
	errs      map[string]error
	health    map[string]*core.HealthTracker
	transport map[string]core.Transport
	weights   core.Weights

	// Adaptive-period state (nil maps when the layout is fixed-period).
	adaptive *AdaptiveConfig
	ctrl     map[string]*core.PeriodController
	obs      map[string]wire.LoadRecord
	obsHas   map[string]bool
	due      map[string]time.Time
	decayed  uint64

	cpool *ConnPool // shared connection pool (nil when probes own conns)

	stop      chan struct{}
	wg        sync.WaitGroup
	closeOnce sync.Once
}

// quarantineBackoff is how many poll ticks are skipped between probes
// of a quarantined target: a presumed-dead host is checked at 1/4 rate
// so the fleet's probe budget goes to the live ones, while recovery is
// still noticed within a few intervals.
const quarantineBackoff = 4

// MonitorConfig shapes the live monitor's polling layout.
type MonitorConfig struct {
	// Interval is the poll period (default 50ms).
	Interval time.Duration
	// Shards, when positive, replaces the one-goroutine-per-target
	// layout with S sweep workers, each polling a contiguous slice of
	// the fleet per tick — at hundreds of targets this bounds the
	// goroutine and timer count the way the simulated monitor's shard
	// tasks do. Zero keeps the per-target layout.
	Shards int
	// Adaptive, when non-nil, layers the change-rate-adaptive poll
	// period controller on every target: a quiet target's period decays
	// toward Adaptive.Max, any load-index movement, fetch failure,
	// Suspect/Degraded health or lost lease snaps it back to Interval
	// within one cycle. Works with both polling layouts.
	Adaptive *AdaptiveConfig
	// Pool, when non-nil, shares connections across the fleet through a
	// budgeted pool instead of one owned connection per probe: fetches
	// lease a conn per sweep, dials are rate-limited and breaker-gated,
	// idle conns are garbage-collected. Monitor.Close closes the pool.
	Pool *PoolConfig
}

// AdaptiveConfig shapes the live adaptive-period controller — the
// deployable counterpart of the simulated monitor's hybrid decay.
type AdaptiveConfig struct {
	// Max is the decay ceiling (default 16x the poll interval).
	Max time.Duration
	// Grow is the period multiplier per quiet poll (default 2).
	Grow float64
	// Threshold is the load-index delta that counts as change
	// (default 0.05).
	Threshold float64
	// LeaseValid, when set, reports whether this front-end still holds
	// primaryship; losing it forces every target to the fast period so
	// a re-elected primary starts from fresh records.
	LeaseValid func() bool
}

func (c AdaptiveConfig) withDefaults(interval time.Duration) AdaptiveConfig {
	if c.Max <= 0 {
		c.Max = 16 * interval
	}
	if c.Grow <= 1 {
		c.Grow = 2
	}
	if c.Threshold <= 0 {
		c.Threshold = 0.05
	}
	return c
}

// NewMonitor dials every target and starts polling. Targets that fail
// to dial are reported in the returned error map; the monitor still
// runs for the ones that connected (an empty monitor is valid).
func NewMonitor(targets []string, interval time.Duration) (*Monitor, map[string]error) {
	return NewMonitorCfg(targets, MonitorConfig{Interval: interval})
}

// NewMonitorCfg is NewMonitor with an explicit polling layout.
func NewMonitorCfg(targets []string, cfg MonitorConfig) (*Monitor, map[string]error) {
	interval := cfg.Interval
	if interval <= 0 {
		interval = 50 * time.Millisecond
	}
	m := &Monitor{
		interval:  interval,
		probes:    make(map[string]*Probe),
		last:      make(map[string]wire.LoadRecord),
		lastAt:    make(map[string]time.Time),
		errs:      make(map[string]error),
		health:    make(map[string]*core.HealthTracker),
		transport: make(map[string]core.Transport),
		weights:   core.DefaultWeights(),
		stop:      make(chan struct{}),
	}
	if cfg.Adaptive != nil {
		a := cfg.Adaptive.withDefaults(interval)
		m.adaptive = &a
		m.ctrl = make(map[string]*core.PeriodController)
		m.obs = make(map[string]wire.LoadRecord)
		m.obsHas = make(map[string]bool)
		m.due = make(map[string]time.Time)
	}
	if cfg.Pool != nil {
		m.cpool = NewConnPool(*cfg.Pool)
	}
	dialErrs := make(map[string]error)
	var connected []string
	for _, t := range targets {
		var p *Probe
		var err error
		if m.cpool != nil {
			p, err = DialPooled(m.cpool, t)
		} else {
			p, err = Dial(t)
		}
		if err != nil {
			dialErrs[t] = err
			continue
		}
		m.probes[t] = p
		m.health[t] = &core.HealthTracker{}
		if m.adaptive != nil {
			m.ctrl[t] = &core.PeriodController{Cfg: core.PeriodConfig{
				Min:  sim.Time(interval),
				Max:  sim.Time(m.adaptive.Max),
				Grow: m.adaptive.Grow,
			}}
		}
		connected = append(connected, t)
	}
	if cfg.Shards > 0 {
		s := cfg.Shards
		if s > len(connected) {
			s = len(connected)
		}
		for i := 0; i < s; i++ {
			lo := i * len(connected) / s
			hi := (i + 1) * len(connected) / s
			m.wg.Add(1)
			go m.shardPoll(connected[lo:hi])
		}
		return m, dialErrs
	}
	for t, p := range m.probes {
		m.wg.Add(1)
		go m.poll(t, p)
	}
	return m, dialErrs
}

// fetchOne issues one fetch against a target and folds the outcome
// into the shared maps.
func (m *Monitor) fetchOne(target string, p *Probe) {
	rdma := p.Scheme().UsesRDMA()
	rec, tr, err := p.FetchVia()
	m.mu.Lock()
	ht := m.health[target]
	if err != nil {
		m.errs[target] = err
		ht.Fail()
	} else {
		delete(m.errs, target)
		m.last[target] = rec
		m.lastAt[target] = time.Now()
		m.transport[target] = tr
		if rdma && tr == core.TransportSocket {
			// Alive, but only over the standby channel: Degraded
			// keeps it dispatchable without calling it Healthy.
			ht.DegradedOK()
		} else {
			ht.OK()
		}
	}
	if m.adaptive != nil {
		// A failed fetch counts as change: trouble must restore the
		// fast sweep, never decay away from it.
		changed := err != nil || !m.obsHas[target] ||
			core.LoadDelta(rec, m.obs[target]) >= m.adaptive.Threshold
		if err == nil {
			m.obs[target] = rec
			m.obsHas[target] = true
		}
		leaseHeld := m.adaptive.LeaseValid == nil || m.adaptive.LeaseValid()
		period := m.ctrl[target].Observe(changed, ht.State(), leaseHeld)
		m.due[target] = time.Now().Add(time.Duration(period))
	}
	m.mu.Unlock()
}

// dueNow reports whether the adaptive controller allows a probe of
// target this tick (always true in fixed-period layouts).
func (m *Monitor) dueNow(target string) bool {
	if m.adaptive == nil {
		return true
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if time.Now().Before(m.due[target]) {
		m.decayed++
		return false
	}
	return true
}

// ProbePeriod returns the adaptive controller's current period for a
// target (the base interval when the layout is fixed-period).
func (m *Monitor) ProbePeriod(target string) time.Duration {
	m.mu.RLock()
	defer m.mu.RUnlock()
	if c := m.ctrl[target]; c != nil {
		return time.Duration(c.Period())
	}
	return m.interval
}

// Decayed returns how many probe slots the adaptive controller has
// skipped so far.
func (m *Monitor) Decayed() uint64 {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.decayed
}

// quarantineSkip reports whether a quarantined target's probe should
// be skipped this tick (presumed-dead targets are checked at 1/4 rate;
// each attempt still costs a full deadline if it's gone). skipped is
// the target's consecutive-skip counter, maintained by the caller.
func (m *Monitor) quarantineSkip(target string, skipped *int) bool {
	m.mu.RLock()
	quarantined := m.health[target].State() == core.Quarantined
	m.mu.RUnlock()
	if !quarantined {
		*skipped = 0
		return false
	}
	*skipped++
	return *skipped%quarantineBackoff != 0
}

func (m *Monitor) poll(target string, p *Probe) {
	defer m.wg.Done()
	tick := time.NewTicker(m.interval)
	defer tick.Stop()
	m.fetchOne(target, p)
	skipped := 0
	for {
		select {
		case <-m.stop:
			return
		case <-tick.C:
			if m.quarantineSkip(target, &skipped) || !m.dueNow(target) {
				continue
			}
			m.fetchOne(target, p)
		}
	}
}

// shardPoll sweeps a slice of the fleet sequentially each tick — the
// live analogue of one simulated monitor shard.
func (m *Monitor) shardPoll(targets []string) {
	defer m.wg.Done()
	tick := time.NewTicker(m.interval)
	defer tick.Stop()
	skipped := make(map[string]int, len(targets))
	sweep := func() {
		for _, t := range targets {
			select {
			case <-m.stop:
				return
			default:
			}
			skip := skipped[t]
			if m.quarantineSkip(t, &skip) {
				skipped[t] = skip
				continue
			}
			skipped[t] = skip
			if !m.dueNow(t) {
				continue
			}
			m.fetchOne(t, m.probes[t])
		}
	}
	sweep()
	for {
		select {
		case <-m.stop:
			return
		case <-tick.C:
			sweep()
		}
	}
}

// ArmFailover arms a transport breaker on every connected probe (see
// Probe.SetFailover; socket-scheme probes ignore it).
func (m *Monitor) ArmFailover(cfg core.FailoverConfig) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	for _, p := range m.probes {
		p.SetFailover(cfg)
	}
}

// Transport reports which transport served a target's newest record
// (meaningful once Latest returns ok).
func (m *Monitor) Transport(target string) core.Transport {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.transport[target]
}

// Probe returns the monitor's probe for a target (nil if unknown);
// tests use it to inspect breaker state.
func (m *Monitor) Probe(target string) *Probe {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.probes[target]
}

// Health returns the probe-driven health state of a target; unknown
// targets report Quarantined.
func (m *Monitor) Health(target string) core.Health {
	m.mu.RLock()
	defer m.mu.RUnlock()
	ht := m.health[target]
	if ht == nil {
		return core.Quarantined
	}
	return ht.State()
}

// Latest returns the newest record for a target.
func (m *Monitor) Latest(target string) (wire.LoadRecord, time.Time, bool) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	rec, ok := m.last[target]
	return rec, m.lastAt[target], ok
}

// Err returns the target's most recent fetch error, if its last fetch
// failed.
func (m *Monitor) Err(target string) error {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.errs[target]
}

// LeastLoaded returns the connected target with the smallest load
// index (the live analogue of the dispatcher's choice), or "" if no
// records have arrived yet. Quarantined and probation targets are
// skipped while any eligible target exists; if the whole fleet is
// condemned it falls back to considering everyone.
func (m *Monitor) LeastLoaded() string {
	m.mu.RLock()
	defer m.mu.RUnlock()
	pick := func(requireEligible bool) string {
		best := ""
		bestIdx := 0.0
		for t, rec := range m.last {
			if requireEligible {
				if ht := m.health[t]; ht != nil && !ht.State().Eligible() {
					continue
				}
			}
			idx := m.weights.Index(rec)
			if best == "" || idx < bestIdx {
				best, bestIdx = t, idx
			}
		}
		return best
	}
	if best := pick(true); best != "" {
		return best
	}
	return pick(false)
}

// Targets lists the connected targets.
func (m *Monitor) Targets() []string {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make([]string, 0, len(m.probes))
	for t := range m.probes {
		out = append(out, t)
	}
	return out
}

// ConnPool exposes the monitor's shared connection pool (nil when the
// layout is one owned connection per probe); tests use it to inspect
// budgets and leak-check teardown.
func (m *Monitor) ConnPool() *ConnPool { return m.cpool }

// Close stops polling, closes all probe connections and the shared
// pool. Idempotent and safe for concurrent use: every caller returns
// only after teardown has completed exactly once.
func (m *Monitor) Close() {
	m.closeOnce.Do(func() {
		close(m.stop)
		m.wg.Wait()
		m.mu.Lock()
		for _, p := range m.probes {
			p.Close()
		}
		m.probes = map[string]*Probe{}
		m.mu.Unlock()
		if m.cpool != nil {
			m.cpool.Close()
		}
	})
}
