package livemon

import (
	"os"
	"runtime"
	"testing"
	"time"
)

// openFDs counts the process's open file descriptors via /proc (-1
// where /proc is unavailable, which disables fd accounting).
func openFDs() int {
	ents, err := os.ReadDir("/proc/self/fd")
	if err != nil {
		return -1
	}
	return len(ents)
}

// leakCheck snapshots the goroutine and fd counts and registers a
// cleanup that fails the test if either is still elevated once
// teardown has had time to settle. Tests that start monitors, agents
// or pools call it first, so a Close that strands a poller goroutine
// or leaks a connection fails loudly instead of accumulating.
func leakCheck(t *testing.T) {
	t.Helper()
	goros := runtime.NumGoroutine()
	fds := openFDs()
	t.Cleanup(func() {
		deadline := time.Now().Add(3 * time.Second)
		for {
			g, f := runtime.NumGoroutine(), openFDs()
			if g <= goros && f <= fds {
				return
			}
			if time.Now().After(deadline) {
				buf := make([]byte, 1<<20)
				n := runtime.Stack(buf, true)
				t.Errorf("leak after close: goroutines %d -> %d, fds %d -> %d\n%s",
					goros, g, fds, f, buf[:n])
				return
			}
			time.Sleep(20 * time.Millisecond)
		}
	})
}
