package livemon

import (
	"testing"
	"time"

	"rdmamon/internal/core"
	"rdmamon/internal/sim"
)

// leaseTestCfg uses short real-time windows: check every 10ms, trust
// for 30ms, take over after 60ms of silence. Deadlines below are
// generous multiples so a loaded CI machine does not flake.
func leaseTestCfg() core.LeaseConfig {
	return core.LeaseConfig{
		CheckEvery:    sim.Time(10 * time.Millisecond),
		TTL:           sim.Time(30 * time.Millisecond),
		TakeoverAfter: sim.Time(60 * time.Millisecond),
	}
}

func waitLease(t *testing.T, within time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(within)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func startWitness(t *testing.T) *Agent {
	t.Helper()
	a, err := StartAgent(Config{
		Scheme:    core.RDMASync,
		NodeID:    1,
		Provider:  synthetic(2),
		HostLease: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { a.Close() })
	return a
}

func dialLease(t *testing.T, a *Agent, me uint16) *LeaseClient {
	t.Helper()
	l, err := DialLease(a.Addr(), me, leaseTestCfg())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	return l
}

// TestLiveLeaseHandoff drives the full two-front-end story over real
// TCP: FE1 acquires the vacant lease, FE2 joins and stands by, FE1
// stalls (Pause — a frozen process), FE2 takes over a new epoch after
// TakeoverAfter, and the thawed FE1 is deposed by its failed renewal
// CAS instead of ever believing itself primary again.
func TestLiveLeaseHandoff(t *testing.T) {
	w := startWitness(t)
	fe1 := dialLease(t, w, 1)

	waitLease(t, 5*time.Second, "FE1 to acquire the vacant lease", fe1.Valid)
	if fe1.Epoch() != 1 {
		t.Fatalf("first epoch = %d, want 1", fe1.Epoch())
	}
	if holder, epoch, _ := wireUnpack(w.LeaseWord()); holder != 1 || epoch != 1 {
		t.Fatalf("witness word names holder %d epoch %d, want 1/1", holder, epoch)
	}
	if rec, err := w.LeaseRecord(); err != nil || rec.Holder != 1 || rec.Epoch != 1 {
		t.Fatalf("published record = %+v, err %v", rec, err)
	}

	fe2 := dialLease(t, w, 2)
	// FE2 must settle as a standby while FE1 keeps renewing.
	time.Sleep(150 * time.Millisecond)
	if fe2.Role() != core.RoleFollower || fe2.Valid() {
		t.Fatal("FE2 grabbed a held lease")
	}
	if !fe1.Valid() {
		t.Fatal("FE1 lost a lease nobody contested")
	}

	// FE1 stalls: validity lapses on its own, FE2 takes over.
	fe1.Pause()
	waitLease(t, 5*time.Second, "FE2 to take over from the stalled FE1", fe2.Valid)
	if fe2.Epoch() != 2 {
		t.Fatalf("takeover epoch = %d, want 2", fe2.Epoch())
	}
	if fe1.Valid() {
		t.Fatal("stalled FE1 still claims validity after FE2's takeover")
	}

	// FE1 thaws: its renewal CAS hits epoch 2 and deposes it.
	fe1.Resume()
	waitLease(t, 5*time.Second, "thawed FE1 to be deposed", func() bool {
		_, _, deposals := fe1.Counters()
		return deposals == 1 && fe1.Role() == core.RoleFollower
	})
	if fe1.Valid() {
		t.Fatal("deposed FE1 claims validity")
	}
	if !fe2.Valid() {
		t.Fatal("FE2 lost the lease to the deposed FE1")
	}
}

// TestLiveLeaseCloseHandsOff: a front-end that dies outright (Close,
// no deposal handshake) is timed out by the standby.
func TestLiveLeaseCloseHandsOff(t *testing.T) {
	w := startWitness(t)
	fe1 := dialLease(t, w, 1)
	waitLease(t, 5*time.Second, "FE1 to acquire", fe1.Valid)
	fe1.Close()

	fe2 := dialLease(t, w, 2)
	waitLease(t, 5*time.Second, "FE2 to inherit from the dead FE1", fe2.Valid)
	if fe2.Epoch() != 2 {
		t.Fatalf("inherited epoch = %d, want 2", fe2.Epoch())
	}
}

// wireUnpack avoids importing wire just for the test assertions.
func wireUnpack(word uint64) (holder, epoch uint16, hb uint32) {
	return uint16(word >> 48), uint16(word >> 32), uint32(word)
}
