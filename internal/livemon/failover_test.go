package livemon

import (
	"testing"
	"time"

	"rdmamon/internal/core"
)

// TestFailoverMRInvalidationLive drives the live transport breaker end
// to end over real sockets: an RDMA-Sync probe keeps fetching through
// an MR invalidation — degrading to the agent's standby channel in the
// same fetch — trips onto socket probing, and fails back to RDMA after
// the agent re-pins its region.
func TestFailoverMRInvalidationLive(t *testing.T) {
	a, pr := startPair(t, core.RDMASync, synthetic(5))
	pr.SetFailover(core.FailoverConfig{})
	pr.SeedJitter(1)

	rec, tr, err := pr.FetchVia()
	if err != nil || tr != core.TransportRDMA || rec.NodeID != 7 {
		t.Fatalf("healthy fetch: rec=%+v tr=%v err=%v", rec, tr, err)
	}

	// Invalidate; the agent re-pins 300ms from now.
	a.InvalidateMR(300 * time.Millisecond)

	// The very next fetch must degrade to the standby — the RDMA read
	// fails (stale key, and the refreshed handshake has no region to
	// offer yet), the breaker counts the failure, and the record still
	// arrives over the socket channel in the same call.
	rec, tr, err = pr.FetchVia()
	if err != nil {
		t.Fatalf("fetch during outage: %v — fallback must mask RDMA-only breakage", err)
	}
	if tr != core.TransportSocket || rec.NodeID != 7 {
		t.Fatalf("fetch during outage: rec=%+v tr=%v, want socket-served record", rec, tr)
	}

	// Second consecutive failure trips the breaker (TripAfter default 2).
	if _, tr, err = pr.FetchVia(); err != nil || tr != core.TransportSocket {
		t.Fatalf("second outage fetch: tr=%v err=%v", tr, err)
	}
	fo := pr.Failover()
	if fo == nil || !fo.Tripped() {
		t.Fatal("breaker not tripped after two consecutive RDMA failures")
	}
	if fo.Trips != 1 {
		t.Fatalf("Trips = %d, want 1", fo.Trips)
	}

	// While tripped, fetches keep flowing over the standby; every 4th
	// carries a background re-arm probe. After the re-pin the re-arm
	// re-handshake picks up the fresh rkey, and two consecutive
	// successes fail the breaker back.
	deadline := time.Now().Add(15 * time.Second)
	for fo.Tripped() {
		if time.Now().After(deadline) {
			t.Fatal("breaker never failed back after MR re-pin")
		}
		if _, tr, err = pr.FetchVia(); err != nil || tr != core.TransportSocket {
			t.Fatalf("tripped fetch: tr=%v err=%v", tr, err)
		}
		time.Sleep(20 * time.Millisecond)
	}
	if fo.FailBacks != 1 {
		t.Fatalf("FailBacks = %d, want 1", fo.FailBacks)
	}

	// Back on the preferred transport, serving fresh records.
	rec, tr, err = pr.FetchVia()
	if err != nil || tr != core.TransportRDMA || rec.NodeID != 7 {
		t.Fatalf("post-fail-back fetch: rec=%+v tr=%v err=%v", rec, tr, err)
	}
	if pr.Fallbacks == 0 || pr.ReArms == 0 {
		t.Fatalf("Fallbacks/ReArms = %d/%d, want both non-zero", pr.Fallbacks, pr.ReArms)
	}
}

// TestFailoverNoopOnSocketScheme: arming a breaker on a socket-scheme
// probe is documented as a no-op — there is no faster transport to
// fall back from.
func TestFailoverNoopOnSocketScheme(t *testing.T) {
	_, pr := startPair(t, core.SocketSync, synthetic(3))
	pr.SetFailover(core.FailoverConfig{})
	if pr.Failover() != nil {
		t.Fatal("socket-scheme probe grew a breaker")
	}
	rec, tr, err := pr.FetchVia()
	if err != nil || tr != core.TransportSocket || rec.NrRunning != 3 {
		t.Fatalf("fetch: rec=%+v tr=%v err=%v", rec, tr, err)
	}
}

// TestFailoverUnarmedUnchanged: without SetFailover an RDMA probe keeps
// the seed behaviour — FetchVia reports RDMA and survives an agent MR
// re-pin via its one re-handshake retry (no breaker involved).
func TestFailoverUnarmedUnchanged(t *testing.T) {
	a, pr := startPair(t, core.RDMASync, synthetic(5))
	if _, tr, err := pr.FetchVia(); err != nil || tr != core.TransportRDMA {
		t.Fatalf("fetch: tr=%v err=%v", tr, err)
	}
	// Instant re-pin: the region comes back immediately with a new key;
	// the retry's re-handshake must absorb the rotation.
	a.InvalidateMR(1 * time.Millisecond)
	time.Sleep(50 * time.Millisecond)
	if _, tr, err := pr.FetchVia(); err != nil || tr != core.TransportRDMA {
		t.Fatalf("fetch after key rotation: tr=%v err=%v", tr, err)
	}
	if pr.Rehandshakes == 0 {
		t.Fatal("key rotation absorbed without a re-handshake?")
	}
}
