package livemon

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"rdmamon/internal/connpool"
	"rdmamon/internal/tcpverbs"
)

// ErrPoolSaturated reports a Get that found no budget for its target
// within AcquireTimeout (also the answer once the pool is closed).
var ErrPoolSaturated = errors.New("livemon: connection pool saturated")

// PoolConfig shapes the live connection pool — the deployable
// counterpart of the simulated monitor's pooled transport, driven by
// the same internal/connpool engine (budgets, breakers, epoch fence).
type PoolConfig struct {
	connpool.Config

	// OpTimeout is the per-operation deadline for pool-dialed
	// connections (<= 0 takes the transport default).
	OpTimeout time.Duration
	// AcquireTimeout bounds how long Get blocks while the pool sheds
	// (default 2s). Budget pressure delays a live caller instead of
	// failing it, but not forever.
	AcquireTimeout time.Duration
	// GCEvery is the idle-GC cadence (default IdleAfterNS/2, floor
	// 10ms; no GC loop runs when IdleAfterNS is 0).
	GCEvery time.Duration
}

// ConnPool shares tcpverbs connections across probes under explicit
// resource budgets: max conns/fds, a dial-rate token bucket, idle GC
// and per-target dial breakers. Safe for concurrent use; Close is
// idempotent and releases every pooled connection.
type ConnPool struct {
	cfg  PoolConfig
	pool *connpool.Pool[string, *tcpverbs.Conn]

	closeOnce sync.Once
	stop      chan struct{}
	wg        sync.WaitGroup
}

// NewConnPool builds the pool and, when idle GC is configured, starts
// its background collector.
func NewConnPool(cfg PoolConfig) *ConnPool {
	if cfg.AcquireTimeout <= 0 {
		cfg.AcquireTimeout = 2 * time.Second
	}
	p := connpool.New[string, *tcpverbs.Conn](cfg.Config,
		func() int64 { return time.Now().UnixNano() })
	p.OnClose = func(_ string, c *tcpverbs.Conn) { c.Close() }
	cp := &ConnPool{cfg: cfg, pool: p, stop: make(chan struct{})}
	if cfg.IdleAfterNS > 0 {
		every := cfg.GCEvery
		if every <= 0 {
			every = time.Duration(cfg.IdleAfterNS / 2)
		}
		if every < 10*time.Millisecond {
			every = 10 * time.Millisecond
		}
		cp.wg.Add(1)
		go func() {
			defer cp.wg.Done()
			t := time.NewTicker(every)
			defer t.Stop()
			for {
				select {
				case <-cp.stop:
					return
				case <-t.C:
					p.GC()
				}
			}
		}()
	}
	return cp
}

// Get blocks until it holds a leased connection to addr: a pooled one,
// or one it dials under the pool's budgets. Shed verdicts (budget
// pressure, breaker window, backoff) retry on a short sleep so
// pressure delays the caller rather than failing it, bounded by
// AcquireTimeout. Dial errors surface immediately — there the target,
// not the budget, is the problem.
func (cp *ConnPool) Get(addr string, hot bool) (connpool.Lease[string, *tcpverbs.Conn], error) {
	var zero connpool.Lease[string, *tcpverbs.Conn]
	deadline := time.Now().Add(cp.cfg.AcquireTimeout)
	for {
		l, v, reason := cp.pool.Acquire(addr, hot)
		switch v {
		case connpool.Conn:
			return l, nil
		case connpool.Dial:
			c, err := tcpverbs.DialTimeout(addr, cp.cfg.OpTimeout)
			if err != nil {
				cp.pool.DialFailed(addr)
				return zero, err
			}
			lease, lerr := cp.pool.DialDone(addr, c)
			if lerr != nil {
				return zero, lerr
			}
			return lease, nil
		default:
			if !time.Now().Before(deadline) {
				return zero, fmt.Errorf("%w (shed: %v)", ErrPoolSaturated, reason)
			}
			time.Sleep(time.Millisecond)
		}
	}
}

// Put returns a leased connection. A non-nil opErr recycles it (the
// next Get redials) and feeds the target's breaker.
func (cp *ConnPool) Put(l connpool.Lease[string, *tcpverbs.Conn], opErr error) {
	cp.pool.Release(l, opErr)
}

// Stats snapshots the underlying pool's counters.
func (cp *ConnPool) Stats() connpool.Stats { return cp.pool.Stats() }

// Pool exposes the underlying budgeted pool for tests.
func (cp *ConnPool) Pool() *connpool.Pool[string, *tcpverbs.Conn] { return cp.pool }

// Close stops the GC loop and recycles every pooled connection.
// Idempotent and safe for concurrent use: every caller returns only
// after teardown has completed once.
func (cp *ConnPool) Close() {
	cp.closeOnce.Do(func() {
		close(cp.stop)
		cp.wg.Wait()
		cp.pool.Close()
	})
}
