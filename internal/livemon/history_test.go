package livemon

import (
	"testing"
	"time"

	"rdmamon/internal/core"
	"rdmamon/internal/procfs"
)

// startRingPair launches an agent publishing a K-slot history ring and
// a probe dialed to it.
func startRingPair(t *testing.T, scheme core.Scheme, k int, p procfs.Provider) (*Agent, *Probe) {
	t.Helper()
	a, err := StartAgent(Config{
		Scheme: scheme, NodeID: 7, Provider: p,
		Interval: 5 * time.Millisecond, HistoryK: k,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { a.Close() })
	pr, err := Dial(a.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { pr.Close() })
	return a, pr
}

func TestHistoryHandshakeAndFetch(t *testing.T) {
	for _, s := range []core.Scheme{core.RDMAAsync, core.RDMASync, core.ERDMASync} {
		s := s
		t.Run(s.String(), func(t *testing.T) {
			_, pr := startRingPair(t, s, 8, synthetic(5))
			if pr.RingK() != 8 {
				t.Fatalf("handshake ringK = %d, want 8", pr.RingK())
			}
			rec, err := pr.Fetch()
			if err != nil {
				t.Fatal(err)
			}
			if rec.NodeID != 7 || rec.NrRunning != 5 {
				t.Fatalf("newest ring record = %+v", rec)
			}
			if pr.RingSamples == 0 {
				t.Fatal("ring fetch accounted no samples")
			}
		})
	}
}

func TestHistoryWindowFillsAndOrders(t *testing.T) {
	_, pr := startRingPair(t, core.ERDMASync, 4, synthetic(2))
	deadline := time.Now().Add(2 * time.Second)
	for {
		v, err := pr.FetchHistory()
		if err != nil {
			t.Fatal(err)
		}
		if v.Count == 4 {
			for i := 1; i < v.Count; i++ {
				if v.Records[i].KTimeNS > v.Records[i-1].KTimeNS {
					t.Fatalf("window not newest-first at slot %d", i)
				}
				if v.Records[i].Seq >= v.Records[i-1].Seq {
					t.Fatalf("sequence not descending at slot %d", i)
				}
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("window never filled: %d/4 records", v.Count)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestHistoryAmortizesWorkRequests(t *testing.T) {
	a, pr := startRingPair(t, core.RDMASync, 8, synthetic(3))
	time.Sleep(60 * time.Millisecond) // let the sampler fill the window
	reads0, _, _ := a.verbs.Stats()
	recs, err := pr.FetchBurst(8)
	if err != nil {
		t.Fatal(err)
	}
	reads1, _, _ := a.verbs.Stats()
	// The burst is served from the history region: many samples, one
	// served read, where the point-record path would post 8.
	if got := reads1 - reads0; got != 1 {
		t.Fatalf("burst cost %d served reads, want 1", got)
	}
	if len(recs) < 2 {
		t.Fatalf("burst returned %d records, want a filled window", len(recs))
	}
}

func TestHistoryFetchSurvivesInvalidate(t *testing.T) {
	a, pr := startRingPair(t, core.ERDMASync, 4, synthetic(1))
	if _, err := pr.FetchHistory(); err != nil {
		t.Fatal(err)
	}
	a.InvalidateMR(20 * time.Millisecond)
	deadline := time.Now().Add(2 * time.Second)
	for {
		v, err := pr.FetchHistory()
		if err == nil && v.Epoch == 1 {
			return // re-handshook onto the re-pinned region, epoch bumped
		}
		if time.Now().After(deadline) {
			t.Fatalf("never recovered post-repin window: epoch=%d err=%v", v.Epoch, err)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestHistoryRequiresRing(t *testing.T) {
	_, pr := startPair(t, core.RDMASync, synthetic(1))
	if pr.RingK() != 0 {
		t.Fatalf("ring-less agent advertises ringK %d", pr.RingK())
	}
	if _, err := pr.FetchHistory(); err == nil {
		t.Fatal("FetchHistory succeeded against a ring-less agent")
	}
}

func TestHistoryIgnoredBySocketSchemes(t *testing.T) {
	a, err := StartAgent(Config{
		Scheme: core.SocketAsync, NodeID: 3, Provider: synthetic(1),
		Interval: 5 * time.Millisecond, HistoryK: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	if a.RingK() != 0 {
		t.Fatalf("socket agent kept HistoryK %d", a.RingK())
	}
}
