package livemon

import (
	"testing"
	"time"

	"rdmamon/internal/core"
)

func TestMonitorPollsFleet(t *testing.T) {
	var agents []*Agent
	var targets []string
	for i := 0; i < 3; i++ {
		a, err := StartAgent(Config{
			Scheme:   core.RDMASync,
			NodeID:   uint16(i + 1),
			Provider: synthetic(i + 1),
		})
		if err != nil {
			t.Fatal(err)
		}
		agents = append(agents, a)
		targets = append(targets, a.Addr())
	}
	defer func() {
		for _, a := range agents {
			a.Close()
		}
	}()
	m, dialErrs := NewMonitor(targets, 10*time.Millisecond)
	defer m.Close()
	if len(dialErrs) != 0 {
		t.Fatalf("dial errors: %v", dialErrs)
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		all := true
		for i, tgt := range targets {
			rec, at, ok := m.Latest(tgt)
			if !ok {
				all = false
				break
			}
			if int(rec.NodeID) != i+1 || at.IsZero() {
				t.Fatalf("target %s record %+v", tgt, rec)
			}
		}
		if all {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("monitor never collected all records")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if len(m.Targets()) != 3 {
		t.Fatalf("targets = %v", m.Targets())
	}
}

func TestMonitorLeastLoaded(t *testing.T) {
	busy := synthetic(20)
	busy.S.UtilPerMille = []int{1000, 1000}
	idle := synthetic(0)
	idle.S.UtilPerMille = []int{10, 10}
	a1, err := StartAgent(Config{Scheme: core.RDMASync, NodeID: 1, Provider: busy})
	if err != nil {
		t.Fatal(err)
	}
	defer a1.Close()
	a2, err := StartAgent(Config{Scheme: core.RDMASync, NodeID: 2, Provider: idle})
	if err != nil {
		t.Fatal(err)
	}
	defer a2.Close()
	m, _ := NewMonitor([]string{a1.Addr(), a2.Addr()}, 10*time.Millisecond)
	defer m.Close()
	deadline := time.Now().Add(2 * time.Second)
	for {
		if m.LeastLoaded() == a2.Addr() {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("LeastLoaded = %q, want idle agent %q", m.LeastLoaded(), a2.Addr())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestMonitorSurvivesAgentDeath(t *testing.T) {
	a, err := StartAgent(Config{Scheme: core.RDMASync, NodeID: 1, Provider: synthetic(1)})
	if err != nil {
		t.Fatal(err)
	}
	m, dialErrs := NewMonitor([]string{a.Addr()}, 5*time.Millisecond)
	defer m.Close()
	if len(dialErrs) != 0 {
		t.Fatal(dialErrs)
	}
	target := a.Addr()
	deadline := time.Now().Add(2 * time.Second)
	for {
		if _, _, ok := m.Latest(target); ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no record before agent death")
		}
		time.Sleep(2 * time.Millisecond)
	}
	a.Close()
	deadline = time.Now().Add(2 * time.Second)
	for {
		if m.Err(target) != nil {
			break // error surfaced, monitor still alive
		}
		if time.Now().After(deadline) {
			t.Fatal("fetch error never surfaced")
		}
		time.Sleep(5 * time.Millisecond)
	}
	// Cached record remains available.
	if _, _, ok := m.Latest(target); !ok {
		t.Fatal("cached record lost on error")
	}
}

func TestMonitorBadTargets(t *testing.T) {
	m, dialErrs := NewMonitor([]string{"127.0.0.1:1"}, 10*time.Millisecond)
	defer m.Close()
	if len(dialErrs) != 1 {
		t.Fatalf("dial errors = %v", dialErrs)
	}
	if m.LeastLoaded() != "" {
		t.Fatal("empty monitor should report no least-loaded target")
	}
}
