package livemon

import (
	"sync"
	"testing"
	"time"

	"rdmamon/internal/connpool"
	"rdmamon/internal/core"
)

// startFleet launches n RDMA-Sync agents and returns their addresses.
func startFleet(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		a, err := StartAgent(Config{Scheme: core.RDMASync, NodeID: uint16(i + 1), Provider: synthetic(i + 1)})
		if err != nil {
			t.Fatalf("agent %d: %v", i, err)
		}
		t.Cleanup(func() { a.Close() })
		addrs[i] = a.Addr()
	}
	return addrs
}

// TestPooledMonitor runs the live monitor through a shared connection
// pool whose budget is smaller than the fleet: every target must still
// produce records (eviction recycles idle conns to make room), the
// budget must hold, and Close must return every connection.
func TestPooledMonitor(t *testing.T) {
	leakCheck(t)
	addrs := startFleet(t, 6)
	m, errs := NewMonitorCfg(addrs, MonitorConfig{
		Interval: 20 * time.Millisecond,
		Shards:   2,
		Pool: &PoolConfig{
			Config:         connpool.Config{MaxConns: 4, DialsPerSec: 500},
			AcquireTimeout: 5 * time.Second,
		},
	})
	if len(errs) != 0 {
		t.Fatalf("dial errors: %v", errs)
	}
	defer m.Close()
	if m.ConnPool() == nil {
		t.Fatal("pooled config produced no ConnPool")
	}

	deadline := time.Now().Add(5 * time.Second)
	for {
		all := true
		for _, a := range addrs {
			if _, _, ok := m.Latest(a); !ok {
				all = false
			}
		}
		if all {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("not every target produced a record through the pool")
		}
		time.Sleep(10 * time.Millisecond)
	}

	st := m.ConnPool().Stats()
	if st.MaxLive > 4 {
		t.Fatalf("pool exceeded its budget: MaxLive %d > 4", st.MaxLive)
	}
	if st.Evictions == 0 {
		t.Fatalf("6 targets over 4 conns never evicted: %+v", st)
	}
	m.Close()
	if st := m.ConnPool().Stats(); st.Live != 0 || st.Dialing != 0 {
		t.Fatalf("connections survived Close: %+v", st)
	}
}

// TestMonitorCloseIdempotent closes a monitor from several goroutines
// at once, then again after: no panic, no deadlock, and every caller
// returns only after teardown is complete (all conns released).
func TestMonitorCloseIdempotent(t *testing.T) {
	leakCheck(t)
	addrs := startFleet(t, 3)
	m, errs := NewMonitorCfg(addrs, MonitorConfig{
		Interval: 10 * time.Millisecond,
		Pool: &PoolConfig{
			Config:         connpool.Config{MaxConns: 3},
			AcquireTimeout: 5 * time.Second,
		},
	})
	if len(errs) != 0 {
		t.Fatalf("dial errors: %v", errs)
	}
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			m.Close()
		}()
	}
	wg.Wait()
	m.Close() // and once more, sequentially
	if st := m.ConnPool().Stats(); st.Live != 0 || st.Dialing != 0 {
		t.Fatalf("connections survived concurrent Close: %+v", st)
	}
}

// TestAgentCloseIdempotent double-closes an agent concurrently; the
// verbs listener must tear down exactly once with no panic.
func TestAgentCloseIdempotent(t *testing.T) {
	leakCheck(t)
	a, err := StartAgent(Config{Scheme: core.SocketAsync, NodeID: 1, Provider: synthetic(1)})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			a.Close()
		}()
	}
	wg.Wait()
	if e1, e2 := a.Close(), a.Close(); e1 != e2 {
		t.Fatalf("repeated Close changed its answer: %v then %v", e1, e2)
	}
}

// TestPooledProbeFailover checks that a pooled probe still runs the
// failover ladder: kill the agent, and the pooled fetch must fail (and
// recycle its lease) rather than hang or serve a stale record.
func TestPooledProbeFailover(t *testing.T) {
	leakCheck(t)
	a, err := StartAgent(Config{Scheme: core.RDMASync, NodeID: 1, Provider: synthetic(3)})
	if err != nil {
		t.Fatal(err)
	}
	cp := NewConnPool(PoolConfig{
		Config:         connpool.Config{MaxConns: 2, BackoffNS: int64(time.Millisecond)},
		OpTimeout:      200 * time.Millisecond,
		AcquireTimeout: time.Second,
	})
	defer cp.Close()
	p, err := DialPooled(cp, a.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Fetch(); err != nil {
		t.Fatalf("pooled fetch: %v", err)
	}
	a.Close()
	if _, err := p.Fetch(); err == nil {
		t.Fatal("fetch succeeded against a dead agent")
	}
	st := cp.Stats()
	if st.Recycles == 0 && st.DialErrors == 0 {
		t.Fatalf("dead agent neither recycled nor failed a dial: %+v", st)
	}
}
