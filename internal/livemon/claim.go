package livemon

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"time"

	"rdmamon/internal/core"
	"rdmamon/internal/sim"
	"rdmamon/internal/tcpverbs"
	"rdmamon/internal/wire"
)

// portClaims is the control endpoint handing out the claim-table keys.
const portClaims = "rmon-claims"

// claimVault is the agent-side (witness) home of the active-active
// claim table: per-shard word and record regions mutated exclusively
// by remote one-sided operations. Each word gets its own region
// because the transport's atomic unit is the first eight bytes of a
// region; after registration the agent application plays no part in
// arbitration.
type claimVault struct {
	mu      sync.Mutex
	words   [][]byte
	recs    [][]byte
	wordMRs []*tcpverbs.MR
	recMRs  []*tcpverbs.MR
}

func (a *Agent) hostClaims(shards int) {
	v := &claimVault{
		words:   make([][]byte, shards),
		recs:    make([][]byte, shards),
		wordMRs: make([]*tcpverbs.MR, shards),
		recMRs:  make([]*tcpverbs.MR, shards),
	}
	a.cvault = v
	for s := 0; s < shards; s++ {
		word := make([]byte, wire.ClaimWordSize)
		rec := make([]byte, wire.ClaimRecordSize)
		v.words[s] = word
		v.recs[s] = rec
		v.wordMRs[s] = a.verbs.RegisterWritableMR(func() []byte {
			v.mu.Lock()
			defer v.mu.Unlock()
			return append([]byte(nil), word...)
		}, len(word), func(b []byte) {
			v.mu.Lock()
			defer v.mu.Unlock()
			copy(word, b)
		})
		v.recMRs[s] = a.verbs.RegisterWritableMR(func() []byte {
			v.mu.Lock()
			defer v.mu.Unlock()
			return append([]byte(nil), rec...)
		}, len(rec), func(b []byte) {
			v.mu.Lock()
			defer v.mu.Unlock()
			copy(rec, b)
		})
	}
	a.verbs.HandleCall(portClaims, func([]byte) []byte {
		reply := make([]byte, 2+8*shards)
		binary.BigEndian.PutUint16(reply[0:], uint16(shards))
		for s := 0; s < shards; s++ {
			binary.BigEndian.PutUint32(reply[2+8*s:], v.wordMRs[s].Key())
			binary.BigEndian.PutUint32(reply[6+8*s:], v.recMRs[s].Key())
		}
		return reply
	})
}

// ClaimShards returns the size of the claim table this agent hosts (0
// unless Config.HostClaims was set).
func (a *Agent) ClaimShards() int {
	if a.cvault == nil {
		return 0
	}
	return len(a.cvault.words)
}

// ClaimWord returns shard s's current claim word. Introspection only;
// front-ends mutate it with one-sided compare-and-swap.
func (a *Agent) ClaimWord(s int) uint64 {
	if a.cvault == nil || s < 0 || s >= len(a.cvault.words) {
		return 0
	}
	a.cvault.mu.Lock()
	defer a.cvault.mu.Unlock()
	return binary.LittleEndian.Uint64(a.cvault.words[s])
}

// ClaimRecordAt returns the descriptive record published by shard s's
// current holder, if any.
func (a *Agent) ClaimRecordAt(s int) (wire.ClaimRecord, error) {
	if a.cvault == nil || s < 0 || s >= len(a.cvault.recs) {
		return wire.ClaimRecord{}, fmt.Errorf("livemon: agent hosts no claim shard %d", s)
	}
	a.cvault.mu.Lock()
	raw := append([]byte(nil), a.cvault.recs[s]...)
	a.cvault.mu.Unlock()
	return wire.DecodeClaim(raw)
}

// claimClientOp tags what one shard's CAS this cycle was trying to do.
type claimClientOp uint8

const (
	opClientRenew claimClientOp = iota
	opClientBid
	opClientRelease
)

// ClaimClient drives one front-end's per-shard claim machines against
// a live witness agent, mirroring core.ClaimManager over tcpverbs
// instead of the simulated fabric. Time is this process's monotonic
// clock; the protocol never compares clocks across machines. Bids,
// renewals and releases go through CompareSwapFenced, so a mid-CAS
// redial cannot turn a win into a false loss and a stale-epoch bid
// surfaces as a fence instead of being retried forever.
type ClaimClient struct {
	conn     *tcpverbs.Conn
	wordKeys []uint32
	recKeys  []uint32
	start    time.Time

	mu     sync.Mutex
	claims []*core.Claim

	// CASErrors / ReadErrors count transport failures; the protocol
	// retries next cycle and lets validity lapse meanwhile. Fenced
	// counts CAS losses to a strictly newer epoch.
	CASErrors  uint64
	ReadErrors uint64
	Fenced     uint64

	paused bool
	stop   chan struct{}
	wg     sync.WaitGroup
}

// DialClaims connects front-end me (1-based) to the claim table hosted
// on the witness agent at addr. owners is the front-end ring size for
// the home-shard mapping (0 = no home preference: every shard is
// foreign and bids wait out VacantGrace). cfg durations are
// virtual-time valued but interpreted as wall-clock nanoseconds here;
// the zero value takes defaults derived from a 50ms poll, and the
// shard count always follows the witness's table.
func DialClaims(addr string, me uint16, owners int, cfg core.ClaimConfig) (*ClaimClient, error) {
	conn, err := tcpverbs.Dial(addr)
	if err != nil {
		return nil, err
	}
	reply, err := conn.Call(portClaims, nil)
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("livemon: claim key exchange: %w", err)
	}
	if len(reply) < 2 {
		conn.Close()
		return nil, fmt.Errorf("livemon: short claim key reply")
	}
	shards := int(binary.BigEndian.Uint16(reply[0:]))
	if shards == 0 || len(reply) < 2+8*shards {
		conn.Close()
		return nil, fmt.Errorf("livemon: claim key reply names %d shards with %d bytes", shards, len(reply))
	}
	cfg.Shards = shards
	cfg = cfg.WithDefaults(sim.Time(50 * time.Millisecond))
	l := &ClaimClient{
		conn:     conn,
		wordKeys: make([]uint32, shards),
		recKeys:  make([]uint32, shards),
		start:    time.Now(),
		claims:   make([]*core.Claim, shards),
		stop:     make(chan struct{}),
	}
	for s := 0; s < shards; s++ {
		l.wordKeys[s] = binary.BigEndian.Uint32(reply[2+8*s:])
		l.recKeys[s] = binary.BigEndian.Uint32(reply[6+8*s:])
		l.claims[s] = core.NewClaim(me, uint16(s), owners, cfg)
	}
	l.wg.Add(1)
	go l.run()
	return l, nil
}

// now maps the monotonic clock onto the claim machines' timeline.
func (l *ClaimClient) now() sim.Time { return sim.Time(time.Since(l.start)) }

// Shards returns the claim-table size this client drives.
func (l *ClaimClient) Shards() int { return len(l.claims) }

// Valid reports whether this front-end may dispatch to shard right now
// — the fence to consult per request, with the routed back-end folded
// onto its shard by backend % Shards.
func (l *ClaimClient) Valid(shard int) bool {
	if shard < 0 || shard >= len(l.claims) {
		return false
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.claims[shard].Valid(l.now())
}

// HeldValid returns how many shards this front-end validly holds.
func (l *ClaimClient) HeldValid() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	now := l.now()
	n := 0
	for _, c := range l.claims {
		if c.Valid(now) {
			n++
		}
	}
	return n
}

// Counters sums the per-shard takeover/renewal/deposal/handback counts.
func (l *ClaimClient) Counters() (takeovers, renewals, deposals, handbacks uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, c := range l.claims {
		takeovers += c.Takeovers
		renewals += c.Renewals
		deposals += c.Deposals
		handbacks += c.Handbacks
	}
	return
}

// Errors returns the transport-failure and epoch-fence counts.
func (l *ClaimClient) Errors() (casErrors, readErrors, fenced uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.CASErrors, l.ReadErrors, l.Fenced
}

// Pause suspends the renew/observe loop without releasing anything —
// the live stand-in for a frozen front-end. Validity lapses on its
// own; survivors reclaim the orphaned shards after ExpireAfter, and a
// later Resume gets fenced shard by shard through failed renewals.
func (l *ClaimClient) Pause() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.paused = true
}

// Resume lifts a Pause.
func (l *ClaimClient) Resume() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.paused = false
}

// Close stops the claim loop and closes the connection. Held claims
// are not released: they expire and are reclaimed, exactly as if this
// front-end had crashed — which, as far as the protocol can tell, it
// has.
func (l *ClaimClient) Close() error {
	select {
	case <-l.stop:
	default:
		close(l.stop)
	}
	l.wg.Wait()
	return l.conn.Close()
}

func (l *ClaimClient) run() {
	defer l.wg.Done()
	every := time.Duration(l.claims[0].Cfg.CheckEvery)
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-l.stop:
			return
		case <-t.C:
			l.step()
		}
	}
}

// step is one observe/bid cycle over the whole table, one shard at a
// time (the live transport pipelines per connection; the simulated
// manager's doorbell batching has no tcpverbs equivalent).
func (l *ClaimClient) step() {
	l.mu.Lock()
	if l.paused {
		l.mu.Unlock()
		return
	}
	n := len(l.claims)
	l.mu.Unlock()
	for s := 0; s < n; s++ {
		select {
		case <-l.stop:
			return
		default:
		}
		l.stepShard(s)
	}
}

func (l *ClaimClient) stepShard(s int) {
	l.mu.Lock()
	c := l.claims[s]
	now := l.now()
	var cmp, swp uint64
	var op claimClientOp
	decided := true
	switch {
	case c.Held() && c.HandbackDue(now):
		cmp, swp = c.ReleaseBid()
		op = opClientRelease
	case c.Held():
		cmp, swp = c.RenewBid()
		op = opClientRenew
	default:
		decided = false
	}
	l.mu.Unlock()

	if !decided {
		raw, err := l.conn.RDMARead(l.wordKeys[s], wire.ClaimWordSize)
		if err != nil || len(raw) < wire.ClaimWordSize {
			l.mu.Lock()
			l.ReadErrors++
			l.mu.Unlock()
			return
		}
		word := binary.LittleEndian.Uint64(raw)
		l.mu.Lock()
		if !c.Observe(word, l.now()) {
			l.mu.Unlock()
			return
		}
		cmp, swp = c.ClaimBid()
		op = opClientBid
		l.mu.Unlock()
	}

	// Validity is stamped from the instant the CAS is posted, not from
	// when the reply lands — the freeze-safe rule shared with the lease:
	// a front-end stalled between post and completion must not thaw into
	// an extended validity the others have already timed out.
	posted := l.now()
	prev, err := l.conn.CompareSwapFenced(l.wordKeys[s], cmp, swp)
	fenced := errors.Is(err, tcpverbs.ErrFenced)
	l.mu.Lock()
	if err != nil && !fenced {
		l.CASErrors++
		l.mu.Unlock()
		return
	}
	if fenced {
		l.Fenced++
	}
	won := !fenced && prev == cmp
	var rec wire.ClaimRecord
	publish := false
	switch op {
	case opClientRenew:
		if won {
			c.RenewWon(posted)
		} else {
			c.RenewLost(prev, posted)
		}
	case opClientRelease:
		if won {
			c.ReleaseWon(posted)
		} else {
			c.ReleaseLost(prev, posted)
		}
	case opClientBid:
		if won {
			c.ClaimWon(posted)
			rec = wire.ClaimRecord{
				Shard:   uint16(s),
				Owner:   c.Me,
				Epoch:   c.Epoch(),
				GrantNS: int64(posted),
				TTLNS:   int64(c.Cfg.TTL),
			}
			publish = true
		} else {
			c.ClaimLost(prev, posted)
		}
	}
	l.mu.Unlock()
	if publish {
		// Observability only; a failed write does not affect holdership.
		_ = l.conn.RDMAWrite(l.recKeys[s], rec.Encode())
	}
}
