package livemon

import (
	"encoding/binary"
	"fmt"
	"sync"
	"time"

	"rdmamon/internal/core"
	"rdmamon/internal/sim"
	"rdmamon/internal/tcpverbs"
	"rdmamon/internal/wire"
)

// portLease is the control endpoint handing out the lease region keys.
const portLease = "rmon-lease"

// leaseVault is the agent-side (witness) home of the lease word and the
// descriptive lease record: two writable regions mutated exclusively by
// remote one-sided operations. After registration the agent application
// plays no part in the protocol — renewals and takeovers are served by
// the transport's responder, exactly like the load regions.
type leaseVault struct {
	mu     sync.Mutex
	word   []byte
	rec    []byte
	wordMR *tcpverbs.MR
	recMR  *tcpverbs.MR
}

func (a *Agent) hostLease() {
	v := &leaseVault{
		word: make([]byte, wire.LeaseWordSize),
		rec:  make([]byte, wire.LeaseRecordSize),
	}
	a.vault = v
	v.wordMR = a.verbs.RegisterWritableMR(func() []byte {
		v.mu.Lock()
		defer v.mu.Unlock()
		return append([]byte(nil), v.word...)
	}, len(v.word), func(b []byte) {
		v.mu.Lock()
		defer v.mu.Unlock()
		copy(v.word, b)
	})
	v.recMR = a.verbs.RegisterWritableMR(func() []byte {
		v.mu.Lock()
		defer v.mu.Unlock()
		return append([]byte(nil), v.rec...)
	}, len(v.rec), func(b []byte) {
		v.mu.Lock()
		defer v.mu.Unlock()
		copy(v.rec, b)
	})
	a.verbs.HandleCall(portLease, func([]byte) []byte {
		keys := make([]byte, 8)
		binary.BigEndian.PutUint32(keys[0:], v.wordMR.Key())
		binary.BigEndian.PutUint32(keys[4:], v.recMR.Key())
		return keys
	})
}

// LeaseWord returns the current lease word hosted by this agent (zero
// unless Config.HostLease was set). Introspection only; front-ends
// mutate it with one-sided compare-and-swap.
func (a *Agent) LeaseWord() uint64 {
	if a.vault == nil {
		return 0
	}
	a.vault.mu.Lock()
	defer a.vault.mu.Unlock()
	return binary.LittleEndian.Uint64(a.vault.word)
}

// LeaseRecord returns the descriptive lease record published by the
// current holder, if any.
func (a *Agent) LeaseRecord() (wire.LeaseRecord, error) {
	if a.vault == nil {
		return wire.LeaseRecord{}, fmt.Errorf("livemon: agent hosts no lease")
	}
	a.vault.mu.Lock()
	raw := append([]byte(nil), a.vault.rec...)
	a.vault.mu.Unlock()
	return wire.DecodeLease(raw)
}

// LeaseClient drives one front-end's lease machine against a live
// witness agent, mirroring core.LeaseManager over tcpverbs instead of
// the simulated fabric. Time is this process's monotonic clock; the
// protocol never compares clocks across machines (see internal/core's
// lease safety argument).
type LeaseClient struct {
	conn    *tcpverbs.Conn
	wordKey uint32
	recKey  uint32
	start   time.Time

	mu    sync.Mutex
	lease *core.Lease

	// CASErrors / ReadErrors count transport failures; the protocol
	// retries next cycle and lets validity lapse meanwhile.
	CASErrors  uint64
	ReadErrors uint64

	paused bool
	stop   chan struct{}
	wg     sync.WaitGroup
}

// DialLease connects replica me to the lease hosted on the witness
// agent at addr. cfg durations are virtual-time valued but interpreted
// as wall-clock nanoseconds here; the zero value takes defaults derived
// from a 50ms poll.
func DialLease(addr string, me uint16, cfg core.LeaseConfig) (*LeaseClient, error) {
	conn, err := tcpverbs.Dial(addr)
	if err != nil {
		return nil, err
	}
	keys, err := conn.Call(portLease, nil)
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("livemon: lease key exchange: %w", err)
	}
	if len(keys) < 8 {
		conn.Close()
		return nil, fmt.Errorf("livemon: short lease key reply")
	}
	l := &LeaseClient{
		conn:    conn,
		wordKey: binary.BigEndian.Uint32(keys[0:]),
		recKey:  binary.BigEndian.Uint32(keys[4:]),
		start:   time.Now(),
		lease:   core.NewLease(me, cfg.WithDefaults(sim.Time(50*time.Millisecond))),
		stop:    make(chan struct{}),
	}
	l.wg.Add(1)
	go l.run()
	return l, nil
}

// now maps the monotonic clock onto the lease machine's timeline.
func (l *LeaseClient) now() sim.Time { return sim.Time(time.Since(l.start)) }

// Valid reports whether this front-end may dispatch right now — the
// fence to consult per request.
func (l *LeaseClient) Valid() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.lease.Valid(l.now())
}

// Role returns the current lease role.
func (l *LeaseClient) Role() core.LeaseRole {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.lease.Role()
}

// Epoch returns the epoch this replica last held.
func (l *LeaseClient) Epoch() uint16 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.lease.Epoch()
}

// Counters returns the lease machine's takeover/renewal/deposal counts.
func (l *LeaseClient) Counters() (takeovers, renewals, deposals uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.lease.Takeovers, l.lease.Renewals, l.lease.Deposals
}

// Pause suspends the renew/observe loop without surrendering the lease
// — the live stand-in for a frozen or stalled front-end. Validity
// lapses on its own; a later Resume renews (revalidating if nobody took
// the epoch) or gets deposed by the CAS failure.
func (l *LeaseClient) Pause() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.paused = true
}

// Resume lifts a Pause.
func (l *LeaseClient) Resume() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.paused = false
}

// Close stops the lease loop and closes the connection. The lease word
// is left as-is: standbys take over after TakeoverAfter, exactly as if
// this front-end had died — which, as far as the protocol can tell, it
// has.
func (l *LeaseClient) Close() error {
	select {
	case <-l.stop:
	default:
		close(l.stop)
	}
	l.wg.Wait()
	return l.conn.Close()
}

func (l *LeaseClient) run() {
	defer l.wg.Done()
	l.mu.Lock()
	every := time.Duration(l.lease.Cfg.CheckEvery)
	l.mu.Unlock()
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-l.stop:
			return
		case <-t.C:
			l.step()
		}
	}
}

func (l *LeaseClient) step() {
	l.mu.Lock()
	if l.paused {
		l.mu.Unlock()
		return
	}
	primary := l.lease.Role() == core.RolePrimary
	var cmp, swp uint64
	if primary {
		cmp, swp = l.lease.RenewBid()
	}
	// Validity is stamped from the CAS post instant, not from when the
	// reply lands — see core.LeaseManager for why (a stall between post
	// and completion must not stretch validity).
	posted := l.now()
	l.mu.Unlock()

	if primary {
		prev, err := l.conn.CompareSwap(l.wordKey, cmp, swp)
		l.mu.Lock()
		switch {
		case err != nil:
			l.CASErrors++
		case prev == cmp:
			l.lease.RenewWon(posted)
		default:
			l.lease.RenewLost(prev, posted)
		}
		l.mu.Unlock()
		return
	}

	raw, err := l.conn.RDMARead(l.wordKey, wire.LeaseWordSize)
	if err != nil || len(raw) < wire.LeaseWordSize {
		l.mu.Lock()
		l.ReadErrors++
		l.mu.Unlock()
		return
	}
	word := binary.LittleEndian.Uint64(raw)
	l.mu.Lock()
	bid := l.lease.Observe(word, l.now())
	if bid {
		cmp, swp = l.lease.TakeoverBid()
	}
	posted = l.now()
	l.mu.Unlock()
	if !bid {
		return
	}
	prev, err := l.conn.CompareSwap(l.wordKey, cmp, swp)
	l.mu.Lock()
	switch {
	case err != nil:
		l.CASErrors++
		l.mu.Unlock()
	case prev == cmp:
		l.lease.TakeoverWon(posted)
		rec := wire.LeaseRecord{
			Holder:  l.lease.Me,
			Epoch:   l.lease.Epoch(),
			GrantNS: int64(posted),
			TTLNS:   int64(l.lease.Cfg.TTL),
		}
		l.mu.Unlock()
		// Observability only; a failed write does not affect primaryship.
		_ = l.conn.RDMAWrite(l.recKey, rec.Encode())
	default:
		l.lease.TakeoverLost(prev, posted)
		l.mu.Unlock()
	}
}
