package livemon

import (
	"encoding/binary"
	"fmt"
	"sync"
	"time"

	"rdmamon/internal/core"
	"rdmamon/internal/procfs"
	"rdmamon/internal/tcpverbs"
	"rdmamon/internal/wire"
)

// portPushInfo is the push-path control port: a 2-byte big-endian node
// id maps to that node's 4-byte aggregation-slot key (0 = no slot,
// e.g. after an invalidation and before the re-pin).
const portPushInfo = "rmon-push-info"

// PushHost is the live front-end half of the hybrid scheme: it hosts
// one writable aggregation slot per expected back-end, written remotely
// by Pushers via the one-sided write verb — the host application is
// never involved in a push, exactly like the agent application is never
// involved in a one-sided probe read. It is safe for concurrent use.
type PushHost struct {
	verbs *tcpverbs.Agent

	mu     sync.Mutex
	slots  map[uint16]*tcpverbs.MR
	last   map[uint16]wire.PushRecord
	lastAt map[uint16]time.Time
	closed bool

	received, torn uint64
}

// StartPushHost listens on addr and registers a writable slot for each
// expected back-end node id.
func StartPushHost(addr string, nodes []uint16) (*PushHost, error) {
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	v, err := tcpverbs.Listen(addr)
	if err != nil {
		return nil, err
	}
	h := &PushHost{
		verbs:  v,
		slots:  make(map[uint16]*tcpverbs.MR),
		last:   make(map[uint16]wire.PushRecord),
		lastAt: make(map[uint16]time.Time),
	}
	for _, n := range nodes {
		h.registerSlot(n)
	}
	v.HandleCall(portPushInfo, func(payload []byte) []byte {
		reply := make([]byte, 4)
		if len(payload) < 2 {
			return reply
		}
		node := binary.BigEndian.Uint16(payload)
		h.mu.Lock()
		if mr := h.slots[node]; mr != nil {
			binary.BigEndian.PutUint32(reply, mr.Key())
		}
		h.mu.Unlock()
		return reply
	})
	return h, nil
}

// registerSlot pins node's slot. Caller must not hold h.mu.
func (h *PushHost) registerSlot(node uint16) {
	buf := make([]byte, wire.PushRecordSize)
	mr := h.verbs.RegisterWritableMR(
		func() []byte { return buf },
		wire.PushRecordSize,
		func(data []byte) { h.sink(node, data) })
	h.mu.Lock()
	h.slots[node] = mr
	h.mu.Unlock()
}

// sink validates one landed push. A record that fails the CRC (a torn
// or corrupt write) or carries the wrong node id is dropped. A stale
// PushSeq alone is not enough to drop: a restarted agent resets its
// sequence to 1, and waiting for it to pass the dead process's
// watermark could ignore a live pusher for hours. So a record is
// stale only when both its sequence AND its push timestamp regress —
// a delayed duplicate of an old write fails both, a restarted pusher
// carries a fresh timestamp and takes over the slot.
func (h *PushHost) sink(node uint16, data []byte) {
	rec, err := wire.DecodePush(data)
	h.mu.Lock()
	defer h.mu.Unlock()
	if err != nil || rec.Load.NodeID != node {
		h.torn++
		return
	}
	if prev, ok := h.last[node]; ok && rec.PushSeq <= prev.PushSeq && rec.PushedNS <= prev.PushedNS {
		h.torn++
		return
	}
	h.last[node] = rec
	h.lastAt[node] = time.Now()
	h.received++
}

// Addr returns the host's listen address.
func (h *PushHost) Addr() string { return h.verbs.Addr() }

// Latest returns the newest pushed record for a node.
func (h *PushHost) Latest(node uint16) (wire.PushRecord, time.Time, bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	rec, ok := h.last[node]
	return rec, h.lastAt[node], ok
}

// Stats returns the processed / rejected push counts.
func (h *PushHost) Stats() (received, torn uint64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.received, h.torn
}

// SlotKey returns a node's current slot key (0 if none).
func (h *PushHost) SlotKey(node uint16) uint32 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if mr := h.slots[node]; mr != nil {
		return mr.Key()
	}
	return 0
}

// InvalidateSlot models the aggregation region going stale for one
// node: the slot is deregistered immediately — in-flight and subsequent
// pushes with the old key fail — and, if repin > 0, re-registered with
// a fresh key after repin. Pushers recover the new key through their
// re-handshake path.
func (h *PushHost) InvalidateSlot(node uint16, repin time.Duration) {
	h.mu.Lock()
	mr := h.slots[node]
	delete(h.slots, node)
	h.mu.Unlock()
	if mr == nil {
		return
	}
	h.verbs.Deregister(mr)
	if repin <= 0 {
		return
	}
	time.AfterFunc(repin, func() {
		h.mu.Lock()
		closed, exists := h.closed, h.slots[node] != nil
		h.mu.Unlock()
		if closed || exists {
			return
		}
		h.registerSlot(node)
	})
}

// Close stops the host.
func (h *PushHost) Close() error {
	h.mu.Lock()
	h.closed = true
	h.mu.Unlock()
	return h.verbs.Close()
}

// PusherConfig configures a live delta pusher.
type PusherConfig struct {
	Target   string // push host address
	NodeID   uint16
	Provider procfs.Provider

	// Threshold is the load-index delta that triggers a push
	// (default 0.05).
	Threshold float64
	// Check is the local sampling period (default 50ms). Sampling is
	// local and cheap; only crossings of Threshold cost a write.
	Check time.Duration
	// Heartbeat bounds the silence: a push is forced when the last one
	// is older than this, even if nothing changed (default 16x Check).
	Heartbeat time.Duration
}

func (c PusherConfig) withDefaults() PusherConfig {
	if c.Threshold <= 0 {
		c.Threshold = 0.05
	}
	if c.Check <= 0 {
		c.Check = 50 * time.Millisecond
	}
	if c.Heartbeat <= 0 {
		c.Heartbeat = 16 * c.Check
	}
	if c.Provider == nil {
		c.Provider = procfs.NewLinux("")
	}
	return c
}

// Pusher is the live back-end half of the hybrid scheme: it samples
// the local machine every Check and RDMA-Writes a timestamped delta
// record into its slot on the PushHost when the load index moved by
// Threshold (or Heartbeat expired). A failed write triggers one key
// re-handshake and retry — an invalidated-and-re-pinned slot hands out
// a fresh key.
type Pusher struct {
	cfg  PusherConfig
	conn *tcpverbs.Conn

	mu     sync.Mutex
	key    uint32
	seq    uint32
	last   wire.LoadRecord
	lastAt time.Time
	primed bool

	pushes, skips, errors, rekeys uint64

	stop chan struct{}
	wg   sync.WaitGroup
}

// StartPusher dials the push host, discovers this node's slot key and
// starts the sampling loop.
func StartPusher(cfg PusherConfig) (*Pusher, error) {
	cfg = cfg.withDefaults()
	conn, err := tcpverbs.Dial(cfg.Target)
	if err != nil {
		return nil, err
	}
	p := &Pusher{cfg: cfg, conn: conn, stop: make(chan struct{})}
	if err := p.rekey(); err != nil {
		conn.Close()
		return nil, err
	}
	p.wg.Add(1)
	go p.loop()
	return p, nil
}

// rekey re-fetches this node's slot key from the control port.
func (p *Pusher) rekey() error {
	req := make([]byte, 2)
	binary.BigEndian.PutUint16(req, p.cfg.NodeID)
	reply, err := p.conn.Call(portPushInfo, req)
	if err != nil {
		return fmt.Errorf("livemon: push key exchange: %w", err)
	}
	if len(reply) < 4 {
		return fmt.Errorf("livemon: short push key reply")
	}
	p.mu.Lock()
	p.key = binary.BigEndian.Uint32(reply)
	p.mu.Unlock()
	return nil
}

func (p *Pusher) loop() {
	defer p.wg.Done()
	t := time.NewTicker(p.cfg.Check)
	defer t.Stop()
	for {
		select {
		case <-p.stop:
			return
		case <-t.C:
			p.check()
		}
	}
}

// check samples the machine and pushes if the delta contract says so.
func (p *Pusher) check() {
	s, err := p.cfg.Provider.Snapshot()
	if err != nil {
		return // transient sampling errors keep the old state
	}
	p.mu.Lock()
	rec := s.Record(p.cfg.NodeID, p.seq+1)
	// The pusher process is running when it samples itself; subtract it
	// from the run queue so pushed records agree with what a one-sided
	// probe (no agent awake) would read.
	if rec.NrRunning > 0 {
		rec.NrRunning--
	}
	if p.primed && core.LoadDelta(rec, p.last) < p.cfg.Threshold &&
		time.Since(p.lastAt) < p.cfg.Heartbeat {
		p.skips++
		p.mu.Unlock()
		return
	}
	p.seq++
	rec.Seq = p.seq
	pr := wire.PushRecord{PushSeq: p.seq, PushedNS: time.Now().UnixNano(), Load: rec}
	key := p.key
	p.mu.Unlock()

	enc := pr.Encode()
	werr := p.conn.RDMAWrite(key, enc)
	if werr != nil {
		// The slot may have been invalidated and re-pinned under a fresh
		// key: re-handshake once and retry.
		if rerr := p.rekey(); rerr == nil {
			p.mu.Lock()
			key = p.key
			p.mu.Unlock()
			p.recordRekey()
			werr = p.conn.RDMAWrite(key, enc)
		}
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if werr != nil {
		p.errors++
		return
	}
	p.pushes++
	p.last = rec
	p.lastAt = time.Now()
	p.primed = true
}

func (p *Pusher) recordRekey() {
	p.mu.Lock()
	p.rekeys++
	p.mu.Unlock()
}

// Stats returns the pusher's counters.
func (p *Pusher) Stats() (pushes, skips, errors, rekeys uint64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.pushes, p.skips, p.errors, p.rekeys
}

// Close stops the pusher.
func (p *Pusher) Close() error {
	select {
	case <-p.stop:
	default:
		close(p.stop)
	}
	p.wg.Wait()
	return p.conn.Close()
}
