// Package livemon runs the monitoring schemes for real: agents sample
// actual machine load (via procfs) and serve it over TCP using the
// verbs-style emulation in tcpverbs. It is the deployable counterpart
// of the simulated core package — same record format, same scheme
// semantics:
//
//   - Socket-Async / Socket-Sync: request/response calls that involve
//     the agent application per probe (Socket-Sync samples per probe,
//     Socket-Async answers from a periodically refreshed buffer).
//   - RDMA-Async: one-sided read of a periodically refreshed region.
//   - RDMA-Sync / e-RDMA-Sync: one-sided read whose region source
//     samples the machine at read time, served by the transport's
//     responder (the "NIC") with no agent-application involvement.
package livemon

import (
	"encoding/binary"
	"fmt"
	"sync"
	"time"

	"rdmamon/internal/core"
	"rdmamon/internal/procfs"
	"rdmamon/internal/tcpverbs"
	"rdmamon/internal/wire"
)

// Ports used over the tcpverbs transport.
const (
	portInfo  = "rmon-info"
	portProbe = "rmon"
)

// Config configures a live agent.
type Config struct {
	Scheme   core.Scheme
	Addr     string // listen address, e.g. ":9377" or "127.0.0.1:0"
	NodeID   uint16
	Interval time.Duration // async refresh period (default 50ms)
	Provider procfs.Provider

	// HistoryK, when positive under an RDMA scheme, publishes a K-slot
	// history ring instead of the single-record region: a background
	// sampler pushes a timestamped record every Interval, so one
	// one-sided read hands the front-end the last K samples (see
	// wire.HistoryRing). The sync schemes additionally push a fresh
	// sample as each read is served, preserving their freshness
	// contract. Clamped to wire.MaxRingSlots; socket schemes ignore it.
	HistoryK int

	// HostLease additionally makes this agent the lease witness: it
	// registers the front-end primaryship lease word and record as
	// writable regions (mutated only by remote one-sided CAS/write) and
	// serves their keys on a control port. Hosting costs the agent
	// application nothing per operation, like every other region.
	HostLease bool

	// HostClaims, when positive, additionally makes this agent the
	// active-active claim witness: it registers HostClaims per-shard
	// claim words and records as writable regions (mutated only by
	// remote one-sided CAS/write) and serves their keys on a control
	// port. Like the lease, hosting costs the agent application nothing
	// per operation.
	HostClaims int

	// Push, when non-nil, additionally starts the hybrid scheme's delta
	// pusher: the agent samples locally every Push.Check and RDMA-Writes
	// a timestamped record into its slot on the front-end PushHost when
	// the load index moved by Push.Threshold. NodeID and Provider
	// default to the agent's own.
	Push *PusherConfig
}

// Agent is the live back-end of a monitoring scheme.
type Agent struct {
	cfg   Config
	verbs *tcpverbs.Agent

	mu     sync.Mutex
	mr     *tcpverbs.MR    // mutable: InvalidateMR drops and re-pins it
	mrSrc  tcpverbs.Source // registration source, kept for re-pinning
	mrLen  int             // registered region length (record or ring)
	buf    []byte          // refreshed encoding (async schemes)
	ring   *wire.HistoryRing
	seq    uint32
	closed bool

	vault  *leaseVault // non-nil when this agent hosts the lease
	cvault *claimVault // non-nil when this agent hosts the claim table

	pusher *Pusher // non-nil when cfg.Push is set

	stop      chan struct{}
	wg        sync.WaitGroup
	closeOnce sync.Once
	closeErr  error
}

// StartAgent launches the agent.
func StartAgent(cfg Config) (*Agent, error) {
	if cfg.Provider == nil {
		cfg.Provider = procfs.NewLinux("")
	}
	if cfg.Interval <= 0 {
		cfg.Interval = 50 * time.Millisecond
	}
	if cfg.Addr == "" {
		cfg.Addr = "127.0.0.1:0"
	}
	if cfg.HistoryK < 0 {
		cfg.HistoryK = 0
	}
	if cfg.HistoryK > wire.MaxRingSlots {
		cfg.HistoryK = wire.MaxRingSlots
	}
	if !cfg.Scheme.UsesRDMA() {
		cfg.HistoryK = 0
	}
	v, err := tcpverbs.Listen(cfg.Addr)
	if err != nil {
		return nil, err
	}
	a := &Agent{cfg: cfg, verbs: v, stop: make(chan struct{})}
	a.mrLen = wire.RecordSize
	if cfg.HistoryK > 0 {
		a.ring = wire.NewHistoryRing(cfg.HistoryK, cfg.NodeID)
		a.mrLen = a.ring.Size()
		a.ringPush() // prime: the ring is never empty once registered
	}

	switch cfg.Scheme {
	case core.SocketAsync:
		if err := a.refresh(); err != nil {
			v.Close()
			return nil, err
		}
		a.startRefresher()
		v.HandleCall(portProbe, func([]byte) []byte { return a.snapshotBuf() })
	case core.SocketSync:
		v.HandleCall(portProbe, func([]byte) []byte {
			b, err := a.sampleEncode()
			if err != nil {
				return nil
			}
			return b
		})
	case core.RDMAAsync:
		if err := a.refresh(); err != nil {
			v.Close()
			return nil, err
		}
		a.startRefresher()
		if a.ring != nil {
			// The refresher pushes into the ring (see refresh); the
			// region exposes the whole window.
			a.mrSrc = a.ringWindow
		} else {
			a.mrSrc = a.snapshotBuf
		}
		a.mr = v.RegisterMR(a.mrSrc, a.mrLen)
		// Standby socket channel (see core.Failover): answers from the
		// same refreshed buffer the region exposes, so a probe failed
		// over to it sees identical staleness semantics.
		v.HandleCall(portProbe, func([]byte) []byte { return a.snapshotBuf() })
	case core.RDMASync, core.ERDMASync:
		if a.ring != nil {
			// DMA-instant push: serving a read samples the machine into
			// the newest slot, so the sync freshness contract survives
			// the ring; the background sampler fills the window between
			// reads.
			a.startRingSampler()
			a.mrSrc = func() []byte {
				a.ringPush()
				return a.ringWindow()
			}
		} else {
			a.mrSrc = func() []byte {
				b, err := a.sampleEncode()
				if err != nil {
					return make([]byte, wire.RecordSize)
				}
				return b
			}
		}
		a.mr = v.RegisterMR(a.mrSrc, a.mrLen)
		// Standby socket channel: samples per request like Socket-Sync,
		// sharing the sequence counter with the region source so
		// sequence numbers stay monotonic across transports.
		v.HandleCall(portProbe, func([]byte) []byte {
			b, err := a.sampleEncode()
			if err != nil {
				return nil
			}
			return b
		})
	default:
		v.Close()
		return nil, fmt.Errorf("livemon: unknown scheme %v", cfg.Scheme)
	}

	if cfg.HostLease {
		a.hostLease()
	}
	if cfg.HostClaims > 0 {
		a.hostClaims(cfg.HostClaims)
	}

	if cfg.Push != nil {
		pc := *cfg.Push
		if pc.NodeID == 0 {
			pc.NodeID = cfg.NodeID
		}
		if pc.Provider == nil {
			pc.Provider = cfg.Provider
		}
		p, err := StartPusher(pc)
		if err != nil {
			v.Close()
			return nil, err
		}
		a.pusher = p
	}

	// Control endpoint: scheme + rkey + ring-geometry discovery for
	// probes. The region key is read under the lock: InvalidateMR swaps
	// it concurrently. The reply grew from 5 to 9 bytes when history
	// rings arrived; probes predating the extension read the first 5 and
	// treat the region as a single record, which a ring-less agent still
	// serves, so the extension is backward compatible in both directions
	// (a new probe reads ringK = 0 from a short reply).
	v.HandleCall(portInfo, func([]byte) []byte {
		info := make([]byte, 9)
		info[0] = byte(cfg.Scheme)
		a.mu.Lock()
		if a.mr != nil {
			binary.BigEndian.PutUint32(info[1:], a.mr.Key())
		}
		a.mu.Unlock()
		binary.BigEndian.PutUint32(info[5:], uint32(cfg.HistoryK))
		return info
	})
	return a, nil
}

// RingK returns the agent's history-ring depth (0 when it publishes a
// single record).
func (a *Agent) RingK() int { return a.cfg.HistoryK }

// Addr returns the agent's listen address.
func (a *Agent) Addr() string { return a.verbs.Addr() }

// Scheme returns the agent's scheme.
func (a *Agent) Scheme() core.Scheme { return a.cfg.Scheme }

// Close stops the agent. Idempotent and safe for concurrent use;
// every caller observes the first teardown's error.
func (a *Agent) Close() error {
	a.closeOnce.Do(func() {
		a.mu.Lock()
		a.closed = true
		a.mu.Unlock()
		close(a.stop)
		if a.pusher != nil {
			a.pusher.Close()
		}
		a.closeErr = a.verbs.Close()
		a.wg.Wait()
	})
	return a.closeErr
}

// Pusher exposes the agent's delta pusher (nil unless cfg.Push set).
func (a *Agent) Pusher() *Pusher { return a.pusher }

// InvalidateMR models the remote key going stale (RDMA schemes only):
// the region is deregistered immediately — in-flight and subsequent
// reads with the old key fail — and, if repin > 0, re-registered with
// a fresh key after repin, the agent noticing and re-pinning the page.
// Probes recover the new key through their re-handshake path.
func (a *Agent) InvalidateMR(repin time.Duration) {
	a.mu.Lock()
	mr, src := a.mr, a.mrSrc
	a.mr = nil
	a.mu.Unlock()
	if mr == nil {
		return
	}
	a.verbs.Deregister(mr)
	if repin <= 0 || src == nil {
		return
	}
	time.AfterFunc(repin, func() {
		a.mu.Lock()
		defer a.mu.Unlock()
		if a.closed || a.mr != nil {
			return
		}
		if a.ring != nil {
			// Same region, new pin: readers must not splice pre- and
			// post-invalidation windows into one trend.
			a.ring.BumpEpoch()
		}
		a.mr = a.verbs.RegisterMR(src, a.mrLen)
	})
}

// sampleEncode takes a fresh snapshot and encodes it.
func (a *Agent) sampleEncode() ([]byte, error) {
	s, err := a.cfg.Provider.Snapshot()
	if err != nil {
		return nil, err
	}
	a.mu.Lock()
	a.seq++
	seq := a.seq
	a.mu.Unlock()
	return s.Record(a.cfg.NodeID, seq).Encode(), nil
}

// refresh updates the shared buffer (async schemes) and, when a ring
// is published, pushes the same sample into it.
func (a *Agent) refresh() error {
	s, err := a.cfg.Provider.Snapshot()
	if err != nil {
		return err
	}
	a.mu.Lock()
	a.seq++
	rec := s.Record(a.cfg.NodeID, a.seq)
	a.buf = rec.Encode()
	if a.ring != nil {
		a.ring.Push(&rec)
	}
	a.mu.Unlock()
	return nil
}

// ringPush samples the machine and appends one record to the ring.
// The ring's seqlock protects remote readers from tearing; local
// writers (sampler tick vs. read-time push) serialize on a.mu.
func (a *Agent) ringPush() {
	s, err := a.cfg.Provider.Snapshot()
	if err != nil {
		return // transient sampling errors keep the old window
	}
	a.mu.Lock()
	a.seq++
	rec := s.Record(a.cfg.NodeID, a.seq)
	a.ring.Push(&rec)
	a.mu.Unlock()
}

// ringWindow returns an atomic copy of the ring region. The seqlock
// inside the ring protects a real NIC's DMA readers; here the TCP
// emulation's serve goroutine copies the region from the same address
// space as the sampler, so local consistency has to come from a.mu
// like every other shared buffer on this Agent.
func (a *Agent) ringWindow() []byte {
	a.mu.Lock()
	defer a.mu.Unlock()
	return append([]byte(nil), a.ring.Bytes()...)
}

// startRingSampler fills the history window between reads (sync
// schemes; the async schemes push from their refresher instead).
func (a *Agent) startRingSampler() {
	a.wg.Add(1)
	go func() {
		defer a.wg.Done()
		t := time.NewTicker(a.cfg.Interval)
		defer t.Stop()
		for {
			select {
			case <-a.stop:
				return
			case <-t.C:
				a.ringPush()
			}
		}
	}()
}

// snapshotBuf returns a copy of the shared buffer.
func (a *Agent) snapshotBuf() []byte {
	a.mu.Lock()
	defer a.mu.Unlock()
	return append([]byte(nil), a.buf...)
}

func (a *Agent) startRefresher() {
	a.wg.Add(1)
	go func() {
		defer a.wg.Done()
		t := time.NewTicker(a.cfg.Interval)
		defer t.Stop()
		for {
			select {
			case <-a.stop:
				return
			case <-t.C:
				_ = a.refresh() // transient sampling errors keep the old record
			}
		}
	}()
}

// Probe is the live front-end half: it fetches load records from one
// agent using that agent's scheme semantics. It survives agent
// restarts: the underlying connection redials on transport failure
// (tcpverbs.RetryPolicy), and a failed fetch triggers a re-handshake
// that refreshes the scheme and region key — a restarted agent hands
// out a fresh rkey, so the old one must be thrown away.
type Probe struct {
	mu     sync.Mutex
	conn   *tcpverbs.Conn
	scheme core.Scheme
	rkey   uint32

	// ringK is the agent's history-ring depth from the info handshake
	// (0: single-record region). Ring probes read the whole window into
	// readBuf and decode it in place into view; both are reused across
	// fetches, so a warm probe loop allocates no payload buffers.
	ringK   int
	view    wire.RingView
	readBuf []byte

	// pool/addr, when set (DialPooled), replace the owned conn: every
	// fetch leases a shared connection from the pool for the duration
	// of its locked sequence and returns it after. p.conn then holds
	// the leased conn only while a fetch is in flight.
	pool *ConnPool
	addr string

	// fo, when armed via SetFailover under an RDMA scheme, is the
	// transport breaker: consecutive one-sided read failures fail the
	// probe over to the agent's standby socket channel, a low-rate
	// background re-arm probe retests the RDMA path, and the breaker
	// fails back after consecutive re-arm successes.
	fo *core.Failover

	// Rehandshakes counts successful post-failure re-handshakes.
	Rehandshakes uint64
	// Fallbacks counts fetches served over the socket standby while the
	// preferred transport is RDMA.
	Fallbacks uint64
	// ReArms counts background re-arm probes of the RDMA path.
	ReArms uint64
	// TornRetries counts ring reads re-issued because the seqlock
	// caught a concurrent write mid-window.
	TornRetries uint64
	// RingSamples counts history records delivered by ring reads
	// (Fetch and FetchHistory both contribute).
	RingSamples uint64
}

// maxTornRetries bounds how many times a torn ring read is re-issued
// before the tear is reported; each retry is one cheap one-sided read,
// and a write-in-flight window is microseconds wide.
const maxTornRetries = 3

// Dial connects to an agent and discovers its scheme and region key,
// using the transport's default operation timeout.
func Dial(addr string) (*Probe, error) {
	return DialTimeout(addr, 0)
}

// DialTimeout connects with an explicit per-operation deadline
// (<= 0 takes the transport default).
func DialTimeout(addr string, opTimeout time.Duration) (*Probe, error) {
	c, err := tcpverbs.DialTimeout(addr, opTimeout)
	if err != nil {
		return nil, err
	}
	p := &Probe{conn: c}
	if err := p.handshake(); err != nil {
		c.Close()
		return nil, err
	}
	return p, nil
}

// DialPooled connects to an agent through a shared connection pool:
// the probe owns no connection — every fetch leases one from the pool
// (dialing under its budgets when none is cached) and returns it when
// the fetch completes. The initial handshake runs through the same
// leased path, so even discovery respects the pool's budgets.
func DialPooled(cp *ConnPool, addr string) (*Probe, error) {
	p := &Probe{pool: cp, addr: addr}
	p.mu.Lock()
	defer p.mu.Unlock()
	done, err := p.leaseLocked()
	if err != nil {
		return nil, err
	}
	err = p.handshake()
	done(err)
	if err != nil {
		return nil, err
	}
	return p, nil
}

// leaseLocked installs a pooled connection into p.conn for the
// duration of one locked fetch sequence (a no-op returning a no-op
// done for probes that own their connection). done must be called
// with the sequence's final error before p.mu is released: an error
// recycles the leased conn so the next fetch redials fresh.
func (p *Probe) leaseLocked() (done func(error), err error) {
	if p.pool == nil {
		return func(error) {}, nil
	}
	l, err := p.pool.Get(p.addr, true)
	if err != nil {
		return nil, err
	}
	p.conn = l.Conn
	return func(opErr error) {
		p.conn = nil
		p.pool.Put(l, opErr)
	}, nil
}

// handshake queries the info endpoint and stores scheme + rkey.
// Caller need not hold p.mu for Dial; Fetch holds it.
func (p *Probe) handshake() error {
	info, err := p.conn.Call(portInfo, nil)
	if err != nil {
		return fmt.Errorf("livemon: info exchange: %w", err)
	}
	if len(info) < 5 {
		return fmt.Errorf("livemon: short info reply")
	}
	p.scheme = core.Scheme(info[0])
	p.rkey = binary.BigEndian.Uint32(info[1:])
	// Ring-geometry extension (newer agents): absent on a 5-byte reply
	// from an agent predating history rings — a single-record region.
	p.ringK = 0
	if len(info) >= 9 {
		p.ringK = int(binary.BigEndian.Uint32(info[5:]))
		if p.ringK > wire.MaxRingSlots {
			return fmt.Errorf("livemon: agent advertises ring depth %d > max %d",
				p.ringK, wire.MaxRingSlots)
		}
	}
	return nil
}

// RingK returns the agent's advertised history-ring depth (0 when the
// region is a single record).
func (p *Probe) RingK() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.ringK
}

// Scheme returns the remote agent's scheme.
func (p *Probe) Scheme() core.Scheme {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.scheme
}

// SetFailover arms the probe's transport breaker. It is a no-op under
// the socket schemes, which have nothing to fail over from.
func (p *Probe) SetFailover(cfg core.FailoverConfig) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if !p.scheme.UsesRDMA() {
		return
	}
	p.fo = &core.Failover{Cfg: cfg}
}

// Failover exposes the probe's breaker (nil unless armed).
func (p *Probe) Failover() *core.Failover {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.fo
}

// SeedJitter makes the connection's retry-backoff jitter deterministic
// (see tcpverbs.Conn.SeedJitter); tests use it for reproducible runs.
// Pooled probes hold no connection of their own — there the pool's
// SeedJitter governs backoff determinism instead.
func (p *Probe) SeedJitter(seed int64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.conn != nil {
		p.conn.SeedJitter(seed)
	}
}

// Fetch retrieves one load record. On failure it re-handshakes once
// (refreshing scheme and rkey from the — possibly restarted — agent)
// and retries; the original error is returned if recovery also fails.
func (p *Probe) Fetch() (wire.LoadRecord, error) {
	rec, _, err := p.FetchVia()
	return rec, err
}

// FetchVia retrieves one load record and reports which transport
// served it. Without an armed breaker it behaves like the seed Fetch
// (the scheme's own transport, one re-handshake retry). With one armed:
//
//   - breaker armed: read over RDMA (re-handshake retry included); a
//     success feeds PrimaryOK, a failure feeds PrimaryFail and the
//     fetch degrades to the socket standby for this cycle.
//   - breaker tripped: fetch over the socket standby; every
//     ReArmEvery-th cycle additionally retests the RDMA path in the
//     background (refreshing the rkey via re-handshake if the first
//     attempt fails — a re-pinned region hands out a fresh key), and
//     FailBackAfter consecutive re-arm successes fail the breaker back.
func (p *Probe) FetchVia() (wire.LoadRecord, core.Transport, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	done, lerr := p.leaseLocked()
	if lerr != nil {
		tr := core.TransportSocket
		if p.scheme.UsesRDMA() {
			tr = core.TransportRDMA
		}
		return wire.LoadRecord{}, tr, lerr
	}
	rec, tr, err := p.fetchViaLocked()
	done(err)
	return rec, tr, err
}

// fetchViaLocked is FetchVia's body, run with p.mu held and (for
// pooled probes) a leased connection installed in p.conn.
func (p *Probe) fetchViaLocked() (wire.LoadRecord, core.Transport, error) {
	if p.fo == nil || !p.scheme.UsesRDMA() {
		tr := core.TransportSocket
		if p.scheme.UsesRDMA() {
			tr = core.TransportRDMA
		}
		rec, err := p.fetchRecoverLocked()
		return rec, tr, err
	}
	if p.fo.Tripped() {
		rec, err := p.socketLocked()
		if p.fo.ShouldReArm() {
			p.ReArms++
			if _, rerr := p.rdmaRecoverLocked(); rerr == nil {
				p.fo.ReArmOK()
			} else {
				p.fo.ReArmFail()
			}
		}
		if err != nil {
			return wire.LoadRecord{}, core.TransportSocket, err
		}
		p.Fallbacks++
		return rec, core.TransportSocket, nil
	}
	rec, err := p.rdmaRecoverLocked()
	if err == nil {
		p.fo.PrimaryOK()
		return rec, core.TransportRDMA, nil
	}
	p.fo.PrimaryFail()
	if rec, serr := p.socketLocked(); serr == nil {
		p.Fallbacks++
		return rec, core.TransportSocket, nil
	}
	return wire.LoadRecord{}, core.TransportRDMA, err
}

// fetchRecoverLocked is the seed fetch path: the scheme's own
// transport, with one re-handshake retry on failure.
func (p *Probe) fetchRecoverLocked() (wire.LoadRecord, error) {
	rec, err := p.fetchLocked()
	if err == nil {
		return rec, nil
	}
	if herr := p.handshake(); herr != nil {
		return wire.LoadRecord{}, err
	}
	p.Rehandshakes++
	return p.fetchLocked()
}

// rdmaRecoverLocked reads over RDMA with one re-handshake retry (a
// restarted or re-pinned agent hands out a fresh rkey).
func (p *Probe) rdmaRecoverLocked() (wire.LoadRecord, error) {
	rec, err := p.rdmaLocked()
	if err == nil {
		return rec, nil
	}
	if herr := p.handshake(); herr != nil {
		return wire.LoadRecord{}, err
	}
	p.Rehandshakes++
	return p.rdmaLocked()
}

// FetchBurst retrieves k load records in one pipelined batch over the
// RDMA path (see tcpverbs.Conn.RDMAReadBatch): k reads posted
// back-to-back, completions matched by sequence number, ~one round
// trip for the whole burst. Under RDMA-Sync each read samples the
// machine at its own service instant, so the burst yields k distinct
// fine-grained samples — useful for catching load spikes shorter than
// a poll interval. Fails over to nothing: burst fetches are an
// RDMA-scheme feature, and socket schemes return an error.
//
// On failure it re-handshakes once (a restarted or re-pinned agent
// hands out a fresh rkey) and retries the whole burst. Per-slot verb
// errors fail the burst: a partially valid burst is not worth
// reasoning about when retrying costs one round trip.
func (p *Probe) FetchBurst(k int) ([]wire.LoadRecord, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if !p.scheme.UsesRDMA() {
		return nil, fmt.Errorf("livemon: burst fetch requires an RDMA scheme, agent runs %v", p.scheme)
	}
	if k <= 0 {
		k = 1
	}
	done, lerr := p.leaseLocked()
	if lerr != nil {
		return nil, lerr
	}
	recs, err := p.burstRecoverLocked(k)
	done(err)
	return recs, err
}

// burstRecoverLocked is the burst body with its one re-handshake
// retry, run with p.mu held and any leased conn installed.
func (p *Probe) burstRecoverLocked(k int) ([]wire.LoadRecord, error) {
	recs, err := p.burstLocked(k)
	if err == nil {
		return recs, nil
	}
	if herr := p.handshake(); herr != nil {
		return nil, err
	}
	p.Rehandshakes++
	return p.burstLocked(k)
}

func (p *Probe) burstLocked(k int) ([]wire.LoadRecord, error) {
	if p.ringK > 0 {
		// One ring read already carries up to ringK timestamped samples
		// — the history region subsumes the pipelined burst, one work
		// request instead of k. Newest first, like the batch variant's
		// freshest-last ordering never promised anyway.
		v, err := p.ringReadLocked()
		if err != nil {
			return nil, err
		}
		n := v.Count
		if n > k {
			n = k
		}
		recs := make([]wire.LoadRecord, n)
		copy(recs, v.Records[:n])
		return recs, nil
	}
	reqs := make([]tcpverbs.BatchRead, k)
	for i := range reqs {
		reqs[i] = tcpverbs.BatchRead{RKey: p.rkey, Length: wire.RecordSize}
	}
	results, err := p.conn.RDMAReadBatch(reqs)
	if err != nil {
		return nil, err
	}
	recs := make([]wire.LoadRecord, len(results))
	for i, r := range results {
		if r.Err != nil {
			return nil, r.Err
		}
		rec, derr := wire.Decode(r.Data)
		if derr != nil {
			return nil, derr
		}
		recs[i] = rec
	}
	return recs, nil
}

// FetchHistory retrieves the agent's full history window in one
// one-sided read: up to RingK timestamped records, newest first, plus
// the region epoch (see wire.RingView). Like Fetch it re-handshakes
// once on failure — a restarted agent hands out a fresh rkey and
// possibly a different ring depth. Requires an agent publishing a
// history ring.
func (p *Probe) FetchHistory() (wire.RingView, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if !p.scheme.UsesRDMA() {
		return wire.RingView{}, fmt.Errorf("livemon: history fetch requires an RDMA scheme, agent runs %v", p.scheme)
	}
	if p.ringK == 0 {
		return wire.RingView{}, fmt.Errorf("livemon: agent publishes no history ring")
	}
	done, lerr := p.leaseLocked()
	if lerr != nil {
		return wire.RingView{}, lerr
	}
	v, err := p.historyRecoverLocked()
	done(err)
	if err != nil {
		return wire.RingView{}, err
	}
	return *v, nil
}

// historyRecoverLocked is the history read with its one re-handshake
// retry, run with p.mu held and any leased conn installed.
func (p *Probe) historyRecoverLocked() (*wire.RingView, error) {
	v, err := p.ringReadLocked()
	if err == nil {
		return v, nil
	}
	if herr := p.handshake(); herr != nil {
		return nil, err
	}
	p.Rehandshakes++
	if p.ringK == 0 {
		return nil, fmt.Errorf("livemon: restarted agent publishes no history ring")
	}
	return p.ringReadLocked()
}

func (p *Probe) rdmaLocked() (wire.LoadRecord, error) {
	if p.ringK > 0 {
		v, err := p.ringReadLocked()
		if err != nil {
			return wire.LoadRecord{}, err
		}
		return v.Newest(), nil
	}
	raw, err := p.conn.RDMAReadInto(p.rkey, wire.RecordSize, p.readBuf)
	if err != nil {
		return wire.LoadRecord{}, err
	}
	p.readBuf = raw
	return wire.Decode(raw)
}

// ringReadLocked reads the whole history region into the probe's
// scratch and decodes it in place, re-issuing the read a bounded
// number of times when the seqlock catches the agent writing.
func (p *Probe) ringReadLocked() (*wire.RingView, error) {
	n := wire.RingSize(p.ringK)
	var lastErr error
	for attempt := 0; attempt <= maxTornRetries; attempt++ {
		raw, err := p.conn.RDMAReadInto(p.rkey, n, p.readBuf)
		if err != nil {
			return nil, err
		}
		p.readBuf = raw
		if err := wire.DecodeRingInto(&p.view, raw); err != nil {
			lastErr = err
			if err == wire.ErrTorn {
				p.TornRetries++
				continue
			}
			return nil, err
		}
		p.RingSamples += uint64(p.view.Count)
		return &p.view, nil
	}
	return nil, lastErr
}

func (p *Probe) socketLocked() (wire.LoadRecord, error) {
	raw, err := p.conn.Call(portProbe, nil)
	if err != nil {
		return wire.LoadRecord{}, err
	}
	return wire.Decode(raw)
}

func (p *Probe) fetchLocked() (wire.LoadRecord, error) {
	if p.scheme.UsesRDMA() {
		return p.rdmaLocked()
	}
	return p.socketLocked()
}

// Close tears down the probe connection. Pooled probes own no
// connection — their leases are per-fetch and the shared pool's Close
// releases the conns — so Close is a no-op for them. Idempotent.
func (p *Probe) Close() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.pool != nil || p.conn == nil {
		return nil
	}
	err := p.conn.Close()
	p.conn = nil
	return err
}
