package tcpverbs

import (
	"bytes"
	"encoding/binary"
	"testing"
	"time"
)

func TestReadBatchPipelined(t *testing.T) {
	a := newAgent(t)
	const k = 8
	reqs := make([]BatchRead, k)
	for i := 0; i < k; i++ {
		id := byte(i + 1)
		mr := a.RegisterMR(StaticSource([]byte{id}), 1)
		reqs[i] = BatchRead{RKey: mr.Key(), Length: 1}
	}
	c := dial(t, a)
	res, err := c.RDMAReadBatch(reqs)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != k {
		t.Fatalf("got %d results, want %d", len(res), k)
	}
	for i, r := range res {
		if r.Err != nil {
			t.Fatalf("slot %d: %v", i, r.Err)
		}
		if len(r.Data) != 1 || r.Data[0] != byte(i+1) {
			t.Fatalf("slot %d: data %v attributed to the wrong region", i, r.Data)
		}
	}
	if got := a.BatchedReads(); got != k {
		t.Fatalf("BatchedReads = %d, want %d", got, k)
	}
	reads, _, _ := a.Stats()
	if reads != k {
		t.Fatalf("served reads = %d, want %d", reads, k)
	}
}

func TestReadBatchPerSlotErrors(t *testing.T) {
	a := newAgent(t)
	mr := a.RegisterMR(StaticSource([]byte{7}), 1)
	c := dial(t, a)
	res, err := c.RDMAReadBatch([]BatchRead{
		{RKey: mr.Key(), Length: 1},
		{RKey: mr.Key() + 99, Length: 1}, // unknown key
		{RKey: mr.Key(), Length: 100},    // beyond bounds
	})
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Err != nil || res[0].Data[0] != 7 {
		t.Fatalf("healthy slot polluted: %+v", res[0])
	}
	if res[1].Err != ErrBadKey {
		t.Fatalf("bad-key slot: err = %v, want ErrBadKey", res[1].Err)
	}
	if res[2].Err != ErrLength {
		t.Fatalf("oversized slot: err = %v, want ErrLength", res[2].Err)
	}
}

func TestReadBatchEmpty(t *testing.T) {
	a := newAgent(t)
	c := dial(t, a)
	res, err := c.RDMAReadBatch(nil)
	if err != nil || res != nil {
		t.Fatalf("empty batch: %v %v", res, err)
	}
}

func TestReadBatchSurvivesAgentRestart(t *testing.T) {
	a, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := a.Addr()
	mr := a.RegisterMR(StaticSource([]byte{1, 2, 3, 4}), 4)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.Retry = RetryPolicy{Attempts: 5, Backoff: 5 * time.Millisecond}
	reqs := []BatchRead{{RKey: mr.Key(), Length: 4}}
	if _, err := c.RDMAReadBatch(reqs); err != nil {
		t.Fatal(err)
	}

	// Restart the agent on the same address: the conn's stream is dead,
	// so the next batch must redial and replay transparently.
	a.Close()
	a2, err := Listen(addr)
	if err != nil {
		t.Skipf("could not rebind %s: %v", addr, err)
	}
	defer a2.Close()
	mr2 := a2.RegisterMR(StaticSource([]byte{9, 9}), 2)
	res, err := c.RDMAReadBatch([]BatchRead{{RKey: mr2.Key(), Length: 2}})
	if err != nil {
		t.Fatalf("batch after restart: %v", err)
	}
	if res[0].Err != nil || !bytes.Equal(res[0].Data, []byte{9, 9}) {
		t.Fatalf("batch after restart: %+v", res[0])
	}
	if c.Redials == 0 {
		t.Fatal("expected at least one redial")
	}
}

// reply builds a well-formed pipelined reply frame for tests/fuzzing.
func reply(status byte, seq uint32, data []byte) []byte {
	body := make([]byte, 5+len(data))
	body[0] = status
	binary.BigEndian.PutUint32(body[1:], seq)
	copy(body[5:], data)
	return frame(body)
}

func TestCollectBatchRepliesReordered(t *testing.T) {
	seqs := []uint32{10, 11, 12}
	var stream []byte
	stream = append(stream, reply(statusOK, 12, []byte{3})...)
	stream = append(stream, reply(statusOK, 10, []byte{1})...)
	stream = append(stream, reply(statusOK, 11, []byte{2})...)
	res, err := collectBatchReplies(bytes.NewReader(stream), seqs)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range res {
		if r.Err != nil || len(r.Data) != 1 || r.Data[0] != byte(i+1) {
			t.Fatalf("slot %d mis-attributed: %+v", i, r)
		}
	}
}

func TestCollectBatchRepliesRejectsDesync(t *testing.T) {
	seqs := []uint32{1, 2}
	cases := map[string][]byte{
		"unknown seq": append(append([]byte{},
			reply(statusOK, 1, nil)...), reply(statusOK, 7, nil)...),
		"duplicate completion": append(append([]byte{},
			reply(statusOK, 1, nil)...), reply(statusOK, 1, nil)...),
		"short reply":      frame([]byte{statusOK, 0, 0}),
		"truncated stream": reply(statusOK, 1, nil),
	}
	for name, stream := range cases {
		if _, err := collectBatchReplies(bytes.NewReader(stream), seqs); err == nil {
			t.Errorf("%s: desynchronized stream accepted", name)
		}
	}
}

// FuzzReadBatch throws arbitrary reply streams at the completion
// matcher. Whatever the bytes say — split, merged, reordered,
// truncated or duplicated completions — the matcher must never panic,
// and when it accepts a stream every slot's result must be traceable
// to a frame in that stream bearing the slot's own seq. A confused
// stream may fail the batch, but a load record can never be
// attributed to the wrong back-end.
func FuzzReadBatch(f *testing.F) {
	f.Add([]byte{}, uint8(2))
	f.Add(reply(statusOK, 1, []byte{42}), uint8(1))
	two := append(append([]byte{},
		reply(statusOK, 2, []byte{200})...),
		reply(statusOK, 1, []byte{100})...)
	f.Add(two, uint8(2)) // reordered
	f.Add(reply(statusBadKey, 1, nil), uint8(1))
	f.Add(reply(statusOK, 9, nil), uint8(3))       // unknown seq
	f.Add(frame([]byte{statusOK, 0, 0}), uint8(1)) // too short for a seq

	f.Fuzz(func(t *testing.T, stream []byte, n uint8) {
		k := int(n%16) + 1
		seqs := make([]uint32, k)
		for i := range seqs {
			seqs[i] = uint32(i + 1)
		}
		res, err := collectBatchReplies(bytes.NewReader(stream), seqs)
		if err != nil {
			return // rejecting a stream is always acceptable
		}
		if len(res) != k {
			t.Fatalf("accepted stream produced %d results for %d reqs", len(res), k)
		}
		// Independently re-parse the stream's frames and require each
		// slot's result to match a frame carrying that slot's seq.
		frames := make(map[uint32][][]byte)
		r := bytes.NewReader(stream)
		for {
			body, err := readFrame(r)
			if err != nil {
				break
			}
			if len(body) < 5 {
				continue
			}
			seq := binary.BigEndian.Uint32(body[1:5])
			frames[seq] = append(frames[seq], body)
		}
		for i, got := range res {
			matched := false
			for _, body := range frames[seqs[i]] {
				if got.Err != nil {
					if statusErr(body[0]) == got.Err {
						matched = true
					}
				} else if body[0] == statusOK && bytes.Equal(body[5:], got.Data) {
					matched = true
				}
			}
			if !matched {
				t.Fatalf("slot %d (seq %d): result %+v not traceable to any frame with that seq",
					i, seqs[i], got)
			}
		}
	})
}
