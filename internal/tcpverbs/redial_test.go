package tcpverbs

import (
	"encoding/binary"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"rdmamon/internal/wire"
)

// dropProxy sits between an initiator and an agent and swallows a
// budgeted number of reply frames, closing both sides when it does.
// The request still reaches the agent — the atomic is applied — but
// the initiator sees a dead connection mid-operation, the exact
// ambiguity the redial-and-replay path has to resolve.
type dropProxy struct {
	ln     net.Listener
	target string
	drops  atomic.Int32
}

func newDropProxy(t *testing.T, target string, dropReplies int) *dropProxy {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	p := &dropProxy{ln: ln, target: target}
	p.drops.Store(int32(dropReplies))
	t.Cleanup(func() { ln.Close() })
	go p.acceptLoop()
	return p
}

func (p *dropProxy) Addr() string { return p.ln.Addr().String() }

func (p *dropProxy) acceptLoop() {
	for {
		c, err := p.ln.Accept()
		if err != nil {
			return
		}
		go p.serve(c)
	}
}

func (p *dropProxy) serve(client net.Conn) {
	upstream, err := net.Dial("tcp", p.target)
	if err != nil {
		client.Close()
		return
	}
	var once sync.Once
	closeBoth := func() { once.Do(func() { client.Close(); upstream.Close() }) }
	go func() {
		defer closeBoth()
		io.Copy(upstream, client)
	}()
	go func() {
		defer closeBoth()
		var hdr [4]byte
		for {
			if _, err := io.ReadFull(upstream, hdr[:]); err != nil {
				return
			}
			body := make([]byte, binary.BigEndian.Uint32(hdr[:]))
			if _, err := io.ReadFull(upstream, body); err != nil {
				return
			}
			if p.drops.Add(-1) >= 0 {
				// Swallow the reply and kill the link: the agent has
				// already applied and answered, the initiator never
				// learns it.
				return
			}
			if _, err := client.Write(hdr[:]); err != nil {
				return
			}
			if _, err := client.Write(body); err != nil {
				return
			}
		}
	}()
}

// TestCompareSwapFencedRedialIdempotent covers the mid-CAS redial
// hazard: the claim CAS is applied by the agent, the reply is lost,
// and the connection replays the frame after redialing. The replay
// loses (the word already holds the bid) and observes prev == swap;
// CompareSwapFenced must recognize its own applied bid and report the
// original win instead of a spurious loss — no double-win, no
// double-loss.
func TestCompareSwapFencedRedialIdempotent(t *testing.T) {
	a := newAgent(t)
	word := make([]byte, 8)
	var mu sync.Mutex
	mr := a.RegisterWritableMR(func() []byte {
		mu.Lock()
		defer mu.Unlock()
		cp := make([]byte, len(word))
		copy(cp, word)
		return cp
	}, len(word), func(b []byte) {
		mu.Lock()
		defer mu.Unlock()
		copy(word, b)
	})

	proxy := newDropProxy(t, a.Addr(), 1)
	c, err := DialTimeout(proxy.Addr(), 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	c.Retry = RetryPolicy{Attempts: 4, Backoff: 5 * time.Millisecond, MaxBackoff: 20 * time.Millisecond}
	c.SeedJitter(1)

	bid := wire.PackClaimWord(1, 1, 0)
	prev, err := c.CompareSwapFenced(mr.Key(), 0, bid)
	if err != nil {
		t.Fatalf("fenced CAS through lossy link: %v", err)
	}
	if prev != 0 {
		t.Fatalf("prev = %#x, want 0 (win must survive the replay)", prev)
	}
	if c.Redials == 0 {
		t.Fatal("expected at least one redial (the proxy dropped a reply)")
	}
	mu.Lock()
	got := binary.LittleEndian.Uint64(word)
	mu.Unlock()
	if got != bid {
		t.Fatalf("word = %#x, want %#x (applied exactly once)", got, bid)
	}
	// Both the original attempt and the replay reached the agent; the
	// replay lost benignly rather than re-applying.
	if n := a.Atomics(); n != 2 {
		t.Fatalf("served atomics = %d, want 2 (attempt + replay)", n)
	}
}

// TestCompareSwapFencedEpochRegression pins the fencing rule: a lost
// CAS whose observed word carries a newer epoch (serial-arithmetic
// compare, so wrap-around counts as newer) is a deposition and
// surfaces as ErrFenced; a lost CAS against an older epoch is a plain
// race and reports the observed word without error.
func TestCompareSwapFencedEpochRegression(t *testing.T) {
	a := newAgent(t)
	word := make([]byte, 8)
	var mu sync.Mutex
	mr := a.RegisterWritableMR(func() []byte {
		mu.Lock()
		defer mu.Unlock()
		cp := make([]byte, len(word))
		copy(cp, word)
		return cp
	}, len(word), func(b []byte) {
		mu.Lock()
		defer mu.Unlock()
		copy(word, b)
	})
	c := dial(t, a)

	held := wire.PackClaimWord(1, 1, 0)
	if prev, err := c.CompareSwapFenced(mr.Key(), 0, held); err != nil || prev != 0 {
		t.Fatalf("initial claim: prev=%#x err=%v", prev, err)
	}
	// A rival seizes the shard at a newer epoch behind the holder's
	// back (e.g. after the holder was presumed dead).
	seized := wire.PackClaimWord(2, 3, 0)
	if prev, err := c.CompareSwap(mr.Key(), held, seized); err != nil || prev != held {
		t.Fatalf("rival takeover: prev=%#x err=%v", prev, err)
	}
	// The original holder renews against its stale view: the observed
	// epoch (3) is newer than its bid's (1) -> fenced, not a retry.
	renew := wire.PackClaimWord(1, 1, 1)
	if _, err := c.CompareSwapFenced(mr.Key(), held, renew); err != ErrFenced {
		t.Fatalf("stale renew: err = %v, want ErrFenced", err)
	}
	// A bid carrying a NEWER epoch than the observed word merely lost a
	// race (or raced a release); that is retryable, not fenced.
	future := wire.PackClaimWord(3, 4, 0)
	if prev, err := c.CompareSwapFenced(mr.Key(), wire.PackClaimWord(9, 3, 9), future); err != nil || prev != seized {
		t.Fatalf("racing bid: prev=%#x err=%v, want prev=%#x nil", prev, err, seized)
	}
	// Serial arithmetic: an observed epoch that wrapped past the bid's
	// still counts as newer.
	mu.Lock()
	binary.LittleEndian.PutUint64(word, wire.PackClaimWord(2, 2, 0))
	mu.Unlock()
	wrapped := wire.PackClaimWord(1, 0xffff, 0)
	if _, err := c.CompareSwapFenced(mr.Key(), wire.PackClaimWord(1, 0xfffe, 5), wrapped); err != ErrFenced {
		t.Fatalf("wrap-around regression: err = %v, want ErrFenced", err)
	}
}
