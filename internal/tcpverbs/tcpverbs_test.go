package tcpverbs

import (
	"bytes"
	"sync"
	"sync/atomic"
	"testing"
)

func newAgent(t *testing.T) *Agent {
	t.Helper()
	a, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { a.Close() })
	return a
}

func dial(t *testing.T, a *Agent) *Conn {
	t.Helper()
	c, err := Dial(a.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func TestRDMAReadRoundTrip(t *testing.T) {
	a := newAgent(t)
	payload := []byte("kernel-stats-here")
	mr := a.RegisterMR(StaticSource(payload), len(payload))
	c := dial(t, a)
	got, err := c.RDMARead(mr.Key(), len(payload))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("got %q", got)
	}
	reads, _, _ := a.Stats()
	if reads != 1 {
		t.Fatalf("served reads = %d", reads)
	}
}

// StaticSource mirrors simnet's helper for tests.
func StaticSource(b []byte) Source { return func() []byte { return b } }

func TestRDMAReadSourceCalledPerRead(t *testing.T) {
	a := newAgent(t)
	var n atomic.Int32
	mr := a.RegisterMR(func() []byte {
		n.Add(1)
		return []byte{byte(n.Load())}
	}, 1)
	c := dial(t, a)
	for i := 1; i <= 3; i++ {
		got, err := c.RDMARead(mr.Key(), 1)
		if err != nil || len(got) != 1 || got[0] != byte(i) {
			t.Fatalf("read %d: %v %v", i, got, err)
		}
	}
}

func TestRDMAReadBadKey(t *testing.T) {
	a := newAgent(t)
	c := dial(t, a)
	if _, err := c.RDMARead(999, 8); err != ErrBadKey {
		t.Fatalf("err = %v, want ErrBadKey", err)
	}
}

func TestRDMAReadBeyondBounds(t *testing.T) {
	a := newAgent(t)
	mr := a.RegisterMR(StaticSource(make([]byte, 4)), 4)
	c := dial(t, a)
	if _, err := c.RDMARead(mr.Key(), 100); err != ErrLength {
		t.Fatalf("err = %v, want ErrLength", err)
	}
}

func TestRDMAWrite(t *testing.T) {
	a := newAgent(t)
	var got []byte
	var mu sync.Mutex
	mr := a.RegisterWritableMR(StaticSource(make([]byte, 16)), 16, func(b []byte) {
		mu.Lock()
		got = b
		mu.Unlock()
	})
	c := dial(t, a)
	if err := c.RDMAWrite(mr.Key(), []byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if !bytes.Equal(got, []byte{1, 2, 3}) {
		t.Fatalf("sink got %v", got)
	}
}

func TestRDMAWriteReadOnlyDenied(t *testing.T) {
	a := newAgent(t)
	mr := a.RegisterMR(StaticSource(make([]byte, 8)), 8)
	c := dial(t, a)
	if err := c.RDMAWrite(mr.Key(), []byte{1}); err != ErrPermission {
		t.Fatalf("err = %v, want ErrPermission", err)
	}
}

func TestDeregister(t *testing.T) {
	a := newAgent(t)
	mr := a.RegisterMR(StaticSource(make([]byte, 8)), 8)
	a.Deregister(mr)
	c := dial(t, a)
	if _, err := c.RDMARead(mr.Key(), 8); err != ErrBadKey {
		t.Fatalf("err = %v, want ErrBadKey", err)
	}
}

func TestCallHandler(t *testing.T) {
	a := newAgent(t)
	a.HandleCall("echo", func(p []byte) []byte {
		return append([]byte("re:"), p...)
	})
	c := dial(t, a)
	got, err := c.Call("echo", []byte("hi"))
	if err != nil || string(got) != "re:hi" {
		t.Fatalf("call = %q, %v", got, err)
	}
	if _, err := c.Call("nope", nil); err != ErrNoHandler {
		t.Fatalf("err = %v, want ErrNoHandler", err)
	}
}

func TestConcurrentClients(t *testing.T) {
	a := newAgent(t)
	var counter atomic.Uint64
	mr := a.RegisterMR(func() []byte {
		v := counter.Add(1)
		return []byte{byte(v), byte(v >> 8)}
	}, 2)
	const clients = 8
	const readsPer = 50
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := Dial(a.Addr())
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			for j := 0; j < readsPer; j++ {
				if _, err := c.RDMARead(mr.Key(), 2); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if counter.Load() != clients*readsPer {
		t.Fatalf("source called %d times, want %d", counter.Load(), clients*readsPer)
	}
}

func TestConcurrentOpsOnOneConn(t *testing.T) {
	a := newAgent(t)
	mr := a.RegisterMR(StaticSource([]byte{42}), 1)
	c := dial(t, a)
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 20; j++ {
				got, err := c.RDMARead(mr.Key(), 1)
				if err != nil || got[0] != 42 {
					t.Errorf("read: %v %v", got, err)
					return
				}
			}
		}()
	}
	wg.Wait()
}

func TestCloseUnblocksServer(t *testing.T) {
	a, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	c, err := Dial(a.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	// Further ops on the conn should fail, not hang.
	if _, err := c.RDMARead(1, 1); err == nil {
		t.Fatal("read after agent close should fail")
	}
	c.Close()
}

func TestPortNameTooLong(t *testing.T) {
	a := newAgent(t)
	c := dial(t, a)
	long := make([]byte, 300)
	for i := range long {
		long[i] = 'x'
	}
	if _, err := c.Call(string(long), nil); err == nil {
		t.Fatal("overlong port should error")
	}
}

func TestCompareSwapAppliesAndFences(t *testing.T) {
	a := newAgent(t)
	word := make([]byte, 8)
	var mu sync.Mutex
	mr := a.RegisterWritableMR(func() []byte {
		mu.Lock()
		defer mu.Unlock()
		cp := make([]byte, len(word))
		copy(cp, word)
		return cp
	}, len(word), func(b []byte) {
		mu.Lock()
		defer mu.Unlock()
		copy(word, b)
	})
	c := dial(t, a)

	prev, err := c.CompareSwap(mr.Key(), 0, 0xdead)
	if err != nil || prev != 0 {
		t.Fatalf("winning CAS: prev=%#x err=%v", prev, err)
	}
	// A stale compare must lose and report the current value.
	prev, err = c.CompareSwap(mr.Key(), 0, 0xbeef)
	if err != nil || prev != 0xdead {
		t.Fatalf("losing CAS: prev=%#x err=%v", prev, err)
	}
	// A fresh compare wins again.
	if prev, err = c.CompareSwap(mr.Key(), 0xdead, 0xbeef); err != nil || prev != 0xdead {
		t.Fatalf("second CAS: prev=%#x err=%v", prev, err)
	}
	if got := a.Atomics(); got != 3 {
		t.Fatalf("served atomics = %d, want 3", got)
	}
}

func TestCompareSwapErrors(t *testing.T) {
	a := newAgent(t)
	ro := a.RegisterMR(StaticSource(make([]byte, 8)), 8)
	small := a.RegisterWritableMR(StaticSource(make([]byte, 4)), 4, func([]byte) {})
	c := dial(t, a)
	if _, err := c.CompareSwap(99999, 0, 1); err != ErrBadKey {
		t.Fatalf("bad key: %v", err)
	}
	if _, err := c.CompareSwap(ro.Key(), 0, 1); err != ErrPermission {
		t.Fatalf("read-only region: %v", err)
	}
	if _, err := c.CompareSwap(small.Key(), 0, 1); err != ErrLength {
		t.Fatalf("short region: %v", err)
	}
}

// TestCompareSwapSerializes races many initiators over distinct
// connections: every round exactly one CAS may win, so the final value
// reflects a linear history of wins.
func TestCompareSwapSerializes(t *testing.T) {
	a := newAgent(t)
	word := make([]byte, 8)
	var mu sync.Mutex
	mr := a.RegisterWritableMR(func() []byte {
		mu.Lock()
		defer mu.Unlock()
		cp := make([]byte, len(word))
		copy(cp, word)
		return cp
	}, len(word), func(b []byte) {
		mu.Lock()
		defer mu.Unlock()
		copy(word, b)
	})

	const racers = 8
	var wins atomic.Uint64
	var wg sync.WaitGroup
	for i := 0; i < racers; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := Dial(a.Addr())
			if err != nil {
				t.Error(err)
				return
			}
			defer c.Close()
			// Everyone bids from the same observed value; only one can
			// install its ID.
			if prev, err := c.CompareSwap(mr.Key(), 0, uint64(i)+1); err == nil && prev == 0 {
				wins.Add(1)
			}
		}()
	}
	wg.Wait()
	if wins.Load() != 1 {
		t.Fatalf("%d racers won the same CAS, want exactly 1", wins.Load())
	}
}
