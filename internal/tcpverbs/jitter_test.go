package tcpverbs

import "testing"

// TestSeedJitterDeterministic: two connections seeded identically must
// produce identical backoff-jitter streams, and reseeding restarts the
// stream — this is what lets the chaos harness pin retry schedules.
func TestSeedJitterDeterministic(t *testing.T) {
	a := newAgent(t)
	c1, c2 := dial(t, a), dial(t, a)
	c1.SeedJitter(42)
	c2.SeedJitter(42)
	var first []float64
	for i := 0; i < 16; i++ {
		v1, v2 := c1.rng.Float64(), c2.rng.Float64()
		if v1 != v2 {
			t.Fatalf("draw %d diverged: %v vs %v", i, v1, v2)
		}
		first = append(first, v1)
	}
	c1.SeedJitter(42)
	for i := 0; i < 16; i++ {
		if v := c1.rng.Float64(); v != first[i] {
			t.Fatalf("reseed draw %d = %v, want %v", i, v, first[i])
		}
	}
	c1.SeedJitter(43)
	diverged := false
	for i := 0; i < 16; i++ {
		if c1.rng.Float64() != first[i] {
			diverged = true
			break
		}
	}
	if !diverged {
		t.Fatal("seeds 42 and 43 produced identical jitter streams")
	}
}

// TestDefaultJitterSeedsUncorrelated: the entropy-pool default must not
// hand two connections dialed back-to-back the same seed (wall-clock
// seeding would — that correlation is exactly what jitter exists to
// destroy).
func TestDefaultJitterSeedsUncorrelated(t *testing.T) {
	a := newAgent(t)
	c1, c2 := dial(t, a), dial(t, a)
	same := 0
	for i := 0; i < 16; i++ {
		if c1.rng.Float64() == c2.rng.Float64() {
			same++
		}
	}
	if same == 16 {
		t.Fatal("two freshly dialed connections share a jitter stream")
	}
	s1, s2 := jitterSeed(), jitterSeed()
	if s1 == s2 {
		t.Fatalf("consecutive jitterSeed() calls returned %d twice", s1)
	}
}
