// Package tcpverbs emulates the small slice of the RDMA verbs API the
// monitoring library needs — memory registration and one-sided reads —
// over plain TCP, so the library runs on clusters without InfiniBand
// hardware.
//
// The emulation preserves the property that matters: a remote read is
// served entirely by a dedicated responder goroutine (standing in for
// the NIC's DMA engine) without involving the application's own
// goroutines. What it cannot preserve is the kernel-bypass cost model:
// reads still traverse the host TCP stack, so this transport is a
// functional substitute, not a performance-faithful one (see
// DESIGN.md's substitution table).
//
// Wire protocol (all integers big-endian):
//
//	frame     := u32 length, u8 opcode, body
//	opRead    : u32 rkey, u32 maxLen          -> status, data
//	opWrite   : u32 rkey, data                -> status
//	opCall    : u8 portLen, port, payload     -> status, reply
//	opCompSwap: u32 rkey, u64 compare, u64 swap -> status, u64 prev
//	opReadPipe: u32 seq, u32 rkey, u32 maxLen -> status, u32 seq, data
//	reply     := u32 length, u8 status, body
//
// opReadPipe is the pipelined form of opRead: an initiator posts k of
// them back-to-back without waiting for replies (k reads in flight on
// one connection, one round trip for the whole batch) and matches each
// completion to its work request by the echoed seq — never by arrival
// order, so a reordering or desynchronized peer can make a read fail
// but can never mis-attribute one region's bytes to another request.
package tcpverbs

import (
	crand "crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"sync"
	"time"
)

// Opcodes.
const (
	opRead     = 1
	opWrite    = 2
	opCall     = 3
	opCompSwap = 4
	opReadPipe = 5
)

// Status codes mirrored from the simulated fabric's completion errors.
const (
	statusOK = iota
	statusBadKey
	statusPermission
	statusLength
	statusNoHandler
)

// Errors returned by initiator operations.
var (
	ErrBadKey     = errors.New("tcpverbs: invalid remote key")
	ErrPermission = errors.New("tcpverbs: remote access permission denied")
	ErrLength     = errors.New("tcpverbs: access beyond region bounds")
	ErrNoHandler  = errors.New("tcpverbs: no handler for port")
	ErrClosed     = errors.New("tcpverbs: connection closed")
	// ErrFenced reports a compare-and-swap whose bid can never succeed:
	// the remote word has moved to a strictly newer epoch than the bid
	// targets, so the caller has been deposed (or bid from a stale
	// observation an epoch behind). Returned by CompareSwapFenced only.
	ErrFenced = errors.New("tcpverbs: compare-and-swap fenced by a newer epoch")
)

const maxFrame = 16 << 20

// readChunk bounds per-allocation growth while reading a frame body:
// a lying length header can only cost memory as fast as the peer
// actually sends bytes, never maxFrame up front.
const readChunk = 64 << 10

// Default deadlines. Every read and write on a connection carries one;
// a dead peer costs a bounded wait, never a stuck goroutine.
const (
	// DefaultOpTimeout bounds one initiator operation (write + reply).
	DefaultOpTimeout = 10 * time.Second
	// DefaultIdleTimeout is how long an agent keeps an idle connection
	// before assuming the initiator is gone.
	DefaultIdleTimeout = 5 * time.Minute
	// DefaultWriteTimeout bounds an agent's reply write.
	DefaultWriteTimeout = 10 * time.Second
)

// RetryPolicy governs the initiator's redial-and-replay behaviour when
// an operation fails at the transport level. All operations the
// monitoring library issues (reads, load-record calls, record writes)
// are idempotent, so replaying a possibly-delivered frame is safe.
type RetryPolicy struct {
	// Attempts is the total number of tries per operation (default 3).
	Attempts int
	// Backoff is the delay before the first retry; it doubles each
	// attempt (default 25ms).
	Backoff time.Duration
	// MaxBackoff caps the doubling (default 500ms).
	MaxBackoff time.Duration
	// Jitter randomizes each backoff by ±Jitter/2 of its value
	// (default 0.5), de-synchronizing probers that all saw the same
	// back-end die at the same moment.
	Jitter float64
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.Attempts <= 0 {
		p.Attempts = 3
	}
	if p.Backoff <= 0 {
		p.Backoff = 25 * time.Millisecond
	}
	if p.MaxBackoff <= 0 {
		p.MaxBackoff = 500 * time.Millisecond
	}
	if p.Jitter <= 0 {
		p.Jitter = 0.5
	}
	return p
}

func statusErr(s byte) error {
	switch s {
	case statusOK:
		return nil
	case statusBadKey:
		return ErrBadKey
	case statusPermission:
		return ErrPermission
	case statusLength:
		return ErrLength
	case statusNoHandler:
		return ErrNoHandler
	}
	return fmt.Errorf("tcpverbs: unknown status %d", s)
}

// Source supplies a region's bytes at read time, exactly like
// simnet.Source: for live kernel statistics it is a closure that
// samples /proc when the "DMA" happens.
type Source func() []byte

// MR is a registered memory region on an Agent.
type MR struct {
	key      uint32
	size     int
	source   Source
	writable bool
	sink     func([]byte)
}

// Key returns the region's remote key.
func (m *MR) Key() uint32 { return m.key }

// Agent is the passive side: it owns registered regions and serves
// remote reads/writes/calls. One Agent per process plays the role of
// the RDMA NIC.
type Agent struct {
	ln net.Listener

	// IdleTimeout / WriteTimeout override the defaults when set before
	// the first connection arrives.
	IdleTimeout  time.Duration
	WriteTimeout time.Duration

	mu       sync.RWMutex
	mrs      map[uint32]*MR
	nextKey  uint32
	handlers map[string]func([]byte) []byte
	conns    map[net.Conn]struct{}
	closed   bool

	// ServedReads counts reads served (for tests/metrics).
	served struct {
		sync.Mutex
		reads, writes, calls, atomics, batched uint64
	}

	// atomics serializes compare-and-swap against every other CAS on
	// this agent, giving the emulated verb the responder-side atomicity
	// a real HCA provides in hardware.
	atomics sync.Mutex

	wg sync.WaitGroup
}

// Listen starts an agent on addr (e.g. "127.0.0.1:0").
func Listen(addr string) (*Agent, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	a := &Agent{
		ln:       ln,
		mrs:      make(map[uint32]*MR),
		handlers: make(map[string]func([]byte) []byte),
		conns:    make(map[net.Conn]struct{}),
	}
	a.wg.Add(1)
	go a.acceptLoop()
	return a, nil
}

// Addr returns the agent's listen address.
func (a *Agent) Addr() string { return a.ln.Addr().String() }

// Stats returns served operation counts.
func (a *Agent) Stats() (reads, writes, calls uint64) {
	a.served.Lock()
	defer a.served.Unlock()
	return a.served.reads, a.served.writes, a.served.calls
}

// Atomics returns the number of compare-and-swap operations served.
func (a *Agent) Atomics() uint64 {
	a.served.Lock()
	defer a.served.Unlock()
	return a.served.atomics
}

// BatchedReads returns the number of reads served via the pipelined
// opReadPipe path (a subset of the reads count).
func (a *Agent) BatchedReads() uint64 {
	a.served.Lock()
	defer a.served.Unlock()
	return a.served.batched
}

// RegisterMR pins a read-only region of size bytes served by src.
func (a *Agent) RegisterMR(src Source, size int) *MR {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.nextKey++
	mr := &MR{key: a.nextKey, size: size, source: src}
	a.mrs[mr.key] = mr
	return mr
}

// RegisterWritableMR pins a region that also accepts remote writes.
func (a *Agent) RegisterWritableMR(src Source, size int, sink func([]byte)) *MR {
	mr := a.RegisterMR(src, size)
	a.mu.Lock()
	mr.writable = true
	mr.sink = sink
	a.mu.Unlock()
	return mr
}

// Deregister unpins a region.
func (a *Agent) Deregister(mr *MR) {
	a.mu.Lock()
	defer a.mu.Unlock()
	delete(a.mrs, mr.key)
}

// HandleCall installs a request/response handler for channel-semantics
// exchanges (the socket-based monitoring schemes).
func (a *Agent) HandleCall(port string, h func(payload []byte) []byte) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.handlers[port] = h
}

// Close stops the agent, closes open connections and waits for its
// goroutines.
func (a *Agent) Close() error {
	a.mu.Lock()
	a.closed = true
	for c := range a.conns {
		c.Close()
	}
	a.mu.Unlock()
	err := a.ln.Close()
	a.wg.Wait()
	return err
}

func (a *Agent) acceptLoop() {
	defer a.wg.Done()
	for {
		c, err := a.ln.Accept()
		if err != nil {
			return
		}
		a.mu.Lock()
		if a.closed {
			a.mu.Unlock()
			c.Close()
			return
		}
		a.conns[c] = struct{}{}
		a.mu.Unlock()
		a.wg.Add(1)
		go func() {
			defer a.wg.Done()
			defer func() {
				c.Close()
				a.mu.Lock()
				delete(a.conns, c)
				a.mu.Unlock()
			}()
			a.serve(c)
		}()
	}
}

func (a *Agent) serve(c net.Conn) {
	idle, write := a.IdleTimeout, a.WriteTimeout
	if idle <= 0 {
		idle = DefaultIdleTimeout
	}
	if write <= 0 {
		write = DefaultWriteTimeout
	}
	for {
		c.SetReadDeadline(time.Now().Add(idle))
		body, err := readFrame(c)
		if err != nil {
			return
		}
		if len(body) < 1 {
			return
		}
		op, body := body[0], body[1:]
		var status byte
		var resp []byte
		switch op {
		case opRead:
			status, resp = a.doRead(body)
			a.served.Lock()
			a.served.reads++
			a.served.Unlock()
		case opWrite:
			status = a.doWrite(body)
			a.served.Lock()
			a.served.writes++
			a.served.Unlock()
		case opCall:
			status, resp = a.doCall(body)
			a.served.Lock()
			a.served.calls++
			a.served.Unlock()
		case opCompSwap:
			status, resp = a.doCompSwap(body)
			a.served.Lock()
			a.served.atomics++
			a.served.Unlock()
		case opReadPipe:
			status, resp = a.doReadPipe(body)
			a.served.Lock()
			a.served.reads++
			a.served.batched++
			a.served.Unlock()
		default:
			return
		}
		c.SetWriteDeadline(time.Now().Add(write))
		if err := writeReply(c, status, resp); err != nil {
			return
		}
	}
}

func (a *Agent) doRead(body []byte) (byte, []byte) {
	if len(body) < 8 {
		return statusLength, nil
	}
	key := binary.BigEndian.Uint32(body[0:])
	maxLen := int(binary.BigEndian.Uint32(body[4:]))
	a.mu.RLock()
	mr := a.mrs[key]
	a.mu.RUnlock()
	if mr == nil {
		return statusBadKey, nil
	}
	if maxLen > mr.size {
		return statusLength, nil
	}
	data := mr.source()
	if maxLen < len(data) {
		data = data[:maxLen]
	}
	return statusOK, data
}

// doReadPipe serves one pipelined read: like doRead, but the request
// carries a sequence number that is echoed ahead of the data so the
// initiator can match the completion to its work request.
func (a *Agent) doReadPipe(body []byte) (byte, []byte) {
	if len(body) < 12 {
		return statusLength, nil
	}
	seq := body[0:4]
	status, data := a.doRead(body[4:])
	resp := make([]byte, 4+len(data))
	copy(resp, seq)
	copy(resp[4:], data)
	return status, resp
}

func (a *Agent) doWrite(body []byte) byte {
	if len(body) < 4 {
		return statusLength
	}
	key := binary.BigEndian.Uint32(body[0:])
	data := body[4:]
	a.mu.RLock()
	mr := a.mrs[key]
	a.mu.RUnlock()
	switch {
	case mr == nil:
		return statusBadKey
	case !mr.writable:
		return statusPermission
	case len(data) > mr.size:
		return statusLength
	}
	cp := make([]byte, len(data))
	copy(cp, data)
	mr.sink(cp)
	return statusOK
}

// doCompSwap atomically compares the first 8 bytes of a writable
// region against compare and, on match, replaces them with swap. The
// pre-operation value is always returned, like a real HCA's masked
// atomic. The atomics mutex spans the read-compare-write sequence, so
// concurrent CAS from different connections serialize exactly as they
// would on the responder NIC.
func (a *Agent) doCompSwap(body []byte) (byte, []byte) {
	if len(body) < 20 {
		return statusLength, nil
	}
	key := binary.BigEndian.Uint32(body[0:])
	compare := binary.BigEndian.Uint64(body[4:])
	swap := binary.BigEndian.Uint64(body[12:])
	a.mu.RLock()
	mr := a.mrs[key]
	a.mu.RUnlock()
	switch {
	case mr == nil:
		return statusBadKey, nil
	case !mr.writable:
		return statusPermission, nil
	case mr.size < 8:
		return statusLength, nil
	}
	a.atomics.Lock()
	defer a.atomics.Unlock()
	cur := mr.source()
	if len(cur) < 8 {
		return statusLength, nil
	}
	prev := binary.LittleEndian.Uint64(cur[:8])
	if prev == compare {
		next := make([]byte, len(cur))
		copy(next, cur)
		binary.LittleEndian.PutUint64(next[:8], swap)
		mr.sink(next)
	}
	var resp [8]byte
	binary.BigEndian.PutUint64(resp[:], prev)
	return statusOK, resp[:]
}

func (a *Agent) doCall(body []byte) (byte, []byte) {
	if len(body) < 1 {
		return statusLength, nil
	}
	pl := int(body[0])
	if len(body) < 1+pl {
		return statusLength, nil
	}
	port := string(body[1 : 1+pl])
	payload := body[1+pl:]
	a.mu.RLock()
	h := a.handlers[port]
	a.mu.RUnlock()
	if h == nil {
		return statusNoHandler, nil
	}
	return statusOK, h(payload)
}

// Conn is an initiator endpoint ("queue pair") to one remote agent.
// It is safe for concurrent use; operations are serialized.
//
// Every operation runs under a deadline, and a transport failure
// (reset, timeout, mid-frame EOF) triggers redial-and-replay with
// exponential backoff and jitter, up to Retry.Attempts tries — so a
// back-end restarting on the same address is survived transparently,
// and a dead one costs a bounded, predictable delay.
type Conn struct {
	mu      sync.Mutex
	c       net.Conn
	addr    string
	opTmo   time.Duration
	rng     *rand.Rand
	closed  bool
	pipeSeq uint32

	// Per-connection scratch (guarded by mu, like every operation):
	// request-frame staging, the batch post buffer and its seq list,
	// and the reply-frame read buffer. A steady-state probe loop on one
	// connection reuses all of them instead of allocating per op.
	frame   []byte
	postBuf []byte
	seqs    []uint32
	rbuf    []byte

	// Retry is the redial/replay policy; the zero value takes the
	// documented defaults. Set it before issuing operations.
	Retry RetryPolicy

	// Redials counts successful reconnects (for tests/metrics).
	Redials uint64
}

// Dial connects to a remote agent with DefaultOpTimeout per operation.
func Dial(addr string) (*Conn, error) {
	return DialTimeout(addr, DefaultOpTimeout)
}

// DialTimeout connects with an explicit per-operation deadline.
// opTimeout <= 0 takes DefaultOpTimeout: there is deliberately no way
// to get a deadline-less connection.
func DialTimeout(addr string, opTimeout time.Duration) (*Conn, error) {
	if opTimeout <= 0 {
		opTimeout = DefaultOpTimeout
	}
	c, err := net.DialTimeout("tcp", addr, opTimeout)
	if err != nil {
		return nil, err
	}
	return &Conn{
		c:     c,
		addr:  addr,
		opTmo: opTimeout,
		rng:   rand.New(rand.NewSource(jitterSeed())),
	}, nil
}

// jitterSeed draws a backoff-jitter seed from the system entropy pool.
// Jitter exists to de-synchronize many initiators retrying at once;
// wall-clock seeding would hand simultaneous dialers nearly identical
// seeds — the exact correlation jitter is meant to destroy.
func jitterSeed() int64 {
	var b [8]byte
	if _, err := crand.Read(b[:]); err != nil {
		return time.Now().UnixNano()
	}
	return int64(binary.BigEndian.Uint64(b[:]))
}

// SeedJitter replaces the connection's backoff-jitter RNG with a
// deterministically seeded one, making the retry schedule reproducible
// (tests and the chaos harness pin it; production keeps the
// entropy-pool default).
func (c *Conn) SeedJitter(seed int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.rng = rand.New(rand.NewSource(seed))
}

// Close tears the connection down; subsequent operations fail without
// retrying.
func (c *Conn) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.closed = true
	return c.c.Close()
}

// retrying runs op under the connection's redial-and-replay policy:
// exponential backoff with ±Jitter/2 randomization, redial before each
// retry, the stream poisoned after a failed attempt. Caller holds
// c.mu; op must be idempotent.
func (c *Conn) retrying(op func() error) error {
	pol := c.Retry.withDefaults()
	backoff := pol.Backoff
	var lastErr error
	for attempt := 0; attempt < pol.Attempts; attempt++ {
		if c.closed {
			return ErrClosed
		}
		if attempt > 0 {
			d := backoff
			if pol.Jitter > 0 {
				f := 1 + pol.Jitter*(c.rng.Float64()-0.5)
				d = time.Duration(float64(d) * f)
			}
			time.Sleep(d)
			backoff *= 2
			if backoff > pol.MaxBackoff {
				backoff = pol.MaxBackoff
			}
			if err := c.redial(); err != nil {
				lastErr = err
				continue
			}
		}
		if err := op(); err != nil {
			lastErr = err
			c.c.Close() // poison the stream; next attempt redials
			continue
		}
		return nil
	}
	return lastErr
}

func (c *Conn) roundTrip(frame []byte) (byte, []byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	var status byte
	var body []byte
	err := c.retrying(func() error {
		var e error
		status, body, e = c.attempt(frame)
		return e
	})
	if err != nil {
		return 0, nil, err
	}
	return status, body, nil
}

// attempt performs one write+read under the operation deadline.
func (c *Conn) attempt(frame []byte) (byte, []byte, error) {
	c.c.SetDeadline(time.Now().Add(c.opTmo))
	if err := writeFrame(c.c, frame); err != nil {
		return 0, nil, err
	}
	body, err := readFrame(c.c)
	if err != nil {
		return 0, nil, err
	}
	if len(body) < 1 {
		return 0, nil, ErrClosed
	}
	return body[0], body[1:], nil
}

// redial replaces the underlying stream. Caller holds c.mu.
func (c *Conn) redial() error {
	if c.closed {
		return ErrClosed
	}
	nc, err := net.DialTimeout("tcp", c.addr, c.opTmo)
	if err != nil {
		return err
	}
	c.c.Close()
	c.c = nc
	c.Redials++
	return nil
}

// RDMARead fetches up to length bytes of the remote region. The remote
// application is not involved: the agent's responder goroutine serves
// the read directly.
func (c *Conn) RDMARead(rkey uint32, length int) ([]byte, error) {
	frame := make([]byte, 9)
	frame[0] = opRead
	binary.BigEndian.PutUint32(frame[1:], rkey)
	binary.BigEndian.PutUint32(frame[5:], uint32(length))
	status, data, err := c.roundTrip(frame)
	if err != nil {
		return nil, err
	}
	return data, statusErr(status)
}

// RDMAReadInto is RDMARead with caller-owned payload storage: the
// reply lands in buf (grown only when too small) and the request frame
// and reply frame stage through per-connection scratch, so a steady
// probe loop allocates nothing per read once warm.
func (c *Conn) RDMAReadInto(rkey uint32, length int, buf []byte) ([]byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if cap(c.frame) < 9 {
		c.frame = make([]byte, 9)
	}
	frame := c.frame[:9]
	frame[0] = opRead
	binary.BigEndian.PutUint32(frame[1:], rkey)
	binary.BigEndian.PutUint32(frame[5:], uint32(length))
	var status byte
	out := buf
	err := c.retrying(func() error {
		c.c.SetDeadline(time.Now().Add(c.opTmo))
		if err := writeFrame(c.c, frame); err != nil {
			return err
		}
		body, err := readFrameInto(c.c, c.rbuf)
		if err != nil {
			return err
		}
		if cap(body) > cap(c.rbuf) {
			c.rbuf = body
		}
		if len(body) < 1 {
			return ErrClosed
		}
		status = body[0]
		out = append(buf[:0], body[1:]...)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, statusErr(status)
}

// BatchRead describes one read in a pipelined batch.
type BatchRead struct {
	RKey   uint32
	Length int
}

// BatchResult is one completion of a pipelined batch, in the same
// position as its work request. Err carries per-read verb errors
// (ErrBadKey, ErrLength, ...); transport failures abort the whole
// batch instead.
type BatchResult struct {
	Data []byte
	Err  error
}

// RDMAReadBatch posts every read back-to-back on the connection
// without waiting for replies — k reads in flight, one round trip for
// the whole batch — then matches each completion to its work request
// by the echoed sequence number. This is the TCP analogue of a
// doorbell-batched multi-WR post.
//
// A transport failure (or any desynchronization: duplicate, unknown
// or missing seq) aborts the batch and triggers redial-and-replay of
// the whole batch under the connection's retry policy; reads are
// idempotent, so replaying a possibly-served batch is safe. Fresh
// sequence numbers are drawn per attempt, so a stale reply from an
// aborted attempt can never satisfy a later one.
func (c *Conn) RDMAReadBatch(reqs []BatchRead) ([]BatchResult, error) {
	return c.RDMAReadBatchInto(reqs, nil)
}

// RDMAReadBatchInto is RDMAReadBatch with caller-owned result storage:
// when results has the capacity it is recycled, each slot's Data
// buffer included, and the post buffer, seq list and reply frames all
// stage through per-connection scratch. Pass the returned slice back
// on the next call and a steady-state sweep posts batches with no
// per-batch payload allocation.
func (c *Conn) RDMAReadBatchInto(reqs []BatchRead, results []BatchResult) ([]BatchResult, error) {
	if len(reqs) == 0 {
		return nil, nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	out := results
	err := c.retrying(func() error {
		var e error
		out, e = c.attemptBatch(reqs, results)
		return e
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// attemptBatch performs one pipelined write-all-then-read-all pass
// under the operation deadline, staging the post buffer and seq list
// in connection scratch. Caller holds c.mu.
func (c *Conn) attemptBatch(reqs []BatchRead, into []BatchResult) ([]BatchResult, error) {
	if cap(c.seqs) < len(reqs) {
		c.seqs = make([]uint32, len(reqs))
	}
	seqs := c.seqs[:len(reqs)]
	buf := c.postBuf[:0]
	for i, rq := range reqs {
		c.pipeSeq++
		seqs[i] = c.pipeSeq
		var frame [17]byte
		binary.BigEndian.PutUint32(frame[0:], 13)
		frame[4] = opReadPipe
		binary.BigEndian.PutUint32(frame[5:], seqs[i])
		binary.BigEndian.PutUint32(frame[9:], rq.RKey)
		binary.BigEndian.PutUint32(frame[13:], uint32(rq.Length))
		buf = append(buf, frame[:]...)
	}
	c.postBuf = buf
	c.c.SetDeadline(time.Now().Add(c.opTmo))
	if _, err := c.c.Write(buf); err != nil {
		return nil, err
	}
	results, rbuf, err := collectBatchRepliesInto(c.c, seqs, into, c.rbuf)
	c.rbuf = rbuf
	return results, err
}

// collectBatchReplies reads len(seqs) reply frames from r and
// attributes each to the work request whose seq it echoes. Any
// desynchronization — a reply too short to carry a seq, an unknown
// seq, a duplicate completion — is a transport-level error for the
// whole batch: a confused stream may fail a batch but can never
// mis-attribute one request's bytes to another. Factored out so the
// fuzzer can drive it with arbitrary byte streams.
func collectBatchReplies(r io.Reader, seqs []uint32) ([]BatchResult, error) {
	results, _, err := collectBatchRepliesInto(r, seqs, nil, nil)
	return results, err
}

// collectBatchRepliesInto is the storage-reusing core of
// collectBatchReplies: results is recycled when its capacity suffices
// (each slot's Data buffer included) and reply frames stage through
// rbuf, which is returned — possibly grown — for the caller to keep.
// The seq table and completion set are small per-batch bookkeeping and
// still allocate; the payload path does not.
func collectBatchRepliesInto(r io.Reader, seqs []uint32, into []BatchResult, rbuf []byte) ([]BatchResult, []byte, error) {
	slot := make(map[uint32]int, len(seqs))
	for i, s := range seqs {
		if _, dup := slot[s]; dup {
			return nil, rbuf, fmt.Errorf("tcpverbs: duplicate seq %d posted in batch", s)
		}
		slot[s] = i
	}
	var results []BatchResult
	if cap(into) >= len(seqs) {
		results = into[:len(seqs)]
	} else {
		results = make([]BatchResult, len(seqs))
	}
	filled := make([]bool, len(seqs))
	for n := 0; n < len(seqs); n++ {
		body, err := readFrameInto(r, rbuf)
		if err != nil {
			return nil, rbuf, err
		}
		if cap(body) > cap(rbuf) {
			rbuf = body
		}
		if len(body) < 5 {
			return nil, rbuf, fmt.Errorf("tcpverbs: pipelined reply too short to carry a seq")
		}
		status := body[0]
		if status > statusNoHandler {
			// Statuses come only from our own agent; an unknown byte
			// here means the stream is corrupt, not that one read
			// failed.
			return nil, rbuf, fmt.Errorf("tcpverbs: unknown status %d in pipelined reply", status)
		}
		seq := binary.BigEndian.Uint32(body[1:5])
		i, ok := slot[seq]
		if !ok {
			return nil, rbuf, fmt.Errorf("tcpverbs: completion for unknown seq %d", seq)
		}
		if filled[i] {
			return nil, rbuf, fmt.Errorf("tcpverbs: duplicate completion for seq %d", seq)
		}
		filled[i] = true
		if err := statusErr(status); err != nil {
			results[i] = BatchResult{Data: results[i].Data[:0], Err: err}
			continue
		}
		results[i] = BatchResult{Data: append(results[i].Data[:0], body[5:]...)}
	}
	return results, rbuf, nil
}

// RDMAWrite stores data into the remote region (if writable).
func (c *Conn) RDMAWrite(rkey uint32, data []byte) error {
	frame := make([]byte, 5+len(data))
	frame[0] = opWrite
	binary.BigEndian.PutUint32(frame[1:], rkey)
	copy(frame[5:], data)
	status, _, err := c.roundTrip(frame)
	if err != nil {
		return err
	}
	return statusErr(status)
}

// CompareSwap atomically compares the first 8 bytes of the remote
// writable region (read little-endian, matching wire.PackLeaseWord's
// in-region layout) against compare and installs swap on match. It
// returns the pre-operation value; prev == compare means the swap
// applied.
//
// Unlike reads and writes, a CAS is not idempotent under the redial-
// and-replay retry policy: if the first attempt applied but its reply
// was lost, the replay compares against a value the region no longer
// holds and reports a loss the caller actually won. Lease callers are
// safe with that — a false loss is conservative (the bidder re-observes
// the word, sees itself named, and proceeds from there) — but callers
// needing exactly-once semantics must disable retries.
func (c *Conn) CompareSwap(rkey uint32, compare, swap uint64) (uint64, error) {
	frame := make([]byte, 21)
	frame[0] = opCompSwap
	binary.BigEndian.PutUint32(frame[1:], rkey)
	binary.BigEndian.PutUint64(frame[5:], compare)
	binary.BigEndian.PutUint64(frame[13:], swap)
	status, data, err := c.roundTrip(frame)
	if err != nil {
		return 0, err
	}
	if err := statusErr(status); err != nil {
		return 0, err
	}
	if len(data) < 8 {
		return 0, ErrClosed
	}
	return binary.BigEndian.Uint64(data), nil
}

// CompareSwapFenced is CompareSwap specialized to epoch-numbered words
// (the wire.PackLeaseWord / wire.PackClaimWord layout: epoch in bits
// 32..47). It repairs the hazard CompareSwap documents — a CAS is not
// idempotent under redial-and-replay — by recognizing the replay of an
// already-applied bid: when the observed value equals swap, the first
// attempt won and only its reply was lost, so the caller is told the
// win (prev == compare) instead of a false loss. This is sound because
// protocol bids are unique in the word's history: a takeover installs
// (owner, epoch+1, 0) for a strictly fresh epoch, and a renewal
// installs a strictly increasing stamp within the epoch, so observing
// one's own swap value can only mean one's own CAS applied it.
//
// A genuine loss whose observed epoch is strictly newer than the bid's
// surfaces as ErrFenced: the bid is permanently stale (deposed holder,
// or a bidder an epoch behind) and no amount of retrying this operand
// pair can win. A loss at the bid's own epoch returns (prev, nil) —
// the caller re-observes and decides. Epochs compare serially, so the
// distinction survives uint16 wraparound.
func (c *Conn) CompareSwapFenced(rkey uint32, compare, swap uint64) (uint64, error) {
	prev, err := c.CompareSwap(rkey, compare, swap)
	if err != nil {
		return prev, err
	}
	if prev == compare {
		return prev, nil // won outright
	}
	if prev == swap && swap != compare {
		return compare, nil // replay of an applied bid: the win was ours
	}
	pe, be := uint16(prev>>32), uint16(swap>>32)
	if pe != be && pe-be < 0x8000 { // serial: prev's epoch strictly newer
		return prev, ErrFenced
	}
	return prev, nil
}

// Call performs a request/response exchange with a named handler on
// the agent — the channel-semantics path used by the socket schemes.
func (c *Conn) Call(port string, payload []byte) ([]byte, error) {
	if len(port) > 255 {
		return nil, fmt.Errorf("tcpverbs: port name too long")
	}
	frame := make([]byte, 2+len(port)+len(payload))
	frame[0] = opCall
	frame[1] = byte(len(port))
	copy(frame[2:], port)
	copy(frame[2+len(port):], payload)
	status, data, err := c.roundTrip(frame)
	if err != nil {
		return nil, err
	}
	return data, statusErr(status)
}

func writeFrame(w io.Writer, body []byte) error {
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(body)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(body)
	return err
}

func writeReply(w io.Writer, status byte, body []byte) error {
	frame := make([]byte, 1+len(body))
	frame[0] = status
	copy(frame[1:], body)
	return writeFrame(w, frame)
}

func readFrame(r io.Reader) ([]byte, error) {
	return readFrameInto(r, nil)
}

// readFrameInto is readFrame against caller-owned scratch: the body is
// staged in scratch while its capacity lasts and chunked growth only
// kicks in past it, so a warm reply loop reads frames without
// allocating.
func readFrameInto(r io.Reader, scratch []byte) ([]byte, error) {
	// Stage the length header in the scratch itself when there is room:
	// a local header array escapes through the io.Reader interface and
	// costs one allocation per frame, so it lives only in the cold
	// branch where no scratch exists yet.
	var n int
	if cap(scratch) >= 4 {
		hdr := scratch[:4]
		if _, err := io.ReadFull(r, hdr); err != nil {
			return nil, err
		}
		n = int(binary.BigEndian.Uint32(hdr))
	} else {
		var hdr [4]byte
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			return nil, err
		}
		n = int(binary.BigEndian.Uint32(hdr[:]))
	}
	if n > maxFrame {
		return nil, fmt.Errorf("tcpverbs: frame too large (%d)", n)
	}
	// Grow in bounded chunks as bytes actually arrive: a hostile or
	// corrupted length field costs memory only as fast as the peer
	// delivers payload, and truncation fails at the current chunk.
	body := scratch[:0]
	if cap(body) == 0 && n > 0 {
		cap0 := n
		if cap0 > readChunk {
			cap0 = readChunk
		}
		body = make([]byte, 0, cap0)
	}
	for len(body) < n {
		chunk := n - len(body)
		if chunk > readChunk {
			chunk = readChunk
		}
		off := len(body)
		if cap(body)-off >= chunk {
			body = body[:off+chunk]
		} else {
			body = append(body, make([]byte, chunk)...)
		}
		if _, err := io.ReadFull(r, body[off:off+chunk]); err != nil {
			return nil, err
		}
	}
	return body, nil
}
