package tcpverbs

import (
	"bytes"
	"testing"
)

// The scratch-reuse contract of the Into APIs: warm buffers are
// recycled, not reallocated. Network ops run over real loopback TCP,
// where the runtime's poller may allocate on its own schedule, so the
// wire-facing tests assert backing-array identity instead of counting
// allocations; the pure frame decoder gets a strict zero-alloc check.

func frameStream(bodies ...[]byte) []byte {
	var buf bytes.Buffer
	for _, b := range bodies {
		if err := writeFrame(&buf, b); err != nil {
			panic(err)
		}
	}
	return buf.Bytes()
}

func TestReadFrameIntoZeroAlloc(t *testing.T) {
	body := bytes.Repeat([]byte{0xAB}, 512)
	stream := frameStream(body)
	scratch := make([]byte, 0, len(body))
	r := bytes.NewReader(nil)
	allocs := testing.AllocsPerRun(100, func() {
		r.Reset(stream)
		got, err := readFrameInto(r, scratch)
		if err != nil || len(got) != len(body) {
			t.Fatalf("readFrameInto: %d bytes, %v", len(got), err)
		}
	})
	if allocs != 0 {
		t.Fatalf("warm readFrameInto allocates %.1f objects/op, want 0", allocs)
	}
}

func TestReadFrameIntoGrowsPastScratch(t *testing.T) {
	body := bytes.Repeat([]byte{0xCD}, 1024)
	got, err := readFrameInto(bytes.NewReader(frameStream(body)), make([]byte, 0, 16))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, body) {
		t.Fatal("grown read corrupted the frame body")
	}
}

func TestRDMAReadIntoReusesBuffer(t *testing.T) {
	a := newAgent(t)
	payload := []byte("ring-history-payload")
	mr := a.RegisterMR(StaticSource(payload), len(payload))
	c := dial(t, a)
	buf := make([]byte, 0, 64)
	got, err := c.RDMAReadInto(mr.Key(), len(payload), buf)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("RDMAReadInto = %q, want %q", got, payload)
	}
	if &got[0] != &buf[:1][0] {
		t.Fatal("reply did not land in the caller's buffer")
	}
	// Second read reuses both the caller buffer and the connection's
	// internal frame scratch.
	got2, err := c.RDMAReadInto(mr.Key(), len(payload), got)
	if err != nil {
		t.Fatal(err)
	}
	if &got2[0] != &got[0] {
		t.Fatal("warm re-read abandoned the caller's buffer")
	}
}

func TestRDMAReadBatchIntoReusesResults(t *testing.T) {
	a := newAgent(t)
	const k = 4
	reqs := make([]BatchRead, k)
	for i := 0; i < k; i++ {
		id := byte(i + 1)
		mr := a.RegisterMR(StaticSource([]byte{id, id, id}), 3)
		reqs[i] = BatchRead{RKey: mr.Key(), Length: 3}
	}
	c := dial(t, a)
	res, err := c.RDMAReadBatchInto(reqs, nil)
	if err != nil {
		t.Fatal(err)
	}
	ptrs := make([]*byte, k)
	for i := range res {
		if res[i].Err != nil || res[i].Data[0] != byte(i+1) {
			t.Fatalf("slot %d: %+v", i, res[i])
		}
		ptrs[i] = &res[i].Data[0]
	}
	// Passing the results back recycles the slice and every slot's Data
	// buffer: same backing arrays, fresh bytes.
	res2, err := c.RDMAReadBatchInto(reqs, res)
	if err != nil {
		t.Fatal(err)
	}
	if &res2[0] != &res[0] {
		t.Fatal("warm batch abandoned the result slice")
	}
	for i := range res2 {
		if res2[i].Err != nil || res2[i].Data[0] != byte(i+1) {
			t.Fatalf("warm slot %d: %+v", i, res2[i])
		}
		if &res2[i].Data[0] != ptrs[i] {
			t.Fatalf("warm slot %d reallocated its Data buffer", i)
		}
	}
}
