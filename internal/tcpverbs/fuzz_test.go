package tcpverbs

import (
	"bytes"
	"encoding/binary"
	"io"
	"testing"
	"time"

	"rdmamon/internal/connpool"
)

// frame prefixes body with its u32 length, like writeFrame.
func frame(body []byte) []byte {
	out := make([]byte, 4+len(body))
	binary.BigEndian.PutUint32(out, uint32(len(body)))
	copy(out[4:], body)
	return out
}

// FuzzReadFrame throws arbitrary byte streams at the frame reader:
// truncated headers, truncated bodies, oversized and lying length
// fields. readFrame must never panic, never allocate more than the
// bytes actually present, and must hand back exactly the framed body
// when one is there.
func FuzzReadFrame(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0})                           // short header
	f.Add(frame(nil))                                // empty body
	f.Add(frame([]byte{opRead, 1, 2, 3}))            // valid-ish frame
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF})            // 4GB length, no body
	f.Add([]byte{0x01, 0x00, 0x00, 0x00, 0xAB})      // 16MB length, 1 byte
	f.Add(append(frame([]byte{opCall}), 0xDE, 0xAD)) // trailing garbage
	big := frame(bytes.Repeat([]byte{7}, 3*readChunk+17))
	f.Add(big) // multi-chunk body

	f.Fuzz(func(t *testing.T, data []byte) {
		body, err := readFrame(bytes.NewReader(data))
		if len(data) < 4 {
			if err == nil {
				t.Fatal("frame decoded from a short header")
			}
			return
		}
		n := binary.BigEndian.Uint32(data)
		switch {
		case n > maxFrame:
			if err == nil {
				t.Fatalf("accepted oversized frame length %d", n)
			}
		case uint32(len(data)-4) < n:
			if err == nil {
				t.Fatalf("decoded %d-byte body from %d available", n, len(data)-4)
			}
			if err != io.ErrUnexpectedEOF && err != io.EOF {
				t.Fatalf("truncated body: unexpected error %v", err)
			}
		default:
			if err != nil {
				t.Fatalf("valid frame rejected: %v", err)
			}
			if !bytes.Equal(body, data[4:4+n]) {
				t.Fatalf("body mismatch: got %d bytes, want %d", len(body), n)
			}
		}
	})
}

// FuzzServeFrame drives a full agent's dispatch path with arbitrary
// frame bodies over a real connection: whatever the bytes say, the
// agent must answer with a well-formed reply frame or close the
// connection — never panic, never hang.
//
// Connections come from a budgeted pool (MaxConns bounds the harness's
// fd footprint) rather than one dial per input: malformed frames that
// kill the connection recycle it via Invalidate — no breaker or
// backoff charge, the next input redials — so fd pressure can never
// accumulate and a dial failure is a genuine bug, never a skip.
func FuzzServeFrame(f *testing.F) {
	f.Add([]byte{opRead, 0, 0, 0, 1, 0, 0, 0, 120})
	f.Add([]byte{opRead})                   // short read body
	f.Add([]byte{opWrite, 0, 0, 0, 1, 42})  // write to read-only key
	f.Add([]byte{opCall, 4, 'r', 'm', 'o'}) // port length beyond body
	f.Add([]byte{opCall, 0})                // empty port
	f.Add([]byte{99, 1, 2, 3})              // unknown opcode
	f.Add([]byte{})                         // empty body

	a, err := Listen("127.0.0.1:0")
	if err != nil {
		f.Fatal(err)
	}
	f.Cleanup(func() { a.Close() })
	static := bytes.Repeat([]byte{9}, 120)
	a.RegisterMR(func() []byte { return static }, 120)
	a.HandleCall("rmon", func(p []byte) []byte { return p })

	pool := connpool.New[string, *Conn](connpool.Config{MaxConns: 4},
		func() int64 { return time.Now().UnixNano() })
	pool.OnClose = func(_ string, c *Conn) { c.Close() }
	f.Cleanup(pool.Close)

	acquire := func(t *testing.T) connpool.Lease[string, *Conn] {
		t.Helper()
		for i := 0; i < 1000; i++ {
			l, v, reason := pool.Acquire(a.Addr(), true)
			switch v {
			case connpool.Conn:
				return l
			case connpool.Dial:
				c, err := DialTimeout(a.Addr(), 2*time.Second)
				if err != nil {
					// The budget guarantees at most MaxConns fds are
					// ever held, so a refused dial is a real transport
					// bug, not harness fd pressure.
					pool.DialFailed(a.Addr())
					t.Fatalf("dial under fd budget failed: %v", err)
				}
				c.Retry = RetryPolicy{Attempts: 1, Backoff: time.Millisecond}
				l, lerr := pool.DialDone(a.Addr(), c)
				if lerr != nil {
					t.Fatalf("pool rejected dialed conn: %v", lerr)
				}
				return l
			default: // Shed: backoff window from a previous failure.
				_ = reason
				time.Sleep(time.Millisecond)
			}
		}
		t.Fatal("pool shed for 1000 rounds; acquisition starved")
		panic("unreachable")
	}

	f.Fuzz(func(t *testing.T, body []byte) {
		l := acquire(t)
		// roundTrip either returns a parsed reply or a transport error
		// (agent dropped the connection). Both are acceptable; what is
		// not acceptable is a panic or a hang past the deadline.
		_, _, err := l.Conn.roundTrip(body)
		if err != nil {
			// The agent hung up on this frame: expected for malformed
			// input. Recycle without charging the target's breaker so
			// the next input starts from a fresh connection.
			pool.Invalidate(l)
			return
		}
		pool.Release(l, nil)
	})
}
