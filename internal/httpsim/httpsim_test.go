package httpsim

import (
	"testing"

	"rdmamon/internal/loadbalance"
	"rdmamon/internal/sim"
	"rdmamon/internal/simnet"
	"rdmamon/internal/simos"
)

type rig struct {
	eng   *sim.Engine
	fab   *simnet.Fabric
	front *simos.Node
	fnic  *simnet.NIC
	back  []*simos.Node
	bnic  []*simnet.NIC
}

func newRig(nBack int) *rig {
	eng := sim.NewEngine(1)
	fab := simnet.NewFabric(eng, simnet.Defaults())
	r := &rig{eng: eng, fab: fab}
	r.front = simos.NewNode(eng, 0, simos.NodeDefaults())
	r.fnic = fab.Attach(r.front)
	for i := 1; i <= nBack; i++ {
		n := simos.NewNode(eng, i, simos.NodeDefaults())
		r.back = append(r.back, n)
		r.bnic = append(r.bnic, fab.Attach(n))
	}
	return r
}

func TestServerServesRequestEndToEnd(t *testing.T) {
	r := newRig(1)
	srv := StartServer(r.back[0], r.bnic[0], ServerDefaults())
	var reply Reply
	var when sim.Time
	r.fab.RegisterExternal(-1, func(m simos.Message) {
		reply = m.Payload.(Reply)
		when = r.eng.Now()
	})
	req := Request{
		ID: 1, Class: "Home", CPU: 2 * sim.Millisecond,
		Size: 300, Resp: 4096, Client: -1, Issued: 0,
	}
	r.fab.Inject(-1, 1, ServerPort, req.Size, req)
	r.eng.RunUntil(sim.Second)
	if reply.ID != 1 || reply.Class != "Home" || reply.Backend != 1 {
		t.Fatalf("reply = %+v", reply)
	}
	// Response time ~ service demand + wire overheads, well under 4ms.
	if when < 2*sim.Millisecond || when > 4*sim.Millisecond {
		t.Fatalf("served at %v, want ~2-4ms", when)
	}
	if srv.Served() != 1 {
		t.Fatalf("Served = %d", srv.Served())
	}
}

func TestServerIOWaitReleasesCPU(t *testing.T) {
	// Two requests with long IO waits on a 2-worker server should
	// overlap their IO: total time ~ CPU+IO, not 2*(CPU+IO).
	r := newRig(1)
	StartServer(r.back[0], r.bnic[0], ServerConfig{Workers: 2})
	done := 0
	var last sim.Time
	r.fab.RegisterExternal(-1, func(m simos.Message) {
		done++
		last = r.eng.Now()
	})
	for i := 0; i < 2; i++ {
		req := Request{
			ID: uint64(i), CPU: sim.Millisecond, IOWait: 20 * sim.Millisecond,
			Size: 300, Resp: 1024, Client: -1,
		}
		r.fab.Inject(-1, 1, ServerPort, req.Size, req)
	}
	r.eng.RunUntil(sim.Second)
	if done != 2 {
		t.Fatalf("done = %d", done)
	}
	if last > 30*sim.Millisecond {
		t.Fatalf("IO did not overlap: finished at %v", last)
	}
}

func TestServerQueuesBeyondWorkers(t *testing.T) {
	r := newRig(1)
	srv := StartServer(r.back[0], r.bnic[0], ServerConfig{Workers: 2})
	for i := 0; i < 6; i++ {
		req := Request{ID: uint64(i), CPU: 50 * sim.Millisecond, Size: 300, Resp: 512, Client: -1}
		r.fab.Inject(-1, 1, ServerPort, req.Size, req)
	}
	r.fab.RegisterExternal(-1, func(simos.Message) {})
	r.eng.RunUntil(30 * sim.Millisecond)
	if srv.Busy() != 2 {
		t.Fatalf("busy = %d, want 2 (pool size)", srv.Busy())
	}
	if srv.QueueDepth() == 0 {
		t.Fatal("excess requests should queue")
	}
	// Connection load (queue + busy) must be visible to the kernel
	// stats for the monitoring schemes.
	if got := r.back[0].K.Conns(); got != srv.Busy()+srv.QueueDepth() {
		t.Fatalf("kernel conns = %d, want %d", got, srv.Busy()+srv.QueueDepth())
	}
	r.eng.RunUntil(sim.Second)
	if srv.Served() != 6 {
		t.Fatalf("served = %d, want all 6", srv.Served())
	}
	if r.back[0].K.Conns() != 0 {
		t.Fatal("conns should drain to 0")
	}
}

func TestServerMemoryAccounting(t *testing.T) {
	r := newRig(1)
	base := r.back[0].K.MemUsedKB()
	StartServer(r.back[0], r.bnic[0], ServerConfig{Workers: 4, MemPerKB: 1024})
	r.fab.RegisterExternal(-1, func(simos.Message) {})
	for i := 0; i < 3; i++ {
		req := Request{ID: uint64(i), CPU: 20 * sim.Millisecond, Size: 300, Resp: 512, Client: -1}
		r.fab.Inject(-1, 1, ServerPort, req.Size, req)
	}
	r.eng.RunUntil(10 * sim.Millisecond)
	if got := r.back[0].K.MemUsedKB(); got != base+3*1024 {
		t.Fatalf("mem during service = %d, want base+3072", got)
	}
	r.eng.RunUntil(sim.Second)
	if got := r.back[0].K.MemUsedKB(); got != base {
		t.Fatalf("mem after drain = %d, want %d", got, base)
	}
}

func TestDispatcherRoutesViaPolicy(t *testing.T) {
	r := newRig(2)
	for i := range r.back {
		StartServer(r.back[i], r.bnic[i], ServerDefaults())
	}
	rr := &loadbalance.RoundRobin{Backends: []int{1, 2}}
	d := StartDispatcher(r.front, r.fnic, rr)
	replies := 0
	r.fab.RegisterExternal(-1, func(simos.Message) { replies++ })
	for i := 0; i < 10; i++ {
		req := Request{ID: uint64(i), CPU: sim.Millisecond, Size: 300, Resp: 512, Client: -1}
		r.fab.Inject(-1, 0, DispatchPort, req.Size, req)
	}
	r.eng.RunUntil(sim.Second)
	if replies != 10 {
		t.Fatalf("replies = %d, want 10", replies)
	}
	if d.Routed != 10 {
		t.Fatalf("routed = %d", d.Routed)
	}
	if d.ByNode[1] != 5 || d.ByNode[2] != 5 {
		t.Fatalf("round-robin split = %v, want 5/5", d.ByNode)
	}
}

func TestDispatcherStop(t *testing.T) {
	r := newRig(1)
	StartServer(r.back[0], r.bnic[0], ServerDefaults())
	d := StartDispatcher(r.front, r.fnic, &loadbalance.RoundRobin{Backends: []int{1}})
	r.fab.RegisterExternal(-1, func(simos.Message) {})
	d.Stop()
	req := Request{ID: 1, CPU: sim.Millisecond, Size: 300, Resp: 512, Client: -1}
	r.fab.Inject(-1, 0, DispatchPort, req.Size, req)
	r.eng.RunUntil(sim.Second)
	if d.Routed != 0 {
		t.Fatal("stopped dispatcher should not route")
	}
}

func TestServerIgnoresGarbagePayload(t *testing.T) {
	r := newRig(1)
	srv := StartServer(r.back[0], r.bnic[0], ServerDefaults())
	r.fab.Inject(-1, 1, ServerPort, 100, "not-a-request")
	r.fab.RegisterExternal(-1, func(simos.Message) {})
	req := Request{ID: 5, CPU: sim.Millisecond, Size: 300, Resp: 512, Client: -1}
	r.fab.Inject(-1, 1, ServerPort, req.Size, req)
	r.eng.RunUntil(sim.Second)
	if srv.Served() != 1 {
		t.Fatalf("served = %d, want 1 (garbage skipped)", srv.Served())
	}
}

func TestLocalFracDecays(t *testing.T) {
	r := newRig(2)
	for i := range r.back {
		StartServer(r.back[i], r.bnic[i], ServerDefaults())
	}
	d := StartDispatcher(r.front, r.fnic, &loadbalance.RoundRobin{Backends: []int{1, 2}})
	r.fab.RegisterExternal(-1, func(simos.Message) {})
	for i := 0; i < 20; i++ {
		req := Request{ID: uint64(i), CPU: sim.Millisecond, Size: 300, Resp: 512, Client: -1}
		r.fab.Inject(-1, 0, DispatchPort, req.Size, req)
	}
	r.eng.RunUntil(100 * sim.Millisecond)
	f1 := d.LocalFrac(1)
	if f1 < 0.4 || f1 > 0.6 {
		t.Fatalf("round-robin LocalFrac = %v, want ~0.5", f1)
	}
	// After several decay constants with no traffic, counts vanish.
	r.eng.RunUntil(2 * sim.Second)
	if d.LocalFrac(1) != 0 {
		t.Fatalf("LocalFrac after idle = %v, want 0", d.LocalFrac(1))
	}
}

func TestAdmissionRejectPath(t *testing.T) {
	r := newRig(1)
	StartServer(r.back[0], r.bnic[0], ServerDefaults())
	d := StartDispatcher(r.front, r.fnic, &loadbalance.RoundRobin{Backends: []int{1}})
	d.Admission = func() bool { return false }
	var rejected bool
	r.fab.RegisterExternal(-1, func(m simos.Message) {
		if rep, ok := m.Payload.(Reply); ok && rep.Rejected {
			rejected = true
		}
	})
	req := Request{ID: 1, CPU: sim.Millisecond, Size: 300, Resp: 512, Client: -1}
	r.fab.Inject(-1, 0, DispatchPort, req.Size, req)
	r.eng.RunUntil(sim.Second)
	if !rejected {
		t.Fatal("client never saw the rejection")
	}
	if d.Routed != 0 {
		t.Fatal("rejected request must not be routed")
	}
}
