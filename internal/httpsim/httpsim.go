// Package httpsim models the cluster web server of the paper's
// application-level evaluation: a front-end dispatcher and per-node
// back-end servers with a fixed pool of worker processes.
//
// The model deliberately reduces HTTP to its queueing behaviour: a
// request carries a CPU service demand and an optional I/O (database)
// wait; workers execute demands under the node's scheduler, so
// response times inflate exactly when the dispatcher sends requests to
// a node whose CPUs are already saturated — which is what the paper's
// monitoring accuracy determines.
package httpsim

import (
	"fmt"

	"rdmamon/internal/loadbalance"
	"rdmamon/internal/sim"
	"rdmamon/internal/simnet"
	"rdmamon/internal/simos"
)

// ServerPort is the back-end port serving requests.
const ServerPort = "http"

// DispatchPort is the front-end port clients send requests to.
const DispatchPort = "dispatch"

// Request is one client request as carried through the cluster.
type Request struct {
	ID     uint64
	Class  string   // query class (RUBiS query name, "zipf", ...)
	CPU    sim.Time // service demand on a back-end CPU
	IOWait sim.Time // database / disk wait (no CPU held)
	Size   int      // request size on the wire
	Resp   int      // response size on the wire

	Client int      // external endpoint to reply to
	Issued sim.Time // client-side issue timestamp
}

// Reply is the response returned to the client.
type Reply struct {
	ID      uint64
	Class   string
	Issued  sim.Time
	Backend int
	// Rejected marks a request turned away by admission control.
	Rejected bool
	// NotPrimary marks a request refused because the dispatcher does
	// not hold a valid lease epoch; the client should retry against
	// another front-end replica.
	NotPrimary bool
}

// ServerConfig configures a back-end server.
type ServerConfig struct {
	Workers  int   // worker process pool size (Apache-style)
	MemPerKB int64 // resident memory per in-flight request, KB
}

// ServerDefaults mirrors a small Apache prefork pool.
func ServerDefaults() ServerConfig {
	return ServerConfig{Workers: 8, MemPerKB: 2048}
}

// Server is a back-end web server: a pool of worker tasks consuming
// from the node's http port.
type Server struct {
	Cfg  ServerConfig
	node *simos.Node
	nic  *simnet.NIC
	port *simos.Port

	busy    int
	served  uint64
	stopped bool
	workers []*simos.Task
}

// StartServer launches the worker pool on node.
func StartServer(node *simos.Node, nic *simnet.NIC, cfg ServerConfig) *Server {
	if cfg.Workers <= 0 {
		cfg.Workers = ServerDefaults().Workers
	}
	s := &Server{Cfg: cfg, node: node, nic: nic, port: node.Port(ServerPort)}
	// Client sessions are persistent HTTP connections: immune to
	// listen-backlog drops.
	nic.Fabric().MarkEstablished(ServerPort)
	// Connection load visible to the monitoring schemes: queued +
	// in-service requests.
	node.K.SetConnFn(func() int { return s.port.QueueLen() + s.busy })
	for i := 0; i < cfg.Workers; i++ {
		w := node.Spawn(fmt.Sprintf("httpd-%d", i), func(tk *simos.Task) {
			var serve func(m simos.Message)
			serve = func(m simos.Message) {
				if s.stopped {
					tk.Exit()
					return
				}
				req, ok := m.Payload.(Request)
				if !ok {
					tk.Recv(s.port, serve)
					return
				}
				s.busy++
				node.K.AddMemKB(cfg.MemPerKB)
				finish := func() {
					reply := Reply{ID: req.ID, Class: req.Class, Issued: req.Issued, Backend: node.ID}
					s.nic.Send(tk, req.Client, "", req.Resp, reply, func() {
						s.busy--
						s.served++
						node.K.AddMemKB(-cfg.MemPerKB)
						tk.Recv(s.port, serve)
					})
				}
				tk.Compute(req.CPU, func() {
					if req.IOWait > 0 {
						tk.Sleep(req.IOWait, finish)
					} else {
						finish()
					}
				})
			}
			tk.Recv(s.port, serve)
		})
		s.workers = append(s.workers, w)
	}
	return s
}

// Served returns the number of completed requests.
func (s *Server) Served() uint64 { return s.served }

// QueueDepth returns requests waiting for a worker.
func (s *Server) QueueDepth() int { return s.port.QueueLen() }

// Busy returns requests currently in service.
func (s *Server) Busy() int { return s.busy }

// Stop drains the worker pool (workers exit after their current
// request).
func (s *Server) Stop() { s.stopped = true }

// Dispatcher is the front-end request router: it receives client
// requests on the dispatch port, consults the balancing policy and
// forwards to a back-end.
type Dispatcher struct {
	node   *simos.Node
	nic    *simnet.NIC
	port   *simos.Port
	policy loadbalance.Policy

	// DecisionCost is the front-end CPU per routed request (parse +
	// policy evaluation).
	DecisionCost sim.Time

	// Fence, if set, is consulted per request before anything else: a
	// false return means this dispatcher does not hold a valid lease
	// epoch and must not route — the client gets a NotPrimary reply
	// and retries elsewhere. This is what makes a deposed or
	// frozen-then-thawed primary harmless (no split-brain routing).
	Fence func() bool

	// Admission, if set, is consulted per request; a false return
	// rejects the request immediately (the client gets a Rejected
	// reply instead of service).
	Admission func() bool

	// BackendFence, if set, is consulted after the policy picked a
	// back-end: a false return means this front-end does not validly
	// hold the claim covering that back-end's dispatch shard and must
	// not forward — the client gets a NotPrimary reply and retries
	// against another front-end. It also guards a policy returning -1
	// (no claimed candidates at all). This is the hard guarantee behind
	// active-active dispatch: the claim filter steers, the fence
	// enforces.
	BackendFence func(backend int) bool

	// OnRoute, if set, observes every routing decision just after the
	// policy picked a back-end (the chaos invariant checker audits
	// dispatch-to-crashed-node violations here).
	OnRoute func(backend int)

	Routed uint64
	// Fenced counts requests refused by the lease fence.
	Fenced uint64
	// ShardFenced counts requests refused by the per-backend claim
	// fence (picked back-end's shard not validly held here).
	ShardFenced uint64
	ByNode      map[int]uint64
	stopped     bool
	task        *simos.Task

	// Decayed per-backend forward counters: the dispatcher's local
	// connection-count signal (exponential decay, time constant
	// localTau). LocalShare exposes it to the balancing policy.
	localTau  sim.Time
	counts    map[int]float64
	lastDecay sim.Time
}

// StartDispatcher launches the dispatcher task on the front-end node,
// serving the default dispatch port.
func StartDispatcher(node *simos.Node, nic *simnet.NIC, policy loadbalance.Policy) *Dispatcher {
	return StartDispatcherOn(node, nic, policy, DispatchPort)
}

// StartDispatcherOn launches a dispatcher on a specific port, so
// several services (each with its own dispatcher and policy) can share
// one front-end.
func StartDispatcherOn(node *simos.Node, nic *simnet.NIC, policy loadbalance.Policy, port string) *Dispatcher {
	d := &Dispatcher{
		node: node, nic: nic, policy: policy,
		port:         node.Port(port),
		DecisionCost: 15 * sim.Microsecond,
		ByNode:       make(map[int]uint64),
		localTau:     150 * sim.Millisecond,
		counts:       make(map[int]float64),
	}
	nic.Fabric().MarkEstablished(port)
	d.task = node.Spawn("dispatcher", func(tk *simos.Task) {
		var serve func(m simos.Message)
		serve = func(m simos.Message) {
			if d.stopped {
				tk.Exit()
				return
			}
			req, ok := m.Payload.(Request)
			if !ok {
				tk.Recv(d.port, serve)
				return
			}
			tk.Compute(d.DecisionCost, func() {
				if d.Fence != nil && !d.Fence() {
					d.Fenced++
					nak := Reply{ID: req.ID, Class: req.Class, Issued: req.Issued, NotPrimary: true}
					d.nic.Send(tk, req.Client, "", 256, nak, func() {
						tk.Recv(d.port, serve)
					})
					return
				}
				if d.Admission != nil && !d.Admission() {
					rej := Reply{ID: req.ID, Class: req.Class, Issued: req.Issued, Rejected: true}
					d.nic.Send(tk, req.Client, "", 256, rej, func() {
						tk.Recv(d.port, serve)
					})
					return
				}
				b := d.policy.Pick()
				if b < 0 || (d.BackendFence != nil && !d.BackendFence(b)) {
					d.ShardFenced++
					nak := Reply{ID: req.ID, Class: req.Class, Issued: req.Issued, NotPrimary: true}
					d.nic.Send(tk, req.Client, "", 256, nak, func() {
						tk.Recv(d.port, serve)
					})
					return
				}
				if d.OnRoute != nil {
					d.OnRoute(b)
				}
				d.Routed++
				d.ByNode[b]++
				d.noteForward(b)
				d.nic.Send(tk, b, ServerPort, req.Size, req, func() {
					tk.Recv(d.port, serve)
				})
			})
		}
		tk.Recv(d.port, serve)
	})
	return d
}

// Stop ends the dispatcher.
func (d *Dispatcher) Stop() {
	d.stopped = true
	d.task.Exit()
}

func (d *Dispatcher) decay() {
	now := d.node.Eng.Now()
	dt := now - d.lastDecay
	if dt <= 0 {
		return
	}
	d.lastDecay = now
	// e^-x approximated piecewise: full reset beyond ~4 tau.
	if dt > 4*d.localTau {
		for b := range d.counts {
			d.counts[b] = 0
		}
		return
	}
	f := 1 - float64(dt)/float64(d.localTau)
	if f < 0 {
		f = 0
	}
	for b := range d.counts {
		d.counts[b] *= f
	}
}

func (d *Dispatcher) noteForward(b int) {
	d.decay()
	d.counts[b]++
}

// LocalFrac returns backend b's recent fraction of forwarded requests
// (0..1; 1/N is the fair share). Returns 0 before any traffic.
func (d *Dispatcher) LocalFrac(b int) float64 {
	d.decay()
	total := 0.0
	for _, v := range d.counts {
		total += v
	}
	if total < 1e-9 {
		return 0
	}
	return d.counts[b] / total
}
