package ganglia

import (
	"testing"

	"rdmamon/internal/core"
	"rdmamon/internal/sim"
	"rdmamon/internal/simnet"
	"rdmamon/internal/simos"
	"rdmamon/internal/wire"
)

type rig struct {
	eng   *sim.Engine
	fab   *simnet.Fabric
	nodes []*simos.Node
	nics  []*simnet.NIC
}

func newRig(n int) *rig {
	eng := sim.NewEngine(1)
	fab := simnet.NewFabric(eng, simnet.Defaults())
	r := &rig{eng: eng, fab: fab}
	for i := 0; i < n; i++ {
		nd := simos.NewNode(eng, i, simos.NodeDefaults())
		r.nodes = append(r.nodes, nd)
		r.nics = append(r.nics, fab.Attach(nd))
	}
	return r
}

func TestDeployAndGossip(t *testing.T) {
	r := newRig(4)
	cfg := Defaults()
	cfg.Interval = 100 * sim.Millisecond
	s := Deploy(r.fab, r.nodes, r.nics, cfg)
	r.eng.RunUntil(2 * sim.Second)
	if len(s.Gmonds) != 4 {
		t.Fatalf("gmonds = %d", len(s.Gmonds))
	}
	for i, g := range s.Gmonds {
		if g.Rounds < 15 {
			t.Fatalf("gmond %d rounds = %d, want ~20", i, g.Rounds)
		}
		// Each gmond hears from 3 peers per interval.
		if g.Received < 40 {
			t.Fatalf("gmond %d received = %d, want ~60", i, g.Received)
		}
	}
}

func TestGmetricPublishFansOut(t *testing.T) {
	r := newRig(3)
	cfg := Defaults()
	cfg.Interval = 10 * sim.Second // silence gmond's own traffic
	s := Deploy(r.fab, r.nodes, r.nics, cfg)
	for i := 0; i < 5; i++ {
		s.Gmetric.Publish(i)
	}
	r.eng.RunUntil(sim.Second)
	if s.Gmetric.Published != 5 {
		t.Fatalf("published = %d, want 5", s.Gmetric.Published)
	}
	// The two peers should have received the 5 publications each.
	for _, g := range s.Gmonds[1:] {
		if g.Received < 5 {
			t.Fatalf("peer received %d, want >=5", g.Received)
		}
	}
}

func TestWireFineGrainedPublishesRecords(t *testing.T) {
	r := newRig(3)
	cfg := Defaults()
	cfg.Interval = 10 * sim.Second
	s := Deploy(r.fab, r.nodes, r.nics, cfg)
	agent := core.StartAgent(r.nodes[1], r.nics[1], core.AgentConfig{Scheme: core.RDMASync})
	mon := core.StartMonitor(r.nodes[0], r.nics[0], []*core.Agent{agent}, 20*sim.Millisecond)
	s.WireFineGrained(mon)
	r.eng.RunUntil(sim.Second)
	// Probes land every 20ms but publication is decimated to the
	// configured 50ms minimum interval: ~20 publications in 1s.
	if s.Gmetric.Published < 15 || s.Gmetric.Published > 25 {
		t.Fatalf("published = %d, want ~20 (rate-limited)", s.Gmetric.Published)
	}
}

func TestWireFineGrainedDecimation(t *testing.T) {
	r := newRig(3)
	cfg := Defaults()
	cfg.Interval = 10 * sim.Second
	cfg.PublishMinInterval = sim.Millisecond // effectively unthrottled
	s := Deploy(r.fab, r.nodes, r.nics, cfg)
	agent := core.StartAgent(r.nodes[1], r.nics[1], core.AgentConfig{Scheme: core.RDMASync})
	mon := core.StartMonitor(r.nodes[0], r.nics[0], []*core.Agent{agent}, 20*sim.Millisecond)
	s.WireFineGrained(mon)
	r.eng.RunUntil(sim.Second)
	if s.Gmetric.Published < 40 {
		t.Fatalf("published = %d, want ~50 (one per probe when unthrottled)", s.Gmetric.Published)
	}
}

func TestStopSilencesGroup(t *testing.T) {
	r := newRig(2)
	cfg := Defaults()
	cfg.Interval = 50 * sim.Millisecond
	s := Deploy(r.fab, r.nodes, r.nics, cfg)
	r.eng.RunUntil(500 * sim.Millisecond)
	s.Stop()
	rounds := s.Gmonds[0].Rounds
	pubs := s.Gmetric.Published
	r.eng.RunUntil(2 * sim.Second)
	if s.Gmonds[0].Rounds > rounds+1 {
		t.Fatal("gmond kept collecting after Stop")
	}
	s.Gmetric.Publish("late")
	r.eng.RunUntil(3 * sim.Second)
	if s.Gmetric.Published > pubs {
		t.Fatal("gmetric kept publishing after Stop")
	}
}

func TestWireStatusPublishesChangesOnly(t *testing.T) {
	r := newRig(4)
	cfg := Defaults()
	cfg.Interval = 10 * sim.Second // silence gmond's own traffic
	s := Deploy(r.fab, r.nodes, r.nics, cfg)
	agents := []*core.Agent{
		core.StartAgent(r.nodes[1], r.nics[1], core.AgentConfig{Scheme: core.RDMASync}),
		core.StartAgent(r.nodes[2], r.nics[2], core.AgentConfig{Scheme: core.RDMASync}),
	}
	mon := core.StartMonitor(r.nodes[0], r.nics[0], agents, 20*sim.Millisecond)
	s.WireStatus(mon, 20*sim.Millisecond)
	r.eng.RunUntil(sim.Second)
	// One publication per back-end at start-up, then silence: the
	// cluster is stable, so every later scan finds nothing changed.
	if s.Gmetric.Published != 2 {
		t.Fatalf("published = %d, want 2 (one per back-end, change-driven)", s.Gmetric.Published)
	}
	// A transport change is one more publication. Stop the monitor so
	// the next probe does not flap the transport straight back.
	mon.Stop()
	mon.Probers[agents[0].Node().ID].LastTransport = core.TransportSocket
	r.eng.RunUntil(2 * sim.Second)
	if s.Gmetric.Published != 3 {
		t.Fatalf("published = %d, want 3 after one transport change", s.Gmetric.Published)
	}
}

func TestWireLeasePublishesTransitions(t *testing.T) {
	r := newRig(3)
	cfg := Defaults()
	cfg.Interval = 10 * sim.Second
	s := Deploy(r.fab, r.nodes, r.nics, cfg)
	l := core.NewLease(1, core.LeaseConfig{}.WithDefaults(50*sim.Millisecond))
	// Pre-existing hooks must survive the wiring.
	var hooked int
	l.OnAcquire = func(uint16, sim.Time, sim.Time) { hooked++ }
	s.WireLease(r.nodes[0].ID, l)

	l.TakeoverWon(sim.Second)                              // acquire epoch 1 -> publish
	l.RenewWon(1020 * sim.Millisecond)                     // 20ms later: rate-limited out
	l.RenewWon(1100 * sim.Millisecond)                     // past the min interval -> publish
	l.RenewLost(wire.PackLeaseWord(2, 2, 0), 2*sim.Second) // deposed -> publish
	r.eng.RunUntil(3 * sim.Second)

	if hooked != 1 {
		t.Fatalf("pre-existing OnAcquire hook ran %d times, want 1", hooked)
	}
	if s.Gmetric.Published != 3 {
		t.Fatalf("published = %d, want 3 (acquire, one renewal, depose)", s.Gmetric.Published)
	}
}

func TestDeployValidation(t *testing.T) {
	r := newRig(2)
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched nodes/nics should panic")
		}
	}()
	Deploy(r.fab, r.nodes, r.nics[:1], Defaults())
}
