package ganglia

import (
	"testing"

	"rdmamon/internal/core"
	"rdmamon/internal/sim"
	"rdmamon/internal/simnet"
	"rdmamon/internal/simos"
)

type rig struct {
	eng   *sim.Engine
	fab   *simnet.Fabric
	nodes []*simos.Node
	nics  []*simnet.NIC
}

func newRig(n int) *rig {
	eng := sim.NewEngine(1)
	fab := simnet.NewFabric(eng, simnet.Defaults())
	r := &rig{eng: eng, fab: fab}
	for i := 0; i < n; i++ {
		nd := simos.NewNode(eng, i, simos.NodeDefaults())
		r.nodes = append(r.nodes, nd)
		r.nics = append(r.nics, fab.Attach(nd))
	}
	return r
}

func TestDeployAndGossip(t *testing.T) {
	r := newRig(4)
	cfg := Defaults()
	cfg.Interval = 100 * sim.Millisecond
	s := Deploy(r.fab, r.nodes, r.nics, cfg)
	r.eng.RunUntil(2 * sim.Second)
	if len(s.Gmonds) != 4 {
		t.Fatalf("gmonds = %d", len(s.Gmonds))
	}
	for i, g := range s.Gmonds {
		if g.Rounds < 15 {
			t.Fatalf("gmond %d rounds = %d, want ~20", i, g.Rounds)
		}
		// Each gmond hears from 3 peers per interval.
		if g.Received < 40 {
			t.Fatalf("gmond %d received = %d, want ~60", i, g.Received)
		}
	}
}

func TestGmetricPublishFansOut(t *testing.T) {
	r := newRig(3)
	cfg := Defaults()
	cfg.Interval = 10 * sim.Second // silence gmond's own traffic
	s := Deploy(r.fab, r.nodes, r.nics, cfg)
	for i := 0; i < 5; i++ {
		s.Gmetric.Publish(i)
	}
	r.eng.RunUntil(sim.Second)
	if s.Gmetric.Published != 5 {
		t.Fatalf("published = %d, want 5", s.Gmetric.Published)
	}
	// The two peers should have received the 5 publications each.
	for _, g := range s.Gmonds[1:] {
		if g.Received < 5 {
			t.Fatalf("peer received %d, want >=5", g.Received)
		}
	}
}

func TestWireFineGrainedPublishesRecords(t *testing.T) {
	r := newRig(3)
	cfg := Defaults()
	cfg.Interval = 10 * sim.Second
	s := Deploy(r.fab, r.nodes, r.nics, cfg)
	agent := core.StartAgent(r.nodes[1], r.nics[1], core.AgentConfig{Scheme: core.RDMASync})
	mon := core.StartMonitor(r.nodes[0], r.nics[0], []*core.Agent{agent}, 20*sim.Millisecond)
	s.WireFineGrained(mon)
	r.eng.RunUntil(sim.Second)
	// Probes land every 20ms but publication is decimated to the
	// configured 50ms minimum interval: ~20 publications in 1s.
	if s.Gmetric.Published < 15 || s.Gmetric.Published > 25 {
		t.Fatalf("published = %d, want ~20 (rate-limited)", s.Gmetric.Published)
	}
}

func TestWireFineGrainedDecimation(t *testing.T) {
	r := newRig(3)
	cfg := Defaults()
	cfg.Interval = 10 * sim.Second
	cfg.PublishMinInterval = sim.Millisecond // effectively unthrottled
	s := Deploy(r.fab, r.nodes, r.nics, cfg)
	agent := core.StartAgent(r.nodes[1], r.nics[1], core.AgentConfig{Scheme: core.RDMASync})
	mon := core.StartMonitor(r.nodes[0], r.nics[0], []*core.Agent{agent}, 20*sim.Millisecond)
	s.WireFineGrained(mon)
	r.eng.RunUntil(sim.Second)
	if s.Gmetric.Published < 40 {
		t.Fatalf("published = %d, want ~50 (one per probe when unthrottled)", s.Gmetric.Published)
	}
}

func TestStopSilencesGroup(t *testing.T) {
	r := newRig(2)
	cfg := Defaults()
	cfg.Interval = 50 * sim.Millisecond
	s := Deploy(r.fab, r.nodes, r.nics, cfg)
	r.eng.RunUntil(500 * sim.Millisecond)
	s.Stop()
	rounds := s.Gmonds[0].Rounds
	pubs := s.Gmetric.Published
	r.eng.RunUntil(2 * sim.Second)
	if s.Gmonds[0].Rounds > rounds+1 {
		t.Fatal("gmond kept collecting after Stop")
	}
	s.Gmetric.Publish("late")
	r.eng.RunUntil(3 * sim.Second)
	if s.Gmetric.Published > pubs {
		t.Fatal("gmetric kept publishing after Stop")
	}
}

func TestDeployValidation(t *testing.T) {
	r := newRig(2)
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched nodes/nics should panic")
		}
	}()
	Deploy(r.fab, r.nodes, r.nics[:1], Defaults())
}
