// Package ganglia models the Ganglia distributed monitoring system as
// used in the paper's §5.2.2 experiment: a gmond daemon on every node
// multicasting periodic metric reports to its peers, plus the gmetric
// tool through which arbitrary user metrics — here, the fine-grained
// load records collected by a monitoring scheme — are injected into
// the ganglia group.
//
// What matters for the experiment is the *perturbation* this machinery
// causes on the back-ends at a given metric granularity; the package
// therefore models gmond's collection cost, the multicast fan-out and
// the receive processing on every member.
package ganglia

import (
	"fmt"

	"rdmamon/internal/core"
	"rdmamon/internal/sim"
	"rdmamon/internal/simnet"
	"rdmamon/internal/simos"
	"rdmamon/internal/wire"
)

// Port names used by the ganglia group.
const (
	GmondPort   = "gmond"
	GmetricPort = "gmetric"
)

// Config shapes the ganglia deployment.
type Config struct {
	Group       string   // multicast group name
	Interval    sim.Time // gmond base metric interval
	CollectCost sim.Time // gmond per-round collection + XML cost
	RecvCost    sim.Time // processing per received metric packet
	PacketSize  int
	PublishCost sim.Time // gmetric per-publication cost

	// PublishMinInterval rate-limits gmetric publication per source:
	// ganglia propagates metrics on its own cadence, so even a
	// millisecond-granularity collector is decimated before it hits
	// the multicast group.
	PublishMinInterval sim.Time
}

// Defaults returns a deployment matching ganglia's defaults (metrics
// every few seconds; the fine-grained channel comes from gmetric).
func Defaults() Config {
	return Config{
		Group:              "ganglia",
		Interval:           sim.Second,
		CollectCost:        250 * sim.Microsecond,
		RecvCost:           25 * sim.Microsecond,
		PacketSize:         800,
		PublishCost:        40 * sim.Microsecond,
		PublishMinInterval: 50 * sim.Millisecond,
	}
}

// Gmond is one node's ganglia daemon.
type Gmond struct {
	node *simos.Node

	// Received counts metric packets processed from the group.
	Received uint64
	// Rounds counts local collection rounds completed.
	Rounds uint64

	stopped bool
	tasks   []*simos.Task
}

// Node returns the daemon's host.
func (g *Gmond) Node() *simos.Node { return g.node }

// Stop ends the daemon's loops.
func (g *Gmond) Stop() {
	g.stopped = true
	for _, t := range g.tasks {
		t.Exit()
	}
}

func startGmond(node *simos.Node, nic *simnet.NIC, cfg Config) *Gmond {
	g := &Gmond{node: node}
	port := node.Port(GmondPort)
	// Collector: gather local metrics and multicast them.
	col := node.Spawn("gmond-collect", func(tk *simos.Task) {
		var loop func()
		loop = func() {
			if g.stopped {
				tk.Exit()
				return
			}
			tk.Compute(cfg.CollectCost, func() {
				g.Rounds++
				nic.Multicast(tk, cfg.Group, cfg.PacketSize, gmondPacket{From: node.ID}, func() {
					tk.Sleep(cfg.Interval, loop)
				})
			})
		}
		loop()
	})
	// Receiver: drain and process packets from peers.
	rx := node.Spawn("gmond-recv", func(tk *simos.Task) {
		var serve func(m simos.Message)
		serve = func(m simos.Message) {
			if g.stopped {
				tk.Exit()
				return
			}
			tk.Compute(cfg.RecvCost, func() {
				g.Received++
				tk.Recv(port, serve)
			})
		}
		tk.Recv(port, serve)
	})
	g.tasks = append(g.tasks, col, rx)
	return g
}

type gmondPacket struct{ From int }

// Gmetric is the metric-injection tool, hosted on one node (the
// front-end in the paper's setup): metrics handed to Publish are
// multicast to the ganglia group from a dedicated publisher task.
type Gmetric struct {
	node *simos.Node
	port *simos.Port

	// Published counts metrics multicast to the group.
	Published uint64

	stopped bool
	task    *simos.Task
}

func startGmetric(node *simos.Node, nic *simnet.NIC, cfg Config) *Gmetric {
	gm := &Gmetric{node: node, port: node.Port(GmetricPort)}
	gm.task = node.Spawn("gmetric", func(tk *simos.Task) {
		var serve func(m simos.Message)
		serve = func(m simos.Message) {
			if gm.stopped {
				tk.Exit()
				return
			}
			tk.Compute(cfg.PublishCost, func() {
				nic.Multicast(tk, cfg.Group, cfg.PacketSize, m.Payload, func() {
					gm.Published++
					tk.Recv(gm.port, serve)
				})
			})
		}
		tk.Recv(gm.port, serve)
	})
	return gm
}

// Publish hands a metric to the publisher task (local IPC).
func (g *Gmetric) Publish(v any) {
	g.port.Deliver(simos.Message{From: g.node.ID, Payload: v})
}

// Stop ends the publisher.
func (g *Gmetric) Stop() {
	g.stopped = true
	g.task.Exit()
}

// System is a deployed ganglia group.
type System struct {
	Cfg     Config
	Gmonds  []*Gmond
	Gmetric *Gmetric
}

// Deploy installs gmond on every node and gmetric on nodes[0] (the
// front-end). All of them join the multicast group.
func Deploy(fab *simnet.Fabric, nodes []*simos.Node, nics []*simnet.NIC, cfg Config) *System {
	if cfg.Group == "" {
		cfg = Defaults()
	}
	if len(nodes) == 0 || len(nodes) != len(nics) {
		panic(fmt.Sprintf("ganglia: bad deployment: %d nodes, %d nics", len(nodes), len(nics)))
	}
	s := &System{Cfg: cfg}
	for i, n := range nodes {
		fab.JoinGroup(cfg.Group, n.ID, GmondPort)
		s.Gmonds = append(s.Gmonds, startGmond(n, nics[i], cfg))
	}
	s.Gmetric = startGmetric(nodes[0], nics[0], cfg)
	return s
}

// WireFineGrained connects a monitoring scheme's front-end monitor to
// gmetric: every load record a prober receives is published to the
// ganglia group, which is how the paper's gmetric supports
// fine-grained monitoring (§5.2.2). Existing OnRecord hooks are
// preserved.
func (s *System) WireFineGrained(mon *core.Monitor) {
	for _, p := range mon.Probers {
		prev := p.OnRecord
		var lastPub sim.Time = -1 << 62
		minEvery := s.Cfg.PublishMinInterval
		p.OnRecord = func(rec wire.LoadRecord, at sim.Time) {
			if prev != nil {
				prev(rec, at)
			}
			if at-lastPub >= minEvery {
				lastPub = at
				s.Gmetric.Publish(rec)
			}
		}
	}
}

// Stop ends every daemon.
func (s *System) Stop() {
	for _, g := range s.Gmonds {
		g.Stop()
	}
	s.Gmetric.Stop()
}
