// Package ganglia models the Ganglia distributed monitoring system as
// used in the paper's §5.2.2 experiment: a gmond daemon on every node
// multicasting periodic metric reports to its peers, plus the gmetric
// tool through which arbitrary user metrics — here, the fine-grained
// load records collected by a monitoring scheme — are injected into
// the ganglia group.
//
// What matters for the experiment is the *perturbation* this machinery
// causes on the back-ends at a given metric granularity; the package
// therefore models gmond's collection cost, the multicast fan-out and
// the receive processing on every member.
package ganglia

import (
	"fmt"
	"sort"

	"rdmamon/internal/core"
	"rdmamon/internal/sim"
	"rdmamon/internal/simnet"
	"rdmamon/internal/simos"
	"rdmamon/internal/wire"
)

// Port names used by the ganglia group.
const (
	GmondPort   = "gmond"
	GmetricPort = "gmetric"
)

// Config shapes the ganglia deployment.
type Config struct {
	Group       string   // multicast group name
	Interval    sim.Time // gmond base metric interval
	CollectCost sim.Time // gmond per-round collection + XML cost
	RecvCost    sim.Time // processing per received metric packet
	PacketSize  int
	PublishCost sim.Time // gmetric per-publication cost

	// PublishMinInterval rate-limits gmetric publication per source:
	// ganglia propagates metrics on its own cadence, so even a
	// millisecond-granularity collector is decimated before it hits
	// the multicast group.
	PublishMinInterval sim.Time
}

// Defaults returns a deployment matching ganglia's defaults (metrics
// every few seconds; the fine-grained channel comes from gmetric).
func Defaults() Config {
	return Config{
		Group:              "ganglia",
		Interval:           sim.Second,
		CollectCost:        250 * sim.Microsecond,
		RecvCost:           25 * sim.Microsecond,
		PacketSize:         800,
		PublishCost:        40 * sim.Microsecond,
		PublishMinInterval: 50 * sim.Millisecond,
	}
}

// Gmond is one node's ganglia daemon.
type Gmond struct {
	node *simos.Node

	// Received counts metric packets processed from the group.
	Received uint64
	// Rounds counts local collection rounds completed.
	Rounds uint64

	stopped bool
	tasks   []*simos.Task
}

// Node returns the daemon's host.
func (g *Gmond) Node() *simos.Node { return g.node }

// Stop ends the daemon's loops.
func (g *Gmond) Stop() {
	g.stopped = true
	for _, t := range g.tasks {
		t.Exit()
	}
}

func startGmond(node *simos.Node, nic *simnet.NIC, cfg Config) *Gmond {
	g := &Gmond{node: node}
	port := node.Port(GmondPort)
	// Collector: gather local metrics and multicast them.
	col := node.Spawn("gmond-collect", func(tk *simos.Task) {
		var loop func()
		loop = func() {
			if g.stopped {
				tk.Exit()
				return
			}
			tk.Compute(cfg.CollectCost, func() {
				g.Rounds++
				nic.Multicast(tk, cfg.Group, cfg.PacketSize, gmondPacket{From: node.ID}, func() {
					tk.Sleep(cfg.Interval, loop)
				})
			})
		}
		loop()
	})
	// Receiver: drain and process packets from peers.
	rx := node.Spawn("gmond-recv", func(tk *simos.Task) {
		var serve func(m simos.Message)
		serve = func(m simos.Message) {
			if g.stopped {
				tk.Exit()
				return
			}
			tk.Compute(cfg.RecvCost, func() {
				g.Received++
				tk.Recv(port, serve)
			})
		}
		tk.Recv(port, serve)
	})
	g.tasks = append(g.tasks, col, rx)
	return g
}

type gmondPacket struct{ From int }

// Gmetric is the metric-injection tool, hosted on one node (the
// front-end in the paper's setup): metrics handed to Publish are
// multicast to the ganglia group from a dedicated publisher task.
type Gmetric struct {
	node *simos.Node
	port *simos.Port

	// Published counts metrics multicast to the group.
	Published uint64

	stopped bool
	task    *simos.Task
}

func startGmetric(node *simos.Node, nic *simnet.NIC, cfg Config) *Gmetric {
	gm := &Gmetric{node: node, port: node.Port(GmetricPort)}
	gm.task = node.Spawn("gmetric", func(tk *simos.Task) {
		var serve func(m simos.Message)
		serve = func(m simos.Message) {
			if gm.stopped {
				tk.Exit()
				return
			}
			tk.Compute(cfg.PublishCost, func() {
				nic.Multicast(tk, cfg.Group, cfg.PacketSize, m.Payload, func() {
					gm.Published++
					tk.Recv(gm.port, serve)
				})
			})
		}
		tk.Recv(gm.port, serve)
	})
	return gm
}

// Publish hands a metric to the publisher task (local IPC).
func (g *Gmetric) Publish(v any) {
	g.port.Deliver(simos.Message{From: g.node.ID, Payload: v})
}

// Stop ends the publisher.
func (g *Gmetric) Stop() {
	g.stopped = true
	g.task.Exit()
}

// System is a deployed ganglia group.
type System struct {
	Cfg     Config
	Gmonds  []*Gmond
	Gmetric *Gmetric
}

// Deploy installs gmond on every node and gmetric on nodes[0] (the
// front-end). All of them join the multicast group.
func Deploy(fab *simnet.Fabric, nodes []*simos.Node, nics []*simnet.NIC, cfg Config) *System {
	if cfg.Group == "" {
		cfg = Defaults()
	}
	if len(nodes) == 0 || len(nodes) != len(nics) {
		panic(fmt.Sprintf("ganglia: bad deployment: %d nodes, %d nics", len(nodes), len(nics)))
	}
	s := &System{Cfg: cfg}
	for i, n := range nodes {
		fab.JoinGroup(cfg.Group, n.ID, GmondPort)
		s.Gmonds = append(s.Gmonds, startGmond(n, nics[i], cfg))
	}
	s.Gmetric = startGmetric(nodes[0], nics[0], cfg)
	return s
}

// WireFineGrained connects a monitoring scheme's front-end monitor to
// gmetric: every load record a prober receives is published to the
// ganglia group, which is how the paper's gmetric supports
// fine-grained monitoring (§5.2.2). Existing OnRecord hooks are
// preserved.
func (s *System) WireFineGrained(mon *core.Monitor) {
	for _, p := range mon.Probers {
		prev := p.OnRecord
		var lastPub sim.Time = -1 << 62
		minEvery := s.Cfg.PublishMinInterval
		p.OnRecord = func(rec wire.LoadRecord, at sim.Time) {
			if prev != nil {
				prev(rec, at)
			}
			if at-lastPub >= minEvery {
				lastPub = at
				s.Gmetric.Publish(rec)
			}
		}
	}
}

// StatusMetric is the coarse health/failover/lease channel riding the
// same gmetric path as the fine-grained load records: which transport
// each back-end is being monitored over, what the monitor currently
// thinks of its health, and which front-end replica holds which lease
// epoch. Operators thereby see "node 5 went Degraded on the socket
// path" or "replica 2 took the lease at epoch 3" in the same tool
// that shows the load curves.
type StatusMetric struct {
	Kind      string // "backend" or "frontend"
	Node      int    // back-end ID, or front-end replica node ID
	Health    string // back-end health verdict ("" for front-ends)
	Transport string // transport serving the back-end's probes ("" for front-ends)
	Role      string // lease role ("" for back-ends)
	Epoch     uint16 // lease epoch (0 for back-ends)
}

// WireStatus publishes each back-end's health verdict and active
// monitoring transport to the ganglia group. The monitor is scanned
// every `every` (PublishMinInterval when zero) and only *changes* are
// published, so a stable cluster costs one packet per back-end at
// start-up and a failover or quarantine costs one per transition.
// Back-ends are scanned in ID order so the publication stream is
// deterministic. Returns the ticker so callers can stop it.
func (s *System) WireStatus(mon *core.Monitor, every sim.Time) *sim.Ticker {
	if every <= 0 {
		every = s.Cfg.PublishMinInterval
	}
	ids := make([]int, 0, len(mon.Probers))
	for b := range mon.Probers {
		ids = append(ids, b)
	}
	sort.Ints(ids)
	last := make(map[int]StatusMetric, len(ids))
	return s.Gmetric.node.Eng.NewTicker(every, func() {
		for _, b := range ids {
			m := StatusMetric{
				Kind:      "backend",
				Node:      b,
				Health:    mon.Health(b).String(),
				Transport: mon.Probers[b].LastTransport.String(),
			}
			if last[b] != m {
				last[b] = m
				s.Gmetric.Publish(m)
			}
		}
	})
}

// WireLease publishes a front-end replica's lease transitions:
// acquisitions and deposals immediately, renewals rate-limited by
// PublishMinInterval (a renewal fires every CheckEvery, which would
// otherwise swamp the group just to say "still primary"). Hooks
// already installed on the lease — the HA invariant checkers use the
// same ones — are preserved.
func (s *System) WireLease(node int, l *core.Lease) {
	prevAcq, prevRen, prevDep := l.OnAcquire, l.OnRenew, l.OnDepose
	var lastPub sim.Time = -1 << 62
	minEvery := s.Cfg.PublishMinInterval
	pub := func(role core.LeaseRole, epoch uint16) {
		s.Gmetric.Publish(StatusMetric{Kind: "frontend", Node: node, Role: role.String(), Epoch: epoch})
	}
	l.OnAcquire = func(epoch uint16, now, validUntil sim.Time) {
		if prevAcq != nil {
			prevAcq(epoch, now, validUntil)
		}
		lastPub = now
		pub(core.RolePrimary, epoch)
	}
	l.OnRenew = func(epoch uint16, now, validUntil sim.Time) {
		if prevRen != nil {
			prevRen(epoch, now, validUntil)
		}
		if now-lastPub >= minEvery {
			lastPub = now
			pub(core.RolePrimary, epoch)
		}
	}
	l.OnDepose = func(epoch uint16, now sim.Time) {
		if prevDep != nil {
			prevDep(epoch, now)
		}
		lastPub = now
		pub(core.RoleFollower, epoch)
	}
}

// Stop ends every daemon.
func (s *System) Stop() {
	for _, g := range s.Gmonds {
		g.Stop()
	}
	s.Gmetric.Stop()
}
