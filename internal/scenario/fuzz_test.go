package scenario

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// FuzzScenario holds Parse to two contracts for arbitrary bytes:
//
//  1. It never panics — malformed durations, negative weights, unknown
//     actions, duplicate template names, broken indentation and hostile
//     numerics are all errors.
//  2. Everything it accepts round-trips: Parse(Encode(s)) reproduces s
//     exactly, so the canonical encoder and the parser agree on the
//     schema.
func FuzzScenario(f *testing.F) {
	// Seed with the curated scenarios (the richest valid documents)...
	files, _ := filepath.Glob("../../examples/scenarios/*.yaml")
	for _, fn := range files {
		if src, err := os.ReadFile(fn); err == nil {
			f.Add(src)
		}
	}
	// ...the builtins in canonical encoding...
	f.Add(BuiltinChaos().Encode())
	f.Add(BuiltinHA().Encode())
	// ...and near-miss invalid documents steering the fuzzer at the
	// validators.
	for _, s := range []string{
		"name: x\nhorizon: 1s\n",
		"name: x\nhorizon: banana\n",
		"name: x\nhorizon: -3s\n",
		"name: x\nhorizon: 1s\nfleet:\n  backends: 4\n  templates:\n    - name: a\n      weight: -1\n",
		"name: x\nhorizon: 1s\nfleet:\n  templates:\n    - name: a\n      weight: 1\n    - name: a\n      weight: 2\n",
		"name: x\nhorizon: 2s\nevents:\n  - at: 1s\n    action: explode\n    node: 1\n",
		"name: x\nhorizon: 2s\nevents:\n  - at: 1s\n    action: crash\n    pick: weighted\n    duration: 1s\n",
		"name: \"q\\\"uo # te\"\nhorizon: 1s\n",
		"name: 'single'\nhorizon: 1s\n",
		"\tname: tab\n",
		"name: x\nhorizon: 1s\nstress:\n  crashes: 9999\n",
		"name: x\nhorizon: 1s\nvariants:\n  - name: a\n  - name: a\n",
		"name: x\nhorizon: 1s\nassertions:\n  - metric: served\n    min: 1\n    max: 0\n",
		`{"name":"j","horizon":"2s","fleet":{"backends":3}}`,
		`{"name":"j","horizon":1e99}`,
		"name: x\nhorizon: 1s\nlist: [a, b, [c]]\n",
	} {
		f.Add([]byte(s))
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := Parse(data)
		if err != nil {
			return // rejected cleanly — that's a pass
		}
		enc := s.Encode()
		s2, err := Parse(enc)
		if err != nil {
			t.Fatalf("Encode produced unparseable output: %v\n--- encoded ---\n%s", err, enc)
		}
		if !reflect.DeepEqual(s, s2) {
			t.Fatalf("round-trip diverged:\n got %+v\nwant %+v\n--- encoded ---\n%s", s2, s, enc)
		}
		// Accepted scenarios must compile deterministically in both
		// modes without error (Compile re-validates).
		for _, quick := range []bool{false, true} {
			cp, err := s.Compile(quick)
			if err != nil {
				t.Fatalf("valid scenario failed to compile (quick=%v): %v", quick, err)
			}
			if cp.PlanDigest(7) != cp.PlanDigest(7) {
				t.Fatal("plan compilation is non-deterministic")
			}
		}
	})
}
