package scenario

import (
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"rdmamon/internal/faults"
	"rdmamon/internal/sim"
)

func digestPlan(p faults.Plan) uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%+v", p)
	return h.Sum64()
}

// TestChaosScenarioPlanEquivalence: the builtin chaos scenario (and by
// TestExamplesMatchBuiltins, examples/scenarios/chaos.yaml) compiles to
// exactly the fault plans the legacy Go-coded `-exp chaos` drew —
// bit-identical structs, not just equal digests — in both full and
// quick mode, across 50 seeds.
func TestChaosScenarioPlanEquivalence(t *testing.T) {
	for _, mode := range []struct {
		quick   bool
		horizon sim.Time
	}{{false, 20 * sim.Second}, {true, 10 * sim.Second}} {
		cp, err := BuiltinChaos().Compile(mode.quick)
		if err != nil {
			t.Fatal(err)
		}
		legacy := faults.ChaosConfig{Backends: 8, Horizon: mode.horizon}
		for seed := int64(0); seed < 50; seed++ {
			want := faults.RandomPlan(seed, legacy)
			got := cp.Plan(seed)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("quick=%v seed %d: scenario plan diverged from legacy RandomPlan\n got %+v\nwant %+v",
					mode.quick, seed, got, want)
			}
			if cp.PlanDigest(seed) != digestPlan(want) {
				t.Fatalf("quick=%v seed %d: digest formula diverged", mode.quick, seed)
			}
		}
	}
}

// TestHAScenarioPlanEquivalence: same contract for the HA scenario —
// including the arithmetically-derived front-end IDs and witness,
// which must keep matching the golden ha-20s/ha-10s configs in
// internal/faults.
func TestHAScenarioPlanEquivalence(t *testing.T) {
	for _, mode := range []struct {
		quick   bool
		horizon sim.Time
	}{{false, 20 * sim.Second}, {true, 10 * sim.Second}} {
		cp, err := BuiltinHA().Compile(mode.quick)
		if err != nil {
			t.Fatal(err)
		}
		legacy := faults.ChaosConfig{
			Backends: 8, Horizon: mode.horizon,
			FrontEnds: []int{0, 9, 10}, Witness: 11,
		}
		for seed := int64(0); seed < 50; seed++ {
			want := faults.RandomPlan(seed, legacy)
			if got := cp.Plan(seed); !reflect.DeepEqual(got, want) {
				t.Fatalf("quick=%v seed %d: scenario plan diverged from legacy RandomPlan\n got %+v\nwant %+v",
					mode.quick, seed, got, want)
			}
		}
	}
}

// TestScenarioGoldenDigests pins the compiled fault-plan streams of
// every curated scenario (full mode, default seed base, the scenario's
// own seed count). A failure means seeded replay of published scenario
// runs silently changed — either the plan compiler's RNG stream
// discipline broke, or a scenario file was edited without re-pinning.
func TestScenarioGoldenDigests(t *testing.T) {
	golden := map[string]uint64{
		"chaos.yaml":           0x67d2e143968a1bbe,
		"ha.yaml":              0xa7562b232b3a2ced,
		"hetero-dispatch.yaml": 0x79970a2f5077f5d6,
		"quickstart.yaml":      0x15aba4c3c5363a28,
		"stagger.yaml":         0x298b9295a91748ad,
	}
	files, err := filepath.Glob("../../examples/scenarios/*.yaml")
	if err != nil || len(files) == 0 {
		t.Fatalf("no curated scenarios found: %v", err)
	}
	for _, f := range files {
		name := filepath.Base(f)
		want, ok := golden[name]
		if !ok {
			t.Errorf("%s: no golden digest pinned — add it here", name)
			continue
		}
		src, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		s, err := Parse(src)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		cp, err := s.Compile(false)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if got := cp.Digest(cp.Points(0)); got != want {
			t.Errorf("%s: plan digest 0x%016x, want golden 0x%016x — seeded replay changed", name, got, want)
		}
	}
}
