package scenario

import (
	"math"
	"reflect"
	"testing"
	"testing/quick"

	"rdmamon/internal/sim"
)

// TestPropExpandWeightsSum: for any positive finite weight vector the
// expansion sums to exactly n with no negative counts — back-ends are
// never lost or invented by rounding.
func TestPropExpandWeightsSum(t *testing.T) {
	prop := func(raw []float64, size uint8) bool {
		if len(raw) == 0 {
			raw = []float64{1}
		}
		if len(raw) > maxTemplate {
			raw = raw[:maxTemplate]
		}
		weights := make([]float64, len(raw))
		for i, w := range raw {
			w = math.Abs(w)
			if !(w > 0) || math.IsInf(w, 0) {
				w = 1
			}
			weights[i] = math.Mod(w, 1e6) + 1e-3
		}
		n := int(size)%512 + 1
		counts := ExpandWeights(weights, n)
		sum := 0
		for _, c := range counts {
			if c < 0 {
				return false
			}
			sum += c
		}
		return sum == n
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestPropHeteroFleetCovers: compiling any weighted template split
// yields one spec per back-end and contiguous, non-overlapping ranges.
func TestPropHeteroFleetCovers(t *testing.T) {
	prop := func(wFast, wSlow uint16, size uint8) bool {
		backends := int(size)%64 + 2
		fast := float64(wFast%1000) + 1
		slow := float64(wSlow%1000) + 1
		s := &Scenario{
			Name: "p", Horizon: sim.Second,
			Fleet: Fleet{Backends: backends, Templates: []Template{
				{Name: "fast", Weight: fast},
				{Name: "slow", Weight: slow},
			}},
		}
		cp, err := s.Compile(false)
		if err != nil {
			return false
		}
		if len(cp.Specs) != backends || cp.Counts[0]+cp.Counts[1] != backends {
			return false
		}
		lo := 1
		for j := range cp.Ranges {
			if cp.Counts[j] == 0 {
				continue
			}
			if cp.Ranges[j][0] != lo || cp.Ranges[j][1] != lo+cp.Counts[j]-1 {
				return false
			}
			lo += cp.Counts[j]
		}
		return lo == backends+1
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestPropStaggerOffsets: no staggered node ever starts before its
// deterministic offset (i-1)*Offset, and jitter stays within bound.
func TestPropStaggerOffsets(t *testing.T) {
	prop := func(seed int64, offU, jitU uint16) bool {
		off := sim.Time(offU%200+1) * sim.Millisecond
		jit := sim.Time(jitU%100) * sim.Millisecond
		s := &Scenario{
			Name: "p", Horizon: 600 * sim.Second,
			Fleet:   Fleet{Backends: 6},
			Stagger: &Stagger{Offset: off, Jitter: jit},
		}
		cp, err := s.Compile(false)
		if err != nil {
			return false
		}
		plan := cp.Plan(seed)
		for _, cr := range plan.Crashes {
			if cr.At != 0 {
				return false
			}
			floor := sim.Time(cr.Node-1) * off
			if cr.RestartAt < floor || cr.RestartAt >= floor+jit+1 {
				return false
			}
		}
		// Node 1 with zero jitter starts immediately: no crash window.
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestPropPlanReplay: the same (scenario, seed) always compiles to the
// same fault plan — plans are pure functions of their inputs.
func TestPropPlanReplay(t *testing.T) {
	s := &Scenario{
		Name: "p", Horizon: 10 * sim.Second,
		Fleet: Fleet{Backends: 8, Templates: []Template{
			{Name: "fast", Weight: 3},
			{Name: "slow", Weight: 1},
		}},
		Stagger: &Stagger{Offset: 50 * sim.Millisecond, Jitter: 20 * sim.Millisecond},
		Stress:  &Stress{Crashes: 2, LinkFaults: 1, Partitions: 1, MRInvalidations: 1},
		Events: []Event{
			{At: 2 * sim.Second, Action: "freeze", Pick: "weighted", Duration: 300 * sim.Millisecond},
			{At: 3 * sim.Second, Action: "crash", Pick: "random", Duration: 500 * sim.Millisecond},
			{At: 4 * sim.Second, Action: "link", Pick: "weighted", Template: "slow", Duration: 1 * sim.Second, Drop: 0.3},
			{At: 5 * sim.Second, Action: "mr-invalidate", Node: 2},
		},
	}
	cp, err := s.Compile(false)
	if err != nil {
		t.Fatal(err)
	}
	prop := func(seed int64) bool {
		a, b := cp.Plan(seed), cp.Plan(seed)
		return reflect.DeepEqual(a, b) && cp.PlanDigest(seed) == cp.PlanDigest(seed)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestPropEventVictimsInFleet: scripted events always land on a real
// back-end, and template-filtered picks stay inside the template's
// range.
func TestPropEventVictimsInFleet(t *testing.T) {
	s := &Scenario{
		Name: "p", Horizon: 10 * sim.Second,
		Fleet: Fleet{Backends: 10, Templates: []Template{
			{Name: "fast", Weight: 7},
			{Name: "slow", Weight: 3},
		}},
		Events: []Event{
			{At: 1 * sim.Second, Action: "crash", Pick: "weighted", Duration: 200 * sim.Millisecond},
			{At: 2 * sim.Second, Action: "freeze", Pick: "random", Template: "slow", Duration: 200 * sim.Millisecond},
		},
	}
	cp, err := s.Compile(false)
	if err != nil {
		t.Fatal(err)
	}
	prop := func(seed int64) bool {
		plan := cp.Plan(seed)
		for _, cr := range plan.Crashes {
			if cr.Node < 1 || cr.Node > 10 {
				return false
			}
		}
		for _, fr := range plan.Freezes {
			// slow is nodes 8..10
			if fr.Node < 8 || fr.Node > 10 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestPropEventOrderEnforced: any script with a time inversion is
// rejected by validation.
func TestPropEventOrderEnforced(t *testing.T) {
	prop := func(aU, bU uint16) bool {
		a := sim.Time(aU%5000) * sim.Millisecond
		b := sim.Time(bU%5000) * sim.Millisecond
		s := &Scenario{
			Name: "p", Horizon: 600 * sim.Second,
			Fleet: Fleet{Backends: 4},
			Events: []Event{
				{At: a, Action: "crash", Node: 1, Duration: 100 * sim.Millisecond},
				{At: b, Action: "crash", Node: 2, Duration: 100 * sim.Millisecond},
			},
		}
		err := s.Validate()
		if b < a {
			return err != nil
		}
		return err == nil
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
