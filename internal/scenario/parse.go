// Scenario file parsing: a hand-rolled YAML subset (the repo has no
// dependencies and vendoring a YAML library for flat config files is
// not worth it) plus JSON via encoding/json, both decoding into the
// same generic tree and then through one strict field mapper — unknown
// keys, wrong shapes and malformed scalars are errors, never panics.
//
// Supported YAML subset (everything the schema needs):
//
//   - block mappings (`key: value`, `key:` + indented block)
//   - block sequences (`- item`, `- key: value` inline-mapping items)
//   - flow sequences of scalars (`[a, b, c]`)
//   - double- and single-quoted strings, `#` comments, blank lines
//   - two-or-more space indentation; tabs are an error
//
// Encode emits the canonical form of this subset; Parse(Encode(s))
// round-trips every valid scenario (the fuzzer holds us to it).
package scenario

import (
	"encoding/json"
	"fmt"
	"math"
	"strconv"
	"strings"
	"time"

	"rdmamon/internal/sim"
)

// Parse decodes and validates a scenario from YAML or JSON bytes
// (JSON when the first non-space byte is '{'). The returned scenario
// has passed Validate.
func Parse(src []byte) (*Scenario, error) {
	trimmed := strings.TrimLeft(string(src), " \t\r\n")
	var (
		tree any
		err  error
	)
	if strings.HasPrefix(trimmed, "{") {
		tree, err = parseJSON(src)
	} else {
		tree, err = parseYAML(string(src))
	}
	if err != nil {
		return nil, err
	}
	s, err := decodeScenario(tree)
	if err != nil {
		return nil, err
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}

// ---------------------------------------------------------------- JSON

// parseJSON lowers a JSON document to the same tree shape the YAML
// parser produces: map[string]any / []any / string scalars.
func parseJSON(src []byte) (any, error) {
	var v any
	dec := json.NewDecoder(strings.NewReader(string(src)))
	dec.UseNumber()
	if err := dec.Decode(&v); err != nil {
		return nil, fmt.Errorf("scenario: invalid JSON: %v", err)
	}
	return jsonToTree(v), nil
}

func jsonToTree(v any) any {
	switch x := v.(type) {
	case map[string]any:
		m := make(map[string]any, len(x))
		for k, vv := range x {
			m[k] = jsonToTree(vv)
		}
		return m
	case []any:
		out := make([]any, len(x))
		for i, vv := range x {
			out[i] = jsonToTree(vv)
		}
		return out
	case json.Number:
		return x.String()
	case bool:
		return strconv.FormatBool(x)
	case nil:
		return ""
	default:
		return fmt.Sprint(x)
	}
}

// ---------------------------------------------------------------- YAML

type yamlLine struct {
	indent int
	text   string
	no     int // 1-based source line
}

type yamlParser struct {
	lines []yamlLine
	pos   int
}

func parseYAML(src string) (any, error) {
	if len(src) > 1<<20 {
		return nil, fmt.Errorf("scenario: file exceeds the 1MiB cap")
	}
	p := &yamlParser{}
	for i, raw := range strings.Split(src, "\n") {
		line := strings.TrimSuffix(raw, "\r")
		body := stripComment(line)
		if strings.TrimSpace(body) == "" {
			continue
		}
		indent := 0
		for indent < len(body) && body[indent] == ' ' {
			indent++
		}
		if indent < len(body) && body[indent] == '\t' {
			return nil, fmt.Errorf("scenario: line %d: tab in indentation (use spaces)", i+1)
		}
		p.lines = append(p.lines, yamlLine{indent: indent, text: strings.TrimRight(body[indent:], " "), no: i + 1})
	}
	if len(p.lines) == 0 {
		return nil, fmt.Errorf("scenario: empty document")
	}
	v, err := p.parseBlock(p.lines[0].indent)
	if err != nil {
		return nil, err
	}
	if p.pos < len(p.lines) {
		return nil, fmt.Errorf("scenario: line %d: unexpected indentation", p.lines[p.pos].no)
	}
	return v, nil
}

// stripComment removes a trailing `#` comment that is not inside a
// quoted string (a `#` must be at line start or preceded by a space to
// count, per YAML). Backslash escapes inside double quotes are
// honoured so `"a\" # b"` stays one string.
func stripComment(line string) string {
	inS, inD := false, false
	for i := 0; i < len(line); i++ {
		switch line[i] {
		case '\\':
			if inD {
				i++ // skip the escaped byte
			}
		case '\'':
			if !inD {
				inS = !inS
			}
		case '"':
			if !inS {
				inD = !inD
			}
		case '#':
			if !inS && !inD && (i == 0 || line[i-1] == ' ') {
				return line[:i]
			}
		}
	}
	return line
}

// parseBlock parses the run of lines at exactly this indent as either
// a sequence (lines starting with "-") or a mapping.
func (p *yamlParser) parseBlock(indent int) (any, error) {
	if p.pos >= len(p.lines) {
		return nil, fmt.Errorf("scenario: unexpected end of document")
	}
	if ln := p.lines[p.pos]; ln.indent != indent {
		return nil, fmt.Errorf("scenario: line %d: unexpected indentation", ln.no)
	}
	if isSeqItem(p.lines[p.pos].text) {
		return p.parseSequence(indent)
	}
	return p.parseMapping(indent)
}

func isSeqItem(text string) bool {
	return text == "-" || strings.HasPrefix(text, "- ")
}

func (p *yamlParser) parseSequence(indent int) (any, error) {
	var out []any
	for p.pos < len(p.lines) {
		ln := p.lines[p.pos]
		if ln.indent != indent || !isSeqItem(ln.text) {
			break
		}
		rest := strings.TrimSpace(strings.TrimPrefix(ln.text, "-"))
		if rest == "" {
			// `-` alone: the item is the following deeper block.
			p.pos++
			if p.pos >= len(p.lines) || p.lines[p.pos].indent <= indent {
				return nil, fmt.Errorf("scenario: line %d: empty sequence item", ln.no)
			}
			item, err := p.parseBlock(p.lines[p.pos].indent)
			if err != nil {
				return nil, err
			}
			out = append(out, item)
			continue
		}
		if k, _, ok := splitKey(rest); ok && k != "" {
			// `- key: value`: an inline mapping item. Re-enter the line as
			// if the mapping started two columns deeper; continuation keys
			// sit at that same column.
			p.lines[p.pos] = yamlLine{indent: indent + 2, text: rest, no: ln.no}
			item, err := p.parseMapping(indent + 2)
			if err != nil {
				return nil, err
			}
			out = append(out, item)
			continue
		}
		p.pos++
		v, err := parseScalar(rest, ln.no)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func (p *yamlParser) parseMapping(indent int) (any, error) {
	m := map[string]any{}
	for p.pos < len(p.lines) {
		ln := p.lines[p.pos]
		if ln.indent != indent {
			if ln.indent > indent {
				return nil, fmt.Errorf("scenario: line %d: unexpected indentation", ln.no)
			}
			break
		}
		if isSeqItem(ln.text) {
			break
		}
		key, val, ok := splitKey(ln.text)
		if !ok {
			return nil, fmt.Errorf("scenario: line %d: expected `key: value`, got %q", ln.no, ln.text)
		}
		if !validKey(key) {
			return nil, fmt.Errorf("scenario: line %d: invalid key %q", ln.no, key)
		}
		if _, dup := m[key]; dup {
			return nil, fmt.Errorf("scenario: line %d: duplicate key %q", ln.no, key)
		}
		p.pos++
		switch {
		case val != "":
			v, err := parseScalar(val, ln.no)
			if err != nil {
				return nil, err
			}
			m[key] = v
		case p.pos < len(p.lines) && p.lines[p.pos].indent > indent:
			child, err := p.parseBlock(p.lines[p.pos].indent)
			if err != nil {
				return nil, err
			}
			m[key] = child
		default:
			m[key] = ""
		}
	}
	return m, nil
}

// splitKey splits `key: value` / `key:`; the separator is the first
// unquoted colon followed by a space or end of line.
func splitKey(text string) (key, val string, ok bool) {
	inS, inD := false, false
	for i := 0; i < len(text); i++ {
		switch text[i] {
		case '\\':
			if inD {
				i++ // skip the escaped byte
			}
		case '\'':
			if !inD {
				inS = !inS
			}
		case '"':
			if !inS {
				inD = !inD
			}
		case ':':
			if inS || inD {
				continue
			}
			if i+1 == len(text) {
				return strings.TrimSpace(text[:i]), "", true
			}
			if text[i+1] == ' ' {
				return strings.TrimSpace(text[:i]), strings.TrimSpace(text[i+1:]), true
			}
		}
	}
	return "", "", false
}

func validKey(key string) bool {
	if key == "" || len(key) > 64 {
		return false
	}
	for _, r := range key {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_', r == '-':
		default:
			return false
		}
	}
	return true
}

// parseScalar handles quoted strings, flow sequences of scalars, and
// plain scalars (kept as strings; typing happens in the decoder).
func parseScalar(text string, lineNo int) (any, error) {
	if strings.HasPrefix(text, "[") {
		if !strings.HasSuffix(text, "]") {
			return nil, fmt.Errorf("scenario: line %d: unterminated flow sequence", lineNo)
		}
		inner := strings.TrimSpace(text[1 : len(text)-1])
		if inner == "" {
			return []any{}, nil
		}
		var out []any
		for _, part := range strings.Split(inner, ",") {
			v, err := parseScalar(strings.TrimSpace(part), lineNo)
			if err != nil {
				return nil, err
			}
			if _, isList := v.([]any); isList {
				return nil, fmt.Errorf("scenario: line %d: nested flow sequences are not supported", lineNo)
			}
			out = append(out, v)
		}
		return out, nil
	}
	if strings.HasPrefix(text, "\"") {
		// Double-quoted: full Go escape syntax (Encode emits this form).
		s, err := strconv.Unquote(text)
		if err != nil {
			return nil, fmt.Errorf("scenario: line %d: invalid quoted string %s", lineNo, text)
		}
		return s, nil
	}
	if strings.HasPrefix(text, "'") {
		// Single-quoted: raw content, no escapes.
		if len(text) < 2 || text[len(text)-1] != '\'' {
			return nil, fmt.Errorf("scenario: line %d: unterminated quoted string", lineNo)
		}
		return text[1 : len(text)-1], nil
	}
	return text, nil
}

// --------------------------------------------------------------- decode

// dec accumulates decode errors while walking the generic tree; all
// scalar coercions go through it so one malformed field reports its
// path instead of panicking.
type dec struct {
	errs []string
}

func (d *dec) bad(path, format string, args ...any) {
	d.errs = append(d.errs, path+": "+fmt.Sprintf(format, args...))
}

func (d *dec) err() error {
	if len(d.errs) == 0 {
		return nil
	}
	return fmt.Errorf("scenario: %s", strings.Join(d.errs, "; "))
}

// obj asserts the tree node is a mapping.
func (d *dec) obj(v any, path string) map[string]any {
	m, ok := v.(map[string]any)
	if !ok {
		d.bad(path, "expected a mapping")
		return nil
	}
	return m
}

// field pops a key from the mapping (tracking consumption so leftover
// keys can be rejected).
func pop(m map[string]any, key string) (any, bool) {
	v, ok := m[key]
	if ok {
		delete(m, key)
	}
	return v, ok
}

func (d *dec) rejectUnknown(m map[string]any, path string) {
	for k := range m {
		d.bad(path, "unknown key %q", k)
	}
}

func (d *dec) str(m map[string]any, key, path string) string {
	v, ok := pop(m, key)
	if !ok {
		return ""
	}
	s, ok := v.(string)
	if !ok {
		d.bad(path+"."+key, "expected a scalar")
		return ""
	}
	return s
}

func (d *dec) integer(m map[string]any, key, path string) int {
	v, ok := pop(m, key)
	if !ok {
		return 0
	}
	s, ok := v.(string)
	if !ok {
		d.bad(path+"."+key, "expected an integer")
		return 0
	}
	n, err := strconv.ParseInt(s, 10, 32)
	if err != nil {
		d.bad(path+"."+key, "invalid integer %q", s)
		return 0
	}
	return int(n)
}

func (d *dec) i64(m map[string]any, key, path string) int64 {
	v, ok := pop(m, key)
	if !ok {
		return 0
	}
	s, ok := v.(string)
	if !ok {
		d.bad(path+"."+key, "expected an integer")
		return 0
	}
	n, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		d.bad(path+"."+key, "invalid integer %q", s)
		return 0
	}
	return n
}

func (d *dec) f64(m map[string]any, key, path string) float64 {
	v, ok := pop(m, key)
	if !ok {
		return 0
	}
	s, ok := v.(string)
	if !ok {
		d.bad(path+"."+key, "expected a number")
		return 0
	}
	f, err := strconv.ParseFloat(s, 64)
	if err != nil || math.IsNaN(f) || math.IsInf(f, 0) {
		d.bad(path+"."+key, "invalid number %q", s)
		return 0
	}
	return f
}

func (d *dec) f64ptr(m map[string]any, key, path string) *float64 {
	if _, ok := m[key]; !ok {
		return nil
	}
	f := d.f64(m, key, path)
	return &f
}

func (d *dec) boolean(m map[string]any, key, path string) bool {
	v, ok := pop(m, key)
	if !ok {
		return false
	}
	s, ok := v.(string)
	if !ok {
		d.bad(path+"."+key, "expected true or false")
		return false
	}
	switch s {
	case "true":
		return true
	case "false":
		return false
	}
	d.bad(path+"."+key, "expected true or false, got %q", s)
	return false
}

// dur parses a Go-syntax duration ("50ms", "2s", "1.5s") into
// sim.Time. Negative and oversized values are rejected here so the
// schema validators can assume sane ranges.
func (d *dec) dur(m map[string]any, key, path string) sim.Time {
	v, ok := pop(m, key)
	if !ok {
		return 0
	}
	s, ok := v.(string)
	if !ok {
		d.bad(path+"."+key, "expected a duration")
		return 0
	}
	t, err := time.ParseDuration(s)
	if err != nil {
		d.bad(path+"."+key, "invalid duration %q", s)
		return 0
	}
	if t < 0 {
		d.bad(path+"."+key, "negative duration %q", s)
		return 0
	}
	if t > time.Duration(maxHorizon) {
		d.bad(path+"."+key, "duration %q exceeds the %v cap", s, time.Duration(maxHorizon))
		return 0
	}
	return sim.Time(t)
}

func (d *dec) list(m map[string]any, key, path string) []any {
	v, ok := pop(m, key)
	if !ok {
		return nil
	}
	l, ok := v.([]any)
	if !ok {
		d.bad(path+"."+key, "expected a sequence")
		return nil
	}
	if len(l) > 4096 {
		d.bad(path+"."+key, "sequence exceeds the 4096-item cap")
		return nil
	}
	return l
}

func decodeScenario(tree any) (*Scenario, error) {
	d := &dec{}
	m := d.obj(tree, "scenario")
	if m == nil {
		return nil, d.err()
	}
	s := &Scenario{
		Name:         d.str(m, "name", "scenario"),
		Description:  d.str(m, "description", "scenario"),
		Seed:         d.i64(m, "seed", "scenario"),
		Seeds:        d.integer(m, "seeds", "scenario"),
		Horizon:      d.dur(m, "horizon", "scenario"),
		QuickHorizon: d.dur(m, "quick_horizon", "scenario"),
		Poll:         d.dur(m, "poll", "scenario"),
		Scheme:       d.str(m, "scheme", "scenario"),
		Policy:       d.str(m, "policy", "scenario"),
		Gamma:        d.f64(m, "gamma", "scenario"),
		LocalWeight:  d.f64(m, "local_weight", "scenario"),
		ProbeTimeout: d.dur(m, "probe_timeout", "scenario"),
		MRRepin:      d.dur(m, "mr_repin", "scenario"),
		QuickMRRepin: d.dur(m, "quick_mr_repin", "scenario"),
		Failover:     d.boolean(m, "failover", "scenario"),
		Replicas:     d.integer(m, "replicas", "scenario"),
		Checks:       d.str(m, "checks", "scenario"),
	}
	if v, ok := pop(m, "fleet"); ok {
		s.Fleet = d.decodeFleet(v)
	}
	if v, ok := pop(m, "workload"); ok {
		s.Workload = d.decodeWorkload(v)
	}
	if v, ok := pop(m, "stagger"); ok {
		s.Stagger = d.decodeStagger(v)
	}
	if v, ok := pop(m, "events"); ok {
		s.Events = d.decodeEvents(v)
	}
	if v, ok := pop(m, "stress"); ok {
		s.Stress = d.decodeStress(v)
	}
	if v, ok := pop(m, "variants"); ok {
		s.Variants = d.decodeVariants(v)
	}
	if v, ok := pop(m, "assertions"); ok {
		s.Assertions = d.decodeAssertions(v)
	}
	d.rejectUnknown(m, "scenario")
	if err := d.err(); err != nil {
		return nil, err
	}
	return s, nil
}

func (d *dec) decodeFleet(v any) Fleet {
	m := d.obj(v, "fleet")
	if m == nil {
		return Fleet{}
	}
	f := Fleet{Backends: d.integer(m, "backends", "fleet")}
	if tv, ok := pop(m, "templates"); ok {
		l, ok := tv.([]any)
		if !ok {
			d.bad("fleet.templates", "expected a sequence")
		}
		if len(l) > maxTemplate {
			d.bad("fleet.templates", "exceeds the %d-template cap", maxTemplate)
			l = nil
		}
		for i, item := range l {
			path := fmt.Sprintf("fleet.templates[%d]", i)
			tm := d.obj(item, path)
			if tm == nil {
				continue
			}
			f.Templates = append(f.Templates, Template{
				Name:          d.str(tm, "name", path),
				Weight:        d.f64(tm, "weight", path),
				CPUs:          d.integer(tm, "cpus", path),
				Workers:       d.integer(tm, "workers", path),
				NICLatency:    d.dur(tm, "nic_latency", path),
				AgentInterval: d.dur(tm, "agent_interval", path),
			})
			d.rejectUnknown(tm, path)
		}
	}
	d.rejectUnknown(m, "fleet")
	return f
}

func (d *dec) decodeWorkload(v any) Workload {
	m := d.obj(v, "workload")
	if m == nil {
		return Workload{}
	}
	w := Workload{
		Kind:         d.str(m, "kind", "workload"),
		Clients:      d.integer(m, "clients", "workload"),
		QuickClients: d.integer(m, "quick_clients", "workload"),
		Think:        d.dur(m, "think", "workload"),
	}
	d.rejectUnknown(m, "workload")
	return w
}

func (d *dec) decodeStagger(v any) *Stagger {
	m := d.obj(v, "stagger")
	if m == nil {
		return nil
	}
	sg := &Stagger{
		Offset: d.dur(m, "offset", "stagger"),
		Jitter: d.dur(m, "jitter", "stagger"),
	}
	d.rejectUnknown(m, "stagger")
	return sg
}

func (d *dec) decodeEvents(v any) []Event {
	l, ok := v.([]any)
	if !ok {
		d.bad("events", "expected a sequence")
		return nil
	}
	if len(l) > maxEvents {
		d.bad("events", "exceeds the %d-event cap", maxEvents)
		return nil
	}
	var out []Event
	for i, item := range l {
		path := fmt.Sprintf("events[%d]", i)
		m := d.obj(item, path)
		if m == nil {
			continue
		}
		out = append(out, Event{
			At:       d.dur(m, "at", path),
			Action:   d.str(m, "action", path),
			Node:     d.integer(m, "node", path),
			Pick:     d.str(m, "pick", path),
			Template: d.str(m, "template", path),
			Duration: d.dur(m, "duration", path),
			Drop:     d.f64(m, "drop", path),
		})
		d.rejectUnknown(m, path)
	}
	return out
}

func (d *dec) decodeStress(v any) *Stress {
	m := d.obj(v, "stress")
	if m == nil {
		return nil
	}
	st := &Stress{
		Crashes:         d.integer(m, "crashes", "stress"),
		LinkFaults:      d.integer(m, "link_faults", "stress"),
		Partitions:      d.integer(m, "partitions", "stress"),
		MRInvalidations: d.integer(m, "mr_invalidations", "stress"),
		FECrashes:       d.integer(m, "fe_crashes", "stress"),
		FEFreezes:       d.integer(m, "fe_freezes", "stress"),
		FEPartitions:    d.integer(m, "fe_partitions", "stress"),
		ClaimStalls:     d.integer(m, "claim_stalls", "stress"),
	}
	d.rejectUnknown(m, "stress")
	return st
}

func (d *dec) decodeVariants(v any) []Variant {
	l, ok := v.([]any)
	if !ok {
		d.bad("variants", "expected a sequence")
		return nil
	}
	if len(l) > maxVariants {
		d.bad("variants", "exceeds the %d-variant cap", maxVariants)
		return nil
	}
	var out []Variant
	for i, item := range l {
		path := fmt.Sprintf("variants[%d]", i)
		m := d.obj(item, path)
		if m == nil {
			continue
		}
		out = append(out, Variant{
			Name:   d.str(m, "name", path),
			Policy: d.str(m, "policy", path),
		})
		d.rejectUnknown(m, path)
	}
	return out
}

func (d *dec) decodeAssertions(v any) []Assertion {
	l, ok := v.([]any)
	if !ok {
		d.bad("assertions", "expected a sequence")
		return nil
	}
	if len(l) > 64 {
		d.bad("assertions", "exceeds the 64-assertion cap")
		return nil
	}
	var out []Assertion
	for i, item := range l {
		path := fmt.Sprintf("assertions[%d]", i)
		m := d.obj(item, path)
		if m == nil {
			continue
		}
		out = append(out, Assertion{
			Metric:   d.str(m, "metric", path),
			Variant:  d.str(m, "variant", path),
			Min:      d.f64ptr(m, "min", path),
			Max:      d.f64ptr(m, "max", path),
			LessThan: d.str(m, "less_than", path),
		})
		d.rejectUnknown(m, path)
	}
	return out
}

// --------------------------------------------------------------- encode

// Encode emits the scenario in canonical YAML-subset form:
// Parse(s.Encode()) reproduces s exactly (reflect.DeepEqual; the
// fuzzer asserts it for every scenario Parse accepts).
func (s *Scenario) Encode() []byte {
	var b strings.Builder
	kv := func(indent, key, val string) {
		if val != "" {
			fmt.Fprintf(&b, "%s%s: %s\n", indent, key, val)
		}
	}
	qs := func(v string) string {
		if v == "" {
			return ""
		}
		return strconv.Quote(v)
	}
	dur := func(t sim.Time) string {
		if t == 0 {
			return ""
		}
		return time.Duration(t).String()
	}
	num := func(f float64) string {
		if f == 0 {
			return ""
		}
		return strconv.FormatFloat(f, 'g', -1, 64)
	}
	integer := func(n int) string {
		if n == 0 {
			return ""
		}
		return strconv.Itoa(n)
	}

	kv("", "name", qs(s.Name))
	kv("", "description", qs(s.Description))
	if s.Seed != 0 {
		kv("", "seed", strconv.FormatInt(s.Seed, 10))
	}
	kv("", "seeds", integer(s.Seeds))
	kv("", "horizon", dur(s.Horizon))
	kv("", "quick_horizon", dur(s.QuickHorizon))
	kv("", "poll", dur(s.Poll))
	kv("", "scheme", qs(s.Scheme))
	kv("", "policy", qs(s.Policy))
	kv("", "gamma", num(s.Gamma))
	kv("", "local_weight", num(s.LocalWeight))
	kv("", "probe_timeout", dur(s.ProbeTimeout))
	kv("", "mr_repin", dur(s.MRRepin))
	kv("", "quick_mr_repin", dur(s.QuickMRRepin))
	if s.Failover {
		kv("", "failover", "true")
	}
	kv("", "replicas", integer(s.Replicas))
	kv("", "checks", qs(s.Checks))

	if s.Fleet.Backends != 0 || len(s.Fleet.Templates) > 0 {
		fmt.Fprintf(&b, "fleet:\n")
		kv("  ", "backends", integer(s.Fleet.Backends))
		if len(s.Fleet.Templates) > 0 {
			fmt.Fprintf(&b, "  templates:\n")
			for _, t := range s.Fleet.Templates {
				fmt.Fprintf(&b, "    - name: %s\n", strconv.Quote(t.Name))
				kv("      ", "weight", num(t.Weight))
				kv("      ", "cpus", integer(t.CPUs))
				kv("      ", "workers", integer(t.Workers))
				kv("      ", "nic_latency", dur(t.NICLatency))
				kv("      ", "agent_interval", dur(t.AgentInterval))
			}
		}
	}
	if s.Workload != (Workload{}) {
		fmt.Fprintf(&b, "workload:\n")
		kv("  ", "kind", qs(s.Workload.Kind))
		kv("  ", "clients", integer(s.Workload.Clients))
		kv("  ", "quick_clients", integer(s.Workload.QuickClients))
		kv("  ", "think", dur(s.Workload.Think))
	}
	if s.Stagger != nil {
		fmt.Fprintf(&b, "stagger:\n")
		kv("  ", "offset", dur(s.Stagger.Offset))
		kv("  ", "jitter", dur(s.Stagger.Jitter))
	}
	if len(s.Events) > 0 {
		fmt.Fprintf(&b, "events:\n")
		for _, ev := range s.Events {
			// `at` leads every item; zero is meaningful ("0s"), so it is
			// always emitted.
			fmt.Fprintf(&b, "  - at: %s\n", time.Duration(ev.At).String())
			kv("    ", "action", qs(ev.Action))
			kv("    ", "node", integer(ev.Node))
			kv("    ", "pick", qs(ev.Pick))
			kv("    ", "template", qs(ev.Template))
			kv("    ", "duration", dur(ev.Duration))
			kv("    ", "drop", num(ev.Drop))
		}
	}
	if s.Stress != nil {
		fmt.Fprintf(&b, "stress:\n")
		kv("  ", "crashes", integer(s.Stress.Crashes))
		kv("  ", "link_faults", integer(s.Stress.LinkFaults))
		kv("  ", "partitions", integer(s.Stress.Partitions))
		kv("  ", "mr_invalidations", integer(s.Stress.MRInvalidations))
		kv("  ", "fe_crashes", integer(s.Stress.FECrashes))
		kv("  ", "fe_freezes", integer(s.Stress.FEFreezes))
		kv("  ", "fe_partitions", integer(s.Stress.FEPartitions))
		kv("  ", "claim_stalls", integer(s.Stress.ClaimStalls))
		if *s.Stress == (Stress{}) {
			// All-zero stress still means "random plan with defaults";
			// keep the block present via an explicit zero field.
			fmt.Fprintf(&b, "  crashes: 0\n")
		}
	}
	if len(s.Variants) > 0 {
		fmt.Fprintf(&b, "variants:\n")
		for _, v := range s.Variants {
			fmt.Fprintf(&b, "  - name: %s\n", strconv.Quote(v.Name))
			kv("    ", "policy", qs(v.Policy))
		}
	}
	if len(s.Assertions) > 0 {
		fmt.Fprintf(&b, "assertions:\n")
		for _, a := range s.Assertions {
			fmt.Fprintf(&b, "  - metric: %s\n", strconv.Quote(a.Metric))
			kv("    ", "variant", qs(a.Variant))
			if a.Min != nil {
				fmt.Fprintf(&b, "    min: %s\n", strconv.FormatFloat(*a.Min, 'g', -1, 64))
			}
			if a.Max != nil {
				fmt.Fprintf(&b, "    max: %s\n", strconv.FormatFloat(*a.Max, 'g', -1, 64))
			}
			kv("    ", "less_than", qs(a.LessThan))
		}
	}
	return []byte(b.String())
}
