package scenario

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"rdmamon/internal/cluster"
	"rdmamon/internal/sim"
)

// TestParseRejects: malformed input is an error (never a panic), and
// the error names the offending field.
func TestParseRejects(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want string
	}{
		{"empty", "", "empty document"},
		{"missing name", "horizon: 2s\n", "name: required"},
		{"missing horizon", "name: x\n", "horizon: required"},
		{"malformed duration", "name: x\nhorizon: banana\n", "invalid duration"},
		{"negative duration", "name: x\nhorizon: -2s\n", "negative duration"},
		{"tab indent", "name: x\n\thorizon: 2s\n", "tab in indentation"},
		{"duplicate key", "name: x\nname: y\nhorizon: 2s\n", "duplicate key"},
		{"unknown key", "name: x\nhorizon: 2s\nbogus: 1\n", `unknown key "bogus"`},
		{"unknown scheme", "name: x\nhorizon: 2s\nscheme: carrier-pigeon\n", "scheme: unknown"},
		{"unknown policy", "name: x\nhorizon: 2s\npolicy: coin-flip\n", "policy: unknown"},
		{"negative weight",
			"name: x\nhorizon: 2s\nfleet:\n  backends: 4\n  templates:\n    - name: a\n      weight: -1\n",
			"weight: must be positive"},
		{"zero weight",
			"name: x\nhorizon: 2s\nfleet:\n  backends: 4\n  templates:\n    - name: a\n      weight: 0\n",
			"weight: must be positive"},
		{"duplicate template",
			"name: x\nhorizon: 2s\nfleet:\n  backends: 4\n  templates:\n    - name: a\n      weight: 1\n    - name: a\n      weight: 1\n",
			"duplicate template"},
		{"unknown action",
			"name: x\nhorizon: 2s\nevents:\n  - at: 1s\n    action: explode\n    node: 1\n    duration: 1s\n",
			`action: unknown "explode"`},
		{"event out of order",
			"name: x\nhorizon: 4s\nevents:\n  - at: 2s\n    action: crash\n    node: 1\n    duration: 1s\n  - at: 1s\n    action: crash\n    node: 2\n    duration: 1s\n",
			"time-ordered"},
		{"node and pick",
			"name: x\nhorizon: 2s\nevents:\n  - at: 1s\n    action: crash\n    node: 1\n    pick: random\n    duration: 500ms\n",
			"mutually exclusive"},
		{"no victim",
			"name: x\nhorizon: 2s\nevents:\n  - at: 1s\n    action: crash\n    duration: 500ms\n",
			"one of node or pick"},
		{"node outside fleet",
			"name: x\nhorizon: 2s\nfleet:\n  backends: 2\nevents:\n  - at: 1s\n    action: crash\n    node: 7\n    duration: 500ms\n",
			"outside the fleet"},
		{"drop on crash",
			"name: x\nhorizon: 2s\nevents:\n  - at: 1s\n    action: crash\n    node: 1\n    duration: 500ms\n    drop: 0.5\n",
			"only meaningful for link"},
		{"checks with assertions",
			"name: x\nhorizon: 2s\nfailover: true\nchecks: chaos\nassertions:\n  - metric: served\n    min: 1\n",
			"not supported with checks"},
		{"chaos without failover", "name: x\nhorizon: 2s\nchecks: chaos\n", "requires failover"},
		{"ha without replicas", "name: x\nhorizon: 2s\nchecks: ha\n", "replicas >= 2"},
		{"fe stress without replicas",
			"name: x\nhorizon: 2s\nstress:\n  fe_crashes: 1\n",
			"need replicas >= 2"},
		{"less-than self",
			"name: x\nhorizon: 2s\nassertions:\n  - metric: served\n    less_than: base\n",
			"compares a variant to itself"},
		{"assertion without bound",
			"name: x\nhorizon: 2s\nassertions:\n  - metric: served\n",
			"one of min, max or less_than"},
		{"min above max",
			"name: x\nhorizon: 2s\nassertions:\n  - metric: served\n    min: 5\n    max: 2\n",
			"min 5 exceeds max 2"},
		{"stagger past horizon",
			"name: x\nhorizon: 1s\nfleet:\n  backends: 8\nstagger:\n  offset: 200ms\n",
			"past the horizon"},
		{"invalid json", `{"name": `, "invalid JSON"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse([]byte(tc.src))
			if err == nil {
				t.Fatalf("accepted invalid scenario")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestParseExamples: every curated scenario parses and validates.
func TestParseExamples(t *testing.T) {
	files, err := filepath.Glob("../../examples/scenarios/*.yaml")
	if err != nil || len(files) < 4 {
		t.Fatalf("want >= 4 curated scenarios, found %v (err %v)", files, err)
	}
	for _, f := range files {
		src, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		s, err := Parse(src)
		if err != nil {
			t.Errorf("%s: %v", filepath.Base(f), err)
			continue
		}
		// Round-trip through the canonical encoder.
		s2, err := Parse(s.Encode())
		if err != nil {
			t.Errorf("%s: re-parse of Encode failed: %v", filepath.Base(f), err)
			continue
		}
		if !reflect.DeepEqual(s, s2) {
			t.Errorf("%s: Encode/Parse round-trip diverged:\n%+v\nvs\n%+v", filepath.Base(f), s, s2)
		}
	}
}

// TestExamplesMatchBuiltins: the shipped chaos.yaml and ha.yaml are
// field-for-field the built-in scenarios `-exp chaos`/`-exp ha` run,
// so `rmbench -scenario examples/scenarios/chaos.yaml` is the legacy
// experiment, not an approximation of it.
func TestExamplesMatchBuiltins(t *testing.T) {
	for _, tc := range []struct {
		file string
		want *Scenario
	}{
		{"../../examples/scenarios/chaos.yaml", BuiltinChaos()},
		{"../../examples/scenarios/ha.yaml", BuiltinHA()},
	} {
		src, err := os.ReadFile(tc.file)
		if err != nil {
			t.Fatal(err)
		}
		got, err := Parse(src)
		if err != nil {
			t.Fatalf("%s: %v", tc.file, err)
		}
		if !reflect.DeepEqual(got, tc.want) {
			t.Errorf("%s differs from the builtin:\n got %+v\nwant %+v", filepath.Base(tc.file), got, tc.want)
		}
	}
}

// TestJSONEquivalent: the JSON form decodes to the same scenario as
// the YAML form.
func TestJSONEquivalent(t *testing.T) {
	yamlSrc := "name: j\nhorizon: 2s\npoll: 50ms\nfleet:\n  backends: 4\nassertions:\n  - metric: served\n    min: 10\n"
	jsonSrc := `{"name": "j", "horizon": "2s", "poll": "50ms",
		"fleet": {"backends": 4},
		"assertions": [{"metric": "served", "min": 10}]}`
	a, err := Parse([]byte(yamlSrc))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Parse([]byte(jsonSrc))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("YAML and JSON decode diverged:\n%+v\nvs\n%+v", a, b)
	}
}

// TestExpandWeights pins the 70/30 split the hetero study relies on.
func TestExpandWeights(t *testing.T) {
	cases := []struct {
		weights []float64
		n       int
		want    []int
	}{
		{[]float64{7, 3}, 10, []int{7, 3}},
		{[]float64{1, 1, 1}, 8, []int{3, 3, 2}}, // remainder 2 goes to the two lowest indices
		{[]float64{1}, 5, []int{5}},
		{[]float64{0.5, 0.5}, 3, []int{2, 1}},
	}
	for _, tc := range cases {
		got := ExpandWeights(tc.weights, tc.n)
		if !reflect.DeepEqual(got, tc.want) {
			t.Errorf("ExpandWeights(%v, %d) = %v, want %v", tc.weights, tc.n, got, tc.want)
		}
	}
}

// TestFrontEndIDsMatchCluster pins the arithmetic the compiler uses to
// place HA front-ends and the witness (so chaos configs can be built
// without instantiating a cluster) against the real cluster layout.
func TestFrontEndIDsMatchCluster(t *testing.T) {
	s := BuiltinHA()
	cp, err := s.Compile(false)
	if err != nil {
		t.Fatal(err)
	}
	c := cluster.New(cp.ClusterConfig(1, ""))
	if got, want := c.FrontEndIDs(), s.FrontEndIDs(); !reflect.DeepEqual(got, want) {
		t.Errorf("front-end IDs: cluster %v, scenario %v", got, want)
	}
	if c.Witness == nil || c.Witness.ID != s.WitnessID() {
		t.Errorf("witness ID: cluster %+v, scenario %d", c.Witness, s.WitnessID())
	}
}

// TestCompileHeteroFleet: template expansion produces contiguous
// ranges and a full spec list.
func TestCompileHeteroFleet(t *testing.T) {
	s := &Scenario{
		Name: "h", Horizon: 2 * sim.Second,
		Fleet: Fleet{Backends: 10, Templates: []Template{
			{Name: "fast", Weight: 7, CPUs: 4},
			{Name: "slow", Weight: 3, CPUs: 1, NICLatency: 200 * sim.Microsecond},
		}},
	}
	cp, err := s.Compile(false)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cp.Counts, []int{7, 3}) {
		t.Fatalf("counts %v", cp.Counts)
	}
	if !reflect.DeepEqual(cp.Ranges, [][2]int{{1, 7}, {8, 10}}) {
		t.Fatalf("ranges %v", cp.Ranges)
	}
	if len(cp.Specs) != 10 {
		t.Fatalf("specs %d", len(cp.Specs))
	}
	if cp.TemplateOf(1) != "fast" || cp.TemplateOf(7) != "fast" || cp.TemplateOf(8) != "slow" || cp.TemplateOf(10) != "slow" {
		t.Fatalf("template mapping wrong: %v", cp.Specs)
	}
	if cp.Specs[9].NICLatency != 200*sim.Microsecond || cp.Specs[0].CPUs != 4 {
		t.Fatalf("spec fields lost: %+v", cp.Specs)
	}
}

// TestCompileQuickOverrides: -quick swaps in the quick horizon, repin
// and client count.
func TestCompileQuickOverrides(t *testing.T) {
	s := BuiltinChaos()
	full, err := s.Compile(false)
	if err != nil {
		t.Fatal(err)
	}
	quick, err := s.Compile(true)
	if err != nil {
		t.Fatal(err)
	}
	if full.Horizon != 20*sim.Second || quick.Horizon != 10*sim.Second {
		t.Fatalf("horizons %v/%v", full.Horizon, quick.Horizon)
	}
	if full.MRRepin != 1500*sim.Millisecond || quick.MRRepin != 800*sim.Millisecond {
		t.Fatalf("repin %v/%v", full.MRRepin, quick.MRRepin)
	}
	if full.Clients != 48 || quick.Clients != 32 {
		t.Fatalf("clients %d/%d", full.Clients, quick.Clients)
	}
}
