package scenario

import (
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"

	"rdmamon/internal/cluster"
	"rdmamon/internal/core"
	"rdmamon/internal/faults"
	"rdmamon/internal/sim"
)

// RNG stream salts. Stagger jitter and event victim picks each draw
// from their own seeded stream so adding events never perturbs stagger
// offsets (and vice versa) for the same seed.
const (
	staggerSalt = 0x57a6_6e72
	eventSalt   = 0xe7e4_75c1
)

// DefaultSeed is the harness-wide base seed (the CLUSTER 2006
// conference date, matching experiments.Options).
const DefaultSeed = 20060925

// Compiled is a scenario lowered onto concrete harness values: every
// duration resolved for quick/full mode, the fleet expanded to
// per-backend specs, variants materialised. Per-seed artifacts
// (cluster.Config, faults.Plan) are produced on demand so one Compiled
// serves a whole seed sweep.
type Compiled struct {
	S     *Scenario
	Quick bool

	Horizon sim.Time
	Poll    sim.Time
	MRRepin sim.Time
	Clients int
	Think   sim.Time

	Scheme   core.Scheme
	Backends int
	// Counts[j] is how many back-ends template j expanded to; Specs is
	// the per-backend override list (nil for a homogeneous fleet).
	Counts []int
	Specs  []cluster.BackendSpec
	// Ranges[j] is template j's contiguous node-ID range [lo, hi].
	Ranges [][2]int

	Variants []Variant
}

// Compile resolves the scenario for full or quick mode. The scenario
// must be valid (Parse guarantees it; hand-built scenarios should call
// Validate first — Compile re-runs it to be safe).
func (s *Scenario) Compile(quick bool) (*Compiled, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	cp := &Compiled{S: s, Quick: quick}

	cp.Horizon = s.Horizon
	if quick && s.QuickHorizon > 0 {
		cp.Horizon = s.QuickHorizon
	}
	cp.Poll = s.Poll
	if cp.Poll <= 0 {
		cp.Poll = core.DefaultInterval
	}
	cp.MRRepin = s.MRRepin
	if quick && s.QuickMRRepin > 0 {
		cp.MRRepin = s.QuickMRRepin
	}
	cp.Clients = s.Workload.Clients
	if cp.Clients <= 0 {
		cp.Clients = 48
	}
	if quick && s.Workload.QuickClients > 0 {
		cp.Clients = s.Workload.QuickClients
	}
	cp.Think = s.Workload.Think
	if cp.Think <= 0 {
		cp.Think = 30 * sim.Millisecond
	}

	scheme := s.Scheme
	if scheme == "" {
		scheme = "rdma-sync"
	}
	var err error
	if cp.Scheme, err = core.ParseScheme(scheme); err != nil {
		return nil, err
	}

	cp.Backends = s.backends()
	if ts := s.Fleet.Templates; len(ts) > 0 {
		weights := make([]float64, len(ts))
		for i, t := range ts {
			weights[i] = t.Weight
		}
		cp.Counts = ExpandWeights(weights, cp.Backends)
		cp.Specs = make([]cluster.BackendSpec, 0, cp.Backends)
		lo := 1
		for j, t := range ts {
			cp.Ranges = append(cp.Ranges, [2]int{lo, lo + cp.Counts[j] - 1})
			lo += cp.Counts[j]
			for k := 0; k < cp.Counts[j]; k++ {
				cp.Specs = append(cp.Specs, cluster.BackendSpec{
					Template:      t.Name,
					CPUs:          t.CPUs,
					NICLatency:    t.NICLatency,
					AgentInterval: t.AgentInterval,
					Workers:       t.Workers,
				})
			}
		}
	}

	cp.Variants = s.Variants
	if len(cp.Variants) == 0 {
		cp.Variants = []Variant{{Name: "base", Policy: s.Policy}}
	}
	return cp, nil
}

// ExpandWeights apportions n slots over the weight vector with
// largest-remainder rounding: the result always sums to exactly n, and
// every positive weight with ideal share >= 1 gets at least one slot
// before any rounding bonus lands. Exported for the property tests.
func ExpandWeights(weights []float64, n int) []int {
	counts := make([]int, len(weights))
	if len(weights) == 0 || n <= 0 {
		return counts
	}
	total := 0.0
	for _, w := range weights {
		total += w
	}
	if !(total > 0) || math.IsInf(total, 0) {
		// Degenerate vectors (validation rejects them in real
		// scenarios): give everything to slot 0 rather than divide by it.
		counts[0] = n
		return counts
	}
	assigned := 0
	rem := make([]float64, len(weights))
	for i, w := range weights {
		ideal := float64(n) * w / total
		counts[i] = int(ideal)
		rem[i] = ideal - float64(counts[i])
		assigned += counts[i]
	}
	for assigned < n {
		// Next slot goes to the largest fractional remainder; ties break
		// toward the lower index, deterministically.
		best := 0
		for i := 1; i < len(rem); i++ {
			if rem[i] > rem[best] {
				best = i
			}
		}
		counts[best]++
		rem[best] = -1
		assigned++
	}
	return counts
}

// BaseSeed resolves the seed-sweep base: an explicit override wins,
// then the scenario's own seed, then the harness default.
func (cp *Compiled) BaseSeed(override int64) int64 {
	if override != 0 {
		return override
	}
	if cp.S.Seed != 0 {
		return cp.S.Seed
	}
	return DefaultSeed
}

// SeedAt is the i-th point of the sweep (the same 7919 stride the
// legacy chaos/ha experiments used).
func (cp *Compiled) SeedAt(base int64, i int) int64 { return base + int64(i)*7919 }

// Points is the number of seeded points to run (an Options.Seeds
// override wins; scenario default; 1 as the floor).
func (cp *Compiled) Points(override int) int {
	n := override
	if n <= 0 {
		n = cp.S.Seeds
	}
	if n <= 0 {
		n = 1
	}
	return n
}

// ClusterConfig lowers the scenario to a cluster.Config for one seed
// and dispatch policy (empty policy = the scenario default). Field
// defaulting mirrors the legacy chaos/ha experiments exactly so the
// unified driver builds the same clusters they did.
func (cp *Compiled) ClusterConfig(seed int64, policy string) cluster.Config {
	if policy == "" {
		policy = cp.S.Policy
	}
	if policy == "" {
		policy = string(cluster.PolicyWebSphere)
	}
	pt := cp.S.ProbeTimeout
	if pt <= 0 {
		pt = cp.Poll
	}
	cfg := cluster.Config{
		Backends:     cp.Backends,
		Scheme:       cp.Scheme,
		Poll:         cp.Poll,
		Seed:         seed,
		Policy:       cluster.PolicyName(policy),
		Gamma:        cp.S.Gamma,
		LocalWeight:  cp.S.LocalWeight,
		ProbeTimeout: pt,
		MRRepin:      cp.MRRepin,
		Replicas:     cp.S.Replicas,
		BackendSpecs: cp.Specs,
	}
	if cp.S.Failover {
		cfg.Failover = &core.FailoverConfig{}
	}
	return cfg
}

// Plan compiles the fault side of the scenario for one seed: the
// stress block's seeded random plan (exactly faults.RandomPlan — the
// chaos/ha equivalence golden tests depend on this being the whole
// story when no stagger or events exist), then stagger cold-start
// windows, then the timed event script. Deterministic: same (scenario,
// seed) in, same plan out.
func (cp *Compiled) Plan(seed int64) faults.Plan {
	var plan faults.Plan
	if st := cp.S.Stress; st != nil {
		cc := faults.ChaosConfig{
			Backends:        cp.Backends,
			Horizon:         cp.Horizon,
			Crashes:         st.Crashes,
			LinkFaults:      st.LinkFaults,
			Partitions:      st.Partitions,
			MRInvalidations: st.MRInvalidations,
			FECrashes:       st.FECrashes,
			FEFreezes:       st.FEFreezes,
			FEPartitions:    st.FEPartitions,
			ClaimStalls:     st.ClaimStalls,
		}
		if cp.S.Replicas > 1 {
			cc.FrontEnds = cp.S.FrontEndIDs()
			cc.Witness = cp.S.WitnessID()
		}
		plan = faults.RandomPlan(seed, cc)
	} else {
		plan = faults.Plan{Seed: seed}
	}

	if sg := cp.S.Stagger; sg != nil {
		rng := rand.New(rand.NewSource(seed ^ staggerSalt))
		for i := 1; i <= cp.Backends; i++ {
			off := sim.Time(i-1) * sg.Offset
			if sg.Jitter > 0 {
				off += sim.Time(rng.Int63n(int64(sg.Jitter)))
			}
			if off <= 0 {
				continue // the first node (no offset) is simply up from t=0
			}
			plan.Crashes = append(plan.Crashes, faults.Crash{Node: i, At: 0, RestartAt: off})
		}
	}

	if len(cp.S.Events) > 0 {
		rng := rand.New(rand.NewSource(seed ^ eventSalt))
		for _, ev := range cp.S.Events {
			node := cp.pickVictim(ev, rng)
			switch ev.Action {
			case "crash":
				plan.Crashes = append(plan.Crashes, faults.Crash{
					Node: node, At: ev.At, RestartAt: ev.At + ev.Duration,
				})
			case "freeze":
				plan.Freezes = append(plan.Freezes, faults.Freeze{
					Node: node, At: ev.At, Until: ev.At + ev.Duration,
				})
			case "mr-invalidate":
				plan.MRInvalidations = append(plan.MRInvalidations, faults.MRInvalidation{
					Node: node, At: ev.At,
				})
			case "partition":
				plan.Partitions = append(plan.Partitions, faults.Partition{
					Start: ev.At, End: ev.At + ev.Duration,
					A: []int{0}, B: []int{node},
				})
			case "link":
				drop := ev.Drop
				if drop == 0 {
					drop = 0.5
				}
				plan.Links = append(plan.Links, faults.LinkFault{
					From: 0, To: node,
					Start: ev.At, End: ev.At + ev.Duration,
					Drop: drop,
				})
			}
		}
	}
	return plan
}

// pickVictim resolves an event's target back-end. Explicit nodes burn
// no draws; picks consume exactly one template draw (weighted only)
// plus one node draw, so scripts replay bit-identically and removing
// one event shifts later picks predictably.
func (cp *Compiled) pickVictim(ev Event, rng *rand.Rand) int {
	if ev.Node != 0 {
		return ev.Node
	}
	lo, hi := 1, cp.Backends
	if ev.Template != "" {
		lo, hi = cp.templateRange(ev.Template)
	} else if ev.Pick == "weighted" && len(cp.Ranges) > 0 {
		// Weighted: draw a template proportionally to its expanded node
		// count, then uniform within it. (With contiguous ranges this
		// equals a uniform node draw, but the two-stage form keeps the
		// draw count stable if expansion ever becomes non-contiguous.)
		total := 0
		for _, c := range cp.Counts {
			total += c
		}
		j, pickAt := 0, rng.Intn(total)
		for acc := 0; j < len(cp.Counts); j++ {
			acc += cp.Counts[j]
			if pickAt < acc {
				break
			}
		}
		lo, hi = cp.Ranges[j][0], cp.Ranges[j][1]
	}
	if hi < lo {
		return lo // empty template expansion: degenerate but safe
	}
	return lo + rng.Intn(hi-lo+1)
}

// templateRange returns template name's contiguous node-ID range.
func (cp *Compiled) templateRange(name string) (lo, hi int) {
	for j, t := range cp.S.Fleet.Templates {
		if t.Name == name {
			return cp.Ranges[j][0], cp.Ranges[j][1]
		}
	}
	return 1, cp.Backends
}

// TemplateOf maps a back-end node ID to its template name ("" for a
// homogeneous fleet).
func (cp *Compiled) TemplateOf(node int) string {
	i := node - 1
	if i >= 0 && i < len(cp.Specs) {
		return cp.Specs[i].Template
	}
	return ""
}

// PlanDigest is the FNV-64a digest of one seed's compiled fault plan,
// the same formula the faults golden tests use — so scenario digests
// and legacy RandomPlan digests are directly comparable.
func (cp *Compiled) PlanDigest(seed int64) uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%+v", cp.Plan(seed))
	return h.Sum64()
}

// Digest folds the first `points` seeds' plan digests (default-seed
// base) into one pinned value for the golden tests.
func (cp *Compiled) Digest(points int) uint64 {
	h := fnv.New64a()
	base := cp.BaseSeed(0)
	for i := 0; i < points; i++ {
		seed := cp.SeedAt(base, i)
		fmt.Fprintf(h, "%d:%d;", seed, cp.PlanDigest(seed))
	}
	return h.Sum64()
}
