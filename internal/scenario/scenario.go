// Package scenario is the declarative layer over the simulation
// harness: a YAML/JSON schema describing a fleet (optionally
// heterogeneous, via weighted templates), a workload, fault pressure
// (seeded stress blocks and/or explicit timed event scripts), dispatch
// variants to compare, and pass/fail assertions — plus a deterministic
// compiler that lowers a scenario onto the existing building blocks:
// cluster.Config, faults.Plan, and the workload clients.
//
// Design rules, in priority order:
//
//  1. Determinism. Compilation draws randomness only from seeded
//     streams derived from the run seed, so the same (scenario, seed)
//     pair always produces the same cluster config and fault plan.
//     Golden digest tests pin this.
//  2. Equivalence. The built-in chaos and ha scenarios compile to
//     bit-identical faults.Plan values to the Go-coded experiments
//     they replaced — same ChaosConfig, same RNG stream.
//  3. Fuzz safety. Parse and Validate reject malformed input with
//     errors; they never panic, whatever the bytes.
package scenario

import (
	"fmt"
	"sort"
	"strings"

	"rdmamon/internal/core"
	"rdmamon/internal/sim"
)

// Hard caps keeping fuzzed and hand-written scenarios inside what one
// simulation engine can reasonably run.
const (
	maxBackends = 16384
	maxSeeds    = 64
	maxHorizon  = 10 * 60 * sim.Second
	maxEvents   = 256
	maxTemplate = 64
	maxVariants = 8
	maxStress   = 64
	maxClients  = 1 << 16
)

// Scenario is the parsed schema. Durations are sim.Time nanoseconds;
// zero means "unset, use the default" except where validation requires
// a value.
type Scenario struct {
	Name        string
	Description string

	// Seed is the base run seed (0 = the harness default); Seeds is
	// how many seeded points to run (0 = 1; the chaos/ha checkers
	// default to 5 like their legacy experiments).
	Seed  int64
	Seeds int

	// Horizon is the simulated run length (required). QuickHorizon,
	// when set, replaces it under -quick.
	Horizon      sim.Time
	QuickHorizon sim.Time

	// Poll is the probe period T (0 = the paper default, 50ms).
	Poll sim.Time

	// Scheme is the monitoring scheme name, core.ParseScheme syntax
	// ("" = rdma-sync). Policy is the dispatch policy ("" =
	// websphere); variants override it per run.
	Scheme string
	Policy string

	// Gamma and LocalWeight tune the WebSphere-style load index and
	// local-signal blend (0 = cluster defaults).
	Gamma       float64
	LocalWeight float64

	// ProbeTimeout bounds one probe (0 = Poll). MRRepin is the
	// re-registration delay after an MR invalidation; QuickMRRepin
	// replaces it under -quick.
	ProbeTimeout sim.Time
	MRRepin      sim.Time
	QuickMRRepin sim.Time

	// Failover arms the per-backend RDMA->socket breaker. Replicas
	// (>1) builds the HA front-end tier.
	Failover bool
	Replicas int

	// Checks selects a built-in invariant checker: "" (generic
	// metrics + assertions), "chaos" (I1-I6) or "ha" (H1-H6).
	Checks string

	Fleet    Fleet
	Workload Workload
	Stagger  *Stagger
	Events   []Event
	Stress   *Stress

	Variants   []Variant
	Assertions []Assertion
}

// Fleet sizes the back-end tier. Templates, when present, make it
// heterogeneous: weights are expanded to per-template node counts
// summing exactly to Backends (largest-remainder rounding), assigned
// as contiguous ID ranges in template order.
type Fleet struct {
	Backends  int
	Templates []Template
}

// Template is one hardware class within a heterogeneous fleet. Zero
// fields inherit the cluster defaults.
type Template struct {
	Name   string
	Weight float64
	// CPUs overrides the node's CPU count (1..8).
	CPUs int
	// Workers overrides the web server's worker pool size.
	Workers int
	// NICLatency adds one-way fabric latency to every operation
	// touching the node.
	NICLatency sim.Time
	// AgentInterval overrides the monitoring agent's refresh period.
	AgentInterval sim.Time
}

// Stagger cold-starts the fleet: back-end i (1-based) comes up at
// (i-1)*Offset plus a seeded jitter draw in [0, Jitter). Compiled to
// At-zero crash windows, so restart handling is exercised from t=0.
type Stagger struct {
	Offset sim.Time
	Jitter sim.Time
}

// Workload drives client load. Kind is "rubis" (the paper's workload;
// the only kind today — the field exists so new generators are a
// schema change, not a breaking one).
type Workload struct {
	Kind         string
	Clients      int
	QuickClients int
	Think        sim.Time
}

// Event is one entry of a timed fault script. Exactly one of Node or
// Pick selects the victim; Template (optional, with Pick) restricts
// the draw to one template's nodes.
type Event struct {
	At       sim.Time
	Action   string // crash, freeze, mr-invalidate, partition, link
	Node     int    // explicit back-end ID (1-based)
	Pick     string // "random" (uniform) or "weighted" (by template weight)
	Template string
	Duration sim.Time // window length; restart delay for crash
	Drop     float64  // link only: forward drop probability
}

// Stress bounds a seeded random fault plan (faults.RandomPlan). All
// counts are explicit here — scenario files say what they mean — but
// compile through ChaosConfig's defaulting, so 2/2/1/2 (+1/1/1
// front-end) reproduces the legacy zero-count plans bit-identically.
type Stress struct {
	Crashes         int
	LinkFaults      int
	Partitions      int
	MRInvalidations int
	FECrashes       int
	FEFreezes       int
	FEPartitions    int
	ClaimStalls     int
}

// Variant is one dispatch configuration to run and compare; every
// variant sees the same seeds, fleet, workload and fault plan.
type Variant struct {
	Name   string
	Policy string
}

// Assertion is a pass/fail threshold on a reported metric. At least
// one of Min, Max or LessThan must be set; LessThan names another
// variant whose value of the same metric must be strictly larger.
type Assertion struct {
	Metric   string
	Variant  string
	Min      *float64
	Max      *float64
	LessThan string
}

// Validate checks the scenario against the schema rules. It returns
// every problem found, never panics, and is run by Parse — a Scenario
// obtained from Parse is always valid.
func (s *Scenario) Validate() error {
	var errs []string
	bad := func(format string, args ...any) { errs = append(errs, fmt.Sprintf(format, args...)) }

	if s.Name == "" {
		bad("name: required")
	}
	if s.Seeds < 0 || s.Seeds > maxSeeds {
		bad("seeds: %d out of range [0, %d]", s.Seeds, maxSeeds)
	}
	if s.Horizon <= 0 {
		bad("horizon: required and positive")
	} else if s.Horizon > maxHorizon {
		bad("horizon: %v exceeds the %v cap", s.Horizon, maxHorizon)
	}
	if s.QuickHorizon < 0 || s.QuickHorizon > maxHorizon {
		bad("quick_horizon: out of range")
	}
	for _, d := range []struct {
		name string
		v    sim.Time
	}{{"poll", s.Poll}, {"probe_timeout", s.ProbeTimeout}, {"mr_repin", s.MRRepin}, {"quick_mr_repin", s.QuickMRRepin}} {
		if d.v < 0 || d.v > maxHorizon {
			bad("%s: out of range", d.name)
		}
	}
	if s.Scheme != "" {
		if _, err := core.ParseScheme(s.Scheme); err != nil {
			bad("scheme: unknown %q", s.Scheme)
		}
	}
	if s.Policy != "" && !validPolicy(s.Policy) {
		bad("policy: unknown %q", s.Policy)
	}
	if s.Replicas < 0 || s.Replicas > 16 {
		bad("replicas: %d out of range [0, 16]", s.Replicas)
	}
	switch s.Checks {
	case "", "chaos", "ha":
	default:
		bad("checks: unknown %q (want chaos, ha, or empty)", s.Checks)
	}
	if s.Checks == "chaos" && !s.Failover {
		bad("checks: chaos requires failover: true (I3 audits the breaker)")
	}
	if s.Checks == "ha" && s.Replicas < 2 {
		bad("checks: ha requires replicas >= 2")
	}

	s.validateFleet(bad)
	s.validateWorkload(bad)
	s.validateStagger(bad)
	s.validateEvents(bad)
	s.validateStress(bad)
	s.validateVariants(bad)
	s.validateAssertions(bad)

	if len(errs) == 0 {
		return nil
	}
	return fmt.Errorf("scenario %q: %s", s.Name, strings.Join(errs, "; "))
}

func validPolicy(p string) bool {
	switch p {
	case "websphere", "least-load", "round-robin", "random":
		return true
	}
	return false
}

func (s *Scenario) validateFleet(bad func(string, ...any)) {
	f := s.Fleet
	if f.Backends < 0 || f.Backends > maxBackends {
		bad("fleet.backends: %d out of range [0, %d]", f.Backends, maxBackends)
	}
	if len(f.Templates) > maxTemplate {
		bad("fleet.templates: %d exceeds the %d cap", len(f.Templates), maxTemplate)
	}
	seen := map[string]bool{}
	for i, t := range f.Templates {
		at := fmt.Sprintf("fleet.templates[%d]", i)
		if t.Name == "" {
			bad("%s.name: required", at)
		} else if seen[t.Name] {
			bad("%s.name: duplicate template %q", at, t.Name)
		}
		seen[t.Name] = true
		if !(t.Weight > 0) { // rejects zero, negatives and NaN alike
			bad("%s.weight: must be positive, got %v", at, t.Weight)
		}
		if t.CPUs < 0 || t.CPUs > 8 {
			bad("%s.cpus: %d out of range [0, 8]", at, t.CPUs)
		}
		if t.Workers < 0 || t.Workers > 1024 {
			bad("%s.workers: %d out of range [0, 1024]", at, t.Workers)
		}
		if t.NICLatency < 0 || t.NICLatency > sim.Second {
			bad("%s.nic_latency: out of range [0, 1s]", at)
		}
		if t.AgentInterval < 0 || t.AgentInterval > maxHorizon {
			bad("%s.agent_interval: out of range", at)
		}
	}
}

func (s *Scenario) validateWorkload(bad func(string, ...any)) {
	w := s.Workload
	switch w.Kind {
	case "", "rubis":
	default:
		bad("workload.kind: unknown %q (want rubis)", w.Kind)
	}
	if w.Clients < 0 || w.Clients > maxClients {
		bad("workload.clients: %d out of range", w.Clients)
	}
	if w.QuickClients < 0 || w.QuickClients > maxClients {
		bad("workload.quick_clients: %d out of range", w.QuickClients)
	}
	if w.Think < 0 || w.Think > maxHorizon {
		bad("workload.think: out of range")
	}
}

func (s *Scenario) validateStagger(bad func(string, ...any)) {
	sg := s.Stagger
	if sg == nil {
		return
	}
	if sg.Offset <= 0 {
		bad("stagger.offset: must be positive")
	}
	if sg.Jitter < 0 || sg.Jitter > maxHorizon {
		bad("stagger.jitter: out of range")
	}
	if s.Horizon > 0 && sg.Offset > 0 {
		last := sim.Time(s.backends()-1)*sg.Offset + sg.Jitter
		if last >= s.Horizon {
			bad("stagger: last cold-start at %v is past the horizon %v", last, s.Horizon)
		}
	}
}

func (s *Scenario) validateEvents(bad func(string, ...any)) {
	if len(s.Events) > maxEvents {
		bad("events: %d exceeds the %d cap", len(s.Events), maxEvents)
		return
	}
	prev := sim.Time(-1)
	for i, ev := range s.Events {
		at := fmt.Sprintf("events[%d]", i)
		if ev.At < 0 {
			bad("%s.at: negative", at)
		}
		if ev.At < prev {
			bad("%s.at: %v before the previous event at %v (scripts must be time-ordered)", at, ev.At, prev)
		}
		prev = ev.At
		if s.Horizon > 0 && ev.At >= s.Horizon {
			bad("%s.at: %v is past the horizon %v", at, ev.At, s.Horizon)
		}
		switch ev.Action {
		case "crash", "freeze", "partition", "link":
			if ev.Duration <= 0 {
				bad("%s.duration: required and positive for action %q", at, ev.Action)
			}
		case "mr-invalidate":
			if ev.Duration != 0 {
				bad("%s.duration: not meaningful for mr-invalidate", at)
			}
		case "":
			bad("%s.action: required", at)
		default:
			bad("%s.action: unknown %q", at, ev.Action)
		}
		if ev.Duration < 0 || ev.Duration > maxHorizon {
			bad("%s.duration: out of range", at)
		}
		switch {
		case ev.Node != 0 && ev.Pick != "":
			bad("%s: node and pick are mutually exclusive", at)
		case ev.Node == 0 && ev.Pick == "":
			bad("%s: one of node or pick is required", at)
		case ev.Node != 0 && (ev.Node < 1 || ev.Node > s.backends()):
			bad("%s.node: %d outside the fleet [1, %d]", at, ev.Node, s.backends())
		case ev.Pick != "" && ev.Pick != "random" && ev.Pick != "weighted":
			bad("%s.pick: unknown %q (want random or weighted)", at, ev.Pick)
		}
		if ev.Template != "" {
			if ev.Pick == "" {
				bad("%s.template: only meaningful with pick", at)
			}
			if !s.hasTemplate(ev.Template) {
				bad("%s.template: unknown template %q", at, ev.Template)
			}
		}
		if ev.Drop != 0 && ev.Action != "link" {
			bad("%s.drop: only meaningful for link events", at)
		}
		if ev.Drop < 0 || ev.Drop > 1 {
			bad("%s.drop: %v outside [0, 1]", at, ev.Drop)
		}
	}
}

func (s *Scenario) validateStress(bad func(string, ...any)) {
	st := s.Stress
	if st == nil {
		return
	}
	counts := []struct {
		name string
		v    int
	}{
		{"crashes", st.Crashes}, {"link_faults", st.LinkFaults},
		{"partitions", st.Partitions}, {"mr_invalidations", st.MRInvalidations},
		{"fe_crashes", st.FECrashes}, {"fe_freezes", st.FEFreezes},
		{"fe_partitions", st.FEPartitions}, {"claim_stalls", st.ClaimStalls},
	}
	for _, c := range counts {
		if c.v < 0 || c.v > maxStress {
			bad("stress.%s: %d out of range [0, %d]", c.name, c.v, maxStress)
		}
	}
	if s.Replicas < 2 && (st.FECrashes != 0 || st.FEFreezes != 0 || st.FEPartitions != 0 || st.ClaimStalls != 0) {
		bad("stress: front-end fault counts need replicas >= 2")
	}
}

func (s *Scenario) validateVariants(bad func(string, ...any)) {
	if len(s.Variants) > maxVariants {
		bad("variants: %d exceeds the %d cap", len(s.Variants), maxVariants)
		return
	}
	seen := map[string]bool{}
	for i, v := range s.Variants {
		at := fmt.Sprintf("variants[%d]", i)
		if v.Name == "" {
			bad("%s.name: required", at)
		} else if seen[v.Name] {
			bad("%s.name: duplicate variant %q", at, v.Name)
		}
		seen[v.Name] = true
		if v.Policy != "" && !validPolicy(v.Policy) {
			bad("%s.policy: unknown %q", at, v.Policy)
		}
	}
}

func (s *Scenario) validateAssertions(bad func(string, ...any)) {
	if len(s.Assertions) > 0 && s.Checks != "" {
		bad("assertions: not supported with checks: %s (its invariants are the assertions)", s.Checks)
	}
	names := s.variantNames()
	has := func(n string) bool {
		for _, v := range names {
			if v == n {
				return true
			}
		}
		return false
	}
	for i, a := range s.Assertions {
		at := fmt.Sprintf("assertions[%d]", i)
		if a.Metric == "" {
			bad("%s.metric: required", at)
		}
		if a.Variant != "" && !has(a.Variant) {
			bad("%s.variant: unknown variant %q", at, a.Variant)
		}
		if a.Min == nil && a.Max == nil && a.LessThan == "" {
			bad("%s: one of min, max or less_than is required", at)
		}
		if a.LessThan != "" {
			if !has(a.LessThan) {
				bad("%s.less_than: unknown variant %q", at, a.LessThan)
			} else if a.LessThan == a.resolvedVariant(names) {
				bad("%s.less_than: compares a variant to itself", at)
			}
		}
		if a.Min != nil && a.Max != nil && *a.Min > *a.Max {
			bad("%s: min %v exceeds max %v", at, *a.Min, *a.Max)
		}
	}
}

// resolvedVariant is the variant an assertion applies to: its Variant
// field, or the first variant when unset.
func (a Assertion) resolvedVariant(names []string) string {
	if a.Variant != "" {
		return a.Variant
	}
	if len(names) > 0 {
		return names[0]
	}
	return ""
}

// variantNames returns the resolved variant list ("base" when the
// scenario declares none).
func (s *Scenario) variantNames() []string {
	if len(s.Variants) == 0 {
		return []string{"base"}
	}
	out := make([]string, len(s.Variants))
	for i, v := range s.Variants {
		out[i] = v.Name
	}
	return out
}

// backends is the resolved fleet size (the cluster default when the
// scenario leaves it zero).
func (s *Scenario) backends() int {
	if s.Fleet.Backends <= 0 {
		return 8
	}
	return s.Fleet.Backends
}

func (s *Scenario) hasTemplate(name string) bool {
	for _, t := range s.Fleet.Templates {
		if t.Name == name {
			return true
		}
	}
	return false
}

// FrontEndIDs computes the node IDs the HA tier will occupy, without
// building a cluster: replica 0 shares node 0 with the base front-end,
// replicas 1..R-1 take Backends+1..Backends+R-1. Must match
// cluster.FrontEndIDs — a test pins the correspondence.
func (s *Scenario) FrontEndIDs() []int {
	if s.Replicas < 2 {
		return nil
	}
	ids := []int{0}
	for i := 1; i < s.Replicas; i++ {
		ids = append(ids, s.backends()+i)
	}
	return ids
}

// WitnessID is the lease-witness node ID for HA scenarios.
func (s *Scenario) WitnessID() int { return s.backends() + s.Replicas }

// MetricNames is the fixed part of the generic report's column order;
// per-template share_<name> columns follow, sorted.
func MetricNames() []string {
	return []string{"served", "routed", "timeouts", "resp_mean_ms", "resp_p99_ms", "stale_max_t", "stale_p99_t"}
}

// SortedShareMetrics returns share metric names for a template list.
func SortedShareMetrics(templates []Template) []string {
	out := make([]string, 0, len(templates))
	for _, t := range templates {
		out = append(out, "share_"+t.Name)
	}
	sort.Strings(out)
	return out
}

// BuiltinChaos is the declarative equivalent of the legacy Go-coded
// `-exp chaos` experiment: same cluster config, same ChaosConfig (the
// explicit 2/2/1/2 counts are exactly what withDefaults resolved the
// legacy zero counts to), so every seeded plan is bit-identical — the
// golden tests assert it.
func BuiltinChaos() *Scenario {
	return &Scenario{
		Name:         "chaos",
		Description:  "randomized fault plans vs failover invariants",
		Seeds:        5,
		Horizon:      20 * sim.Second,
		QuickHorizon: 10 * sim.Second,
		Poll:         50 * sim.Millisecond,
		Scheme:       "rdma-sync",
		Policy:       "websphere",
		Gamma:        4,
		MRRepin:      1500 * sim.Millisecond,
		QuickMRRepin: 800 * sim.Millisecond,
		Failover:     true,
		Checks:       "chaos",
		Fleet:        Fleet{Backends: 8},
		Workload:     Workload{Kind: "rubis", Clients: 48, QuickClients: 32, Think: 30 * sim.Millisecond},
		Stress:       &Stress{Crashes: 2, LinkFaults: 2, Partitions: 1, MRInvalidations: 2},
	}
}

// BuiltinHA is the declarative equivalent of the legacy `-exp ha`
// experiment (same plan stream: FE counts 1/1/1 are the resolved
// defaults for a 3-replica fleet).
func BuiltinHA() *Scenario {
	return &Scenario{
		Name:         "ha",
		Description:  "warm-standby front-ends under front-end faults",
		Seeds:        5,
		Horizon:      20 * sim.Second,
		QuickHorizon: 10 * sim.Second,
		Poll:         50 * sim.Millisecond,
		Scheme:       "rdma-sync",
		Policy:       "websphere",
		Gamma:        4,
		Replicas:     3,
		Checks:       "ha",
		Fleet:        Fleet{Backends: 8},
		Workload:     Workload{Kind: "rubis", Clients: 48, QuickClients: 32, Think: 30 * sim.Millisecond},
		Stress: &Stress{Crashes: 2, LinkFaults: 2, Partitions: 1, MRInvalidations: 2,
			FECrashes: 1, FEFreezes: 1, FEPartitions: 1},
	}
}
