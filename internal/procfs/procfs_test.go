package procfs

import (
	"errors"
	"os"
	"path/filepath"
	"runtime"
	"testing"

	"rdmamon/internal/wire"
)

// writeFakeProc builds a minimal /proc tree.
func writeFakeProc(t *testing.T, stat, loadavg, meminfo, netdev string) string {
	t.Helper()
	dir := t.TempDir()
	files := map[string]string{
		"stat":    stat,
		"loadavg": loadavg,
		"meminfo": meminfo,
	}
	for name, content := range files {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if netdev != "" {
		if err := os.MkdirAll(filepath.Join(dir, "net"), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, "net/dev"), []byte(netdev), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

const stat1 = `cpu  100 0 100 800 0 0 0 0 0 0
cpu0 50 0 50 400 0 0 0 0 0 0
cpu1 50 0 50 400 0 0 0 0 0 0
intr 12345 1 2 3
ctxt 99887
procs_running 3
procs_blocked 0
`

const stat2 = `cpu  300 0 200 900 0 0 0 0 0 0
cpu0 150 0 100 450 0 0 0 0 0 0
cpu1 150 0 100 450 0 0 0 0 0 0
intr 22345 1 2 3
ctxt 109887
procs_running 5
procs_blocked 0
`

const loadavg1 = "0.50 0.40 0.30 3/123 4567\n"

const meminfo1 = `MemTotal:       1048576 kB
MemFree:         262144 kB
MemAvailable:    524288 kB
Buffers:          10000 kB
`

const netdev1 = `Inter-|   Receive                                                |  Transmit
 face |bytes    packets errs drop fifo frame compressed multicast|bytes    packets errs drop fifo colls carrier compressed
    lo:  999999     100    0    0    0     0          0         0   999999     100    0    0    0     0       0          0
  eth0: 5000000    4000    0    0    0     0          0         0  3000000    2000    0    0    0     0       0          0
  eth1: 1000000    1000    0    0    0     0          0         0   500000     500    0    0    0     0       0          0
`

func TestLinuxSnapshot(t *testing.T) {
	dir := writeFakeProc(t, stat1, loadavg1, meminfo1, netdev1)
	p := NewLinux(dir)
	s, err := p.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if s.NumCPU != 2 {
		t.Fatalf("NumCPU = %d", s.NumCPU)
	}
	if s.NrRunning != 3 {
		t.Fatalf("NrRunning = %d, want 3 (procs_running)", s.NrRunning)
	}
	if s.NrTasks != 123 {
		t.Fatalf("NrTasks = %d, want 123", s.NrTasks)
	}
	if s.MemTotalKB != 1048576 || s.MemUsedKB != 1048576-524288 {
		t.Fatalf("mem = %d/%d", s.MemUsedKB, s.MemTotalKB)
	}
	// lo excluded, eth0+eth1 summed.
	if s.NetRxBytes != 6000000 || s.NetTxBytes != 3500000 {
		t.Fatalf("net = %d/%d", s.NetRxBytes, s.NetTxBytes)
	}
	if s.CumIRQ != 12345 || s.CtxSwitch != 99887 {
		t.Fatalf("irq/ctxt = %d/%d", s.CumIRQ, s.CtxSwitch)
	}
	// First sample: no utilisation baseline yet.
	for _, u := range s.UtilPerMille {
		if u != 0 {
			t.Fatalf("first-sample util = %v, want zeros", s.UtilPerMille)
		}
	}
}

func TestLinuxUtilDelta(t *testing.T) {
	dir := writeFakeProc(t, stat1, loadavg1, meminfo1, "")
	p := NewLinux(dir)
	if _, err := p.Snapshot(); err != nil {
		t.Fatal(err)
	}
	// Swap in the second /proc/stat: each CPU gained 150 busy of 150
	// total (cpu0: busy 100->250 of total 500->700... compute below).
	if err := os.WriteFile(filepath.Join(dir, "stat"), []byte(stat2), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := p.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	// cpu0: busy 100->250 (delta 150), total 500->700 (delta 200) -> 750.
	for c := 0; c < 2; c++ {
		if s.UtilPerMille[c] != 750 {
			t.Fatalf("cpu%d util = %d, want 750", c, s.UtilPerMille[c])
		}
	}
}

func TestLinuxMissingRoot(t *testing.T) {
	p := NewLinux(filepath.Join(t.TempDir(), "nope"))
	if _, err := p.Snapshot(); err == nil {
		t.Fatal("missing /proc should error")
	}
}

func TestLinuxRealProc(t *testing.T) {
	if runtime.GOOS != "linux" {
		t.Skip("needs real /proc")
	}
	p := NewLinux("")
	a, err := p.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if a.NumCPU < 1 || a.MemTotalKB == 0 || a.NrTasks == 0 {
		t.Fatalf("implausible real snapshot: %+v", a)
	}
	b, err := p.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	for _, u := range b.UtilPerMille {
		if u < 0 || u > 1000 {
			t.Fatalf("util out of range: %v", b.UtilPerMille)
		}
	}
}

func TestSnapshotRecord(t *testing.T) {
	s := Snapshot{
		TimeNS: 123, NumCPU: 2, NrRunning: 4, NrTasks: 77,
		UtilPerMille: []int{800, 200},
		MemUsedKB:    1000, MemTotalKB: 2000,
		NetRxBytes: 5, NetTxBytes: 6, CumIRQ: 7, CtxSwitch: 8,
	}
	r := s.Record(3, 9)
	if r.NodeID != 3 || r.Seq != 9 || r.KTimeNS != 123 {
		t.Fatalf("header wrong: %+v", r)
	}
	if r.UtilMean() != 500 {
		t.Fatalf("util mean = %d", r.UtilMean())
	}
	// Round-trips the wire codec.
	got, err := wire.Decode(r.Encode())
	if err != nil || got.NrTasks != 77 {
		t.Fatalf("wire round trip: %v %+v", err, got)
	}
}

func TestSynthetic(t *testing.T) {
	p := &Synthetic{}
	p.Set(Snapshot{NumCPU: 1, NrRunning: 2})
	s, err := p.Snapshot()
	if err != nil || s.NrRunning != 2 {
		t.Fatalf("synthetic: %v %+v", err, s)
	}
	if s.TimeNS == 0 {
		t.Fatal("synthetic should stamp time")
	}
	p.Tick = func(s *Snapshot) { s.NrRunning++ }
	s, _ = p.Snapshot()
	if s.NrRunning != 3 {
		t.Fatalf("tick hook not applied: %d", s.NrRunning)
	}
	p.Err = errors.New("boom")
	if _, err := p.Snapshot(); err == nil {
		t.Fatal("error should propagate")
	}
}
