// Package procfs samples real machine statistics from the Linux /proc
// filesystem (with a pluggable root for testing, and a synthetic
// provider for non-Linux platforms). It supplies the live-mode
// monitoring agents with the same load information the simulated
// kernel exposes.
package procfs

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"time"

	"rdmamon/internal/wire"
)

// Snapshot is one sample of a machine's load state.
type Snapshot struct {
	TimeNS    int64
	NumCPU    int
	NrRunning int
	NrTasks   int

	UtilPerMille []int // per CPU, derived from consecutive /proc/stat samples

	MemUsedKB  uint64
	MemTotalKB uint64
	NetRxBytes uint64
	NetTxBytes uint64
	CumIRQ     uint64
	CtxSwitch  uint64
}

// Record converts the snapshot into the wire format.
func (s Snapshot) Record(nodeID uint16, seq uint32) wire.LoadRecord {
	r := wire.LoadRecord{
		NumCPU:     uint8(min(s.NumCPU, wire.MaxCPU)),
		NodeID:     nodeID,
		Seq:        seq,
		KTimeNS:    s.TimeNS,
		NrRunning:  clampU16(s.NrRunning),
		NrTasks:    clampU16(s.NrTasks),
		MemUsedKB:  uint32(min64(s.MemUsedKB, 1<<32-1)),
		MemTotalKB: uint32(min64(s.MemTotalKB, 1<<32-1)),
		NetRxBytes: s.NetRxBytes,
		NetTxBytes: s.NetTxBytes,
		CumIRQ:     s.CumIRQ,
		CtxSwitch:  s.CtxSwitch,
	}
	for i := 0; i < len(s.UtilPerMille) && i < wire.MaxCPU; i++ {
		r.UtilPerMille[i] = uint16(s.UtilPerMille[i])
	}
	return r
}

func clampU16(v int) uint16 {
	if v < 0 {
		return 0
	}
	if v > 0xFFFF {
		return 0xFFFF
	}
	return uint16(v)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func min64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}

// Provider produces snapshots.
type Provider interface {
	Snapshot() (Snapshot, error)
}

// Linux samples a (real or fake) /proc tree. Utilisation is computed
// from the delta between consecutive calls, so the first call reports
// zero utilisation. Linux is safe for concurrent use.
type Linux struct {
	Root string // defaults to "/proc"

	mu   sync.Mutex
	prev map[int]cpuTimes
	now  func() time.Time
}

type cpuTimes struct {
	busy, total uint64
}

// NewLinux returns a provider over root (empty = "/proc").
func NewLinux(root string) *Linux {
	if root == "" {
		root = "/proc"
	}
	return &Linux{Root: root, prev: make(map[int]cpuTimes), now: time.Now}
}

// Snapshot implements Provider.
func (l *Linux) Snapshot() (Snapshot, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	var s Snapshot
	s.TimeNS = l.now().UnixNano()
	if err := l.readStat(&s); err != nil {
		return s, err
	}
	if err := l.readLoadavg(&s); err != nil {
		return s, err
	}
	if err := l.readMeminfo(&s); err != nil {
		return s, err
	}
	// Network counters are optional (missing on some systems).
	_ = l.readNetDev(&s)
	return s, nil
}

func (l *Linux) open(name string) (*os.File, error) {
	return os.Open(filepath.Join(l.Root, name))
}

// readStat opens /proc/stat and delegates to parseStat.
func (l *Linux) readStat(s *Snapshot) error {
	f, err := l.open("stat")
	if err != nil {
		return err
	}
	defer f.Close()
	return parseStat(f, s, l.prev)
}

// parseStat parses a /proc/stat stream: per-CPU jiffies, interrupt
// and context switch totals. prev holds the previous sample's CPU
// times for the utilisation delta (it is updated in place; pass a
// fresh map to get zero utilisation). Malformed input yields an error,
// never a panic — the parser is fuzzed on that contract.
func parseStat(r io.Reader, s *Snapshot, prev map[int]cpuTimes) error {
	sc := bufio.NewScanner(r)
	cur := make(map[int]cpuTimes)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 {
			continue
		}
		switch {
		case strings.HasPrefix(fields[0], "cpu") && len(fields[0]) > 3:
			id, err := strconv.Atoi(fields[0][3:])
			if err != nil || id < 0 {
				// "cpu-1" parses as a valid int but would index the
				// utilisation slice out of bounds below.
				continue
			}
			var vals []uint64
			for _, fstr := range fields[1:] {
				v, err := strconv.ParseUint(fstr, 10, 64)
				if err != nil {
					break
				}
				vals = append(vals, v)
			}
			if len(vals) < 4 {
				continue
			}
			var total uint64
			for _, v := range vals {
				total += v
			}
			idle := vals[3] // user nice system idle [iowait ...]
			if len(vals) >= 5 {
				idle += vals[4] // iowait counts as not-busy
			}
			cur[id] = cpuTimes{busy: total - idle, total: total}
		case fields[0] == "intr" && len(fields) > 1:
			s.CumIRQ, _ = strconv.ParseUint(fields[1], 10, 64)
		case fields[0] == "ctxt" && len(fields) > 1:
			s.CtxSwitch, _ = strconv.ParseUint(fields[1], 10, 64)
		case fields[0] == "procs_running" && len(fields) > 1:
			s.NrRunning, _ = strconv.Atoi(fields[1])
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if len(cur) == 0 {
		return errors.New("procfs: no per-cpu lines in stat")
	}
	s.NumCPU = len(cur)
	s.UtilPerMille = make([]int, s.NumCPU)
	for id, c := range cur {
		if id >= s.NumCPU {
			continue
		}
		p, ok := prev[id]
		if ok && c.total > p.total {
			s.UtilPerMille[id] = int((c.busy - p.busy) * 1000 / (c.total - p.total))
			if s.UtilPerMille[id] > 1000 {
				s.UtilPerMille[id] = 1000
			}
		}
		prev[id] = c
	}
	return nil
}

// readLoadavg opens /proc/loadavg and delegates to parseLoadavg.
func (l *Linux) readLoadavg(s *Snapshot) error {
	f, err := l.open("loadavg")
	if err != nil {
		return err
	}
	defer f.Close()
	return parseLoadavg(f, s)
}

// parseLoadavg parses a /proc/loadavg stream for the task counts
// ("0.1 0.2 0.3 R/T lastpid"). A missing or malformed R/T fraction is
// an error: silently reporting zero tasks would tell the dispatcher
// the machine is idle, which is worse than no record at all.
func parseLoadavg(r io.Reader, s *Snapshot) error {
	var a, b, c, frac string
	if _, err := fmt.Fscan(r, &a, &b, &c, &frac); err != nil {
		return fmt.Errorf("procfs: short loadavg: %w", err)
	}
	parts := strings.SplitN(frac, "/", 2)
	if len(parts) != 2 {
		return fmt.Errorf("procfs: malformed loadavg field %q", frac)
	}
	run, err := strconv.Atoi(parts[0])
	if err != nil {
		return fmt.Errorf("procfs: malformed loadavg field %q", frac)
	}
	tasks, err := strconv.Atoi(parts[1])
	if err != nil {
		return fmt.Errorf("procfs: malformed loadavg field %q", frac)
	}
	if s.NrRunning == 0 {
		s.NrRunning = run
	}
	s.NrTasks = tasks
	return nil
}

// readMeminfo opens /proc/meminfo and delegates to parseMeminfo.
func (l *Linux) readMeminfo(s *Snapshot) error {
	f, err := l.open("meminfo")
	if err != nil {
		return err
	}
	defer f.Close()
	return parseMeminfo(f, s)
}

// parseMeminfo parses a /proc/meminfo stream (kB units). Input without
// a MemTotal line is an error — a record with zero total memory would
// make every memory-weighted load index divide garbage downstream.
func parseMeminfo(r io.Reader, s *Snapshot) error {
	sc := bufio.NewScanner(r)
	var total, avail, free uint64
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 2 {
			continue
		}
		v, err := strconv.ParseUint(fields[1], 10, 64)
		if err != nil {
			continue
		}
		switch fields[0] {
		case "MemTotal:":
			total = v
		case "MemAvailable:":
			avail = v
		case "MemFree:":
			free = v
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if total == 0 {
		return errors.New("procfs: meminfo has no MemTotal")
	}
	if avail == 0 {
		avail = free
	}
	s.MemTotalKB = total
	if total >= avail {
		s.MemUsedKB = total - avail
	}
	return nil
}

// readNetDev opens /proc/net/dev and delegates to parseNetDev.
func (l *Linux) readNetDev(s *Snapshot) error {
	f, err := l.open("net/dev")
	if err != nil {
		return err
	}
	defer f.Close()
	return parseNetDev(f, s)
}

// parseNetDev parses a /proc/net/dev stream, summing non-loopback
// interfaces. It stays lenient — network counters are optional — but
// must never panic on junk.
func parseNetDev(r io.Reader, s *Snapshot) error {
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := sc.Text()
		idx := strings.Index(line, ":")
		if idx < 0 {
			continue
		}
		name := strings.TrimSpace(line[:idx])
		if name == "lo" {
			continue
		}
		fields := strings.Fields(line[idx+1:])
		if len(fields) < 9 {
			continue
		}
		rx, _ := strconv.ParseUint(fields[0], 10, 64)
		tx, _ := strconv.ParseUint(fields[8], 10, 64)
		s.NetRxBytes += rx
		s.NetTxBytes += tx
	}
	return sc.Err()
}

// Synthetic is a programmable provider for tests and non-Linux hosts.
// It is safe for concurrent use.
type Synthetic struct {
	mu sync.Mutex
	S  Snapshot
	// Err, if set, is returned by Snapshot.
	Err error
	// Tick, if set, mutates the snapshot before each return.
	Tick func(*Snapshot)
}

// Snapshot implements Provider.
func (p *Synthetic) Snapshot() (Snapshot, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.Err != nil {
		return Snapshot{}, p.Err
	}
	if p.Tick != nil {
		p.Tick(&p.S)
	}
	p.S.TimeNS = time.Now().UnixNano()
	return p.S, nil
}

// Set replaces the synthetic state.
func (p *Synthetic) Set(s Snapshot) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.S = s
}
