package procfs

import (
	"strings"
	"testing"
)

// FuzzProcfsParsers drives every /proc parser with arbitrary bytes.
// The contract under fuzz: malformed input may error, must never
// panic, and must never produce out-of-range state (negative CPU
// indexes once took parseStat out of bounds).
func FuzzProcfsParsers(f *testing.F) {
	f.Add("cpu  100 0 100 800 0 0 0 0 0 0\ncpu0 100 0 100 800 0 0 0 0 0 0\nintr 500 1 2\nctxt 900\nprocs_running 3\n")
	f.Add("0.50 0.40 0.30 3/123 4567\n")
	f.Add("MemTotal:       1048576 kB\nMemFree:         524288 kB\nMemAvailable:    786432 kB\n")
	f.Add("Inter-|   Receive\n face |bytes\n  eth0: 1000 1 0 0 0 0 0 0 2000 2 0 0 0 0 0 0\n")
	f.Add("cpu-1 1 2 3 4\ncpu99999 1 2 3 4\n")
	f.Add("0.1 0.2 0.3 x/y 99\n")
	f.Add("MemFree: 10 kB\n")
	f.Add(" : \n:\neth0:\n")
	f.Fuzz(func(t *testing.T, input string) {
		var s Snapshot
		prev := map[int]cpuTimes{0: {busy: 50, total: 100}}
		if err := parseStat(strings.NewReader(input), &s, prev); err == nil {
			for _, u := range s.UtilPerMille {
				if u < 0 || u > 1000 {
					t.Fatalf("utilisation %d out of range", u)
				}
			}
		}
		var s2 Snapshot
		_ = parseLoadavg(strings.NewReader(input), &s2)
		var s3 Snapshot
		_ = parseMeminfo(strings.NewReader(input), &s3)
		var s4 Snapshot
		_ = parseNetDev(strings.NewReader(input), &s4)
	})
}

// TestParsersRejectMalformed pins the stricter error contracts: junk
// errors out instead of yielding a confidently wrong snapshot.
func TestParsersRejectMalformed(t *testing.T) {
	cases := []struct {
		name  string
		parse func(string) error
		in    string
	}{
		{"stat no cpu lines", func(in string) error {
			var s Snapshot
			return parseStat(strings.NewReader(in), &s, map[int]cpuTimes{})
		}, "intr 5\nctxt 9\n"},
		{"loadavg empty", func(in string) error {
			var s Snapshot
			return parseLoadavg(strings.NewReader(in), &s)
		}, ""},
		{"loadavg short", func(in string) error {
			var s Snapshot
			return parseLoadavg(strings.NewReader(in), &s)
		}, "0.1 0.2\n"},
		{"loadavg bad fraction", func(in string) error {
			var s Snapshot
			return parseLoadavg(strings.NewReader(in), &s)
		}, "0.1 0.2 0.3 junk 99\n"},
		{"loadavg non-numeric fraction", func(in string) error {
			var s Snapshot
			return parseLoadavg(strings.NewReader(in), &s)
		}, "0.1 0.2 0.3 a/b 99\n"},
		{"meminfo empty", func(in string) error {
			var s Snapshot
			return parseMeminfo(strings.NewReader(in), &s)
		}, ""},
		{"meminfo no MemTotal", func(in string) error {
			var s Snapshot
			return parseMeminfo(strings.NewReader(in), &s)
		}, "MemFree: 10 kB\n"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := tc.parse(tc.in); err == nil {
				t.Fatalf("want error for %q, got nil", tc.in)
			}
		})
	}
}

// TestParseStatNegativeCPU pins the out-of-bounds regression: a
// "cpu-1" line must be ignored, not crash the parser.
func TestParseStatNegativeCPU(t *testing.T) {
	var s Snapshot
	in := "cpu-1 1 2 3 4\ncpu0 100 0 100 800\n"
	if err := parseStat(strings.NewReader(in), &s, map[int]cpuTimes{}); err != nil {
		t.Fatalf("parseStat: %v", err)
	}
	if s.NumCPU != 1 {
		t.Fatalf("NumCPU = %d, want 1", s.NumCPU)
	}
}
