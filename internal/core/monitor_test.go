package core

import (
	"testing"

	"rdmamon/internal/sim"
	"rdmamon/internal/simos"
)

func TestWeightsForSchemes(t *testing.T) {
	for _, s := range Schemes() {
		w := WeightsFor(s)
		if w.CPU <= 0 || w.Conn <= 0 {
			t.Fatalf("%v weights look unset: %+v", s, w)
		}
		if s == ERDMASync {
			if w.IRQ <= 0 {
				t.Fatal("e-RDMA-Sync must use the IRQ component")
			}
		} else if w.IRQ != 0 {
			t.Fatalf("%v must not use the IRQ component", s)
		}
	}
}

func TestRecordCarriesUtilAndIRQ(t *testing.T) {
	s := simos.Snapshot{NodeID: 2, NumCPU: 2}
	s.UtilPerMille[0] = 700
	s.UtilPerMille[1] = 300
	s.IrqPendingHard[1] = 4
	s.CumIRQ[0] = 10
	s.CumIRQ[1] = 20
	r := RecordFromSnapshot(s, 1)
	if r.UtilMean() != 500 {
		t.Fatalf("util mean = %d", r.UtilMean())
	}
	if r.PendingIRQTotal() != 4 {
		t.Fatalf("pending = %d", r.PendingIRQTotal())
	}
	if r.CumIRQ != 30 {
		t.Fatalf("cum irq = %d", r.CumIRQ)
	}
}

func TestProbeLatencyIncludesDecode(t *testing.T) {
	r := newRig(32)
	a := r.agent(RDMASync)
	p := StartProber(r.front, r.fnic, a, 10*sim.Millisecond)
	r.eng.RunUntil(200 * sim.Millisecond)
	if p.Latency.Min() < 15 {
		t.Fatalf("min latency %vus implausibly small", p.Latency.Min())
	}
}

func TestAgentSchemesExposeRKeyOnlyForRDMA(t *testing.T) {
	for _, s := range Schemes() {
		r := newRig(33 + int64(s))
		a := r.agent(s)
		if s.UsesRDMA() && a.RKey() == 0 {
			t.Fatalf("%v should expose an rkey", s)
		}
		if !s.UsesRDMA() && a.RKey() != 0 {
			t.Fatalf("%v should not expose an rkey", s)
		}
	}
}
