package core

import (
	"testing"

	"rdmamon/internal/sim"
	"rdmamon/internal/simnet"
	"rdmamon/internal/simos"
	"rdmamon/internal/wire"
)

func leaseCfg() LeaseConfig {
	// poll=50ms defaults: CheckEvery=100ms, TTL=300ms, TakeoverAfter=500ms.
	return LeaseConfig{}.WithDefaults(DefaultInterval)
}

func TestLeaseConfigDefaultsEnforceSafetyMargin(t *testing.T) {
	c := leaseCfg()
	if c.TakeoverAfter <= c.TTL {
		t.Fatalf("TakeoverAfter %v must exceed TTL %v", c.TakeoverAfter, c.TTL)
	}
	// An unsafe explicit config is repaired, not honored.
	bad := LeaseConfig{TTL: 10 * sim.Second, TakeoverAfter: sim.Second, CheckEvery: sim.Second}.WithDefaults(0)
	if bad.TakeoverAfter < bad.TTL+2*bad.CheckEvery {
		t.Fatalf("sanitizer kept unsafe TakeoverAfter %v for TTL %v", bad.TakeoverAfter, bad.TTL)
	}
}

// TestLeaseMachine drives the pure state machine through the
// protocol's step outcomes and checks role, epoch, validity and
// counters after each step.
func TestLeaseMachine(t *testing.T) {
	cfg := leaseCfg()
	type step struct {
		name string
		at   sim.Time
		do   func(l *Lease, at sim.Time) // one protocol outcome
		role LeaseRole
		// wantValidAt / wantInvalidAt probe Valid() at specific times.
		validAt   sim.Time
		invalidAt sim.Time
		epoch     uint16
	}
	observe := func(word uint64, wantBid bool) func(*Lease, sim.Time) {
		return func(l *Lease, at sim.Time) {
			if got := l.Observe(word, at); got != wantBid {
				t.Fatalf("Observe(%#x, %v) = %v, want %v", word, at, got, wantBid)
			}
		}
	}
	steps := []step{
		{
			name: "vacant word invites an immediate bid",
			at:   0,
			do:   observe(wire.LeaseVacant, true),
			role: RoleFollower, invalidAt: 0,
		},
		{
			name: "takeover won: primary of epoch 1, valid for TTL",
			at:   10 * sim.Millisecond,
			do:   func(l *Lease, at sim.Time) { l.TakeoverWon(at) },
			role: RolePrimary, epoch: 1,
			validAt:   10*sim.Millisecond + cfg.TTL - 1,
			invalidAt: 10*sim.Millisecond + cfg.TTL,
		},
		{
			name: "renewal extends validity",
			at:   100 * sim.Millisecond,
			do:   func(l *Lease, at sim.Time) { l.RenewWon(at) },
			role: RolePrimary, epoch: 1,
			validAt:   100*sim.Millisecond + cfg.TTL - 1,
			invalidAt: 100*sim.Millisecond + cfg.TTL,
		},
		{
			name: "expiry without renewal: still primary, but fenced by Valid",
			at:   100*sim.Millisecond + cfg.TTL,
			do:   func(l *Lease, at sim.Time) {},
			role: RolePrimary, epoch: 1,
			invalidAt: 100*sim.Millisecond + cfg.TTL,
		},
		{
			name: "late renewal with no interloper revalidates",
			at:   sim.Second,
			do:   func(l *Lease, at sim.Time) { l.RenewWon(at) },
			role: RolePrimary, epoch: 1,
			validAt: sim.Second + cfg.TTL/2,
		},
		{
			name: "renewal lost: deposed immediately (fencing)",
			at:   sim.Second + 100*sim.Millisecond,
			do: func(l *Lease, at sim.Time) {
				l.RenewLost(wire.PackLeaseWord(2, 2, 0), at)
			},
			role: RoleFollower, epoch: 1,
			invalidAt: sim.Second + 100*sim.Millisecond,
		},
		{
			name: "held word needs TakeoverAfter of silence before a bid",
			at:   2 * sim.Second,
			do:   observe(wire.PackLeaseWord(2, 2, 5), false),
			role: RoleFollower,
		},
		{
			name: "still quiet but not long enough",
			at:   2*sim.Second + cfg.TakeoverAfter - 1,
			do:   observe(wire.PackLeaseWord(2, 2, 5), false),
			role: RoleFollower,
		},
		{
			name: "a changed word resets patience",
			at:   2*sim.Second + cfg.TakeoverAfter,
			do:   observe(wire.PackLeaseWord(2, 2, 6), false),
			role: RoleFollower,
		},
		{
			name: "unchanged for TakeoverAfter: bid",
			at:   2*sim.Second + 2*cfg.TakeoverAfter,
			do:   observe(wire.PackLeaseWord(2, 2, 6), true),
			role: RoleFollower,
		},
		{
			name: "takeover lost to a racing standby",
			at:   2*sim.Second + 2*cfg.TakeoverAfter + sim.Millisecond,
			do: func(l *Lease, at sim.Time) {
				l.TakeoverLost(wire.PackLeaseWord(3, 3, 0), at)
			},
			role: RoleFollower,
		},
		{
			name: "new holder's word must go quiet again before the next bid",
			at:   2*sim.Second + 2*cfg.TakeoverAfter + 2*sim.Millisecond,
			do:   observe(wire.PackLeaseWord(3, 3, 0), false),
			role: RoleFollower,
		},
		{
			name: "second takeover: epoch continues from the observed word",
			at:   4 * sim.Second,
			do: func(l *Lease, at sim.Time) {
				if !l.Observe(wire.PackLeaseWord(3, 3, 0), at+cfg.TakeoverAfter) {
					t.Fatal("expected bid after silence")
				}
				cmp, swp := l.TakeoverBid()
				if cmp != wire.PackLeaseWord(3, 3, 0) {
					t.Fatalf("takeover compare = %#x", cmp)
				}
				h, e, hb := wire.UnpackLeaseWord(swp)
				if h != l.Me || e != 4 || hb != 0 {
					t.Fatalf("takeover swap = (%d,%d,%d), want (%d,4,0)", h, e, hb, l.Me)
				}
				l.TakeoverWon(at + cfg.TakeoverAfter)
			},
			role: RolePrimary, epoch: 4,
			validAt: 4*sim.Second + cfg.TakeoverAfter + cfg.TTL - 1,
		},
	}

	l := NewLease(1, cfg)
	for _, s := range steps {
		s.do(l, s.at)
		if l.Role() != s.role {
			t.Fatalf("%s: role = %v, want %v", s.name, l.Role(), s.role)
		}
		if s.epoch != 0 && l.Epoch() != s.epoch {
			t.Fatalf("%s: epoch = %d, want %d", s.name, l.Epoch(), s.epoch)
		}
		if s.validAt != 0 && !l.Valid(s.validAt) {
			t.Fatalf("%s: Valid(%v) = false, want true", s.name, s.validAt)
		}
		if s.invalidAt != 0 && l.Valid(s.invalidAt) {
			t.Fatalf("%s: Valid(%v) = true, want false", s.name, s.invalidAt)
		}
	}
	if l.Takeovers != 2 || l.Renewals != 2 || l.Deposals != 1 {
		t.Fatalf("counters takeovers=%d renewals=%d deposals=%d, want 2/2/1",
			l.Takeovers, l.Renewals, l.Deposals)
	}
}

func TestLeaseRenewBidOperands(t *testing.T) {
	l := NewLease(2, leaseCfg())
	l.Observe(wire.LeaseVacant, 0)
	l.TakeoverWon(0)
	cmp, swp := l.RenewBid()
	if cmp != wire.PackLeaseWord(2, 1, 0) || swp != wire.PackLeaseWord(2, 1, 1) {
		t.Fatalf("renew bid = (%#x, %#x)", cmp, swp)
	}
	l.RenewWon(sim.Millisecond)
	cmp, swp = l.RenewBid()
	if cmp != wire.PackLeaseWord(2, 1, 1) || swp != wire.PackLeaseWord(2, 1, 2) {
		t.Fatalf("renew bid after renewal = (%#x, %#x)", cmp, swp)
	}
}

// leaseRig wires replicas and a witness over a real fabric.
type leaseRig struct {
	eng     *sim.Engine
	fab     *simnet.Fabric
	witness *simos.Node
	vault   *LeaseVault
	mgrs    []*LeaseManager
	nodes   []*simos.Node
}

func newLeaseRig(t *testing.T, replicas int, cfg LeaseConfig) *leaseRig {
	t.Helper()
	r := &leaseRig{eng: sim.NewEngine(7)}
	r.fab = simnet.NewFabric(r.eng, simnet.Defaults())
	wn := simos.NewNode(r.eng, 100, simos.NodeDefaults())
	wnic := r.fab.Attach(wn)
	r.witness = wn
	r.vault = NewLeaseVault(wnic)
	for i := 0; i < replicas; i++ {
		n := simos.NewNode(r.eng, i+1, simos.NodeDefaults())
		nic := r.fab.Attach(n)
		r.nodes = append(r.nodes, n)
		r.mgrs = append(r.mgrs, StartLeaseManager(n, nic, 100,
			r.vault.WordMR.Key(), r.vault.RecMR.Key(), uint16(i+1), cfg))
	}
	return r
}

// TestLeaseManagerAcquireRenewHandoff runs two replicas end to end:
// one acquires, holds through renewals, then crashes; the other takes
// over within TakeoverAfter plus a few check cycles, and the thawed
// original is fenced on its first renewal.
func TestLeaseManagerAcquireRenewHandoff(t *testing.T) {
	cfg := leaseCfg()
	r := newLeaseRig(t, 2, cfg)
	r.eng.RunFor(sim.Second)

	var primary, standby int
	switch {
	case r.mgrs[0].Lease.Role() == RolePrimary && r.mgrs[1].Lease.Role() == RoleFollower:
		primary, standby = 0, 1
	case r.mgrs[1].Lease.Role() == RolePrimary && r.mgrs[0].Lease.Role() == RoleFollower:
		primary, standby = 1, 0
	default:
		t.Fatalf("want exactly one primary: %v / %v", r.mgrs[0].Lease, r.mgrs[1].Lease)
	}
	if r.mgrs[primary].Lease.Renewals == 0 {
		t.Fatal("primary never renewed")
	}
	if !r.mgrs[primary].Lease.Valid(r.eng.Now()) {
		t.Fatal("steady-state primary must be valid")
	}
	rec, err := r.vault.Record()
	if err != nil {
		t.Fatalf("lease record: %v", err)
	}
	if rec.Holder != r.mgrs[primary].Lease.Me || rec.Epoch != r.mgrs[primary].Lease.Epoch() {
		t.Fatalf("published record %v does not match primary %v", rec, r.mgrs[primary].Lease)
	}

	// Freeze the primary's host: renewals stop, validity lapses, the
	// standby seizes a new epoch within TakeoverAfter + a few checks.
	frozeAt := r.eng.Now()
	r.nodes[primary].Freeze()
	r.eng.RunFor(cfg.TakeoverAfter + 4*cfg.CheckEvery)
	if r.mgrs[standby].Lease.Role() != RolePrimary {
		t.Fatalf("standby did not take over: %v", r.mgrs[standby].Lease)
	}
	if got := r.mgrs[standby].Lease.Epoch(); got != 2 {
		t.Fatalf("takeover epoch = %d, want 2", got)
	}
	// The frozen primary's validity lapsed before the new epoch began.
	if r.mgrs[primary].Lease.ValidUntil() > frozeAt+cfg.TTL {
		t.Fatal("frozen primary's validity extended impossibly")
	}

	// Thaw the old primary: its next renewal CAS fails (epoch moved)
	// and it must step down — the fencing path.
	r.nodes[primary].Thaw()
	r.eng.RunFor(4 * cfg.CheckEvery)
	if r.mgrs[primary].Lease.Role() != RoleFollower {
		t.Fatalf("thawed ex-primary not deposed: %v", r.mgrs[primary].Lease)
	}
	if r.mgrs[primary].Lease.Deposals != 1 {
		t.Fatalf("deposals = %d, want 1", r.mgrs[primary].Lease.Deposals)
	}
	if r.mgrs[primary].Lease.Valid(r.eng.Now()) {
		t.Fatal("deposed replica must not be valid")
	}
}

// TestLeaseManagerWitnessPartition cuts the primary off from the
// witness: its validity lapses (so it stops dispatching) but it keeps
// bidding; with the standby also partitioned no epoch changes, and on
// heal the primary revalidates under the same epoch.
func TestLeaseManagerWitnessPartition(t *testing.T) {
	cfg := leaseCfg()
	r := newLeaseRig(t, 2, cfg)
	r.eng.RunFor(sim.Second)
	var pm *LeaseManager
	for _, m := range r.mgrs {
		if m.Lease.Role() == RolePrimary {
			pm = m
		}
	}
	if pm == nil {
		t.Fatal("no primary")
	}
	epoch := pm.Lease.Epoch()

	// Partition everyone from the witness.
	r.fab.SetFaults(partitionAll{})
	r.eng.RunFor(2 * cfg.TakeoverAfter)
	if pm.Lease.Valid(r.eng.Now()) {
		t.Fatal("partitioned primary must not remain valid")
	}
	if pm.CASErrors == 0 {
		t.Fatal("renewal attempts should be failing")
	}

	r.fab.SetFaults(nil)
	r.eng.RunFor(4 * cfg.CheckEvery)
	if !pm.Lease.Valid(r.eng.Now()) {
		t.Fatal("healed primary should revalidate")
	}
	if pm.Lease.Epoch() != epoch {
		t.Fatalf("epoch moved across a full partition: %d -> %d", epoch, pm.Lease.Epoch())
	}
}

// partitionAll fails every RDMA operation (and delivers channel sends
// normally, which the lease path does not use).
type partitionAll struct{}

func (partitionAll) Channel(from, to, size int) simnet.ChannelVerdict {
	return simnet.ChannelVerdict{}
}
func (partitionAll) RDMA(from, to int) simnet.RDMAVerdict {
	return simnet.RDMAVerdict{Fail: true}
}
