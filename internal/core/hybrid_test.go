package core

import (
	"fmt"
	"sync"
	"testing"
	"testing/quick"

	"rdmamon/internal/sim"
	"rdmamon/internal/simos"
	"rdmamon/internal/wire"
)

// startBusy spins CPU-bound compute loops on a node, so its load index
// visibly moves.
func startBusy(n *simos.Node, threads int, batch sim.Time) {
	for i := 0; i < threads; i++ {
		n.Spawn(fmt.Sprintf("busy-%d", i), func(tk *simos.Task) {
			var loop func()
			loop = func() { tk.Compute(batch, loop) }
			loop()
		})
	}
}

// healthFrom maps an arbitrary byte onto a health state, for property
// inputs.
func healthFrom(b uint8) Health {
	return Health(int(b) % 5)
}

// TestPeriodControllerBounds: whatever observation sequence the
// controller sees, the period stays within [Min, Max].
func TestPeriodControllerBounds(t *testing.T) {
	cfg := PeriodConfig{Min: 10 * sim.Millisecond, Max: 160 * sim.Millisecond, Grow: 2}
	f := func(changes []bool, healths []uint8, leases []bool) bool {
		pc := &PeriodController{Cfg: cfg}
		if pc.Period() != cfg.Min {
			return false
		}
		n := len(changes)
		if len(healths) < n {
			n = len(healths)
		}
		if len(leases) < n {
			n = len(leases)
		}
		for i := 0; i < n; i++ {
			p := pc.Observe(changes[i], healthFrom(healths[i]), leases[i])
			if p < cfg.Min || p > cfg.Max || p != pc.Period() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestPeriodControllerMonotoneInChangeRate: a controller that observes
// every change another one does, plus possibly more, never polls
// slower than it — pointwise, at every step.
func TestPeriodControllerMonotoneInChangeRate(t *testing.T) {
	cfg := PeriodConfig{Min: 10 * sim.Millisecond, Max: 320 * sim.Millisecond, Grow: 2}
	f := func(base []bool, extra []bool) bool {
		quiet := &PeriodController{Cfg: cfg}
		busy := &PeriodController{Cfg: cfg}
		n := len(base)
		if len(extra) < n {
			n = len(extra)
		}
		for i := 0; i < n; i++ {
			pq := quiet.Observe(base[i], Healthy, true)
			pb := busy.Observe(base[i] || extra[i], Healthy, true)
			if pb > pq {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestPeriodControllerSnapsOnTrouble: from any warmed-up state, a
// single observation carrying a trouble signal — non-Healthy state or
// a lost lease — forces the fast period immediately.
func TestPeriodControllerSnapsOnTrouble(t *testing.T) {
	cfg := PeriodConfig{Min: 10 * sim.Millisecond, Max: 160 * sim.Millisecond, Grow: 2}
	f := func(warmup []bool, kind uint8) bool {
		pc := &PeriodController{Cfg: cfg}
		for _, ch := range warmup {
			pc.Observe(ch, Healthy, true)
		}
		var p sim.Time
		switch kind % 3 {
		case 0:
			p = pc.Observe(false, Suspect, true)
		case 1:
			p = pc.Observe(false, Degraded, true)
		default:
			p = pc.Observe(false, Healthy, false) // lease lost
		}
		return p == cfg.Min
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestPeriodControllerDecaySchedule pins the deterministic decay path:
// quiet Healthy leased observations double the period up to Max, and
// one change snaps it back.
func TestPeriodControllerDecaySchedule(t *testing.T) {
	cfg := PeriodConfig{Min: 10 * sim.Millisecond, Max: 80 * sim.Millisecond, Grow: 2}
	pc := &PeriodController{Cfg: cfg}
	want := []sim.Time{20, 40, 80, 80, 80}
	for i, w := range want {
		if got := pc.Observe(false, Healthy, true); got != w*sim.Millisecond {
			t.Fatalf("step %d: period = %v, want %v", i, got, w*sim.Millisecond)
		}
	}
	if got := pc.Observe(true, Healthy, true); got != cfg.Min {
		t.Fatalf("after change: period = %v, want %v", got, cfg.Min)
	}
}

func TestHybridConfigDefaults(t *testing.T) {
	h := HybridConfig{}.WithDefaults(10 * sim.Millisecond)
	if h.Threshold != 0.05 {
		t.Fatalf("threshold = %v", h.Threshold)
	}
	if h.Period.Min != 10*sim.Millisecond || h.Period.Max != 160*sim.Millisecond {
		t.Fatalf("period = %+v", h.Period)
	}
	if h.Heartbeat != h.Period.Max || h.Check != h.Period.Min {
		t.Fatalf("heartbeat/check = %v/%v", h.Heartbeat, h.Check)
	}
}

func TestLoadDeltaSymmetricZero(t *testing.T) {
	a := wire.LoadRecord{NumCPU: 2, NrRunning: 4, Conns: 10, MemUsedKB: 1 << 18, MemTotalKB: 1 << 20}
	a.UtilPerMille[0] = 700
	b := a
	b.Seq = 99
	b.KTimeNS = 5e9
	if LoadDelta(a, b) != 0 {
		t.Fatal("seq/ktime must not move the delta")
	}
	b.UtilPerMille[0] = 100
	b.UtilPerMille[1] = 100
	if d1, d2 := LoadDelta(a, b), LoadDelta(b, a); d1 != d2 || d1 <= 0 {
		t.Fatalf("delta not symmetric positive: %v vs %v", d1, d2)
	}
}

// hybridCfg is the hybrid tuning the monitor tests share: fast sweep
// 10ms, ceiling 160ms.
func hybridCfg() *HybridConfig {
	return &HybridConfig{
		Threshold: 0.05,
		Period:    PeriodConfig{Min: 10 * sim.Millisecond, Max: 160 * sim.Millisecond, Grow: 2},
		Heartbeat: 320 * sim.Millisecond,
		Check:     10 * sim.Millisecond,
	}
}

// TestHybridMonitorDecaysQuietBackend: an idle back-end's poll period
// decays to the ceiling and probe reads drop well below the all-pull
// budget, while the cached record stays available.
func TestHybridMonitorDecaysQuietBackend(t *testing.T) {
	r := newRig(31)
	a := r.agent(RDMASync)
	m := StartMonitorCfg(r.front, r.fnic, []*Agent{a}, 10*sim.Millisecond,
		MonitorConfig{Hybrid: hybridCfg()})
	r.eng.RunUntil(2 * sim.Second)
	if m.ProbePeriod(1) != 160*sim.Millisecond {
		t.Fatalf("period = %v, want decayed to 160ms", m.ProbePeriod(1))
	}
	if m.Decayed == 0 {
		t.Fatal("no probe slots were skipped")
	}
	// All-pull would issue ~200 reads in 2s at 10ms; the decayed
	// schedule issues ~2s/160ms plus the decay transient.
	if reads := r.fnic.RDMAReads; reads >= 60 || reads < 5 {
		t.Fatalf("probe reads = %d, want a small fraction of 200", reads)
	}
	if _, _, ok := m.Latest(1); !ok {
		t.Fatal("no cached record")
	}
}

// TestHybridPushRefreshesCacheAndSnapsPeriod: a quiet back-end decays;
// when its load moves, the delta pusher lands a record (without
// waiting for the decayed poll) and the poll period snaps back to the
// fast sweep.
func TestHybridPushRefreshesCacheAndSnapsPeriod(t *testing.T) {
	r := newRig(32)
	a := r.agent(RDMASync)
	h := hybridCfg()
	m := StartMonitorCfg(r.front, r.fnic, []*Agent{a}, 10*sim.Millisecond,
		MonitorConfig{Hybrid: h})
	p := StartDeltaPusher(r.backend, r.bnic, 0, func() uint32 { return m.Sink.SlotKey(1) }, *h)

	r.eng.RunUntil(1500 * sim.Millisecond)
	if m.ProbePeriod(1) != h.Period.Max {
		t.Fatalf("pre-change period = %v, want %v", m.ProbePeriod(1), h.Period.Max)
	}
	preReceived := m.Sink.Received

	var sawPush bool
	mp := m.Probers[1]
	mp.OnRecord = func(rec wire.LoadRecord, at sim.Time) {
		if mp.LastTransport == TransportPush {
			sawPush = true
		}
	}
	startBusy(r.backend, 6, 5*sim.Millisecond)
	// The period snaps to Min when the delta push lands, then may decay
	// again once the (now high) load stabilises — sample the minimum.
	minPeriod := m.ProbePeriod(1)
	for i := 0; i < 12; i++ {
		r.eng.RunFor(5 * sim.Millisecond)
		if p := m.ProbePeriod(1); p < minPeriod {
			minPeriod = p
		}
	}

	if m.Sink.Received <= preReceived {
		t.Fatalf("no delta push landed after load change (rx %d -> %d)",
			preReceived, m.Sink.Received)
	}
	if !sawPush {
		t.Fatal("cache was never refreshed via the push transport")
	}
	if minPeriod != h.Period.Min {
		t.Fatalf("post-change period bottomed at %v, want snapped to %v", minPeriod, h.Period.Min)
	}
	if m.Sink.Torn != 0 {
		t.Fatalf("torn pushes: %d", m.Sink.Torn)
	}
	if p.Errors != 0 {
		t.Fatalf("push errors: %d", p.Errors)
	}
	rec, _, ok := m.Latest(1)
	if !ok || rec.NrRunning == 0 {
		t.Fatalf("cached record missed the load change: %+v ok=%v", rec, ok)
	}
}

// TestHybridHeartbeatDoesNotSnapPeriod: heartbeat pushes (quiet, just
// proving freshness) refresh the cache but let the period keep
// decaying — only real index movement snaps it.
func TestHybridHeartbeatDoesNotSnapPeriod(t *testing.T) {
	r := newRig(33)
	a := r.agent(RDMASync)
	h := hybridCfg()
	h.Heartbeat = 100 * sim.Millisecond
	m := StartMonitorCfg(r.front, r.fnic, []*Agent{a}, 10*sim.Millisecond,
		MonitorConfig{Hybrid: h})
	StartDeltaPusher(r.backend, r.bnic, 0, func() uint32 { return m.Sink.SlotKey(1) }, *h)
	r.eng.RunUntil(2 * sim.Second)
	if m.Sink.Received < 10 {
		t.Fatalf("heartbeat pushes = %d, want ~20", m.Sink.Received)
	}
	if m.ProbePeriod(1) != h.Period.Max {
		t.Fatalf("period = %v, want decayed to %v despite heartbeats",
			m.ProbePeriod(1), h.Period.Max)
	}
	// The cache must be heartbeat-fresh, far newer than the decayed
	// poll alone would keep it.
	_, at, ok := m.Latest(1)
	if !ok || r.eng.Now()-at > h.Heartbeat+20*sim.Millisecond {
		t.Fatalf("cache age %v exceeds heartbeat bound", r.eng.Now()-at)
	}
}

// TestHybridCrashDetectionKeepsFastSweep: probe failures count as
// change, so a dead back-end is re-probed at the fast period and the
// health machine condemns it as quickly as under all-pull.
func TestHybridCrashDetectionKeepsFastSweep(t *testing.T) {
	r := newRig(34)
	a := r.agent(RDMASync)
	m := StartMonitorCfg(r.front, r.fnic, []*Agent{a}, 10*sim.Millisecond,
		MonitorConfig{Hybrid: hybridCfg()})
	m.SetProbeTimeout(10 * sim.Millisecond)
	r.eng.RunUntil(1500 * sim.Millisecond) // decay to the ceiling
	if m.ProbePeriod(1) != 160*sim.Millisecond {
		t.Fatalf("period = %v, want decayed", m.ProbePeriod(1))
	}
	r.backend.Crash()
	a.Stop()
	r.eng.RunFor(400 * sim.Millisecond)
	if got := m.Health(1); got != Quarantined {
		t.Fatalf("health = %v, want quarantined", got)
	}
	if m.ProbePeriod(1) != 10*sim.Millisecond {
		t.Fatalf("period = %v, want snapped to fast sweep", m.ProbePeriod(1))
	}
}

// TestHybridSlotInvalidationRepins: invalidating the aggregation slot
// fails in-flight pushes; after the repin delay a fresh key appears
// and pushes resume, exactly like the pull path's MR invalidation.
func TestHybridSlotInvalidationRepins(t *testing.T) {
	r := newRig(35)
	a := r.agent(RDMASync)
	h := hybridCfg()
	h.Heartbeat = 40 * sim.Millisecond // frequent pushes, quickly exercised
	m := StartMonitorCfg(r.front, r.fnic, []*Agent{a}, 10*sim.Millisecond,
		MonitorConfig{Hybrid: h})
	p := StartDeltaPusher(r.backend, r.bnic, 0, func() uint32 { return m.Sink.SlotKey(1) }, *h)
	r.eng.RunUntil(500 * sim.Millisecond)
	if m.Sink.SlotKey(1) == 0 {
		t.Fatal("no slot key")
	}
	m.Sink.InvalidateSlot(1, 100*sim.Millisecond)
	if m.Sink.SlotKey(1) != 0 {
		t.Fatal("slot key survived invalidation")
	}
	r.eng.RunFor(50 * sim.Millisecond)
	errsMid := p.Errors
	if errsMid == 0 {
		t.Fatal("pushes kept succeeding against an invalidated slot")
	}
	pre := m.Sink.Received
	r.eng.RunFor(300 * sim.Millisecond)
	if m.Sink.SlotKey(1) == 0 {
		t.Fatal("slot never re-pinned")
	}
	if m.Sink.Received <= pre {
		t.Fatal("pushes never resumed after re-pin")
	}
}

// TestHybridStalePushDropped: replayed or out-of-order push records
// must never move the cache backwards.
func TestHybridStalePushDropped(t *testing.T) {
	r := newRig(36)
	a := r.agent(RDMASync)
	h := hybridCfg()
	m := StartMonitorCfg(r.front, r.fnic, []*Agent{a}, 10*sim.Millisecond,
		MonitorConfig{Hybrid: h})
	r.eng.RunUntil(100 * sim.Millisecond)

	fresh := wire.PushRecord{PushSeq: 10, PushedNS: int64(r.eng.Now()),
		Load: RecordFromSnapshot(r.backend.K.Snapshot(), 50)}
	m.Sink.OnRecord(1, fresh, r.eng.Now())
	rec, _, _ := m.Latest(1)
	if rec.Seq != 50 {
		t.Fatalf("fresh push not applied: seq=%d", rec.Seq)
	}
	stale := fresh
	stale.PushSeq = 9
	stale.Load.Seq = 40
	m.Sink.OnRecord(1, stale, r.eng.Now())
	rec, _, _ = m.Latest(1)
	if rec.Seq != 50 {
		t.Fatalf("stale push replaced the cache: seq=%d", rec.Seq)
	}
	if m.StalePushes == 0 {
		t.Fatal("stale push not counted")
	}
}

// TestPushMonitorLatestRace is the regression test for the Latest/rx
// data race: concurrent readers hammer the cache while the engine
// delivers multicast records on the test goroutine. Run with -race.
func TestPushMonitorLatestRace(t *testing.T) {
	r := newRig(37)
	mon := StartPushMonitor(r.fab, r.front, PushGroup)
	StartPushAgent(r.backend, r.bnic, PushGroup, 5*sim.Millisecond)

	done := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
					mon.Latest(1)
					mon.Stats()
				}
			}
		}()
	}
	r.eng.RunUntil(2 * sim.Second)
	close(done)
	wg.Wait()
	received, torn := mon.Stats()
	if received == 0 || torn != 0 {
		t.Fatalf("received=%d torn=%d", received, torn)
	}
}
