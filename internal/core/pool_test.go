package core

import (
	"testing"

	"rdmamon/internal/connpool"
	"rdmamon/internal/sim"
)

// TestPooledMonitorProbes: with an ample budget the pooled monitor
// dials each back-end once, serves every probe over pooled conns with
// zero errors, and tears down without leaking a conn, QP or fd.
func TestPooledMonitorProbes(t *testing.T) {
	const n = 16
	f := newFleet(51, n, AgentConfig{Scheme: RDMASync})
	m := StartMonitorCfg(f.front, f.fnic, f.agents, 10*sim.Millisecond, MonitorConfig{
		Shards: 2, Batch: 8,
		Pool:     &connpool.Config{MaxConns: 32},
		PoolSeed: 7,
	})
	f.eng.RunUntil(sim.Second)
	if m.Cycles < 50 {
		t.Fatalf("%d cycles in 1s at 10ms poll", m.Cycles)
	}
	s := m.Pool().Stats()
	if s.Dials != n {
		t.Fatalf("dials = %d, want one per back-end (%d)", s.Dials, n)
	}
	if s.Live != n {
		t.Fatalf("live conns = %d, want %d", s.Live, n)
	}
	for _, b := range m.Backends() {
		rec, at, ok := m.Latest(b)
		if !ok || int(rec.NodeID) != b {
			t.Fatalf("backend %d: record missing or misattributed", b)
		}
		if age := f.eng.Now() - at; age > 30*sim.Millisecond {
			t.Fatalf("backend %d record stale by %v", b, age)
		}
		if p := m.Probers[b]; p.Errors != 0 {
			t.Fatalf("backend %d saw %d probe errors", b, p.Errors)
		}
	}
	if m.FenceRejects != 0 || m.PoolSheds != 0 {
		t.Fatalf("fault-free run: fenceRejects=%d sheds=%d, want 0/0", m.FenceRejects, m.PoolSheds)
	}

	m.Stop()
	if got := m.Pool().Stats().Live; got != 0 {
		t.Fatalf("conns leaked after Stop: %d", got)
	}
	if f.fnic.QPsOpen() != 0 || f.fnic.FDsInUse() != 0 {
		t.Fatalf("leaked QPs=%d fds=%d after Stop", f.fnic.QPsOpen(), f.fnic.FDsInUse())
	}
}

// TestPooledMonitorEvictsUnderConnPressure: more back-ends than
// MaxConns — the pool recycles idle conns to cover the fleet, the cap
// is never exceeded, and every back-end still gets fresh records.
func TestPooledMonitorEvictsUnderConnPressure(t *testing.T) {
	const n, maxConns = 24, 6
	f := newFleet(52, n, AgentConfig{Scheme: RDMASync})
	m := StartMonitorCfg(f.front, f.fnic, f.agents, 10*sim.Millisecond, MonitorConfig{
		Pool:     &connpool.Config{MaxConns: maxConns},
		PoolSeed: 7,
	})
	f.eng.RunUntil(sim.Second)
	s := m.Pool().Stats()
	if s.MaxLive > maxConns {
		t.Fatalf("pool exceeded MaxConns: high-water %d > %d", s.MaxLive, maxConns)
	}
	if s.Evictions == 0 {
		t.Fatal("no evictions with 24 back-ends on 6 conns")
	}
	if f.fnic.FDsInUse() > maxConns {
		t.Fatalf("fds in use %d exceed conn budget %d", f.fnic.FDsInUse(), maxConns)
	}
	for _, b := range m.Backends() {
		if _, at, ok := m.Latest(b); !ok || f.eng.Now()-at > 40*sim.Millisecond {
			t.Fatalf("backend %d starved under conn pressure", b)
		}
		if p := m.Probers[b]; p.Errors != 0 {
			t.Fatalf("backend %d saw %d errors", b, p.Errors)
		}
	}
	m.Stop()
	if f.fnic.FDsInUse() != 0 {
		t.Fatalf("fds leaked after Stop: %d", f.fnic.FDsInUse())
	}
}

// TestPooledMonitorFencesListenerResets: repeated listener resets kill
// pooled QPs under the monitor; every affected read is rejected by the
// epoch fence and replayed — record streams stay fresh and error-free,
// and the pool redials instead of serving ghosts.
func TestPooledMonitorFencesListenerResets(t *testing.T) {
	const n = 8
	f := newFleet(53, n, AgentConfig{Scheme: RDMASync})
	m := StartMonitorCfg(f.front, f.fnic, f.agents, 10*sim.Millisecond, MonitorConfig{
		Shards: 1, Batch: 4,
		Pool:     &connpool.Config{MaxConns: 16},
		PoolSeed: 7,
	})
	fab := f.fnic.Fabric()
	// Bounce a rotating victim's listener every 7ms for a second.
	var i int
	tick := f.eng.NewTicker(7*sim.Millisecond, func() {
		fab.ResetListener(1 + i%n)
		i++
	})
	defer tick.Stop()

	f.eng.RunUntil(sim.Second)
	if m.FenceRejects == 0 {
		t.Fatal("listener resets never exercised the epoch fence")
	}
	s := m.Pool().Stats()
	if s.Dials <= uint64(n) {
		t.Fatalf("dials = %d: resets should force redials beyond the initial %d", s.Dials, n)
	}
	for _, b := range m.Backends() {
		if _, at, ok := m.Latest(b); !ok || f.eng.Now()-at > 40*sim.Millisecond {
			t.Fatalf("backend %d records went stale across resets", b)
		}
		if p := m.Probers[b]; p.Errors != 0 {
			t.Fatalf("backend %d saw %d errors: fence must replay, not fail", b, p.Errors)
		}
	}
	m.Stop()
	if f.fnic.QPsOpen() != 0 || f.fnic.FDsInUse() != 0 {
		t.Fatalf("leaked QPs=%d fds=%d", f.fnic.QPsOpen(), f.fnic.FDsInUse())
	}
}

// TestPooledMonitorShedsQuietFirst: a starved conn budget on a hybrid
// monitor sheds probes, but only for quiet back-ends (PoolShedHot
// stays 0) and every back-end still converges within its relaxed
// adaptive period.
func TestPooledMonitorShedsQuietFirst(t *testing.T) {
	const n = 12
	poll := 10 * sim.Millisecond
	f := newFleet(54, n, AgentConfig{Scheme: RDMASync, Interval: poll})
	m := StartMonitorCfg(f.front, f.fnic, f.agents, poll, MonitorConfig{
		Hybrid:   &HybridConfig{},
		Pool:     &connpool.Config{MaxConns: 3},
		PoolSeed: 7,
	})
	f.eng.RunUntil(4 * sim.Second)
	if m.PoolSheds == 0 {
		t.Fatal("12 quiet back-ends on 3 conns never shed")
	}
	if m.PoolShedHot != 0 {
		t.Fatalf("%d hot sheds: budget pressure must land on quiet back-ends", m.PoolShedHot)
	}
	maxAge := 2 * m.cfg.Hybrid.Period.Max
	for _, b := range m.Backends() {
		if _, at, ok := m.Latest(b); !ok || f.eng.Now()-at > maxAge {
			t.Fatalf("backend %d starved: last record %v ago", b, f.eng.Now()-at)
		}
	}
	m.Stop()
}
