package core_test

import (
	"testing"

	"rdmamon/internal/core"
	"rdmamon/internal/sim"
	"rdmamon/internal/simnet"
	"rdmamon/internal/simos"
	"rdmamon/internal/workload"
)

// TestMonitorSequentialCycle verifies the single-monitoring-process
// structure: a slow (loaded) back-end delays the probes of the
// back-ends behind it in the polling cycle — a compounding staleness
// effect unique to the socket schemes.
func TestMonitorSequentialCycle(t *testing.T) {
	build := func(s core.Scheme) (age0 sim.Time, cycles uint64) {
		eng := sim.NewEngine(31)
		fab := simnet.NewFabric(eng, simnet.Defaults())
		front := simos.NewNode(eng, 0, simos.NodeDefaults())
		fnic := fab.Attach(front)
		var agents []*core.Agent
		for i := 1; i <= 3; i++ {
			n := simos.NewNode(eng, i, simos.NodeDefaults())
			nic := fab.Attach(n)
			agents = append(agents, core.StartAgent(n, nic, core.AgentConfig{Scheme: s}))
			if i == 2 {
				// Back-end 2 is heavily loaded with churning workers:
				// its socket probes take milliseconds.
				workload.StartEchoServers(n, nic, 2)
				peer := simos.NewNode(eng, 10+i, simos.NodeDefaults())
				pnic := fab.Attach(peer)
				workload.StartEchoServers(peer, pnic, 2)
				bg := workload.BackgroundDefaults()
				bg.Threads = 12
				bg.Peer = 10 + i
				workload.StartBackground(n, nic, bg)
			}
		}
		m := core.StartMonitor(front, fnic, agents, 20*sim.Millisecond)
		eng.RunUntil(3 * sim.Second)
		_, at, ok := m.Latest(3) // the backend *after* the slow one
		if !ok {
			t.Fatalf("%v: no record for backend 3", s)
		}
		return eng.Now() - at, m.Cycles
	}
	sockAge, sockCycles := build(core.SocketSync)
	rdmaAge, rdmaCycles := build(core.RDMASync)
	if sockCycles >= rdmaCycles {
		t.Errorf("socket cycle should be slower: %d vs %d sweeps", sockCycles, rdmaCycles)
	}
	_ = sockAge
	_ = rdmaAge
}
