package core

import (
	"testing"

	"rdmamon/internal/sim"
	"rdmamon/internal/simnet"
	"rdmamon/internal/simos"
	"rdmamon/internal/wire"
)

// fleet builds a front-end plus n back-end agents on one fabric.
type fleet struct {
	eng    *sim.Engine
	front  *simos.Node
	fnic   *simnet.NIC
	agents []*Agent
}

func newFleet(seed int64, n int, cfg AgentConfig) *fleet {
	eng := sim.NewEngine(seed)
	fab := simnet.NewFabric(eng, simnet.Defaults())
	front := simos.NewNode(eng, 0, simos.NodeDefaults())
	f := &fleet{eng: eng, front: front, fnic: fab.Attach(front)}
	for i := 1; i <= n; i++ {
		nd := simos.NewNode(eng, i, simos.NodeDefaults())
		f.agents = append(f.agents, StartAgent(nd, fab.Attach(nd), cfg))
	}
	return f
}

// TestShardedMonitorRecordsMatchSequential: every back-end's record
// stream under sharding+batching carries that back-end's own node ID
// and stays fresh — batching must never mis-attribute or skip records.
func TestShardedMonitorRecordsMatchSequential(t *testing.T) {
	const n = 16
	for _, cfg := range []MonitorConfig{{}, {Shards: 1, Batch: 4}, {Shards: 4, Batch: 4}, {Shards: 3, Batch: 64}} {
		f := newFleet(41, n, AgentConfig{Scheme: RDMASync})
		m := StartMonitorCfg(f.front, f.fnic, f.agents, 10*sim.Millisecond, cfg)
		f.eng.RunUntil(sim.Second)
		if m.Cycles < 50 {
			t.Fatalf("cfg %+v: %d cycles in 1s at 10ms poll", cfg, m.Cycles)
		}
		for _, b := range m.Backends() {
			rec, at, ok := m.Latest(b)
			if !ok {
				t.Fatalf("cfg %+v: no record for backend %d", cfg, b)
			}
			if int(rec.NodeID) != b {
				t.Fatalf("cfg %+v: backend %d holds a record from node %d", cfg, b, rec.NodeID)
			}
			if age := f.eng.Now() - at; age > 30*sim.Millisecond {
				t.Fatalf("cfg %+v: backend %d record stale by %v", cfg, b, age)
			}
			if p := m.Probers[b]; p.Errors != 0 {
				t.Fatalf("cfg %+v: backend %d saw %d probe errors", cfg, b, p.Errors)
			}
		}
	}
}

// TestShardedMonitorSeqMonotonic: per-backend record sequence numbers
// never regress under the batched engine (the freshness invariant the
// dispatcher relies on).
func TestShardedMonitorSeqMonotonic(t *testing.T) {
	const n = 24
	f := newFleet(42, n, AgentConfig{Scheme: RDMASync})
	m := StartMonitorCfg(f.front, f.fnic, f.agents, 5*sim.Millisecond, MonitorConfig{Shards: 4, Batch: 8})
	lastSeq := make(map[int]uint32)
	obs := 0
	for _, b := range m.Backends() {
		b := b
		m.Probers[b].OnRecord = func(rec wire.LoadRecord, at sim.Time) {
			if rec.Seq < lastSeq[b] {
				t.Errorf("backend %d: seq regressed %d -> %d", b, lastSeq[b], rec.Seq)
			}
			lastSeq[b] = rec.Seq
			obs++
		}
	}
	f.eng.RunUntil(2 * sim.Second)
	if obs < n*100 {
		t.Fatalf("only %d observations", obs)
	}
}

// TestShardedMonitorCycleSpeedup: at many back-ends the batched,
// sharded engine's sweep is at least 4x faster than the sequential
// monitor's — the scaling claim of the probe engine.
func TestShardedMonitorCycleSpeedup(t *testing.T) {
	const n = 64
	run := func(cfg MonitorConfig) float64 {
		f := newFleet(43, n, AgentConfig{Scheme: RDMASync})
		m := StartMonitorCfg(f.front, f.fnic, f.agents, 10*sim.Millisecond, cfg)
		f.eng.RunUntil(sim.Second)
		if m.Cycles == 0 {
			t.Fatalf("cfg %+v: no completed sweeps", cfg)
		}
		return m.CycleTime.Mean()
	}
	seq := run(MonitorConfig{})
	fast := run(MonitorConfig{Shards: 4, Batch: 16})
	if fast*4 > seq {
		t.Fatalf("batched sweep %.0fus not >=4x faster than sequential %.0fus", fast, seq)
	}
}

// TestShardedMonitorFailoverUnderBatch: an MR invalidation inside a
// batched shard degrades only that back-end to the standby socket in
// the same cycle, trips its breaker, and fails back after the re-pin —
// while its batch-mates keep probing over RDMA undisturbed.
func TestShardedMonitorFailoverUnderBatch(t *testing.T) {
	const n = 8
	poll := 10 * sim.Millisecond
	f := newFleet(44, n, AgentConfig{Scheme: RDMASync, StandbySocket: true})
	m := StartMonitorCfg(f.front, f.fnic, f.agents, poll, MonitorConfig{Shards: 2, Batch: 4})
	m.SetProbeTimeout(poll)
	m.ArmFailover(FailoverConfig{})

	f.eng.RunUntil(200 * sim.Millisecond)
	victim := 3
	f.agents[victim-1].InvalidateMR(300 * sim.Millisecond)

	f.eng.RunUntil(290 * sim.Millisecond)
	vp := m.Probers[victim]
	if vp.Errors != 0 {
		t.Fatalf("victim saw %d errors: same-cycle fallback must mask RDMA breakage", vp.Errors)
	}
	if vp.LastTransport != TransportSocket || vp.Fallbacks == 0 {
		t.Fatalf("victim transport=%v fallbacks=%d, want socket-served records", vp.LastTransport, vp.Fallbacks)
	}
	if !vp.Failover.Tripped() {
		t.Fatal("victim breaker not tripped during sustained outage")
	}
	if m.Health(victim) != Degraded {
		t.Fatalf("victim health = %v, want degraded", m.Health(victim))
	}
	for _, b := range m.Backends() {
		if b == victim {
			continue
		}
		p := m.Probers[b]
		if p.Fallbacks != 0 || p.Errors != 0 || m.Health(b) != Healthy {
			t.Fatalf("batch-mate %d disturbed: fallbacks=%d errors=%d health=%v",
				b, p.Fallbacks, p.Errors, m.Health(b))
		}
	}

	// After the re-pin the victim must fail back to RDMA and rejoin the
	// doorbell batches.
	f.eng.RunUntil(2 * sim.Second)
	if vp.Failover.Tripped() || vp.Failover.FailBacks != 1 {
		t.Fatalf("victim did not fail back: tripped=%v failbacks=%d",
			vp.Failover.Tripped(), vp.Failover.FailBacks)
	}
	if vp.LastTransport != TransportRDMA || m.Health(victim) != Healthy {
		t.Fatalf("victim transport=%v health=%v after re-pin", vp.LastTransport, m.Health(victim))
	}
	if _, at, ok := m.Latest(victim); !ok || f.eng.Now()-at > 3*poll {
		t.Fatal("victim records went stale across the outage")
	}
}

// TestMonitorCfgDefaults: degenerate configs normalize instead of
// crashing — zero values, more shards than back-ends.
func TestMonitorCfgDefaults(t *testing.T) {
	f := newFleet(45, 2, AgentConfig{Scheme: RDMASync})
	m := StartMonitorCfg(f.front, f.fnic, f.agents, 10*sim.Millisecond, MonitorConfig{Shards: 16, Batch: -1})
	f.eng.RunUntil(200 * sim.Millisecond)
	if m.Cycles == 0 {
		t.Fatal("over-sharded monitor never completed a sweep")
	}
	for _, b := range m.Backends() {
		if _, _, ok := m.Latest(b); !ok {
			t.Fatalf("no record for backend %d", b)
		}
	}
}
