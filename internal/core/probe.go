package core

import (
	"errors"
	"fmt"

	"rdmamon/internal/connpool"
	"rdmamon/internal/metrics"
	"rdmamon/internal/sim"
	"rdmamon/internal/simnet"
	"rdmamon/internal/simos"
	"rdmamon/internal/wire"
)

// ErrProbeTimeout reports a probe whose reply missed the deadline.
var ErrProbeTimeout = errors.New("core: probe timed out")

// Prober is the front-end half of a monitoring scheme for one back-end
// server: it periodically fetches that server's load record and keeps
// the most recent one for the dispatcher.
type Prober struct {
	Scheme  Scheme
	Backend int

	front *simos.Node
	fnic  *simnet.NIC
	agent *Agent

	replyPort string
	poll      sim.Time
	decode    sim.Time

	last   wire.LoadRecord
	lastAt sim.Time
	has    bool

	// readBuf is the reusable DMA buffer one-sided reads land in: the
	// steady-state sweep posts it over and over instead of allocating a
	// region per probe.
	readBuf []byte
	// view is the caller-owned decode target for history-ring reads.
	view wire.RingView

	// Trend accumulates this back-end's load-index slope from every
	// sample that arrives (ring reads fold whole windows; point probes
	// and pushes fold one sample, de-duplicated by kernel timestamp).
	Trend TrendTracker
	// RingSamples counts history samples folded from ring reads — the
	// observation coverage one-sided reads bought.
	RingSamples uint64
	// TornRetries counts ring snapshots re-read because they caught the
	// writer mid-update (seqlock discipline; benign, bounded).
	TornRetries uint64

	// Timeout bounds one probe; 0 disables the deadline (the seed
	// behaviour, preserved so fault-free experiments are unchanged).
	// On the socket path a probe whose reply misses the deadline
	// finishes with ErrProbeTimeout instead of blocking the cycle
	// forever behind a dead back-end.
	Timeout sim.Time

	// Health tracks this back-end's probe-driven state machine.
	Health HealthTracker

	// Failover, if non-nil, arms the transport breaker for an RDMA
	// scheme: consecutive RDMA failures trip probing onto the agent's
	// standby socket channel, a low-rate background re-arm probe
	// retests the RDMA path, and only consecutive re-arm successes
	// fail back. Requires the agent to serve the socket port (see
	// AgentConfig.StandbySocket) and a non-zero Timeout, or a fallback
	// probe of a dead back-end would block the cycle forever.
	Failover *Failover

	// LastTransport is the transport that served the most recent
	// completed probe (valid inside OnRecord and after ProbeOnce).
	LastTransport Transport
	// Fallbacks counts probes served via the standby socket channel.
	Fallbacks uint64
	// ReArms counts background re-arm RDMA probes issued while tripped.
	ReArms uint64

	// Latency records round-trip probe latency in microseconds.
	Latency metrics.Sample
	// Errors counts failed probes (bad key, torn record, timeout ...).
	Errors int
	// Timeouts counts the subset of Errors that were deadline expiries.
	Timeouts int
	// OnRecord, if set, observes every record as it arrives.
	OnRecord func(rec wire.LoadRecord, at sim.Time)

	task    *simos.Task
	stopped bool
}

// NewProber creates the front-end prober state for agent without a
// polling task; the caller drives it via ProbeOnce (used by Monitor's
// single monitoring process).
func NewProber(front *simos.Node, fnic *simnet.NIC, agent *Agent) *Prober {
	return &Prober{
		Scheme:    agent.Scheme,
		Backend:   agent.node.ID,
		front:     front,
		fnic:      fnic,
		agent:     agent,
		replyPort: fmt.Sprintf("%s-reply-%d", agent.Port(), agent.node.ID),
		decode:    2 * sim.Microsecond,
	}
}

// StartProber creates the front-end prober for agent and begins
// polling every poll with its own task. A non-positive poll uses
// DefaultInterval. Used for single-backend micro-benchmarks; a
// multi-backend front-end should use StartMonitor, which drives all
// probers from one monitoring process as in the paper.
func StartProber(front *simos.Node, fnic *simnet.NIC, agent *Agent, poll sim.Time) *Prober {
	if poll <= 0 {
		poll = DefaultInterval
	}
	p := NewProber(front, fnic, agent)
	p.poll = poll
	p.task = front.Spawn(fmt.Sprintf("rmon-probe-%d", agent.node.ID), func(tk *simos.Task) {
		var loop func()
		loop = func() {
			if p.stopped {
				tk.Exit()
				return
			}
			p.ProbeOnce(tk, func(wire.LoadRecord, error) {
				tk.Sleep(p.poll, loop)
			})
		}
		loop()
	})
	return p
}

// Latest returns the most recent record and its arrival time.
func (p *Prober) Latest() (wire.LoadRecord, sim.Time, bool) {
	return p.last, p.lastAt, p.has
}

// Stop ends the polling loop.
func (p *Prober) Stop() {
	p.stopped = true
	if p.task != nil {
		p.task.Exit()
	}
}

// ProbeOnce fetches one load record in the context of task tk (which
// must run on the front-end node) and delivers it to then. The probe
// path depends on the scheme: a socket request/response round trip
// involving the back-end CPU, or a one-sided RDMA read that does not.
// With an armed Failover, a tripped breaker reroutes RDMA probes onto
// the agent's standby socket channel and schedules background re-arm
// reads of the RDMA path.
func (p *Prober) ProbeOnce(tk *simos.Task, then func(wire.LoadRecord, error)) {
	start := p.front.Eng.Now()
	if !p.Scheme.UsesRDMA() {
		p.probeSocket(tk, func(rec wire.LoadRecord, err error) {
			p.finishProbe(start, rec, err, TransportSocket, then)
		})
		return
	}
	fo := p.Failover
	if fo != nil && fo.Tripped() {
		p.probeTripped(tk, start, then)
		return
	}
	p.probeRDMA(tk, func(rec wire.LoadRecord, err error) {
		p.rdmaOutcome(tk, start, rec, err, then)
	})
}

// finishProbe applies one completed probe's outcome to the prober's
// bookkeeping (record cache, health machine, latency sample) and hands
// it to the caller. start is when the probe — or the doorbell batch
// carrying it — was posted.
func (p *Prober) finishProbe(start sim.Time, rec wire.LoadRecord, err error, tr Transport, then func(wire.LoadRecord, error)) {
	p.LastTransport = tr
	if err == nil {
		p.last = rec
		p.lastAt = p.front.Eng.Now()
		p.has = true
		// Ring reads already folded this window into Trend; the
		// timestamp guard makes this a no-op then.
		p.Trend.ObserveRecord(rec)
		if tr == TransportSocket && p.Scheme.UsesRDMA() {
			p.Health.DegradedOK()
		} else {
			p.Health.OK()
		}
		if p.OnRecord != nil {
			p.OnRecord(rec, p.lastAt)
		}
	} else {
		p.Errors++
		p.Health.Fail()
	}
	p.Latency.Add(float64((p.front.Eng.Now() - start) / sim.Microsecond))
	then(rec, err)
}

// rdmaOutcome resolves the result of an untripped RDMA probe —
// standalone or one slot of a doorbell batch — including the breaker
// accounting and the same-cycle socket fallback.
func (p *Prober) rdmaOutcome(tk *simos.Task, start sim.Time, rec wire.LoadRecord, err error, then func(wire.LoadRecord, error)) {
	fo := p.Failover
	if err == nil {
		if fo != nil {
			fo.PrimaryOK()
		}
		p.finishProbe(start, rec, nil, TransportRDMA, then)
		return
	}
	if fo == nil {
		p.finishProbe(start, wire.LoadRecord{}, err, TransportRDMA, then)
		return
	}
	fo.PrimaryFail()
	// Degrade to the standby for this cycle too: if only the
	// RDMA path is broken (stale rkey, NIC trouble) the record
	// is still one socket round trip away, and the staleness
	// window stays ~one sweep instead of TripAfter sweeps. A
	// genuinely dead back-end fails both paths and the health
	// machine sees a plain failure.
	p.Fallbacks++
	p.probeSocket(tk, func(rec wire.LoadRecord, serr error) {
		if serr == nil {
			p.finishProbe(start, rec, nil, TransportSocket, then)
		} else {
			p.finishProbe(start, wire.LoadRecord{}, err, TransportRDMA, then)
		}
	})
}

// probeTripped carries a probe over the standby socket channel while
// the breaker is tripped, issuing the occasional background re-arm
// read of the RDMA path.
func (p *Prober) probeTripped(tk *simos.Task, start sim.Time, then func(wire.LoadRecord, error)) {
	fo := p.Failover
	p.Fallbacks++
	p.probeSocket(tk, func(rec wire.LoadRecord, err error) {
		if !fo.ShouldReArm() {
			p.finishProbe(start, rec, err, TransportSocket, then)
			return
		}
		// Background re-arm: test the RDMA path without trusting it for
		// data until it has proven itself FailBackAfter times in a row.
		// The re-arm outcome never pollutes this probe's result.
		p.ReArms++
		p.probeRDMA(tk, func(_ wire.LoadRecord, rerr error) {
			if rerr == nil {
				fo.ReArmOK()
			} else {
				fo.ReArmFail()
			}
			p.finishProbe(start, rec, err, TransportSocket, then)
		})
	})
}

// batchEligible reports whether this back-end's next probe can ride a
// doorbell-batched multi-WR post: only one-sided RDMA probes batch,
// and a tripped breaker routes the probe through ProbeOnce's socket
// path (which also owns re-arm scheduling) instead.
func (p *Prober) batchEligible() bool {
	return p.Scheme.UsesRDMA() && (p.Failover == nil || !p.Failover.Tripped())
}

// maxTornRetries bounds the seqlock re-read loop: a ring snapshot that
// keeps tearing this many times in a row is treated as a real error
// rather than spinning against a wedged writer.
const maxTornRetries = 3

// readLen returns the one-sided read size for this back-end: the whole
// history ring when the agent exports one, a single record otherwise.
func (p *Prober) readLen() int {
	if k := p.agent.RingK(); k > 0 {
		return wire.RingSize(k)
	}
	return wire.RecordSize
}

// readInto returns the prober's DMA buffer sized for the next read,
// growing it only when the agent's region grew (re-registration with a
// larger ring).
func (p *Prober) readInto(n int) []byte {
	if cap(p.readBuf) < n {
		p.readBuf = make([]byte, n)
	}
	return p.readBuf[:n]
}

// decodeRead decodes a one-sided read completion in place: a history
// ring (whose fresh samples fold into Trend) or a bare record. No
// allocation either way — ring decoding targets the prober-owned view.
func (p *Prober) decodeRead(data []byte) (wire.LoadRecord, error) {
	if p.agent.RingK() > 0 {
		if err := wire.DecodeRingInto(&p.view, data); err != nil {
			return wire.LoadRecord{}, err
		}
		p.RingSamples += uint64(p.Trend.ObserveRing(&p.view))
		return p.view.Newest(), nil
	}
	var rec wire.LoadRecord
	err := wire.DecodeInto(&rec, data)
	return rec, err
}

// probeRDMA issues the one-sided read path and decodes the record. A
// torn ring snapshot (writer mid-update at the DMA instant) is simply
// re-read — the seqlock contract — up to maxTornRetries times.
func (p *Prober) probeRDMA(tk *simos.Task, then func(wire.LoadRecord, error)) {
	p.probeRDMATry(tk, 0, then)
}

func (p *Prober) probeRDMATry(tk *simos.Task, attempt int, then func(wire.LoadRecord, error)) {
	n := p.readLen()
	p.fnic.RDMAReadInto(tk, p.Backend, p.agent.RKey(), n, p.readInto(n), func(data []byte, err error) {
		if err != nil {
			if err == simnet.ErrTimeout {
				p.Timeouts++
			}
			then(wire.LoadRecord{}, err)
			return
		}
		tk.Compute(p.decode, func() {
			rec, derr := p.decodeRead(data)
			if derr == wire.ErrTorn && attempt < maxTornRetries {
				p.TornRetries++
				p.probeRDMATry(tk, attempt+1, then)
				return
			}
			then(rec, derr)
		})
	})
}

// probeSocket issues the request/response path against the agent's
// report thread and decodes the reply.
func (p *Prober) probeSocket(tk *simos.Task, then func(wire.LoadRecord, error)) {
	rp := p.front.Port(p.replyPort)
	// Flush replies that arrived after a previous probe's deadline, so
	// a late answer is never matched against this probe's request.
	rp.Drain()
	p.fnic.Send(tk, p.Backend, p.agent.Port(), ProbeReqSize, probeReq{ReplyPort: p.replyPort}, func() {
		tk.RecvTimeout(rp, p.Timeout, func(m simos.Message, ok bool) {
			if !ok {
				p.Timeouts++
				then(wire.LoadRecord{}, ErrProbeTimeout)
				return
			}
			tk.Compute(p.decode, func() {
				data, ok := m.Payload.([]byte)
				if !ok {
					then(wire.LoadRecord{}, fmt.Errorf("core: unexpected probe reply %T", m.Payload))
					return
				}
				rec, derr := wire.Decode(data)
				then(rec, derr)
			})
		})
	})
}

// Monitor is the front-end monitoring process of the paper: a single
// task that polls every back-end in sequence each period. The
// sequential cycle matters: with socket schemes a slow (loaded)
// back-end delays the probes of every back-end behind it in the cycle,
// compounding staleness exactly when accuracy is needed most. RDMA
// probes keep the cycle tight regardless of back-end load.
//
// At hundreds of back-ends even a tight sequential cycle serializes
// badly, so the monitor can be sharded and batched (MonitorConfig):
// S shard tasks each sweep their own slice of back-ends, posting
// eligible RDMA probes as doorbell-batched multi-WR reads instead of
// one at a time. Per-backend Failover/Health/lease semantics are
// untouched — batching changes when reads are posted, never how their
// outcomes are applied.
type Monitor struct {
	Scheme  Scheme
	Probers map[int]*Prober
	order   []int
	front   *simos.Node
	fnic    *simnet.NIC
	cfg     MonitorConfig

	// Cycles counts completed polling sweeps. With multiple shards it
	// is the minimum over per-shard sweep counters: "every back-end has
	// been swept at least Cycles times".
	Cycles uint64

	// CycleTime samples per-shard sweep durations in microseconds.
	CycleTime metrics.Sample

	// Sink is the hybrid scheme's aggregation region (nil unless
	// MonitorConfig.Hybrid is set on an RDMA scheme): one writable slot
	// per back-end that agents push delta records into.
	Sink *PushSink
	// LeaseValid, if set, reports whether this monitor currently holds
	// primaryship. A monitor without the lease never decays a poll
	// period — a standby keeps the fast sweep so its view is warm at
	// takeover. nil means "always held" (unleased deployments).
	LeaseValid func() bool

	// Decayed counts probe slots skipped because the back-end's
	// adaptive period had not elapsed — the work requests the hybrid
	// scheme saved.
	Decayed uint64
	// StalePushes counts pushed records dropped for arriving out of
	// order (older kernel timestamp or replayed push sequence than the
	// cached record).
	StalePushes uint64

	// PoolSheds counts probe slots deferred because a pool budget
	// (conns, fds, dial rate, breaker) was exhausted; PoolShedHot is
	// the subset that hit a hot back-end (should stay ~0 — the
	// degradation ladder sheds quiet targets first).
	PoolSheds   uint64
	PoolShedHot uint64
	// FenceRejects counts one-sided completions rejected by the pool's
	// epoch fence (conn recycled while the read was in flight) and
	// replayed instead of served — each one is a stale read that was
	// caught, never one that was served.
	FenceRejects uint64

	pool *connpool.Pool[int, *simnet.QP]

	hyb map[int]*hybridState

	shardCycles []uint64
	tasks       []*simos.Task
	stopped     bool
}

// hybridState is the monitor's per-backend adaptive-poll bookkeeping.
type hybridState struct {
	ctrl    PeriodController
	due     sim.Time // next probe not before this instant
	obs     wire.LoadRecord
	has     bool
	pushSeq uint32 // highest push sequence accepted
}

// MonitorConfig shapes the probe engine. The zero value reproduces
// the paper's monitor exactly: one task, strictly sequential probes.
type MonitorConfig struct {
	// Shards is the number of monitoring tasks; back-ends are split
	// across them in contiguous slices (default 1).
	Shards int
	// Batch is the maximum number of one-sided reads posted per
	// doorbell batch (default 1 = sequential ProbeOnce calls). Only
	// RDMA probes with an untripped breaker batch; socket probes and
	// tripped back-ends take the sequential path unchanged.
	Batch int
	// Hybrid, when non-nil on an RDMA scheme, turns on the hybrid
	// push/pull engine: the monitor hosts a PushSink aggregation region
	// and adapts each back-end's poll period to its change rate (see
	// hybrid.go). Socket schemes ignore it — there is no one-sided
	// write path to trade probes against.
	Hybrid *HybridConfig
	// Pool, when non-nil on an RDMA scheme, routes every untripped
	// one-sided probe through a connection-lifecycle pool (see
	// internal/connpool and pool.go): connections are acquired per
	// probe under explicit budgets, recycled conns are epoch-fenced,
	// and budget exhaustion sheds quiet back-ends first. nil preserves
	// the seed behaviour bit-for-bit.
	Pool *connpool.Config
	// PoolSeed pins the pool's backoff jitter for deterministic
	// replay (0 keeps the entropy seed).
	PoolSeed int64
}

func (c MonitorConfig) withDefaults(n int) MonitorConfig {
	if c.Shards <= 0 {
		c.Shards = 1
	}
	if c.Batch <= 0 {
		c.Batch = 1
	}
	if n > 0 && c.Shards > n {
		c.Shards = n
	}
	return c
}

// StartMonitor starts the monitoring process for all agents on the
// front-end node, polling each every poll — the paper's sequential
// single-task monitor.
func StartMonitor(front *simos.Node, fnic *simnet.NIC, agents []*Agent, poll sim.Time) *Monitor {
	return StartMonitorCfg(front, fnic, agents, poll, MonitorConfig{})
}

// StartMonitorCfg starts the monitoring process with explicit
// sharding/batching. MonitorConfig{} (or {1, 1}) is byte-for-byte the
// sequential monitor.
func StartMonitorCfg(front *simos.Node, fnic *simnet.NIC, agents []*Agent, poll sim.Time, cfg MonitorConfig) *Monitor {
	if poll <= 0 {
		poll = DefaultInterval
	}
	cfg = cfg.withDefaults(len(agents))
	m := &Monitor{Probers: make(map[int]*Prober), front: front, fnic: fnic, cfg: cfg}
	for _, a := range agents {
		m.Scheme = a.Scheme
		p := NewProber(front, fnic, a)
		m.Probers[p.Backend] = p
		m.order = append(m.order, p.Backend)
	}
	if cfg.Hybrid != nil && m.Scheme.UsesRDMA() {
		h := cfg.Hybrid.WithDefaults(poll)
		m.cfg.Hybrid = &h
		m.hyb = make(map[int]*hybridState, len(m.order))
		for _, b := range m.order {
			m.hyb[b] = &hybridState{ctrl: PeriodController{Cfg: h.Period}}
		}
		m.Sink = NewPushSink(front, fnic, m.order)
		m.Sink.OnRecord = m.notePush
	}
	m.initPool()
	m.shardCycles = make([]uint64, cfg.Shards)
	for s := 0; s < cfg.Shards; s++ {
		// Contiguous balanced slices: shard s owns order[lo:hi].
		lo := s * len(m.order) / cfg.Shards
		hi := (s + 1) * len(m.order) / cfg.Shards
		ids := m.order[lo:hi]
		name := "rmon-frontend"
		if cfg.Shards > 1 {
			name = fmt.Sprintf("rmon-frontend-s%d", s)
		}
		s := s
		m.tasks = append(m.tasks, front.Spawn(name, func(tk *simos.Task) {
			// Shard-owned batch scratch: the WR list, prober list and
			// completion slots are posted, completed and reused sweep
			// after sweep — the steady-state sweep allocates nothing.
			sc := &sweepScratch{}
			var sweep func()
			var sweepStart sim.Time
			var step func(i int)
			step = func(i int) {
				if m.stopped {
					tk.Exit()
					return
				}
				if i >= len(ids) {
					m.CycleTime.Add(float64((front.Eng.Now() - sweepStart) / sim.Microsecond))
					m.shardDone(s)
					tk.Sleep(poll, sweep)
					return
				}
				if !m.dueNow(ids[i]) {
					// The adaptive period has not elapsed: this sweep
					// spends no work request on a quiet back-end.
					m.Decayed++
					step(i + 1)
					return
				}
				if m.cfg.Batch > 1 {
					// Extend a run of batch-eligible, due back-ends up to
					// the doorbell limit. Under a pool the run also stops
					// at the first target without a ready connection —
					// that slot dials (or sheds) on the sequential path.
					j := i
					var leases []connpool.Lease[int, *simnet.QP]
					for j < len(ids) && j-i < m.cfg.Batch &&
						m.Probers[ids[j]].batchEligible() && m.dueNow(ids[j]) {
						if m.pool != nil {
							l, ok := m.tryLease(ids[j])
							if !ok {
								break
							}
							leases = append(leases, l)
						}
						j++
					}
					if j > i+1 {
						m.probeBatch(tk, ids[i:j], leases, sc, func() { step(j) })
						return
					}
					if len(leases) == 1 {
						// A one-long run still holds its lease: probe it
						// fenced without paying for a doorbell batch.
						m.fencedProbe(tk, ids[i], leases[0], func() { step(i + 1) })
						return
					}
				}
				id := ids[i]
				if m.pool != nil && m.Probers[id].batchEligible() {
					m.pooledProbe(tk, id, func() { step(i + 1) })
					return
				}
				m.Probers[id].ProbeOnce(tk, func(_ wire.LoadRecord, err error) {
					m.observeProbe(id, err)
					step(i + 1)
				})
			}
			sweep = func() {
				sweepStart = front.Eng.Now()
				if m.pool != nil {
					// Idle GC once per sweep: quiet targets' conns age
					// out, returning fds to the budget.
					m.pool.GC()
				}
				step(0)
			}
			sweep()
		}))
	}
	return m
}

// sweepScratch is a shard task's reusable probe-batch storage: prober
// and WR lists built per batch, and the completion slots the NIC fills
// in. One instance per shard, reused for the shard's lifetime, keeps
// the steady-state sweep allocation-free.
type sweepScratch struct {
	probers []*Prober
	reqs    []simnet.ReadReq
	results []simnet.ReadResult
}

// probeBatch posts one doorbell-batched multi-WR read covering ids
// (all batch-eligible when posted) and applies each completion through
// the same per-backend outcome logic a standalone probe uses. Under a
// pool, leases[i] is the held lease for ids[i]: every completion is
// epoch-fenced before its record may be served — a slot whose conn
// was recycled in flight is rejected and replayed on a fresh conn,
// never silently served stale. Each read lands in its prober's own
// DMA buffer and the batch bookkeeping lives in sc, so the hot path
// posts no fresh memory.
func (m *Monitor) probeBatch(tk *simos.Task, ids []int, leases []connpool.Lease[int, *simnet.QP], sc *sweepScratch, then func()) {
	start := tk.Node().Eng.Now()
	if cap(sc.probers) < len(ids) {
		sc.probers = make([]*Prober, len(ids))
		sc.reqs = make([]simnet.ReadReq, len(ids))
	}
	probers := sc.probers[:len(ids)]
	reqs := sc.reqs[:len(ids)]
	for i, id := range ids {
		p := m.Probers[id]
		probers[i] = p
		n := p.readLen()
		reqs[i] = simnet.ReadReq{Target: p.Backend, Key: p.agent.RKey(), Length: n, Buf: p.readInto(n)}
	}
	m.fnic.RDMAReadBatchInto(tk, reqs, sc.results, func(results []simnet.ReadResult) {
		sc.results = results[:0]
		var step func(i int)
		step = func(i int) {
			if i >= len(probers) {
				then()
				return
			}
			p, res := probers[i], results[i]
			next := func(_ wire.LoadRecord, err error) {
				m.observeProbe(p.Backend, err)
				step(i + 1)
			}
			if m.pool != nil {
				l := leases[i]
				if served := m.pool.Fence(l) && l.Conn.Valid(); !served {
					m.FenceRejects++
					m.pool.Invalidate(l)
					if res.Err == nil {
						// Intact data over a recycled conn: replay the
						// slot on a fresh connection.
						m.pooledProbeN(tk, p.Backend, 1, func() { step(i + 1) })
						return
					}
				} else {
					m.pool.Release(l, res.Err)
				}
			}
			if res.Err != nil {
				if res.Err == simnet.ErrTimeout {
					p.Timeouts++
				}
				p.rdmaOutcome(tk, start, wire.LoadRecord{}, res.Err, next)
				return
			}
			tk.Compute(p.decode, func() {
				rec, derr := p.decodeRead(res.Data)
				if derr == wire.ErrTorn {
					// The batch slot caught the ring writer mid-update:
					// re-read this one back-end on the sequential path
					// (which owns the bounded retry loop) while the rest
					// of the batch proceeds.
					p.TornRetries++
					if m.pool != nil {
						m.pooledProbeN(tk, p.Backend, 1, func() { step(i + 1) })
					} else {
						p.probeRDMA(tk, func(rec wire.LoadRecord, err error) {
							p.rdmaOutcome(tk, start, rec, err, next)
						})
					}
					return
				}
				p.rdmaOutcome(tk, start, rec, derr, next)
			})
		}
		step(0)
	})
}

// shardDone records one completed sweep of shard s and refreshes
// Cycles as the minimum across shards.
func (m *Monitor) shardDone(s int) {
	m.shardCycles[s]++
	min := m.shardCycles[0]
	for _, c := range m.shardCycles[1:] {
		if c < min {
			min = c
		}
	}
	m.Cycles = min
}

// Backends returns the monitored back-end IDs in start order.
func (m *Monitor) Backends() []int { return m.order }

// dueNow reports whether a back-end's adaptive poll period has elapsed
// (always true without the hybrid engine).
func (m *Monitor) dueNow(backend int) bool {
	st := m.hyb[backend]
	if st == nil {
		return true
	}
	return m.front.Eng.Now() >= st.due
}

// leaseHeld reports the monitor's current primaryship belief for the
// period controller.
func (m *Monitor) leaseHeld() bool { return m.LeaseValid == nil || m.LeaseValid() }

// observeProbe feeds one completed probe into the back-end's period
// controller: a failure or a moved load index counts as change and
// snaps the period to the fast sweep; a quiet, Healthy, leased probe
// lets it decay. With a history ring the change test uses the ring's
// own change-rate — the un-smoothed |dIndex/dt| over the window the
// read fetched, scaled to one fast sweep — instead of comparing two
// point samples, so a back-end that oscillated between two probes can
// no longer masquerade as quiet.
func (m *Monitor) observeProbe(backend int, err error) {
	st := m.hyb[backend]
	if st == nil {
		return
	}
	p := m.Probers[backend]
	changed := err != nil || !st.has
	if !changed {
		if p.agent.RingK() > 0 {
			perSweep := p.Trend.LastRate() *
				(float64(m.cfg.Hybrid.Period.Min) / float64(sim.Second))
			changed = perSweep >= m.cfg.Hybrid.Threshold
		} else {
			changed = LoadDelta(p.last, st.obs) >= m.cfg.Hybrid.Threshold
		}
	}
	if err == nil && p.has {
		st.obs = p.last
		st.has = true
	}
	st.due = m.front.Eng.Now() + st.ctrl.Observe(changed, p.Health.State(), m.leaseHeld())
}

// notePush applies one valid pushed delta record: it refreshes the
// prober's cache (a push IS a fresh record) and feeds the period
// controller. A push carrying a real index movement snaps the poll
// period back to the fast sweep — the back-end is volatile; a
// heartbeat push (quiet, just proving freshness) lets the period keep
// decaying. Health stays probe-driven: a push proves the push path
// works, not that probes would succeed. Out-of-order arrivals (older
// kernel timestamp or replayed push sequence) are dropped so the cache
// never moves backwards in time.
func (m *Monitor) notePush(backend int, rec wire.PushRecord, at sim.Time) {
	st := m.hyb[backend]
	p := m.Probers[backend]
	if st == nil || p == nil || m.stopped {
		return
	}
	if st.pushSeq != 0 && rec.PushSeq <= st.pushSeq {
		m.StalePushes++
		return
	}
	st.pushSeq = rec.PushSeq
	if p.has && rec.Load.KTimeNS < p.last.KTimeNS {
		m.StalePushes++
		return
	}
	changed := !st.has || LoadDelta(rec.Load, st.obs) >= m.cfg.Hybrid.Threshold
	p.last = rec.Load
	p.lastAt = at
	p.has = true
	p.Trend.ObserveRecord(rec.Load)
	p.LastTransport = TransportPush
	if p.OnRecord != nil {
		p.OnRecord(rec.Load, at)
	}
	st.obs = rec.Load
	st.has = true
	st.due = at + st.ctrl.Observe(changed, p.Health.State(), m.leaseHeld())
}

// ProbePeriod returns a back-end's current adaptive poll period (0
// without the hybrid engine).
func (m *Monitor) ProbePeriod(backend int) sim.Time {
	st := m.hyb[backend]
	if st == nil {
		return 0
	}
	return st.ctrl.Period()
}

// SetProbeTimeout bounds every back-end's probe by d (0 disables).
func (m *Monitor) SetProbeTimeout(d sim.Time) {
	for _, p := range m.Probers {
		p.Timeout = d
	}
}

// ArmFailover equips every prober with an independent transport
// breaker (RDMA schemes only; a no-op for socket schemes, which have
// no faster path to fall back from). The monitored agents must serve
// the standby socket port (AgentConfig.StandbySocket) and probes must
// carry a timeout.
func (m *Monitor) ArmFailover(cfg FailoverConfig) {
	if !m.Scheme.UsesRDMA() {
		return
	}
	for _, p := range m.Probers {
		p.Failover = &Failover{Cfg: cfg}
	}
}

// Failover returns a back-end's transport breaker (nil if the monitor
// is unarmed or the back-end unknown).
func (m *Monitor) Failover(backend int) *Failover {
	p := m.Probers[backend]
	if p == nil {
		return nil
	}
	return p.Failover
}

// Health returns the probe-driven health state of a back-end; unknown
// back-ends report Quarantined (never dispatch blind).
func (m *Monitor) Health(backend int) Health {
	p := m.Probers[backend]
	if p == nil {
		return Quarantined
	}
	return p.Health.State()
}

// ReplaceAgent points the prober for a back-end at a freshly started
// agent (after a crash/restart the old agent task and its registered
// memory are gone). The health machine is deliberately NOT reset: the
// restarted back-end earns its way back through probation by answering
// probes, exactly like one that recovered on its own.
func (m *Monitor) ReplaceAgent(backend int, a *Agent) {
	p := m.Probers[backend]
	if p == nil || a == nil {
		return
	}
	p.agent = a
	p.Scheme = a.Scheme
	// A fresh agent's ring restarts at epoch 0 — indistinguishable from
	// the old one's first epoch — so drop trend state explicitly rather
	// than let a slope span the restart.
	p.Trend.Reset()
	if st := m.hyb[backend]; st != nil {
		// A restarted back-end's pusher restarts its push sequence; clear
		// the replay guard so its first post-restart delta is accepted.
		st.pushSeq = 0
	}
}

// Slope returns a back-end's observed load-index slope in index units
// per second (see TrendTracker), false while unknown or unprimed. Ring
// probes prime it from the history window; point probes prime it from
// consecutive samples.
func (m *Monitor) Slope(backend int) (float64, bool) {
	p := m.Probers[backend]
	if p == nil {
		return 0, false
	}
	return p.Trend.Slope()
}

// Latest returns the newest record for a back-end.
func (m *Monitor) Latest(backend int) (wire.LoadRecord, sim.Time, bool) {
	p := m.Probers[backend]
	if p == nil {
		return wire.LoadRecord{}, 0, false
	}
	return p.Latest()
}

// Stop ends the monitoring process. Idempotent. The connection pool
// is drained last: every pooled QP is closed and its fd returned, so
// a stopped monitor leaks nothing (asserted by the scale experiment's
// teardown check).
func (m *Monitor) Stop() {
	m.stopped = true
	for _, t := range m.tasks {
		t.Exit()
	}
	for _, p := range m.Probers {
		p.Stop()
	}
	if m.Sink != nil {
		m.Sink.Close()
	}
	if m.pool != nil {
		m.pool.Close()
	}
}

// TruthSampler emulates the paper's kernel module that reports the
// actual load at fine granularity (§5.1.3): it snapshots the kernel
// statistics directly on the node, with no simulated cost, so
// experiments can compare scheme reports against ground truth.
type TruthSampler struct {
	ticker *sim.Ticker
}

// StartTruth samples node's kernel stats every period into fn.
func StartTruth(node *simos.Node, period sim.Time, fn func(simos.Snapshot)) *TruthSampler {
	return &TruthSampler{
		ticker: node.Eng.NewTicker(period, func() { fn(node.K.Snapshot()) }),
	}
}

// Stop ends sampling.
func (ts *TruthSampler) Stop() { ts.ticker.Stop() }
