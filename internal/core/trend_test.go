package core

import (
	"testing"

	"rdmamon/internal/sim"
	"rdmamon/internal/wire"
)

// trendRec builds a record whose weighted index is driven by NrRunning
// at kernel time kt.
func trendRec(kt sim.Time, run int) wire.LoadRecord {
	return wire.LoadRecord{
		NumCPU: 2, MemTotalKB: 1 << 20,
		NrRunning: clampU16(run), KTimeNS: int64(kt),
	}
}

func trendView(epoch uint32, recs ...wire.LoadRecord) *wire.RingView {
	v := &wire.RingView{Epoch: epoch, K: len(recs), Count: len(recs)}
	// Newest-first, like DecodeRingInto produces.
	for i, r := range recs {
		v.Records[len(recs)-1-i] = r
	}
	return v
}

func TestTrendTrackerSlopeSign(t *testing.T) {
	var up, down TrendTracker
	for i := 0; i < 8; i++ {
		up.ObserveRecord(trendRec(sim.Time(i)*100*sim.Millisecond, i))
		down.ObserveRecord(trendRec(sim.Time(i)*100*sim.Millisecond, 8-i))
	}
	s, ok := up.Slope()
	if !ok || s <= 0 {
		t.Fatalf("ramping-up slope = %v (primed=%v), want > 0", s, ok)
	}
	s, ok = down.Slope()
	if !ok || s >= 0 {
		t.Fatalf("ramping-down slope = %v (primed=%v), want < 0", s, ok)
	}
}

func TestTrendTrackerNotPrimedBySingleSample(t *testing.T) {
	var tt TrendTracker
	if _, ok := tt.Slope(); ok {
		t.Fatal("empty tracker claims a slope")
	}
	tt.ObserveRecord(trendRec(sim.Second, 3))
	if _, ok := tt.Slope(); ok {
		t.Fatal("one sample cannot define a slope")
	}
	if tt.LastRate() != 0 {
		t.Fatal("one sample cannot define a rate")
	}
}

func TestTrendTrackerRingFoldIsIdempotent(t *testing.T) {
	var tt TrendTracker
	v := trendView(0,
		trendRec(100*sim.Millisecond, 1),
		trendRec(200*sim.Millisecond, 2),
		trendRec(300*sim.Millisecond, 3),
	)
	if n := tt.ObserveRing(v); n != 3 {
		t.Fatalf("first fold saw %d new samples, want 3", n)
	}
	slope, _ := tt.Slope()
	rate := tt.LastRate()
	if rate <= 0 {
		t.Fatal("ramping ring left LastRate at 0")
	}
	// Re-folding the same window (overlapping ring reads) changes
	// nothing — including the change-rate, which keeps its freshest
	// estimate instead of zeroing.
	if n := tt.ObserveRing(v); n != 0 {
		t.Fatalf("second fold saw %d new samples, want 0", n)
	}
	if s, _ := tt.Slope(); s != slope || tt.LastRate() != rate {
		t.Fatal("re-folding an already-seen window moved the trend")
	}
	// Same for the point-probe path folding the newest ring sample.
	tt.ObserveRecord(v.Records[0])
	if s, _ := tt.Slope(); s != slope || tt.LastRate() != rate {
		t.Fatal("point re-fold of the newest sample moved the trend")
	}
}

func TestTrendTrackerEpochResets(t *testing.T) {
	var tt TrendTracker
	tt.ObserveRing(trendView(0,
		trendRec(100*sim.Millisecond, 2),
		trendRec(200*sim.Millisecond, 9),
	))
	if s, ok := tt.Slope(); !ok || s <= 0 {
		t.Fatalf("setup slope = %v", s)
	}
	// A new epoch (agent restart / MR re-pin) must drop the old trend:
	// the first cross-epoch view re-primes from scratch.
	tt.ObserveRing(trendView(1, trendRec(50*sim.Millisecond, 1)))
	if _, ok := tt.Slope(); ok {
		t.Fatal("slope survived an epoch change")
	}
}

func TestTrendTrackerZeroAlloc(t *testing.T) {
	var tt TrendTracker
	v := trendView(0,
		trendRec(100*sim.Millisecond, 1),
		trendRec(200*sim.Millisecond, 2),
	)
	allocs := testing.AllocsPerRun(100, func() {
		tt.ObserveRing(v)
		tt.ObserveRecord(v.Records[0])
		_ = tt.LastRate()
	})
	if allocs != 0 {
		t.Fatalf("trend fold allocates %.1f objects/op, want 0", allocs)
	}
}

// --- ring agent + prober end to end ------------------------------------

func TestHistoryRingProbeEndToEnd(t *testing.T) {
	r := newRig(11)
	a := StartAgent(r.backend, r.bnic, AgentConfig{
		Scheme: ERDMASync, HistoryK: 8, Interval: 10 * sim.Millisecond,
	})
	if a.RingK() != 8 {
		t.Fatalf("RingK = %d, want 8", a.RingK())
	}
	if a.BackendTasks() != 0 {
		t.Fatal("the ring sampler must be a kernel timer, not a task")
	}
	p := StartProber(r.front, r.fnic, a, 50*sim.Millisecond)
	var maxStale sim.Time
	p.OnRecord = func(rec wire.LoadRecord, at sim.Time) {
		if st := at - sim.Time(rec.KTimeNS); st > maxStale {
			maxStale = st
		}
	}
	r.eng.RunUntil(sim.Second)
	if p.Errors != 0 {
		t.Fatalf("probe errors: %d", p.Errors)
	}
	reads := uint64(p.Latency.Count())
	if reads < 15 {
		t.Fatalf("only %d probes in 1s at 50ms", reads)
	}
	// The amortization claim: each read covers the whole 50ms window at
	// 10ms sample granularity, so the monitor observes several times
	// more samples than it posted work requests.
	if p.RingSamples < 4*reads {
		t.Fatalf("RingSamples = %d for %d reads; ring reads are not amortizing",
			p.RingSamples, reads)
	}
	// DMA-instant push: the newest slot is sampled as the read lands,
	// so the sync family's freshness contract survives the ring.
	if maxStale > 100*sim.Microsecond {
		t.Fatalf("newest ring sample %v stale, want < one RTT", maxStale)
	}
	if _, ok := p.Trend.Slope(); !ok {
		t.Fatal("a second of ring reads left the trend unprimed")
	}
}

func TestHistoryRingRepinBumpsEpoch(t *testing.T) {
	r := newRig(12)
	a := StartAgent(r.backend, r.bnic, AgentConfig{
		Scheme: RDMASync, HistoryK: 4, Interval: 10 * sim.Millisecond,
	})
	p := StartProber(r.front, r.fnic, a, 20*sim.Millisecond)
	r.eng.RunUntil(300 * sim.Millisecond)
	epoch0 := p.view.Epoch
	a.InvalidateMR(50 * sim.Millisecond)
	r.eng.RunUntil(sim.Second)
	if p.view.Epoch != epoch0+1 {
		t.Fatalf("ring epoch after re-pin = %d, want %d", p.view.Epoch, epoch0+1)
	}
	if !p.has {
		t.Fatal("prober never recovered after re-pin")
	}
}

func TestAgentRingPushZeroAlloc(t *testing.T) {
	r := newRig(13)
	a := StartAgent(r.backend, r.bnic, AgentConfig{
		Scheme: ERDMASync, HistoryK: 8, Interval: 10 * sim.Millisecond,
	})
	allocs := testing.AllocsPerRun(200, a.ringPush)
	if allocs != 0 {
		t.Fatalf("ring push allocates %.1f objects/op, want 0", allocs)
	}
}
