package core

import (
	"math"

	"rdmamon/internal/sim"
	"rdmamon/internal/wire"
)

// TrendTracker turns a back-end's sample history into a load-index
// slope. The history ring delivers K timestamped samples per read;
// folding their successive index deltas through an EWMA yields the
// trend signal the slope-aware dispatcher and the hybrid period
// controller consume. It is pure state — no clocks, no tasks — so its
// behaviour is property-testable and identical on the sim and live
// paths.
//
// Two outputs with different smoothing serve different consumers:
//
//   - Slope() is the EWMA'd dIndex/dt in index units per second —
//     stable enough to project "where will this back-end be one
//     horizon from now" without herding on a single noisy delta.
//   - LastRate() is the maximum |dIndex/dt| among the samples folded
//     by the most recent observation — the raw ring change-rate the
//     period controller's volatility test wants (smoothing a spike
//     away is exactly wrong there).
type TrendTracker struct {
	// Alpha is the EWMA smoothing factor in (0, 1]; 0 takes the
	// default 0.4 (reactive but not single-sample twitchy).
	Alpha float64
	// Weights scores records; the zero value means DefaultWeights.
	Weights Weights

	epoch    uint32
	haveW    bool
	lastK    int64 // KTimeNS of the newest folded sample
	lastIdx  float64
	slope    float64
	lastRate float64
	primed   bool // at least two samples folded (slope meaningful)
	seen     bool // at least one sample folded
}

func (tt *TrendTracker) alpha() float64 {
	if tt.Alpha > 0 && tt.Alpha <= 1 {
		return tt.Alpha
	}
	return 0.4
}

func (tt *TrendTracker) weights() Weights {
	if !tt.haveW {
		tt.Weights = DefaultWeights()
		tt.haveW = true
	}
	return tt.Weights
}

// SetWeights pins the scoring weights (call before first use).
func (tt *TrendTracker) SetWeights(w Weights) {
	tt.Weights = w
	tt.haveW = true
}

// Reset drops all trend state (agent restart, epoch change).
func (tt *TrendTracker) Reset() {
	tt.lastK, tt.lastIdx, tt.slope, tt.lastRate = 0, 0, 0, 0
	tt.primed, tt.seen = false, false
}

// Slope returns the EWMA'd load-index slope in index units per second
// and whether enough history has been folded for it to mean anything.
func (tt *TrendTracker) Slope() (float64, bool) { return tt.slope, tt.primed }

// LastRate returns the raw ring change-rate of the most recent
// observation that folded new samples: the maximum |dIndex/dt| (index
// units per second) among the sample pairs it folded. An observation
// carrying nothing new keeps the previous rate — the freshest estimate
// available. Zero until two samples have been seen.
func (tt *TrendTracker) LastRate() float64 { return tt.lastRate }

// ObserveRecord folds one sample (a point probe, a socket fallback
// reply, a pushed delta). Samples at or before the newest already
// folded are ignored, so a ring fold followed by the same record via
// finishProbe never double-counts.
func (tt *TrendTracker) ObserveRecord(rec wire.LoadRecord) {
	if tt.seen && rec.KTimeNS <= tt.lastK {
		return
	}
	tt.lastRate = 0
	tt.fold(rec)
}

// ObserveRing folds every not-yet-seen sample of a decoded ring view,
// oldest first, and returns how many were new. A view from a different
// ring epoch resets the tracker first: slopes across an agent restart
// or MR re-pin would be fiction.
func (tt *TrendTracker) ObserveRing(v *wire.RingView) int {
	if v.Epoch != tt.epoch {
		tt.Reset()
		tt.epoch = v.Epoch
	}
	n := 0
	for i := v.Count - 1; i >= 0; i-- {
		if tt.seen && v.Records[i].KTimeNS <= tt.lastK {
			continue
		}
		if n == 0 {
			tt.lastRate = 0
		}
		if tt.fold(v.Records[i]) {
			n++
		}
	}
	return n
}

// fold applies one sample; reports whether it was new.
func (tt *TrendTracker) fold(rec wire.LoadRecord) bool {
	if tt.seen && rec.KTimeNS <= tt.lastK {
		return false
	}
	idx := tt.weights().Index(rec)
	if !tt.seen {
		tt.seen = true
		tt.lastK = rec.KTimeNS
		tt.lastIdx = idx
		return true
	}
	dt := float64(rec.KTimeNS-tt.lastK) / float64(sim.Second)
	if dt > 0 {
		inst := (idx - tt.lastIdx) / dt
		if r := math.Abs(inst); r > tt.lastRate {
			tt.lastRate = r
		}
		a := tt.alpha()
		tt.slope = a*inst + (1-a)*tt.slope
		tt.primed = true
	}
	tt.lastK = rec.KTimeNS
	tt.lastIdx = idx
	return true
}
