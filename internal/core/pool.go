package core

import (
	"errors"

	"rdmamon/internal/connpool"
	"rdmamon/internal/simnet"
	"rdmamon/internal/simos"
	"rdmamon/internal/wire"
)

// errConnReset marks a probe that failed because its pooled
// connection died underneath it (listener reset, recycled QP) rather
// than the back-end misbehaving.
var errConnReset = errors.New("core: pooled connection reset")

// initPool builds the monitor's connection pool when MonitorConfig
// asks for one (RDMA schemes only: socket probes are
// request/response messages with no connection to manage).
func (m *Monitor) initPool() {
	cfg := m.cfg.Pool
	if cfg == nil || !m.Scheme.UsesRDMA() {
		return
	}
	front := m.front
	m.pool = connpool.New[int, *simnet.QP](*cfg, func() int64 { return int64(front.Eng.Now()) })
	if m.cfg.PoolSeed != 0 {
		m.pool.SeedJitter(m.cfg.PoolSeed)
	}
	fnic := m.fnic
	m.pool.OnClose = func(_ int, q *simnet.QP) { fnic.CloseQP(q) }
}

// Pool exposes the monitor's connection pool (nil when unpooled) for
// experiments and tests.
func (m *Monitor) Pool() *connpool.Pool[int, *simnet.QP] { return m.pool }

// hotBackend classifies a back-end for the pool's degradation
// ladder. Hot back-ends (volatile or unwell — those whose staleness
// SLO is tight) may evict quiet targets' idle conns and are never
// shed willingly; quiet and quarantined ones absorb budget pressure
// first.
func (m *Monitor) hotBackend(id int) bool {
	p := m.Probers[id]
	if p.Health.State() == Quarantined {
		// Presumed dead: its record is already marked undispatchable,
		// so a delayed probe costs nothing — shed first.
		return false
	}
	if st := m.hyb[id]; st != nil {
		// The hybrid period controller already computes volatility:
		// a decayed period means the back-end is quiet and its
		// effective-staleness bound is correspondingly relaxed.
		return st.ctrl.Period() <= m.cfg.Hybrid.Period.Min
	}
	// Fixed-period monitor: every back-end carries the same SLO.
	return true
}

// deferProbe pushes a shed back-end's next attempt one adaptive
// period out (hooking the hybrid PeriodController), so a saturated
// pool degrades to a slower sweep of the quiet fleet instead of
// burning every sweep re-shedding the same targets. Without the
// hybrid engine the back-end simply retries next sweep.
func (m *Monitor) deferProbe(id int) {
	if st := m.hyb[id]; st != nil {
		st.due = m.front.Eng.Now() + st.ctrl.Period()
	}
}

// tryLease acquires a ready pooled connection for a doorbell-batch
// slot. Only targets whose conn is installed and whose QP is still
// valid join a batch; anything else falls back to the sequential
// pooled path (which dials, sheds or fences as needed).
func (m *Monitor) tryLease(id int) (connpool.Lease[int, *simnet.QP], bool) {
	var zero connpool.Lease[int, *simnet.QP]
	if !m.pool.Ready(id) {
		return zero, false
	}
	l, v, _ := m.pool.Acquire(id, m.hotBackend(id))
	if v != connpool.Conn {
		return zero, false
	}
	if !l.Conn.Valid() {
		// Listener reset killed the QP while it sat idle: recycle it
		// here (epoch bump) and let the sequential path redial.
		m.FenceRejects++
		m.pool.Invalidate(l)
		return zero, false
	}
	return l, true
}

// pooledProbe runs one back-end's probe through the connection pool:
// acquire (or dial, or shed), issue the fenced one-sided read, and
// route the outcome through the same rdmaOutcome/observeProbe logic
// an unpooled probe uses. done always runs exactly once.
func (m *Monitor) pooledProbe(tk *simos.Task, id int, done func()) {
	m.pooledProbeN(tk, id, 0, done)
}

func (m *Monitor) pooledProbeN(tk *simos.Task, id int, attempt int, done func()) {
	p := m.Probers[id]
	start := m.front.Eng.Now()
	finish := func(_ wire.LoadRecord, err error) {
		m.observeProbe(id, err)
		done()
	}
	if attempt > 1 {
		// Second replay in one slot: the conn keeps dying underneath
		// us — stop spinning and degrade through the failover ladder
		// (same-cycle socket fallback, breaker accounting).
		p.rdmaOutcome(tk, start, wire.LoadRecord{}, errConnReset, finish)
		return
	}
	hot := m.hotBackend(id)
	l, v, _ := m.pool.Acquire(id, hot)
	switch v {
	case connpool.Conn:
		if !l.Conn.Valid() {
			m.FenceRejects++
			m.pool.Invalidate(l)
			m.pooledProbeN(tk, id, attempt+1, done)
			return
		}
		m.fencedProbeN(tk, id, l, attempt, done)
	case connpool.Dial:
		m.fnic.Dial(tk, id, func(q *simnet.QP, err error) {
			if err != nil {
				if errors.Is(err, simnet.ErrFDLimit) {
					// Local fd exhaustion, not a target failure: no
					// breaker or health charge — shed the slot and
					// defer, like any other budget pressure.
					m.pool.DialAborted(id)
					m.PoolSheds++
					if hot {
						m.PoolShedHot++
					}
					m.deferProbe(id)
					done()
					return
				}
				m.pool.DialFailed(id)
				// A failed dial is a primary-path failure: rdmaOutcome
				// feeds the Failover breaker and falls over to the
				// standby socket this same cycle, so reachable-but-
				// undialable back-ends (fd exhaustion, dial storms)
				// keep their staleness SLO.
				p.rdmaOutcome(tk, start, wire.LoadRecord{}, err, finish)
				return
			}
			lease, lerr := m.pool.DialDone(id, q)
			if lerr != nil {
				// Pool closed while the dial was in flight; the conn
				// was already closed by DialDone.
				done()
				return
			}
			m.fencedProbeN(tk, id, lease, attempt, done)
		})
	default: // Shed: defer the slot, spend nothing.
		m.PoolSheds++
		if hot {
			m.PoolShedHot++
		}
		m.deferProbe(id)
		done()
	}
}

// fencedProbe issues the one-sided read under an already-held lease
// (the batch planner's solo-run path).
func (m *Monitor) fencedProbe(tk *simos.Task, id int, l connpool.Lease[int, *simnet.QP], done func()) {
	m.fencedProbeN(tk, id, l, 0, done)
}

// fencedProbeN is the fenced read: post, complete, then check the
// lease's epoch before the record may be served. A completion whose
// conn was recycled in flight is rejected and replayed — never
// silently served stale.
func (m *Monitor) fencedProbeN(tk *simos.Task, id int, l connpool.Lease[int, *simnet.QP], attempt int, done func()) {
	p := m.Probers[id]
	start := m.front.Eng.Now()
	finish := func(_ wire.LoadRecord, err error) {
		m.observeProbe(id, err)
		done()
	}
	p.probeRDMA(tk, func(rec wire.LoadRecord, err error) {
		served := m.pool.Fence(l) && l.Conn.Valid()
		if !served {
			m.FenceRejects++
			m.pool.Invalidate(l)
			if err == nil {
				// The data is intact but crossed a recycled conn:
				// reject and replay on a fresh one.
				m.pooledProbeN(tk, id, attempt+1, done)
				return
			}
			// Failed op on a dead conn: plain failure, no breaker
			// charge for the target (Invalidate already recycled).
			p.rdmaOutcome(tk, start, wire.LoadRecord{}, err, finish)
			return
		}
		m.pool.Release(l, err)
		p.rdmaOutcome(tk, start, rec, err, finish)
	})
}
