package core

import (
	"fmt"
	"math"

	"rdmamon/internal/sim"
	"rdmamon/internal/simnet"
	"rdmamon/internal/simos"
	"rdmamon/internal/wire"
)

// The hybrid monitoring scheme inverts the pull direction for quiet
// back-ends. Two cooperating halves:
//
//   - each back-end runs a DeltaPusher: it samples the kernel every
//     Check and RDMA-Writes a timestamped PushRecord into its slot of a
//     front-end-hosted aggregation region — but only when the weighted
//     load index moved by at least Threshold (or Heartbeat elapsed).
//     Quiet back-ends post nothing.
//   - the front-end monitor runs a PeriodController per back-end: a
//     back-end whose observed load stopped changing has its poll period
//     decay geometrically toward Max, while any sign of volatility —
//     a delta push, a changed probe, a probe failure, a non-Healthy
//     state, a lost lease — snaps it back to the fast sweep at Min.
//
// The contract the hybrid experiment enforces: the staleness bound of
// the all-pull sweep is preserved (changes always reach the front-end
// within a few T, via push or snapped-back pull) while quiet back-ends
// cost ~1/Grow^k of the probe work requests.

// LoadDelta measures how far two load records are apart on the
// dispatcher's weighted index — the "did anything the dispatcher cares
// about change?" metric both the pusher threshold and the period
// controller use.
func LoadDelta(a, b wire.LoadRecord) float64 {
	w := DefaultWeights()
	return math.Abs(w.Index(a) - w.Index(b))
}

// PeriodConfig bounds the adaptive per-backend poll period.
type PeriodConfig struct {
	// Min is the fast-sweep period volatile back-ends are probed at
	// (defaults to the monitor's poll T).
	Min sim.Time
	// Max is the ceiling a quiet back-end's period decays toward
	// (default 16×Min).
	Max sim.Time
	// Grow is the geometric decay factor per quiet observation
	// (default 2).
	Grow float64
}

// WithDefaults fills unset fields, anchoring Min to poll.
func (c PeriodConfig) WithDefaults(poll sim.Time) PeriodConfig {
	if c.Min <= 0 {
		c.Min = poll
	}
	if c.Min <= 0 {
		c.Min = DefaultInterval
	}
	if c.Max < c.Min {
		c.Max = 16 * c.Min
	}
	if c.Grow <= 1 {
		c.Grow = 2
	}
	return c
}

// PeriodController adapts one back-end's poll period to its observed
// change rate. It is deliberately pure state-machine — no clocks, no
// tasks — so its invariants (bounded, monotone in change rate, snaps
// on trouble) are directly property-testable.
type PeriodController struct {
	Cfg    PeriodConfig
	period sim.Time
}

// Period returns the current poll period (Min before any observation).
func (pc *PeriodController) Period() sim.Time {
	if pc.period <= 0 {
		return pc.Cfg.Min
	}
	return pc.period
}

// Observe feeds one observation cycle into the controller and returns
// the period to use until the next one. Any trouble signal — the load
// changed, the back-end is not plain Healthy, the monitor's lease is
// not held — snaps the period to Min within this one cycle; only a
// quiet, Healthy, leased observation lets the period grow, by Grow up
// to Max. The result is always within [Min, Max].
func (pc *PeriodController) Observe(changed bool, h Health, leaseHeld bool) sim.Time {
	cfg := pc.Cfg
	if changed || !leaseHeld || h != Healthy {
		pc.period = cfg.Min
		return pc.period
	}
	p := pc.period
	if p <= 0 {
		p = cfg.Min
	}
	p = sim.Time(float64(p) * cfg.Grow)
	if p > cfg.Max {
		p = cfg.Max
	}
	if p < cfg.Min {
		p = cfg.Min
	}
	pc.period = p
	return pc.period
}

// HybridConfig shapes the hybrid push/pull scheme.
type HybridConfig struct {
	// Threshold is the weighted-index movement that counts as a change,
	// for both the pusher's "worth a write" test and the controller's
	// "still volatile" test (default 0.05).
	Threshold float64
	// Period bounds the monitor's adaptive poll period.
	Period PeriodConfig
	// Heartbeat forces a push after this much quiet, so a decayed
	// back-end's record can still be proven fresh (default Period.Max).
	Heartbeat sim.Time
	// Check is the pusher's sampling period (default Period.Min).
	Check sim.Time
}

// WithDefaults fills unset fields, anchoring periods to poll.
func (c HybridConfig) WithDefaults(poll sim.Time) HybridConfig {
	if c.Threshold <= 0 {
		c.Threshold = 0.05
	}
	c.Period = c.Period.WithDefaults(poll)
	if c.Heartbeat <= 0 {
		c.Heartbeat = c.Period.Max
	}
	if c.Check <= 0 {
		c.Check = c.Period.Min
	}
	return c
}

// DeltaPusher is the back-end half of the hybrid scheme: a task that
// samples the kernel every Check and RDMA-Writes a PushRecord into the
// front-end's aggregation slot when the load moved (or Heartbeat
// elapsed). Unlike the multicast PushAgent it is change-triggered and
// one-sided: a quiet back-end costs zero work requests.
type DeltaPusher struct {
	Cfg   HybridConfig
	node  *simos.Node
	nic   *simnet.NIC
	front int
	// slotKey resolves the aggregation slot's current rkey per push, so
	// the pusher survives the front-end invalidating and re-pinning the
	// region (it simply fails until the fresh key appears).
	slotKey func() uint32

	seq     uint32
	last    wire.LoadRecord
	lastAt  sim.Time
	encBuf  []byte // reusable push-record encode scratch
	primed  bool
	stopped bool
	task    *simos.Task

	// Pushes counts delta writes posted successfully; Skips counts
	// samples below threshold; Errors counts failed writes.
	Pushes uint64
	Skips  uint64
	Errors uint64
}

// StartDeltaPusher launches the change-threshold push loop on node,
// writing into front's aggregation slot for this back-end.
func StartDeltaPusher(node *simos.Node, nic *simnet.NIC, front int, slotKey func() uint32, cfg HybridConfig) *DeltaPusher {
	cfg = cfg.WithDefaults(0)
	p := &DeltaPusher{Cfg: cfg, node: node, nic: nic, front: front, slotKey: slotKey}
	p.task = node.Spawn("rmon-push-delta", func(tk *simos.Task) {
		var loop func()
		loop = func() {
			if p.stopped {
				tk.Exit()
				return
			}
			tk.ReadProc(func(s simos.Snapshot) {
				tk.Compute(10*sim.Microsecond, func() {
					now := node.Eng.Now()
					rec := RecordFromSnapshot(s, p.seq+1)
					// The pusher is always running when it samples, so
					// counting itself in the run queue would bias every
					// pushed record high by one task relative to the
					// one-sided probe path (which reads the kernel with
					// no agent awake). Subtract self.
					if rec.NrRunning > 0 {
						rec.NrRunning--
					}
					if p.primed && LoadDelta(rec, p.last) < cfg.Threshold &&
						now-p.lastAt < cfg.Heartbeat {
						p.Skips++
						tk.Sleep(cfg.Check, loop)
						return
					}
					p.seq++
					rec.Seq = p.seq
					pr := wire.PushRecord{PushSeq: p.seq, PushedNS: int64(now), Load: rec}
					// Encode into the pusher's scratch; RDMAWrite stages
					// the payload at post time, so the buffer is free for
					// reuse the moment the call returns.
					p.encBuf = pr.AppendTo(p.encBuf)
					p.nic.RDMAWrite(tk, p.front, p.slotKey(), p.encBuf, func(err error) {
						if p.stopped {
							tk.Exit()
							return
						}
						if err != nil {
							p.Errors++
						} else {
							p.Pushes++
							p.last = rec
							p.lastAt = now
							p.primed = true
						}
						tk.Sleep(cfg.Check, loop)
					})
				})
			})
		}
		loop()
	})
	return p
}

// Task exposes the pusher task (diagnostics and tests).
func (p *DeltaPusher) Task() *simos.Task { return p.task }

// Stop ends the push loop.
func (p *DeltaPusher) Stop() {
	p.stopped = true
	if p.task != nil {
		p.task.Exit()
	}
}

// PushSink is the front-end half: one writable aggregation slot per
// back-end, registered on the front-end NIC. Pushed records validate
// (CRC, node identity) at arrival; valid ones flow to OnRecord.
type PushSink struct {
	front *simos.Node
	fnic  *simnet.NIC
	slots map[int]*pushSlot

	// OnRecord observes every valid pushed record (the Monitor's
	// notePush hook).
	OnRecord func(backend int, rec wire.PushRecord, at sim.Time)

	// Received counts valid pushed records; Torn counts writes that
	// failed validation (bad CRC, wrong node in the slot).
	Received uint64
	Torn     uint64

	closed bool
}

type pushSlot struct {
	backend int
	buf     []byte
	mr      *simnet.MR
}

// NewPushSink registers one aggregation slot per back-end on the
// front-end NIC.
func NewPushSink(front *simos.Node, fnic *simnet.NIC, backends []int) *PushSink {
	s := &PushSink{front: front, fnic: fnic, slots: make(map[int]*pushSlot)}
	for _, b := range backends {
		sl := &pushSlot{backend: b, buf: make([]byte, wire.PushRecordSize)}
		s.register(sl)
		s.slots[b] = sl
	}
	return s
}

// register pins a slot's MR: remote writes land in the slot buffer and
// validate immediately (the slot remains remotely readable too, so a
// peer front-end could audit it).
func (s *PushSink) register(sl *pushSlot) {
	sl.mr = s.fnic.RegisterWritableMR(simnet.StaticSource(sl.buf), wire.PushRecordSize, func(data []byte) {
		copy(sl.buf, data)
		rec, err := wire.DecodePush(sl.buf)
		if err != nil || int(rec.Load.NodeID) != sl.backend {
			s.Torn++
			return
		}
		s.Received++
		if s.OnRecord != nil {
			s.OnRecord(sl.backend, rec, s.front.Eng.Now())
		}
	})
}

// SlotKey returns the current rkey of a back-end's aggregation slot (0
// while invalidated or unknown — writes with key 0 fail).
func (s *PushSink) SlotKey(backend int) uint32 {
	sl := s.slots[backend]
	if sl == nil || sl.mr == nil {
		return 0
	}
	return sl.mr.Key()
}

// InvalidateSlot models the aggregation region going stale for one
// back-end: the slot is deregistered immediately (in-flight and
// subsequent pushes fail) and re-registered with a fresh key after
// repin, mirroring Agent.InvalidateMR on the pull side.
func (s *PushSink) InvalidateSlot(backend int, repin sim.Time) {
	sl := s.slots[backend]
	if sl == nil || sl.mr == nil {
		return
	}
	s.fnic.Deregister(sl.mr)
	sl.mr = nil
	if repin <= 0 || s.closed {
		return
	}
	s.front.Eng.After(repin, func() {
		if s.closed || sl.mr != nil {
			return
		}
		s.register(sl)
	})
}

// Close deregisters every slot.
func (s *PushSink) Close() {
	s.closed = true
	for _, sl := range s.slots {
		if sl.mr != nil {
			s.fnic.Deregister(sl.mr)
			sl.mr = nil
		}
	}
}

func (s *PushSink) String() string {
	return fmt.Sprintf("pushsink slots=%d rx=%d torn=%d", len(s.slots), s.Received, s.Torn)
}
