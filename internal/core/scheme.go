// Package core implements the paper's contribution: five front-end
// based fine-grained resource-monitoring schemes over the simulated
// cluster substrate.
//
//	Socket-Async  (§3.1.1)  two back-end threads; probe hits the
//	                        report thread; data from a periodic
//	                        calculation loop.
//	Socket-Sync   (§3.1.2)  one back-end thread; probe triggers a
//	                        fresh /proc read.
//	RDMA-Async    (§3.2.1)  back-end calculation loop writes into a
//	                        registered user buffer; probe is a
//	                        one-sided RDMA read of that buffer.
//	RDMA-Sync     (§3.2.2)  kernel statistics registered directly;
//	                        probe DMAs the live kernel values; no
//	                        back-end process at all.
//	e-RDMA-Sync   (§5.2.1)  RDMA-Sync plus use of detailed kernel
//	                        state (pending interrupts) in the load
//	                        index.
//
// The package also provides the WebSphere-style weighted load index
// (§5.2.1) used by the dispatcher.
package core

import (
	"fmt"
	"strings"
)

// Scheme identifies a resource-monitoring scheme.
type Scheme int

// The five schemes evaluated in the paper.
const (
	SocketAsync Scheme = iota
	SocketSync
	RDMAAsync
	RDMASync
	ERDMASync
	numSchemes
)

// Schemes returns all schemes in the paper's presentation order.
func Schemes() []Scheme {
	return []Scheme{SocketAsync, SocketSync, RDMAAsync, RDMASync, ERDMASync}
}

// FourSchemes returns the four micro-benchmark schemes (the paper's
// Figures 3-6 exclude e-RDMA-Sync, which differs only in how the load
// index consumes the record).
func FourSchemes() []Scheme {
	return []Scheme{SocketAsync, SocketSync, RDMAAsync, RDMASync}
}

func (s Scheme) String() string {
	switch s {
	case SocketAsync:
		return "Socket-Async"
	case SocketSync:
		return "Socket-Sync"
	case RDMAAsync:
		return "RDMA-Async"
	case RDMASync:
		return "RDMA-Sync"
	case ERDMASync:
		return "e-RDMA-Sync"
	}
	return fmt.Sprintf("Scheme(%d)", int(s))
}

// ParseScheme resolves a case-insensitive scheme name (punctuation
// ignored, so "rdma_sync", "RDMA-Sync" and "rdmasync" all work).
func ParseScheme(name string) (Scheme, error) {
	norm := strings.Map(func(r rune) rune {
		switch r {
		case '-', '_', ' ':
			return -1
		}
		return r
	}, strings.ToLower(name))
	for _, s := range Schemes() {
		cand := strings.Map(func(r rune) rune {
			if r == '-' {
				return -1
			}
			return r
		}, strings.ToLower(s.String()))
		if norm == cand {
			return s, nil
		}
	}
	return 0, fmt.Errorf("core: unknown scheme %q", name)
}

// UsesRDMA reports whether probes use one-sided memory semantics.
func (s Scheme) UsesRDMA() bool { return s >= RDMAAsync }

// Asynchronous reports whether load information is produced by a
// periodic back-end calculation loop (so reads can be up to one
// refresh interval stale).
func (s Scheme) Asynchronous() bool { return s == SocketAsync || s == RDMAAsync }

// BackendThreads returns the number of monitoring threads the scheme
// needs on each back-end server: the paper's "no extra thread" benefit
// of RDMA-Sync (§4).
func (s Scheme) BackendThreads() int {
	switch s {
	case SocketAsync:
		return 2 // load-calculating + load-reporting
	case SocketSync:
		return 1
	case RDMAAsync:
		return 1 // load-calculating only
	default:
		return 0 // RDMA-Sync / e-RDMA-Sync: none
	}
}

// KernelDirect reports whether the scheme reads live kernel data
// structures (exact at the instant of access).
func (s Scheme) KernelDirect() bool { return s == RDMASync || s == ERDMASync }
