package core

import (
	"testing"

	"rdmamon/internal/sim"
	"rdmamon/internal/wire"
)

// TestFailoverTrip: the breaker trips after exactly TripAfter
// consecutive primary failures, and a success in between resets the run.
func TestFailoverTrip(t *testing.T) {
	fo := &Failover{} // defaults: TripAfter 2
	if fo.Tripped() || fo.Active() != TransportRDMA {
		t.Fatal("fresh breaker must be armed on RDMA")
	}
	if fo.PrimaryFail() {
		t.Fatal("tripped after one failure, want TripAfter=2")
	}
	fo.PrimaryOK() // success resets the failure run
	if fo.PrimaryFail() {
		t.Fatal("tripped after reset+one failure")
	}
	if !fo.PrimaryFail() {
		t.Fatal("did not trip after two consecutive failures")
	}
	if !fo.Tripped() || fo.Active() != TransportSocket {
		t.Fatal("tripped breaker must route to socket")
	}
	if fo.Trips != 1 {
		t.Fatalf("Trips = %d, want 1", fo.Trips)
	}
	// Further primary failures while tripped are no-ops.
	if fo.PrimaryFail() {
		t.Fatal("PrimaryFail while tripped reported a fresh trip")
	}
	if fo.Trips != 1 {
		t.Fatalf("Trips = %d after redundant failure, want 1", fo.Trips)
	}
}

// TestFailoverReArmSchedule: no re-arm while armed; while tripped the
// first cycle never re-arms and every ReArmEvery-th cycle does.
func TestFailoverReArmSchedule(t *testing.T) {
	fo := &Failover{Cfg: FailoverConfig{ReArmEvery: 3}}
	if fo.ShouldReArm() {
		t.Fatal("armed breaker scheduled a re-arm probe")
	}
	fo.PrimaryFail()
	fo.PrimaryFail() // trip
	var got []bool
	for i := 0; i < 7; i++ {
		got = append(got, fo.ShouldReArm())
	}
	want := []bool{false, false, true, false, false, true, false}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("re-arm schedule = %v, want %v", got, want)
		}
	}
}

// TestFailoverFailBackHysteresis: fail-back needs FailBackAfter
// consecutive re-arm successes; a failure in between resets the run.
func TestFailoverFailBackHysteresis(t *testing.T) {
	fo := &Failover{} // defaults: FailBackAfter 2
	if fo.ReArmOK() {
		t.Fatal("ReArmOK on an armed breaker reported a fail-back")
	}
	fo.PrimaryFail()
	fo.PrimaryFail() // trip
	if fo.ReArmOK() {
		t.Fatal("failed back after one re-arm success, want 2")
	}
	fo.ReArmFail() // flap: success run must reset
	if fo.ReArmOK() {
		t.Fatal("failed back after reset+one success")
	}
	if !fo.ReArmOK() {
		t.Fatal("did not fail back after two consecutive successes")
	}
	if fo.Tripped() || fo.Active() != TransportRDMA {
		t.Fatal("failed-back breaker must be armed on RDMA")
	}
	if fo.Trips != 1 || fo.FailBacks != 1 {
		t.Fatalf("Trips/FailBacks = %d/%d, want 1/1", fo.Trips, fo.FailBacks)
	}
	// After fail-back the trip counter starts fresh: it takes TripAfter
	// failures again, not a stale carry-over.
	if fo.PrimaryFail() {
		t.Fatal("breaker re-tripped on a single failure after fail-back")
	}
}

// TestFailoverHooks: transition observers fire exactly once per
// transition, in order.
func TestFailoverHooks(t *testing.T) {
	var events []string
	fo := &Failover{
		OnTrip:     func() { events = append(events, "trip") },
		OnFailBack: func() { events = append(events, "failback") },
	}
	fo.PrimaryFail()
	fo.PrimaryFail()
	fo.ReArmOK()
	fo.ReArmOK()
	if len(events) != 2 || events[0] != "trip" || events[1] != "failback" {
		t.Fatalf("events = %v, want [trip failback]", events)
	}
}

// TestProberFailoverEndToEnd drives the full degradation cycle in the
// simulator: an RDMA-Sync prober with an armed breaker and a standby
// socket agent keeps records flowing through an MR invalidation —
// degrading to the socket channel in the same probe cycle — and fails
// back to RDMA after the agent re-pins its region.
func TestProberFailoverEndToEnd(t *testing.T) {
	r := newRig(7)
	a := StartAgent(r.backend, r.bnic, AgentConfig{Scheme: RDMASync, StandbySocket: true})
	poll := 10 * sim.Millisecond
	p := StartProber(r.front, r.fnic, a, poll)
	p.Timeout = poll
	p.Failover = &Failover{} // defaults: trip 2, fail-back 2, re-arm every 4

	transports := make(map[Transport]int)
	p.OnRecord = func(rec wire.LoadRecord, at sim.Time) {
		transports[p.LastTransport]++
	}

	// Healthy warm-up: RDMA only.
	r.eng.RunUntil(200 * sim.Millisecond)
	if transports[TransportSocket] != 0 || transports[TransportRDMA] == 0 {
		t.Fatalf("warm-up transports = %v, want RDMA only", transports)
	}
	if p.Health.State() != Healthy {
		t.Fatalf("warm-up health = %v", p.Health.State())
	}

	// Invalidate the region; the agent re-pins 300ms later.
	a.InvalidateMR(300 * sim.Millisecond)

	// Within two polls the prober must have degraded to the standby —
	// same-cycle fallback means no record gap at all.
	preSocket := transports[TransportSocket]
	r.eng.RunUntil(230 * sim.Millisecond)
	if transports[TransportSocket] <= preSocket {
		t.Fatal("no socket-served record within two polls of MR invalidation")
	}
	if p.LastTransport != TransportSocket {
		t.Fatalf("LastTransport = %v during outage, want socket", p.LastTransport)
	}
	if p.Health.State() != Degraded {
		t.Fatalf("health = %v during outage, want degraded", p.Health.State())
	}
	if p.Errors != 0 {
		t.Fatalf("probe errors = %d: fallback must mask RDMA-only breakage", p.Errors)
	}

	// A few more cycles: the breaker must be tripped (2 consecutive RDMA
	// failures at 10ms poll) and still serving records.
	r.eng.RunUntil(290 * sim.Millisecond)
	if !p.Failover.Tripped() {
		t.Fatal("breaker not tripped during sustained RDMA outage")
	}
	if p.Failover.Trips != 1 {
		t.Fatalf("Trips = %d, want 1", p.Failover.Trips)
	}

	// After the re-pin at 500ms, background re-arm probes (every 4th
	// fallback cycle) need 2 consecutive successes: allow a generous
	// window, then the breaker must be armed and probing RDMA again.
	r.eng.RunUntil(1500 * sim.Millisecond)
	if p.Failover.Tripped() {
		t.Fatal("breaker still tripped 1s after MR re-pin")
	}
	if p.Failover.FailBacks != 1 {
		t.Fatalf("FailBacks = %d, want 1", p.Failover.FailBacks)
	}
	if p.LastTransport != TransportRDMA {
		t.Fatalf("LastTransport = %v after fail-back, want rdma", p.LastTransport)
	}
	if p.Health.State() != Healthy {
		t.Fatalf("health = %v after fail-back, want healthy", p.Health.State())
	}
	if p.ReArms == 0 || p.Fallbacks == 0 {
		t.Fatalf("ReArms/Fallbacks = %d/%d, want both non-zero", p.ReArms, p.Fallbacks)
	}

	// Records must never have stopped: the staleness gap is bounded by
	// roughly one probe cycle throughout the outage.
	if _, at, ok := p.Latest(); !ok || r.eng.Now()-at > 3*poll {
		t.Fatalf("latest record stale by %v at end of run", r.eng.Now()-at)
	}
}
