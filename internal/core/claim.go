package core

import (
	"encoding/binary"
	"fmt"

	"rdmamon/internal/sim"
	"rdmamon/internal/simnet"
	"rdmamon/internal/simos"
	"rdmamon/internal/wire"
)

// Claimed dispatch shards for active-active front-ends.
//
// The lease (lease.go) arbitrates ONE dispatcher; claims generalize it
// so every live front-end dispatches concurrently. The back-end space
// is folded onto a small table of shards (backend % Shards), each with
// its own 64-bit claim word hosted on the witness — wire.PackClaimWord,
// deliberately the lease-word layout — and a front-end may dispatch to
// a back-end only while it validly holds that back-end's shard claim.
// All arbitration is one-sided CAS on the shard word; the witness CPU
// never participates:
//
//   - renew:   CAS(my word -> my word, stamp+1) extends my validity by
//     TTL from the instant the CAS was POSTED (the freeze-safe rule the
//     lease established); a failed renew means the epoch moved under me
//     and I am fenced off the shard.
//   - claim:   CAS(observed word -> me, epoch+1, 0). Each shard has a
//     home front-end (shard % owners) that bids the moment it sees the
//     word vacant; foreigners wait VacantGrace first, so the steady
//     state converges to the home partition without racing every
//     vacancy N-ways.
//   - reclaim: a word unchanged for ExpireAfter is an orphan — its
//     holder crashed or froze holding the claim — and any front-end may
//     seize it at epoch+1. ExpireAfter > TTL guarantees the orphan's
//     validity lapsed before the new epoch begins, so a frozen holder
//     that thaws cannot double-dispatch: its next renew loses and
//     fences it.
//   - release: CAS(my word -> vacant, same epoch and stamp). Owner
//     zero means unclaimed; the epoch is preserved so the next winner
//     still takes a strictly larger epoch. A foreigner that adopted an
//     orphan hands it back this way after HandbackAfter, letting a
//     restarted home reclaim its partition.
//
// Releases keep claim handoff graceful; crashes make it merely bounded
// (ExpireAfter + a bid round). Either way exactly one front-end holds
// a shard at any instant — the word's CAS history is linear.

// ClaimConfig tunes the claim protocol. Durations are virtual time;
// the zero value takes defaults derived from the poll interval.
type ClaimConfig struct {
	// Shards is the number of claim words (back-ends fold onto them by
	// backend % Shards). Default 8.
	Shards int
	// TTL is how long a holder trusts a shard claim after each
	// confirmed renewal (default 6 poll intervals).
	TTL sim.Time
	// ExpireAfter is how long a word must sit unchanged before another
	// front-end treats the claim as orphaned and bids. Safety requires
	// it to exceed TTL by more than a CAS completion; the sanitizer
	// enforces ExpireAfter >= TTL + 2*CheckEvery (default 10 polls).
	ExpireAfter sim.Time
	// CheckEvery is the renew/observe cadence (default 2 polls).
	CheckEvery sim.Time
	// VacantGrace is how long a foreigner leaves a vacant word to its
	// home front-end before adopting it (default 2*CheckEvery).
	VacantGrace sim.Time
	// HandbackAfter is how long a foreigner keeps an adopted shard
	// before releasing it back toward its home (default 2*ExpireAfter).
	HandbackAfter sim.Time
}

// WithDefaults fills unset fields from the monitoring poll interval
// and enforces the ExpireAfter > TTL safety margin.
func (c ClaimConfig) WithDefaults(poll sim.Time) ClaimConfig {
	if poll <= 0 {
		poll = DefaultInterval
	}
	if c.Shards <= 0 {
		c.Shards = 8
	}
	if c.CheckEvery <= 0 {
		c.CheckEvery = 2 * poll
	}
	if c.TTL <= 0 {
		c.TTL = 6 * poll
	}
	if c.ExpireAfter <= 0 {
		c.ExpireAfter = c.TTL + 4*poll
	}
	if min := c.TTL + 2*c.CheckEvery; c.ExpireAfter < min {
		c.ExpireAfter = min
	}
	if c.VacantGrace <= 0 {
		c.VacantGrace = 2 * c.CheckEvery
	}
	if c.HandbackAfter <= 0 {
		c.HandbackAfter = 2 * c.ExpireAfter
	}
	return c
}

// Claim is the per-shard claim state machine for one front-end. Like
// Lease it is clock-free and outcome-driven: the manager performs the
// verbs and feeds back what happened, passing now explicitly.
type Claim struct {
	Cfg   ClaimConfig
	Me    uint16 // 1-based front-end ID (0 is "vacant")
	Shard uint16
	Home  bool // this front-end is the shard's home owner

	held       bool
	epoch      uint16
	stamp      uint32
	validUntil sim.Time
	heldSince  sim.Time

	lastWord     uint64
	lastChangeAt sim.Time
	seen         bool

	// Takeovers counts epochs won (home claims and orphan adoptions
	// alike); Renewals counts confirmed heartbeats; Deposals counts
	// fencing events (a renew or release that lost to a newer epoch);
	// Handbacks counts voluntary releases of adopted foreign shards.
	Takeovers uint64
	Renewals  uint64
	Deposals  uint64
	Handbacks uint64

	// OnAcquire/OnRenew/OnDepose/OnRelease observe holdership
	// transitions; the active-active invariant checker builds per-shard
	// validity intervals from them.
	OnAcquire func(shard, epoch uint16, now, validUntil sim.Time)
	OnRenew   func(shard, epoch uint16, now, validUntil sim.Time)
	OnDepose  func(shard, epoch uint16, now sim.Time)
	OnRelease func(shard, epoch uint16, now sim.Time)
}

// NewClaim builds the machine for shard on front-end me (1-based) in a
// ring of owners front-ends. The home mapping is shard % owners.
func NewClaim(me, shard uint16, owners int, cfg ClaimConfig) *Claim {
	home := owners > 0 && int(shard)%owners == int(me)-1
	return &Claim{Cfg: cfg.WithDefaults(0), Me: me, Shard: shard, Home: home}
}

// Held reports raw holdership (ignoring validity — use Valid to gate
// dispatch).
func (c *Claim) Held() bool { return c.held }

// Epoch returns the epoch this front-end last held the shard at.
func (c *Claim) Epoch() uint16 { return c.epoch }

// Valid reports whether this front-end may dispatch to the shard at
// now: it holds the claim and is within TTL of its last confirmed CAS.
// This is the fence consulted on every routing decision.
func (c *Claim) Valid(now sim.Time) bool {
	return c.held && now < c.validUntil
}

// ValidUntil returns the end of the current validity window.
func (c *Claim) ValidUntil() sim.Time { return c.validUntil }

// Observe feeds a non-holder's read of the shard word and reports
// whether a claim bid is due: a vacant word immediately for the home
// front-end and after VacantGrace for a foreigner; an owned word once
// it has sat unchanged for ExpireAfter (plus VacantGrace for a
// foreigner, so a live home beats foreigners to its own orphans).
func (c *Claim) Observe(word uint64, now sim.Time) bool {
	if word != c.lastWord || !c.seen {
		c.lastWord = word
		c.lastChangeAt = now
		c.seen = true
		return wire.ClaimVacant(word) && c.Home
	}
	if wire.ClaimVacant(word) {
		if c.Home {
			return true
		}
		return now-c.lastChangeAt >= c.Cfg.VacantGrace
	}
	wait := c.Cfg.ExpireAfter
	if !c.Home {
		wait += c.Cfg.VacantGrace
	}
	return now-c.lastChangeAt >= wait
}

// ClaimBid returns the CAS operands for a claim attempt over the last
// observed word: install me at the next epoch with a fresh stamp.
func (c *Claim) ClaimBid() (compare, swap uint64) {
	return c.lastWord, wire.PackClaimWord(c.Me, wire.WordEpoch(c.lastWord)+1, 0)
}

// ClaimWon records a successful claim CAS posted at now.
func (c *Claim) ClaimWon(now sim.Time) {
	c.held = true
	c.epoch = wire.WordEpoch(c.lastWord) + 1
	c.stamp = 0
	c.validUntil = now + c.Cfg.TTL
	c.heldSince = now
	c.lastWord = wire.PackClaimWord(c.Me, c.epoch, 0)
	c.lastChangeAt = now
	c.Takeovers++
	if c.OnAcquire != nil {
		c.OnAcquire(c.Shard, c.epoch, now, c.validUntil)
	}
}

// ClaimLost records a failed claim CAS; prev is the observed word and
// patience resets from it.
func (c *Claim) ClaimLost(prev uint64, now sim.Time) {
	c.lastWord = prev
	c.lastChangeAt = now
	c.seen = true
}

// RenewBid returns the CAS operands for a holder's heartbeat renewal.
func (c *Claim) RenewBid() (compare, swap uint64) {
	return wire.PackClaimWord(c.Me, c.epoch, c.stamp),
		wire.PackClaimWord(c.Me, c.epoch, c.stamp+1)
}

// RenewWon records a successful renewal posted at now, extending
// validity by TTL.
func (c *Claim) RenewWon(now sim.Time) {
	c.stamp++
	c.validUntil = now + c.Cfg.TTL
	c.lastWord = wire.PackClaimWord(c.Me, c.epoch, c.stamp)
	c.lastChangeAt = now
	c.Renewals++
	if c.OnRenew != nil {
		c.OnRenew(c.Shard, c.epoch, now, c.validUntil)
	}
}

// RenewLost records a failed renewal: the word moved to a newer epoch
// and this front-end is fenced off the shard.
func (c *Claim) RenewLost(prev uint64, now sim.Time) {
	c.depose(prev, now)
}

// HandbackDue reports whether a held foreign shard has been adopted
// long enough that it should be released toward its home.
func (c *Claim) HandbackDue(now sim.Time) bool {
	return c.held && !c.Home && now-c.heldSince >= c.Cfg.HandbackAfter
}

// ReleaseBid returns the CAS operands for a voluntary release: zero
// the owner, keep epoch and stamp so the next winner's epoch is still
// strictly larger.
func (c *Claim) ReleaseBid() (compare, swap uint64) {
	return wire.PackClaimWord(c.Me, c.epoch, c.stamp),
		wire.PackClaimWord(wire.ClaimVacantOwner, c.epoch, c.stamp)
}

// ReleaseWon records a successful release posted at now; the shard is
// immediately unclaimed and this front-end stops dispatching to it.
func (c *Claim) ReleaseWon(now sim.Time) {
	released := c.epoch
	c.held = false
	if c.validUntil > now {
		c.validUntil = now
	}
	c.lastWord = wire.PackClaimWord(wire.ClaimVacantOwner, c.epoch, c.stamp)
	c.lastChangeAt = now
	c.Handbacks++
	if c.OnRelease != nil {
		c.OnRelease(c.Shard, released, now)
	}
}

// ReleaseLost records a failed release CAS: someone already moved the
// word to a newer epoch, which is the same fencing outcome as a lost
// renewal.
func (c *Claim) ReleaseLost(prev uint64, now sim.Time) {
	c.depose(prev, now)
}

func (c *Claim) depose(prev uint64, now sim.Time) {
	deposed := c.epoch
	c.held = false
	if c.validUntil > now {
		c.validUntil = now
	}
	c.lastWord = prev
	c.lastChangeAt = now
	c.seen = true
	c.Deposals++
	if c.OnDepose != nil {
		c.OnDepose(c.Shard, deposed, now)
	}
}

func (c *Claim) String() string {
	role := "foreign"
	if c.Home {
		role = "home"
	}
	return fmt.Sprintf("claim[fe=%d shard=%d %s] held=%v epoch=%d stamp=%d until=%v",
		c.Me, c.Shard, role, c.held, c.epoch, c.stamp, c.validUntil)
}

// ClaimVault hosts the per-shard claim words and descriptive records
// in writable registered regions on the witness node. Each word gets
// its own region because the fabric's atomic unit is the first eight
// bytes of a region; after registration the witness CPU plays no part
// in arbitration.
type ClaimVault struct {
	words   [][]byte
	recs    [][]byte
	WordMRs []*simnet.MR
	RecMRs  []*simnet.MR
}

// NewClaimVault registers shards claim words and records on the
// witness NIC.
func NewClaimVault(nic *simnet.NIC, shards int) *ClaimVault {
	v := &ClaimVault{
		words:   make([][]byte, shards),
		recs:    make([][]byte, shards),
		WordMRs: make([]*simnet.MR, shards),
		RecMRs:  make([]*simnet.MR, shards),
	}
	for s := 0; s < shards; s++ {
		word := make([]byte, wire.ClaimWordSize)
		rec := make([]byte, wire.ClaimRecordSize)
		v.words[s] = word
		v.recs[s] = rec
		v.WordMRs[s] = nic.RegisterWritableMR(simnet.StaticSource(word), len(word),
			func(b []byte) { copy(word, b) })
		v.RecMRs[s] = nic.RegisterWritableMR(simnet.StaticSource(rec), len(rec),
			func(b []byte) { copy(rec, b) })
	}
	return v
}

// Shards returns the table size.
func (v *ClaimVault) Shards() int { return len(v.words) }

// Word returns shard s's current claim word (test and exporter
// introspection; front-ends read it over RDMA).
func (v *ClaimVault) Word(s int) uint64 { return binary.LittleEndian.Uint64(v.words[s]) }

// Owner returns the owner field of shard s's word (0 when vacant).
func (v *ClaimVault) Owner(s int) uint16 {
	o, _, _ := wire.UnpackClaimWord(v.Word(s))
	return o
}

// Record decodes shard s's descriptive claim record, if one has been
// written.
func (v *ClaimVault) Record(s int) (wire.ClaimRecord, error) { return wire.DecodeClaim(v.recs[s]) }

// WordKeys returns the registered keys of the claim words, indexed by
// shard.
func (v *ClaimVault) WordKeys() []uint32 {
	keys := make([]uint32, len(v.WordMRs))
	for i, mr := range v.WordMRs {
		keys[i] = mr.Key()
	}
	return keys
}

// RecKeys returns the registered keys of the claim records, indexed by
// shard.
func (v *ClaimVault) RecKeys() []uint32 {
	keys := make([]uint32, len(v.RecMRs))
	for i, mr := range v.RecMRs {
		keys[i] = mr.Key()
	}
	return keys
}

// claimOp tags what a posted CAS in a claim round was trying to do.
type claimOp uint8

const (
	opClaimRenew claimOp = iota
	opClaimBid
	opClaimRelease
)

// ClaimManager drives one front-end's claim machines over the fabric:
// a task that, every CheckEvery, reads the whole shard table in one
// doorbell, then posts every due renewal, claim bid and handback
// release as a single CAS batch — two doorbells per round regardless
// of shard count.
type ClaimManager struct {
	Claims []*Claim // indexed by shard

	node     *simos.Node
	nic      *simnet.NIC
	witness  int
	wordKeys []uint32
	recKeys  []uint32

	// CASErrors / ReadErrors count transport failures (timeouts during
	// partitions or witness downtime); the protocol retries next cycle
	// and lets validity lapse.
	CASErrors  uint64
	ReadErrors uint64
	// Rounds counts completed observe/bid cycles.
	Rounds uint64

	// reusable per-round scratch
	readReqs []simnet.ReadReq
	readBufs []byte
	casReqs  []simnet.CASReq
	casShard []uint16
	casOps   []claimOp

	task    *simos.Task
	stopped bool
}

// StartClaimManager spawns the claim task for front-end me (1-based)
// on node. The shard words and records live on the witness under
// wordKeys/recKeys (indexed by shard); owners is the front-end ring
// size for the home mapping.
func StartClaimManager(node *simos.Node, nic *simnet.NIC, witness int, wordKeys, recKeys []uint32, me uint16, owners int, cfg ClaimConfig) *ClaimManager {
	cfg = cfg.WithDefaults(0)
	if len(wordKeys) < cfg.Shards {
		cfg.Shards = len(wordKeys)
	}
	m := &ClaimManager{
		node:     node,
		nic:      nic,
		witness:  witness,
		wordKeys: wordKeys,
		recKeys:  recKeys,
		Claims:   make([]*Claim, cfg.Shards),
		readReqs: make([]simnet.ReadReq, cfg.Shards),
		readBufs: make([]byte, cfg.Shards*wire.ClaimWordSize),
	}
	for s := range m.Claims {
		m.Claims[s] = NewClaim(me, uint16(s), owners, cfg)
		m.readReqs[s] = simnet.ReadReq{
			Target: witness,
			Key:    wordKeys[s],
			Length: wire.ClaimWordSize,
			Buf:    m.readBufs[s*wire.ClaimWordSize : s*wire.ClaimWordSize : (s+1)*wire.ClaimWordSize],
		}
	}
	m.task = node.Spawn(fmt.Sprintf("claim-mgr-%d", me), func(tk *simos.Task) {
		var step func()
		next := func() { tk.Sleep(m.Claims[0].Cfg.CheckEvery, step) }
		step = func() {
			if m.stopped {
				tk.Exit()
				return
			}
			m.round(tk, next)
		}
		step()
	})
	return m
}

// round performs one observe/bid cycle: batch-read every shard word a
// non-holder needs, decide per-shard actions, post them as one CAS
// batch, then publish records for newly won shards.
func (m *ClaimManager) round(tk *simos.Task, next func()) {
	m.Rounds++
	m.nic.RDMAReadBatch(tk, m.readReqs, func(reads []simnet.ReadResult) {
		now := m.node.Eng.Now()
		m.casReqs = m.casReqs[:0]
		m.casShard = m.casShard[:0]
		m.casOps = m.casOps[:0]
		for s, c := range m.Claims {
			var cmp, swp uint64
			var op claimOp
			switch {
			case c.Held() && c.HandbackDue(now):
				cmp, swp = c.ReleaseBid()
				op = opClaimRelease
			case c.Held():
				cmp, swp = c.RenewBid()
				op = opClaimRenew
			default:
				if reads[s].Err != nil {
					m.ReadErrors++
					continue
				}
				word := binary.LittleEndian.Uint64(reads[s].Data)
				if !c.Observe(word, now) {
					continue
				}
				cmp, swp = c.ClaimBid()
				op = opClaimBid
			}
			m.casReqs = append(m.casReqs, simnet.CASReq{Target: m.witness, Key: m.wordKeys[s], Compare: cmp, Swap: swp})
			m.casShard = append(m.casShard, uint16(s))
			m.casOps = append(m.casOps, op)
		}
		if len(m.casReqs) == 0 {
			next()
			return
		}
		// Validity is stamped from the instant the batch is POSTED (one
		// doorbell, one instant for every WR in it), not from when the
		// completions are observed — the freeze-safe rule inherited from
		// the lease: a front-end frozen between post and completion must
		// not thaw into an extended validity the other front-ends have
		// already timed out.
		posted := m.node.Eng.Now()
		m.nic.RDMACompareSwapBatch(tk, m.casReqs, func(results []simnet.CASResult) {
			var won []uint16
			for i, res := range results {
				c := m.Claims[m.casShard[i]]
				if res.Err != nil {
					m.CASErrors++
					continue
				}
				ok := res.Prev == m.casReqs[i].Compare
				switch m.casOps[i] {
				case opClaimRenew:
					if ok {
						c.RenewWon(posted)
					} else {
						c.RenewLost(res.Prev, posted)
					}
				case opClaimBid:
					if ok {
						c.ClaimWon(posted)
						won = append(won, m.casShard[i])
					} else {
						c.ClaimLost(res.Prev, posted)
					}
				case opClaimRelease:
					if ok {
						c.ReleaseWon(posted)
					} else {
						c.ReleaseLost(res.Prev, posted)
					}
				}
			}
			m.publishRecords(tk, won, posted, next)
		})
	})
}

// publishRecords writes descriptive claim records for freshly won
// shards, one after another. Observability only — a write failure does
// not affect holdership.
func (m *ClaimManager) publishRecords(tk *simos.Task, won []uint16, now sim.Time, then func()) {
	if len(won) == 0 || len(m.recKeys) == 0 {
		then()
		return
	}
	s := won[0]
	c := m.Claims[s]
	rec := wire.ClaimRecord{
		Shard:   s,
		Owner:   c.Me,
		Epoch:   c.Epoch(),
		Stamp:   c.stamp,
		GrantNS: int64(now),
		TTLNS:   int64(c.Cfg.TTL),
	}
	m.nic.RDMAWrite(tk, m.witness, m.recKeys[s], rec.Encode(), func(error) {
		m.publishRecords(tk, won[1:], now, then)
	})
}

// Valid reports whether this front-end may dispatch to shard at now.
func (m *ClaimManager) Valid(shard int, now sim.Time) bool {
	if shard < 0 || shard >= len(m.Claims) {
		return false
	}
	return m.Claims[shard].Valid(now)
}

// HeldValid returns how many shards this front-end validly holds at
// now (fairness metrics).
func (m *ClaimManager) HeldValid(now sim.Time) int {
	n := 0
	for _, c := range m.Claims {
		if c.Valid(now) {
			n++
		}
	}
	return n
}

// Shards returns the claim table size this manager drives.
func (m *ClaimManager) Shards() int { return len(m.Claims) }

// Stop ends the claim task (a crashing front-end's tasks die with the
// node; Stop is for controlled teardown). Held claims are not
// released: they expire and are reclaimed, exactly like a crash.
func (m *ClaimManager) Stop() {
	m.stopped = true
	if m.task != nil {
		m.task.Exit()
	}
}
