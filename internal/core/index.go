package core

import "rdmamon/internal/wire"

// Weights configures the WebSphere-style weighted load index (§5.2.1):
// each component is normalised to [0,1] and combined linearly; the
// dispatcher sends a request to the back-end with the smallest index.
type Weights struct {
	CPU  float64 // mean CPU utilisation
	Run  float64 // run-queue length
	Mem  float64 // memory pressure
	Conn float64 // open connections
	IRQ  float64 // pending interrupts (only e-RDMA-Sync sets this)

	// Normalisation knobs: the raw value at which a component
	// saturates to 1.0.
	RunSat  float64 // runnable tasks per CPU
	ConnSat float64 // open connections
	IRQSat  float64 // pending interrupts
}

// DefaultWeights mirrors the IBM WebSphere mix the paper cites: CPU
// and connection load dominate, run-queue length refines, memory is a
// guard.
func DefaultWeights() Weights {
	return Weights{
		CPU: 0.35, Run: 0.2, Mem: 0.05, Conn: 0.4,
		RunSat: 8, ConnSat: 24, IRQSat: 8,
	}
}

// EWeights extends DefaultWeights with the pending-interrupt component
// used by e-RDMA-Sync: a node busy absorbing network interrupts is
// about to get slower than its CPU counters admit.
func EWeights() Weights {
	w := DefaultWeights()
	w.IRQ = 0.08
	return w
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// Index computes the weighted load index of a record. Larger means
// more loaded. The result is not bounded by 1.0 when weights sum above
// one; only ordering matters to the dispatcher.
func (w Weights) Index(r wire.LoadRecord) float64 {
	cpus := float64(r.NumCPU)
	if cpus == 0 {
		cpus = 1
	}
	cpu := float64(r.UtilMean()) / 1000
	run := 0.0
	if w.RunSat > 0 {
		run = clamp01(float64(r.NrRunning) / cpus / w.RunSat)
	}
	mem := clamp01(r.MemFraction())
	conn := 0.0
	if w.ConnSat > 0 {
		conn = clamp01(float64(r.Conns) / w.ConnSat)
	}
	irq := 0.0
	if w.IRQSat > 0 {
		irq = clamp01(float64(r.PendingIRQTotal()) / w.IRQSat)
	}
	return w.CPU*cpu + w.Run*run + w.Mem*mem + w.Conn*conn + w.IRQ*irq
}

// WeightsFor returns the index weights a scheme's dispatcher uses: all
// schemes use the standard mix except e-RDMA-Sync, which adds the
// interrupt component (it is the only scheme whose interrupt data is
// trustworthy, §5.1.4).
func WeightsFor(s Scheme) Weights {
	if s == ERDMASync {
		return EWeights()
	}
	return DefaultWeights()
}
