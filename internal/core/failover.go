package core

// Transport identifies which channel served a probe. The paper's RDMA
// schemes prefer the one-sided path; the failover machinery keeps a
// request/response socket channel in reserve for when the RDMA path
// breaks (MR invalidated, NIC down, transport timeouts).
type Transport int

const (
	// TransportRDMA is the preferred one-sided path.
	TransportRDMA Transport = iota
	// TransportSocket is the standby request/response path.
	TransportSocket
	// TransportPush is the agent-initiated one-sided write path of the
	// hybrid scheme: the back-end RDMA-Writes a delta record into the
	// front-end's aggregation slot instead of waiting to be read.
	TransportPush
)

func (t Transport) String() string {
	switch t {
	case TransportRDMA:
		return "rdma"
	case TransportSocket:
		return "socket"
	case TransportPush:
		return "push"
	}
	return "?"
}

// FailoverConfig tunes a per-backend transport breaker. The zero value
// takes every default.
type FailoverConfig struct {
	// TripAfter is the number of consecutive primary-transport failures
	// that trips the breaker onto the socket standby. Default 2 —
	// deliberately below HealthTracker.QuarantineAfter's default of 3,
	// so a back-end whose RDMA path alone is broken degrades to socket
	// probing before the health machine condemns it.
	TripAfter int
	// FailBackAfter is the number of consecutive re-arm successes
	// required before probing returns to RDMA. Default 2. Together with
	// ReArmEvery this is the fail-back hysteresis: one lucky read after
	// a flap does not bounce the breaker.
	FailBackAfter int
	// ReArmEvery issues a background re-arm probe of the RDMA path on
	// every Nth fallback cycle while tripped. Default 4: a broken path
	// is retested at a quarter of the probe rate, so a dead NIC costs a
	// trickle of wasted reads, not a full probe budget.
	ReArmEvery int
}

func (c FailoverConfig) withDefaults() FailoverConfig {
	if c.TripAfter <= 0 {
		c.TripAfter = 2
	}
	if c.FailBackAfter <= 0 {
		c.FailBackAfter = 2
	}
	if c.ReArmEvery <= 0 {
		c.ReArmEvery = 4
	}
	return c
}

// Failover is the transport breaker for one monitored back-end:
//
//	armed --fail*TripAfter--> tripped (probe via socket standby)
//	tripped --re-arm ok*FailBackAfter--> armed (probe via RDMA again)
//
// While tripped, the caller keeps probing over the socket standby every
// cycle (the back-end stays monitored, stale-but-alive per the paper's
// Table 1 trade-offs) and issues a low-rate background re-arm probe
// over RDMA; only FailBackAfter consecutive re-arm successes fail the
// breaker back, so a flapping path stays on the reliable transport.
//
// The machine is deliberately free of clocks and transports: callers
// (the simulated Prober, the live Probe) drive it with outcomes, which
// keeps a run under a fault plan exactly as deterministic as the
// engine driving it.
type Failover struct {
	Cfg FailoverConfig

	tripped  bool
	failRun  int // consecutive primary failures while armed
	rearmRun int // consecutive re-arm successes while tripped
	cycle    int // fallback cycles since trip, for the re-arm schedule

	// Trips / FailBacks count breaker transitions.
	Trips     uint64
	FailBacks uint64

	// OnTrip / OnFailBack, if set, observe transitions as they happen
	// (the chaos invariant checker timestamps failover latency here).
	OnTrip     func()
	OnFailBack func()
}

// Tripped reports whether probing is currently failed over to the
// socket standby.
func (f *Failover) Tripped() bool { return f.tripped }

// Active returns the transport probes should use right now.
func (f *Failover) Active() Transport {
	if f.tripped {
		return TransportSocket
	}
	return TransportRDMA
}

// PrimaryOK records a successful probe over the primary transport.
func (f *Failover) PrimaryOK() {
	f.failRun = 0
}

// PrimaryFail records a failed probe over the primary transport and
// reports whether this failure tripped the breaker.
func (f *Failover) PrimaryFail() bool {
	if f.tripped {
		return false
	}
	f.failRun++
	if f.failRun < f.Cfg.withDefaults().TripAfter {
		return false
	}
	f.tripped = true
	f.failRun = 0
	f.rearmRun = 0
	f.cycle = 0
	f.Trips++
	if f.OnTrip != nil {
		f.OnTrip()
	}
	return true
}

// ShouldReArm is called once per fallback probe cycle while tripped and
// reports whether this cycle should carry a background re-arm probe of
// the RDMA path. The first fallback cycle never re-arms (the path just
// proved broken); afterwards every ReArmEvery-th cycle does.
func (f *Failover) ShouldReArm() bool {
	if !f.tripped {
		return false
	}
	f.cycle++
	return f.cycle%f.Cfg.withDefaults().ReArmEvery == 0
}

// ReArmOK records a successful re-arm probe and reports whether the
// breaker just failed back to the primary transport.
func (f *Failover) ReArmOK() bool {
	if !f.tripped {
		return false
	}
	f.rearmRun++
	if f.rearmRun < f.Cfg.withDefaults().FailBackAfter {
		return false
	}
	f.tripped = false
	f.failRun = 0
	f.rearmRun = 0
	f.cycle = 0
	f.FailBacks++
	if f.OnFailBack != nil {
		f.OnFailBack()
	}
	return true
}

// ReArmFail records a failed re-arm probe (the path is still broken;
// the success run resets — fail-back needs consecutive proof).
func (f *Failover) ReArmFail() {
	f.rearmRun = 0
}
