package core

import (
	"testing"

	"rdmamon/internal/sim"
	"rdmamon/internal/simnet"
	"rdmamon/internal/simos"
	"rdmamon/internal/wire"
)

func claimCfg() ClaimConfig {
	// poll=50ms defaults: CheckEvery=100ms, TTL=300ms, ExpireAfter=500ms,
	// VacantGrace=200ms, HandbackAfter=1s.
	return ClaimConfig{Shards: 4}.WithDefaults(DefaultInterval)
}

func TestClaimConfigDefaultsEnforceSafetyMargin(t *testing.T) {
	c := claimCfg()
	if c.ExpireAfter <= c.TTL {
		t.Fatalf("ExpireAfter %v must exceed TTL %v", c.ExpireAfter, c.TTL)
	}
	// An unsafe explicit config is repaired, not honored.
	bad := ClaimConfig{TTL: 10 * sim.Second, ExpireAfter: sim.Second, CheckEvery: sim.Second}.WithDefaults(0)
	if bad.ExpireAfter < bad.TTL+2*bad.CheckEvery {
		t.Fatalf("sanitizer kept unsafe ExpireAfter %v for TTL %v", bad.ExpireAfter, bad.TTL)
	}
	if bad.Shards != 8 {
		t.Fatalf("default shards = %d, want 8", bad.Shards)
	}
}

// TestClaimHomeMapping pins the home partition: shard s is home to
// front-end (s % owners) + 1.
func TestClaimHomeMapping(t *testing.T) {
	cfg := claimCfg()
	for shard := uint16(0); shard < 8; shard++ {
		for me := uint16(1); me <= 3; me++ {
			c := NewClaim(me, shard, 3, cfg)
			want := int(shard)%3 == int(me)-1
			if c.Home != want {
				t.Fatalf("fe %d shard %d: home = %v, want %v", me, shard, c.Home, want)
			}
		}
	}
}

// TestClaimObservePatience drives the observe rules directly: a home
// front-end bids on vacancy immediately, a foreigner only after
// VacantGrace; an owned-but-stuck word is an orphan after ExpireAfter
// for the home and ExpireAfter+VacantGrace for a foreigner.
func TestClaimObservePatience(t *testing.T) {
	cfg := claimCfg()
	home := NewClaim(1, 0, 2, cfg) // shard 0 % 2 == 0 == me-1
	foreign := NewClaim(2, 0, 2, cfg)

	vacant := wire.PackClaimWord(wire.ClaimVacantOwner, 3, 7) // released at epoch 3
	if !home.Observe(vacant, 0) {
		t.Fatal("home must bid on a vacant word immediately")
	}
	if foreign.Observe(vacant, 0) {
		t.Fatal("foreigner must not bid on first sight of a vacancy")
	}
	if foreign.Observe(vacant, cfg.VacantGrace-1) {
		t.Fatal("foreigner bid before VacantGrace")
	}
	if !foreign.Observe(vacant, cfg.VacantGrace) {
		t.Fatal("foreigner must bid after VacantGrace")
	}
	// The bid fences to epoch 4: releases preserve the epoch.
	if _, swp := foreign.ClaimBid(); wire.WordEpoch(swp) != 4 {
		t.Fatalf("bid epoch = %d, want 4", wire.WordEpoch(swp))
	}

	held := wire.PackClaimWord(2, 5, 9)
	h2 := NewClaim(1, 0, 2, cfg)
	f2 := NewClaim(3, 0, 2, cfg) // not home for shard 0 either
	if h2.Observe(held, 0) || f2.Observe(held, 0) {
		t.Fatal("a live claim must not be bid on at first sight")
	}
	if h2.Observe(held, cfg.ExpireAfter-1) {
		t.Fatal("home expired a claim early")
	}
	if !h2.Observe(held, cfg.ExpireAfter) {
		t.Fatal("home must reclaim an orphan after ExpireAfter")
	}
	if f2.Observe(held, cfg.ExpireAfter) {
		t.Fatal("foreigner must yield the orphan to its home first")
	}
	if !f2.Observe(held, cfg.ExpireAfter+cfg.VacantGrace) {
		t.Fatal("foreigner must adopt the orphan after the extra grace")
	}
	// Any change to the word resets patience.
	if h2.Observe(wire.PackClaimWord(2, 5, 10), cfg.ExpireAfter+sim.Second) {
		t.Fatal("a fresh heartbeat must reset orphan patience")
	}
}

// TestClaimMachineLifecycle walks win -> renew -> handback -> fencing
// through the outcome methods.
func TestClaimMachineLifecycle(t *testing.T) {
	cfg := claimCfg()
	c := NewClaim(2, 1, 2, cfg) // shard 1 % 2 == 1 == me-1: home
	if !c.Home {
		t.Fatal("fe 2 must be home for shard 1 of 2 owners")
	}
	if !c.Observe(wire.PackClaimWord(0, 0, 0), 0) {
		t.Fatal("want immediate bid")
	}
	cmp, swp := c.ClaimBid()
	if cmp != 0 || swp != wire.PackClaimWord(2, 1, 0) {
		t.Fatalf("bid operands %#x -> %#x", cmp, swp)
	}
	c.ClaimWon(10)
	if !c.Valid(10+cfg.TTL-1) || c.Valid(10+cfg.TTL) || c.Epoch() != 1 {
		t.Fatalf("post-win state wrong: %v", c)
	}
	c.RenewWon(200)
	if !c.Valid(200+cfg.TTL-1) || c.Renewals != 1 {
		t.Fatalf("post-renew state wrong: %v", c)
	}
	// Releases zero the owner but keep epoch and stamp.
	rcmp, rswp := c.ReleaseBid()
	if rcmp != wire.PackClaimWord(2, 1, 1) || rswp != wire.PackClaimWord(0, 1, 1) {
		t.Fatalf("release operands %#x -> %#x", rcmp, rswp)
	}
	c.ReleaseWon(300)
	if c.Held() || c.Valid(300) || c.Handbacks != 1 {
		t.Fatalf("post-release state wrong: %v", c)
	}
	// Re-win from the released word: epoch must advance.
	if !c.Observe(rswp, 400) {
		t.Fatal("home must re-bid on its released shard")
	}
	_, swp2 := c.ClaimBid()
	if wire.WordEpoch(swp2) != 2 {
		t.Fatalf("re-bid epoch = %d, want 2", wire.WordEpoch(swp2))
	}
	c.ClaimWon(400)
	// A lost renew fences immediately.
	var fenced bool
	c.OnDepose = func(shard, epoch uint16, now sim.Time) { fenced = shard == 1 && epoch == 2 }
	c.RenewLost(wire.PackClaimWord(1, 3, 0), 500)
	if c.Held() || c.Valid(500) || !fenced || c.Deposals != 1 {
		t.Fatalf("post-deposal state wrong: %v", c)
	}
}

type claimRig struct {
	eng     *sim.Engine
	fab     *simnet.Fabric
	vault   *ClaimVault
	nodes   []*simos.Node
	nics    []*simnet.NIC
	mgrs    []*ClaimManager
	witness *simos.Node
}

func newClaimRig(t *testing.T, fes int, cfg ClaimConfig) *claimRig {
	t.Helper()
	cfg = cfg.WithDefaults(DefaultInterval)
	r := &claimRig{eng: sim.NewEngine(11)}
	r.fab = simnet.NewFabric(r.eng, simnet.Defaults())
	wn := simos.NewNode(r.eng, 100, simos.NodeDefaults())
	wnic := r.fab.Attach(wn)
	r.witness = wn
	r.vault = NewClaimVault(wnic, cfg.Shards)
	for i := 0; i < fes; i++ {
		n := simos.NewNode(r.eng, i+1, simos.NodeDefaults())
		nic := r.fab.Attach(n)
		r.nodes = append(r.nodes, n)
		r.nics = append(r.nics, nic)
		r.mgrs = append(r.mgrs, StartClaimManager(n, nic, 100,
			r.vault.WordKeys(), r.vault.RecKeys(), uint16(i+1), fes, cfg))
	}
	return r
}

// TestClaimManagerConvergesToHomePartition runs three front-ends over
// a four-shard table: the steady state assigns every shard to its home
// front-end, with published records matching the words.
func TestClaimManagerConvergesToHomePartition(t *testing.T) {
	cfg := claimCfg()
	r := newClaimRig(t, 3, cfg)
	r.eng.RunFor(2 * sim.Second)
	now := r.eng.Now()
	for s := 0; s < cfg.Shards; s++ {
		wantOwner := uint16(s%3) + 1
		if got := r.vault.Owner(s); got != wantOwner {
			t.Fatalf("shard %d owner = %d, want home %d", s, got, wantOwner)
		}
		if !r.mgrs[wantOwner-1].Valid(s, now) {
			t.Fatalf("home fe %d does not validly hold shard %d", wantOwner, s)
		}
		rec, err := r.vault.Record(s)
		if err != nil {
			t.Fatalf("shard %d record: %v", s, err)
		}
		if rec.Owner != wantOwner || rec.Shard != uint16(s) {
			t.Fatalf("shard %d record %v does not match word owner %d", s, rec, wantOwner)
		}
	}
	// Exactly one valid holder per shard.
	for s := 0; s < cfg.Shards; s++ {
		holders := 0
		for _, m := range r.mgrs {
			if m.Valid(s, now) {
				holders++
			}
		}
		if holders != 1 {
			t.Fatalf("shard %d has %d valid holders", s, holders)
		}
	}
}

// TestClaimManagerOrphanReclaimAndFence freezes a front-end holding
// claims: survivors must adopt its shards within the reclaim bound,
// and the thawed holder must be fenced (deposed on its stale renew),
// never re-validating into a double-claim.
func TestClaimManagerOrphanReclaimAndFence(t *testing.T) {
	cfg := claimCfg()
	r := newClaimRig(t, 3, cfg)
	r.eng.RunFor(2 * sim.Second)

	victim := 0
	frozeAt := r.eng.Now()
	r.nodes[victim].Freeze()
	bound := cfg.ExpireAfter + cfg.VacantGrace + 4*cfg.CheckEvery
	r.eng.RunFor(bound)
	now := r.eng.Now()
	for s := 0; s < cfg.Shards; s++ {
		owner := r.vault.Owner(s)
		if owner == uint16(victim)+1 {
			t.Fatalf("shard %d still owned by frozen fe after %v", s, bound)
		}
		if owner == 0 {
			t.Fatalf("shard %d left vacant after reclaim bound", s)
		}
		holders := 0
		for i, m := range r.mgrs {
			if i != victim && m.Valid(s, now) {
				holders++
			}
		}
		if holders != 1 {
			t.Fatalf("shard %d has %d valid survivors", s, holders)
		}
	}
	// The frozen holder's validity lapsed before any adoption began.
	for s := 0; s < cfg.Shards; s++ {
		c := r.mgrs[victim].Claims[s]
		if c.Held() && c.ValidUntil() > frozeAt+cfg.TTL {
			t.Fatalf("frozen holder's shard %d validity extended impossibly", s)
		}
	}

	// Thaw: the victim's stale renews lose and fence it; after
	// HandbackAfter the adopted shards drift home again.
	r.nodes[victim].Thaw()
	r.eng.RunFor(4 * cfg.CheckEvery)
	deposals := uint64(0)
	for _, c := range r.mgrs[victim].Claims {
		deposals += c.Deposals
	}
	if deposals == 0 {
		t.Fatal("thawed ex-holder was never fenced")
	}
	r.eng.RunFor(cfg.HandbackAfter + 6*cfg.CheckEvery)
	for s := 0; s < cfg.Shards; s++ {
		if wantHome := uint16(s%3) + 1; wantHome == uint16(victim)+1 {
			if got := r.vault.Owner(s); got != wantHome {
				t.Fatalf("shard %d not handed back to restarted home: owner %d", s, got)
			}
		}
	}
}

// TestClaimManagerDoorbellEconomy checks the two-doorbells-per-round
// contract: word reads and CAS posts are both batched, so doorbells
// grow with rounds, not with shard count.
func TestClaimManagerDoorbellEconomy(t *testing.T) {
	cfg := ClaimConfig{Shards: 16}.WithDefaults(DefaultInterval)
	r := newClaimRig(t, 2, cfg)
	r.eng.RunFor(2 * sim.Second)
	m := r.mgrs[0]
	nic := r.nics[0]
	if m.Rounds == 0 {
		t.Fatal("no rounds ran")
	}
	// <= 2 doorbells per round (read batch + CAS batch; rounds with no
	// due CAS ring once).
	if max := 2 * m.Rounds; nic.DoorbellBatches > max {
		t.Fatalf("doorbells %d exceed 2/round over %d rounds", nic.DoorbellBatches, m.Rounds)
	}
}
