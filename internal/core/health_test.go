package core

import "testing"

// TestHealthTransitions drives every (state, input) pair through the
// machine as event sequences: 'F' = Fail, 'O' = OK (primary transport),
// 'D' = DegradedOK (fallback transport). Each case asserts the state
// after every event, so a wrong intermediate transition is named, not
// just a wrong terminal one.
func TestHealthTransitions(t *testing.T) {
	cases := []struct {
		name   string
		events string
		want   []Health
	}{
		// From Healthy.
		{"healthy ok", "O", []Health{Healthy}},
		{"healthy degraded-ok", "D", []Health{Degraded}},
		{"healthy fail", "F", []Health{Suspect}},

		// From Suspect: one good probe of either flavour clears it;
		// QuarantineAfter(3) consecutive failures condemn.
		{"suspect ok", "FO", []Health{Suspect, Healthy}},
		{"suspect degraded-ok", "FD", []Health{Suspect, Degraded}},
		{"suspect fail short of quarantine", "FF", []Health{Suspect, Suspect}},
		{"suspect to quarantined", "FFF", []Health{Suspect, Suspect, Quarantined}},

		// From Degraded: same demotion path as Healthy, and a primary
		// success promotes straight back.
		{"degraded ok promotes", "DO", []Health{Degraded, Healthy}},
		{"degraded stays degraded", "DD", []Health{Degraded, Degraded}},
		{"degraded fail demotes", "DF", []Health{Degraded, Suspect}},
		{"degraded full demotion", "DFFF", []Health{Degraded, Suspect, Suspect, Quarantined}},

		// From Quarantined: failures keep it down; a success opens
		// probation, ProbationOK(2) consecutive successes readmit.
		{"quarantined fail stays", "FFFF", []Health{Suspect, Suspect, Quarantined, Quarantined}},
		{"quarantined to probation", "FFFO", []Health{Suspect, Suspect, Quarantined, Probation}},
		{"probation to healthy", "FFFOO", []Health{Suspect, Suspect, Quarantined, Probation, Healthy}},
		// A back-end reachable only via fallback earns Degraded, not
		// Healthy, out of probation — the dispatcher should know.
		{"probation to degraded", "FFFDD", []Health{Suspect, Suspect, Quarantined, Probation, Degraded}},
		{"probation mixed transports", "FFFOD", []Health{Suspect, Suspect, Quarantined, Probation, Degraded}},

		// Probation failure: straight back to quarantine, and the next
		// readmission costs the full probation again.
		{"probation fail", "FFFOF", []Health{Suspect, Suspect, Quarantined, Probation, Quarantined}},
		{"probation fail then full probation", "FFFOFOO",
			[]Health{Suspect, Suspect, Quarantined, Probation, Quarantined, Probation, Healthy}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var ht HealthTracker
			for i, ev := range tc.events {
				var got Health
				switch ev {
				case 'F':
					got = ht.Fail()
				case 'O':
					got = ht.OK()
				case 'D':
					got = ht.DegradedOK()
				default:
					t.Fatalf("bad event %q", ev)
				}
				if got != tc.want[i] {
					t.Fatalf("after %q[:%d]: state = %v, want %v",
						tc.events, i+1, got, tc.want[i])
				}
				if got != ht.State() {
					t.Fatalf("return value %v != State() %v", got, ht.State())
				}
			}
		})
	}
}

// TestHealthProbationFailPinsCounter pins the probation-failure fix:
// failing out of probation must set the failure run to the quarantine
// threshold, so the counter matches the Quarantined state it just
// entered. Before the fix the run restarted near zero, which let a
// subsequent Suspect-path demotion count the probation failure twice.
func TestHealthProbationFailPinsCounter(t *testing.T) {
	var ht HealthTracker
	qa, _ := ht.thresholds()
	for i := 0; i < qa; i++ {
		ht.Fail()
	}
	if ht.State() != Quarantined {
		t.Fatalf("setup: state = %v", ht.State())
	}
	ht.OK() // probation
	if ht.Fail() != Quarantined {
		t.Fatal("probation failure must re-quarantine")
	}
	if ht.failRun != qa {
		t.Fatalf("failRun = %d after probation failure, want pinned to %d", ht.failRun, qa)
	}
}

// TestHealthEligibility: dispatchable states are exactly Healthy,
// Suspect and Degraded.
func TestHealthEligibility(t *testing.T) {
	want := map[Health]bool{
		Healthy: true, Suspect: true, Degraded: true,
		Quarantined: false, Probation: false,
	}
	for h, e := range want {
		if h.Eligible() != e {
			t.Errorf("%v.Eligible() = %v, want %v", h, h.Eligible(), e)
		}
	}
}
