package core

import (
	"fmt"

	"rdmamon/internal/sim"
	"rdmamon/internal/simnet"
	"rdmamon/internal/simos"
	"rdmamon/internal/wire"
)

// DefaultPort is the back-end port socket-based probes are served on.
const DefaultPort = "rmon"

// DefaultInterval is the paper's default polling/refresh period T.
const DefaultInterval = 50 * sim.Millisecond

// Wire sizes of the socket probe exchange (header + payload).
const (
	ProbeReqSize   = 64
	ProbeReplySize = 32 + wire.RecordSize
)

// probeReq is the payload of a socket-based load request.
type probeReq struct {
	ReplyPort string
}

// RecordFromSnapshot converts a kernel snapshot to the wire record.
func RecordFromSnapshot(s simos.Snapshot, seq uint32) wire.LoadRecord {
	r := wire.LoadRecord{
		NumCPU:     uint8(s.NumCPU),
		NodeID:     uint16(s.NodeID),
		Seq:        seq,
		KTimeNS:    int64(s.Time),
		NrRunning:  clampU16(s.NrRunning),
		NrTasks:    clampU16(s.NrTasks),
		MemUsedKB:  uint32(s.MemUsedKB),
		MemTotalKB: uint32(s.MemTotalKB),
		NetRxBytes: s.NetRxBytes,
		NetTxBytes: s.NetTxBytes,
		CtxSwitch:  s.CtxSwitch,
		Conns:      clampU16(s.Conns),
	}
	for i := 0; i < s.NumCPU && i < wire.MaxCPU; i++ {
		r.UtilPerMille[i] = uint16(s.UtilPerMille[i])
		r.IrqPendingHard[i] = clampU16(s.IrqPendingHard[i])
		r.IrqPendingSoft[i] = clampU16(s.IrqPendingSoft[i])
		r.CumIRQ += s.CumIRQ[i]
	}
	return r
}

func clampU16(v int) uint16 {
	if v < 0 {
		return 0
	}
	if v > 0xFFFF {
		return 0xFFFF
	}
	return uint16(v)
}

// AgentConfig configures a back-end monitoring agent.
type AgentConfig struct {
	Scheme   Scheme
	Interval sim.Time // refresh period T of the asynchronous calc loop
	Port     string   // socket service port
	CopyCost sim.Time // user-space cost to copy/encode a record

	// StandbySocket additionally serves the socket probe port under the
	// RDMA schemes, giving the front-end a fallback channel when the
	// RDMA path breaks (see core.Failover). It costs the back-end one
	// report thread — knowingly re-accepting the Table 1 trade-off the
	// RDMA schemes exist to avoid, but only for as long as a breaker is
	// actually probing through it. Ignored by the socket schemes, which
	// serve that port anyway.
	StandbySocket bool

	// HistoryK, when > 0 on an RDMA scheme, registers a K-slot history
	// ring (wire.HistoryRing) instead of a single-record region: a
	// kernel timer samples the load every Interval into the ring, so one
	// one-sided read fetches the K most recent timestamped samples —
	// e-RDMA-Sync++. The sampler is a timer hook, not a task
	// (BackendTasks stays 0 for the sync family), preserving the §4
	// no-extra-thread property. 0 keeps the single-record region
	// bit-for-bit. Clamped to wire.MaxRingSlots; ignored by socket
	// schemes.
	HistoryK int
}

func (c *AgentConfig) sanitize() {
	if c.Interval <= 0 {
		c.Interval = DefaultInterval
	}
	if c.Port == "" {
		c.Port = DefaultPort
	}
	if c.CopyCost <= 0 {
		c.CopyCost = 25 * sim.Microsecond
	}
	if c.HistoryK > wire.MaxRingSlots {
		c.HistoryK = wire.MaxRingSlots
	}
	if c.HistoryK < 0 {
		c.HistoryK = 0
	}
}

// Agent is the back-end half of a monitoring scheme on one node. For
// the RDMA-Sync family it consists of nothing but a registered kernel
// memory region — Stop has nothing to kill, which is the paper's §4
// "no extra thread" property made literal.
type Agent struct {
	Scheme  Scheme
	Cfg     AgentConfig
	node    *simos.Node
	nic     *simnet.NIC
	mr      *simnet.MR
	mrSrc   func() []byte // registration source, kept for re-pinning
	mrLen   int           // registered region size (record or ring)
	shared  []byte        // "known memory location": encoded record
	dmaBuf  []byte        // scratch for kernel-direct encoding
	ring    *wire.HistoryRing
	ringTk  *sim.Ticker // kernel timer filling the ring (not a task)
	sample  wire.LoadRecord
	seq     uint32
	stopped bool
	tasks   []*simos.Task
}

// StartAgent installs the back-end side of cfg.Scheme on node.
func StartAgent(node *simos.Node, nic *simnet.NIC, cfg AgentConfig) *Agent {
	cfg.sanitize()
	a := &Agent{Scheme: cfg.Scheme, Cfg: cfg, node: node, nic: nic}
	prime := func() {
		// Initialize the shared location before exposing it so the
		// very first probe never observes an unwritten region.
		a.shared = make([]byte, wire.RecordSize)
		RecordFromSnapshot(node.K.Snapshot(), 0).AppendTo(a.shared)
	}
	switch cfg.Scheme {
	case SocketAsync:
		prime()
		a.startCalcLoop()
		a.startReportThread(true)
	case SocketSync:
		a.startReportThread(false)
	case RDMAAsync:
		prime()
		if cfg.HistoryK > 0 {
			// The calc loop publishes into the ring as well as the shared
			// record, so remote readers get history at T granularity with
			// the scheme's usual asynchronous staleness.
			a.initRing()
			a.mrSrc = simnet.StaticSource(a.ring.Bytes())
			a.mrLen = a.ring.Size()
		} else {
			a.mrSrc = simnet.StaticSource(a.shared)
			a.mrLen = wire.RecordSize
		}
		a.startCalcLoop()
		a.mr = nic.RegisterMR(a.mrSrc, a.mrLen)
		if cfg.StandbySocket {
			// Standby channel: answers from the same shared location the
			// calc loop refreshes, preserving the scheme's asynchronous
			// staleness semantics over either transport.
			a.startReportThread(true)
		}
	case RDMASync, ERDMASync:
		if cfg.HistoryK > 0 {
			// e-RDMA-Sync++: the region is a K-slot seqlock ring. A
			// kernel timer (not a task) samples every Interval, and the
			// DMA-instant source pushes one more live sample as the read
			// lands — the newest slot is always current, exactly the
			// RDMA-Sync freshness contract, while the remaining slots
			// carry the recent history one read now amortizes.
			a.initRing()
			a.startRingTimer()
			a.mrSrc = func() []byte {
				a.ringPush()
				return a.ring.Bytes()
			}
			a.mrLen = a.ring.Size()
		} else {
			// Register the kernel statistics directly: the source closure
			// runs at the remote NIC's DMA instant, with zero host-CPU
			// cost, and always sees the live values.
			a.dmaBuf = make([]byte, wire.RecordSize)
			a.mrSrc = func() []byte {
				a.seq++
				rec := RecordFromSnapshot(node.K.Snapshot(), a.seq)
				return rec.AppendTo(a.dmaBuf)
			}
			a.mrLen = wire.RecordSize
		}
		a.mr = nic.RegisterMR(a.mrSrc, a.mrLen)
		if cfg.StandbySocket {
			// Standby channel: a synchronous report thread reading /proc
			// per request, like Socket-Sync. It shares the agent's
			// sequence counter with the DMA source, so sequence numbers
			// stay monotonic across transports.
			a.startReportThread(false)
		}
	default:
		panic(fmt.Sprintf("core: unknown scheme %v", cfg.Scheme))
	}
	return a
}

// initRing builds the history ring and primes it with one sample so a
// reader never sees an empty region.
func (a *Agent) initRing() {
	a.ring = wire.NewHistoryRing(a.Cfg.HistoryK, uint16(a.node.ID))
	a.ringPush()
}

// ringPush samples the kernel and publishes into the ring. Allocation-
// free: the sample is staged in a.sample and encoded in place.
func (a *Agent) ringPush() {
	a.seq++
	a.sample = RecordFromSnapshot(a.node.K.Snapshot(), a.seq)
	a.ring.Push(&a.sample)
}

// startRingTimer arms the kernel-timer sampler that fills the ring
// every Interval. It is an engine ticker, not a simos task — the
// monitoring agent still shows zero back-end threads, which is the
// paper's point.
func (a *Agent) startRingTimer() {
	a.ringTk = a.node.Eng.NewTicker(a.Cfg.Interval, func() {
		if a.stopped {
			return
		}
		a.ringPush()
	})
}

// RingK returns the history-ring slot count (0 when the agent exports
// a single-record region).
func (a *Agent) RingK() int {
	if a.ring == nil {
		return 0
	}
	return a.ring.K()
}

// Ring exposes the agent's history ring (nil without HistoryK);
// experiments read Pushes() from it.
func (a *Agent) Ring() *wire.HistoryRing { return a.ring }

// Node returns the back-end node.
func (a *Agent) Node() *simos.Node { return a.node }

// RKey returns the remote key of the agent's registered region (RDMA
// schemes only; zero otherwise).
func (a *Agent) RKey() uint32 {
	if a.mr == nil {
		return 0
	}
	return a.mr.Key()
}

// Port returns the socket service port name.
func (a *Agent) Port() string { return a.Cfg.Port }

// BackendTasks returns the number of live monitoring tasks on the
// back-end (0 for the RDMA-Sync family).
func (a *Agent) BackendTasks() int {
	n := 0
	for _, t := range a.tasks {
		if t.Alive() {
			n++
		}
	}
	return n
}

// Stop terminates the agent's back-end tasks and deregisters its
// memory region.
func (a *Agent) Stop() {
	a.stopped = true
	for _, t := range a.tasks {
		t.Exit()
	}
	if a.ringTk != nil {
		a.ringTk.Stop()
		a.ringTk = nil
	}
	if a.mr != nil {
		a.nic.Deregister(a.mr)
		a.mr = nil
	}
}

// InvalidateMR models the remote key going stale: the region is
// deregistered immediately (in-flight and subsequent reads with the
// old key fail) and, if repin > 0, re-registered with a fresh key
// after repin of virtual time — the agent noticing and re-pinning the
// page. Probers pick the new key up automatically because they ask the
// agent for RKey() on every probe.
func (a *Agent) InvalidateMR(repin sim.Time) {
	if a.mr == nil {
		return
	}
	a.nic.Deregister(a.mr)
	a.mr = nil
	if repin <= 0 || a.stopped {
		return
	}
	src := a.mrSrc
	a.node.Eng.After(repin, func() {
		if a.stopped || a.mr != nil {
			return
		}
		if a.ring != nil {
			// Readers must not compute slopes across the discontinuity:
			// advance the ring epoch so their trend state resets.
			a.ring.BumpEpoch()
		}
		a.mr = a.nic.RegisterMR(src, a.mrLen)
	})
}

// startCalcLoop runs the load-calculating thread: read /proc, copy the
// formatted record to the shared location, sleep T, repeat (paper
// Figure 1a steps 1-4).
func (a *Agent) startCalcLoop() {
	t := a.node.Spawn("rmon-calc", func(tk *simos.Task) {
		var loop func()
		loop = func() {
			if a.stopped {
				tk.Exit()
				return
			}
			tk.ReadProc(func(s simos.Snapshot) {
				tk.Compute(a.Cfg.CopyCost, func() {
					a.seq++
					a.sample = RecordFromSnapshot(s, a.seq)
					a.sample.AppendTo(a.shared)
					if a.ring != nil {
						a.ring.Push(&a.sample)
					}
					tk.Sleep(a.Cfg.Interval, loop)
				})
			})
		}
		loop()
	})
	a.tasks = append(a.tasks, t)
}

// startReportThread runs the load-reporting thread. In the async
// variant it answers from the shared location; in the sync variant it
// reads /proc per request (paper Figure 1b steps 2-4).
func (a *Agent) startReportThread(async bool) {
	port := a.node.Port(a.Cfg.Port)
	t := a.node.Spawn("rmon-report", func(tk *simos.Task) {
		var serve func(m simos.Message)
		reply := func(m simos.Message, payload []byte) {
			req, ok := m.Payload.(probeReq)
			if !ok {
				tk.Recv(port, serve)
				return
			}
			a.nic.Send(tk, m.From, req.ReplyPort, ProbeReplySize, payload, func() {
				if a.stopped {
					tk.Exit()
					return
				}
				tk.Recv(port, serve)
			})
		}
		serve = func(m simos.Message) {
			if a.stopped {
				tk.Exit()
				return
			}
			if async {
				tk.Compute(a.Cfg.CopyCost, func() {
					reply(m, append([]byte(nil), a.shared...))
				})
				return
			}
			tk.ReadProc(func(s simos.Snapshot) {
				tk.Compute(a.Cfg.CopyCost, func() {
					a.seq++
					reply(m, RecordFromSnapshot(s, a.seq).Encode())
				})
			})
		}
		tk.Recv(port, serve)
	})
	a.tasks = append(a.tasks, t)
}
