package core

import (
	"encoding/binary"
	"fmt"

	"rdmamon/internal/sim"
	"rdmamon/internal/simnet"
	"rdmamon/internal/simos"
	"rdmamon/internal/wire"
)

// Leased primaryship for front-end replicas.
//
// Every replica shadow-probes the whole cluster over RDMA (free to the
// back-ends), but only the lease holder dispatches. The lease is a
// single 64-bit word — (holder, epoch, heartbeat), see wire.PackLeaseWord
// — hosted in a writable registered region on a witness node and
// mutated exclusively with one-sided compare-and-swap:
//
//   - renew:    CAS(my word -> my word, heartbeat+1). Success extends my
//     validity by TTL; failure means the epoch moved under me and I am
//     deposed, which is the fencing signal.
//   - observe:  a follower RDMA-Reads the word each cycle. If it has
//     not changed for TakeoverAfter, the holder is presumed dead.
//   - takeover: CAS(observed word -> me, epoch+1, 0). The compare arm
//     makes takeover races safe: exactly one standby wins the epoch.
//
// No clocks are compared across nodes. The holder trusts its lease for
// TTL after the instant it *posted* each successful CAS; a standby
// waits TakeoverAfter after the last *locally observed* change. The
// post always precedes the apply at the witness, and a standby's
// observation of the apply happens at or after it, so TakeoverAfter >
// TTL guarantees the old holder's validity has lapsed before a new
// epoch can begin. Stamping from the post (not from the completion
// observation) matters: a host frozen between posting a renewal and
// seeing its completion thaws to a stale success, and counting TTL
// from the thaw would revive a lease the standbys already timed out.

// LeaseRole is a replica's current role in the lease protocol.
type LeaseRole uint8

const (
	// RoleFollower observes the lease word and stands by.
	RoleFollower LeaseRole = iota
	// RolePrimary holds the lease and may dispatch while valid.
	RolePrimary
)

func (r LeaseRole) String() string {
	if r == RolePrimary {
		return "primary"
	}
	return "follower"
}

// LeaseConfig tunes the lease protocol. All durations are in virtual
// time; the zero value takes defaults derived from the poll interval
// via WithDefaults.
type LeaseConfig struct {
	// TTL is how long the holder trusts its lease after each confirmed
	// renewal (default 6 poll intervals).
	TTL sim.Time
	// TakeoverAfter is how long a follower must observe an unchanged
	// lease word before bidding for takeover. Safety requires it to
	// exceed TTL by more than a CAS completion latency; WithDefaults
	// and the sanitizer enforce TakeoverAfter >= TTL + 2*CheckEvery
	// (default 10 poll intervals).
	TakeoverAfter sim.Time
	// CheckEvery is the renew/observe cadence (default 2 poll
	// intervals).
	CheckEvery sim.Time
}

// WithDefaults fills unset fields from the monitoring poll interval
// and enforces the TakeoverAfter > TTL safety margin.
func (c LeaseConfig) WithDefaults(poll sim.Time) LeaseConfig {
	if poll <= 0 {
		poll = DefaultInterval
	}
	if c.CheckEvery <= 0 {
		c.CheckEvery = 2 * poll
	}
	if c.TTL <= 0 {
		c.TTL = 6 * poll
	}
	if c.TakeoverAfter <= 0 {
		c.TakeoverAfter = c.TTL + 4*poll
	}
	if min := c.TTL + 2*c.CheckEvery; c.TakeoverAfter < min {
		c.TakeoverAfter = min
	}
	return c
}

// Lease is the per-replica lease state machine. Like Failover it is
// clock-free and outcome-driven: the manager performs the verbs and
// feeds back what happened; the machine never reads a clock itself
// (callers pass now), so it is exactly unit-testable.
type Lease struct {
	Cfg LeaseConfig
	Me  uint16 // 1-based holder ID (0 is reserved for "vacant")

	role       LeaseRole
	epoch      uint16
	heartbeat  uint32
	validUntil sim.Time

	lastWord     uint64
	lastChangeAt sim.Time
	seen         bool

	// Takeovers counts epochs this replica won; Renewals counts
	// confirmed heartbeats; Deposals counts renewals lost to a newer
	// epoch (the fencing events).
	Takeovers uint64
	Renewals  uint64
	Deposals  uint64

	// OnAcquire/OnRenew/OnDepose observe role transitions (the HA
	// invariant checker builds validity intervals from them).
	OnAcquire func(epoch uint16, now, validUntil sim.Time)
	OnRenew   func(epoch uint16, now, validUntil sim.Time)
	OnDepose  func(epoch uint16, now sim.Time)
}

// NewLease builds a follower-state lease machine for holder me.
func NewLease(me uint16, cfg LeaseConfig) *Lease {
	return &Lease{Cfg: cfg.WithDefaults(0), Me: me}
}

// Role returns the current role.
func (l *Lease) Role() LeaseRole { return l.role }

// Epoch returns the epoch this replica last held (meaningful while
// primary; the last-held epoch after deposal).
func (l *Lease) Epoch() uint16 { return l.epoch }

// Valid reports whether this replica may dispatch at now: it is
// primary and within TTL of its last confirmed CAS. This is the fence
// consulted on every routing decision.
func (l *Lease) Valid(now sim.Time) bool {
	return l.role == RolePrimary && now < l.validUntil
}

// ValidUntil returns the end of the current validity window (zero for
// a follower that never held the lease).
func (l *Lease) ValidUntil() sim.Time { return l.validUntil }

// Observe feeds a follower's read of the lease word and reports
// whether a takeover bid is due: immediately if the word is vacant,
// otherwise once the word has been unchanged for TakeoverAfter.
func (l *Lease) Observe(word uint64, now sim.Time) bool {
	if word != l.lastWord || !l.seen {
		l.lastWord = word
		l.lastChangeAt = now
		l.seen = true
		return word == wire.LeaseVacant
	}
	if word == wire.LeaseVacant {
		return true
	}
	return now-l.lastChangeAt >= l.Cfg.TakeoverAfter
}

// TakeoverBid returns the CAS operands for a takeover attempt:
// compare is the last observed word, swap installs this replica with
// the next epoch and a fresh heartbeat.
func (l *Lease) TakeoverBid() (compare, swap uint64) {
	_, epoch, _ := wire.UnpackLeaseWord(l.lastWord)
	return l.lastWord, wire.PackLeaseWord(l.Me, epoch+1, 0)
}

// TakeoverWon records a successful takeover CAS completing at now.
func (l *Lease) TakeoverWon(now sim.Time) {
	_, epoch, _ := wire.UnpackLeaseWord(l.lastWord)
	l.role = RolePrimary
	l.epoch = epoch + 1
	l.heartbeat = 0
	l.validUntil = now + l.Cfg.TTL
	l.lastWord = wire.PackLeaseWord(l.Me, l.epoch, 0)
	l.lastChangeAt = now
	l.Takeovers++
	if l.OnAcquire != nil {
		l.OnAcquire(l.epoch, now, l.validUntil)
	}
}

// TakeoverLost records a failed takeover CAS: another replica moved
// the word first. prev is the value the CAS observed; patience resets
// from it.
func (l *Lease) TakeoverLost(prev uint64, now sim.Time) {
	l.lastWord = prev
	l.lastChangeAt = now
	l.seen = true
}

// RenewBid returns the CAS operands for a heartbeat renewal.
func (l *Lease) RenewBid() (compare, swap uint64) {
	return wire.PackLeaseWord(l.Me, l.epoch, l.heartbeat),
		wire.PackLeaseWord(l.Me, l.epoch, l.heartbeat+1)
}

// RenewWon records a successful renewal CAS completing at now,
// extending validity by TTL. A primary whose validity lapsed during a
// transport outage revalidates here — safe, because the successful CAS
// proves nobody took the epoch meanwhile.
func (l *Lease) RenewWon(now sim.Time) {
	l.heartbeat++
	l.validUntil = now + l.Cfg.TTL
	l.lastWord = wire.PackLeaseWord(l.Me, l.epoch, l.heartbeat)
	l.lastChangeAt = now
	l.Renewals++
	if l.OnRenew != nil {
		l.OnRenew(l.epoch, now, l.validUntil)
	}
}

// RenewLost records a failed renewal CAS: the word moved to a newer
// epoch, so this replica has been deposed and must stop dispatching —
// the epoch fence. prev is the word the CAS observed.
func (l *Lease) RenewLost(prev uint64, now sim.Time) {
	deposed := l.epoch
	l.role = RoleFollower
	if l.validUntil > now {
		l.validUntil = now
	}
	l.lastWord = prev
	l.lastChangeAt = now
	l.seen = true
	l.Deposals++
	if l.OnDepose != nil {
		l.OnDepose(deposed, now)
	}
}

func (l *Lease) String() string {
	return fmt.Sprintf("lease[%d] %s epoch=%d hb=%d until=%v",
		l.Me, l.role, l.epoch, l.heartbeat, l.validUntil)
}

// LeaseVault hosts the lease word and the descriptive lease record in
// writable registered regions on the witness node. After registration
// the witness CPU plays no part in the protocol: acquisition, renewal
// and observation are all one-sided.
type LeaseVault struct {
	word   []byte
	rec    []byte
	WordMR *simnet.MR
	RecMR  *simnet.MR
}

// NewLeaseVault registers the lease regions on the witness NIC.
func NewLeaseVault(nic *simnet.NIC) *LeaseVault {
	v := &LeaseVault{
		word: make([]byte, wire.LeaseWordSize),
		rec:  make([]byte, wire.LeaseRecordSize),
	}
	v.WordMR = nic.RegisterWritableMR(simnet.StaticSource(v.word), len(v.word),
		func(b []byte) { copy(v.word, b) })
	v.RecMR = nic.RegisterWritableMR(simnet.StaticSource(v.rec), len(v.rec),
		func(b []byte) { copy(v.rec, b) })
	return v
}

// Word returns the current lease word (test and exporter
// introspection; replicas read it over RDMA).
func (v *LeaseVault) Word() uint64 { return binary.LittleEndian.Uint64(v.word) }

// Record decodes the descriptive lease record, if one has been
// written.
func (v *LeaseVault) Record() (wire.LeaseRecord, error) { return wire.DecodeLease(v.rec) }

// LeaseManager drives one replica's lease machine over the fabric: a
// task that renews while primary and observes/bids while follower,
// every CheckEvery.
type LeaseManager struct {
	Lease *Lease

	node    *simos.Node
	nic     *simnet.NIC
	witness int
	wordKey uint32
	recKey  uint32

	// CASErrors / ReadErrors count transport failures (timeouts during
	// partitions or witness downtime); the protocol just retries next
	// cycle and lets validity lapse.
	CASErrors  uint64
	ReadErrors uint64

	task    *simos.Task
	stopped bool
}

// StartLeaseManager spawns the lease task for replica me on node. The
// lease word and record live on the witness node under the given keys.
func StartLeaseManager(node *simos.Node, nic *simnet.NIC, witness int, wordKey, recKey uint32, me uint16, cfg LeaseConfig) *LeaseManager {
	m := &LeaseManager{
		Lease:   NewLease(me, cfg),
		node:    node,
		nic:     nic,
		witness: witness,
		wordKey: wordKey,
		recKey:  recKey,
	}
	m.task = node.Spawn(fmt.Sprintf("lease-mgr-%d", me), func(tk *simos.Task) {
		var step func()
		next := func() { tk.Sleep(m.Lease.Cfg.CheckEvery, step) }
		step = func() {
			if m.stopped {
				tk.Exit()
				return
			}
			if m.Lease.Role() == RolePrimary {
				cmp, swp := m.Lease.RenewBid()
				// Validity is stamped from the instant the CAS is POSTED,
				// not from when its completion is observed: a host frozen
				// between post and completion would otherwise thaw, see a
				// stale success, and extend a lease whose word-change the
				// standbys observed (and timed out) long ago — the exact
				// split-brain window the chaos harness caught.
				posted := node.Eng.Now()
				m.nic.RDMACompareSwap(tk, m.witness, m.wordKey, cmp, swp, func(prev uint64, err error) {
					switch {
					case err != nil:
						m.CASErrors++
					case prev == cmp:
						m.Lease.RenewWon(posted)
					default:
						m.Lease.RenewLost(prev, posted)
					}
					next()
				})
				return
			}
			m.nic.RDMARead(tk, m.witness, m.wordKey, wire.LeaseWordSize, func(data []byte, err error) {
				if err != nil {
					m.ReadErrors++
					next()
					return
				}
				word := binary.LittleEndian.Uint64(data)
				if !m.Lease.Observe(word, node.Eng.Now()) {
					next()
					return
				}
				cmp, swp := m.Lease.TakeoverBid()
				posted := node.Eng.Now() // see the renewal path
				m.nic.RDMACompareSwap(tk, m.witness, m.wordKey, cmp, swp, func(prev uint64, err error) {
					switch {
					case err != nil:
						m.CASErrors++
						next()
					case prev == cmp:
						m.Lease.TakeoverWon(posted)
						m.publishRecord(tk, posted, next)
					default:
						m.Lease.TakeoverLost(prev, posted)
						next()
					}
				})
			})
		}
		step()
	})
	return m
}

// publishRecord writes the descriptive lease record after winning an
// epoch. It is observability only — a write failure does not affect
// primaryship.
func (m *LeaseManager) publishRecord(tk *simos.Task, now sim.Time, then func()) {
	rec := wire.LeaseRecord{
		Holder:  m.Lease.Me,
		Epoch:   m.Lease.Epoch(),
		GrantNS: int64(now),
		TTLNS:   int64(m.Lease.Cfg.TTL),
	}
	m.nic.RDMAWrite(tk, m.witness, m.recKey, rec.Encode(), func(error) { then() })
}

// Stop ends the lease task (a crashing replica's tasks die with the
// node; Stop is for controlled teardown).
func (m *LeaseManager) Stop() {
	m.stopped = true
	if m.task != nil {
		m.task.Exit()
	}
}
