package core

import (
	"testing"

	"rdmamon/internal/sim"
	"rdmamon/internal/simnet"
	"rdmamon/internal/simos"
	"rdmamon/internal/wire"
)

func TestSchemeStringAndParse(t *testing.T) {
	for _, s := range Schemes() {
		got, err := ParseScheme(s.String())
		if err != nil || got != s {
			t.Errorf("ParseScheme(%q) = %v, %v", s.String(), got, err)
		}
	}
	variants := map[string]Scheme{
		"rdma-sync":   RDMASync,
		"RDMA_SYNC":   RDMASync,
		"rdmasync":    RDMASync,
		"socketasync": SocketAsync,
		"e-rdma-sync": ERDMASync,
		"eRDMASync":   ERDMASync,
	}
	for in, want := range variants {
		got, err := ParseScheme(in)
		if err != nil || got != want {
			t.Errorf("ParseScheme(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseScheme("bogus"); err == nil {
		t.Error("ParseScheme(bogus) should fail")
	}
}

func TestSchemeProperties(t *testing.T) {
	cases := []struct {
		s       Scheme
		rdma    bool
		async   bool
		threads int
		kdirect bool
	}{
		{SocketAsync, false, true, 2, false},
		{SocketSync, false, false, 1, false},
		{RDMAAsync, true, true, 1, false},
		{RDMASync, true, false, 0, true},
		{ERDMASync, true, false, 0, true},
	}
	for _, c := range cases {
		if c.s.UsesRDMA() != c.rdma || c.s.Asynchronous() != c.async ||
			c.s.BackendThreads() != c.threads || c.s.KernelDirect() != c.kdirect {
			t.Errorf("%v properties wrong", c.s)
		}
	}
	if len(FourSchemes()) != 4 {
		t.Error("FourSchemes should have 4 entries")
	}
}

func TestIndexMonotonicInLoad(t *testing.T) {
	w := DefaultWeights()
	mk := func(util int, run, conns int) wire.LoadRecord {
		r := wire.LoadRecord{NumCPU: 2, MemTotalKB: 1 << 20, MemUsedKB: 100 << 10}
		r.UtilPerMille[0] = uint16(util)
		r.UtilPerMille[1] = uint16(util)
		r.NrRunning = uint16(run)
		r.Conns = uint16(conns)
		return r
	}
	idle := w.Index(mk(0, 0, 0))
	busy := w.Index(mk(900, 8, 30))
	full := w.Index(mk(1000, 16, 64))
	if !(idle < busy && busy < full) {
		t.Fatalf("index not monotone: %v %v %v", idle, busy, full)
	}
}

func TestIndexIRQComponentOnlyForEScheme(t *testing.T) {
	r := wire.LoadRecord{NumCPU: 2}
	r.IrqPendingHard[1] = 6
	plain := WeightsFor(RDMASync).Index(r)
	e := WeightsFor(ERDMASync).Index(r)
	if e <= plain {
		t.Fatalf("e-weights should penalize pending IRQs: %v vs %v", e, plain)
	}
	for _, s := range []Scheme{SocketAsync, SocketSync, RDMAAsync, RDMASync} {
		if WeightsFor(s).IRQ != 0 {
			t.Errorf("%v should not use the IRQ component", s)
		}
	}
}

func TestIndexClamps(t *testing.T) {
	w := DefaultWeights()
	r := wire.LoadRecord{NumCPU: 1, NrRunning: 60000, Conns: 60000}
	r.UtilPerMille[0] = 1000
	v := w.Index(r)
	if v > w.CPU+w.Run+w.Mem+w.Conn+1e-9 {
		t.Fatalf("index %v exceeds weight sum: components not clamped", v)
	}
}

func TestRecordFromSnapshotClamps(t *testing.T) {
	s := simos.Snapshot{NodeID: 3, NumCPU: 2, NrRunning: 1 << 20, Conns: -5}
	r := RecordFromSnapshot(s, 7)
	if r.NrRunning != 0xFFFF {
		t.Errorf("NrRunning should clamp to u16 max, got %d", r.NrRunning)
	}
	if r.Conns != 0 {
		t.Errorf("negative Conns should clamp to 0, got %d", r.Conns)
	}
	if r.Seq != 7 || r.NodeID != 3 {
		t.Error("seq/node not propagated")
	}
}

// --- end-to-end rig ----------------------------------------------------

type rig struct {
	eng     *sim.Engine
	fab     *simnet.Fabric
	front   *simos.Node
	fnic    *simnet.NIC
	backend *simos.Node
	bnic    *simnet.NIC
}

func newRig(seed int64) *rig {
	eng := sim.NewEngine(seed)
	fab := simnet.NewFabric(eng, simnet.Defaults())
	front := simos.NewNode(eng, 0, simos.NodeDefaults())
	backend := simos.NewNode(eng, 1, simos.NodeDefaults())
	return &rig{
		eng: eng, fab: fab,
		front: front, fnic: fab.Attach(front),
		backend: backend, bnic: fab.Attach(backend),
	}
}

func (r *rig) agent(s Scheme) *Agent {
	return StartAgent(r.backend, r.bnic, AgentConfig{Scheme: s})
}

func TestProbeEndToEndAllSchemes(t *testing.T) {
	for _, s := range Schemes() {
		s := s
		t.Run(s.String(), func(t *testing.T) {
			r := newRig(1)
			a := r.agent(s)
			p := StartProber(r.front, r.fnic, a, 10*sim.Millisecond)
			r.eng.RunUntil(sim.Second)
			rec, at, ok := p.Latest()
			if !ok {
				t.Fatal("no record received")
			}
			if rec.NodeID != 1 {
				t.Fatalf("record from node %d, want 1", rec.NodeID)
			}
			if rec.NumCPU != 2 {
				t.Fatalf("NumCPU = %d, want 2", rec.NumCPU)
			}
			if at == 0 {
				t.Fatal("no arrival timestamp")
			}
			if p.Errors != 0 {
				t.Fatalf("probe errors: %d", p.Errors)
			}
			if p.Latency.Count() < 50 {
				t.Fatalf("expected ~100 probes in 1s at 10ms poll, got %d", p.Latency.Count())
			}
			if a.BackendTasks() != s.BackendThreads() {
				t.Fatalf("backend tasks = %d, want %d", a.BackendTasks(), s.BackendThreads())
			}
		})
	}
}

func TestRDMASyncFreshness(t *testing.T) {
	// The record's kernel timestamp must be taken mid-flight (at DMA
	// time), strictly newer than the previous poll and older than
	// arrival.
	r := newRig(2)
	a := r.agent(RDMASync)
	p := StartProber(r.front, r.fnic, a, 20*sim.Millisecond)
	var staleness []sim.Time
	p.OnRecord = func(rec wire.LoadRecord, at sim.Time) {
		staleness = append(staleness, at-sim.Time(rec.KTimeNS))
	}
	r.eng.RunUntil(sim.Second)
	if len(staleness) == 0 {
		t.Fatal("no records")
	}
	for _, st := range staleness {
		if st < 0 {
			t.Fatal("record from the future")
		}
		if st > 100*sim.Microsecond {
			t.Fatalf("RDMA-Sync staleness %v, want < one RTT", st)
		}
	}
}

func TestAsyncSchemesAreStale(t *testing.T) {
	for _, s := range []Scheme{SocketAsync, RDMAAsync} {
		s := s
		t.Run(s.String(), func(t *testing.T) {
			r := newRig(3)
			a := StartAgent(r.backend, r.bnic, AgentConfig{Scheme: s, Interval: 50 * sim.Millisecond})
			p := StartProber(r.front, r.fnic, a, 7*sim.Millisecond)
			var maxStale sim.Time
			p.OnRecord = func(rec wire.LoadRecord, at sim.Time) {
				if st := at - sim.Time(rec.KTimeNS); st > maxStale {
					maxStale = st
				}
			}
			r.eng.RunUntil(2 * sim.Second)
			// With a 50ms refresh and 7ms polling, some probes must
			// observe data tens of ms old.
			if maxStale < 30*sim.Millisecond {
				t.Fatalf("max staleness %v, want >=30ms for an async scheme", maxStale)
			}
			if maxStale > 80*sim.Millisecond {
				t.Fatalf("max staleness %v, absurdly old", maxStale)
			}
		})
	}
}

func TestSocketLatencyGrowsUnderLoadRDMADoesNot(t *testing.T) {
	// Figure 3 in miniature: 12 background compute+comm threads on the
	// back-end inflate socket probe latency but not RDMA latency.
	measure := func(s Scheme, bg int) float64 {
		r := newRig(4)
		a := r.agent(s)
		// Background threads: compute ~1ms then block briefly (they
		// wake boosted, competing with the monitor wakeup).
		for i := 0; i < bg; i++ {
			r.backend.Spawn("bg", func(tk *simos.Task) {
				var loop func()
				loop = func() {
					d := sim.Time(r.eng.Rand().Intn(1000)+500) * sim.Microsecond
					tk.Compute(d, func() {
						tk.Sleep(200*sim.Microsecond, loop)
					})
				}
				loop()
			})
		}
		p := StartProber(r.front, r.fnic, a, 20*sim.Millisecond)
		r.eng.RunUntil(3 * sim.Second)
		return p.Latency.Mean() // microseconds
	}
	sockIdle := measure(SocketSync, 0)
	sockLoaded := measure(SocketSync, 12)
	rdmaIdle := measure(RDMASync, 0)
	rdmaLoaded := measure(RDMASync, 12)
	if sockLoaded < 4*sockIdle {
		t.Fatalf("socket latency should inflate under load: idle=%.1fus loaded=%.1fus",
			sockIdle, sockLoaded)
	}
	if rdmaLoaded > 1.5*rdmaIdle {
		t.Fatalf("RDMA latency should not inflate: idle=%.1fus loaded=%.1fus",
			rdmaIdle, rdmaLoaded)
	}
	if rdmaIdle >= sockIdle {
		t.Fatalf("RDMA (%.1fus) should beat sockets (%.1fus) even idle", rdmaIdle, sockIdle)
	}
}

func TestRDMASyncAccuracyUnderLoad(t *testing.T) {
	// Figure 5a in miniature: with the runnable count changing, the
	// kernel-direct scheme reports the truth at DMA time; the async
	// scheme reports stale counts.
	r := newRig(5)
	aSync := r.agent(RDMASync)
	aAsync := StartAgent(r.backend, r.bnic, AgentConfig{Scheme: RDMAAsync, Interval: 50 * sim.Millisecond})
	// Load: bursts of short-lived tasks changing nr_running.
	r.eng.NewTicker(30*sim.Millisecond, func() {
		n := r.eng.Rand().Intn(6)
		for i := 0; i < n; i++ {
			r.backend.Spawn("burst", func(tk *simos.Task) {
				tk.NoBoost = true
				tk.Compute(sim.Time(r.eng.Rand().Intn(20)+5)*sim.Millisecond, func() {})
			})
		}
	})
	pSync := StartProber(r.front, r.fnic, aSync, 10*sim.Millisecond)
	pAsync := StartProber(r.front, r.fnic, aAsync, 10*sim.Millisecond)
	var devSync, devAsync float64
	var n int
	check := func(p *Prober, dev *float64) {
		p.OnRecord = func(rec wire.LoadRecord, at sim.Time) {
			truth := float64(r.backend.NrRunnable())
			d := float64(rec.NrRunning) - truth
			if d < 0 {
				d = -d
			}
			*dev += d
			n++
		}
	}
	check(pSync, &devSync)
	check(pAsync, &devAsync)
	r.eng.RunUntil(5 * sim.Second)
	if n == 0 {
		t.Fatal("no observations")
	}
	if devSync > devAsync/2 {
		t.Fatalf("RDMA-Sync deviation (%v) should be far below RDMA-Async (%v)",
			devSync, devAsync)
	}
}

func TestMonitorLatestAndStop(t *testing.T) {
	eng := sim.NewEngine(6)
	fab := simnet.NewFabric(eng, simnet.Defaults())
	front := simos.NewNode(eng, 0, simos.NodeDefaults())
	fnic := fab.Attach(front)
	var agents []*Agent
	for i := 1; i <= 3; i++ {
		nd := simos.NewNode(eng, i, simos.NodeDefaults())
		nic := fab.Attach(nd)
		agents = append(agents, StartAgent(nd, nic, AgentConfig{Scheme: RDMASync}))
	}
	m := StartMonitor(front, fnic, agents, 10*sim.Millisecond)
	eng.RunUntil(200 * sim.Millisecond)
	if len(m.Backends()) != 3 {
		t.Fatalf("backends = %v", m.Backends())
	}
	for _, b := range m.Backends() {
		rec, _, ok := m.Latest(b)
		if !ok || int(rec.NodeID) != b {
			t.Fatalf("Latest(%d) = %+v, ok=%v", b, rec, ok)
		}
	}
	if _, _, ok := m.Latest(99); ok {
		t.Fatal("Latest of unknown backend should be !ok")
	}
	m.Stop()
	probesAtStop := m.Probers[1].Latency.Count()
	eng.RunUntil(sim.Second)
	if m.Probers[1].Latency.Count() > probesAtStop+1 {
		t.Fatal("probing continued after Stop")
	}
}

func TestProbeErrorAfterAgentStop(t *testing.T) {
	r := newRig(7)
	a := r.agent(RDMASync)
	p := StartProber(r.front, r.fnic, a, 10*sim.Millisecond)
	r.eng.RunUntil(100 * sim.Millisecond)
	a.Stop() // deregisters the MR
	r.eng.RunUntil(300 * sim.Millisecond)
	if p.Errors == 0 {
		t.Fatal("probes after deregistration should error")
	}
}

func TestTruthSampler(t *testing.T) {
	eng := sim.NewEngine(8)
	nd := simos.NewNode(eng, 0, simos.NodeDefaults())
	var n int
	ts := StartTruth(nd, sim.Millisecond, func(s simos.Snapshot) {
		if s.NodeID != 0 {
			t.Error("wrong node in truth snapshot")
		}
		n++
	})
	eng.RunUntil(100 * sim.Millisecond)
	ts.Stop()
	eng.RunUntil(200 * sim.Millisecond)
	if n < 99 || n > 101 {
		t.Fatalf("truth samples = %d, want ~100", n)
	}
}

func TestAgentStopKillsBackendTasks(t *testing.T) {
	r := newRig(9)
	a := r.agent(SocketAsync)
	r.eng.RunUntil(100 * sim.Millisecond)
	if a.BackendTasks() != 2 {
		t.Fatalf("BackendTasks = %d, want 2", a.BackendTasks())
	}
	a.Stop()
	r.eng.RunUntil(500 * sim.Millisecond)
	if a.BackendTasks() != 0 {
		t.Fatalf("BackendTasks = %d after Stop, want 0", a.BackendTasks())
	}
}
