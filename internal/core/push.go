package core

import (
	"sync"

	"rdmamon/internal/sim"
	"rdmamon/internal/simnet"
	"rdmamon/internal/simos"
	"rdmamon/internal/wire"
)

// PushPort is the front-end port multicast load reports arrive on.
const PushPort = "rmon-push"

// PushGroup is the default multicast group name.
const PushGroup = "rmon-push-group"

// The paper's §6 discusses the hardware-multicast alternative: instead
// of the front-end pulling load records, each back-end multicasts its
// record to the group of front-ends every T. This scales to many
// front-ends in one send — but it uses channel semantics, so it keeps
// a monitoring process on the back-end (with its /proc and TX costs and
// its scheduling delays) and gives up the one-sided benefits. PushAgent
// and PushMonitor implement it for comparison.

// PushAgent is the back-end multicast publisher.
type PushAgent struct {
	Interval sim.Time
	node     *simos.Node
	seq      uint32
	stopped  bool
	task     *simos.Task

	// Published counts multicast reports sent.
	Published uint64
}

// StartPushAgent launches the publisher on node, multicasting to
// group every interval.
func StartPushAgent(node *simos.Node, nic *simnet.NIC, group string, interval sim.Time) *PushAgent {
	if interval <= 0 {
		interval = DefaultInterval
	}
	a := &PushAgent{Interval: interval, node: node}
	a.task = node.Spawn("rmon-push", func(tk *simos.Task) {
		var loop func()
		loop = func() {
			if a.stopped {
				tk.Exit()
				return
			}
			tk.ReadProc(func(s simos.Snapshot) {
				tk.Compute(25*sim.Microsecond, func() {
					a.seq++
					payload := RecordFromSnapshot(s, a.seq).Encode()
					nic.Multicast(tk, group, ProbeReplySize, payload, func() {
						a.Published++
						tk.Sleep(a.Interval, loop)
					})
				})
			})
		}
		loop()
	})
	return a
}

// Stop ends the publisher.
func (a *PushAgent) Stop() {
	a.stopped = true
	a.task.Exit()
}

// PushMonitor is the front-end receiver: it joins the multicast group
// and caches the latest record per back-end. It satisfies the same
// Latest contract as Monitor.
//
// Latest is safe to call from outside the engine goroutine (an
// exporter or dispatcher thread polling the cache while the rx task
// runs): mu guards the record maps and counters against the rx task's
// writes.
type PushMonitor struct {
	mu      sync.Mutex
	last    map[int]wire.LoadRecord
	lastAt  map[int]sim.Time
	task    *simos.Task
	stopped bool

	// received counts reports processed; torn counts records that
	// failed validation. Read them via Stats.
	received uint64
	torn     uint64
}

// StartPushMonitor joins front to the group and starts the receiver.
func StartPushMonitor(fab *simnet.Fabric, front *simos.Node, group string) *PushMonitor {
	m := &PushMonitor{
		last:   make(map[int]wire.LoadRecord),
		lastAt: make(map[int]sim.Time),
	}
	fab.JoinGroup(group, front.ID, PushPort)
	port := front.Port(PushPort)
	m.task = front.Spawn("rmon-push-rx", func(tk *simos.Task) {
		var serve func(msg simos.Message)
		serve = func(msg simos.Message) {
			if m.stopped {
				tk.Exit()
				return
			}
			tk.Compute(2*sim.Microsecond, func() {
				if raw, ok := msg.Payload.([]byte); ok {
					m.mu.Lock()
					if rec, err := wire.Decode(raw); err == nil {
						m.last[int(rec.NodeID)] = rec
						m.lastAt[int(rec.NodeID)] = front.Eng.Now()
						m.received++
					} else {
						m.torn++
					}
					m.mu.Unlock()
				}
				tk.Recv(port, serve)
			})
		}
		tk.Recv(port, serve)
	})
	return m
}

// Latest returns the newest record pushed by a back-end. Safe for
// concurrent use with the rx task.
func (m *PushMonitor) Latest(backend int) (wire.LoadRecord, sim.Time, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	rec, ok := m.last[backend]
	return rec, m.lastAt[backend], ok
}

// Stats returns the processed / torn record counts. Safe for
// concurrent use with the rx task.
func (m *PushMonitor) Stats() (received, torn uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.received, m.torn
}

// Stop ends the receiver.
func (m *PushMonitor) Stop() {
	m.stopped = true
	m.task.Exit()
}

// Task exposes the publisher task (diagnostics and tests).
func (a *PushAgent) Task() *simos.Task { return a.task }
