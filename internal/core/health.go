package core

// Health is the monitor's belief about a back-end, driven purely by
// probe outcomes. The machine is deliberately conservative in both
// directions: a back-end is not condemned on one lost probe (transient
// loss is routine on a lossy link), and a condemned back-end is not
// trusted again on one good probe (a flapping host should not bounce
// in and out of the dispatch set).
//
//	Healthy --fail--> Suspect --fail*N--> Quarantined
//	Quarantined --ok--> Probation --ok*M--> Healthy
//	Suspect --ok--> Healthy         Probation --fail--> Quarantined
type Health int

const (
	// Healthy: probes succeed; full member of the dispatch set.
	Healthy Health = iota
	// Suspect: at least one recent probe failed, but fewer than the
	// quarantine threshold in a row. Still dispatched to.
	Suspect
	// Quarantined: enough consecutive failures that the back-end is
	// presumed dead. Excluded from dispatch.
	Quarantined
	// Probation: a quarantined back-end answered a probe; it must
	// answer several in a row before traffic returns.
	Probation
)

func (h Health) String() string {
	switch h {
	case Healthy:
		return "healthy"
	case Suspect:
		return "suspect"
	case Quarantined:
		return "quarantined"
	case Probation:
		return "probation"
	}
	return "?"
}

// Eligible reports whether a back-end in this state should receive
// dispatched traffic.
func (h Health) Eligible() bool { return h == Healthy || h == Suspect }

// HealthTracker runs the health state machine for one back-end.
// The zero value is usable (it gets default thresholds on first use).
type HealthTracker struct {
	// QuarantineAfter is the number of consecutive failures that move
	// Suspect to Quarantined. Default 3.
	QuarantineAfter int
	// ProbationOK is the number of consecutive successes that move
	// Probation to Healthy. Default 2.
	ProbationOK int

	state     Health
	failRun   int
	okRun     int
	Failures  uint64 // total failed probes observed
	Successes uint64 // total successful probes observed
}

func (ht *HealthTracker) thresholds() (qa, po int) {
	qa, po = ht.QuarantineAfter, ht.ProbationOK
	if qa <= 0 {
		qa = 3
	}
	if po <= 0 {
		po = 2
	}
	return
}

// State returns the current health state.
func (ht *HealthTracker) State() Health { return ht.state }

// Fail records a failed probe and returns the new state.
func (ht *HealthTracker) Fail() Health {
	qa, _ := ht.thresholds()
	ht.Failures++
	ht.okRun = 0
	ht.failRun++
	switch ht.state {
	case Healthy:
		ht.state = Suspect
		if ht.failRun >= qa {
			ht.state = Quarantined
		}
	case Suspect:
		if ht.failRun >= qa {
			ht.state = Quarantined
		}
	case Probation:
		// One bad probe during probation sends it straight back.
		ht.state = Quarantined
	}
	return ht.state
}

// OK records a successful probe and returns the new state.
func (ht *HealthTracker) OK() Health {
	_, po := ht.thresholds()
	ht.Successes++
	ht.failRun = 0
	ht.okRun++
	switch ht.state {
	case Suspect:
		ht.state = Healthy
	case Quarantined:
		ht.state = Probation
		if ht.okRun >= po {
			ht.state = Healthy
		}
	case Probation:
		if ht.okRun >= po {
			ht.state = Healthy
		}
	}
	return ht.state
}

// Reset returns the tracker to Healthy with runs cleared (used when a
// back-end is administratively replaced rather than observed to
// recover).
func (ht *HealthTracker) Reset() {
	ht.state = Healthy
	ht.failRun = 0
	ht.okRun = 0
}
