package core

// Health is the monitor's belief about a back-end, driven purely by
// probe outcomes. The machine is deliberately conservative in both
// directions: a back-end is not condemned on one lost probe (transient
// loss is routine on a lossy link), and a condemned back-end is not
// trusted again on one good probe (a flapping host should not bounce
// in and out of the dispatch set).
//
//	Healthy --fail--> Suspect --fail*N--> Quarantined
//	Quarantined --ok--> Probation --ok*M--> Healthy
//	Suspect --ok--> Healthy         Probation --fail--> Quarantined
//
// Degraded is a sub-state of "alive": the back-end answers probes over
// its standby (socket) transport while the preferred RDMA path is
// down. It follows the same transitions as Healthy — fallback
// successes land in Degraded instead of Healthy, a primary-transport
// success promotes Degraded to Healthy, and failures demote it through
// Suspect exactly like a healthy back-end.
type Health int

const (
	// Healthy: probes succeed; full member of the dispatch set.
	Healthy Health = iota
	// Suspect: at least one recent probe failed, but fewer than the
	// quarantine threshold in a row. Still dispatched to.
	Suspect
	// Quarantined: enough consecutive failures that the back-end is
	// presumed dead. Excluded from dispatch.
	Quarantined
	// Probation: a quarantined back-end answered a probe; it must
	// answer several in a row before traffic returns.
	Probation
	// Degraded: alive and answering probes, but only over the fallback
	// transport (the RDMA path is broken and the breaker is tripped).
	// Eligible for dispatch — stale-but-alive monitoring beats starving
	// a working server of traffic.
	Degraded
)

func (h Health) String() string {
	switch h {
	case Healthy:
		return "healthy"
	case Suspect:
		return "suspect"
	case Quarantined:
		return "quarantined"
	case Probation:
		return "probation"
	case Degraded:
		return "degraded"
	}
	return "?"
}

// Eligible reports whether a back-end in this state should receive
// dispatched traffic. Degraded is eligible: the server works, only the
// fast monitoring path is down.
func (h Health) Eligible() bool { return h == Healthy || h == Suspect || h == Degraded }

// HealthTracker runs the health state machine for one back-end.
// The zero value is usable (it gets default thresholds on first use).
type HealthTracker struct {
	// QuarantineAfter is the number of consecutive failures that move
	// Suspect to Quarantined. Default 3.
	QuarantineAfter int
	// ProbationOK is the number of consecutive successes that move
	// Probation to Healthy. Default 2.
	ProbationOK int

	state     Health
	failRun   int
	okRun     int
	Failures  uint64 // total failed probes observed
	Successes uint64 // total successful probes observed
}

func (ht *HealthTracker) thresholds() (qa, po int) {
	qa, po = ht.QuarantineAfter, ht.ProbationOK
	if qa <= 0 {
		qa = 3
	}
	if po <= 0 {
		po = 2
	}
	return
}

// State returns the current health state.
func (ht *HealthTracker) State() Health { return ht.state }

// Fail records a failed probe and returns the new state.
func (ht *HealthTracker) Fail() Health {
	qa, _ := ht.thresholds()
	ht.Failures++
	ht.okRun = 0
	ht.failRun++
	switch ht.state {
	case Healthy, Suspect, Degraded:
		ht.state = Suspect
		if ht.failRun >= qa {
			ht.state = Quarantined
		}
	case Probation:
		// One bad probe during probation sends it straight back. Pin
		// the failure run to the quarantine threshold so the counter
		// matches the state it just entered — a stale low count here
		// would make the next demotion cheaper than the first one.
		ht.state = Quarantined
		ht.failRun = qa
	}
	return ht.state
}

// OK records a successful probe over the primary transport and returns
// the new state.
func (ht *HealthTracker) OK() Health { return ht.ok(Healthy) }

// DegradedOK records a successful probe over the fallback transport:
// the back-end is alive, but only reachable the slow way. It follows
// the same probation discipline as OK, landing in Degraded instead of
// Healthy.
func (ht *HealthTracker) DegradedOK() Health { return ht.ok(Degraded) }

// ok advances the machine on a success whose terminal state is target
// (Healthy for the primary transport, Degraded for the fallback).
func (ht *HealthTracker) ok(target Health) Health {
	_, po := ht.thresholds()
	ht.Successes++
	ht.failRun = 0
	ht.okRun++
	switch ht.state {
	case Healthy, Suspect, Degraded:
		ht.state = target
	case Quarantined:
		ht.state = Probation
		if ht.okRun >= po {
			ht.state = target
		}
	case Probation:
		if ht.okRun >= po {
			ht.state = target
		}
	}
	return ht.state
}

// Reset returns the tracker to Healthy with runs cleared (used when a
// back-end is administratively replaced rather than observed to
// recover).
func (ht *HealthTracker) Reset() {
	ht.state = Healthy
	ht.failRun = 0
	ht.okRun = 0
}
