package core

import (
	"testing"

	"rdmamon/internal/sim"
	"rdmamon/internal/simnet"
	"rdmamon/internal/simos"
)

func TestPushDeliversRecords(t *testing.T) {
	r := newRig(21)
	mon := StartPushMonitor(r.fab, r.front, PushGroup)
	agent := StartPushAgent(r.backend, r.bnic, PushGroup, 20*sim.Millisecond)
	r.eng.RunUntil(sim.Second)
	rec, at, ok := mon.Latest(1)
	if !ok {
		t.Fatal("no pushed record")
	}
	if rec.NodeID != 1 || at == 0 {
		t.Fatalf("record %+v at %v", rec, at)
	}
	if agent.Published < 40 {
		t.Fatalf("published = %d, want ~50", agent.Published)
	}
	received, torn := mon.Stats()
	if received < 40 {
		t.Fatalf("received = %d", received)
	}
	if torn != 0 {
		t.Fatalf("torn records: %d", torn)
	}
}

func TestPushStalenessBoundedByInterval(t *testing.T) {
	r := newRig(22)
	mon := StartPushMonitor(r.fab, r.front, PushGroup)
	StartPushAgent(r.backend, r.bnic, PushGroup, 20*sim.Millisecond)
	r.eng.RunUntil(sim.Second)
	_, at, ok := mon.Latest(1)
	if !ok {
		t.Fatal("no record")
	}
	if age := r.eng.Now() - at; age > 30*sim.Millisecond {
		t.Fatalf("pushed record age %v, want < interval + slack", age)
	}
}

func TestPushUsesBackendCPU(t *testing.T) {
	// Unlike RDMA-Sync, push keeps a back-end process that consumes
	// CPU and generates TX traffic.
	r := newRig(23)
	StartPushMonitor(r.fab, r.front, PushGroup)
	a := StartPushAgent(r.backend, r.bnic, PushGroup, 5*sim.Millisecond)
	r.eng.RunUntil(sim.Second)
	if r.backend.K.NetTxBytes == 0 {
		t.Fatal("push agent should transmit")
	}
	if !a.Task().Alive() {
		t.Fatal("push agent task should be alive")
	}
	a.Stop()
	published := a.Published
	r.eng.RunUntil(2 * sim.Second)
	if a.Published > published {
		t.Fatal("push agent kept publishing after Stop")
	}
}

func TestPushMonitorUnknownBackend(t *testing.T) {
	r := newRig(24)
	mon := StartPushMonitor(r.fab, r.front, PushGroup)
	if _, _, ok := mon.Latest(99); ok {
		t.Fatal("unknown backend should be !ok")
	}
	mon.Stop()
}

func TestPushMultipleBackends(t *testing.T) {
	eng := sim.NewEngine(25)
	fab := simnet.NewFabric(eng, simnet.Defaults())
	front := simos.NewNode(eng, 0, simos.NodeDefaults())
	fab.Attach(front)
	mon := StartPushMonitor(fab, front, PushGroup)
	for i := 1; i <= 3; i++ {
		n := simos.NewNode(eng, i, simos.NodeDefaults())
		nic := fab.Attach(n)
		StartPushAgent(n, nic, PushGroup, 25*sim.Millisecond)
	}
	eng.RunUntil(sim.Second)
	for i := 1; i <= 3; i++ {
		if rec, _, ok := mon.Latest(i); !ok || int(rec.NodeID) != i {
			t.Fatalf("backend %d missing from push monitor", i)
		}
	}
}
