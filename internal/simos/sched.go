package simos

import "rdmamon/internal/sim"

// accounting states for a CPU.
type accState int

const (
	accIdle accState = iota
	accUser
	accIRQ
)

// cpu is one processor of a node. A cpu runs at most one task; while
// it services interrupts the current task (if any) is paused in place.
type cpu struct {
	node *Node
	id   int

	cur       *Task
	irqActive bool
	hardQ     []irqReq
	softQ     []irqReq

	state       accState
	lastAccount sim.Time
	busyUser    sim.Time
	busyIRQ     sim.Time
}

func (c *cpu) account() {
	now := c.node.Eng.Now()
	d := now - c.lastAccount
	switch c.state {
	case accUser:
		c.busyUser += d
	case accIRQ:
		c.busyIRQ += d
	}
	c.lastAccount = now
}

func (c *cpu) setState(s accState) {
	c.account()
	c.state = s
}

// cumBusy returns total busy (user + interrupt) time including the
// in-progress interval.
func (c *cpu) cumBusy() sim.Time {
	c.account()
	return c.busyUser + c.busyIRQ
}

// --- ready queues -----------------------------------------------------

func (n *Node) wake(t *Task) {
	if t.state == stateDead || t.state == stateReady || t.state == stateRunning {
		return
	}
	band := bandBoost
	if t.NoBoost {
		band = bandNormal
	}
	t.band = band
	t.boostLeft = n.Cfg.BoostBudget
	t.state = stateReady
	t.Wakeups++
	n.queueSeq++
	t.queueSeq = n.queueSeq
	if n.Cfg.AblationWakePreempt {
		// Jump the queue and evict a same-band peer if no CPU is free.
		n.ready[band] = append([]*Task{t}, n.ready[band]...)
		n.resched()
		if t.state == stateReady {
			for _, c := range n.cpus {
				if !c.irqActive && c.cur != nil && c.cur.band <= band && c.cur != t {
					n.preempt(c)
					n.removeReady(t)
					n.dispatch(c, t)
					break
				}
			}
		}
		return
	}
	n.ready[band] = append(n.ready[band], t)
	n.resched()
}

func (n *Node) removeReady(t *Task) {
	q := n.ready[t.band]
	for i, x := range q {
		if x == t {
			n.ready[t.band] = append(q[:i], q[i+1:]...)
			return
		}
	}
}

func (n *Node) highestReadyBand() int {
	for b := int(numBands) - 1; b >= 0; b-- {
		if len(n.ready[b]) > 0 {
			return b
		}
	}
	return -1
}

func (n *Node) popHighest() *Task {
	for b := int(numBands) - 1; b >= 0; b-- {
		if q := n.ready[b]; len(q) > 0 {
			t := q[0]
			n.ready[b] = q[1:]
			return t
		}
	}
	return nil
}

// resched assigns ready tasks to idle CPUs and then applies cross-band
// preemption: a ready task in a higher band evicts the running task in
// the lowest band. Within a band there is no preemption (FIFO), which
// is the mechanism behind the paper's Figure 3.
func (n *Node) resched() {
	if n.down || n.frozen {
		return // no dispatching on a dead or stalled machine
	}
	for _, c := range n.cpus {
		if c.cur == nil && !c.irqActive {
			t := n.popHighest()
			if t == nil {
				break
			}
			n.dispatch(c, t)
		}
	}
	for {
		hb := n.highestReadyBand()
		if hb < 0 {
			return
		}
		var victim *cpu
		for _, c := range n.cpus {
			if c.irqActive || c.cur == nil {
				continue
			}
			if int(c.cur.band) < hb && (victim == nil || c.cur.band < victim.cur.band) {
				victim = c
			}
		}
		if victim == nil {
			return
		}
		n.preempt(victim)
		t := n.popHighest()
		if t == nil {
			return
		}
		n.dispatch(victim, t)
	}
}

func (n *Node) dispatch(c *cpu, t *Task) {
	t.state = stateRunning
	t.cpu = c
	c.cur = t
	c.setState(accUser)
	t.remaining = t.pendingBurst + n.Cfg.CtxSwitchCost
	t.burstDone = t.pendingCont
	t.pendingBurst = 0
	t.pendingCont = nil
	t.quantumLeft = n.Cfg.Quantum
	n.K.CtxSwitches++
	t.armBurst()
}

// chargeRun updates accounting for the interval since the task last
// (re)started running and resets the interval start.
func (t *Task) chargeRun() {
	now := t.node.Eng.Now()
	consumed := now - t.startedAt
	if consumed < 0 {
		consumed = 0
	}
	t.CPUTime += consumed
	t.remaining -= consumed
	if t.remaining < 0 {
		t.remaining = 0
	}
	t.quantumLeft -= consumed
	if t.band == bandBoost {
		t.boostLeft -= consumed
	}
	t.startedAt = now
}

func (t *Task) cancelRunEvents() {
	if t.doneEv != nil {
		t.node.Eng.Cancel(t.doneEv)
		t.doneEv = nil
	}
	if t.sliceEv != nil {
		t.node.Eng.Cancel(t.sliceEv)
		t.sliceEv = nil
	}
}

// armBurst schedules either completion of the current burst or expiry
// of the current timeslice/boost budget, whichever comes first. The
// task must be running.
func (t *Task) armBurst() {
	t.cancelRunEvents()
	t.startedAt = t.node.Eng.Now()
	span := t.quantumLeft
	if t.band == bandBoost && t.boostLeft < span {
		span = t.boostLeft
	}
	if span < 0 {
		span = 0
	}
	if t.remaining <= span {
		t.doneEv = t.node.Eng.After(t.remaining, t.burstComplete)
	} else {
		t.sliceEv = t.node.Eng.After(span, t.sliceExpire)
	}
}

func (t *Task) burstComplete() {
	t.doneEv = nil
	t.chargeRun()
	t.demoteIfSpent()
	cont := t.burstDone
	t.burstDone = nil
	if cont != nil {
		cont()
	}
	// If the continuation issued no further operation the task is done.
	if t.state == stateRunning && t.doneEv == nil && t.sliceEv == nil && t.burstDone == nil {
		t.exit()
	}
}

func (t *Task) demoteIfSpent() {
	if t.band == bandBoost && t.boostLeft <= 0 {
		t.band = bandNormal
	}
}

// sliceExpire fires when the quantum or boost budget runs out before
// the burst completes: rotate if anyone of equal or higher priority is
// waiting, otherwise renew in place.
func (t *Task) sliceExpire() {
	t.sliceEv = nil
	t.chargeRun()
	t.demoteIfSpent()
	n := t.node
	if n.highestReadyBand() >= int(t.band) {
		c := t.cpu
		t.state = stateReady
		t.pendingBurst = t.remaining
		t.pendingCont = t.burstDone
		t.burstDone = nil
		t.remaining = 0
		t.cpu = nil
		t.Preemptions++
		n.queueSeq++
		t.queueSeq = n.queueSeq
		n.ready[t.band] = append(n.ready[t.band], t)
		c.cur = nil
		c.setState(accIdle)
		n.resched()
		return
	}
	t.quantumLeft = n.Cfg.Quantum
	t.armBurst()
}

// preempt evicts the task running on c back to the head of its ready
// queue, preserving its in-progress burst.
func (n *Node) preempt(c *cpu) {
	t := c.cur
	t.cancelRunEvents()
	t.chargeRun()
	t.demoteIfSpent()
	t.state = stateReady
	t.pendingBurst = t.remaining
	t.pendingCont = t.burstDone
	t.burstDone = nil
	t.remaining = 0
	t.cpu = nil
	t.Preemptions++
	// Head of queue: a preempted task resumes before queued peers.
	n.ready[t.band] = append([]*Task{t}, n.ready[t.band]...)
	c.cur = nil
	c.setState(accIdle)
}

// release detaches a running task from its CPU (used when the task
// blocks or exits). The caller sets the task's next state and triggers
// resched.
func (t *Task) release() {
	t.cancelRunEvents()
	t.chargeRun()
	t.demoteIfSpent()
	c := t.cpu
	t.cpu = nil
	t.remaining = 0
	t.burstDone = nil
	if c != nil {
		c.cur = nil
		if !c.irqActive {
			c.setState(accIdle)
		}
	}
}
