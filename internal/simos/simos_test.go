package simos

import (
	"testing"

	"rdmamon/internal/sim"
)

func newTestNode(t *testing.T, cfg Config) (*sim.Engine, *Node) {
	t.Helper()
	eng := sim.NewEngine(1)
	n := NewNode(eng, 0, cfg)
	return eng, n
}

// lightCfg removes most overheads so arithmetic in tests is exact.
func lightCfg() Config {
	cfg := NodeDefaults()
	cfg.CtxSwitchCost = -1
	cfg.WakeCost = -1
	cfg.RecvCost = -1
	cfg.TimerIRQCost = -1
	return cfg
}

func TestSingleComputeRunsToCompletion(t *testing.T) {
	eng, n := newTestNode(t, lightCfg())
	done := sim.Time(-1)
	n.Spawn("worker", func(tk *Task) {
		tk.Compute(7*sim.Millisecond, func() {
			done = eng.Now()
		})
	})
	eng.RunUntil(sim.Second)
	if done != 7*sim.Millisecond {
		t.Fatalf("compute finished at %v, want 7ms", done)
	}
}

func TestTaskExitsAfterFinalContinuation(t *testing.T) {
	eng, n := newTestNode(t, lightCfg())
	tk := n.Spawn("w", func(tk *Task) {
		tk.Compute(sim.Millisecond, func() {})
	})
	eng.RunUntil(10 * sim.Millisecond)
	if tk.Alive() {
		t.Fatal("task should exit after issuing no further op")
	}
	if n.NrTasks() != 0 {
		t.Fatalf("NrTasks = %d, want 0", n.NrTasks())
	}
}

func TestTwoCPUsRunInParallel(t *testing.T) {
	eng, n := newTestNode(t, lightCfg())
	var done [2]sim.Time
	for i := 0; i < 2; i++ {
		i := i
		n.Spawn("w", func(tk *Task) {
			tk.Compute(10*sim.Millisecond, func() { done[i] = eng.Now() })
		})
	}
	eng.RunUntil(sim.Second)
	for i, d := range done {
		if d != 10*sim.Millisecond {
			t.Fatalf("task %d finished at %v, want 10ms (parallel)", i, d)
		}
	}
}

func TestThreeTasksTwoCPUsShareFairly(t *testing.T) {
	cfg := lightCfg()
	eng, n := newTestNode(t, cfg)
	var done [3]sim.Time
	for i := 0; i < 3; i++ {
		i := i
		n.Spawn("w", func(tk *Task) {
			tk.NoBoost = true
			tk.Compute(200*sim.Millisecond, func() { done[i] = eng.Now() })
		})
	}
	eng.RunUntil(2 * sim.Second)
	// 600ms of work on 2 CPUs: ideal makespan 300ms. With 50ms RR the
	// last finisher should be close to 300ms, certainly under 360ms,
	// and no task can finish before 200ms.
	for i, d := range done {
		if d == 0 {
			t.Fatalf("task %d never finished", i)
		}
		if d < 200*sim.Millisecond {
			t.Fatalf("task %d finished at %v, impossible (<200ms)", i, d)
		}
	}
	last := max3(done[0], done[1], done[2])
	if last < 290*sim.Millisecond || last > 360*sim.Millisecond {
		t.Fatalf("makespan %v, want ~300ms (fair RR)", last)
	}
}

func max3(a, b, c sim.Time) sim.Time {
	if b > a {
		a = b
	}
	if c > a {
		a = c
	}
	return a
}

func TestSleepWakeTiming(t *testing.T) {
	eng, n := newTestNode(t, lightCfg())
	var woke sim.Time
	n.Spawn("s", func(tk *Task) {
		tk.Compute(sim.Millisecond, func() {
			tk.Sleep(5*sim.Millisecond, func() {
				tk.Compute(sim.Millisecond, func() { woke = eng.Now() })
			})
		})
	})
	eng.RunUntil(sim.Second)
	if woke != 7*sim.Millisecond {
		t.Fatalf("post-sleep compute done at %v, want 7ms", woke)
	}
}

func TestWokenTaskPreemptsCPUBoundTask(t *testing.T) {
	cfg := lightCfg()
	cfg.NumCPU = 1
	eng, n := newTestNode(t, cfg)
	var monitorDone sim.Time
	// CPU hog in the normal band.
	n.Spawn("hog", func(tk *Task) {
		tk.NoBoost = true
		tk.Compute(sim.Second, func() {})
	})
	// Monitor-style task: sleeps, then needs 100us.
	n.Spawn("mon", func(tk *Task) {
		tk.Sleep(10*sim.Millisecond, func() {
			tk.Compute(100*sim.Microsecond, func() { monitorDone = eng.Now() })
		})
	})
	eng.RunUntil(2 * sim.Second)
	// Boosted wake should preempt the hog immediately: done ~10.1ms,
	// not after the hog's quantum (which would be tens of ms later).
	if monitorDone != 10*sim.Millisecond+100*sim.Microsecond {
		t.Fatalf("monitor done at %v, want 10.1ms (wake preemption)", monitorDone)
	}
}

func TestNoPreemptionWithinBoostBand(t *testing.T) {
	cfg := lightCfg()
	cfg.NumCPU = 1
	eng, n := newTestNode(t, cfg)
	var order []string
	// Two tasks sleep and wake at nearly the same time; the first one
	// to wake must run to completion of its burst before the second.
	n.Spawn("a", func(tk *Task) {
		tk.Sleep(10*sim.Millisecond, func() {
			tk.Compute(2*sim.Millisecond, func() { order = append(order, "a") })
		})
	})
	n.Spawn("b", func(tk *Task) {
		tk.Sleep(10*sim.Millisecond+sim.Microsecond, func() {
			tk.Compute(100*sim.Microsecond, func() { order = append(order, "b") })
		})
	})
	eng.RunUntil(sim.Second)
	if len(order) != 2 || order[0] != "a" || order[1] != "b" {
		t.Fatalf("order = %v, want [a b]: FIFO within boost band", order)
	}
}

func TestBoostDemotionAfterBudget(t *testing.T) {
	cfg := lightCfg()
	cfg.NumCPU = 1
	cfg.BoostBudget = 5 * sim.Millisecond
	eng, n := newTestNode(t, cfg)
	var hogProgress sim.Time
	// A "boost abuser": wakes then computes forever.
	n.Spawn("abuser", func(tk *Task) {
		tk.Sleep(sim.Millisecond, func() {
			tk.Compute(sim.Second, func() {})
		})
	})
	// A normal-band hog that should still make progress once the
	// abuser is demoted (they then share via RR).
	n.Spawn("hog", func(tk *Task) {
		tk.NoBoost = true
		tk.Compute(100*sim.Millisecond, func() { hogProgress = eng.Now() })
	})
	eng.RunUntil(400 * sim.Millisecond)
	if hogProgress == 0 {
		t.Fatal("normal-band task starved: boost demotion not working")
	}
}

func TestCPUTimeAccounting(t *testing.T) {
	eng, n := newTestNode(t, lightCfg())
	var tk *Task
	tk = n.Spawn("w", func(x *Task) {
		x.Compute(3*sim.Millisecond, func() {
			x.Sleep(2*sim.Millisecond, func() {
				x.Compute(4*sim.Millisecond, func() {})
			})
		})
	})
	eng.RunUntil(sim.Second)
	if tk.CPUTime != 7*sim.Millisecond {
		t.Fatalf("CPUTime = %v, want 7ms", tk.CPUTime)
	}
}

func TestUtilizationSaturated(t *testing.T) {
	cfg := lightCfg()
	eng, n := newTestNode(t, cfg)
	for i := 0; i < 2; i++ {
		n.Spawn("hog", func(tk *Task) {
			tk.NoBoost = true
			tk.Compute(10*sim.Second, func() {})
		})
	}
	eng.RunUntil(500 * sim.Millisecond)
	for c := 0; c < 2; c++ {
		if u := n.K.UtilPerMille(c); u < 950 {
			t.Fatalf("cpu%d util = %d, want ~1000 (saturated)", c, u)
		}
	}
}

func TestUtilizationIdle(t *testing.T) {
	eng, n := newTestNode(t, lightCfg())
	eng.RunUntil(500 * sim.Millisecond)
	for c := 0; c < 2; c++ {
		if u := n.K.UtilPerMille(c); u > 20 {
			t.Fatalf("cpu%d util = %d on idle node, want ~0", c, u)
		}
	}
}

func TestUtilizationHalf(t *testing.T) {
	eng, n := newTestNode(t, lightCfg())
	// One hog on a 2-CPU node: one CPU busy, one idle.
	n.Spawn("hog", func(tk *Task) {
		tk.NoBoost = true
		tk.Compute(10*sim.Second, func() {})
	})
	eng.RunUntil(sim.Second)
	s := n.K.Snapshot()
	if m := s.UtilMean(); m < 400 || m > 600 {
		t.Fatalf("mean util = %d, want ~500", m)
	}
}

func TestReadProcCostsTime(t *testing.T) {
	cfg := lightCfg()
	cfg.ProcReadCost = 150 * sim.Microsecond
	cfg.ProcReadPerTask = -1
	eng, n := newTestNode(t, cfg)
	var got Snapshot
	var when sim.Time
	n.Spawn("reader", func(tk *Task) {
		tk.ReadProc(func(s Snapshot) {
			got = s
			when = eng.Now()
		})
	})
	eng.RunUntil(sim.Second)
	if when != 150*sim.Microsecond {
		t.Fatalf("proc read completed at %v, want 150us", when)
	}
	if got.NodeID != 0 || got.NumCPU != 2 {
		t.Fatalf("snapshot = %+v, want node 0 with 2 CPUs", got)
	}
	if got.MemTotalKB == 0 || got.MemUsedKB == 0 {
		t.Fatal("snapshot should carry memory info")
	}
}

func TestPortDeliverWakesBlockedTask(t *testing.T) {
	eng, n := newTestNode(t, lightCfg())
	p := n.Port("svc")
	var got Message
	var when sim.Time
	n.Spawn("rx", func(tk *Task) {
		tk.Recv(p, func(m Message) {
			got = m
			when = eng.Now()
		})
	})
	eng.Schedule(5*sim.Millisecond, func() {
		p.Deliver(Message{From: 9, Size: 64, Payload: "hi", SentAt: eng.Now()})
	})
	eng.RunUntil(sim.Second)
	if got.Payload != "hi" || got.From != 9 {
		t.Fatalf("got message %+v", got)
	}
	if when < 5*sim.Millisecond {
		t.Fatalf("delivered at %v, before send", when)
	}
}

func TestPortBuffersWhenNoWaiter(t *testing.T) {
	eng, n := newTestNode(t, lightCfg())
	p := n.Port("svc")
	p.Deliver(Message{Payload: 1})
	p.Deliver(Message{Payload: 2})
	if p.QueueLen() != 2 {
		t.Fatalf("QueueLen = %d, want 2", p.QueueLen())
	}
	var got []int
	n.Spawn("rx", func(tk *Task) {
		var loop func(Message)
		loop = func(m Message) {
			got = append(got, m.Payload.(int))
			if len(got) < 2 {
				tk.Recv(p, loop)
			}
		}
		tk.Recv(p, loop)
	})
	eng.RunUntil(sim.Second)
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("got %v, want [1 2] in order", got)
	}
}

func TestPortSameNodeOnly(t *testing.T) {
	eng := sim.NewEngine(1)
	n1 := NewNode(eng, 1, lightCfg())
	n2 := NewNode(eng, 2, lightCfg())
	p := n2.Port("x")
	defer func() {
		if recover() == nil {
			t.Fatal("Recv on foreign port should panic")
		}
	}()
	n1.Spawn("bad", func(tk *Task) {
		tk.Recv(p, func(Message) {})
	})
}

func TestIRQPausesAndResumesTask(t *testing.T) {
	cfg := lightCfg()
	cfg.NumCPU = 1
	cfg.NetIRQCPU = 0
	cfg.NetIRQHard = 100 * sim.Microsecond
	cfg.NetIRQSoft = -1
	eng, n := newTestNode(t, cfg)
	var done sim.Time
	n.Spawn("w", func(tk *Task) {
		tk.NoBoost = true
		tk.Compute(10*sim.Millisecond, func() { done = eng.Now() })
	})
	eng.Schedule(2*sim.Millisecond, func() { n.RaiseNetIRQ(nil) })
	eng.RunUntil(sim.Second)
	want := 10*sim.Millisecond + 100*sim.Microsecond
	if done != want {
		t.Fatalf("task done at %v, want %v (burst stretched by IRQ)", done, want)
	}
}

func TestIRQPendingDuringStorm(t *testing.T) {
	cfg := lightCfg()
	cfg.NetIRQHard = 50 * sim.Microsecond
	cfg.NetIRQSoft = 50 * sim.Microsecond
	eng, n := newTestNode(t, cfg)
	// Ten interrupts injected back-to-back: while the first services,
	// the rest are pending.
	eng.Schedule(sim.Millisecond, func() {
		for i := 0; i < 10; i++ {
			n.RaiseNetIRQ(nil)
		}
	})
	eng.Schedule(sim.Millisecond+10*sim.Microsecond, func() {
		hard, _ := n.PendingIRQ(n.Cfg.NetIRQCPU)
		if hard < 8 {
			t.Errorf("pending hard = %d mid-storm, want >=8", hard)
		}
	})
	// After the hard phase (10 x 50us) the backlog lives in the soft
	// queue (Linux-2.4 bottom halves).
	eng.Schedule(sim.Millisecond+600*sim.Microsecond, func() {
		hard, soft := n.PendingIRQ(n.Cfg.NetIRQCPU)
		if hard != 0 {
			t.Errorf("pending hard = %d in soft phase, want 0", hard)
		}
		if soft < 5 {
			t.Errorf("pending soft = %d in soft phase, want >=5", soft)
		}
	})
	eng.RunUntil(sim.Second)
	hard, _ := n.PendingIRQ(n.Cfg.NetIRQCPU)
	if hard != 0 {
		t.Fatalf("pending hard = %d after drain, want 0", hard)
	}
	if n.K.CumIRQHard[n.Cfg.NetIRQCPU] < 10 {
		t.Fatalf("cumulative IRQ count %d, want >=10", n.K.CumIRQHard[n.Cfg.NetIRQCPU])
	}
}

func TestIRQAffinity(t *testing.T) {
	cfg := lightCfg()
	cfg.TimerIRQCost = -1
	eng, n := newTestNode(t, cfg)
	for i := 0; i < 5; i++ {
		n.RaiseNetIRQ(nil)
	}
	eng.RunUntil(100 * sim.Millisecond)
	if n.K.CumIRQHard[1] < 5 {
		t.Fatalf("CPU1 (NIC-affine) hard IRQs = %d, want >=5", n.K.CumIRQHard[1])
	}
	if n.K.CumIRQHard[0] != 0 {
		t.Fatalf("CPU0 got %d net IRQs, want 0", n.K.CumIRQHard[0])
	}
}

func TestNrRunnable(t *testing.T) {
	eng, n := newTestNode(t, lightCfg())
	for i := 0; i < 5; i++ {
		n.Spawn("hog", func(tk *Task) {
			tk.NoBoost = true
			tk.Compute(sim.Second, func() {})
		})
	}
	n.Spawn("sleeper", func(tk *Task) {
		tk.Sleep(10*sim.Second, func() {})
	})
	eng.RunUntil(50 * sim.Millisecond)
	if got := n.NrRunnable(); got != 5 {
		t.Fatalf("NrRunnable = %d, want 5 (sleeper excluded)", got)
	}
	if got := n.NrTasks(); got != 6 {
		t.Fatalf("NrTasks = %d, want 6", got)
	}
}

func TestSnapshotReflectsCountersAndMemory(t *testing.T) {
	eng, n := newTestNode(t, lightCfg())
	n.K.AddConns(3)
	n.K.AddMemKB(1024)
	n.K.AddNetRx(500)
	n.K.AddNetTx(700)
	eng.RunUntil(sim.Millisecond)
	s := n.K.Snapshot()
	if s.Conns != 3 {
		t.Errorf("Conns = %d, want 3", s.Conns)
	}
	if s.MemUsedKB != n.Cfg.MemBaseKB+1024 {
		t.Errorf("MemUsedKB = %d, want base+1024", s.MemUsedKB)
	}
	if s.NetRxBytes != 500 || s.NetTxBytes != 700 {
		t.Errorf("net counters = %d/%d, want 500/700", s.NetRxBytes, s.NetTxBytes)
	}
	n.K.AddConns(-10)
	if n.K.Conns() != 0 {
		t.Error("Conns should clamp at 0")
	}
}

func TestExitCancelsSleepAndWait(t *testing.T) {
	eng, n := newTestNode(t, lightCfg())
	fired := false
	tk := n.Spawn("s", func(tk *Task) {
		tk.Sleep(10*sim.Millisecond, func() { fired = true })
	})
	eng.RunUntil(5 * sim.Millisecond)
	tk.Exit()
	eng.RunUntil(sim.Second)
	if fired {
		t.Fatal("sleep continuation ran after Exit")
	}
	p := n.Port("x")
	tk2 := n.Spawn("r", func(tk *Task) {
		tk.Recv(p, func(Message) { fired = true })
	})
	eng.RunUntil(sim.Second + 10*sim.Millisecond)
	tk2.Exit()
	p.Deliver(Message{})
	eng.RunUntil(2 * sim.Second)
	if fired {
		t.Fatal("recv continuation ran after Exit")
	}
	if p.QueueLen() != 1 {
		t.Fatal("message to dead waiter should remain buffered")
	}
}

func TestSchedulerDeterminism(t *testing.T) {
	run := func() (sim.Time, uint64) {
		eng := sim.NewEngine(99)
		n := NewNode(eng, 0, NodeDefaults())
		var total sim.Time
		for i := 0; i < 6; i++ {
			n.Spawn("mix", func(tk *Task) {
				var loop func()
				loop = func() {
					d := sim.Time(eng.Rand().Intn(2000)+100) * sim.Microsecond
					tk.Compute(d, func() {
						tk.Sleep(sim.Time(eng.Rand().Intn(1000)+50)*sim.Microsecond, loop)
					})
				}
				loop()
			})
		}
		eng.RunUntil(2 * sim.Second)
		for tk := range n.tasks {
			total += tk.CPUTime
		}
		return total, n.K.CtxSwitches
	}
	t1, c1 := run()
	t2, c2 := run()
	if t1 != t2 || c1 != c2 {
		t.Fatalf("nondeterministic: (%v,%d) vs (%v,%d)", t1, c1, t2, c2)
	}
}

// Invariant: total task CPU time never exceeds wall time * NumCPU, and
// under saturation it is close to it.
func TestCPUConservation(t *testing.T) {
	cfg := NodeDefaults()
	eng := sim.NewEngine(7)
	n := NewNode(eng, 0, cfg)
	tasks := make([]*Task, 0, 8)
	for i := 0; i < 8; i++ {
		tk := n.Spawn("hog", func(tk *Task) {
			tk.NoBoost = true
			tk.Compute(10*sim.Second, func() {})
		})
		tasks = append(tasks, tk)
	}
	wall := sim.Time(3 * sim.Second)
	eng.RunUntil(wall)
	var total sim.Time
	for _, tk := range tasks {
		total += tk.CPUTime
	}
	capacity := wall * sim.Time(cfg.NumCPU)
	if total > capacity {
		t.Fatalf("CPU over-accounted: %v > capacity %v", total, capacity)
	}
	if total < capacity*95/100 {
		t.Fatalf("CPU under-used at saturation: %v of %v", total, capacity)
	}
}
