package simos

import (
	"testing"

	"rdmamon/internal/sim"
)

func TestAwaitResume(t *testing.T) {
	eng, n := newTestNode(t, lightCfg())
	var got any
	var when sim.Time
	tk := n.Spawn("w", func(tk *Task) {
		tk.Compute(sim.Millisecond, func() {
			tk.Await(func(v any) {
				got = v
				when = eng.Now()
			})
		})
	})
	eng.Schedule(5*sim.Millisecond, func() { tk.Resume("done") })
	eng.RunUntil(sim.Second)
	if got != "done" {
		t.Fatalf("await got %v", got)
	}
	if when < 5*sim.Millisecond {
		t.Fatalf("resumed at %v, before Resume was called", when)
	}
}

func TestResumeWithoutAwaitIsNoop(t *testing.T) {
	eng, n := newTestNode(t, lightCfg())
	tk := n.Spawn("w", func(tk *Task) {
		tk.Compute(10*sim.Millisecond, func() {})
	})
	tk.Resume(1) // running, not awaiting
	eng.RunUntil(sim.Second)
	if tk.Alive() {
		t.Fatal("task should have finished normally")
	}
}

func TestPortMultipleWaitersFIFO(t *testing.T) {
	eng, n := newTestNode(t, lightCfg())
	p := n.Port("pool")
	var order []string
	mkWorker := func(name string) {
		n.Spawn(name, func(tk *Task) {
			tk.Recv(p, func(m Message) {
				order = append(order, name)
			})
		})
	}
	mkWorker("w1")
	mkWorker("w2")
	mkWorker("w3")
	eng.Schedule(sim.Millisecond, func() {
		p.Deliver(Message{Payload: 1})
		p.Deliver(Message{Payload: 2})
		p.Deliver(Message{Payload: 3})
	})
	eng.RunUntil(sim.Second)
	if len(order) != 3 {
		t.Fatalf("served %v", order)
	}
	// Longest-waiting worker first.
	if order[0] != "w1" || order[1] != "w2" || order[2] != "w3" {
		t.Fatalf("waiter order = %v, want FIFO", order)
	}
}

func TestProcReadCostScalesWithTasks(t *testing.T) {
	measure := func(extraTasks int) sim.Time {
		cfg := lightCfg()
		cfg.ProcReadCost = 100 * sim.Microsecond
		cfg.ProcReadPerTask = 50 * sim.Microsecond
		eng, n := newTestNode(t, cfg)
		for i := 0; i < extraTasks; i++ {
			n.Spawn("sleeper", func(tk *Task) {
				tk.Sleep(10*sim.Second, func() {})
			})
		}
		var done sim.Time
		n.Spawn("reader", func(tk *Task) {
			tk.ReadProc(func(Snapshot) { done = eng.Now() })
		})
		eng.RunUntil(sim.Second)
		return done
	}
	few, many := measure(0), measure(20)
	if many <= few {
		t.Fatal("/proc read should cost more with more tasks")
	}
	// 20 extra tasks at 50us each = +1ms.
	if d := many - few; d != sim.Millisecond {
		t.Fatalf("per-task delta = %v, want exactly 1ms", d)
	}
}

func TestReadProcMasksPendingInterrupts(t *testing.T) {
	// While a softirq storm is pending on CPU1, a /proc reader on CPU0
	// must see zero soft-pending everywhere (globally serialized
	// bottom halves) and zero hard-pending on its own CPU.
	cfg := lightCfg()
	cfg.NetIRQHard = 50 * sim.Microsecond
	cfg.NetIRQSoft = 500 * sim.Microsecond
	cfg.ProcReadCost = 10 * sim.Microsecond
	cfg.ProcReadPerTask = -1
	eng, n := newTestNode(t, cfg)
	var userView Snapshot
	var dmaView Snapshot
	eng.Schedule(sim.Millisecond, func() {
		for i := 0; i < 10; i++ {
			n.RaiseNetIRQ(nil)
		}
	})
	eng.Schedule(sim.Millisecond+200*sim.Microsecond, func() {
		dmaView = n.K.Snapshot() // DMA-style direct read
	})
	n.Spawn("reader", func(tk *Task) {
		tk.Sleep(sim.Millisecond+100*sim.Microsecond, func() {
			tk.ReadProc(func(s Snapshot) { userView = s })
		})
	})
	eng.RunUntil(sim.Second)
	if dmaView.IrqPendingSoft[1] == 0 && dmaView.IrqPendingHard[1] == 0 {
		t.Fatal("DMA view should catch the storm")
	}
	for c := 0; c < 2; c++ {
		if userView.IrqPendingSoft[c] != 0 {
			t.Fatalf("user view soft-pending cpu%d = %d, want 0", c, userView.IrqPendingSoft[c])
		}
	}
}

func TestAblationWakePreemptBeatsFIFO(t *testing.T) {
	measure := func(ablate bool) sim.Time {
		cfg := NodeDefaults()
		cfg.AblationWakePreempt = ablate
		eng := sim.NewEngine(9)
		n := NewNode(eng, 0, cfg)
		// Fill the boost band with churning workers.
		for i := 0; i < 10; i++ {
			n.Spawn("churn", func(tk *Task) {
				var loop func()
				loop = func() {
					tk.Compute(800*sim.Microsecond, func() {
						tk.Sleep(100*sim.Microsecond, loop)
					})
				}
				loop()
			})
		}
		var done sim.Time
		n.Spawn("mon", func(tk *Task) {
			tk.Sleep(50*sim.Millisecond, func() {
				tk.Compute(100*sim.Microsecond, func() { done = eng.Now() - 50*sim.Millisecond })
			})
		})
		eng.RunUntil(sim.Second)
		return done
	}
	fifo, preempt := measure(false), measure(true)
	if preempt >= fifo {
		t.Fatalf("wake preemption should cut wake-to-run latency: fifo=%v preempt=%v",
			fifo, preempt)
	}
}

func TestSnapshotUtilMeanAndPending(t *testing.T) {
	s := Snapshot{NumCPU: 2}
	s.UtilPerMille[0] = 600
	s.UtilPerMille[1] = 400
	s.IrqPendingHard[1] = 2
	s.IrqPendingSoft[1] = 3
	if s.UtilMean() != 500 {
		t.Fatalf("UtilMean = %d", s.UtilMean())
	}
	if s.PendingIRQTotal() != 5 {
		t.Fatalf("PendingIRQTotal = %d", s.PendingIRQTotal())
	}
	var zero Snapshot
	if zero.UtilMean() != 0 {
		t.Fatal("zero snapshot should report 0 util")
	}
}

func TestConnFnFeedsSnapshot(t *testing.T) {
	eng, n := newTestNode(t, lightCfg())
	live := 0
	n.K.SetConnFn(func() int { return live })
	n.K.AddConns(2)
	live = 5
	eng.RunUntil(sim.Millisecond)
	if got := n.K.Snapshot().Conns; got != 7 {
		t.Fatalf("snapshot conns = %d, want counter+live = 7", got)
	}
}

func TestStopHaltsTick(t *testing.T) {
	cfg := NodeDefaults()
	eng := sim.NewEngine(10)
	n := NewNode(eng, 0, cfg)
	eng.RunUntil(100 * sim.Millisecond)
	before := n.K.CumIRQHard[0]
	n.Stop()
	eng.RunUntil(500 * sim.Millisecond)
	if n.K.CumIRQHard[0] != before {
		t.Fatal("timer tick survived Stop")
	}
}
