package simos

import "rdmamon/internal/sim"

// KernelStats is the node's kernel bookkeeping: the data structures a
// /proc read formats for user space and — crucially for the paper —
// the data structures an RDMA-Sync probe reads directly out of pinned
// kernel memory at DMA time.
type KernelStats struct {
	node *Node

	CtxSwitches uint64
	CumIRQHard  [MaxCPU]uint64
	CumIRQSoft  [MaxCPU]uint64

	NetRxBytes uint64
	NetTxBytes uint64
	NetRxPkts  uint64
	NetTxPkts  uint64

	conns     int
	connFn    func() int
	memUsedKB uint64

	utilHist [MaxCPU][]utilSample
}

type utilSample struct {
	t    sim.Time
	busy sim.Time
}

func newKernelStats(n *Node) *KernelStats {
	return &KernelStats{node: n, memUsedKB: n.Cfg.MemBaseKB}
}

// sampleUtil records each CPU's cumulative busy time; called from the
// timer tick. Samples older than the utilisation window are pruned.
func (k *KernelStats) sampleUtil() {
	now := k.node.Eng.Now()
	keepAfter := now - k.node.Cfg.UtilWindow - 2*k.node.Cfg.Tick
	for i, c := range k.node.cpus {
		h := append(k.utilHist[i], utilSample{t: now, busy: c.cumBusy()})
		drop := 0
		for drop < len(h)-1 && h[drop+1].t <= keepAfter {
			drop++
		}
		k.utilHist[i] = h[drop:]
	}
}

// UtilPerMille returns CPU cpuID's utilisation over the configured
// window, in parts per thousand (0..1000).
func (k *KernelStats) UtilPerMille(cpuID int) int {
	if cpuID < 0 || cpuID >= len(k.node.cpus) {
		return 0
	}
	c := k.node.cpus[cpuID]
	now := k.node.Eng.Now()
	busyNow := c.cumBusy()
	h := k.utilHist[cpuID]
	var base utilSample
	if len(h) == 0 {
		base = utilSample{t: 0, busy: 0}
	} else {
		base = h[0]
		target := now - k.node.Cfg.UtilWindow
		for _, s := range h {
			if s.t <= target {
				base = s
			} else {
				break
			}
		}
	}
	span := now - base.t
	if span <= 0 {
		return 0
	}
	u := int64(busyNow-base.busy) * 1000 / int64(span)
	if u < 0 {
		u = 0
	}
	if u > 1000 {
		u = 1000
	}
	return int(u)
}

// AddConns adjusts the open-connection count (maintained by the server
// application model).
func (k *KernelStats) AddConns(d int) {
	k.conns += d
	if k.conns < 0 {
		k.conns = 0
	}
}

// SetConnFn installs a live connection-count source (e.g. a server's
// queue depth plus in-service requests); its value is added to the
// AddConns counter in snapshots.
func (k *KernelStats) SetConnFn(fn func() int) { k.connFn = fn }

// Conns returns the current open-connection count.
func (k *KernelStats) Conns() int {
	c := k.conns
	if k.connFn != nil {
		c += k.connFn()
	}
	return c
}

// AddMemKB adjusts the resident memory estimate.
func (k *KernelStats) AddMemKB(d int64) {
	v := int64(k.memUsedKB) + d
	if v < 0 {
		v = 0
	}
	if v > int64(k.node.Cfg.MemTotalKB) {
		v = int64(k.node.Cfg.MemTotalKB)
	}
	k.memUsedKB = uint64(v)
}

// MemUsedKB returns the resident memory estimate.
func (k *KernelStats) MemUsedKB() uint64 { return k.memUsedKB }

// AddNetRx / AddNetTx account network traffic (called by simnet).
func (k *KernelStats) AddNetRx(bytes int) {
	k.NetRxBytes += uint64(bytes)
	k.NetRxPkts++
}

// AddNetTx accounts one transmitted packet of the given size.
func (k *KernelStats) AddNetTx(bytes int) {
	k.NetTxBytes += uint64(bytes)
	k.NetTxPkts++
}

// Snapshot is an instantaneous copy of the kernel's load-relevant
// statistics. Both the /proc syscall and the RDMA-Sync DMA path
// produce exactly this structure; the difference between the schemes
// is *when* it is taken and *what it costs*, never its contents.
type Snapshot struct {
	Time      sim.Time // kernel timestamp at capture
	NodeID    int
	NrRunning int // runnable tasks (kernel nr_running)
	NrTasks   int

	UtilPerMille   [MaxCPU]int // per-CPU utilisation over the window
	IrqPendingHard [MaxCPU]int
	IrqPendingSoft [MaxCPU]int
	CumIRQ         [MaxCPU]uint64
	NumCPU         int

	MemUsedKB  uint64
	MemTotalKB uint64
	NetRxBytes uint64
	NetTxBytes uint64
	Conns      int
	CtxSwitch  uint64
}

// UtilMean returns the mean utilisation across CPUs in parts per
// thousand.
func (s Snapshot) UtilMean() int {
	if s.NumCPU == 0 {
		return 0
	}
	sum := 0
	for i := 0; i < s.NumCPU; i++ {
		sum += s.UtilPerMille[i]
	}
	return sum / s.NumCPU
}

// PendingIRQTotal returns the summed hard+soft pending interrupts.
func (s Snapshot) PendingIRQTotal() int {
	n := 0
	for i := 0; i < s.NumCPU; i++ {
		n += s.IrqPendingHard[i] + s.IrqPendingSoft[i]
	}
	return n
}

// Snapshot captures the current kernel statistics. It has no simulated
// cost: cost is charged by the access path (ReadProc syscall, or none
// at all for a DMA read).
func (k *KernelStats) Snapshot() Snapshot {
	n := k.node
	s := Snapshot{
		Time:       n.Eng.Now(),
		NodeID:     n.ID,
		NrRunning:  n.NrRunnable(),
		NrTasks:    n.NrTasks(),
		NumCPU:     len(n.cpus),
		MemUsedKB:  k.memUsedKB,
		MemTotalKB: n.Cfg.MemTotalKB,
		NetRxBytes: k.NetRxBytes,
		NetTxBytes: k.NetTxBytes,
		Conns:      k.Conns(),
		CtxSwitch:  k.CtxSwitches,
	}
	for i := range n.cpus {
		s.UtilPerMille[i] = k.UtilPerMille(i)
		s.IrqPendingHard[i], s.IrqPendingSoft[i] = n.PendingIRQ(i)
		s.CumIRQ[i] = k.CumIRQHard[i] + k.CumIRQSoft[i]
	}
	return s
}
