package simos

import "rdmamon/internal/sim"

// IRQKind identifies the interrupt source, mirroring the lines the
// paper's irq_stat experiment distinguishes.
type IRQKind int

const (
	// IRQTimer is the periodic scheduler tick.
	IRQTimer IRQKind = iota
	// IRQNet is a network adapter interrupt (two-sided traffic only —
	// one-sided RDMA completes entirely on the NIC and never raises
	// an interrupt on the target host; that is the paper's point).
	IRQNet
)

type irqReq struct {
	kind   IRQKind
	hard   sim.Time
	soft   sim.Time
	action func()
}

// RaiseNetIRQ injects a network interrupt on the node's NIC-affine CPU
// (the paper's testbed routes the HCA's line to the second CPU, which
// is why RDMA-Sync observes more pending interrupts there). action
// runs in softirq context once the handler completes, typically
// delivering a packet to a port.
func (n *Node) RaiseNetIRQ(action func()) {
	if n.down {
		return // a crashed host raises no interrupts
	}
	c := n.cpus[n.Cfg.NetIRQCPU]
	n.raiseIRQon(c, IRQNet, n.Cfg.NetIRQHard, n.Cfg.NetIRQSoft, action)
}

// raiseIRQon queues an interrupt on a specific CPU. If the CPU is not
// already in interrupt context the current task is paused and service
// starts immediately: interrupts always win over user processes, which
// is why user-space samplers observe mostly-drained pending counts
// (paper §5.1.4).
//
// Service follows the Linux-2.4 two-phase structure: quick hard
// handlers drain first (newly arrived hard interrupts preempt soft
// processing), and each hard completion enqueues the packet's softirq
// (bottom-half) work, where the real backlog accumulates under bursty
// traffic.
func (n *Node) raiseIRQon(c *cpu, kind IRQKind, hard, soft sim.Time, action func()) {
	n.K.CumIRQHard[c.id]++
	if soft > 0 {
		n.K.CumIRQSoft[c.id]++
	}
	c.hardQ = append(c.hardQ, irqReq{kind: kind, hard: hard, soft: soft, action: action})
	if !c.irqActive {
		c.irqActive = true
		if t := c.cur; t != nil {
			t.cancelRunEvents()
			t.chargeRun()
		}
		c.setState(accIRQ)
		c.serviceNextIRQ()
	}
}

func (c *cpu) serviceNextIRQ() {
	if len(c.hardQ) > 0 {
		req := c.hardQ[0]
		c.node.Eng.After(req.hard, func() {
			c.hardQ = c.hardQ[1:]
			if req.soft > 0 || req.action != nil {
				c.softQ = append(c.softQ, req)
			}
			c.serviceNextIRQ()
		})
		return
	}
	if len(c.softQ) > 0 {
		req := c.softQ[0]
		c.node.Eng.After(req.soft, func() {
			c.softQ = c.softQ[1:]
			if req.action != nil {
				req.action()
			}
			c.serviceNextIRQ()
		})
		return
	}
	c.irqActive = false
	c.resumeFromIRQ()
}

func (c *cpu) resumeFromIRQ() {
	if c.node.frozen && c.cur != nil {
		// The machine stalled while this CPU was in interrupt context:
		// the paused task goes back to its queue instead of resuming.
		// Interrupt time is not the task's — reset its charge interval.
		c.cur.startedAt = c.node.Eng.Now()
		c.node.preempt(c)
	}
	if t := c.cur; t != nil {
		t.demoteIfSpent()
		c.setState(accUser)
		t.armBurst()
	} else {
		c.setState(accIdle)
	}
	c.node.resched()
}

// PendingIRQ returns the number of hard and soft interrupts pending
// (queued or in service) on the given CPU — the observable the paper
// reads from irq_stat.
func (n *Node) PendingIRQ(cpuID int) (hard, soft int) {
	if cpuID < 0 || cpuID >= len(n.cpus) {
		return 0, 0
	}
	c := n.cpus[cpuID]
	return len(c.hardQ), len(c.softQ)
}
