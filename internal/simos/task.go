package simos

import (
	"fmt"

	"rdmamon/internal/sim"
)

// Band is a scheduling priority band. Higher values run first. A task
// that wakes from sleep or I/O enters bandBoost (the Linux-2.4
// "interactive" bonus); if it then burns CPU continuously for longer
// than Config.BoostBudget it is demoted to bandNormal. Preemption
// happens only across bands — within a band service is FIFO, which is
// exactly why a woken monitoring process queues behind other
// recently-woken processes on a loaded server (paper §3, §5.1.1).
type Band int

const (
	bandNormal Band = iota
	bandBoost
	numBands
)

type taskState int

const (
	stateNew taskState = iota
	stateReady
	stateRunning
	stateSleeping
	stateBlocked
	stateDead
)

func (s taskState) String() string {
	switch s {
	case stateNew:
		return "new"
	case stateReady:
		return "ready"
	case stateRunning:
		return "running"
	case stateSleeping:
		return "sleeping"
	case stateBlocked:
		return "blocked"
	case stateDead:
		return "dead"
	}
	return "?"
}

// Task is a simulated process/thread. Task programs are written in
// continuation-passing style: each operation (Compute, Sleep, Recv)
// takes a continuation invoked when the operation completes and the
// task again holds a CPU.
type Task struct {
	Name string

	node  *Node
	state taskState
	band  Band

	// NoBoost makes wakeups enqueue at bandNormal. Used by ablations
	// and by purely CPU-bound load generators.
	NoBoost bool

	// Execution state.
	cpu         *cpu
	remaining   sim.Time // remaining CPU in the current burst
	burstDone   func()
	startedAt   sim.Time
	quantumLeft sim.Time
	boostLeft   sim.Time
	doneEv      *sim.Event
	sliceEv     *sim.Event
	queueSeq    uint64

	// Pending work set while not running (wake path).
	pendingBurst sim.Time
	pendingCont  func()

	// Blocking state.
	waitPort *Port
	waitFn   func(Message)
	awaitFn  func(any)
	sleepEv  *sim.Event

	// Statistics.
	CPUTime     sim.Time
	Wakeups     uint64
	Preemptions uint64
}

// Node returns the node the task runs on.
func (t *Task) Node() *Node { return t.node }

// State description, for diagnostics.
func (t *Task) String() string {
	return fmt.Sprintf("%s/%s[%s]", t.node, t.Name, t.state)
}

// Alive reports whether the task has not exited.
func (t *Task) Alive() bool { return t.state != stateDead }

// Spawn creates a task and runs program immediately (at the current
// virtual time) to let it issue its first operation. A program that
// issues no operation exits immediately.
func (n *Node) Spawn(name string, program func(t *Task)) *Task {
	t := &Task{Name: name, node: n, state: stateNew}
	n.tasks[t] = struct{}{}
	program(t)
	if t.state == stateNew { // issued nothing
		t.exit()
	}
	return t
}

// Compute consumes d of CPU time and then calls then. Called from a
// running task it extends the current dispatch; called from a non-
// running context (program start, wake continuation) it queues the
// burst for the next dispatch.
func (t *Task) Compute(d sim.Time, then func()) {
	if t.state == stateDead {
		return
	}
	if d < 0 {
		d = 0
	}
	if t.state == stateRunning {
		t.remaining = d
		t.burstDone = then
		t.armBurst()
		return
	}
	t.pendingBurst = d
	t.pendingCont = then
	if t.state == stateNew || t.state == stateSleeping || t.state == stateBlocked {
		// A fresh program's first op, or an op issued from a
		// continuation that ran in wake context: make runnable.
		t.node.wake(t)
	}
}

// Sleep blocks the task for d of virtual time, then reschedules it
// (with a wakeup boost) to run then.
func (t *Task) Sleep(d sim.Time, then func()) {
	if t.state == stateDead {
		return
	}
	if t.state == stateRunning {
		t.release()
	}
	t.state = stateSleeping
	t.sleepEv = t.node.Eng.After(d, func() {
		t.sleepEv = nil
		t.pendingBurst = t.node.Cfg.WakeCost
		t.pendingCont = then
		t.node.wake(t)
	})
	t.node.resched()
}

// Recv blocks the task until a message arrives on p, then runs
// then(msg). If a message is already queued the task still pays the
// kernel->user copy cost before then runs, but does not block.
func (t *Task) Recv(p *Port, then func(Message)) {
	if t.state == stateDead {
		return
	}
	if p.node != t.node {
		panic("simos: Recv on a port of another node")
	}
	if len(p.queue) > 0 {
		m := p.queue[0]
		p.queue = p.queue[1:]
		t.continueWith(t.node.Cfg.RecvCost, func() { then(m) })
		return
	}
	if t.state == stateRunning {
		t.release()
	}
	t.state = stateBlocked
	t.waitPort = p
	t.waitFn = then
	p.waiters = append(p.waiters, t)
	t.node.resched()
}

// RecvTimeout blocks the task until a message arrives on p or d of
// virtual time passes, whichever is first. then runs with ok=false on
// timeout (the socket read deadline of the simulated world). A
// non-positive d means no deadline.
func (t *Task) RecvTimeout(p *Port, d sim.Time, then func(m Message, ok bool)) {
	if d <= 0 {
		t.Recv(p, func(m Message) { then(m, true) })
		return
	}
	var timeoutEv *sim.Event
	timeoutEv = t.node.Eng.After(d, func() {
		if t.state != stateBlocked || t.waitPort != p {
			return // already delivered (or task gone)
		}
		p.removeWaiter(t)
		t.waitPort = nil
		t.waitFn = nil
		t.pendingBurst = 0
		t.pendingCont = func() { then(Message{}, false) }
		t.node.wake(t)
	})
	t.Recv(p, func(m Message) {
		t.node.Eng.Cancel(timeoutEv)
		then(m, true)
	})
}

// continueWith keeps a running task on its CPU for an extra burst, or
// queues the burst if the task is not running.
func (t *Task) continueWith(burst sim.Time, cont func()) {
	if t.state == stateRunning {
		t.remaining = burst
		t.burstDone = cont
		t.armBurst()
		return
	}
	t.pendingBurst = burst
	t.pendingCont = cont
	if t.state != stateReady {
		t.node.wake(t)
	}
}

// Await parks the task until Resume is called with a value. It is the
// primitive under completion-queue style waits (e.g. an RDMA read
// posted by the task completing on the NIC). Unlike Recv there is no
// kernel copy cost: user-level completion polling bypasses the kernel.
func (t *Task) Await(then func(v any)) {
	if t.state == stateDead {
		return
	}
	if t.state == stateRunning {
		t.release()
	}
	t.state = stateBlocked
	t.awaitFn = then
	t.node.resched()
}

// Resume unblocks a task parked in Await. Calling Resume on a task
// that is not awaiting is a no-op (e.g. the task exited).
func (t *Task) Resume(v any) {
	if t.state != stateBlocked || t.awaitFn == nil {
		return
	}
	fn := t.awaitFn
	t.awaitFn = nil
	t.pendingBurst = 0
	t.pendingCont = func() { fn(v) }
	t.node.wake(t)
}

// Exit terminates the task.
func (t *Task) Exit() { t.exit() }

func (t *Task) exit() {
	if t.state == stateDead {
		return
	}
	if t.state == stateRunning {
		t.release()
	}
	if t.sleepEv != nil {
		t.node.Eng.Cancel(t.sleepEv)
		t.sleepEv = nil
	}
	if t.waitPort != nil {
		t.waitPort.removeWaiter(t)
		t.waitPort = nil
	}
	t.awaitFn = nil
	if t.state == stateReady {
		t.node.removeReady(t)
	}
	t.state = stateDead
	delete(t.node.tasks, t)
	t.node.resched()
}

// ReadProc performs the /proc "syscall": it costs ProcReadCost of CPU
// in the caller's context and delivers a snapshot of the kernel
// statistics taken at completion time.
//
// Pending-interrupt visibility mirrors a Linux-2.4 kernel: a process
// only regains the CPU after the interrupts on that CPU are serviced,
// so its own CPU's pending counts always read as zero; and bottom
// halves are globally serialized, so by the time process context runs,
// soft-pending work on *every* CPU has drained. Only hard interrupts
// queued on other CPUs remain observable. This is the §5.1.4 effect:
// user-space samplers structurally under-report interrupt activity,
// while an RDMA read (which never enters process context on this node)
// sees the live irq_stat.
func (t *Task) ReadProc(then func(Snapshot)) {
	node := t.node
	cost := node.Cfg.ProcReadCost + node.Cfg.ProcReadPerTask*sim.Time(node.NrTasks())
	t.Compute(cost, func() {
		s := node.K.Snapshot()
		for c := 0; c < s.NumCPU; c++ {
			s.IrqPendingSoft[c] = 0
		}
		if t.cpu != nil {
			s.IrqPendingHard[t.cpu.id] = 0
		}
		then(s)
	})
}

// Message is a unit of delivery between tasks (possibly across nodes,
// via simnet).
type Message struct {
	From    int // originating node ID
	Size    int // bytes on the wire
	Payload any
	SentAt  sim.Time
}

// Port is a named mailbox on a node. Any number of tasks may block on
// a port (like a worker pool blocked in accept); messages go to the
// longest-waiting task.
type Port struct {
	node    *Node
	name    string
	queue   []Message
	waiters []*Task
}

// Name returns the port's name.
func (p *Port) Name() string { return p.name }

// QueueLen returns the number of undelivered messages.
func (p *Port) QueueLen() int { return len(p.queue) }

// Drain discards all buffered messages, returning how many were
// dropped. Probers use it to flush replies that arrived after their
// deadline, so a late answer is never mistaken for a fresh one.
func (p *Port) Drain() int {
	n := len(p.queue)
	p.queue = nil
	return n
}

// Deliver hands a message to the port: if a task is blocked on the
// port it becomes runnable (with a wakeup boost); otherwise the
// message is buffered. Deliver is called from interrupt (softirq)
// context by the network model, or directly for local IPC.
func (p *Port) Deliver(m Message) {
	if len(p.waiters) == 0 {
		p.queue = append(p.queue, m)
		return
	}
	t := p.waiters[0]
	p.waiters = p.waiters[1:]
	t.waitPort = nil
	fn := t.waitFn
	t.waitFn = nil
	t.pendingBurst = p.node.Cfg.RecvCost
	t.pendingCont = func() { fn(m) }
	p.node.wake(t)
}

// removeWaiter detaches an exiting task from the port's wait list.
func (p *Port) removeWaiter(t *Task) {
	for i, w := range p.waiters {
		if w == t {
			p.waiters = append(p.waiters[:i], p.waiters[i+1:]...)
			return
		}
	}
}
