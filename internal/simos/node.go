// Package simos models the operating system of a cluster node as seen
// by the paper's experiments: a small SMP machine running a Linux-2.4
// style scheduler.
//
// The model is deliberately mechanism-level rather than curve-fitted:
// probe latency, monitoring perturbation and load-report staleness all
// emerge from the same three mechanisms the paper attributes them to —
//
//  1. a woken process must wait for a CPU behind other recently-woken
//     (priority-boosted) processes;
//  2. interrupts are serviced before any user process runs; and
//  3. asynchronously calculated load information is up to one refresh
//     period old when read.
//
// Tasks are written in continuation-passing style (Compute / Sleep /
// Recv / Exit) so the whole node is driven by a single deterministic
// event engine (package sim).
package simos

import (
	"fmt"

	"rdmamon/internal/sim"
)

// MaxCPU is the largest per-node CPU count the kernel-statistics
// structures are sized for. The paper's testbed nodes are 2-way SMPs.
const MaxCPU = 8

// Config holds the tunable constants of the node model. NodeDefaults
// returns values calibrated against the paper's testbed (dual 2.4 GHz
// Xeon, Linux 2.4 / RedHat 9, HZ=100).
type Config struct {
	NumCPU int

	// Scheduler constants.
	Quantum       sim.Time // round-robin timeslice for CPU-bound tasks
	Tick          sim.Time // scheduler/timer tick period (HZ=100 -> 10ms)
	CtxSwitchCost sim.Time // charged when a CPU switches tasks
	BoostBudget   sim.Time // contiguous CPU a woken task may burn before losing its boost
	WakeCost      sim.Time // kernel cost of waking a sleeping task
	RecvCost      sim.Time // kernel->user copy cost when a task picks up a message

	// Syscall costs.
	ProcReadCost sim.Time // one read of /proc: fixed part (trap + formatting)
	// ProcReadPerTask is the per-task part of a /proc read: the 2.4
	// kernel walks the task list under lock to produce load and
	// process statistics, so reading /proc on a busy server costs
	// milliseconds, not microseconds. This is why fine-grained
	// /proc-based monitoring of a loaded node is so expensive
	// (paper §5.1.2, §5.2.2).
	ProcReadPerTask sim.Time

	// Interrupt costs.
	TimerIRQCost sim.Time // per timer tick per CPU
	NetIRQHard   sim.Time // top-half cost of a network interrupt
	NetIRQSoft   sim.Time // bottom-half (softirq) packet processing
	NetIRQCPU    int      // CPU the NIC's interrupt line is routed to

	// Kernel accounting.
	UtilWindow sim.Time // window for the CPU utilisation statistic
	MemTotalKB uint64
	MemBaseKB  uint64 // kernel + daemons resident at boot

	// AblationWakePreempt lets a newly woken task preempt peers in its
	// own priority band instead of queueing FIFO behind them. This is
	// NOT how the modeled 2.4 scheduler behaves; it exists to quantify
	// how much of the socket schemes' latency growth (Figure 3) is due
	// to same-band queueing (DESIGN.md ablation 1).
	AblationWakePreempt bool
}

// NodeDefaults returns the calibrated default configuration.
func NodeDefaults() Config {
	return Config{
		NumCPU:          2,
		Quantum:         50 * sim.Millisecond,
		Tick:            10 * sim.Millisecond,
		CtxSwitchCost:   5 * sim.Microsecond,
		BoostBudget:     8 * sim.Millisecond,
		WakeCost:        2 * sim.Microsecond,
		RecvCost:        4 * sim.Microsecond,
		ProcReadCost:    100 * sim.Microsecond,
		ProcReadPerTask: 60 * sim.Microsecond,
		TimerIRQCost:    1 * sim.Microsecond,
		NetIRQHard:      3 * sim.Microsecond,
		NetIRQSoft:      12 * sim.Microsecond,
		NetIRQCPU:       1,
		UtilWindow:      100 * sim.Millisecond,
		MemTotalKB:      1 << 20, // 1 GB
		MemBaseKB:       96 << 10,
	}
}

// sanitize fills zero fields with defaults. Cost fields use the
// convention: zero means "take the default", negative means
// "explicitly zero" (used by tests that want exact arithmetic).
func (c *Config) sanitize() {
	d := NodeDefaults()
	if c.NumCPU <= 0 {
		c.NumCPU = d.NumCPU
	}
	if c.NumCPU > MaxCPU {
		c.NumCPU = MaxCPU
	}
	if c.Quantum <= 0 {
		c.Quantum = d.Quantum
	}
	if c.Tick <= 0 {
		c.Tick = d.Tick
	}
	if c.BoostBudget <= 0 {
		c.BoostBudget = d.BoostBudget
	}
	if c.UtilWindow <= 0 {
		c.UtilWindow = d.UtilWindow
	}
	if c.MemTotalKB == 0 {
		c.MemTotalKB = d.MemTotalKB
	}
	if c.MemBaseKB == 0 {
		c.MemBaseKB = d.MemBaseKB
	}
	if c.NetIRQCPU == 0 {
		c.NetIRQCPU = d.NetIRQCPU
	}
	if c.NetIRQCPU >= c.NumCPU || c.NetIRQCPU < 0 {
		c.NetIRQCPU = c.NumCPU - 1
	}
	costs := []*sim.Time{
		&c.CtxSwitchCost, &c.WakeCost, &c.RecvCost, &c.ProcReadCost,
		&c.ProcReadPerTask, &c.TimerIRQCost, &c.NetIRQHard, &c.NetIRQSoft,
	}
	defs := []sim.Time{
		d.CtxSwitchCost, d.WakeCost, d.RecvCost, d.ProcReadCost,
		d.ProcReadPerTask, d.TimerIRQCost, d.NetIRQHard, d.NetIRQSoft,
	}
	for i, p := range costs {
		switch {
		case *p == 0:
			*p = defs[i]
		case *p < 0:
			*p = 0
		}
	}
}

// Node is one simulated cluster machine.
type Node struct {
	ID   int
	Eng  *sim.Engine
	Cfg  Config
	cpus []*cpu

	ready    [numBands][]*Task
	tasks    map[*Task]struct{}
	ports    map[string]*Port
	queueSeq uint64

	down   bool
	frozen bool

	K *KernelStats

	tick *sim.Ticker
}

// NewNode creates a node attached to eng. The configuration is
// sanitized (zero fields take defaults). The node's timer tick starts
// immediately.
func NewNode(eng *sim.Engine, id int, cfg Config) *Node {
	cfg.sanitize()
	n := &Node{
		ID:    id,
		Eng:   eng,
		Cfg:   cfg,
		tasks: make(map[*Task]struct{}),
		ports: make(map[string]*Port),
	}
	n.K = newKernelStats(n)
	for i := 0; i < cfg.NumCPU; i++ {
		n.cpus = append(n.cpus, &cpu{node: n, id: i, lastAccount: eng.Now()})
	}
	n.tick = eng.NewTicker(cfg.Tick, n.onTick)
	return n
}

// Stop cancels the node's periodic timer work. Used by tests; long
// simulations normally just stop the engine.
func (n *Node) Stop() { n.tick.Stop() }

// Down reports whether the node has crashed and not yet restarted.
func (n *Node) Down() bool { return n.down }

// Frozen reports whether the node is in a freeze (slowdown) window.
func (n *Node) Frozen() bool { return n.frozen }

// Crash fails the node: every task dies, ports lose their queues and
// waiters, and the timer stops. The network model treats a down node as
// unreachable (packets vanish, RDMA completes with a transport error).
// Restart brings the machine back up empty; the caller is responsible
// for respawning its workload, like any real reboot.
func (n *Node) Crash() {
	if n.down {
		return
	}
	n.down = true // gates resched while the task set is torn down
	victims := make([]*Task, 0, len(n.tasks))
	for t := range n.tasks {
		victims = append(victims, t)
	}
	for _, t := range victims {
		t.exit()
	}
	for _, p := range n.ports {
		p.queue = nil
		for _, w := range p.waiters {
			w.waitPort = nil
			w.waitFn = nil
		}
		p.waiters = nil
	}
	n.tick.Stop()
}

// Restart brings a crashed node back up with no tasks and fresh ports.
// Kernel counters (cumulative IRQ/context-switch totals) survive like
// warm-boot hardware counters; callers respawn the workload.
func (n *Node) Restart() {
	if !n.down {
		return
	}
	n.down = false
	n.tick = n.Eng.NewTicker(n.Cfg.Tick, n.onTick)
	n.resched()
}

// Freeze stalls all user-level progress (a GC pause, an overcommitted
// hypervisor, a thermal throttle): running tasks are preempted and
// nothing is dispatched until Thaw. Interrupt handling and NIC-side
// RDMA service continue — which is exactly the asymmetry the paper
// exploits: one-sided probes still observe a frozen node.
func (n *Node) Freeze() {
	if n.frozen || n.down {
		return
	}
	n.frozen = true
	for _, c := range n.cpus {
		if c.cur != nil && !c.irqActive {
			n.preempt(c)
		}
	}
}

// Thaw lifts a Freeze and resumes scheduling.
func (n *Node) Thaw() {
	if !n.frozen {
		return
	}
	n.frozen = false
	n.resched()
}

// onTick is the timer interrupt: a small cost on every CPU plus the
// kernel's periodic accounting (utilisation sampling).
func (n *Node) onTick() {
	if n.Cfg.TimerIRQCost > 0 {
		for _, c := range n.cpus {
			n.raiseIRQon(c, IRQTimer, n.Cfg.TimerIRQCost, 0, nil)
		}
	}
	n.K.sampleUtil()
}

// NumCPU returns the number of CPUs on this node.
func (n *Node) NumCPU() int { return len(n.cpus) }

// Port returns the named port, creating it if necessary. Ports are the
// rendezvous between the network stack and tasks.
func (n *Node) Port(name string) *Port {
	if p, ok := n.ports[name]; ok {
		return p
	}
	p := &Port{node: n, name: name}
	n.ports[name] = p
	return p
}

// LookupPort returns the named port or nil.
func (n *Node) LookupPort(name string) *Port { return n.ports[name] }

// NrRunnable returns the number of tasks that are ready or running —
// the kernel's nr_running.
func (n *Node) NrRunnable() int {
	c := 0
	for t := range n.tasks {
		if t.state == stateReady || t.state == stateRunning {
			c++
		}
	}
	return c
}

// NrTasks returns the number of live tasks on the node.
func (n *Node) NrTasks() int { return len(n.tasks) }

func (n *Node) String() string { return fmt.Sprintf("node%d", n.ID) }
