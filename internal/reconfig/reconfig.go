// Package reconfig implements the paper's stated future work (§7): a
// dynamic reconfiguration module coupled with accurate resource
// monitoring. Two services share one cluster; each back-end is
// assigned to exactly one service, and a controller on the front-end
// watches the monitored per-group load and migrates nodes from the
// underloaded service to the overloaded one (in the style of the
// shared data-center reconfiguration work the paper cites, [8][9]).
//
// Reconfiguration quality is bounded by monitoring quality: a stale
// view migrates late (missing a burst) or spuriously (flapping nodes
// between services), and every migration costs a drain window in which
// the node serves nobody.
package reconfig

import (
	"rdmamon/internal/core"
	"rdmamon/internal/loadbalance"
	"rdmamon/internal/sim"
)

// Groups tracks which back-ends currently serve which service.
type Groups struct {
	A, B []int
	// Draining maps a node to the virtual time its migration
	// completes.
	Draining map[int]sim.Time
}

// Config tunes the controller.
type Config struct {
	Interval   sim.Time // how often the controller evaluates
	Threshold  float64  // index gap that triggers a migration
	MinNodes   int      // never shrink a group below this many ELIGIBLE nodes
	SwitchTime sim.Time // drain + restart window per migration
	Weights    core.Weights

	// Eligible, if set, reports whether a node is currently healthy
	// enough to matter (the monitor's health verdict). Ineligible nodes
	// — quarantined or crashed — are invisible to the controller: they
	// do not drag a group's load average down (a dead node is not spare
	// capacity), are never chosen for migration (migrating a corpse
	// wastes a drain window and "fixes" nothing), and do not count
	// toward the MinNodes floor (a group of three nodes with two dead
	// is a group of one).
	Eligible func(node int) bool
}

// Defaults returns a controller that reacts within a couple of
// evaluation periods and keeps at least two nodes per service.
func Defaults() Config {
	return Config{
		Interval:   250 * sim.Millisecond,
		Threshold:  0.18,
		MinNodes:   2,
		SwitchTime: 500 * sim.Millisecond,
		Weights:    core.DefaultWeights(),
	}
}

// Controller performs monitored-load-driven node migration between two
// services.
type Controller struct {
	Cfg Config

	eng     *sim.Engine
	source  loadbalance.LoadSource
	groups  *Groups
	apply   func() // pushes current groups into the two policies
	ticker  *sim.Ticker
	stopped bool

	// Migrations counts completed node moves; AtoB/BtoA break it down.
	Migrations uint64
	AtoB       uint64
	BtoA       uint64
}

// New creates and starts a controller.
//
// source supplies the newest load record per backend (usually the
// cluster monitor). groups is the initial assignment (taken over by
// the controller). apply is invoked, in simulation context, whenever
// membership changes; it must copy groups.A/groups.B into the two
// dispatch policies.
func New(eng *sim.Engine, cfg Config, source loadbalance.LoadSource, groups *Groups, apply func()) *Controller {
	d := Defaults()
	if cfg.Interval <= 0 {
		cfg.Interval = d.Interval
	}
	if cfg.Threshold <= 0 {
		cfg.Threshold = d.Threshold
	}
	if cfg.MinNodes <= 0 {
		cfg.MinNodes = d.MinNodes
	}
	if cfg.SwitchTime <= 0 {
		cfg.SwitchTime = d.SwitchTime
	}
	if cfg.Weights == (core.Weights{}) {
		cfg.Weights = d.Weights
	}
	if groups.Draining == nil {
		groups.Draining = make(map[int]sim.Time)
	}
	c := &Controller{Cfg: cfg, eng: eng, source: source, groups: groups, apply: apply}
	c.ticker = eng.NewTicker(cfg.Interval, c.evaluate)
	apply()
	return c
}

// Stop halts the controller.
func (c *Controller) Stop() {
	c.stopped = true
	c.ticker.Stop()
}

// eligible reports whether node b may be considered at all.
func (c *Controller) eligible(b int) bool {
	return c.Cfg.Eligible == nil || c.Cfg.Eligible(b)
}

// eligibleCount returns how many of a group's nodes are eligible.
func (c *Controller) eligibleCount(group []int) int {
	n := 0
	for _, b := range group {
		if c.eligible(b) {
			n++
		}
	}
	return n
}

// GroupLoad returns the mean load index of a group's eligible nodes
// (0 if none, or no records yet).
func (c *Controller) GroupLoad(group []int) float64 {
	if len(group) == 0 {
		return 0
	}
	sum, n := 0.0, 0
	for _, b := range group {
		if !c.eligible(b) {
			continue
		}
		if rec, ok := c.source(b); ok {
			sum += c.Cfg.Weights.Index(rec)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

func (c *Controller) evaluate() {
	if c.stopped {
		return
	}
	la := c.GroupLoad(c.groups.A)
	lb := c.GroupLoad(c.groups.B)
	switch {
	case la-lb > c.Cfg.Threshold && c.eligibleCount(c.groups.B) > c.Cfg.MinNodes:
		c.migrate(&c.groups.B, &c.groups.A, &c.BtoA)
	case lb-la > c.Cfg.Threshold && c.eligibleCount(c.groups.A) > c.Cfg.MinNodes:
		c.migrate(&c.groups.A, &c.groups.B, &c.AtoB)
	}
}

// migrate removes the least-loaded eligible node of the donor group,
// drains it for SwitchTime, then adds it to the receiver group.
func (c *Controller) migrate(from, to *[]int, counter *uint64) {
	// Choose the donor's least-loaded eligible node: cheapest to drain.
	best, bestIdx := -1, 0.0
	for _, b := range *from {
		if !c.eligible(b) {
			continue
		}
		idx := 0.0
		if rec, ok := c.source(b); ok {
			idx = c.Cfg.Weights.Index(rec)
		}
		if best < 0 || idx < bestIdx {
			best, bestIdx = b, idx
		}
	}
	if best < 0 {
		return
	}
	node := best
	*from = remove(*from, node)
	c.groups.Draining[node] = c.eng.Now() + c.Cfg.SwitchTime
	c.apply()
	c.eng.After(c.Cfg.SwitchTime, func() {
		if c.stopped {
			return
		}
		delete(c.groups.Draining, node)
		*to = append(*to, node)
		c.Migrations++
		*counter++
		c.apply()
	})
}

func remove(s []int, v int) []int {
	out := s[:0]
	for _, x := range s {
		if x != v {
			out = append(out, x)
		}
	}
	return out
}

// SetBackendsProportional is a convenience apply-helper for the
// WebSphere-style policy.
func SetBackendsProportional(p *loadbalance.WeightedProportional, ids []int) {
	p.Backends = append([]int(nil), ids...)
}
