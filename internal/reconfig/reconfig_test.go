package reconfig_test

import (
	"testing"

	"rdmamon/internal/core"
	"rdmamon/internal/loadbalance"
	"rdmamon/internal/reconfig"
	"rdmamon/internal/sim"
	"rdmamon/internal/wire"
)

// fakeSource reports a configurable index per backend by synthesizing
// records with the right utilisation.
type fakeSource map[int]float64

func (f fakeSource) get(b int) (wire.LoadRecord, bool) {
	idx, ok := f[b]
	if !ok {
		return wire.LoadRecord{}, false
	}
	r := wire.LoadRecord{NumCPU: 2}
	// DefaultWeights: CPU weight 0.35; drive the index via utilisation
	// only: util = idx/0.35 (clamped).
	u := idx / 0.35 * 1000
	if u > 1000 {
		u = 1000
	}
	r.UtilPerMille[0] = uint16(u)
	r.UtilPerMille[1] = uint16(u)
	return r, true
}

func newController(t *testing.T, eng *sim.Engine, src fakeSource, g *reconfig.Groups) (*reconfig.Controller, *int) {
	t.Helper()
	applied := 0
	c := reconfig.New(eng, reconfig.Config{
		Interval:   100 * sim.Millisecond,
		Threshold:  0.1,
		MinNodes:   1,
		SwitchTime: 200 * sim.Millisecond,
	}, src.get, g, func() { applied++ })
	t.Cleanup(c.Stop)
	return c, &applied
}

func TestMigratesTowardLoad(t *testing.T) {
	eng := sim.NewEngine(1)
	src := fakeSource{1: 0.9, 2: 0.9, 3: 0.1, 4: 0.1}
	g := &reconfig.Groups{A: []int{1, 2}, B: []int{3, 4}}
	c, applied := newController(t, eng, src, g)
	eng.RunUntil(2 * sim.Second)
	if c.Migrations == 0 {
		t.Fatal("overloaded group A should have received a node")
	}
	if c.BtoA == 0 || c.AtoB != 0 {
		t.Fatalf("migration direction wrong: BtoA=%d AtoB=%d", c.BtoA, c.AtoB)
	}
	if len(g.A) <= 2 || len(g.B) >= 2 {
		t.Fatalf("groups after migration: A=%v B=%v", g.A, g.B)
	}
	if *applied < 2 {
		t.Fatal("apply callback should fire on membership changes")
	}
}

func TestRespectsMinNodes(t *testing.T) {
	eng := sim.NewEngine(2)
	src := fakeSource{1: 0.9, 2: 0.1}
	g := &reconfig.Groups{A: []int{1}, B: []int{2}}
	c, _ := newController(t, eng, src, g)
	eng.RunUntil(2 * sim.Second)
	if c.Migrations != 0 {
		t.Fatal("must not shrink a group below MinNodes")
	}
	if len(g.B) != 1 {
		t.Fatalf("group B = %v", g.B)
	}
}

func TestBalancedGroupsStay(t *testing.T) {
	eng := sim.NewEngine(3)
	src := fakeSource{1: 0.5, 2: 0.5, 3: 0.52, 4: 0.48}
	g := &reconfig.Groups{A: []int{1, 2}, B: []int{3, 4}}
	c, _ := newController(t, eng, src, g)
	eng.RunUntil(3 * sim.Second)
	if c.Migrations != 0 {
		t.Fatalf("balanced groups should not migrate (got %d)", c.Migrations)
	}
}

func TestDrainWindow(t *testing.T) {
	eng := sim.NewEngine(4)
	src := fakeSource{1: 0.9, 2: 0.9, 3: 0.1, 4: 0.1}
	g := &reconfig.Groups{A: []int{1, 2}, B: []int{3, 4}}
	newController(t, eng, src, g)
	// Run just past the first evaluation: the donor node must be
	// draining — in neither group.
	eng.RunUntil(150 * sim.Millisecond)
	if len(g.Draining) != 1 {
		t.Fatalf("draining = %v, want 1 node mid-switch", g.Draining)
	}
	if len(g.A)+len(g.B) != 3 {
		t.Fatalf("node count during drain: A=%v B=%v", g.A, g.B)
	}
	eng.RunUntil(500 * sim.Millisecond)
	if len(g.Draining) != 0 {
		t.Fatal("drain window should have ended")
	}
	if len(g.A)+len(g.B) != 4 {
		t.Fatal("node lost after migration")
	}
}

func TestMigratesLeastLoadedDonor(t *testing.T) {
	eng := sim.NewEngine(5)
	src := fakeSource{1: 0.95, 2: 0.9, 3: 0.3, 4: 0.05}
	g := &reconfig.Groups{A: []int{1, 2}, B: []int{3, 4}}
	c, _ := newController(t, eng, src, g)
	eng.RunUntil(sim.Second)
	if c.Migrations == 0 {
		t.Fatal("no migration")
	}
	// Node 4 (idlest donor) should have moved, not node 3.
	for _, b := range g.B {
		if b == 4 {
			t.Fatalf("least-loaded donor should have moved: B=%v", g.B)
		}
	}
}

func TestStopHaltsController(t *testing.T) {
	eng := sim.NewEngine(6)
	src := fakeSource{1: 0.9, 2: 0.1}
	g := &reconfig.Groups{A: []int{1, 9}, B: []int{2, 8}}
	c, _ := newController(t, eng, src, g)
	c.Stop()
	eng.RunUntil(2 * sim.Second)
	if c.Migrations != 0 {
		t.Fatal("stopped controller still migrating")
	}
}

func TestSetBackendsProportional(t *testing.T) {
	p := &loadbalance.WeightedProportional{Weights: core.DefaultWeights()}
	reconfig.SetBackendsProportional(p, []int{1, 2, 3})
	if len(p.Backends) != 3 {
		t.Fatalf("backends = %v", p.Backends)
	}
	src := []int{4, 5}
	reconfig.SetBackendsProportional(p, src)
	src[0] = 99 // must not alias
	if p.Backends[0] != 4 {
		t.Fatal("SetBackendsProportional must copy")
	}
}

// TestIneligibleNodesAreInvisible covers the health-aware controller:
// a quarantined node must not be migrated, must not drag its group's
// load average down, and must not count toward the MinNodes floor.
func TestIneligibleNodesAreInvisible(t *testing.T) {
	eng := sim.NewEngine(7)
	// Group B looks idle only because node 4 is dead (its stale record
	// reads 0.05); its living node 3 is moderately loaded.
	src := fakeSource{1: 0.9, 2: 0.9, 3: 0.55, 4: 0.05}
	g := &reconfig.Groups{A: []int{1, 2}, B: []int{3, 4}}
	dead := map[int]bool{4: true}
	applied := 0
	c := reconfig.New(eng, reconfig.Config{
		Interval:   100 * sim.Millisecond,
		Threshold:  0.1,
		MinNodes:   1,
		SwitchTime: 200 * sim.Millisecond,
		Eligible:   func(n int) bool { return !dead[n] },
	}, src.get, g, func() { applied++ })
	t.Cleanup(c.Stop)

	eng.RunUntil(2 * sim.Second)
	// B's eligible population is just node 3 — exactly MinNodes — so no
	// donor is available even though A is far hotter; and the dead node
	// 4 must never have been the one to move.
	if c.Migrations != 0 {
		t.Fatalf("migrated %d node(s) from a group with one eligible member", c.Migrations)
	}
	for _, b := range g.A {
		if b == 4 {
			t.Fatal("dead node migrated into group A")
		}
	}

	// Revive node 4: B now has spare eligible capacity and the overload
	// gap (A≈0.9 vs B's eligible mean) triggers a migration — of a
	// living node.
	delete(dead, 4)
	src[4] = 0.1
	eng.RunUntil(4 * sim.Second)
	if c.BtoA == 0 {
		t.Fatal("no migration after the dead node revived")
	}
}

// TestIneligibleNodesDoNotDilute: a dead node's stale-low record must
// not make its group look underloaded. With the corpse visible the gap
// would clear the threshold; health-aware it must not.
func TestIneligibleNodesDoNotDilute(t *testing.T) {
	eng := sim.NewEngine(8)
	src := fakeSource{1: 0.62, 2: 0.62, 3: 0.55, 4: 0.0, 5: 0.55}
	g := &reconfig.Groups{A: []int{1, 2}, B: []int{3, 4, 5}}
	c := reconfig.New(eng, reconfig.Config{
		Interval:   100 * sim.Millisecond,
		Threshold:  0.1,
		MinNodes:   1,
		SwitchTime: 200 * sim.Millisecond,
		Eligible:   func(n int) bool { return n != 4 },
	}, src.get, g, func() {})
	t.Cleanup(c.Stop)
	eng.RunUntil(2 * sim.Second)
	// Eligible means: A = 0.62, B = 0.55 — gap 0.07 < threshold. The
	// naive mean (0.62 vs 0.37) would have migrated.
	if c.Migrations != 0 {
		t.Fatalf("dead node's stale record diluted the group mean (%d migrations)", c.Migrations)
	}
}
