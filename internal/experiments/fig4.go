package experiments

import (
	"rdmamon/internal/core"
	"rdmamon/internal/sim"
	"rdmamon/internal/simnet"
	"rdmamon/internal/simos"
	"rdmamon/internal/workload"
)

func init() {
	register("fig4", "application slowdown vs monitoring granularity (§5.1.2)",
		func(o Options) *Result { return Fig4(o).Result() })
}

// Fig4Data holds the Figure 4 series: mean application delay
// normalized to execution time, for each scheme at each monitoring
// granularity.
type Fig4Data struct {
	GranularityMS []int
	Delay         map[core.Scheme][]float64 // normalized (0.10 = 10% slowdown)
}

// Fig4 reproduces §5.1.2: a floating-point application runs on the
// back-end while it is monitored at granularity T. The schemes that
// run back-end monitoring work perturb the application at small T;
// RDMA-Sync does not perturb it at all.
func Fig4(o Options) *Fig4Data {
	gran := []int{1, 4, 16, 64, 256, 1024}
	if o.Quick {
		gran = []int{1, 16, 256}
	}
	schemes := core.FourSchemes()
	d := &Fig4Data{
		GranularityMS: gran,
		Delay:         make(map[core.Scheme][]float64),
	}
	for _, s := range schemes {
		d.Delay[s] = make([]float64, len(gran))
	}
	type point struct{ si, gi int }
	var pts []point
	for si := range schemes {
		for gi := range gran {
			pts = append(pts, point{si, gi})
		}
	}
	forEach(o, len(pts), func(i int) {
		p := pts[i]
		d.Delay[schemes[p.si]][p.gi] = fig4Point(o, schemes[p.si], gran[p.gi])
	})
	return d
}

func fig4Point(o Options, s core.Scheme, granMS int) float64 {
	eng := sim.NewEngine(o.seed() + int64(s)*10000 + int64(granMS))
	fab := simnet.NewFabric(eng, simnet.Defaults())
	front := simos.NewNode(eng, 0, simos.NodeDefaults())
	fnic := fab.Attach(front)
	backend := simos.NewNode(eng, 1, simos.NodeDefaults())
	bnic := fab.Attach(backend)

	// The probe application: one FP thread per CPU, each batch 10ms of
	// work, measuring its own wall-vs-CPU stretch.
	app := workload.StartFPApp(backend, backend.NumCPU(), 10*sim.Millisecond)

	T := sim.Time(granMS) * sim.Millisecond
	agent := core.StartAgent(backend, bnic, core.AgentConfig{Scheme: s, Interval: T})
	core.StartProber(front, fnic, agent, T)

	dur := 6 * sim.Second
	if o.Quick {
		dur = 2 * sim.Second
	}
	eng.RunUntil(dur)
	_ = agent
	return app.Delays.Mean()
}

// Result renders the figure as a table (values in percent).
func (d *Fig4Data) Result() *Result {
	r := &Result{
		ID:      "fig4",
		Title:   "Normalized application delay (%) vs monitoring granularity",
		Columns: []string{"granularity(ms)"},
	}
	for _, s := range core.FourSchemes() {
		r.Columns = append(r.Columns, s.String())
	}
	for gi, g := range d.GranularityMS {
		row := []string{f1(float64(g))}
		for _, s := range core.FourSchemes() {
			row = append(row, f2(d.Delay[s][gi]*100))
		}
		r.Rows = append(r.Rows, row)
	}
	r.Notes = append(r.Notes,
		"expected shape: Socket-Async > Socket-Sync > RDMA-Async at 1-4ms; RDMA-Sync ~0 everywhere (paper Fig 4)")
	return r
}
