package experiments

import (
	"fmt"

	"rdmamon/internal/cluster"
	"rdmamon/internal/core"
	"rdmamon/internal/metrics"
	"rdmamon/internal/sim"
	"rdmamon/internal/wire"
)

func init() {
	register("scale", "batched/sharded probe engine: cycle time vs fleet size",
		func(o Options) *Result { return Scale(o).Result() })
}

// scalePoll is the poll period every configuration runs at — the
// speedup claim is about sweep time at EQUAL poll period, so it is a
// constant, not a knob.
const scalePoll = 10 * sim.Millisecond

// ScalePoint is one (backends, shards, batch) cell of the sweep.
type ScalePoint struct {
	Backends, Shards, Batch int

	CycleP50Us, CycleMaxUs float64 // per-shard sweep duration
	ProbeP50Us, ProbeP99Us float64 // per-probe round trip (all back-ends)
	StaleP99Us             float64 // record age at arrival vs kernel stamp
	Cycles                 uint64  // completed sweeps in the window

	SeqViolations int // per-backend sequence regressions (must be 0)
	Errors        int // probe errors across the fleet (must be 0)

	Speedup float64 // sequential CycleP50 / this CycleP50, same fleet
}

// ScaleData holds the scale sweep and its pass/fail assessment. Runs
// past the pooled threshold (see scaleOutMin) carry the scale-out data
// instead of sweep points.
type ScaleData struct {
	Points []ScalePoint
	Out    *ScaleOutData
	Failed bool
	Notes  []string
}

// Scale measures how the probe engine's sweep time grows with the
// fleet: the sequential monitor (Shards=1, Batch=1) against doorbell
// batching alone and batching+sharding, at one fixed poll period. The
// non-quick run asserts the tentpole criterion: at the largest fleet
// the batched/sharded engine's median sweep is >= 4x faster than the
// sequential monitor's, with zero probe errors and zero per-backend
// sequence regressions everywhere.
func Scale(o Options) *ScaleData {
	if o.Backends >= scaleOutMin || o.MaxConns > 0 || o.DialsPerSec > 0 || o.PoolIdleMS > 0 {
		// Fleet sizes past the sweep's one-QP-per-backend assumption
		// (or explicit pool knobs) run the pooled scale-out instead.
		out := ScaleOut(o)
		return &ScaleData{Out: out, Failed: out.Failed, Notes: out.Notes}
	}
	backends := []int{8, 64, 256, 512}
	if o.Quick {
		backends = []int{8, 64, 128}
	}
	if o.Backends > 0 {
		backends = []int{o.Backends}
	}
	type cfg struct{ shards, batch int }
	cfgs := []cfg{{1, 1}, {1, 32}, {4, 32}}
	if o.Shards > 0 || o.Batch > 0 {
		s, b := o.Shards, o.Batch
		if s <= 0 {
			s = 4
		}
		if b <= 0 {
			b = 32
		}
		cfgs = []cfg{{1, 1}, {s, b}}
	}

	d := &ScaleData{Points: make([]ScalePoint, len(backends)*len(cfgs))}
	forEach(o, len(d.Points), func(i int) {
		n := backends[i/len(cfgs)]
		c := cfgs[i%len(cfgs)]
		d.Points[i] = scalePoint(o, n, c.shards, c.batch)
	})

	// Speedups: each cell vs the sequential cell of the same fleet size
	// (the first config in every group).
	for gi := 0; gi < len(backends); gi++ {
		seq := d.Points[gi*len(cfgs)]
		for ci := 0; ci < len(cfgs); ci++ {
			p := &d.Points[gi*len(cfgs)+ci]
			if p.CycleP50Us > 0 {
				p.Speedup = seq.CycleP50Us / p.CycleP50Us
			}
		}
	}

	for _, p := range d.Points {
		if p.SeqViolations > 0 {
			d.Failed = true
			d.Notes = append(d.Notes, fmt.Sprintf(
				"VIOLATION: %d sequence regressions at n=%d s=%d b=%d",
				p.SeqViolations, p.Backends, p.Shards, p.Batch))
		}
		if p.Errors > 0 {
			d.Failed = true
			d.Notes = append(d.Notes, fmt.Sprintf(
				"VIOLATION: %d probe errors at n=%d s=%d b=%d",
				p.Errors, p.Backends, p.Shards, p.Batch))
		}
		if p.Cycles == 0 {
			d.Failed = true
			d.Notes = append(d.Notes, fmt.Sprintf(
				"VIOLATION: no completed sweeps at n=%d s=%d b=%d",
				p.Backends, p.Shards, p.Batch))
		}
	}
	if !o.Quick {
		last := d.Points[len(d.Points)-1]
		if last.Speedup < 4 {
			d.Failed = true
			d.Notes = append(d.Notes, fmt.Sprintf(
				"VIOLATION: speedup %.1fx at %d back-ends (s=%d b=%d), want >= 4x",
				last.Speedup, last.Backends, last.Shards, last.Batch))
		}
	}
	return d
}

// scalePoint runs one configuration: a monitoring-only cluster (no web
// servers — this experiment measures the probe engine itself) under
// RDMA-Sync, warmed up, then measured.
func scalePoint(o Options, n, shards, batch int) ScalePoint {
	c := cluster.New(cluster.Config{
		Backends:      n,
		Scheme:        core.RDMASync,
		Poll:          scalePoll,
		Seed:          o.seed() + int64(n)*100 + int64(shards)*10 + int64(batch),
		NoServers:     true,
		MonitorShards: shards,
		MonitorBatch:  batch,
	})
	pt := ScalePoint{Backends: n, Shards: shards, Batch: batch}

	var probeLat, stale metrics.Sample
	lastSeq := make(map[int]uint32)
	for _, b := range c.Monitor.Backends() {
		b := b
		p := c.Monitor.Probers[b]
		p.OnRecord = func(rec wire.LoadRecord, at sim.Time) {
			if rec.Seq < lastSeq[b] {
				pt.SeqViolations++
			}
			lastSeq[b] = rec.Seq
			stale.Add(float64((at - sim.Time(rec.KTimeNS)) / sim.Microsecond))
		}
	}

	warm := 200 * sim.Millisecond
	dur := 2 * sim.Second
	if o.Quick {
		dur = 500 * sim.Millisecond
	}
	c.Eng.RunUntil(warm)
	// Reset the warm-up's samples and counters; measure steady state.
	c.Monitor.CycleTime = metrics.Sample{}
	stale = metrics.Sample{}
	cycles0 := c.Monitor.Cycles
	for _, p := range c.Monitor.Probers {
		p.Latency = metrics.Sample{}
	}
	c.Eng.RunUntil(warm + dur)

	for _, p := range c.Monitor.Probers {
		probeLat.AddAll(&p.Latency)
		pt.Errors += p.Errors
	}
	pt.CycleP50Us = c.Monitor.CycleTime.Percentile(50)
	pt.CycleMaxUs = c.Monitor.CycleTime.Max()
	pt.ProbeP50Us = probeLat.Percentile(50)
	pt.ProbeP99Us = probeLat.Percentile(99)
	pt.StaleP99Us = stale.Percentile(99)
	pt.Cycles = c.Monitor.Cycles - cycles0
	return pt
}

// Result renders the sweep as a table (or delegates to the pooled
// scale-out's phase table).
func (d *ScaleData) Result() *Result {
	if d.Out != nil {
		return d.Out.Result()
	}
	r := &Result{
		ID:    "scale",
		Title: "Probe-engine scaling: sweep time vs back-ends x shards x batch (10ms poll, RDMA-Sync)",
		Columns: []string{"backends", "shards", "batch", "cycle p50 us", "cycle max us",
			"probe p50 us", "probe p99 us", "stale p99 us", "sweeps", "speedup"},
		Failed: d.Failed,
	}
	for _, p := range d.Points {
		r.Rows = append(r.Rows, []string{
			fmt.Sprintf("%d", p.Backends),
			fmt.Sprintf("%d", p.Shards),
			fmt.Sprintf("%d", p.Batch),
			f1(p.CycleP50Us),
			f1(p.CycleMaxUs),
			f1(p.ProbeP50Us),
			f1(p.ProbeP99Us),
			f1(p.StaleP99Us),
			fmt.Sprintf("%d", p.Cycles),
			fmt.Sprintf("%.1fx", p.Speedup),
		})
	}
	r.Notes = append(r.Notes,
		"expected shape: sequential cycle time grows ~linearly with back-ends; batched+sharded grows sublinearly",
		"criterion (non-quick): >= 4x cycle-time speedup at the largest fleet, zero errors, zero seq regressions")
	r.Notes = append(r.Notes, d.Notes...)
	return r
}
