package experiments

import (
	"fmt"

	"rdmamon/internal/cluster"
	"rdmamon/internal/connpool"
	"rdmamon/internal/core"
	"rdmamon/internal/faults"
	"rdmamon/internal/sim"
	"rdmamon/internal/wire"
)

// scaleOutMin is the fleet size at which -exp scale switches from the
// sweep (which measures raw sweep time) to the pooled scale-out run
// (which measures connection-lifecycle robustness). The sweep's cost
// model holds one QP per back-end alive forever; past ~1k back-ends
// that is exactly the assumption the connpool layer exists to drop.
const scaleOutMin = 1024

// scaleOutSLO bounds hot back-ends' effective staleness, in probe
// periods T (time the cached record has been WRONG — old-but-accurate
// records on a decayed period do not count),
// through the dial-storm and fd-clamp phases and after each phase
// settles: degradation must land on quiet back-ends (shed/deferred),
// never on the volatile minority the dispatcher actually needs.
const scaleOutSLO = 8

// ScaleOutPhase is one phase of the pooled scale-out run with the
// pool/fence activity that phase generated.
type ScaleOutPhase struct {
	Name     string
	EndMS    int64
	Dials    uint64 // pool dial starts in this phase
	DialErrs uint64 // failed dials (refused, fd-limited, timed out)
	Evicts   uint64 // conns recycled to make room under the budget
	Sheds    uint64 // probe slots shed by the degradation ladder
	Fences   uint64 // completions rejected by the epoch fence
	Breaks   uint64 // per-target dial breakers opened

	HotAgeMaxT float64 // worst hot effective staleness during the phase, in T
	EndAgeT    float64 // hot effective staleness at the phase boundary
	WindowMax  uint64  // max dials in any 1s window ending in the phase
}

// ScaleOutData is the pooled scale-out run: fleet-scale monitoring on
// an explicit conn/dial/fd budget, driven through churn, dial-storm
// and fd-exhaustion phases.
type ScaleOutData struct {
	Backends, Volatile     int
	MaxConns, DialsPerSec  int
	Phases                 []ScaleOutPhase
	StaleEpochReads        int    // pull-stream KTime regressions (must be 0)
	FenceRejects           uint64 // fenced-and-replayed completions (informative)
	HotErrors              int    // probe errors on hot back-ends (must be 0)
	NoRecord               int    // back-ends with no record after warm-up
	LeakedConns, LeakedQPs int
	LeakedFDs              int
	BreakersStuck          int // breakers still open after cooldown
	Failed                 bool
	Notes                  []string
}

// ScaleOut runs the connection-lifecycle scale-out: a hybrid-monitored
// fleet (default 8192 back-ends) on a pooled transport whose conn and
// dial budgets are far below fleet size, through six phases — warm,
// steady, churn (crash/restart a quiet slice), dial storm, fd clamp,
// cooldown. It asserts the PR's acceptance criteria: zero stale-epoch
// reads (pull-stream kernel timestamps never regress), dial rate
// bounded by the budget in every 1s window, the hot-backend staleness
// SLO held through the storm and clamp phases, zero hot probe errors,
// and zero leaked conns/QPs/fds after teardown.
func ScaleOut(o Options) *ScaleOutData {
	n := o.Backends
	if n <= 0 {
		n = 8192
	}
	maxConns := o.MaxConns
	if maxConns <= 0 {
		maxConns = n / 8
		if maxConns < 64 {
			maxConns = 64
		}
	}
	dialsPerSec := o.DialsPerSec
	if dialsPerSec <= 0 {
		dialsPerSec = n
		if dialsPerSec < 512 {
			dialsPerSec = 512
		}
	}
	idleNS := int64(500 * sim.Millisecond)
	if o.PoolIdleMS > 0 {
		idleNS = int64(o.PoolIdleMS) * int64(sim.Millisecond)
	}
	shards, batch := 8, 32
	if o.Shards > 0 {
		shards = o.Shards
	}
	if o.Batch > 0 {
		batch = o.Batch
	}
	volatile := n / 32
	if volatile < 2 {
		volatile = 2
	}
	burst := dialsPerSec / 4
	if burst < 1 {
		burst = 1
	}

	d := &ScaleOutData{
		Backends: n, Volatile: volatile,
		MaxConns: maxConns, DialsPerSec: dialsPerSec,
	}

	c := cluster.New(cluster.Config{
		Backends:      n,
		Scheme:        core.RDMASync,
		Poll:          scalePoll,
		Seed:          o.seed() + int64(n),
		NoServers:     true,
		ProbeTimeout:  scalePoll,
		MonitorShards: shards,
		MonitorBatch:  batch,
		Hybrid:        hybridKnobs(o),
		// The failover ladder is armed: a refused or timed-out dial
		// degrades to the same-cycle socket standby instead of losing
		// the probe, which is how hot back-ends keep their SLO (and
		// zero errors) through the storm phase.
		Failover: &core.FailoverConfig{},
		Pool: &connpool.Config{
			MaxConns:    maxConns,
			DialsPerSec: float64(dialsPerSec),
			DialBurst:   burst,
			IdleAfterNS: idleNS,
			BreakAfter:  2,
			// Short reopen window: fault phases are sub-second, and a
			// breaker must get its half-open probe (and close) before
			// the cooldown assertion.
			ReopenAfterNS: int64(200 * sim.Millisecond),
		},
	})
	hot := startFlappers(c, n, volatile)
	hotSet := make(map[int]bool, len(hot))
	for _, b := range hot {
		hotSet[b] = true
	}

	// Phase schedule. The churn slice crashes quiet back-ends only (the
	// experiment's contract is that budget pressure and fault recovery
	// land on the quiet fleet); flapper IDs sit at stride n/volatile.
	unit := 500 * sim.Millisecond
	if o.Quick {
		unit = 250 * sim.Millisecond
	}
	warmEnd := unit
	steadyEnd := warmEnd + unit
	churnEnd := steadyEnd + 2*unit
	stormEnd := churnEnd + unit
	clampEnd := stormEnd + unit
	coolEnd := clampEnd + unit

	var plan faults.Plan
	plan.Seed = o.seed() + 1
	crashAt := steadyEnd + unit/4
	crashed := 0
	for id := 2; id <= n && crashed < n/32; id++ {
		if hotSet[id] {
			continue
		}
		plan.Crashes = append(plan.Crashes, faults.Crash{
			Node: id, At: crashAt, RestartAt: crashAt + 300*sim.Millisecond,
		})
		crashed++
	}
	// Listener bounces on the volatile minority mid-churn: hot conns
	// are resident by construction, so each reset lands on a live
	// pooled QP and must go through the fence-reject-and-replay path
	// (visible in the fences column) without denting the hot SLO.
	for i, b := range hot {
		plan.ListenerResets = append(plan.ListenerResets, faults.ListenerReset{
			Node: b, At: crashAt + 400*sim.Millisecond + sim.Time(i)*sim.Millisecond,
		})
	}
	plan.DialStorms = append(plan.DialStorms, faults.DialStorm{
		Target: faults.Any, Start: churnEnd, End: stormEnd,
		Refuse: 0.5, DelayProb: 0.3,
		DelayMin: 100 * sim.Microsecond, DelayMax: 2 * sim.Millisecond,
	})
	plan.FDClamps = append(plan.FDClamps, faults.FDClamp{
		Node: c.Front.ID, Start: stormEnd, End: clampEnd, Limit: maxConns / 2,
	})
	c.ApplyFaults(plan)

	// Stale-epoch watchdog: within the pull stream (RDMA reads and
	// socket fallbacks — pushes have their own ordering guard in
	// notePush) a served record's kernel timestamp must never regress.
	// A read completing over a recycled conn that escaped the fence
	// would deliver an older MR image and trip this.
	lastPullK := make(map[int]int64, n)
	for _, b := range c.Monitor.Backends() {
		b := b
		p := c.Monitor.Probers[b]
		p.OnRecord = func(rec wire.LoadRecord, _ sim.Time) {
			if p.LastTransport == core.TransportPush {
				return
			}
			if rec.KTimeNS < lastPullK[b] {
				d.StaleEpochReads++
			}
			lastPullK[b] = rec.KTimeNS
		}
	}

	// Dial-rate audit: every dial start, timestamped by the pool.
	var dialTimes []int64
	c.Monitor.Pool().OnDial = func(_ int, at int64) {
		dialTimes = append(dialTimes, at)
	}

	// Hot effective-staleness tracker, sampled every T: a cached
	// record is stale only while it is WRONG (the hybrid experiment's
	// metric — an adaptively-decayed period keeping an old-but-accurate
	// record is not a staleness violation). Truth comes from the
	// paper's zero-cost direct kernel snapshot.
	threshold := hybridKnobs(o).WithDefaults(scalePoll).Threshold
	lastAccurate := make(map[int]sim.Time, len(hot))
	hotEff := func() sim.Time {
		now := c.Eng.Now()
		var worst sim.Time
		for _, b := range hot {
			truth := core.RecordFromSnapshot(c.Backends[b-1].K.Snapshot(), 0)
			cached, at, ok := c.Monitor.Latest(b)
			if !ok {
				worst = now
				continue
			}
			if core.LoadDelta(truth, cached) <= threshold {
				lastAccurate[b] = now
			}
			eff := now - at
			if wrong := now - lastAccurate[b]; wrong < eff {
				eff = wrong
			}
			if eff > worst {
				worst = eff
			}
		}
		return worst
	}
	var hotStaleMax sim.Time
	age := c.Eng.NewTicker(scalePoll, func() {
		if eff := hotEff(); eff > hotStaleMax {
			hotStaleMax = eff
		}
	})
	defer age.Stop()

	type snap struct {
		stats connpool.Stats
		sheds uint64
	}
	take := func() snap {
		return snap{stats: c.Monitor.Pool().Stats(), sheds: c.Monitor.PoolSheds}
	}
	shedSum := func(s connpool.Stats) uint64 {
		var t uint64
		for _, v := range s.Sheds {
			t += v
		}
		return t
	}
	prev := take()
	prevDials := 0
	runPhase := func(name string, end sim.Time) {
		hotStaleMax = 0
		c.Eng.RunUntil(end)
		cur := take()
		ph := ScaleOutPhase{
			Name:     name,
			EndMS:    int64(end / sim.Millisecond),
			Dials:    cur.stats.Dials - prev.stats.Dials,
			DialErrs: cur.stats.DialErrors - prev.stats.DialErrors,
			Evicts:   cur.stats.Evictions - prev.stats.Evictions,
			Sheds:    shedSum(cur.stats) - shedSum(prev.stats),
			Breaks:   cur.stats.BreakerOpens - prev.stats.BreakerOpens,

			HotAgeMaxT: float64(hotStaleMax) / float64(scalePoll),
			EndAgeT:    float64(hotEff()) / float64(scalePoll),
			WindowMax:  maxDialWindow(dialTimes[prevDials:], int64(sim.Second)),
		}
		ph.Fences = c.Monitor.FenceRejects - d.FenceRejects
		d.FenceRejects = c.Monitor.FenceRejects
		_ = cur.sheds
		d.Phases = append(d.Phases, ph)
		prev = cur
		prevDials = len(dialTimes)
	}

	runPhase("warm", warmEnd)
	for _, b := range c.Monitor.Backends() {
		if _, _, ok := c.Monitor.Latest(b); !ok {
			d.NoRecord++
		}
	}
	runPhase("steady", steadyEnd)
	runPhase("churn", churnEnd)
	runPhase("storm", stormEnd)
	runPhase("fdclamp", clampEnd)
	runPhase("cool", coolEnd)

	for _, b := range hot {
		d.HotErrors += c.Monitor.Probers[b].Errors
	}
	d.BreakersStuck = c.Monitor.Pool().BreakersOpen()

	// Teardown: everything the run acquired must come back.
	pool := c.Monitor.Pool()
	c.Monitor.Stop()
	d.LeakedConns = pool.Stats().Live
	d.LeakedQPs = c.FNIC.QPsOpen()
	d.LeakedFDs = c.FNIC.FDsInUse()

	d.assess()
	return d
}

// maxDialWindow returns the largest number of dial starts falling in
// any window of the given width, over an ascending timestamp slice.
func maxDialWindow(ts []int64, width int64) uint64 {
	var best, lo int
	for hi := range ts {
		for ts[hi]-ts[lo] >= width {
			lo++
		}
		if hi-lo+1 > best {
			best = hi - lo + 1
		}
	}
	return uint64(best)
}

func (d *ScaleOutData) assess() {
	fail := func(format string, args ...any) {
		d.Failed = true
		d.Notes = append(d.Notes, "VIOLATION: "+fmt.Sprintf(format, args...))
	}
	if d.StaleEpochReads > 0 {
		fail("%d stale-epoch reads served (pull-stream kernel time regressed)", d.StaleEpochReads)
	}
	if d.FenceRejects == 0 {
		fail("churn never exercised the epoch fence (listener resets must land on live conns)")
	}
	if d.NoRecord > 0 {
		fail("%d back-ends had no record after warm-up", d.NoRecord)
	}
	if d.HotErrors > 0 {
		fail("%d probe errors on hot back-ends (degradation must land on quiet ones)", d.HotErrors)
	}
	if d.BreakersStuck > 0 {
		fail("%d dial breakers still open after cooldown", d.BreakersStuck)
	}
	if d.LeakedConns != 0 || d.LeakedQPs != 0 || d.LeakedFDs != 0 {
		fail("leaked conns=%d QPs=%d fds=%d after Stop", d.LeakedConns, d.LeakedQPs, d.LeakedFDs)
	}
	budget := uint64(d.DialsPerSec + d.DialsPerSec/4)
	for _, ph := range d.Phases {
		if ph.WindowMax > budget {
			fail("phase %s: %d dials in a 1s window exceeds budget %d",
				ph.Name, ph.WindowMax, budget)
		}
		switch ph.Name {
		case "storm", "fdclamp", "cool":
			// Through refusal storms and fd exhaustion, hot back-ends
			// ride resident conns (or pushes): their records never age
			// past the SLO.
			if ph.HotAgeMaxT > scaleOutSLO {
				fail("phase %s: hot effective staleness %.1fT exceeds the %dT SLO",
					ph.Name, ph.HotAgeMaxT, scaleOutSLO)
			}
		case "churn":
			// Crash-timeout stalls are allowed transiently; the phase
			// must END recovered.
			if ph.EndAgeT > scaleOutSLO {
				fail("churn did not settle: hot effective staleness %.1fT at phase end (SLO %dT)",
					ph.EndAgeT, scaleOutSLO)
			}
		}
	}
}

// Result renders the scale-out as a phase table.
func (d *ScaleOutData) Result() *Result {
	r := &Result{
		ID: "scale",
		Title: fmt.Sprintf(
			"Pooled scale-out: %d back-ends on %d conns, %d dials/s (churn + dial storm + fd clamp)",
			d.Backends, d.MaxConns, d.DialsPerSec),
		Columns: []string{"phase", "end ms", "dials", "dial errs", "evicts",
			"sheds", "fences", "breaks", "hot stale max T", "hot stale end T", "win dials/s"},
		Failed: d.Failed,
	}
	for _, p := range d.Phases {
		r.Rows = append(r.Rows, []string{
			p.Name,
			fmt.Sprintf("%d", p.EndMS),
			fmt.Sprintf("%d", p.Dials),
			fmt.Sprintf("%d", p.DialErrs),
			fmt.Sprintf("%d", p.Evicts),
			fmt.Sprintf("%d", p.Sheds),
			fmt.Sprintf("%d", p.Fences),
			fmt.Sprintf("%d", p.Breaks),
			f1(p.HotAgeMaxT),
			f1(p.EndAgeT),
			fmt.Sprintf("%d", p.WindowMax),
		})
	}
	r.Notes = append(r.Notes, fmt.Sprintf(
		"criteria: 0 stale-epoch reads (saw %d), dial rate <= %d+burst in every 1s window, hot age <= %dT through storm/fdclamp, 0 leaks after Stop",
		d.StaleEpochReads, d.DialsPerSec, scaleOutSLO))
	r.Notes = append(r.Notes, fmt.Sprintf(
		"fence rejected+replayed %d completions; %d/%d back-ends volatile (hot)",
		d.FenceRejects, d.Volatile, d.Backends))
	r.Notes = append(r.Notes, d.Notes...)
	return r
}
