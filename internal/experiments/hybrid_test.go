package experiments

import "testing"

// TestHybridQuickContract runs the quick hybrid comparison and asserts
// the tentpole contract at its reduced fleet: the hybrid scheme must
// post >= 10x fewer probe work requests than all-pull while both modes
// hold the same effective-staleness bound — the exact criterion the
// full 512-back-end rmbench run enforces.
func TestHybridQuickContract(t *testing.T) {
	if testing.Short() {
		t.Skip("slow experiment; skipped with -short")
	}
	d := Hybrid(Options{Quick: true})
	if d.Failed {
		t.Fatalf("quick hybrid run reported violations:\n%v", d.Notes)
	}
	if d.WRRatio < hybridWRRatio {
		t.Fatalf("probe-WR reduction %.1fx, want >= %dx", d.WRRatio, hybridWRRatio)
	}
	pull, hyb := d.Points[0], d.Points[1]
	if hyb.PushWRs == 0 || hyb.Decayed == 0 {
		t.Fatalf("hybrid run posted no pushes (%d) or never decayed (%d)", hyb.PushWRs, hyb.Decayed)
	}
	if pull.PushWRs != 0 || pull.Decayed != 0 {
		t.Fatalf("all-pull baseline pushed (%d) or decayed (%d)", pull.PushWRs, pull.Decayed)
	}
	for _, p := range d.Points {
		if p.EffStaleMaxT > hybridStaleSLO {
			t.Fatalf("%s effective staleness %.1fT > %dT", p.Mode, p.EffStaleMaxT, hybridStaleSLO)
		}
	}
}

// TestHybridKnobOverrides exercises the rmbench -period-min/-period-max
// /-push-threshold plumbing: capping the decay ceiling at 2T must cost
// probe WRs versus the default 64T ceiling.
func TestHybridKnobOverrides(t *testing.T) {
	if testing.Short() {
		t.Skip("slow experiment; skipped with -short")
	}
	slow := Hybrid(Options{Quick: true, Backends: 32})
	fast := Hybrid(Options{Quick: true, Backends: 32, PeriodMax: 2, PushThreshold: 0.2})
	if fast.Points[1].ProbeWRs <= slow.Points[1].ProbeWRs {
		t.Fatalf("2T ceiling posted %d probe WRs, 64T ceiling %d — override not applied",
			fast.Points[1].ProbeWRs, slow.Points[1].ProbeWRs)
	}
}

// TestHybridDeterministic: the hybrid comparison — flappers, adaptive
// periods, delta pushes, the staleness audit — must be bit-identical
// across two runs with the same seed.
func TestHybridDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("slow experiment; skipped with -short")
	}
	diffResults(t, "hybrid", runOnce(t, "hybrid"), runOnce(t, "hybrid"))
}
