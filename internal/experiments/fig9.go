package experiments

import (
	"rdmamon/internal/cluster"
	"rdmamon/internal/core"
	"rdmamon/internal/sim"
	"rdmamon/internal/workload"
)

func init() {
	register("fig9", "fine-grained vs coarse-grained monitoring: throughput vs granularity (§5.2.3)",
		func(o Options) *Result { return Fig9(o).Result() })
}

// Fig9Data holds total throughput (req/s) per scheme at each load-
// fetching granularity, for the co-hosted RUBiS + Zipf(0.5) workload.
type Fig9Data struct {
	GranularityMS []int
	Throughput    map[core.Scheme][]float64
}

// Fig9 reproduces §5.2.3, the paper's headline result: sweeping the
// load-fetching granularity from coarse (4096 ms) to fine (64 ms),
// RDMA-Sync's throughput keeps improving as monitoring gets finer —
// up to ~25% over the socket schemes at 64 ms — while the socket
// schemes gain nothing (their probes are too slow and too perturbing
// to exploit fine granularity). At coarse granularity all schemes
// converge.
func Fig9(o Options) *Fig9Data {
	gran := []int{64, 128, 256, 512, 1024, 2048, 4096}
	if o.Quick {
		gran = []int{64, 512, 4096}
	}
	schemes := core.FourSchemes()
	d := &Fig9Data{GranularityMS: gran, Throughput: make(map[core.Scheme][]float64)}
	for _, s := range schemes {
		d.Throughput[s] = make([]float64, len(gran))
	}
	reps := 3
	if o.Quick {
		reps = 1
	}
	type job struct{ si, gi, rep int }
	var jobs []job
	for si := range schemes {
		for gi := range gran {
			for r := 0; r < reps; r++ {
				jobs = append(jobs, job{si, gi, r})
			}
		}
	}
	vals := make([]float64, len(jobs))
	forEach(o, len(jobs), func(i int) {
		j := jobs[i]
		vals[i] = fig9Point(o, schemes[j.si], gran[j.gi], int64(j.rep))
	})
	for i, j := range jobs {
		d.Throughput[schemes[j.si]][j.gi] += vals[i] / float64(reps)
	}
	return d
}

func fig9Point(o Options, s core.Scheme, granMS int, rep int64) float64 {
	T := sim.Time(granMS) * sim.Millisecond
	c := cluster.New(cluster.Config{
		Backends:    8,
		Scheme:      s,
		Poll:        T,
		Seed:        o.seed() + 90 + rep*7919,
		Policy:      cluster.PolicyWebSphere,
		LocalWeight: -1,
		Gamma:       4,
	})
	c.StartTenantNoise(o.seed() + 94 + rep)
	rubis := c.StartRUBiS(128, 30*sim.Millisecond, o.seed()+91+rep)
	z := workload.NewZipfTrace(5000, 0.5, o.seed()+92)
	zipf := c.StartZipf(z, 256, 20*sim.Millisecond, o.seed()+93+rep)
	warm := 3 * sim.Second
	dur := 25 * sim.Second
	if o.Quick {
		warm = sim.Second
		dur = 6 * sim.Second
	}
	c.Run(warm)
	rubis.ResetStats()
	zipf.ResetStats()
	c.Run(dur)
	return rubis.Throughput() + zipf.Throughput()
}

// Result renders Figure 9.
func (d *Fig9Data) Result() *Result {
	r := &Result{
		ID:      "fig9",
		Title:   "Total throughput (req/s) vs load-fetching granularity (RUBiS + Zipf 0.5)",
		Columns: []string{"granularity(ms)"},
	}
	for _, s := range core.FourSchemes() {
		r.Columns = append(r.Columns, s.String())
	}
	for gi, g := range d.GranularityMS {
		row := []string{f1(float64(g))}
		for _, s := range core.FourSchemes() {
			row = append(row, f1(d.Throughput[s][gi]))
		}
		r.Rows = append(r.Rows, row)
	}
	r.Notes = append(r.Notes,
		"expected shape: RDMA-Sync throughput rises as granularity falls (best at 64ms); socket schemes flat or degrading; all comparable at >=1024ms (paper Fig 9)")
	return r
}
