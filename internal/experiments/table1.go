package experiments

import (
	"rdmamon/internal/cluster"
	"rdmamon/internal/core"
	"rdmamon/internal/metrics"
	"rdmamon/internal/sim"
	"rdmamon/internal/workload"
)

func init() {
	register("table1", "RUBiS per-query average and maximum response time (§5.2.1)",
		func(o Options) *Result { return Table1(o).Result() })
}

// Table1Data holds the RUBiS per-query response times for all five
// schemes, in milliseconds.
type Table1Data struct {
	Queries []string
	Avg     map[core.Scheme]map[string]float64
	Max     map[core.Scheme]map[string]float64
}

// Table1 reproduces the paper's Table 1: an 8-back-end cluster serves
// the RUBiS mix from 64 closed-loop clients; the dispatcher uses the
// WebSphere-style index fed by each monitoring scheme (T = 50 ms).
// Average times should be close across schemes, while maximum times
// collapse (up to ~90%) for the kernel-direct RDMA schemes, whose
// records neither go stale under load nor perturb the servers.
func Table1(o Options) *Table1Data {
	schemes := core.Schemes()
	d := &Table1Data{
		Queries: workload.QueryNames(workload.RUBiSMix()),
		Avg:     make(map[core.Scheme]map[string]float64),
		Max:     make(map[core.Scheme]map[string]float64),
	}
	for _, s := range schemes {
		d.Avg[s] = make(map[string]float64)
		d.Max[s] = make(map[string]float64)
	}
	// Maxima are effectively single-sample statistics, so each scheme
	// runs over several seeds; the table reports the mean of the
	// per-run maxima (and the pooled average).
	reps := 3
	if o.Quick {
		reps = 1
	}
	type job struct{ si, rep int }
	var jobs []job
	for si := range schemes {
		for r := 0; r < reps; r++ {
			jobs = append(jobs, job{si, r})
		}
	}
	type cell struct{ avg, max map[string]float64 }
	results := make([]cell, len(jobs))
	forEach(o, len(jobs), func(i int) {
		j := jobs[i]
		o2 := o
		o2.Seed = o.seed() + int64(j.rep)*9973
		avg, max := table1Point(o2, schemes[j.si])
		results[i] = cell{avg, max}
	})
	for i, j := range jobs {
		s := schemes[j.si]
		for q, v := range results[i].avg {
			d.Avg[s][q] += v / float64(reps)
		}
		for q, v := range results[i].max {
			d.Max[s][q] += v / float64(reps)
		}
	}
	return d
}

func table1Point(o Options, s core.Scheme) (avg, max map[string]float64) {
	// The seed is identical across schemes so every scheme faces the
	// same arrival sequence; differences are causal, not sampling
	// noise.
	c := cluster.New(cluster.Config{
		Backends:    8,
		Scheme:      s,
		Poll:        core.DefaultInterval,
		Seed:        o.seed(),
		Policy:      cluster.PolicyWebSphere,
		LocalWeight: -1,
		Gamma:       4,
	})
	pool := c.StartRUBiS(256, 55*sim.Millisecond, o.seed()+7)
	fc := c.StartFlashCrowds(1500*sim.Millisecond, 40, 80, o.seed()+9)
	warm := 2 * sim.Second
	dur := 40 * sim.Second
	if o.Quick {
		warm = sim.Second
		dur = 8 * sim.Second
	}
	c.Run(warm)
	pool.ResetStats()
	fc.ResetStats()
	c.Run(dur)
	avg = make(map[string]float64)
	max = make(map[string]float64)
	for _, q := range workload.QueryNames(workload.RUBiSMix()) {
		merged := &metrics.Sample{}
		merged.AddAll(pool.PerClass[q])
		merged.AddAll(fc.PerClass[q])
		if merged.Count() > 0 {
			avg[q] = merged.Mean()
			max[q] = merged.Max()
		}
	}
	return avg, max
}

// Result renders both halves of Table 1.
func (d *Table1Data) Result() *Result {
	r := &Result{
		ID:      "table1",
		Title:   "RUBiS response time (ms): average | maximum",
		Columns: []string{"query"},
	}
	schemes := core.Schemes()
	for _, s := range schemes {
		r.Columns = append(r.Columns, s.String())
	}
	for _, q := range d.Queries {
		row := []string{q + " avg"}
		for _, s := range schemes {
			row = append(row, f1(d.Avg[s][q]))
		}
		r.Rows = append(r.Rows, row)
	}
	for _, q := range d.Queries {
		row := []string{q + " max"}
		for _, s := range schemes {
			row = append(row, f1(d.Max[s][q]))
		}
		r.Rows = append(r.Rows, row)
	}
	r.Notes = append(r.Notes,
		"expected shape: averages close across schemes; maxima far lower for RDMA-Sync/e-RDMA-Sync (paper Table 1)")
	return r
}
