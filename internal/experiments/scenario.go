// Scenario driver: runs declarative scenarios (internal/scenario)
// against the simulated cluster. Scenarios with `checks: chaos` or
// `checks: ha` route into those experiments' invariant checkers over
// the compiled config (the legacy `-exp chaos`/`-exp ha` now go the
// same way, via the builtin scenarios); everything else runs the
// generic driver below — per-variant seeded runs, a staleness sampler,
// per-template dispatch shares, and assertion verdicts that propagate
// a non-zero rmbench exit on failure.
package experiments

import (
	"fmt"
	"os"
	"strings"

	"rdmamon/internal/cluster"
	"rdmamon/internal/metrics"
	"rdmamon/internal/scenario"
)

// RunScenarioFile loads, parses, compiles and runs a scenario file
// (YAML or JSON).
func RunScenarioFile(path string, o Options) (*Result, error) {
	src, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("scenario: %v", err)
	}
	s, err := scenario.Parse(src)
	if err != nil {
		return nil, err
	}
	return RunScenario(s, o)
}

// RunScenario runs a parsed scenario and renders its end-of-run
// report. Result.Failed is set when any assertion (or invariant, for
// checks scenarios) fails.
func RunScenario(s *scenario.Scenario, o Options) (*Result, error) {
	cp, err := s.Compile(o.Quick)
	if err != nil {
		return nil, err
	}
	switch s.Checks {
	case "chaos":
		res := chaosScenario(cp, o).Result()
		res.ID = s.Name
		return res, nil
	case "ha":
		res := haScenario(cp, o).Result()
		res.ID = s.Name
		return res, nil
	}
	return runScenarioGeneric(cp, o), nil
}

// scenarioRun is one (variant, seed) run's raw stats.
type scenarioRun struct {
	served, routed, timeouts uint64
	respMean, respP99        float64 // ms
	staleMax, staleP99       float64 // record age, in probe periods T
	perNode                  []uint64
	digest                   string
}

// runScenarioGeneric sweeps every variant over the seed set, folds the
// per-seed stats into per-variant metrics, evaluates the assertion
// block, and renders the report through the shared table writer.
func runScenarioGeneric(cp *scenario.Compiled, o Options) *Result {
	s := cp.S
	n := cp.Points(o.Seeds)
	base := cp.BaseSeed(o.Seed)

	type cell struct{ runs []scenarioRun }
	cells := make([]cell, len(cp.Variants))
	for vi := range cp.Variants {
		cells[vi].runs = make([]scenarioRun, n)
	}
	// Flatten (variant, seed) into one fan-out: each run is its own
	// simulation engine, so they are independent.
	forEach(o, len(cp.Variants)*n, func(k int) {
		vi, i := k/n, k%n
		cells[vi].runs[i] = scenarioRunOne(cp, cp.Variants[vi].Policy, cp.SeedAt(base, i))
	})

	res := &Result{
		ID:    s.Name,
		Title: scenarioTitle(s),
	}

	// Replay determinism: the first variant's first seed, run again,
	// must reproduce its digest bit-identically.
	replay := scenarioRunOne(cp, cp.Variants[0].Policy, cp.SeedAt(base, 0))
	if replay.digest != cells[0].runs[0].digest {
		res.Failed = true
		res.Notes = append(res.Notes,
			fmt.Sprintf("FAIL: determinism: replay of seed %d diverged", cp.SeedAt(base, 0)))
	}

	shareCols := scenario.SortedShareMetrics(s.Fleet.Templates)
	cols := append([]string{"variant"}, scenario.MetricNames()...)
	cols = append(cols, shareCols...)
	res.Columns = cols

	byVariant := make(map[string]map[string]float64, len(cp.Variants))
	for vi, v := range cp.Variants {
		m := foldRuns(cp, cells[vi].runs)
		byVariant[v.Name] = m
		row := []string{v.Name}
		for _, name := range scenario.MetricNames() {
			row = append(row, fmtMetric(name, m[name]))
		}
		for _, name := range shareCols {
			row = append(row, fmtMetric(name, m[name]))
		}
		res.Rows = append(res.Rows, row)
	}

	if len(cp.Counts) > 0 {
		parts := make([]string, len(cp.Counts))
		for j, c := range cp.Counts {
			parts[j] = fmt.Sprintf("%d x %s", c, s.Fleet.Templates[j].Name)
		}
		res.Notes = append(res.Notes, "fleet: "+strings.Join(parts, ", ")+
			fmt.Sprintf(" (%d back-ends, %d seed(s), horizon %v)", cp.Backends, n, cp.Horizon))
	}

	pass := 0
	for _, a := range s.Assertions {
		verdict, ok := evalAssertion(a, cp, byVariant)
		if ok {
			pass++
		} else {
			res.Failed = true
		}
		res.Notes = append(res.Notes, verdict)
	}
	if len(s.Assertions) > 0 && !res.Failed {
		res.Notes = append(res.Notes, fmt.Sprintf("all %d assertion(s) passed", pass))
	}
	return res
}

func scenarioTitle(s *scenario.Scenario) string {
	if s.Description != "" {
		return s.Description
	}
	return "declarative scenario"
}

// fmtMetric renders one metric value with a unit-appropriate width.
func fmtMetric(name string, v float64) string {
	switch {
	case strings.HasPrefix(name, "share_"):
		return fmt.Sprintf("%.3f", v)
	case strings.HasSuffix(name, "_ms") || strings.HasSuffix(name, "_t"):
		return f2(v)
	default:
		return fmt.Sprintf("%.0f", v)
	}
}

// foldRuns reduces per-seed stats to the variant's reported metrics:
// counters and percentiles average across seeds; stale_max_t takes the
// worst seed (it is a bound, not a typical value).
func foldRuns(cp *scenario.Compiled, runs []scenarioRun) map[string]float64 {
	m := map[string]float64{}
	n := float64(len(runs))
	var perNode []uint64
	for _, r := range runs {
		m["served"] += float64(r.served) / n
		m["routed"] += float64(r.routed) / n
		m["timeouts"] += float64(r.timeouts) / n
		m["resp_mean_ms"] += r.respMean / n
		m["resp_p99_ms"] += r.respP99 / n
		m["stale_p99_t"] += r.staleP99 / n
		if r.staleMax > m["stale_max_t"] {
			m["stale_max_t"] = r.staleMax
		}
		if perNode == nil {
			perNode = make([]uint64, len(r.perNode))
		}
		for b := range r.perNode {
			perNode[b] += r.perNode[b]
		}
	}
	if len(cp.Counts) > 0 {
		var total uint64
		byTemplate := map[string]uint64{}
		for b := 1; b < len(perNode); b++ {
			total += perNode[b]
			byTemplate[cp.TemplateOf(b)] += perNode[b]
		}
		for name, c := range byTemplate {
			if total > 0 {
				m["share_"+name] = float64(c) / float64(total)
			}
		}
	}
	return m
}

// evalAssertion renders one assertion's verdict line and whether it
// passed.
func evalAssertion(a scenario.Assertion, cp *scenario.Compiled, byVariant map[string]map[string]float64) (string, bool) {
	names := make([]string, len(cp.Variants))
	for i, v := range cp.Variants {
		names[i] = v.Name
	}
	vn := a.Variant
	if vn == "" {
		vn = names[0]
	}
	vm := byVariant[vn]
	v, ok := vm[a.Metric]
	if !ok {
		return fmt.Sprintf("FAIL: %s: unknown metric %q for variant %s", a.Metric, a.Metric, vn), false
	}
	var checks []string
	pass := true
	if a.Min != nil {
		okMin := v >= *a.Min
		pass = pass && okMin
		checks = append(checks, fmt.Sprintf("%s %s min %s", fmtMetric(a.Metric, v), cmpWord(okMin, ">="), fmtMetric(a.Metric, *a.Min)))
	}
	if a.Max != nil {
		okMax := v <= *a.Max
		pass = pass && okMax
		checks = append(checks, fmt.Sprintf("%s %s max %s", fmtMetric(a.Metric, v), cmpWord(okMax, "<="), fmtMetric(a.Metric, *a.Max)))
	}
	if a.LessThan != "" {
		other, okM := byVariant[a.LessThan][a.Metric]
		okLT := okM && v < other
		pass = pass && okLT
		checks = append(checks, fmt.Sprintf("%s %s %s's %s", fmtMetric(a.Metric, v), cmpWord(okLT, "<"), a.LessThan, fmtMetric(a.Metric, other)))
	}
	verdict := "PASS"
	if !pass {
		verdict = "FAIL"
	}
	return fmt.Sprintf("%s: %s %s: %s", verdict, vn, a.Metric, strings.Join(checks, ", ")), pass
}

func cmpWord(ok bool, op string) string {
	if ok {
		return op
	}
	return "violates " + op
}

// scenarioRunOne executes one (variant policy, seed) run: build the
// compiled cluster, install the fault plan, sample record staleness
// each probe period (fault windows exempt, like the chaos checker's
// I2), count per-backend routing, drive the workload, digest the
// outcome for the replay check.
func scenarioRunOne(cp *scenario.Compiled, policy string, seed int64) scenarioRun {
	c := cluster.New(cp.ClusterConfig(seed, policy))
	plan := cp.Plan(seed)
	in := c.ApplyFaults(plan)

	down := make(map[int]bool)
	prevCrash, prevRestart := in.OnCrash, in.OnRestart
	in.OnCrash = func(node int) {
		if prevCrash != nil {
			prevCrash(node)
		}
		down[node] = true
	}
	in.OnRestart = func(node int) {
		if prevRestart != nil {
			prevRestart(node)
		}
		down[node] = false
	}

	perNode := make([]uint64, cp.Backends+1)
	if c.Dispatcher != nil {
		c.Dispatcher.OnRoute = func(b int) {
			if b >= 0 && b < len(perNode) {
				perNode[b]++
			}
		}
	}

	stale := &metrics.Sample{}
	warmup := 20 * cp.Poll
	ticker := c.Eng.NewTicker(cp.Poll, func() {
		now := c.Eng.Now()
		if now < warmup {
			return
		}
		for _, b := range c.Monitor.Backends() {
			if down[b] || planDisturbs(plan, cp.Poll, b, now) {
				continue
			}
			_, at, ok := c.Monitor.Latest(b)
			if !ok {
				continue
			}
			stale.Add(float64(now-at) / float64(cp.Poll))
		}
	})
	defer ticker.Stop()

	pool := c.StartRUBiS(cp.Clients, cp.Think, seed+11)
	c.Run(cp.Horizon)

	st := scenarioRun{
		served:   c.TotalServed(),
		timeouts: pool.Timeouts,
		respMean: pool.All.Mean(),
		respP99:  pool.All.Percentile(99),
		staleMax: stale.Max(),
		staleP99: stale.Percentile(99),
		perNode:  perNode,
	}
	if c.Dispatcher != nil {
		st.routed = c.Dispatcher.Routed
	}
	st.digest = fmt.Sprintf("served=%d routed=%d tmo=%d resp=%.6f/%.6f stale=%.6f/%.6f n=%d per=%v",
		st.served, st.routed, st.timeouts, st.respMean, st.respP99,
		st.staleMax, st.staleP99, stale.Count(), perNode)
	return st
}
