package experiments

import (
	"rdmamon/internal/admission"
	"rdmamon/internal/cluster"
	"rdmamon/internal/core"
	"rdmamon/internal/sim"
)

func init() {
	register("admit", "extension: admission control quality vs monitoring scheme (paper §1 use case)",
		func(o Options) *Result { return Admit(o).Result() })
}

// AdmitData holds admission-control outcomes per scheme: how many
// requests the cluster admitted, how many of those met the latency
// objective, and how many were needlessly rejected.
type AdmitData struct {
	Schemes  []core.Scheme
	Admitted []uint64
	Rejected []uint64
	Served   []uint64
	GoodPut  []uint64  // served within the SLA
	P99      []float64 // of served requests, ms
}

// AdmitSLA is the latency objective used for goodput, in ms.
const AdmitSLA = 100.0

// Admit runs an overloaded, noisy cluster behind an admission
// controller fed by each scheme. Accurate monitoring admits more
// requests and still keeps them within the objective — the paper's
// "number of requests the cluster-system can admit" framing.
func Admit(o Options) *AdmitData {
	schemes := core.Schemes()
	d := &AdmitData{
		Schemes:  schemes,
		Admitted: make([]uint64, len(schemes)),
		Rejected: make([]uint64, len(schemes)),
		Served:   make([]uint64, len(schemes)),
		GoodPut:  make([]uint64, len(schemes)),
		P99:      make([]float64, len(schemes)),
	}
	forEach(o, len(schemes), func(i int) {
		s := schemes[i]
		c := cluster.New(cluster.Config{
			Backends:    6,
			Scheme:      s,
			Seed:        o.seed() + 300,
			Policy:      cluster.PolicyWebSphere,
			LocalWeight: -1,
			Gamma:       4,
		})
		ctl := c.EnableAdmission(admission.Config{Threshold: 0.7, Weights: core.WeightsFor(s)})
		c.StartTenantNoise(o.seed() + 301)
		pool := c.StartRUBiS(256, 25*sim.Millisecond, o.seed()+302)
		dur := 25 * sim.Second
		if o.Quick {
			dur = 6 * sim.Second
		}
		c.Run(2 * sim.Second)
		pool.ResetStats()
		admitted0, rejected0 := ctl.Admitted, ctl.Rejected
		c.Run(dur)
		d.Admitted[i] = ctl.Admitted - admitted0
		d.Rejected[i] = ctl.Rejected - rejected0
		d.Served[i] = pool.Completed
		for _, rt := range pool.All.Values() {
			if rt <= AdmitSLA {
				d.GoodPut[i]++
			}
		}
		d.P99[i] = pool.All.Percentile(99)
	})
	return d
}

// Result renders the extension table.
func (d *AdmitData) Result() *Result {
	r := &Result{
		ID:      "admit",
		Title:   "Admission control: requests admitted and served within 100ms SLA",
		Columns: []string{"scheme", "admitted", "rejected", "served", "goodput", "p99(ms)"},
	}
	for i, s := range d.Schemes {
		r.Rows = append(r.Rows, []string{
			s.String(),
			f1(float64(d.Admitted[i])), f1(float64(d.Rejected[i])),
			f1(float64(d.Served[i])), f1(float64(d.GoodPut[i])), f1(d.P99[i]),
		})
	}
	r.Notes = append(r.Notes,
		"extension (paper §1): accurate monitoring admits more requests without violating the objective")
	return r
}
