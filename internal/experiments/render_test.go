package experiments

import (
	"reflect"
	"strings"
	"testing"
)

// TestAlignRows pins the shared table writer's column discipline:
// every column is padded to its widest cell, columns are joined by two
// spaces, trailing padding is trimmed, and a dashed separator follows
// the header.
func TestAlignRows(t *testing.T) {
	lines := AlignRows(
		[]string{"variant", "served", "stale_p99_t"},
		[][]string{
			{"least-load", "123456", "1.20"},
			{"rr", "99", "14.75"},
		},
	)
	want := []string{
		"variant     served  stale_p99_t",
		"----------  ------  -----------",
		"least-load  123456  1.20",
		"rr          99      14.75",
	}
	if !reflect.DeepEqual(lines, want) {
		t.Fatalf("AlignRows:\n%s\nwant:\n%s", strings.Join(lines, "\n"), strings.Join(want, "\n"))
	}
	for _, l := range lines {
		if strings.HasSuffix(l, " ") {
			t.Fatalf("untrimmed line %q", l)
		}
	}
}

// TestAlignRowsRagged: short rows and over-long rows must not panic or
// shift other columns.
func TestAlignRowsRagged(t *testing.T) {
	lines := AlignRows(
		[]string{"a", "b"},
		[][]string{
			{"1"},
			{"2", "3", "extra"},
		},
	)
	if len(lines) != 4 {
		t.Fatalf("got %d lines, want 4", len(lines))
	}
	if lines[2] != "1" {
		t.Fatalf("short row rendered as %q", lines[2])
	}
	if lines[3] != "2  3  extra" {
		t.Fatalf("long row rendered as %q", lines[3])
	}
}
