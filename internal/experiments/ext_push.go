package experiments

import (
	"rdmamon/internal/core"
	"rdmamon/internal/metrics"
	"rdmamon/internal/sim"
	"rdmamon/internal/simnet"
	"rdmamon/internal/simos"
	"rdmamon/internal/workload"
)

func init() {
	register("push", "extension: hardware-multicast push vs pull schemes (paper §6 discussion)",
		func(o Options) *Result { return Push(o).Result() })
}

// PushRow summarizes one monitoring approach at fine granularity.
type PushRow struct {
	Name      string
	MeanAgeMS float64 // record age at the front-end when sampled
	AppDelay  float64 // normalized perturbation of the back-end app
	RecordsPS float64 // records landing at the front-end per second
}

// PushData compares the paper's §6 multicast-push alternative against
// the pull schemes at T = 4ms. Push scales to many front-ends in one
// send, but it keeps a monitoring process on the back-end — so it
// inherits the perturbation and scheduling delays of the two-sided
// schemes, which is exactly why the paper stays with one-sided pulls.
type PushData struct {
	Rows []PushRow
}

// Push runs each approach against a back-end executing a fixed
// floating-point workload.
func Push(o Options) *PushData {
	const T = 4 * sim.Millisecond
	approaches := []string{"Multicast-Push", "Socket-Sync", "RDMA-Async", "RDMA-Sync"}
	d := &PushData{Rows: make([]PushRow, len(approaches))}
	forEach(o, len(approaches), func(i int) {
		d.Rows[i] = pushPoint(o, approaches[i], T)
	})
	return d
}

func pushPoint(o Options, name string, T sim.Time) PushRow {
	eng := sim.NewEngine(o.seed() + 400)
	fab := simnet.NewFabric(eng, simnet.Defaults())
	front := simos.NewNode(eng, 0, simos.NodeDefaults())
	fnic := fab.Attach(front)
	backend := simos.NewNode(eng, 1, simos.NodeDefaults())
	bnic := fab.Attach(backend)

	app := workload.StartFPApp(backend, backend.NumCPU(), 10*sim.Millisecond)

	var age metrics.Sample
	var records uint64
	dur := 10 * sim.Second
	if o.Quick {
		dur = 3 * sim.Second
	}

	if name == "Multicast-Push" {
		mon := core.StartPushMonitor(fab, front, core.PushGroup)
		core.StartPushAgent(backend, bnic, core.PushGroup, T)
		// Sample the cached record's age the way a dispatcher would:
		// at arbitrary instants.
		eng.NewTicker(5*sim.Millisecond, func() {
			if rec, at, ok := mon.Latest(1); ok {
				_ = rec
				age.Add(float64(eng.Now()-at) / float64(sim.Millisecond))
				records, _ = mon.Stats()
			}
		})
		eng.RunUntil(dur)
	} else {
		s, err := core.ParseScheme(name)
		if err != nil {
			panic(err)
		}
		agent := core.StartAgent(backend, bnic, core.AgentConfig{Scheme: s, Interval: T})
		p := core.StartProber(front, fnic, agent, T)
		eng.NewTicker(5*sim.Millisecond, func() {
			if _, at, ok := p.Latest(); ok {
				age.Add(float64(eng.Now()-at) / float64(sim.Millisecond))
				records = uint64(p.Latency.Count())
			}
		})
		eng.RunUntil(dur)
	}
	return PushRow{
		Name:      name,
		MeanAgeMS: age.Mean(),
		AppDelay:  app.Delays.Mean(),
		RecordsPS: float64(records) / dur.Seconds(),
	}
}

// Result renders the comparison.
func (d *PushData) Result() *Result {
	r := &Result{
		ID:      "push",
		Title:   "Multicast push vs pull at T=4ms: freshness, cost, rate",
		Columns: []string{"approach", "mean age(ms)", "app delay(%)", "records/s"},
	}
	for _, row := range d.Rows {
		r.Rows = append(r.Rows, []string{
			row.Name, f2(row.MeanAgeMS), f2(row.AppDelay * 100), f1(row.RecordsPS),
		})
	}
	r.Notes = append(r.Notes,
		"extension (paper §6): push scales to many front-ends but keeps a back-end process; RDMA-Sync is both fresh and free")
	return r
}
