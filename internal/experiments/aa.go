package experiments

import (
	"fmt"
	"math/rand"

	"rdmamon/internal/cluster"
	"rdmamon/internal/core"
	"rdmamon/internal/faults"
	"rdmamon/internal/httpsim"
	"rdmamon/internal/sim"
	"rdmamon/internal/workload"
)

func init() {
	register("aa", "active-active front-ends: CAS-claimed dispatch shards, orphan reclamation, aggregate throughput",
		func(o Options) *Result { return AA(o).Result() })
}

// aaReclaimSlack is the allowance, in claim check cycles, added on top
// of ExpireAfter + VacantGrace for the A2 bound: the orphan's last
// renewal lands up to one cycle before the fault, a surviving
// front-end observes the final word value up to one cycle later, its
// bid waits for the next round boundary, and dispatch traffic on its
// node can delay the claim task by a few more cycles.
const aaReclaimSlack = 8

// aaDecisionCost is the per-request front-end CPU in the throughput
// runs. It is deliberately heavy (routing decision + parse at 100us)
// so the dispatcher — not the back-end worker pools — is the
// bottleneck: exactly the regime where a second, third and fourth
// concurrently-dispatching front-end buys aggregate throughput.
const aaDecisionCost = 100 * sim.Microsecond

// AAPoint is one seed's verdict over three runs: a chaos run (claim
// stalls + front-end faults) checking A1/A2, and a fault-free
// throughput pair (active-active vs single-primary) checking A3/A4.
type AAPoint struct {
	Seed   int64
	Stalls int // claim-stall windows in the plan

	Claims       int     // claim epochs acquired across fleet and shards
	ReclaimMaxMS float64 // slowest orphaned-shard reacquisition after an FE fault
	ShardFenced  uint64  // requests refused by the per-shard claim fence
	NotPrimary   uint64  // refused replies observed at the clients
	Served       uint64  // chaos-run requests completed end to end

	ThroughputAA float64 // fault-free req/s, N active-active front-ends
	ThroughputSP float64 // fault-free req/s, same fleet behind one leased primary
	FairMin      float64 // smallest per-front-end share of AA routed requests

	Violations []string
	ViolationN int

	Fingerprint string // deterministic digest of all three runs (A5)
}

// AAData holds the per-seed results.
type AAData struct {
	Points []AAPoint
}

// AA runs the active-active dispatch harness: for each seed it builds
// an N-replica RDMA-Sync cluster whose back-end space is folded onto
// CAS-claimed shard words on the witness (every replica dispatches
// concurrently, each only to back-ends whose shard claim it validly
// holds), applies a fault plan extended with claim-stall windows, and
// checks:
//
//	A1  no double-dispatch: per shard, validity intervals from
//	    different front-ends never overlap, shard epochs are monotone,
//	    and no request is ever routed to a back-end whose shard claim
//	    the routing front-end does not validly hold at that instant;
//	A2  orphan reclamation: every shard validly held by a front-end
//	    hit by a crash, freeze or witness partition is re-acquired
//	    within ExpireAfter + VacantGrace plus a bounded number of
//	    check cycles;
//	A3  the N-front-end active-active fleet sustains at least twice
//	    the throughput of the same fleet behind one leased primary
//	    when the front-end decision cost is the bottleneck;
//	A4  fairness: with claims converged to the home partition, every
//	    front-end routes at least 1/(2N) of the active-active run's
//	    requests;
//	A5  a fixed seed replays bit-identically (checked for the first
//	    seed by running all three simulations twice).
func AA(o Options) *AAData {
	n := o.Seeds
	if n <= 0 {
		n = 5
	}
	d := &AAData{Points: make([]AAPoint, n)}
	forEach(o, n, func(i int) {
		seed := o.seed() + int64(i)*7919
		pt := aaPoint(o, seed)
		if i == 0 {
			replay := aaPoint(o, seed)
			if replay.Fingerprint != pt.Fingerprint {
				pt.Violations = append(pt.Violations,
					fmt.Sprintf("A5 determinism: replay of seed %d diverged", seed))
				pt.ViolationN++
			}
		}
		d.Points[i] = pt
	})
	return d
}

// aaFrontEnds resolves the replica count (flag -frontends).
func aaFrontEnds(o Options) int {
	if o.FrontEnds >= 2 {
		return o.FrontEnds
	}
	return 4
}

// aaClaimConfig resolves the claim knobs (flags -claim-shards and
// -claim-ttl); zeros defer to the cluster defaults.
func aaClaimConfig(o Options) core.ClaimConfig {
	return core.ClaimConfig{
		Shards: o.ClaimShards,
		TTL:    sim.Time(o.ClaimTTLMS) * sim.Millisecond,
	}
}

func aaPoint(o Options, seed int64) AAPoint {
	poll := core.DefaultInterval
	horizon := 20 * sim.Second
	clients := 48
	if o.Quick {
		horizon = 10 * sim.Second
		clients = 32
	}
	fes := aaFrontEnds(o)

	c := cluster.New(cluster.Config{
		Backends:     8,
		Scheme:       core.RDMASync,
		Poll:         poll,
		Seed:         seed,
		Policy:       cluster.PolicyLeastLoad,
		ProbeTimeout: poll,
		Replicas:     fes,
		ActiveActive: true,
		Claim:        aaClaimConfig(o),
	})
	plan := faults.RandomPlan(seed, faults.ChaosConfig{
		Backends:    8,
		Horizon:     horizon,
		FrontEnds:   c.FrontEndIDs(),
		Witness:     c.Witness.ID,
		ClaimStalls: 2,
	})
	c.ApplyFaults(plan)

	ck := newAAChecker(c, plan)
	ck.install()

	pool := c.StartRUBiS(clients, 30*sim.Millisecond, seed+11)
	c.Run(horizon)

	ck.checkOverlaps()
	ck.checkReclaims(horizon)
	pt := ck.point(seed, pool)

	// Fault-free throughput pair: the same fleet dispatch-bound, first
	// active-active, then behind a single leased primary.
	aaTput, fair, aaFP := aaPerfRun(o, seed, fes, true)
	spTput, _, spFP := aaPerfRun(o, seed, fes, false)
	pt.ThroughputAA, pt.ThroughputSP, pt.FairMin = aaTput, spTput, fair
	if aaTput < 2*spTput {
		pt.Violations = append(pt.Violations, fmt.Sprintf(
			"A3 throughput: %d active-active front-ends sustain %.0f req/s, want >= 2x the single-primary %.0f req/s",
			fes, aaTput, spTput))
		pt.ViolationN++
	}
	if fairFloor := 1 / (2 * float64(fes)); fair < fairFloor {
		pt.Violations = append(pt.Violations, fmt.Sprintf(
			"A4 fairness: slowest front-end routed %.3f of requests, want >= %.3f (1/2N)", fair, fairFloor))
		pt.ViolationN++
	}
	pt.Fingerprint += " aa={" + aaFP + "} sp={" + spFP + "}"
	return pt
}

// aaPerfRun measures steady-state throughput of one fleet arrangement:
// N front-ends dispatching concurrently under claims (active) or the
// same topology behind one lease-fenced primary. Claims/lease settle
// during a client-free warm-up so the measurement starts converged.
// Returns req/s, the smallest per-front-end routed share (active
// only), and a determinism digest.
func aaPerfRun(o Options, seed int64, fes int, active bool) (tput, minShare float64, fp string) {
	poll := core.DefaultInterval
	horizon := 4 * sim.Second
	if o.Quick {
		horizon = 2 * sim.Second
	}
	const clients = 96
	const warmup = 500 * sim.Millisecond

	c := cluster.New(cluster.Config{
		Backends:     8,
		Scheme:       core.RDMASync,
		Poll:         poll,
		Seed:         seed + 101,
		Policy:       cluster.PolicyLeastLoad,
		ProbeTimeout: poll,
		Replicas:     fes,
		ActiveActive: active,
		Claim:        aaClaimConfig(o),
	})
	for _, r := range c.FrontEnds {
		r.Dispatcher.DecisionCost = aaDecisionCost
	}
	c.Run(warmup)

	// Light requests: 100us of back-end CPU, no I/O wait. With the
	// decision cost equal to the service demand and 8x8 workers of
	// back-end capacity, the front-end tier is the bottleneck.
	gen := func(rng *rand.Rand, id uint64, client int, now sim.Time) httpsim.Request {
		return httpsim.Request{
			ID: id, Class: "aa", CPU: 100 * sim.Microsecond,
			Size: 300, Resp: 1200, Client: client, Issued: now,
		}
	}
	pool := c.StartPool(clients, 2*sim.Millisecond, gen, seed+13)
	c.Run(horizon)

	tput = pool.Throughput()
	var total uint64
	routes := ""
	for _, r := range c.FrontEnds {
		total += r.Dispatcher.Routed
	}
	minShare = 1
	for _, r := range c.FrontEnds {
		share := 0.0
		if total > 0 {
			share = float64(r.Dispatcher.Routed) / float64(total)
		}
		if share < minShare {
			minShare = share
		}
		routes += fmt.Sprintf("|%d", r.Dispatcher.Routed)
	}
	fp = fmt.Sprintf("done=%d tmo=%d np=%d served=%d routes=%s",
		pool.Completed, pool.Timeouts, pool.NotPrimary, c.TotalServed(), routes)
	return tput, minShare, fp
}

// aaInterval is one front-end's validity window over one shard epoch:
// opened by an acquire, extended by renewals, truncated by a deposal
// or release (or left at the last renewal's validUntil if the holder
// died or froze holding it).
type aaInterval struct {
	replica    int
	shard      uint16
	epoch      uint16
	start, end sim.Time
}

// aaFault is a front-end fault instant with the shards the victim
// validly held just before it landed.
type aaFault struct {
	at     sim.Time
	kind   string
	victim int
	shards []uint16
}

// aaRetired accumulates counters of managers and dispatchers replaced
// by replica restarts.
type aaRetired struct {
	routed, fenced, shardFenced              uint64
	takeovers, renewals, deposals, handbacks uint64
	casErr, readErr, rounds                  uint64
}

// aaChecker audits one chaos run against invariants A1 and A2.
type aaChecker struct {
	c     *cluster.Cluster
	plan  faults.Plan
	claim core.ClaimConfig

	intervals []*aaInterval          // all validity intervals, in acquire order
	open      map[[2]int]*aaInterval // (replica, shard) -> open interval
	lastEpoch map[uint16]uint16      // shard -> highest epoch acquired
	epochSeen map[uint16]bool

	faults []aaFault

	disp    map[int]*httpsim.Dispatcher
	mgrs    map[int]*core.ClaimManager
	retired aaRetired

	reclaimMax sim.Time
	violations []string
	violationN int
}

func newAAChecker(c *cluster.Cluster, plan faults.Plan) *aaChecker {
	return &aaChecker{
		c:         c,
		plan:      plan,
		claim:     c.Cfg.Claim, // cluster.New resolved the defaults
		open:      make(map[[2]int]*aaInterval),
		lastEpoch: make(map[uint16]uint16),
		epochSeen: make(map[uint16]bool),
		disp:      make(map[int]*httpsim.Dispatcher),
		mgrs:      make(map[int]*core.ClaimManager),
	}
}

func (ck *aaChecker) violate(format string, args ...any) {
	ck.violationN++
	if len(ck.violations) < 8 {
		ck.violations = append(ck.violations, fmt.Sprintf(format, args...))
	}
}

func (ck *aaChecker) install() {
	for _, r := range ck.c.FrontEnds {
		ck.hook(r)
	}
	// A restarted replica comes back with a fresh dispatcher and claim
	// manager; retire the dead objects' counters and re-hook.
	ck.c.OnReplicaRestart = func(r *cluster.Replica) {
		if old := ck.disp[r.Index]; old != nil {
			ck.retired.routed += old.Routed
			ck.retired.fenced += old.Fenced
			ck.retired.shardFenced += old.ShardFenced
		}
		if old := ck.mgrs[r.Index]; old != nil {
			ck.retireMgr(old)
		}
		ck.hook(r)
	}

	// A2 observers: capture what the victim validly holds 1ns before
	// each front-end fault lands (the injector's events were scheduled
	// first, so an observer at the fault instant would run after it).
	reps := make(map[int]*cluster.Replica)
	for _, r := range ck.c.FrontEnds {
		reps[r.Node.ID] = r
	}
	observe := func(at sim.Time, kind string, victim int) {
		ck.c.Eng.After(at-1*sim.Nanosecond, func() {
			r := reps[victim]
			if r == nil || r.Down() || r.ClaimMgr == nil {
				return
			}
			f := aaFault{at: at, kind: kind, victim: victim}
			now := ck.c.Eng.Now()
			for s := 0; s < r.ClaimMgr.Shards(); s++ {
				if r.ClaimMgr.Valid(s, now) {
					f.shards = append(f.shards, uint16(s))
				}
			}
			ck.faults = append(ck.faults, f)
		})
	}
	for _, cr := range ck.plan.Crashes {
		if reps[cr.Node] != nil {
			observe(cr.At, "crash", cr.Node)
		}
	}
	for _, fz := range ck.plan.Freezes {
		if reps[fz.Node] != nil {
			observe(fz.At, "freeze", fz.Node)
		}
	}
	for _, pa := range ck.plan.Partitions {
		if len(pa.A) == 1 && reps[pa.A[0]] != nil && len(pa.B) == 1 && pa.B[0] == ck.c.Witness.ID {
			observe(pa.Start, "partition", pa.A[0])
		}
	}
}

// retireMgr folds a dead claim manager's counters into the totals.
func (ck *aaChecker) retireMgr(m *core.ClaimManager) {
	for _, cl := range m.Claims {
		ck.retired.takeovers += cl.Takeovers
		ck.retired.renewals += cl.Renewals
		ck.retired.deposals += cl.Deposals
		ck.retired.handbacks += cl.Handbacks
	}
	ck.retired.casErr += m.CASErrors
	ck.retired.readErr += m.ReadErrors
	ck.retired.rounds += m.Rounds
}

// hook installs the claim observers and the A1 route audit on one
// replica's (possibly fresh) objects.
func (ck *aaChecker) hook(r *cluster.Replica) {
	idx := r.Index
	mgr := r.ClaimMgr
	ck.disp[idx] = r.Dispatcher
	ck.mgrs[idx] = mgr

	for _, cl := range mgr.Claims {
		cl := cl
		cl.OnAcquire = func(shard, epoch uint16, now, validUntil sim.Time) {
			if ck.epochSeen[shard] && epoch <= ck.lastEpoch[shard] {
				ck.violate("A1 epoch: replica %d acquired shard %d epoch %d after epoch %d was taken",
					idx, shard, epoch, ck.lastEpoch[shard])
			} else {
				ck.lastEpoch[shard] = epoch
				ck.epochSeen[shard] = true
			}
			e := &aaInterval{replica: idx, shard: shard, epoch: epoch, start: now, end: validUntil}
			ck.open[[2]int{idx, int(shard)}] = e
			ck.intervals = append(ck.intervals, e)
		}
		cl.OnRenew = func(shard, epoch uint16, now, validUntil sim.Time) {
			if e := ck.open[[2]int{idx, int(shard)}]; e != nil && validUntil > e.end {
				e.end = validUntil
			}
		}
		closeAt := func(shard uint16, now sim.Time) {
			key := [2]int{idx, int(shard)}
			if e := ck.open[key]; e != nil {
				if e.end > now {
					e.end = now
				}
				ck.open[key] = nil
			}
		}
		cl.OnDepose = func(shard, epoch uint16, now sim.Time) { closeAt(shard, now) }
		cl.OnRelease = func(shard, epoch uint16, now sim.Time) { closeAt(shard, now) }
	}

	// A1 route audit: every request forwarded by this replica must go
	// to a back-end whose shard claim it validly holds at that instant.
	// The BackendFence is what should make this true; auditing at
	// OnRoute (after the fence, before the forward) catches any leak.
	r.Dispatcher.OnRoute = func(b int) {
		if !mgr.Valid(ck.c.ShardOf(b), ck.c.Eng.Now()) {
			ck.violate("A1 fence: replica %d routed to back-end %d without holding shard %d at %v",
				idx, b, ck.c.ShardOf(b), ck.c.Eng.Now())
		}
	}
}

// checkOverlaps runs A1's interval half after the run: per shard, no
// two validity intervals from different front-ends may overlap.
func (ck *aaChecker) checkOverlaps() {
	for i, a := range ck.intervals {
		for _, b := range ck.intervals[i+1:] {
			if a.replica == b.replica || a.shard != b.shard {
				continue
			}
			if a.start < b.end && b.start < a.end {
				ck.violate("A1 double-hold: shard %d replica %d epoch %d [%v, %v] overlaps replica %d epoch %d [%v, %v]",
					a.shard, a.replica, a.epoch, a.start, a.end, b.replica, b.epoch, b.start, b.end)
			}
		}
	}
}

// checkReclaims runs A2 after the run: every shard the victim of a
// front-end fault validly held must be re-acquired (by any front-end,
// the restarted victim included) within the reclaim bound. Faults
// whose window is truncated by the horizon are skipped.
func (ck *aaChecker) checkReclaims(horizon sim.Time) {
	bound := ck.claim.ExpireAfter + ck.claim.VacantGrace + aaReclaimSlack*ck.claim.CheckEvery
	for _, f := range ck.faults {
		if f.at+bound > horizon {
			continue
		}
		for _, s := range f.shards {
			var won sim.Time
			found := false
			for _, e := range ck.intervals {
				if e.shard == s && e.start > f.at {
					won, found = e.start, true
					break
				}
			}
			if !found || won-f.at > bound {
				ck.violate("A2 reclaim: %s of front-end %d at %v orphaned shard %d, not re-acquired within %v",
					f.kind, f.victim, f.at, s, bound)
				continue
			}
			if lat := won - f.at; lat > ck.reclaimMax {
				ck.reclaimMax = lat
			}
		}
	}
}

func (ck *aaChecker) point(seed int64, pool *workload.ClientPool) AAPoint {
	// Stall windows: every freeze on this plan lands on a front-end,
	// as does every single-node partition against the witness.
	stalls := len(ck.plan.Freezes)
	for _, pa := range ck.plan.Partitions {
		if len(pa.A) == 1 && len(pa.B) == 1 && pa.B[0] == ck.c.Witness.ID {
			stalls++
		}
	}
	pt := AAPoint{
		Seed:         seed,
		Stalls:       stalls,
		Claims:       len(ck.intervals),
		ReclaimMaxMS: float64(ck.reclaimMax) / float64(sim.Millisecond),
		NotPrimary:   pool.NotPrimary,
		Served:       ck.c.TotalServed(),
		Violations:   ck.violations,
		ViolationN:   ck.violationN,
	}

	tot := ck.retired
	for _, r := range ck.c.FrontEnds {
		if d := ck.disp[r.Index]; d != nil {
			tot.routed += d.Routed
			tot.fenced += d.Fenced
			tot.shardFenced += d.ShardFenced
		}
		for _, cl := range r.ClaimMgr.Claims {
			tot.takeovers += cl.Takeovers
			tot.renewals += cl.Renewals
			tot.deposals += cl.Deposals
			tot.handbacks += cl.Handbacks
		}
		tot.casErr += r.ClaimMgr.CASErrors
		tot.readErr += r.ClaimMgr.ReadErrors
		tot.rounds += r.ClaimMgr.Rounds
	}
	pt.ShardFenced = tot.shardFenced

	// The fingerprint digests everything the chaos run produced, so an
	// A5 replay mismatch catches any nondeterminism, not just one that
	// changed a headline number.
	spans := ""
	for _, e := range ck.intervals {
		spans += fmt.Sprintf("|%d:%d:%d@%d-%d", e.replica, e.shard, e.epoch, e.start, e.end)
	}
	pt.Fingerprint = fmt.Sprintf(
		"served=%d routed=%d sfenced=%d fenced=%d notprim=%d retgt=%d tmo=%d take=%d renew=%d dep=%d hand=%d caserr=%d readerr=%d rounds=%d viol=%d rmax=%d spans=%s",
		pt.Served, tot.routed, tot.shardFenced, tot.fenced, pt.NotPrimary, pool.Retargets, pool.Timeouts,
		tot.takeovers, tot.renewals, tot.deposals, tot.handbacks, tot.casErr, tot.readErr, tot.rounds,
		pt.ViolationN, ck.reclaimMax, spans)
	return pt
}

// Result renders the active-active table.
func (d *AAData) Result() *Result {
	r := &Result{
		ID:    "aa",
		Title: "Active-active front-ends: claim-arbitrated dispatch under claim stalls, vs single-primary throughput",
		Columns: []string{"seed", "stalls", "claims", "reclaim(ms)", "sfenced",
			"notprim", "served", "aa(req/s)", "sp(req/s)", "x", "fairmin", "viol"},
	}
	total := 0
	for _, p := range d.Points {
		total += p.ViolationN
		ratio := 0.0
		if p.ThroughputSP > 0 {
			ratio = p.ThroughputAA / p.ThroughputSP
		}
		r.Rows = append(r.Rows, []string{
			fmt.Sprintf("%d", p.Seed),
			fmt.Sprintf("%d", p.Stalls),
			fmt.Sprintf("%d", p.Claims),
			f1(p.ReclaimMaxMS),
			fmt.Sprintf("%d", p.ShardFenced),
			fmt.Sprintf("%d", p.NotPrimary),
			fmt.Sprintf("%d", p.Served),
			fmt.Sprintf("%.0f", p.ThroughputAA),
			fmt.Sprintf("%.0f", p.ThroughputSP),
			f2(ratio),
			f2(p.FairMin),
			fmt.Sprintf("%d", p.ViolationN),
		})
		for _, v := range p.Violations {
			r.Notes = append(r.Notes, fmt.Sprintf("seed %d: %s", p.Seed, v))
		}
	}
	if total > 0 {
		r.Failed = true
		r.Notes = append(r.Notes, fmt.Sprintf("FAILED: %d invariant violation(s)", total))
	} else {
		r.Notes = append(r.Notes, "all invariants held: no shard was validly held by two front-ends at once and every routed request went out under a validly held claim, every orphaned shard was re-acquired within the reclaim bound, the active-active fleet at least doubled single-primary throughput, every front-end carried at least half its fair share, and the first seed replayed bit-identically")
	}
	return r
}
