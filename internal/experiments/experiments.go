// Package experiments regenerates every table and figure of the
// paper's evaluation (§5). Each experiment builds its own simulated
// cluster(s), runs the paper's workload, and returns both typed data
// and a rendered text table with the same rows/series the paper
// reports.
//
// Absolute numbers are simulator-calibrated; EXPERIMENTS.md records
// the paper-vs-measured comparison and the shape criteria each
// experiment is expected to satisfy.
package experiments

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
)

// Options control an experiment run.
type Options struct {
	Seed int64
	// Quick shrinks durations for use in tests; the shapes remain,
	// the tails get noisier.
	Quick bool
	// Sequential disables the per-point goroutine fan-out (each sweep
	// point is an independent simulation engine, so parallel is safe
	// and is the default).
	Sequential bool
	// Seeds is how many random fault plans the chaos experiment sweeps
	// (default 5; other experiments ignore it).
	Seeds int

	// Backends, Shards and Batch pin the scale experiment to a single
	// configuration instead of its built-in sweep (0 = sweep; other
	// experiments ignore them). Backends also pins the hybrid
	// experiment's fleet size.
	Backends int
	Shards   int
	Batch    int

	// PushThreshold, PeriodMin and PeriodMax override the hybrid
	// experiment's controller knobs (zero = its defaults; other
	// experiments ignore them). Periods are in probe periods T.
	PushThreshold float64
	PeriodMin     int
	PeriodMax     int

	// FrontEnds is the active-active experiment's replica count
	// (default 4, minimum 2); ClaimShards and ClaimTTLMS override its
	// claim-table size and claim TTL (zero = the cluster defaults:
	// one shard per back-end, TTL derived from the poll interval).
	// Other experiments ignore all three.
	FrontEnds   int
	ClaimShards int
	ClaimTTLMS  int

	// MaxConns, DialsPerSec and PoolIdleMS size the pooled scale-out
	// run's connection budget, dial-rate budget and idle-conn GC age.
	// Setting any of them (or Backends >= 1024) switches -exp scale
	// from the sweep to the pooled scale-out with fault phases; zero
	// means fleet-derived defaults.
	MaxConns    int
	DialsPerSec int
	PoolIdleMS  int
}

func (o Options) seed() int64 {
	if o.Seed == 0 {
		return 20060925 // CLUSTER 2006 conference date
	}
	return o.Seed
}

// Result is a rendered experiment outcome.
type Result struct {
	ID      string
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string

	// Failed marks a result that violated its own acceptance criteria
	// (the chaos harness's invariants); rmbench exits non-zero on it.
	Failed bool
}

// Render writes the result as an aligned text table (AlignRows is the
// shared writer every report table goes through).
func (r *Result) Render(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", r.ID, r.Title)
	for _, line := range AlignRows(r.Columns, r.Rows) {
		fmt.Fprintln(w, "  "+line)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
}

// Runner produces one experiment's result.
type Runner func(Options) *Result

var registry = struct {
	sync.Mutex
	m     map[string]Runner
	title map[string]string
}{m: make(map[string]Runner), title: make(map[string]string)}

func register(id, title string, r Runner) {
	registry.Lock()
	defer registry.Unlock()
	registry.m[id] = r
	registry.title[id] = title
}

// IDs returns the registered experiment IDs, sorted.
func IDs() []string {
	registry.Lock()
	defer registry.Unlock()
	ids := make([]string, 0, len(registry.m))
	for id := range registry.m {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Title returns an experiment's description.
func Title(id string) string {
	registry.Lock()
	defer registry.Unlock()
	return registry.title[id]
}

// Run executes a registered experiment.
func Run(id string, o Options) (*Result, error) {
	registry.Lock()
	r := registry.m[id]
	registry.Unlock()
	if r == nil {
		return nil, fmt.Errorf("experiments: unknown id %q (have %s)", id, strings.Join(IDs(), ", "))
	}
	return r(o), nil
}

// forEach runs fn for i in [0,n), in parallel unless sequential.
func forEach(o Options, n int, fn func(i int)) {
	if o.Sequential || n <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			fn(i)
		}(i)
	}
	wg.Wait()
}

func f1(v float64) string { return fmt.Sprintf("%.1f", v) }
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
func pct(v float64) string {
	return fmt.Sprintf("%+.1f%%", v*100)
}
