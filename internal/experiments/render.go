package experiments

import (
	"fmt"
	"io"
	"strconv"
	"strings"
)

// RenderCSV writes the result as CSV (header row first, notes as
// trailing comment lines).
func (r *Result) RenderCSV(w io.Writer) {
	esc := func(cells []string) string {
		out := make([]string, len(cells))
		for i, c := range cells {
			if strings.ContainsAny(c, ",\"\n") {
				c = "\"" + strings.ReplaceAll(c, "\"", "\"\"") + "\""
			}
			out[i] = c
		}
		return strings.Join(out, ",")
	}
	fmt.Fprintln(w, esc(r.Columns))
	for _, row := range r.Rows {
		fmt.Fprintln(w, esc(row))
	}
	for _, n := range r.Notes {
		fmt.Fprintf(w, "# %s\n", n)
	}
}

// RenderPlot writes an ASCII bar chart of the result: one block per
// data column (series), one bar per row, scaled to the global maximum
// of that series. Non-numeric cells are skipped.
func (r *Result) RenderPlot(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", r.ID, r.Title)
	if len(r.Columns) < 2 {
		return
	}
	const width = 48
	labelW := 0
	for _, row := range r.Rows {
		if len(row) > 0 && len(row[0]) > labelW {
			labelW = len(row[0])
		}
	}
	for col := 1; col < len(r.Columns); col++ {
		var vals []float64
		var labels []string
		maxV := 0.0
		for _, row := range r.Rows {
			if col >= len(row) {
				continue
			}
			v, err := parseNumeric(row[col])
			if err != nil {
				continue
			}
			vals = append(vals, v)
			labels = append(labels, row[0])
			if v > maxV {
				maxV = v
			}
		}
		if len(vals) == 0 {
			continue
		}
		fmt.Fprintf(w, "\n  %s\n", r.Columns[col])
		for i, v := range vals {
			n := 0
			if maxV > 0 {
				n = int(v / maxV * width)
			}
			if n < 0 {
				n = 0
			}
			fmt.Fprintf(w, "  %-*s |%s %s\n",
				labelW, labels[i], strings.Repeat("#", n), strings.TrimSpace(fmtNum(v)))
		}
	}
	for _, n := range r.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
}

// parseNumeric accepts plain floats plus the harness's "+12.3%" and
// "12.3 max"-style decorations.
func parseNumeric(s string) (float64, error) {
	s = strings.TrimSpace(s)
	s = strings.TrimSuffix(s, "%")
	s = strings.TrimPrefix(s, "+")
	if i := strings.IndexByte(s, ' '); i >= 0 {
		s = s[:i]
	}
	return strconv.ParseFloat(s, 64)
}

func fmtNum(v float64) string {
	if v == float64(int64(v)) && v < 1e9 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'f', 2, 64)
}
