package experiments

import (
	"fmt"
	"io"
	"strconv"
	"strings"
)

// AlignRows is the shared table writer: it lays out a header and data
// rows as left-aligned columns (each column as wide as its widest
// cell, two spaces between columns, a dashed separator under the
// header, no trailing whitespace). Every report table — experiment
// results and the scenario end-of-run report alike — renders through
// it, so alignment rules live in exactly one place.
func AlignRows(columns []string, rows [][]string) []string {
	widths := make([]int, len(columns))
	for i, c := range columns {
		widths[i] = len(c)
	}
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	format := func(cells []string) string {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts[i] = fmt.Sprintf("%-*s", widths[i], c)
			} else {
				parts[i] = c
			}
		}
		return strings.TrimRight(strings.Join(parts, "  "), " ")
	}
	out := make([]string, 0, len(rows)+2)
	out = append(out, format(columns))
	sep := make([]string, len(columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	out = append(out, format(sep))
	for _, row := range rows {
		out = append(out, format(row))
	}
	return out
}

// RenderCSV writes the result as CSV (header row first, notes as
// trailing comment lines).
func (r *Result) RenderCSV(w io.Writer) {
	esc := func(cells []string) string {
		out := make([]string, len(cells))
		for i, c := range cells {
			if strings.ContainsAny(c, ",\"\n") {
				c = "\"" + strings.ReplaceAll(c, "\"", "\"\"") + "\""
			}
			out[i] = c
		}
		return strings.Join(out, ",")
	}
	fmt.Fprintln(w, esc(r.Columns))
	for _, row := range r.Rows {
		fmt.Fprintln(w, esc(row))
	}
	for _, n := range r.Notes {
		fmt.Fprintf(w, "# %s\n", n)
	}
}

// RenderPlot writes an ASCII bar chart of the result: one block per
// data column (series), one bar per row, scaled to the global maximum
// of that series. Non-numeric cells are skipped.
func (r *Result) RenderPlot(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", r.ID, r.Title)
	if len(r.Columns) < 2 {
		return
	}
	const width = 48
	labelW := 0
	for _, row := range r.Rows {
		if len(row) > 0 && len(row[0]) > labelW {
			labelW = len(row[0])
		}
	}
	for col := 1; col < len(r.Columns); col++ {
		var vals []float64
		var labels []string
		maxV := 0.0
		for _, row := range r.Rows {
			if col >= len(row) {
				continue
			}
			v, err := parseNumeric(row[col])
			if err != nil {
				continue
			}
			vals = append(vals, v)
			labels = append(labels, row[0])
			if v > maxV {
				maxV = v
			}
		}
		if len(vals) == 0 {
			continue
		}
		fmt.Fprintf(w, "\n  %s\n", r.Columns[col])
		for i, v := range vals {
			n := 0
			if maxV > 0 {
				n = int(v / maxV * width)
			}
			if n < 0 {
				n = 0
			}
			fmt.Fprintf(w, "  %-*s |%s %s\n",
				labelW, labels[i], strings.Repeat("#", n), strings.TrimSpace(fmtNum(v)))
		}
	}
	for _, n := range r.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
}

// parseNumeric accepts plain floats plus the harness's "+12.3%" and
// "12.3 max"-style decorations.
func parseNumeric(s string) (float64, error) {
	s = strings.TrimSpace(s)
	s = strings.TrimSuffix(s, "%")
	s = strings.TrimPrefix(s, "+")
	if i := strings.IndexByte(s, ' '); i >= 0 {
		s = s[:i]
	}
	return strconv.ParseFloat(s, 64)
}

func fmtNum(v float64) string {
	if v == float64(int64(v)) && v < 1e9 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'f', 2, 64)
}
