package experiments

import (
	"rdmamon/internal/cluster"
	"rdmamon/internal/core"
	"rdmamon/internal/ganglia"
	"rdmamon/internal/sim"
	"rdmamon/internal/simnet"
	"rdmamon/internal/simos"
)

func init() {
	register("fig8", "RUBiS max response time with Ganglia fine-grained monitoring (§5.2.2)",
		func(o Options) *Result { return Fig8(o).Result() })
}

// Fig8Data holds maximum response times (ms) of the two tracked RUBiS
// queries for each scheme at each gmetric granularity.
type Fig8Data struct {
	GranularityMS []int
	MaxSearch     map[core.Scheme][]float64 // SearchItemsReg (paper Fig 8a)
	MaxBrowse     map[core.Scheme][]float64 // Browse (paper Fig 8b)
	P99Search     map[core.Scheme][]float64 // p99, far less noisy than max
	P99Browse     map[core.Scheme][]float64
}

// Fig8 reproduces §5.2.2: RUBiS runs while Ganglia's gmetric publishes
// fine-grained load collected through each scheme at granularity T.
// At 1-4 ms the socket schemes' back-end monitoring work (wakeups,
// /proc reads, replies) perturbs the web servers and inflates maximum
// response times; the RDMA schemes leave the servers untouched.
func Fig8(o Options) *Fig8Data {
	gran := []int{1, 4, 16, 64, 256, 1024, 4096}
	if o.Quick {
		gran = []int{1, 64, 1024}
	}
	schemes := core.FourSchemes()
	d := &Fig8Data{
		GranularityMS: gran,
		MaxSearch:     make(map[core.Scheme][]float64),
		MaxBrowse:     make(map[core.Scheme][]float64),
		P99Search:     make(map[core.Scheme][]float64),
		P99Browse:     make(map[core.Scheme][]float64),
	}
	for _, s := range schemes {
		d.MaxSearch[s] = make([]float64, len(gran))
		d.MaxBrowse[s] = make([]float64, len(gran))
		d.P99Search[s] = make([]float64, len(gran))
		d.P99Browse[s] = make([]float64, len(gran))
	}
	reps := 3
	if o.Quick {
		reps = 1
	}
	type point struct{ si, gi, rep int }
	var pts []point
	for si := range schemes {
		for gi := range gran {
			for r := 0; r < reps; r++ {
				pts = append(pts, point{si, gi, r})
			}
		}
	}
	type res struct{ maxS, maxB, p99S, p99B float64 }
	out := make([]res, len(pts))
	forEach(o, len(pts), func(i int) {
		p := pts[i]
		o2 := o
		o2.Seed = o.seed() + int64(p.rep)*9973
		out[i] = fig8Point(o2, schemes[p.si], gran[p.gi])
	})
	for i, p := range pts {
		d.MaxSearch[schemes[p.si]][p.gi] += out[i].maxS / float64(reps)
		d.MaxBrowse[schemes[p.si]][p.gi] += out[i].maxB / float64(reps)
		d.P99Search[schemes[p.si]][p.gi] += out[i].p99S / float64(reps)
		d.P99Browse[schemes[p.si]][p.gi] += out[i].p99B / float64(reps)
	}
	return d
}

func fig8Point(o Options, s core.Scheme, granMS int) (r struct{ maxS, maxB, p99S, p99B float64 }) {
	// As in the paper: the cluster itself is dispatched with
	// e-RDMA-Sync at the default T=50ms (the best configuration from
	// §5.2.1); what varies is the *gmetric* monitoring stack — a
	// second, independent deployment of scheme s at granularity T
	// feeding Ganglia.
	T := sim.Time(granMS) * sim.Millisecond
	c := cluster.New(cluster.Config{
		Backends:    8,
		Scheme:      core.ERDMASync,
		Poll:        core.DefaultInterval,
		Seed:        o.seed() + 80,
		Policy:      cluster.PolicyWebSphere,
		LocalWeight: -1,
		Gamma:       4,
	})
	// Deploy ganglia over the whole cluster (front-end first: it hosts
	// gmetric).
	nodes := append([]*simos.Node{c.Front}, c.Backends...)
	nics := append([]*simnet.NIC{c.FNIC}, c.BNICs...)
	g := ganglia.Deploy(c.Fab, nodes, nics, ganglia.Defaults())
	// The swept fine-grained metric stack, on its own port. The sweep
	// is over the *load-fetching* granularity (how often gmetric pulls
	// a metric); asynchronous agents keep their own default refresh.
	var gmAgents []*core.Agent
	for i, n := range c.Backends {
		gmAgents = append(gmAgents, core.StartAgent(n, c.BNICs[i], core.AgentConfig{
			Scheme: s, Interval: T, Port: "rmon-gm",
		}))
	}
	gmMon := core.StartMonitor(c.Front, c.FNIC, gmAgents, T)
	g.WireFineGrained(gmMon)
	// Status channel: health/transport transitions ride the same
	// gmetric path as the load records (change-driven, so a stable
	// cluster pays one packet per back-end).
	g.WireStatus(gmMon, 0)

	pool := c.StartRUBiS(256, 55*sim.Millisecond, o.seed()+81)
	warm := 2 * sim.Second
	dur := 20 * sim.Second
	if o.Quick {
		warm = sim.Second
		dur = 5 * sim.Second
	}
	c.Run(warm)
	pool.ResetStats()
	c.Run(dur)
	get := func(q string) (mx, p99 float64) {
		if smp := pool.PerClass[q]; smp != nil {
			return smp.Max(), smp.Percentile(99)
		}
		return 0, 0
	}
	r.maxS, r.p99S = get("SearchItemsReg")
	r.maxB, r.p99B = get("Browse")
	return r
}

// Result renders both panels.
func (d *Fig8Data) Result() *Result {
	r := &Result{
		ID:      "fig8",
		Title:   "RUBiS max response time (ms) with Ganglia: SearchItemsReg | Browse",
		Columns: []string{"granularity(ms)"},
	}
	for _, s := range core.FourSchemes() {
		r.Columns = append(r.Columns, s.String()+" S")
	}
	for _, s := range core.FourSchemes() {
		r.Columns = append(r.Columns, s.String()+" B")
	}
	for gi, g := range d.GranularityMS {
		row := []string{f1(float64(g)) + " max"}
		for _, s := range core.FourSchemes() {
			row = append(row, f1(d.MaxSearch[s][gi]))
		}
		for _, s := range core.FourSchemes() {
			row = append(row, f1(d.MaxBrowse[s][gi]))
		}
		r.Rows = append(r.Rows, row)
	}
	for gi, g := range d.GranularityMS {
		row := []string{f1(float64(g)) + " p99"}
		for _, s := range core.FourSchemes() {
			row = append(row, f1(d.P99Search[s][gi]))
		}
		for _, s := range core.FourSchemes() {
			row = append(row, f1(d.P99Browse[s][gi]))
		}
		r.Rows = append(r.Rows, row)
	}
	r.Notes = append(r.Notes,
		"expected shape: socket schemes inflate max response times at 1-4ms granularity; RDMA schemes stay flat (paper Fig 8a/8b)")
	return r
}
