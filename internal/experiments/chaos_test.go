package experiments

import (
	"testing"
)

// TestChaosDeterministicGolden is the ci determinism gate for one chaos
// seed: the same seeded fault plan replayed twice must produce
// bit-identical result tables (the chaos runner additionally replays
// its first seed internally and compares run fingerprints — a mismatch
// there surfaces as an I5 violation row, which the Failed check below
// would catch). Zero invariant violations is part of the golden
// contract.
func TestChaosDeterministicGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("slow experiment; skipped with -short")
	}
	run := func() *Result {
		res, err := Run("chaos", Options{Seed: 424242, Quick: true, Seeds: 1})
		if err != nil {
			t.Fatal(err)
		}
		if res.Failed {
			t.Fatalf("chaos run reported invariant violations:\n%v", res.Notes)
		}
		return res
	}
	diffResults(t, "chaos", run(), run())
}

// TestChaosQuickInvariants sweeps a couple of quick random fault plans
// and asserts the harness itself finds nothing: every invariant —
// no dispatch to crashed nodes, bounded staleness over whichever
// transport, failover/fail-back SLOs, per-transport sequence
// monotonicity — must hold.
func TestChaosQuickInvariants(t *testing.T) {
	if testing.Short() {
		t.Skip("slow experiment; skipped with -short")
	}
	res, err := Run("chaos", Options{Seed: 7, Quick: true, Seeds: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed {
		t.Fatalf("invariant violations under quick chaos plans:\n%v", res.Notes)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d, want one per seed", len(res.Rows))
	}
}
