package experiments

import (
	"testing"
)

// TestAADeterministicGolden is the ci determinism gate for one
// active-active seed: the same seeded fault plan replayed twice must
// produce bit-identical result tables (the runner additionally replays
// its first seed internally — chaos run AND both throughput runs — and
// compares fingerprints; a mismatch surfaces as an A5 violation row,
// which the Failed check below would catch). Zero invariant violations
// is part of the golden contract.
func TestAADeterministicGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("slow experiment; skipped with -short")
	}
	run := func() *Result {
		res, err := Run("aa", Options{Seed: 424242, Quick: true, Seeds: 1})
		if err != nil {
			t.Fatal(err)
		}
		if res.Failed {
			t.Fatalf("aa run reported invariant violations:\n%v", res.Notes)
		}
		return res
	}
	diffResults(t, "aa", run(), run())
}

// TestAAQuickInvariants sweeps a couple of quick random claim-stall
// plans over the active-active fleet and asserts the harness finds
// nothing: zero double-dispatch, bounded orphan reclamation, >= 2x
// single-primary throughput and >= 1/2N per-front-end fairness must
// all hold.
func TestAAQuickInvariants(t *testing.T) {
	if testing.Short() {
		t.Skip("slow experiment; skipped with -short")
	}
	res, err := Run("aa", Options{Seed: 7, Quick: true, Seeds: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed {
		t.Fatalf("invariant violations under quick active-active plans:\n%v", res.Notes)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d, want one per seed", len(res.Rows))
	}
}

// TestAAThreeReplicaFloor pins the non-default replica count path: a
// 3-front-end fleet must still hold every invariant, with the A3
// expectation scaling to the smaller fleet (>= 2x stays the floor).
func TestAAThreeReplicaFloor(t *testing.T) {
	if testing.Short() {
		t.Skip("slow experiment; skipped with -short")
	}
	res, err := Run("aa", Options{Seed: 99, Quick: true, Seeds: 1, FrontEnds: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed {
		t.Fatalf("invariant violations with 3 front-ends:\n%v", res.Notes)
	}
}
