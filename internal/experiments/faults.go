package experiments

import (
	"fmt"

	"rdmamon/internal/cluster"
	"rdmamon/internal/core"
	"rdmamon/internal/faults"
	"rdmamon/internal/loadbalance"
	"rdmamon/internal/sim"
)

func init() {
	register("faults", "dispatch quality and probe errors under crashes, link flaps and MR invalidation",
		func(o Options) *Result { return Faults(o).Result() })
}

// FaultsPoint is one scheme's behaviour under the shared fault plan.
type FaultsPoint struct {
	Scheme        core.Scheme
	Throughput    float64 // completed req/s over the measured window
	ProbeErrRate  float64 // errored probes / total probes
	ClientTmo     uint64  // client-visible request timeouts
	ExcludedPicks uint64  // dispatch decisions shaped by quarantine
	DetectPeriods float64 // crash -> quarantined, in probe periods
	RecoverS      float64 // restart -> healthy again, in seconds
}

// FaultsData holds the per-scheme results.
type FaultsData struct {
	Points []FaultsPoint
}

// Faults runs the failure-hardening experiment: every scheme faces the
// same seeded fault plan — two back-ends crash and later restart, one
// link drops 30% of packets for a while, and one agent's memory
// region is invalidated mid-run — while a closed-loop RUBiS population
// keeps the cluster busy. The interesting contrast is the failure
// detection path: RDMA probes fail fast (transport timeout at the
// NIC), while socket probes must burn a full probe deadline per dead
// back-end per sweep, and every lost request packet costs the client
// an RTO. Accurate monitoring degrades gracefully; inaccurate
// monitoring amplifies the failure.
func Faults(o Options) *FaultsData {
	schemes := core.Schemes()
	d := &FaultsData{Points: make([]FaultsPoint, len(schemes))}
	forEach(o, len(schemes), func(i int) {
		d.Points[i] = faultsPoint(o, schemes[i])
	})
	return d
}

func faultsPoint(o Options, s core.Scheme) FaultsPoint {
	poll := core.DefaultInterval // 50ms
	crashAt := 5 * sim.Second
	restartAt := 12 * sim.Second
	flapStart, flapEnd := 8*sim.Second, 16*sim.Second
	mrAt := 10 * sim.Second
	dur := 24 * sim.Second
	clients := 96
	if o.Quick {
		crashAt, restartAt = 2*sim.Second, 5*sim.Second
		flapStart, flapEnd = 3*sim.Second, 6*sim.Second
		mrAt = 4 * sim.Second
		dur = 8 * sim.Second
		clients = 48
	}

	c := cluster.New(cluster.Config{
		Backends:     8,
		Scheme:       s,
		Poll:         poll,
		Seed:         o.seed(),
		Policy:       cluster.PolicyWebSphere,
		Gamma:        4,
		ProbeTimeout: poll,
	})
	plan := faults.Plan{
		Seed: o.seed(),
		Crashes: []faults.Crash{
			{Node: 3, At: crashAt, RestartAt: restartAt},
			{Node: 6, At: crashAt, RestartAt: restartAt},
		},
		Links: []faults.LinkFault{{
			From: 0, To: 5,
			Start: flapStart, End: flapEnd,
			Drop: 0.3,
		}},
		MRInvalidations: []faults.MRInvalidation{{Node: 2, At: mrAt}},
	}
	c.ApplyFaults(plan)
	c.StartTenantNoise(o.seed() + 23)
	pool := c.StartRUBiS(clients, 30*sim.Millisecond, o.seed()+11)

	// Timestamped health transitions for detection/recovery latency.
	var quarantinedAt, healthyAt sim.Time
	watch := c.Eng.NewTicker(poll/5, func() {
		now := c.Eng.Now()
		if quarantinedAt == 0 && now > crashAt &&
			c.Monitor.Health(3) == core.Quarantined && c.Monitor.Health(6) == core.Quarantined {
			quarantinedAt = now
		}
		if healthyAt == 0 && now > restartAt &&
			c.Monitor.Health(3) == core.Healthy && c.Monitor.Health(6) == core.Healthy {
			healthyAt = now
		}
	})
	defer watch.Stop()

	c.Run(dur)

	var probes, errs int
	for _, p := range c.Monitor.Probers {
		probes += int(p.Health.Successes + p.Health.Failures)
		errs += p.Errors
	}
	pt := FaultsPoint{Scheme: s}
	if probes > 0 {
		pt.ProbeErrRate = float64(errs) / float64(probes)
	}
	pt.Throughput = float64(c.TotalServed()) / (float64(dur) / float64(sim.Second))
	pt.ClientTmo = pool.Timeouts
	if wp, ok := c.Policy.(*loadbalance.WeightedProportional); ok {
		pt.ExcludedPicks = wp.ExcludedPicks
	}
	if quarantinedAt > crashAt {
		pt.DetectPeriods = float64(quarantinedAt-crashAt) / float64(poll)
	}
	if healthyAt > restartAt {
		pt.RecoverS = float64(healthyAt-restartAt) / float64(sim.Second)
	}
	return pt
}

// Result renders the faults table.
func (d *FaultsData) Result() *Result {
	r := &Result{
		ID:    "faults",
		Title: "Failure hardening: crashes + link flap + MR invalidation (seeded plan)",
		Columns: []string{"scheme", "tput(req/s)", "probe-err%", "client-tmo",
			"excl-picks", "detect(T)", "recover(s)"},
	}
	for _, p := range d.Points {
		r.Rows = append(r.Rows, []string{
			p.Scheme.String(),
			f1(p.Throughput),
			fmt.Sprintf("%.1f%%", p.ProbeErrRate*100),
			fmt.Sprintf("%d", p.ClientTmo),
			fmt.Sprintf("%d", p.ExcludedPicks),
			f1(p.DetectPeriods),
			f2(p.RecoverS),
		})
	}
	r.Notes = append(r.Notes,
		"expected shape: every scheme quarantines the crashed pair within ~3-4 probe periods (detect(T)) and re-admits after restart",
		"expected shape: RDMA schemes degrade gracefully (fast NIC-level timeouts keep the probe cycle tight); socket schemes amplify failures — each dead back-end stalls the sequential sweep for a full probe deadline and lost request packets cost clients RTO pile-ups")
	return r
}
