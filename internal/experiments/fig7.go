package experiments

import (
	"fmt"

	"rdmamon/internal/cluster"
	"rdmamon/internal/core"
	"rdmamon/internal/sim"
	"rdmamon/internal/workload"
)

func init() {
	register("fig7", "throughput improvement vs Zipf alpha, RUBiS + Zipf co-hosted (§5.2.1)",
		func(o Options) *Result { return Fig7(o).Result() })
}

// Fig7Data holds total throughput (req/s) per scheme per alpha, and
// the improvement relative to Socket-Async.
type Fig7Data struct {
	Alphas     []float64
	Throughput map[core.Scheme][]float64
}

// Fig7 reproduces the co-hosted experiment: the cluster serves RUBiS
// and a Zipf static trace simultaneously; the Zipf trace's α controls
// how heterogeneous the document working set is. At low α many
// requests have very different resource demands, so accurate
// fine-grained monitoring routes around the heavy ones and wins most;
// at high α the load is self-similar and all schemes converge.
func Fig7(o Options) *Fig7Data {
	alphas := []float64{0.25, 0.5, 0.75, 0.9}
	if o.Quick {
		alphas = []float64{0.25, 0.9}
	}
	schemes := core.Schemes()
	d := &Fig7Data{Alphas: alphas, Throughput: make(map[core.Scheme][]float64)}
	for _, s := range schemes {
		d.Throughput[s] = make([]float64, len(alphas))
	}
	reps := 3
	if o.Quick {
		reps = 1
	}
	type job struct{ si, ai, rep int }
	var jobs []job
	for si := range schemes {
		for ai := range alphas {
			for r := 0; r < reps; r++ {
				jobs = append(jobs, job{si, ai, r})
			}
		}
	}
	vals := make([]float64, len(jobs))
	forEach(o, len(jobs), func(i int) {
		j := jobs[i]
		vals[i] = fig7Point(o, schemes[j.si], alphas[j.ai], int64(j.rep))
	})
	for i, j := range jobs {
		d.Throughput[schemes[j.si]][j.ai] += vals[i] / float64(reps)
	}
	return d
}

func fig7Point(o Options, s core.Scheme, alpha float64, rep int64) float64 {
	c := cluster.New(cluster.Config{
		Backends:    8,
		Scheme:      s,
		Poll:        core.DefaultInterval,
		Seed:        o.seed() + rep*7919,
		Policy:      cluster.PolicyWebSphere,
		LocalWeight: -1,
		Gamma:       4,
	})
	c.StartTenantNoise(o.seed() + 23 + rep)
	rubis := c.StartRUBiS(128, 30*sim.Millisecond, o.seed()+11+rep)
	z := workload.NewZipfTrace(5000, alpha, o.seed()+13)
	zipf := c.StartZipf(z, 256, 20*sim.Millisecond, o.seed()+17+rep)
	warm := 2 * sim.Second
	dur := 25 * sim.Second
	if o.Quick {
		warm = sim.Second
		dur = 6 * sim.Second
	}
	c.Run(warm)
	rubis.ResetStats()
	zipf.ResetStats()
	c.Run(dur)
	return rubis.Throughput() + zipf.Throughput()
}

// Improvement returns (tput[s] - tput[SocketAsync]) / tput[SocketAsync]
// at alpha index ai.
func (d *Fig7Data) Improvement(s core.Scheme, ai int) float64 {
	base := d.Throughput[core.SocketAsync][ai]
	if base == 0 {
		return 0
	}
	return (d.Throughput[s][ai] - base) / base
}

// Result renders Figure 7.
func (d *Fig7Data) Result() *Result {
	r := &Result{
		ID:      "fig7",
		Title:   "Total throughput improvement over Socket-Async (RUBiS + Zipf)",
		Columns: []string{"alpha", "Socket-Async(req/s)"},
	}
	for _, s := range core.Schemes()[1:] {
		r.Columns = append(r.Columns, s.String())
	}
	for ai, a := range d.Alphas {
		row := []string{fmt.Sprintf("%.2f", a), f1(d.Throughput[core.SocketAsync][ai])}
		for _, s := range core.Schemes()[1:] {
			row = append(row, pct(d.Improvement(s, ai)))
		}
		r.Rows = append(r.Rows, row)
	}
	r.Notes = append(r.Notes,
		"expected shape: gains largest at small alpha and shrink toward alpha=0.9; e-RDMA-Sync >= RDMA-Sync > others (paper Fig 7)")
	return r
}
