package experiments

import (
	"fmt"

	"rdmamon/internal/core"
	"rdmamon/internal/httpsim"
	"rdmamon/internal/loadbalance"
	"rdmamon/internal/metrics"
	"rdmamon/internal/reconfig"
	"rdmamon/internal/sim"
	"rdmamon/internal/simnet"
	"rdmamon/internal/simos"
	"rdmamon/internal/wire"
	"rdmamon/internal/workload"
)

func init() {
	register("reconfig", "extension: monitoring-driven node reconfiguration between two services (paper §7 future work)",
		func(o Options) *Result { return Reconfig(o).Result() })
}

// ReconfigRow summarizes one configuration of the reconfiguration
// experiment.
type ReconfigRow struct {
	Name       string
	Served     uint64
	P95        float64
	Migrations uint64
}

// ReconfigData compares reconfiguration driven by each scheme against
// a static assignment.
type ReconfigData struct {
	Rows []ReconfigRow
}

// Reconfig hosts two services on 8 nodes (starting 4/4) and alternates
// which service carries a surge every few seconds. The controller
// migrates nodes toward the surging service; how well it tracks the
// phases is bounded by monitoring accuracy.
func Reconfig(o Options) *ReconfigData {
	configs := []struct {
		name   string
		scheme core.Scheme
		ctl    bool
	}{
		{"static (no reconfig)", core.RDMASync, false},
		{"Socket-Async", core.SocketAsync, true},
		{"RDMA-Async", core.RDMAAsync, true},
		{"RDMA-Sync", core.RDMASync, true},
	}
	d := &ReconfigData{Rows: make([]ReconfigRow, len(configs))}
	forEach(o, len(configs), func(i int) {
		d.Rows[i] = reconfigPoint(o, configs[i].name, configs[i].scheme, configs[i].ctl)
	})
	return d
}

func reconfigPoint(o Options, name string, scheme core.Scheme, withCtl bool) ReconfigRow {
	eng := sim.NewEngine(o.seed() + 500)
	fab := simnet.NewFabric(eng, simnet.Defaults())
	front := simos.NewNode(eng, 0, simos.NodeDefaults())
	fnic := fab.Attach(front)

	const nBack = 8
	var agents []*core.Agent
	for i := 1; i <= nBack; i++ {
		n := simos.NewNode(eng, i, simos.NodeDefaults())
		nic := fab.Attach(n)
		httpsim.StartServer(n, nic, httpsim.ServerDefaults())
		agents = append(agents, core.StartAgent(n, nic, core.AgentConfig{Scheme: scheme}))
	}
	mon := core.StartMonitor(front, fnic, agents, core.DefaultInterval)
	source := func(b int) (wire.LoadRecord, bool) {
		rec, _, ok := mon.Latest(b)
		return rec, ok
	}

	// Two services, each with its own dispatcher + policy over its
	// current group.
	groups := &reconfig.Groups{A: []int{1, 2, 3, 4}, B: []int{5, 6, 7, 8}}
	mkPolicy := func() *loadbalance.WeightedProportional {
		return &loadbalance.WeightedProportional{
			Weights: core.WeightsFor(scheme),
			Source:  source,
			Rng:     eng.Rand(),
			Gamma:   4,
		}
	}
	polA, polB := mkPolicy(), mkPolicy()
	apply := func() {
		reconfig.SetBackendsProportional(polA, groups.A)
		reconfig.SetBackendsProportional(polB, groups.B)
	}
	apply()
	httpsim.StartDispatcherOn(front, fnic, polA, "dispatch-a")
	httpsim.StartDispatcherOn(front, fnic, polB, "dispatch-b")

	var ctl *reconfig.Controller
	if withCtl {
		ctl = reconfig.New(eng, reconfig.Config{Weights: core.WeightsFor(scheme)}, source, groups, apply)
	}

	mix := workload.NewMix(workload.RUBiSMix())
	mkPool := func(port string, clients int, ext int, seed int64) *workload.ClientPool {
		return workload.StartClients(fab, workload.ClientPoolConfig{
			Clients:   clients,
			ThinkMean: 40 * sim.Millisecond,
			FrontEnd:  0,
			Port:      port,
			ExtBase:   ext,
			Gen:       workload.MixGenerator(mix),
			Seed:      seed,
		})
	}
	baseA := mkPool("dispatch-a", 48, -1, o.seed()+501)
	baseB := mkPool("dispatch-b", 48, -100, o.seed()+502)
	surgeA := mkPool("dispatch-a", 128, -200, o.seed()+503)
	surgeB := mkPool("dispatch-b", 128, -400, o.seed()+504)
	surgeB.Pause()

	// Alternate the surge every phase.
	phase := 4 * sim.Second
	aSurging := true
	eng.NewTicker(phase, func() {
		aSurging = !aSurging
		if aSurging {
			surgeA.Resume()
			surgeB.Pause()
		} else {
			surgeA.Pause()
			surgeB.Resume()
		}
	})

	dur := 30 * sim.Second
	if o.Quick {
		dur = 10 * sim.Second
	}
	eng.RunUntil(dur)

	total := baseA.Completed + baseB.Completed + surgeA.Completed + surgeB.Completed
	var m metrics.Sample
	for _, pool := range []*workload.ClientPool{baseA, baseB, surgeA, surgeB} {
		m.AddAll(&pool.All)
	}
	served, p95 := total, m.Percentile(95)
	row := ReconfigRow{Name: name, Served: served, P95: p95}
	if ctl != nil {
		row.Migrations = ctl.Migrations
	}
	return row
}

// Result renders the extension table.
func (d *ReconfigData) Result() *Result {
	r := &Result{
		ID:      "reconfig",
		Title:   "Dynamic reconfiguration between two services with alternating surges",
		Columns: []string{"configuration", "served", "p95(ms)", "migrations"},
	}
	for _, row := range d.Rows {
		r.Rows = append(r.Rows, []string{
			row.Name, fmt.Sprint(row.Served), f1(row.P95), fmt.Sprint(row.Migrations),
		})
	}
	r.Notes = append(r.Notes,
		"extension (paper §7): reconfiguration driven by accurate monitoring tracks surges; static assignment and stale monitoring lag")
	return r
}
