package experiments

import "testing"

// TestScaleOutQuick runs the pooled scale-out at its quick size and
// asserts the connection-lifecycle criteria hold: zero stale-epoch
// reads, the fence exercised by churn, dial rate within budget, the
// hot staleness SLO through the fault phases, and nothing leaked.
func TestScaleOutQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("slow experiment; skipped with -short")
	}
	d := Scale(Options{Quick: true, Backends: 1024})
	if d.Out == nil {
		t.Fatal("1024 back-ends did not select the pooled scale-out path")
	}
	if d.Failed {
		t.Fatalf("scale-out reported violations:\n%v", d.Notes)
	}
	if got := len(d.Out.Phases); got != 6 {
		t.Fatalf("ran %d phases, want 6", got)
	}
	if d.Out.FenceRejects == 0 {
		t.Fatal("churn never exercised the epoch fence")
	}
	if d.Out.StaleEpochReads != 0 {
		t.Fatalf("%d stale-epoch reads", d.Out.StaleEpochReads)
	}
}

// TestScaleOutKnobs exercises the -max-conns/-dials-per-sec/-pool-idle-ms
// pins: explicit budgets select the scale-out even below the fleet
// threshold, and the configured budgets are what the run enforces.
func TestScaleOutKnobs(t *testing.T) {
	if testing.Short() {
		t.Skip("slow experiment; skipped with -short")
	}
	d := Scale(Options{Quick: true, Backends: 512, MaxConns: 96, DialsPerSec: 700, PoolIdleMS: 300})
	if d.Out == nil {
		t.Fatal("explicit pool knobs did not select the scale-out path")
	}
	if d.Failed {
		t.Fatalf("scale-out reported violations:\n%v", d.Notes)
	}
	if d.Out.MaxConns != 96 || d.Out.DialsPerSec != 700 {
		t.Fatalf("budgets not honored: %+v", d.Out)
	}
	budget := uint64(700 + 700/4)
	for _, ph := range d.Out.Phases {
		if ph.WindowMax > budget {
			t.Fatalf("phase %s: %d dials/s exceeds budget %d", ph.Name, ph.WindowMax, budget)
		}
	}
}
