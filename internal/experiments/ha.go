package experiments

import (
	"fmt"

	"rdmamon/internal/cluster"
	"rdmamon/internal/core"
	"rdmamon/internal/faults"
	"rdmamon/internal/httpsim"
	"rdmamon/internal/scenario"
	"rdmamon/internal/sim"
	"rdmamon/internal/workload"
)

func init() {
	register("ha", "warm-standby front-ends: leased primaryship and epoch fencing under front-end faults",
		func(o Options) *Result { return HA(o).Result() })
}

// haTakeoverSlack is the allowance, in lease check cycles, added on top
// of TakeoverAfter for the H3 bound: the deposed holder's last renewal
// can land up to one cycle before the fault, the follower observes it
// up to one cycle later, the winning CAS takes a network round trip,
// and heavy dispatch traffic on the standby's node can delay its lease
// task by a few more cycles. EXPERIMENTS.md derives the number.
const haTakeoverSlack = 8

// HAPoint is one seed's run of a 3-replica HA cluster under a fault
// plan that includes front-end crashes, freezes and witness partitions.
type HAPoint struct {
	Seed                   int64
	FECrash, FEFrz, FEPart int // plan shape (front-end faults)

	Epochs        int     // lease epochs acquired across the fleet
	TakeoverMaxMS float64 // slowest measured primary-fault -> new-epoch handoff
	Fenced        uint64  // requests refused by the lease fence
	NotPrimary    uint64  // fenced replies observed at the clients
	Retargets     uint64  // client rotations to another replica
	Served        uint64  // requests completed end to end
	BackendTasks  int     // agent-side tasks (must stay 0 under RDMA-Sync)

	Violations []string
	ViolationN int

	Fingerprint string // deterministic run digest (H5 replay check)
}

// HAData holds the per-seed results.
type HAData struct {
	Points []HAPoint
}

// HA runs the front-end high-availability harness: for each seed it
// builds a 3-replica RDMA-Sync cluster (every replica shadow-probing
// all back-ends, one lease-fenced primary dispatching), applies a
// randomized fault plan extended with front-end crashes, freezes and
// witness partitions, drives RUBiS load, and checks:
//
//	H1  at most one replica holds a valid lease epoch at any instant
//	    (validity intervals from acquire/renew/depose events must not
//	    overlap across replicas — no split brain);
//	H2  no request is ever routed by a replica whose lease is invalid
//	    at that instant (the epoch fence holds even for a deposed or
//	    frozen-then-thawed primary);
//	H3  a fault hitting the current primary yields a new epoch within
//	    TakeoverAfter plus a bounded number of check cycles (warm
//	    standbys make takeover fast);
//	H4  lease epochs are globally monotone (each acquisition uses a
//	    strictly larger epoch than every earlier one);
//	H5  a fixed seed replays bit-identically (checked for the first
//	    seed by running it twice);
//	H6  back-end agents run zero tasks throughout — standby monitoring
//	    rides the same one-sided reads and costs the monitored nodes
//	    nothing.
func HA(o Options) *HAData {
	cp, err := scenario.BuiltinHA().Compile(o.Quick)
	if err != nil {
		// The builtin is covered by the golden tests; a compile failure
		// here is a programming error, not an input error.
		panic(err)
	}
	return haScenario(cp, o)
}

// haScenario runs the HA invariant checker over a compiled scenario —
// the one driver behind both the legacy `-exp ha` flags (via
// BuiltinHA, bit-identical plans) and `-scenario` files with
// `checks: ha`.
func haScenario(cp *scenario.Compiled, o Options) *HAData {
	n := o.Seeds
	if n <= 0 {
		n = cp.Points(0)
	}
	base := cp.BaseSeed(o.Seed)
	d := &HAData{Points: make([]HAPoint, n)}
	forEach(o, n, func(i int) {
		seed := cp.SeedAt(base, i)
		pt := haPoint(cp, seed)
		if i == 0 {
			replay := haPoint(cp, seed)
			if replay.Fingerprint != pt.Fingerprint {
				pt.Violations = append(pt.Violations,
					fmt.Sprintf("H5 determinism: replay of seed %d diverged", seed))
				pt.ViolationN++
			}
		}
		d.Points[i] = pt
	})
	return d
}

func haPoint(cp *scenario.Compiled, seed int64) HAPoint {
	horizon := cp.Horizon

	// Failover (the socket standby) is deliberately off in the builtin:
	// every probe in this experiment is one-sided, so H6 measures the
	// pure cost of two extra shadow monitors — which must be zero.
	c := cluster.New(cp.ClusterConfig(seed, ""))
	plan := cp.Plan(seed)
	c.ApplyFaults(plan)

	ck := newHAChecker(c, plan)
	ck.install()

	pool := c.StartRUBiS(cp.Clients, cp.Think, seed+11)
	c.Run(horizon)

	ck.checkOverlaps()
	ck.checkTakeovers(horizon)
	return ck.point(seed, pool)
}

// haEpoch is one replica's validity interval under one epoch: opened by
// an acquire, extended by renewals, closed by a deposal (or left at the
// last renewal's validUntil if the holder died holding it).
type haEpoch struct {
	replica    int
	node       int
	epoch      uint16
	start, end sim.Time
}

// haFault is a front-end fault instant with the primaryship observed
// just before it landed.
type haFault struct {
	at      sim.Time
	kind    string
	victim  int
	primary int // node ID of the pre-fault primary, -1 if none
}

// haChecker audits one run against invariants H1-H4 and H6.
type haChecker struct {
	c     *cluster.Cluster
	plan  faults.Plan
	lease core.LeaseConfig

	intervals []*haEpoch       // all validity intervals, in acquire order
	open      map[int]*haEpoch // replica index -> currently open interval
	lastEpoch uint16

	faults []haFault

	// Dispatch counters survive replica restarts: the current dispatcher
	// per replica, plus totals retired when a crash replaced one.
	disp                         map[int]*httpsim.Dispatcher
	retiredRouted, retiredFenced uint64

	takeoverMax sim.Time
	violations  []string
	violationN  int
}

func newHAChecker(c *cluster.Cluster, plan faults.Plan) *haChecker {
	return &haChecker{
		c:     c,
		plan:  plan,
		lease: c.Cfg.Lease.WithDefaults(c.Cfg.Poll),
		open:  make(map[int]*haEpoch),
		disp:  make(map[int]*httpsim.Dispatcher),
	}
}

func (ck *haChecker) violate(format string, args ...any) {
	ck.violationN++
	if len(ck.violations) < 8 {
		ck.violations = append(ck.violations, fmt.Sprintf(format, args...))
	}
}

func (ck *haChecker) install() {
	for _, r := range ck.c.FrontEnds {
		ck.hook(r)
	}
	// A restarted replica comes back with fresh dispatcher and lease
	// objects; retire the dead dispatcher's counters and re-hook.
	ck.c.OnReplicaRestart = func(r *cluster.Replica) {
		if old := ck.disp[r.Index]; old != nil {
			ck.retiredRouted += old.Routed
			ck.retiredFenced += old.Fenced
		}
		ck.hook(r)
	}

	// H3 observers: capture who is primary 1ns before each front-end
	// fault lands (the injector's events were scheduled first, so an
	// observer at the fault instant would run after it).
	fes := make(map[int]bool)
	for _, id := range ck.c.FrontEndIDs() {
		fes[id] = true
	}
	observe := func(at sim.Time, kind string, victim int) {
		ck.c.Eng.After(at-1*sim.Nanosecond, func() {
			f := haFault{at: at, kind: kind, victim: victim, primary: -1}
			if p := ck.c.Primary(); p != nil {
				f.primary = p.Node.ID
			}
			ck.faults = append(ck.faults, f)
		})
	}
	for _, cr := range ck.plan.Crashes {
		if fes[cr.Node] {
			observe(cr.At, "crash", cr.Node)
		}
	}
	for _, fz := range ck.plan.Freezes {
		if fes[fz.Node] {
			observe(fz.At, "freeze", fz.Node)
		}
	}
	for _, pa := range ck.plan.Partitions {
		if len(pa.A) == 1 && fes[pa.A[0]] && len(pa.B) == 1 && pa.B[0] == ck.c.Witness.ID {
			observe(pa.Start, "partition", pa.A[0])
		}
	}
}

// hook installs the lease observers and the H2 route audit on one
// replica's (possibly fresh) objects.
func (ck *haChecker) hook(r *cluster.Replica) {
	idx, node := r.Index, r.Node.ID
	l := r.LeaseMgr.Lease
	ck.disp[idx] = r.Dispatcher

	l.OnAcquire = func(epoch uint16, now, validUntil sim.Time) {
		if epoch <= ck.lastEpoch {
			ck.violate("H4 epoch: replica %d acquired epoch %d after epoch %d was taken",
				idx, epoch, ck.lastEpoch)
		} else {
			ck.lastEpoch = epoch
		}
		e := &haEpoch{replica: idx, node: node, epoch: epoch, start: now, end: validUntil}
		ck.open[idx] = e
		ck.intervals = append(ck.intervals, e)
	}
	l.OnRenew = func(epoch uint16, now, validUntil sim.Time) {
		if e := ck.open[idx]; e != nil && validUntil > e.end {
			e.end = validUntil
		}
	}
	l.OnDepose = func(epoch uint16, now sim.Time) {
		if e := ck.open[idx]; e != nil {
			if e.end > now {
				e.end = now
			}
			ck.open[idx] = nil
		}
	}

	// H2: every routing decision must happen under a valid lease. The
	// fence itself is what should make this true; auditing at OnRoute
	// (after the fence, before the forward) catches any leak.
	r.Dispatcher.OnRoute = func(int) {
		if !l.Valid(ck.c.Eng.Now()) {
			ck.violate("H2 fence: replica %d routed a request without a valid lease at %v",
				idx, ck.c.Eng.Now())
		}
	}
}

// checkOverlaps runs H1 after the run: no two validity intervals from
// different replicas may overlap. Intervals are conservative — a lapsed
// primary that later revalidated keeps one contiguous interval, which
// is only possible when nobody else acquired in between.
func (ck *haChecker) checkOverlaps() {
	for i, a := range ck.intervals {
		for _, b := range ck.intervals[i+1:] {
			if a.replica == b.replica {
				continue
			}
			if a.start < b.end && b.start < a.end {
				ck.violate("H1 split-brain: replica %d epoch %d [%v, %v] overlaps replica %d epoch %d [%v, %v]",
					a.replica, a.epoch, a.start, a.end, b.replica, b.epoch, b.start, b.end)
			}
		}
	}
}

// checkTakeovers runs H3 after the run: every front-end fault that hit
// the then-primary must be followed by a new epoch within TakeoverAfter
// plus haTakeoverSlack check cycles. Faults whose window is truncated
// by the horizon are skipped.
func (ck *haChecker) checkTakeovers(horizon sim.Time) {
	bound := ck.lease.TakeoverAfter + haTakeoverSlack*ck.lease.CheckEvery
	for _, f := range ck.faults {
		if f.primary < 0 || f.primary != f.victim {
			continue // fault missed the primary: no handoff owed
		}
		if f.at+bound > horizon {
			continue
		}
		var won sim.Time
		found := false
		for _, e := range ck.intervals {
			if e.start > f.at {
				won, found = e.start, true
				break
			}
		}
		if !found || won-f.at > bound {
			ck.violate("H3 takeover: %s of primary node %d at %v, no new epoch within %v",
				f.kind, f.victim, f.at, bound)
			continue
		}
		if lat := won - f.at; lat > ck.takeoverMax {
			ck.takeoverMax = lat
		}
	}
}

func (ck *haChecker) point(seed int64, pool *workload.ClientPool) HAPoint {
	feCrash := 0
	for _, cr := range ck.plan.Crashes {
		for _, id := range ck.c.FrontEndIDs() {
			if cr.Node == id {
				feCrash++
			}
		}
	}
	fePart := 0
	for _, pa := range ck.plan.Partitions {
		if len(pa.B) == 1 && pa.B[0] == ck.c.Witness.ID {
			fePart++
		}
	}
	pt := HAPoint{
		Seed:    seed,
		FECrash: feCrash, FEFrz: len(ck.plan.Freezes), FEPart: fePart,
		Epochs:        len(ck.intervals),
		TakeoverMaxMS: float64(ck.takeoverMax) / float64(sim.Millisecond),
		NotPrimary:    pool.NotPrimary,
		Retargets:     pool.Retargets,
		Served:        ck.c.TotalServed(),
		Violations:    ck.violations,
		ViolationN:    ck.violationN,
	}

	routed := ck.retiredRouted
	pt.Fenced = ck.retiredFenced
	var takeovers, renewals, deposals, casErr uint64
	var cycles uint64
	for _, r := range ck.c.FrontEnds {
		if d := ck.disp[r.Index]; d != nil {
			routed += d.Routed
			pt.Fenced += d.Fenced
		}
		l := r.LeaseMgr.Lease
		takeovers += l.Takeovers
		renewals += l.Renewals
		deposals += l.Deposals
		casErr += r.LeaseMgr.CASErrors
		cycles += r.Monitor.Cycles
	}

	// H6: standby monitoring must cost the back-ends nothing — under
	// RDMA-Sync no agent runs a single task, replicated or not.
	for _, a := range ck.c.Agents {
		if a != nil {
			pt.BackendTasks += a.BackendTasks()
		}
	}
	if pt.BackendTasks != 0 {
		ck.violationN++
		pt.ViolationN = ck.violationN
		pt.Violations = append(pt.Violations,
			fmt.Sprintf("H6 zero-cost: back-end agents run %d tasks under RDMA-Sync", pt.BackendTasks))
	}

	// The fingerprint digests everything the run produced, so an H5
	// replay mismatch catches any nondeterminism, not just one that
	// changed a headline number.
	epochs := ""
	for _, e := range ck.intervals {
		epochs += fmt.Sprintf("|%d:%d@%d-%d", e.replica, e.epoch, e.start, e.end)
	}
	pt.Fingerprint = fmt.Sprintf("served=%d routed=%d fenced=%d notprim=%d retgt=%d tmo=%d take=%d renew=%d dep=%d caserr=%d cyc=%d viol=%d tmax=%d epochs=%s",
		pt.Served, routed, pt.Fenced, pt.NotPrimary, pt.Retargets, pool.Timeouts,
		takeovers, renewals, deposals, casErr, cycles, pt.ViolationN, ck.takeoverMax, epochs)
	return pt
}

// Result renders the HA table.
func (d *HAData) Result() *Result {
	r := &Result{
		ID:    "ha",
		Title: "Front-end HA: leased primaryship and epoch-fenced dispatch under front-end faults",
		Columns: []string{"seed", "fe(c/f/p)", "epochs", "takeover(ms)", "fenced",
			"notprim", "retgt", "served", "beTasks", "viol"},
	}
	total := 0
	for _, p := range d.Points {
		total += p.ViolationN
		r.Rows = append(r.Rows, []string{
			fmt.Sprintf("%d", p.Seed),
			fmt.Sprintf("%d/%d/%d", p.FECrash, p.FEFrz, p.FEPart),
			fmt.Sprintf("%d", p.Epochs),
			f1(p.TakeoverMaxMS),
			fmt.Sprintf("%d", p.Fenced),
			fmt.Sprintf("%d", p.NotPrimary),
			fmt.Sprintf("%d", p.Retargets),
			fmt.Sprintf("%d", p.Served),
			fmt.Sprintf("%d", p.BackendTasks),
			fmt.Sprintf("%d", p.ViolationN),
		})
		for _, v := range p.Violations {
			r.Notes = append(r.Notes, fmt.Sprintf("seed %d: %s", p.Seed, v))
		}
	}
	if total > 0 {
		r.Failed = true
		r.Notes = append(r.Notes, fmt.Sprintf("FAILED: %d invariant violation(s)", total))
	} else {
		r.Notes = append(r.Notes, "all invariants held: at most one epoch-valid dispatcher at any instant, zero routes under an invalid lease, every primary fault handed off within the takeover bound, epochs stayed globally monotone, the first seed replayed bit-identically, and back-end agents ran zero tasks throughout")
	}
	return r
}
