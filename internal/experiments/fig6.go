package experiments

import (
	"fmt"

	"rdmamon/internal/core"
	"rdmamon/internal/sim"
	"rdmamon/internal/simnet"
	"rdmamon/internal/simos"
	"rdmamon/internal/wire"
)

func init() {
	register("fig6", "pending interrupts reported per CPU (§5.1.4)",
		func(o Options) *Result { return Fig6(o).Result() })
}

// Fig6Stats summarizes what one scheme reported about irq_stat.
type Fig6Stats struct {
	Samples    int
	NonZero    [2]int     // samples with pending>0, per CPU
	TotalSeen  [2]int     // sum of reported pending counts, per CPU
	MaxPending [2]int     // largest pending count reported, per CPU
	MeanSeen   [2]float64 // mean reported pending, per CPU
}

// Fig6Data holds Figure 6a-6d: what each scheme observed of the
// back-end's pending interrupts under network-heavy load.
type Fig6Data struct {
	Stats map[core.Scheme]*Fig6Stats
}

// Fig6 reproduces §5.1.4: a back-end absorbs bursty network traffic
// (interrupt storms on its NIC-affine CPU); each scheme reports the
// irq_stat pending counts it can see. The user-space schemes only run
// after interrupts are serviced, so they under-report; RDMA-Sync DMAs
// the live structure at arbitrary instants and sees the storms —
// especially on the second CPU, where the NIC's line is routed.
func Fig6(o Options) *Fig6Data {
	schemes := core.FourSchemes()
	d := &Fig6Data{Stats: make(map[core.Scheme]*Fig6Stats)}
	for _, s := range schemes {
		d.Stats[s] = &Fig6Stats{}
	}
	forEach(o, len(schemes), func(i int) {
		fig6Point(o, schemes[i], d.Stats[schemes[i]])
	})
	return d
}

func fig6Point(o Options, s core.Scheme, st *Fig6Stats) {
	eng := sim.NewEngine(o.seed() + 60 + int64(s))
	fab := simnet.NewFabric(eng, simnet.Defaults())
	front := simos.NewNode(eng, 0, simos.NodeDefaults())
	fnic := fab.Attach(front)
	backend := simos.NewNode(eng, 1, simos.NodeDefaults())
	bnic := fab.Attach(backend)

	// Drain task: consumes the blasted messages so the port doesn't
	// grow without bound (a UDP sink).
	sink := backend.Port("sink")
	backend.Spawn("sink", func(tk *simos.Task) {
		var loop func(simos.Message)
		loop = func(simos.Message) {
			tk.Compute(5*sim.Microsecond, func() { tk.Recv(sink, loop) })
		}
		tk.Recv(sink, loop)
	})
	// Bursty blasters on three peer nodes: their bursts overlap at the
	// back-end NIC, so packets arrive faster than the softirq drain
	// rate and storms of pending interrupts form on CPU1.
	for b := 2; b <= 4; b++ {
		blaster := simos.NewNode(eng, b, simos.NodeDefaults())
		blnic := fab.Attach(blaster)
		blaster.Spawn("blast", func(tk *simos.Task) {
			var loop func()
			loop = func() {
				burst := 15 + eng.Rand().Intn(40)
				var sendN func(k int)
				sendN = func(k int) {
					if k == 0 {
						tk.Sleep(sim.Time(500+eng.Rand().Intn(3000))*sim.Microsecond, loop)
						return
					}
					blnic.Send(tk, 1, "sink", 1<<10, nil, func() { sendN(k - 1) })
				}
				sendN(burst)
			}
			loop()
		})
	}

	agent := core.StartAgent(backend, bnic, core.AgentConfig{Scheme: s})
	p := core.StartProber(front, fnic, agent, 10*sim.Millisecond)
	p.OnRecord = func(rec wire.LoadRecord, at sim.Time) {
		st.Samples++
		for c := 0; c < 2; c++ {
			pend := int(rec.IrqPendingHard[c]) + int(rec.IrqPendingSoft[c])
			if pend > 0 {
				st.NonZero[c]++
			}
			st.TotalSeen[c] += pend
			if pend > st.MaxPending[c] {
				st.MaxPending[c] = pend
			}
		}
	}
	dur := 10 * sim.Second
	if o.Quick {
		dur = 3 * sim.Second
	}
	eng.RunUntil(dur)
	for c := 0; c < 2; c++ {
		if st.Samples > 0 {
			st.MeanSeen[c] = float64(st.TotalSeen[c]) / float64(st.Samples)
		}
	}
}

// Result renders Figure 6 as a table (one row per scheme).
func (d *Fig6Data) Result() *Result {
	r := &Result{
		ID:    "fig6",
		Title: "Pending interrupts observed (network storm on back-end)",
		Columns: []string{"scheme", "samples",
			"cpu0:seen", "cpu0:mean", "cpu1:seen", "cpu1:mean", "cpu1:max", "cpu1:hit%"},
	}
	for _, s := range core.FourSchemes() {
		st := d.Stats[s]
		hit := 0.0
		if st.Samples > 0 {
			hit = float64(st.NonZero[1]) / float64(st.Samples) * 100
		}
		r.Rows = append(r.Rows, []string{
			s.String(), fmt.Sprint(st.Samples),
			fmt.Sprint(st.TotalSeen[0]), f2(st.MeanSeen[0]),
			fmt.Sprint(st.TotalSeen[1]), f2(st.MeanSeen[1]),
			fmt.Sprint(st.MaxPending[1]), f1(hit),
		})
	}
	r.Notes = append(r.Notes,
		"expected shape: RDMA-Sync reports more and more-frequent pending interrupts than the user-space schemes, concentrated on CPU1 (paper Fig 6a-d)")
	return r
}
